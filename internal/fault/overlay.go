package fault

import (
	"fmt"
	"sync/atomic"

	"charm/internal/topology"
)

// Overlay is the dynamic layer of a Plan: runtime-appended throttle steps
// and park spans the closed-loop power governor (internal/power) lays over
// the compiled static schedule. The static Plan stays immutable; the
// overlay holds per-chiplet copy-on-append lists behind atomic pointers,
// so queries stay lock-free (one atomic load) and a plan without an
// overlay costs a single nil check.
//
// Two invariants make the overlay safe for the engine's cached queries
// (core/fastpath.go caches ThermalSegment results until their boundary):
//
//  1. Appends are serialized by the governor and monotone in time: each
//     appended step/span starts no earlier than the previous one.
//  2. ThermalSegment answers are capped at the next governor tick
//     boundary (a fixed grid of period Tick). The governor only appends
//     state as a worker's clock crosses a boundary, so a cached segment
//     can never outlive an append that lands after it was read.
type Overlay struct {
	topo *topology.Topology
	tick int64

	// therm[ch] / park[ch] are copy-on-append: the governor builds a new
	// slice and stores the pointer; readers load and binary-search.
	therm []atomic.Pointer[[]step]
	park  []atomic.Pointer[[]span]
}

// NewOverlay builds an empty overlay for topo with governor tick period
// tickNS (virtual ns, must be positive).
func NewOverlay(topo *topology.Topology, tickNS int64) (*Overlay, error) {
	if topo == nil {
		return nil, fmt.Errorf("fault: NewOverlay needs a topology")
	}
	if tickNS <= 0 {
		return nil, fmt.Errorf("fault: overlay tick must be positive, got %d", tickNS)
	}
	return &Overlay{
		topo:  topo,
		tick:  tickNS,
		therm: make([]atomic.Pointer[[]step], topo.NumChiplets()),
		park:  make([]atomic.Pointer[[]span], topo.NumChiplets()),
	}, nil
}

// Tick returns the governor tick period the overlay caps segments at.
func (o *Overlay) Tick() int64 { return o.tick }

// nextBoundary returns the first governor grid boundary strictly after t.
func (o *Overlay) nextBoundary(t int64) int64 {
	if t < 0 {
		return 0
	}
	b := (t/o.tick + 1) * o.tick
	if b <= t { // overflow guard for t near MaxInt64
		return Forever
	}
	return b
}

// AppendThermal records that chiplet ch runs at milli/1000 of its healthy
// cost from virtual time t onward (until a later append changes it).
// Appends must be monotone in t per chiplet; an append at the same t as
// the last step replaces it. Only the governor goroutine-of-the-moment may
// call this (the power plane serializes claims under its mutex).
func (o *Overlay) AppendThermal(ch topology.ChipletID, t, milli int64) {
	if milli < 1000 {
		milli = 1000
	}
	cur := o.therm[ch].Load()
	var steps []step
	if cur != nil {
		n := len(*cur)
		if n > 0 {
			if last := (*cur)[n-1]; last.t > t {
				panic(fmt.Sprintf("fault: overlay thermal append at t=%d before last step t=%d (chiplet %d)", t, last.t, ch))
			} else if last.t == t {
				steps = append(append([]step(nil), (*cur)[:n-1]...), step{t, milli})
				o.therm[ch].Store(&steps)
				return
			} else if last.milli == milli {
				return // no change; skip the redundant step
			}
		}
		steps = append([]step(nil), *cur...)
	}
	steps = append(steps, step{t, milli})
	o.therm[ch].Store(&steps)
}

// AppendPark takes every core of chiplet ch offline for [from, to) —
// the governor's emergency tier. Spans must be appended in increasing,
// non-overlapping order. The caller is responsible for never parking the
// last live chiplet (the power governor checks before appending).
func (o *Overlay) AppendPark(ch topology.ChipletID, from, to int64) {
	if to <= from {
		return
	}
	cur := o.park[ch].Load()
	var spans []span
	if cur != nil {
		if n := len(*cur); n > 0 && (*cur)[n-1].to > from {
			panic(fmt.Sprintf("fault: overlay park append [%d,%d) overlaps last span ending %d (chiplet %d)", from, to, (*cur)[n-1].to, ch))
		}
		spans = append([]span(nil), *cur...)
	}
	spans = append(spans, span{from, to})
	o.park[ch].Store(&spans)
}

// thermalSegment evaluates the overlay's step function for chiplet ch at
// t. active reports whether an overlay step is in effect at t; when it is
// not, until is the first overlay step time > t (Forever when none), which
// bounds how long the static plan's answer stays authoritative.
func (o *Overlay) thermalSegment(ch topology.ChipletID, t int64) (milli, until int64, active bool) {
	cur := o.therm[ch].Load()
	if cur == nil {
		return 1000, Forever, false
	}
	m, u := segmentAt(*cur, t)
	steps := *cur
	if len(steps) == 0 || steps[0].t > t {
		return 1000, u, false
	}
	return m, u, true
}

// parked reports whether chiplet ch is inside an overlay park span at t,
// and when it is, the span's end.
func (o *Overlay) parked(ch topology.ChipletID, t int64) (int64, bool) {
	cur := o.park[ch].Load()
	if cur == nil {
		return 0, false
	}
	if s, down := spanAt(*cur, t); down {
		return s.to, true
	}
	return 0, false
}

// ParkedChiplet reports whether the overlay currently parks chiplet ch at
// virtual time t (the governor's own re-park guard).
func (o *Overlay) ParkedChiplet(ch topology.ChipletID, t int64) bool {
	_, down := o.parked(ch, t)
	return down
}
