package fault

import (
	"fmt"
	"math"
	"sort"

	"charm/internal/topology"
)

// span is one half-open down-window [from, to).
type span struct{ from, to int64 }

// step is one segment of a degradation step function: from virtual time t
// onward the resource runs at milli/1000 of its healthy cost (milli >= 1000;
// 1000 means healthy).
type step struct {
	t     int64
	milli int64
}

// Plan is a compiled, immutable fault schedule: per-resource step functions
// over virtual time. All queries are pure and lock-free; a nil *Plan is
// valid and reports a permanently healthy machine, so callers never need a
// nil check on the hot path.
type Plan struct {
	topo     *topology.Topology
	coreDown [][]span // per core, sorted by from, non-overlapping
	link     [][]step // per chiplet fabric link
	sock     [][]step // per socket external link
	memc     [][]step // per NUMA node memory channel
	therm    [][]step // per chiplet thermal factor
	events   []Event  // validated, sorted (includes chiplet expansion sources)
	name     string
	seed     uint64

	// ov is the dynamic overlay (overlay.go): runtime-appended thermal
	// steps and park spans layered over the static timelines. Set once via
	// AttachOverlay before the plan is shared; nil for purely static plans,
	// so the query paths pay a single nil check.
	ov *Overlay
}

// AttachOverlay arms the dynamic overlay on the plan. It must be called
// once, before the plan is handed to the runtime/machine (the field is
// read without synchronization afterwards).
func (p *Plan) AttachOverlay(o *Overlay) {
	if p.ov != nil {
		panic("fault: AttachOverlay called twice")
	}
	p.ov = o
}

// Overlay returns the attached dynamic overlay, or nil.
func (p *Plan) Overlay() *Overlay {
	if p == nil {
		return nil
	}
	return p.ov
}

// Compile validates the schedule against topo and builds the per-resource
// timelines. Chiplet-offline events expand to their member cores;
// overlapping windows on the same core merge; overlapping degradation
// windows on the same link/node/chiplet compound multiplicatively.
func (s *Schedule) Compile(topo *topology.Topology) (*Plan, error) {
	if s != nil && s.Power != nil {
		// The closed-loop governor owns the thermal timeline (its overlay
		// replaces static steps); refuse the ambiguous combination.
		for _, e := range s.Events {
			if e.Kind == ThermalThrottle {
				return nil, fmt.Errorf("fault: plan %q: %w", s.Name, ErrThermalConflict)
			}
		}
	}
	if s == nil || len(s.Events) == 0 {
		p := &Plan{topo: topo}
		if s != nil {
			p.name, p.seed = s.Name, s.Seed
		}
		return p, nil
	}
	if topo == nil {
		return nil, fmt.Errorf("fault: Compile needs a topology")
	}
	evs := append([]Event(nil), s.Events...)
	sortEvents(evs)

	coreWins := make([][]span, topo.NumCores())
	linkWins := make([][]win, topo.NumChiplets())
	sockWins := make([][]win, topo.Sockets)
	memWins := make([][]win, topo.NumNodes())
	thermWins := make([][]win, topo.NumChiplets())

	for i, e := range evs {
		to := e.To
		if to == 0 {
			to = Forever
		}
		if e.From < 0 || to <= e.From {
			return nil, fmt.Errorf("fault: event %d (%s unit %d): bad window [%d, %d)", i, e.Kind, e.Unit, e.From, to)
		}
		needFactor := false
		var limit int
		switch e.Kind {
		case CoreOffline:
			limit = topo.NumCores()
		case ChipletOffline:
			limit = topo.NumChiplets()
		case LinkBrownout, ThermalThrottle:
			limit, needFactor = topo.NumChiplets(), true
		case SocketBrownout:
			limit, needFactor = topo.Sockets, true
		case MemBrownout:
			limit, needFactor = topo.NumNodes(), true
		default:
			return nil, fmt.Errorf("fault: event %d: unknown kind %d", i, e.Kind)
		}
		if e.Unit < 0 || e.Unit >= limit {
			return nil, fmt.Errorf("fault: event %d (%s): unit %d out of range [0, %d)", i, e.Kind, e.Unit, limit)
		}
		if needFactor && (e.Factor < 1 || math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0)) {
			return nil, fmt.Errorf("fault: event %d (%s unit %d): factor %v must be a finite value >= 1", i, e.Kind, e.Unit, e.Factor)
		}
		switch e.Kind {
		case CoreOffline:
			coreWins[e.Unit] = append(coreWins[e.Unit], span{e.From, to})
		case ChipletOffline:
			for _, c := range topo.CoresOfChiplet(topology.ChipletID(e.Unit)) {
				coreWins[c] = append(coreWins[c], span{e.From, to})
			}
		case LinkBrownout:
			linkWins[e.Unit] = append(linkWins[e.Unit], win{e.From, to, e.Factor})
		case SocketBrownout:
			sockWins[e.Unit] = append(sockWins[e.Unit], win{e.From, to, e.Factor})
		case MemBrownout:
			memWins[e.Unit] = append(memWins[e.Unit], win{e.From, to, e.Factor})
		case ThermalThrottle:
			thermWins[e.Unit] = append(thermWins[e.Unit], win{e.From, to, e.Factor})
		}
	}

	p := &Plan{
		topo:     topo,
		coreDown: make([][]span, topo.NumCores()),
		link:     make([][]step, topo.NumChiplets()),
		sock:     make([][]step, topo.Sockets),
		memc:     make([][]step, topo.NumNodes()),
		therm:    make([][]step, topo.NumChiplets()),
		events:   evs,
		name:     s.Name,
		seed:     s.Seed,
	}
	for c, wins := range coreWins {
		p.coreDown[c] = mergeSpans(wins)
	}
	// Reject schedules that offline the whole machine: a plan with zero
	// live cores cannot make progress, and the runtime's park protocol
	// would spin virtual time to the (possibly never-arriving) revival. A
	// full outage, if one exists, begins at some core's down-window start,
	// so checking those instants covers every point in time.
	for c := range p.coreDown {
		for _, sp := range p.coreDown[c] {
			if p.CoresDown(sp.from) == topo.NumCores() {
				return nil, fmt.Errorf("fault: plan %q offlines all %d cores at t=%d; at least one core must stay live",
					s.Name, topo.NumCores(), sp.from)
			}
		}
	}
	build := func(dst [][]step, src [][]win) {
		for u, wins := range src {
			dst[u] = buildSteps(wins)
		}
	}
	build(p.link, linkWins)
	build(p.sock, sockWins)
	build(p.memc, memWins)
	build(p.therm, thermWins)
	return p, nil
}

// mergeSpans sorts and coalesces overlapping/adjacent down-windows.
func mergeSpans(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].from < in[j].from })
	out := in[:1]
	for _, s := range in[1:] {
		last := &out[len(out)-1]
		if s.from <= last.to {
			if s.to > last.to {
				last.to = s.to
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// win is a degradation window before compilation into steps.
type win struct {
	from, to int64
	factor   float64
}

// buildSteps turns overlapping degradation windows into a step function.
// Concurrent windows compound multiplicatively; the factor is stored in
// milli-units so queries stay in integer arithmetic.
func buildSteps(wins []win) []step {
	if len(wins) == 0 {
		return nil
	}
	bounds := make([]int64, 0, 2*len(wins))
	for _, w := range wins {
		bounds = append(bounds, w.from)
		if w.to != Forever {
			bounds = append(bounds, w.to)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var out []step
	last := int64(1000)
	for i, b := range bounds {
		if i > 0 && b == bounds[i-1] {
			continue
		}
		f := 1.0
		for _, w := range wins {
			if w.from <= b && b < w.to {
				f *= w.factor
			}
		}
		milli := int64(f*1000 + 0.5)
		if milli < 1000 {
			milli = 1000
		}
		if milli != last {
			out = append(out, step{b, milli})
			last = milli
		}
	}
	return out
}

// segmentAt evaluates a step function and additionally reports how long its
// answer stays valid: the milli-factor in effect at t and the first virtual
// time >= t at which the factor may change (Forever when no later step
// exists). Callers can cache the factor until that boundary instead of
// re-running the binary search per query.
func segmentAt(steps []step, t int64) (milli, until int64) {
	lo, hi := 0, len(steps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if steps[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	until = Forever
	if lo < len(steps) {
		until = steps[lo].t
	}
	if lo == 0 {
		return 1000, until
	}
	return steps[lo-1].milli, until
}

// milliAt evaluates a step function: the milli-factor in effect at t.
func milliAt(steps []step, t int64) int64 {
	// Most resources have no faults; most faulted ones have few steps, so a
	// binary search keeps the hot path cheap even for long schedules.
	lo, hi := 0, len(steps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if steps[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 1000
	}
	return steps[lo-1].milli
}

// spanAt returns the down-window containing t, if any.
func spanAt(spans []span, t int64) (span, bool) {
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if spans[mid].from <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return span{}, false
	}
	if s := spans[lo-1]; t < s.to {
		return s, true
	}
	return span{}, false
}

// Name reports the schedule's label ("" for a nil or empty plan).
func (p *Plan) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Seed reports the schedule's seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Events returns the validated, sorted event list (nil for a nil plan).
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return p.events
}

// Empty reports whether the plan injects no faults at all. A plan hosting
// a dynamic overlay is never empty: the governor may append state at any
// time.
func (p *Plan) Empty() bool { return p == nil || (len(p.events) == 0 && p.ov == nil) }

// CoreDown reports whether core c is offline at virtual time t, by the
// static timelines or an overlay park of the core's chiplet.
func (p *Plan) CoreDown(c topology.CoreID, t int64) bool {
	if p == nil {
		return false
	}
	if int(c) < len(p.coreDown) {
		if _, down := spanAt(p.coreDown[c], t); down {
			return true
		}
	}
	if o := p.ov; o != nil {
		if _, down := o.parked(o.topo.ChipletOf(c), t); down {
			return true
		}
	}
	return false
}

// CoreUpAt returns the earliest virtual time >= t at which core c is
// online (t itself when the core is already up, Forever when it never
// returns). Static down-windows and overlay park spans can abut or
// overlap, so the answer iterates until neither covers it.
func (p *Plan) CoreUpAt(c topology.CoreID, t int64) int64 {
	if p == nil {
		return t
	}
	up := t
	for {
		next := up
		if int(c) < len(p.coreDown) {
			if s, down := spanAt(p.coreDown[c], next); down {
				next = s.to
			}
		}
		if o := p.ov; o != nil && next != Forever {
			if end, down := o.parked(o.topo.ChipletOf(c), next); down {
				next = end
			}
		}
		if next == up {
			return up
		}
		up = next
	}
}

// CoresDown counts offline cores at virtual time t.
func (p *Plan) CoresDown(t int64) int {
	if p == nil {
		return 0
	}
	n := 0
	if o := p.ov; o != nil {
		// With an overlay armed the static slices may be empty (an empty
		// compiled plan hosting only dynamic state), so count by topology.
		for c := 0; c < o.topo.NumCores(); c++ {
			if p.CoreDown(topology.CoreID(c), t) {
				n++
			}
		}
		return n
	}
	for c := range p.coreDown {
		if _, down := spanAt(p.coreDown[c], t); down {
			n++
		}
	}
	return n
}

// ChipletLinkMilli returns the fabric-link degradation factor for chiplet
// ch at t, in milli-units (1000 = healthy, 8000 = 8x slower).
func (p *Plan) ChipletLinkMilli(ch topology.ChipletID, t int64) int64 {
	if p == nil || int(ch) >= len(p.link) {
		return 1000
	}
	return milliAt(p.link[ch], t)
}

// SocketLinkMilli returns the external-link degradation factor for socket
// sk at t, in milli-units.
func (p *Plan) SocketLinkMilli(sk topology.SocketID, t int64) int64 {
	if p == nil || int(sk) >= len(p.sock) {
		return 1000
	}
	return milliAt(p.sock[sk], t)
}

// MemMilli returns the memory-channel degradation factor for NUMA node n
// at t, in milli-units.
func (p *Plan) MemMilli(n topology.NodeID, t int64) int64 {
	if p == nil || int(n) >= len(p.memc) {
		return 1000
	}
	return milliAt(p.memc[n], t)
}

// ThermalMilli returns the compute-slowdown factor for chiplet ch at t, in
// milli-units. Once a dynamic overlay step is in effect it replaces the
// static timeline (the governor owns thermal state from its first append).
func (p *Plan) ThermalMilli(ch topology.ChipletID, t int64) int64 {
	if p == nil {
		return 1000
	}
	m := int64(1000)
	if int(ch) < len(p.therm) {
		m = milliAt(p.therm[ch], t)
	}
	if o := p.ov; o != nil {
		if om, _, active := o.thermalSegment(ch, t); active {
			m = om
		}
	}
	return m
}

// ThermalSegment returns the compute-slowdown factor for chiplet ch at t
// together with the first virtual time >= t at which the factor may change
// (Forever when it never does). The pair describes one segment of the
// step function, so hot paths can cache the factor and re-query only at
// segment boundaries.
//
// With a dynamic overlay attached, an overlay step in effect at t takes
// precedence over the static timeline, and the reported boundary is
// additionally capped at the next governor tick: the governor only
// appends new steps as clocks cross tick boundaries, so the cap is what
// keeps cached segments from outliving a future append.
func (p *Plan) ThermalSegment(ch topology.ChipletID, t int64) (milli, until int64) {
	if p == nil {
		return 1000, Forever
	}
	milli, until = 1000, Forever
	if int(ch) < len(p.therm) {
		milli, until = segmentAt(p.therm[ch], t)
	}
	o := p.ov
	if o == nil {
		return milli, until
	}
	if om, ou, active := o.thermalSegment(ch, t); active {
		milli, until = om, ou
	} else if ou < until {
		until = ou
	}
	if b := o.nextBoundary(t); b < until {
		until = b
	}
	return milli, until
}
