// Package fault implements deterministic, virtual-time fault injection for
// the simulated chiplet machine: cores and whole chiplets going offline and
// coming back, fabric-link brownouts (bandwidth/latency degradation),
// memory-channel degradation, and per-chiplet thermal-throttle windows.
//
// A Schedule is a plain list of fault windows in virtual time, either built
// programmatically or generated from a named spec with a seed
// (see ParseSpec). Compile turns it into an immutable Plan: per-resource
// step functions over virtual time. Because every query is a pure function
// of (resource, virtual time), fault state needs no locks, no injector
// goroutine, and no host-time coupling — two runs with the same seed and
// schedule observe byte-identical fault state at every virtual instant,
// regardless of host scheduling.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"charm/internal/rng"
	"charm/internal/topology"
)

// ErrThermalConflict reports a schedule that combines static
// thermal-throttle events with the closed-loop power plane: the governor
// owns the thermal timeline once armed (its overlay steps replace the
// static ones), so a spec declaring both is almost certainly a mistake.
// Returned wrapped; test with errors.Is.
var ErrThermalConflict = errors.New("static thermal-throttle events conflict with the closed-loop power plane")

// Kind classifies a fault event.
type Kind uint8

const (
	// CoreOffline removes one core from service for the window.
	CoreOffline Kind = iota
	// ChipletOffline removes every core of one chiplet for the window.
	ChipletOffline
	// LinkBrownout divides one chiplet fabric link's bandwidth by Factor
	// (and multiplies explicit message latency by the same factor).
	LinkBrownout
	// SocketBrownout degrades one socket's external (xGMI/UPI) link.
	SocketBrownout
	// MemBrownout divides one NUMA node's memory-channel bandwidth by
	// Factor.
	MemBrownout
	// ThermalThrottle multiplies compute and access costs of every core on
	// one chiplet by Factor (frequency reduction under a thermal cap).
	ThermalThrottle

	numKinds
)

var kindNames = [numKinds]string{
	"core-offline", "chiplet-offline", "link-brownout",
	"socket-brownout", "mem-brownout", "thermal-throttle",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Forever marks a window that never closes (To field).
const Forever = int64(math.MaxInt64)

// Event is one fault window [From, To) in virtual nanoseconds. Unit
// identifies the affected resource under Kind's namespace (core ID, chiplet
// ID, socket ID, or NUMA node ID). Factor is the degradation multiplier for
// brownout/throttle kinds (>= 1; ignored for offline kinds).
type Event struct {
	Kind   Kind
	Unit   int
	From   int64
	To     int64
	Factor float64
}

// PowerKnobs carries the closed-loop power-plane parameters a "power"
// spec requests. The fault package only transports them (the plane itself
// lives in internal/power, which resolves zero fields to defaults): tdp is
// the per-chiplet power clamp in watts, rc the thermal time constant R·C
// in virtual ns, and setpoint the soft-throttle temperature in °C.
type PowerKnobs struct {
	TDPWatts  float64
	TauNS     int64
	SetpointC float64
}

// Schedule is an ordered set of fault events, reproducible from its seed.
type Schedule struct {
	// Name labels the schedule in reports ("none", "chiplet-flap", ...).
	Name string
	// Seed reproduces any randomized victim choices.
	Seed uint64
	// Events are the fault windows; order is irrelevant (Compile sorts).
	Events []Event
	// Power, when non-nil, asks the runtime to arm the closed-loop
	// thermal/energy plane with these knobs (set by the "power" spec).
	// Compile rejects schedules that combine it with static
	// ThermalThrottle events (ErrThermalConflict).
	Power *PowerKnobs
}

// New returns an empty named schedule.
func New(name string, seed uint64) *Schedule {
	return &Schedule{Name: name, Seed: seed}
}

func (s *Schedule) add(e Event) *Schedule {
	s.Events = append(s.Events, e)
	return s
}

// OfflineCore removes core c during [from, to).
func (s *Schedule) OfflineCore(c topology.CoreID, from, to int64) *Schedule {
	return s.add(Event{Kind: CoreOffline, Unit: int(c), From: from, To: to})
}

// OfflineChiplet removes every core of chiplet ch during [from, to).
func (s *Schedule) OfflineChiplet(ch topology.ChipletID, from, to int64) *Schedule {
	return s.add(Event{Kind: ChipletOffline, Unit: int(ch), From: from, To: to})
}

// LinkBrownout degrades chiplet ch's fabric link by factor during [from, to).
func (s *Schedule) LinkBrownout(ch topology.ChipletID, from, to int64, factor float64) *Schedule {
	return s.add(Event{Kind: LinkBrownout, Unit: int(ch), From: from, To: to, Factor: factor})
}

// SocketBrownout degrades socket sk's external link by factor during [from, to).
func (s *Schedule) SocketBrownout(sk topology.SocketID, from, to int64, factor float64) *Schedule {
	return s.add(Event{Kind: SocketBrownout, Unit: int(sk), From: from, To: to, Factor: factor})
}

// MemBrownout degrades NUMA node n's memory bandwidth by factor during [from, to).
func (s *Schedule) MemBrownout(n topology.NodeID, from, to int64, factor float64) *Schedule {
	return s.add(Event{Kind: MemBrownout, Unit: int(n), From: from, To: to, Factor: factor})
}

// ThermalThrottle slows chiplet ch's cores by factor during [from, to).
func (s *Schedule) ThermalThrottle(ch topology.ChipletID, from, to int64, factor float64) *Schedule {
	return s.add(Event{Kind: ThermalThrottle, Unit: int(ch), From: from, To: to, Factor: factor})
}

// specOpts are the "key=value" parameters of a named spec.
type specOpts struct {
	seed    uint64
	period  int64
	horizon int64
	factor  float64
	count   int
}

// ParseSpec builds a schedule from a named spec string for the given
// topology. The grammar is
//
//	name[:key=value[,key=value...]]
//
// with names none, core-flap, chiplet-flap, brownout, mem-brownout,
// thermal, chaos, power and keys seed (uint), period (virtual ns), horizon
// (virtual ns), factor (float >= 1), count (victims per window). Victims
// are chosen by a seeded SplitMix64 stream, so the same spec always yields
// the same schedule. Flap schedules leave at least one chiplet online at
// all times by construction (one victim window per period).
//
// The "power" name is the closed-loop scenario: it emits no static events
// and instead sets Schedule.Power, asking the runtime to arm the thermal/
// energy governor. Its keys are tdp (watts per chiplet), rc (thermal time
// constant R·C in virtual ns) and setpoint (soft-throttle °C); the generic
// keys are invalid for it, and combining it with static thermal events
// fails Compile with ErrThermalConflict.
func ParseSpec(spec string, topo *topology.Topology) (*Schedule, error) {
	name := spec
	rest := ""
	if i := indexByte(spec, ':'); i >= 0 {
		name, rest = spec[:i], spec[i+1:]
	}
	if name == "power" {
		// The closed-loop scenario has its own key set (tdp, rc, setpoint)
		// and generates no static events: it arms the runtime governor.
		s := New(name, 1)
		knobs, err := parsePowerOpts(rest)
		if err != nil {
			return nil, fmt.Errorf("fault: spec %q: %w", spec, err)
		}
		s.Power = knobs
		return s, nil
	}
	opts := specOpts{
		seed:    1,
		period:  1_000_000,   // 1 ms virtual between fault windows
		horizon: 256_000_000, // generate windows for the first 256 ms
		factor:  0,           // per-name default
		count:   1,
	}
	if rest != "" {
		if err := parseOpts(rest, &opts); err != nil {
			return nil, fmt.Errorf("fault: spec %q: %w", spec, err)
		}
	}
	if opts.period <= 0 || opts.horizon <= 0 {
		return nil, fmt.Errorf("fault: spec %q: period and horizon must be positive", spec)
	}
	if opts.factor != 0 && (opts.factor < 1 || math.IsNaN(opts.factor) || math.IsInf(opts.factor, 0)) {
		return nil, fmt.Errorf("fault: spec %q: factor must be a finite value >= 1", spec)
	}
	s := New(name, opts.seed)
	gen := func(stream uint64, emit func(st *uint64, from, to int64)) {
		st := rng.Seed(opts.seed, stream)
		for t := int64(0); t+opts.period <= opts.horizon; t += opts.period {
			// The fault occupies the middle half of each period, so the
			// machine alternates between degraded and healthy windows.
			emit(&st, t+opts.period/4, t+3*opts.period/4)
		}
	}
	factor := func(def float64) float64 {
		if opts.factor != 0 {
			return opts.factor
		}
		return def
	}
	switch name {
	case "none":
	case "core-flap":
		gen(1, func(st *uint64, from, to int64) {
			for i := 0; i < opts.count; i++ {
				s.OfflineCore(topology.CoreID(rng.Intn(st, topo.NumCores())), from, to)
			}
		})
	case "chiplet-flap":
		n := topo.NumChiplets()
		count := opts.count
		if count >= n {
			count = n - 1 // never offline the whole machine
		}
		gen(2, func(st *uint64, from, to int64) {
			for i := 0; i < count; i++ {
				s.OfflineChiplet(topology.ChipletID(rng.Intn(st, n)), from, to)
			}
		})
	case "brownout":
		gen(3, func(st *uint64, from, to int64) {
			s.LinkBrownout(topology.ChipletID(rng.Intn(st, topo.NumChiplets())), from, to, factor(8))
		})
	case "mem-brownout":
		gen(4, func(st *uint64, from, to int64) {
			s.MemBrownout(topology.NodeID(rng.Intn(st, topo.NumNodes())), from, to, factor(4))
		})
	case "thermal":
		gen(5, func(st *uint64, from, to int64) {
			s.ThermalThrottle(topology.ChipletID(rng.Intn(st, topo.NumChiplets())), from, to, factor(3))
		})
	case "chaos":
		n := topo.NumChiplets()
		gen(2, func(st *uint64, from, to int64) {
			if n > 1 {
				s.OfflineChiplet(topology.ChipletID(rng.Intn(st, n)), from, to)
			}
		})
		gen(3, func(st *uint64, from, to int64) {
			s.LinkBrownout(topology.ChipletID(rng.Intn(st, n)), from, to, factor(8))
		})
		gen(4, func(st *uint64, from, to int64) {
			s.MemBrownout(topology.NodeID(rng.Intn(st, topo.NumNodes())), from, to, 4)
		})
		gen(5, func(st *uint64, from, to int64) {
			s.ThermalThrottle(topology.ChipletID(rng.Intn(st, n)), from, to, 3)
		})
	default:
		return nil, fmt.Errorf("fault: unknown schedule %q (have none, core-flap, chiplet-flap, brownout, mem-brownout, thermal, chaos, power)", name)
	}
	return s, nil
}

// parsePowerOpts parses the "power" scenario's key set. Zero-valued knobs
// mean "use the plane's default"; explicit values must be finite and
// positive.
func parsePowerOpts(s string) (*PowerKnobs, error) {
	k := &PowerKnobs{}
	seen := make(map[string]bool, 3)
	for len(s) > 0 {
		kv := s
		if i := indexByte(s, ','); i >= 0 {
			kv, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		i := indexByte(kv, '=')
		if i < 0 {
			return nil, fmt.Errorf("malformed option %q (want key=value)", kv)
		}
		key, val := kv[:i], kv[i+1:]
		if seen[key] {
			return nil, fmt.Errorf("duplicate option %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "tdp":
			_, err = fmt.Sscanf(val, "%g", &k.TDPWatts)
			if err == nil && (k.TDPWatts <= 0 || math.IsNaN(k.TDPWatts) || math.IsInf(k.TDPWatts, 0)) {
				err = fmt.Errorf("must be a finite value > 0, got %v", k.TDPWatts)
			}
		case "rc":
			_, err = fmt.Sscanf(val, "%d", &k.TauNS)
			if err == nil && k.TauNS <= 0 {
				err = fmt.Errorf("must be positive virtual ns, got %d", k.TauNS)
			}
		case "setpoint":
			_, err = fmt.Sscanf(val, "%g", &k.SetpointC)
			if err == nil && (k.SetpointC <= 0 || math.IsNaN(k.SetpointC) || math.IsInf(k.SetpointC, 0)) {
				err = fmt.Errorf("must be a finite value > 0, got %v", k.SetpointC)
			}
		default:
			return nil, fmt.Errorf("unknown option %q (power takes tdp, rc, setpoint)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("option %q: %v", kv, err)
		}
	}
	return k, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parseOpts(s string, o *specOpts) error {
	seen := make(map[string]bool, 4)
	for len(s) > 0 {
		kv := s
		if i := indexByte(s, ','); i >= 0 {
			kv, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		i := indexByte(kv, '=')
		if i < 0 {
			return fmt.Errorf("malformed option %q (want key=value)", kv)
		}
		key, val := kv[:i], kv[i+1:]
		if seen[key] {
			// A repeated key is almost always a typo'd spec; refusing beats
			// silently letting the last occurrence win.
			return fmt.Errorf("duplicate option %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			_, err = fmt.Sscanf(val, "%d", &o.seed)
		case "period":
			_, err = fmt.Sscanf(val, "%d", &o.period)
		case "horizon":
			_, err = fmt.Sscanf(val, "%d", &o.horizon)
		case "factor":
			_, err = fmt.Sscanf(val, "%g", &o.factor)
		case "count":
			_, err = fmt.Sscanf(val, "%d", &o.count)
		default:
			return fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return fmt.Errorf("option %q: %v", kv, err)
		}
	}
	return nil
}

// sortEvents orders events for deterministic compilation and reporting.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].From != evs[j].From {
			return evs[i].From < evs[j].From
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Unit < evs[j].Unit
	})
}
