package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"charm/internal/topology"
)

func TestNilPlanIsHealthy(t *testing.T) {
	var p *Plan
	if p.CoreDown(0, 100) {
		t.Error("nil plan reports a core down")
	}
	if got := p.CoreUpAt(3, 42); got != 42 {
		t.Errorf("CoreUpAt on nil plan = %d, want 42", got)
	}
	if p.ChipletLinkMilli(0, 0) != 1000 || p.SocketLinkMilli(0, 0) != 1000 ||
		p.MemMilli(0, 0) != 1000 || p.ThermalMilli(0, 0) != 1000 {
		t.Error("nil plan reports degradation")
	}
	if p.CoresDown(0) != 0 || !p.Empty() || p.Events() != nil {
		t.Error("nil plan is not empty")
	}
}

func TestCoreOfflineWindows(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	p, err := New("t", 1).
		OfflineCore(3, 100, 200).
		OfflineCore(3, 150, 300). // overlaps: merges to [100, 300)
		OfflineCore(5, 500, 0).   // To=0 means forever
		Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		core topology.CoreID
		t    int64
		down bool
	}{
		{3, 99, false}, {3, 100, true}, {3, 299, true}, {3, 300, false},
		{5, 499, false}, {5, 500, true}, {5, math.MaxInt64 - 1, true},
		{0, 150, false},
	} {
		if got := p.CoreDown(tc.core, tc.t); got != tc.down {
			t.Errorf("CoreDown(%d, %d) = %v, want %v", tc.core, tc.t, got, tc.down)
		}
	}
	if got := p.CoreUpAt(3, 150); got != 300 {
		t.Errorf("CoreUpAt(3, 150) = %d, want 300", got)
	}
	if got := p.CoreUpAt(5, 600); got != Forever {
		t.Errorf("CoreUpAt(5, 600) = %d, want Forever", got)
	}
	if got := p.CoresDown(160); got != 1 {
		t.Errorf("CoresDown(160) = %d, want 1", got)
	}
	if got := p.CoresDown(600); got != 1 {
		t.Errorf("CoresDown(600) = %d, want 1", got)
	}
}

func TestChipletOfflineExpandsToCores(t *testing.T) {
	topo := topology.Synthetic(4, 4)
	p, err := New("t", 1).OfflineChiplet(2, 1000, 2000).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < topo.NumCores(); c++ {
		want := topo.ChipletOf(topology.CoreID(c)) == 2
		if got := p.CoreDown(topology.CoreID(c), 1500); got != want {
			t.Errorf("core %d down = %v, want %v", c, got, want)
		}
	}
	if got := p.CoresDown(1500); got != 4 {
		t.Errorf("CoresDown = %d, want 4", got)
	}
}

func TestDegradationFactorsCompound(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	p, err := New("t", 1).
		LinkBrownout(1, 100, 300, 2).
		LinkBrownout(1, 200, 400, 3). // overlap [200, 300): 6x
		MemBrownout(0, 50, 150, 4).
		ThermalThrottle(3, 0, 0, 1.5).
		SocketBrownout(0, 10, 20, 8).
		Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		t    int64
		want int64
	}{
		{99, 1000}, {100, 2000}, {199, 2000}, {200, 6000},
		{299, 6000}, {300, 3000}, {399, 3000}, {400, 1000},
	} {
		if got := p.ChipletLinkMilli(1, tc.t); got != tc.want {
			t.Errorf("ChipletLinkMilli(1, %d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if got := p.ChipletLinkMilli(0, 250); got != 1000 {
		t.Errorf("unaffected link degraded: %d", got)
	}
	if got := p.MemMilli(0, 100); got != 4000 {
		t.Errorf("MemMilli = %d, want 4000", got)
	}
	if got := p.ThermalMilli(3, 1<<40); got != 1500 {
		t.Errorf("ThermalMilli = %d, want 1500 (forever window)", got)
	}
	if got := p.SocketLinkMilli(0, 15); got != 8000 {
		t.Errorf("SocketLinkMilli = %d, want 8000", got)
	}
}

func TestCompileRejectsBadEvents(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	for name, s := range map[string]*Schedule{
		"negative from":   New("t", 1).OfflineCore(0, -5, 10),
		"empty window":    New("t", 1).OfflineCore(0, 10, 10),
		"inverted window": New("t", 1).OfflineCore(0, 20, 10),
		"core range":      New("t", 1).OfflineCore(topology.CoreID(topo.NumCores()), 0, 10),
		"chiplet range":   New("t", 1).OfflineChiplet(-1, 0, 10),
		"factor < 1":      New("t", 1).LinkBrownout(0, 0, 10, 0.5),
		"factor NaN":      New("t", 1).MemBrownout(0, 0, 10, math.NaN()),
		"factor Inf":      New("t", 1).ThermalThrottle(0, 0, 10, math.Inf(1)),
	} {
		if _, err := s.Compile(topo); err == nil {
			t.Errorf("%s: Compile accepted a bad event", name)
		}
	}
}

func TestEmptyAndNilSchedules(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	p, err := New("empty", 7).Compile(topo)
	if err != nil || !p.Empty() || p.Name() != "empty" || p.Seed() != 7 {
		t.Fatalf("empty schedule: plan=%+v err=%v", p, err)
	}
	var s *Schedule
	p, err = s.Compile(topo)
	if err != nil || !p.Empty() {
		t.Fatalf("nil schedule: plan=%+v err=%v", p, err)
	}
}

func TestParseSpecDeterministic(t *testing.T) {
	topo := topology.Synthetic(8, 2)
	a, err := ParseSpec("chiplet-flap:seed=9,period=1000,horizon=10000", topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("chiplet-flap:seed=9,period=1000,horizon=10000", topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec produced different schedules")
	}
	if len(a.Events) != 10 {
		t.Errorf("got %d events, want 10 (one per period)", len(a.Events))
	}
	c, err := ParseSpec("chiplet-flap:seed=10,period=1000,horizon=10000", topo)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical victim choices")
	}
	if _, err := a.Compile(topo); err != nil {
		t.Errorf("generated schedule does not compile: %v", err)
	}
}

func TestParseSpecNames(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	for _, name := range []string{"none", "core-flap", "chiplet-flap", "brownout", "mem-brownout", "thermal", "chaos"} {
		s, err := ParseSpec(name, topo)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := s.Compile(topo); err != nil {
			t.Errorf("%s: compile: %v", name, err)
		}
		if name != "none" && len(s.Events) == 0 {
			t.Errorf("%s: no events generated", name)
		}
	}
	for _, bad := range []string{"bogus", "chaos:nope=1", "chaos:factor=0.5", "chaos:factor", "brownout:period=-1"} {
		if _, err := ParseSpec(bad, topo); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestChipletFlapNeverKillsWholeMachine(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	s, err := ParseSpec("chiplet-flap:count=5,period=1000,horizon=4000", topo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []int64{500, 1500, 2500, 3500} {
		if p.CoresDown(tm) >= topo.NumCores() {
			t.Fatalf("all cores down at t=%d", tm)
		}
	}
}

func TestKindString(t *testing.T) {
	if CoreOffline.String() != "core-offline" || ThermalThrottle.String() != "thermal-throttle" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

// TestParseSpecErrorPaths: every malformed spec class must be refused with
// a message naming the offending fragment.
func TestParseSpecErrorPaths(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"no-such-scenario", "unknown schedule"},
		{"flaky-cores:seed=1", "unknown schedule"},
		{"chaos:seed", "malformed option"},
		{"chaos:,", "malformed option"},
		{"thermal:seed=1,seed=2", "duplicate option"},
		{"brownout:period=5,period=5", "duplicate option"},
		{"core-flap:bogus=1", "unknown option"},
		{"chaos:seed=notanumber", `option "seed=notanumber"`},
		{"thermal:factor=wide", `option "factor=wide"`},
		{"brownout:period=0", "period and horizon must be positive"},
		{"mem-brownout:horizon=-5", "period and horizon must be positive"},
		{"chaos:factor=0.25", "factor must be a finite value >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			s, err := ParseSpec(tc.spec, topo)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted a bad spec (schedule %v)", tc.spec, s.Name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseSpec(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

// TestCompileRejectsAllCoresDown: a plan with zero live cores at any
// instant must be refused at compile time — the runtime's park protocol
// needs at least one live core to drain to.
func TestCompileRejectsAllCoresDown(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	dead := New("dead", 1).
		OfflineChiplet(0, 1_000, Forever).
		OfflineChiplet(1, 5_000, Forever)
	if _, err := dead.Compile(topo); err == nil || !strings.Contains(err.Error(), "offlines all") {
		t.Fatalf("Compile accepted an all-cores-down plan: %v", err)
	}
	// Staggered windows that always leave chiplet 1 alive are fine.
	ok := New("ok", 1).
		OfflineChiplet(0, 1_000, Forever).
		OfflineCore(2, 5_000, 9_000)
	if _, err := ok.Compile(topo); err != nil {
		t.Fatalf("Compile rejected a survivable plan: %v", err)
	}
}
