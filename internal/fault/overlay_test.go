package fault

import (
	"errors"
	"strings"
	"testing"

	"charm/internal/topology"
)

// TestThermalSegmentBoundaries: the fastpath placement cache trusts a
// cached factor until exactly the reported boundary, so the segment edges
// must be exact — a step taking effect at t must be visible at t, not
// t+1.
func TestThermalSegmentBoundaries(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	p, err := New("t", 1).ThermalThrottle(1, 100, 200, 2.0).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at           int64
		milli, until int64
	}{
		{0, 1000, 100},
		{99, 1000, 100},
		{100, 2000, 200}, // step edge exactly at query time
		{199, 2000, 200},
		{200, 1000, Forever}, // factor expires exactly at its window end
		{1 << 40, 1000, Forever},
	}
	for _, tc := range cases {
		if m, u := p.ThermalSegment(1, tc.at); m != tc.milli || u != tc.until {
			t.Errorf("ThermalSegment(1, %d) = (%d, %d), want (%d, %d)", tc.at, m, u, tc.milli, tc.until)
		}
	}
	// Untouched chiplet and empty/nil plans report the permanent healthy
	// segment.
	if m, u := p.ThermalSegment(0, 150); m != 1000 || u != Forever {
		t.Errorf("healthy chiplet segment = (%d, %d), want (1000, Forever)", m, u)
	}
	empty, err := New("e", 1).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if m, u := empty.ThermalSegment(2, 0); m != 1000 || u != Forever {
		t.Errorf("empty plan segment = (%d, %d), want (1000, Forever)", m, u)
	}
	var nilPlan *Plan
	if m, u := nilPlan.ThermalSegment(0, 0); m != 1000 || u != Forever {
		t.Errorf("nil plan segment = (%d, %d), want (1000, Forever)", m, u)
	}
}

// TestOverlayOverStaticPrecedence: once an overlay step is in effect it
// replaces the static timeline entirely, and every reported segment is
// capped at the next governor grid boundary so cached answers cannot
// outlive a future append.
func TestOverlayOverStaticPrecedence(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	p, err := New("t", 1).ThermalThrottle(1, 100, 200, 2.0).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewOverlay(topo, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachOverlay(ov)

	// Before any append the static answer holds, but the boundary cap
	// applies: the governor may append at the next grid line.
	if m, u := p.ThermalSegment(1, 150); m != 2000 || u != 200 {
		t.Fatalf("pre-append ThermalSegment = (%d, %d), want (2000, 200)", m, u)
	}
	if m, u := p.ThermalSegment(1, 50); m != 1000 || u != 100 {
		t.Fatalf("pre-append healthy segment = (%d, %d), want (1000, 100)", m, u)
	}
	if m, u := p.ThermalSegment(1, 300); m != 1000 || u != 1000 {
		t.Fatalf("post-window segment = (%d, %d), want cap at grid boundary 1000, got until=%d", m, u, u)
	}

	// An overlay step not yet in effect bounds the static answer instead
	// of replacing it.
	ov.AppendThermal(1, 3000, 4000)
	if m, u := p.ThermalSegment(1, 150); m != 2000 || u != 200 {
		t.Fatalf("future overlay step changed the active segment: (%d, %d)", m, u)
	}
	if m := p.ThermalMilli(1, 2500); m != 1000 {
		t.Fatalf("ThermalMilli before overlay start = %d, want 1000", m)
	}

	// Once in effect, the overlay wins over the static timeline — even
	// where the static plan declared a different factor.
	if m := p.ThermalMilli(1, 3000); m != 4000 {
		t.Fatalf("ThermalMilli at overlay start = %d, want 4000", m)
	}
	if m, u := p.ThermalSegment(1, 3100); m != 4000 || u != 4000 {
		t.Fatalf("overlay segment = (%d, %d), want (4000, 4000) [grid cap]", m, u)
	}
	// A later recovery step returns the chiplet to nominal; the overlay
	// stays authoritative.
	ov.AppendThermal(1, 5000, 1000)
	if m := p.ThermalMilli(1, 5000); m != 1000 {
		t.Fatalf("ThermalMilli after recovery = %d, want 1000", m)
	}
	// Other chiplets never see the overlay state.
	if m := p.ThermalMilli(0, 3500); m != 1000 {
		t.Fatalf("untouched chiplet ThermalMilli = %d, want 1000", m)
	}
}

// TestOverlayParkQueries: park spans feed the same CoreDown / CoreUpAt /
// CoresDown queries the runtime's park protocol uses for static offline
// windows, and abutting static+overlay windows chain in CoreUpAt.
func TestOverlayParkQueries(t *testing.T) {
	topo := topology.Synthetic(4, 2) // 4 chiplets x 2 cores
	p, err := New("t", 1).OfflineCore(2, 100, 500).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewOverlay(topo, 100)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachOverlay(ov)
	if p.Empty() {
		t.Fatal("plan hosting an overlay reports Empty")
	}

	ov.AppendPark(1, 400, 900) // cores 2 and 3; overlaps core 2's static window
	if !p.CoreDown(2, 450) || !p.CoreDown(3, 450) {
		t.Fatal("parked chiplet's cores not down")
	}
	if p.CoreDown(4, 450) {
		t.Fatal("unparked chiplet's core down")
	}
	// Static window [100,500) chains into the park [400,900): the core is
	// continuously down until 900.
	if got := p.CoreUpAt(2, 150); got != 900 {
		t.Fatalf("CoreUpAt(2, 150) = %d, want 900 (static chains into park)", got)
	}
	if got := p.CoreUpAt(3, 400); got != 900 {
		t.Fatalf("CoreUpAt(3, 400) = %d, want 900", got)
	}
	if got := p.CoresDown(450); got != 2 {
		t.Fatalf("CoresDown(450) = %d, want 2 (core 2 counted once despite static+park overlap)", got)
	}
	if got := p.CoresDown(950); got != 0 {
		t.Fatalf("CoresDown(950) = %d, want 0", got)
	}
	if !ov.ParkedChiplet(1, 400) || ov.ParkedChiplet(1, 900) {
		t.Fatal("ParkedChiplet edges wrong (want [400,900))")
	}
}

// TestOverlayAppendRules: monotone append enforcement, same-time
// replacement, and redundant-step elision.
func TestOverlayAppendRules(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	ov, err := NewOverlay(topo, 50)
	if err != nil {
		t.Fatal(err)
	}
	ov.AppendThermal(0, 100, 1500)
	ov.AppendThermal(0, 100, 3000) // same t: replace
	if m, _, active := ov.thermalSegment(0, 100); !active || m != 3000 {
		t.Fatalf("same-t replace: got (%d, %v), want (3000, true)", m, active)
	}
	ov.AppendThermal(0, 150, 3000) // same milli: elided
	if cur := ov.therm[0].Load(); len(*cur) != 1 {
		t.Fatalf("redundant step not elided: %d steps", len(*cur))
	}
	ov.AppendThermal(0, 200, 500) // floors at 1000
	if m, _, active := ov.thermalSegment(0, 250); !active || m != 1000 {
		t.Fatalf("floor: got (%d, %v), want (1000, true)", m, active)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order thermal append did not panic")
			}
		}()
		ov.AppendThermal(0, 150, 2000)
	}()

	ov.AppendPark(1, 100, 200)
	ov.AppendPark(1, 200, 200) // to <= from: no-op
	if cur := ov.park[1].Load(); len(*cur) != 1 {
		t.Fatalf("empty park span appended: %d spans", len(*cur))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlapping park append did not panic")
			}
		}()
		ov.AppendPark(1, 150, 300)
	}()

	if _, err := NewOverlay(nil, 50); err == nil {
		t.Error("NewOverlay accepted a nil topology")
	}
	if _, err := NewOverlay(topo, 0); err == nil {
		t.Error("NewOverlay accepted a non-positive tick")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second AttachOverlay did not panic")
			}
		}()
		p, _ := New("t", 1).Compile(topo)
		p.AttachOverlay(ov)
		p.AttachOverlay(ov)
	}()
}

// TestParseSpecPower: the closed-loop scenario parses its own key set and
// refuses everything else.
func TestParseSpecPower(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	s, err := ParseSpec("power", topo)
	if err != nil {
		t.Fatal(err)
	}
	if s.Power == nil || len(s.Events) != 0 {
		t.Fatalf("bare power spec: Power=%v events=%d", s.Power, len(s.Events))
	}
	s, err = ParseSpec("power:tdp=12.5,rc=2000000,setpoint=70", topo)
	if err != nil {
		t.Fatal(err)
	}
	if s.Power.TDPWatts != 12.5 || s.Power.TauNS != 2_000_000 || s.Power.SetpointC != 70 {
		t.Fatalf("power knobs = %+v", *s.Power)
	}
	if _, err := s.Compile(topo); err != nil {
		t.Fatalf("power-only schedule failed to compile: %v", err)
	}

	for _, tc := range []struct {
		spec    string
		wantSub string
	}{
		{"power:tdp=0", "finite value > 0"},
		{"power:tdp=-3", "finite value > 0"},
		{"power:tdp=NaN", "finite value > 0"},
		{"power:rc=0", "positive virtual ns"},
		{"power:rc=oops", `option "rc=oops"`},
		{"power:setpoint=-10", "finite value > 0"},
		{"power:tdp=5,tdp=6", "duplicate option"},
		{"power:period=100", "unknown option"},
		{"power:tdp", "malformed option"},
		{"thermal:tdp=5", "unknown option"},
	} {
		t.Run(tc.spec, func(t *testing.T) {
			_, err := ParseSpec(tc.spec, topo)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted a bad spec", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseSpec(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

// TestCompileThermalConflict: static thermal-throttle events and the
// closed-loop plane are mutually exclusive, and the refusal is typed.
func TestCompileThermalConflict(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	s := New("clash", 1).ThermalThrottle(0, 100, 200, 2.0)
	s.Power = &PowerKnobs{TDPWatts: 8}
	if _, err := s.Compile(topo); !errors.Is(err, ErrThermalConflict) {
		t.Fatalf("Compile = %v, want ErrThermalConflict", err)
	}
	// Non-thermal static events coexist with the plane.
	ok := New("ok", 1).LinkBrownout(1, 100, 200, 4.0)
	ok.Power = &PowerKnobs{TDPWatts: 8}
	if _, err := ok.Compile(topo); err != nil {
		t.Fatalf("Compile rejected power + link brownout: %v", err)
	}
}
