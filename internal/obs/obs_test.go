package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("c_total", "c", nil)
	h := r.Histogram("h_ns", "h", nil, []int64{10, 100})
	c.Add(0, 5)
	h.Observe(0, 7)
	if c.Value() != 0 {
		t.Errorf("disabled counter = %d, want 0", c.Value())
	}
	if _, _, n := h.Merged(); n != 0 {
		t.Errorf("disabled histogram count = %d, want 0", n)
	}
	r.SetEnabled(true)
	c.Add(0, 5)
	if c.Value() != 5 {
		t.Errorf("enabled counter = %d, want 5", c.Value())
	}
}

func TestRegistrationDedup(t *testing.T) {
	r := NewRegistry(1)
	a := r.Counter("x_total", "x", Labels{"k": "1"})
	b := r.Counter("x_total", "x", Labels{"k": "1"})
	if a != b {
		t.Error("same name+labels must return the same handle")
	}
	c := r.Counter("x_total", "x", Labels{"k": "2"})
	if a == c {
		t.Error("different labels must return distinct handles")
	}
	// Re-registering with Traced upgrades the descriptor.
	r.Counter("x_total", "x", Labels{"k": "1"}, Traced())
	if !a.d.Traced {
		t.Error("Traced option must stick on re-registration")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "x", Labels{"k": "1"})
}

// TestConcurrentRecord hammers sharded handles from N goroutines under
// -race and checks the merged totals against the serial expectation.
func TestConcurrentRecord(t *testing.T) {
	const shards, perShard = 8, 10000
	r := NewRegistry(shards)
	r.SetEnabled(true)
	c := r.Counter("ops_total", "ops", nil)
	g := r.Gauge("load", "load", nil)
	h := r.Histogram("lat_ns", "latency", nil, []int64{10, 100, 1000})
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				c.Inc(s)
				g.Add(s, 1)
				h.Observe(s, int64(i%2000))
				if i%100 == 0 {
					r.MaybeSample(int64(i)) // exercise the sampling path concurrently
				}
			}
		}(s)
	}
	wg.Wait()
	if c.Value() != shards*perShard {
		t.Errorf("counter = %d, want %d", c.Value(), shards*perShard)
	}
	if g.Value() != shards*perShard {
		t.Errorf("gauge = %d, want %d", g.Value(), shards*perShard)
	}
	counts, _, n := h.Merged()
	if n != shards*perShard {
		t.Errorf("histogram count = %d, want %d", n, shards*perShard)
	}
	// Serial reference: i%2000 uniform over [0,2000); per shard 11 values
	// are <= 10, 90 in (10,100], 900 in (100,1000], 999 above.
	want := []int64{11 * shards * (perShard / 2000), 90 * shards * (perShard / 2000),
		900 * shards * (perShard / 2000), 999 * shards * (perShard / 2000)}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], w)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry(1)
	r.SetEnabled(true)
	h := r.Histogram("b_ns", "b", nil, []int64{10, 100})
	// Bounds are inclusive: 10 lands in bucket 0, 11 in bucket 1,
	// 100 in bucket 1, 101 overflows to +Inf.
	for _, v := range []int64{-5, 0, 10} {
		h.Observe(0, v)
	}
	for _, v := range []int64{11, 100} {
		h.Observe(0, v)
	}
	h.Observe(0, 101)
	counts, sum, n := h.Merged()
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v, want [3 2 1]", counts)
	}
	if n != 6 {
		t.Errorf("count = %d, want 6", n)
	}
	if sum != -5+0+10+11+100+101 {
		t.Errorf("sum = %d", sum)
	}
}

// TestSnapshotMergeMatchesSerial drives the same observation stream
// through a sharded registry and a serial single-shard one and asserts
// identical snapshots (modulo timestamps).
func TestSnapshotMergeMatchesSerial(t *testing.T) {
	sharded := NewRegistry(5)
	serial := NewRegistry(1)
	for _, r := range []*Registry{sharded, serial} {
		r.SetEnabled(true)
	}
	bounds := []int64{50, 500, 5000}
	cs := sharded.Counter("t_total", "t", nil)
	c1 := serial.Counter("t_total", "t", nil)
	hs := sharded.Histogram("t_ns", "t", nil, bounds)
	h1 := serial.Histogram("t_ns", "t", nil, bounds)
	for i := 0; i < 5000; i++ {
		v := int64(i*7919) % 10000
		cs.Add(i%5, v)
		c1.Add(0, v)
		hs.Observe(i%5, v)
		h1.Observe(0, v)
	}
	a, b := sharded.Snapshot(42), serial.Snapshot(42)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		x, y := &a.Samples[i], &b.Samples[i]
		if x.Key() != y.Key() || x.Value != y.Value {
			t.Errorf("sample %s: %v vs %v", x.Key(), x.Value, y.Value)
		}
		if (x.Hist == nil) != (y.Hist == nil) {
			t.Fatalf("histogram presence differs at %s", x.Key())
		}
		if x.Hist != nil {
			if x.Hist.Sum != y.Hist.Sum || x.Hist.Count != y.Hist.Count {
				t.Errorf("hist %s: sum/count %d/%d vs %d/%d", x.Key(),
					x.Hist.Sum, x.Hist.Count, y.Hist.Sum, y.Hist.Count)
			}
			for j := range x.Hist.Counts {
				if x.Hist.Counts[j] != y.Hist.Counts[j] {
					t.Errorf("hist %s bucket %d: %d vs %d", x.Key(), j,
						x.Hist.Counts[j], y.Hist.Counts[j])
				}
			}
		}
	}
}

func TestFuncMetricAndSampling(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	var val float64 = 3
	r.Func("f_gauge", "f", KindGauge, Labels{"link": "ccd0"}, func(now int64) float64 {
		return val + float64(now)
	}, Traced())
	r.Counter("quiet_total", "not traced", nil) // absent from periodic samples
	r.EnableSampling(100, 3)

	if r.MaybeSample(50) {
		t.Error("sample before interval elapsed")
	}
	for _, now := range []int64{100, 250, 400, 550} {
		if !r.MaybeSample(now) {
			t.Errorf("sample at %d rejected", now)
		}
	}
	hist := r.History()
	if len(hist) != 3 {
		t.Fatalf("history = %d entries, want 3 (ring cap)", len(hist))
	}
	if r.DroppedSamples() != 1 {
		t.Errorf("dropped = %d, want 1", r.DroppedSamples())
	}
	// Ring preserves time order after wrapping.
	if hist[0].T != 250 || hist[2].T != 550 {
		t.Errorf("history times = %d..%d, want 250..550", hist[0].T, hist[2].T)
	}
	for _, h := range hist {
		if len(h.Samples) != 1 || h.Samples[0].Name != "f_gauge" {
			t.Errorf("periodic sample must hold only traced metrics, got %v", h.Samples)
		}
		if h.Samples[0].Value != val+float64(h.T) {
			t.Errorf("func value = %v at t=%d", h.Samples[0].Value, h.T)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	c := r.Counter("charm_tasks_total", "Tasks executed.", nil)
	c.Add(0, 3)
	c.Add(1, 4)
	g := r.Gauge("charm_occ", "Occupancy.", Labels{"link": "ccd1"})
	g.Set(0, 2)
	h := r.Histogram("charm_lat_ns", "Latency.", nil, []int64{100, 1000})
	h.Observe(0, 50)
	h.Observe(1, 500)
	h.Observe(0, 5000)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(777)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"charm_virtual_time_ns 777",
		"# TYPE charm_tasks_total counter",
		"charm_tasks_total 7",
		`charm_occ{link="ccd1"} 2`,
		"# TYPE charm_lat_ns histogram",
		`charm_lat_ns_bucket{le="100"} 1`,
		`charm_lat_ns_bucket{le="1000"} 2`,
		`charm_lat_ns_bucket{le="+Inf"} 3`,
		"charm_lat_ns_sum 5550",
		"charm_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name_or_name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed line %q", line)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	c := r.Counter("charm_tasks_total", "Tasks.", Labels{"chiplet": "0"})
	c.Add(1, 9)
	h := r.Histogram("charm_lat_ns", "Latency.", nil, []int64{100})
	h.Observe(0, 42)
	r.Func("charm_util", "Util.", KindGauge, nil, func(int64) float64 { return 0.5 }, Traced())
	r.EnableSampling(10, 16)
	r.MaybeSample(10)
	r.MaybeSample(20)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot(999), r.History()); err != nil {
		t.Fatal(err)
	}
	var doc JSONDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.VirtualTimeNS != 999 {
		t.Errorf("virtual_time_ns = %d", doc.VirtualTimeNS)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("metrics = %d, want 3", len(doc.Metrics))
	}
	byName := map[string]JSONMetric{}
	for _, m := range doc.Metrics {
		byName[m.Name] = m
	}
	if m := byName["charm_tasks_total"]; m.Value == nil || *m.Value != 9 || m.Type != "counter" {
		t.Errorf("tasks metric = %+v", m)
	}
	if m := byName["charm_lat_ns"]; m.Count == nil || *m.Count != 1 || len(m.Buckets) != 2 {
		t.Errorf("histogram metric = %+v", m)
	} else if m.Buckets[1].LE != "+Inf" {
		t.Errorf("last bucket le = %q", m.Buckets[1].LE)
	}
	if len(doc.History) != 2 || doc.History[0].Values["charm_util"] != 0.5 {
		t.Errorf("history = %+v", doc.History)
	}
}
