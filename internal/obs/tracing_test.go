package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// --- Prometheus label escaping (exposition-format compliance) ---

func TestPromLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`dou"ble`, `dou\"ble`},
		{"new\nline", `new\nline`},
		{"tab\tstays", "tab\tstays"}, // only \ " \n are escaped
		{"uni-\u00e9\u4e16", "uni-\u00e9\u4e16"},
		{`all\three"at
once`, `all\\three\"at\nonce`},
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// End to end: the escaped value must appear in the exposition line and
	// the raw value must not produce an unescaped quote or newline.
	r := NewRegistry(1)
	r.SetEnabled(true)
	r.Counter("charm_escape_test_total", "h", Labels{"path": "a\\b\"c\nd"}).Inc(0)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	want := `charm_escape_test_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition output missing %q:\n%s", want, buf.String())
	}
}

// --- JSON export edge cases (labels survive, exemplars surface) ---

func TestJSONLabelAndExemplarEdgeCases(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	r.Counter("charm_json_edge_total", "h", Labels{"k": `q"uote` + "\nnl"}).Inc(0)
	h := r.Histogram("charm_json_lat_ns", "h", nil, []int64{10, 100}, WithExemplars())
	h.ObserveT(0, 5, TraceID(7))
	h.ObserveT(1, 500, TraceID(9))
	h.ObserveT(1, 500, TraceID(3)) // 9 stays: exemplar keeps the max trace
	doc := BuildJSON(r.Snapshot(0), nil)
	var found, exemplars int
	for _, m := range doc.Metrics {
		switch m.Name {
		case "charm_json_edge_total":
			found++
			if m.Labels["k"] != `q"uote`+"\nnl" {
				t.Errorf("label mangled in JSON: %q", m.Labels["k"])
			}
		case "charm_json_lat_ns":
			found++
			for _, b := range m.Buckets {
				switch b.Exemplar {
				case 7:
					if b.LE != "10" {
						t.Errorf("exemplar 7 on bucket le=%s, want 10", b.LE)
					}
					exemplars++
				case 9:
					if b.LE != "+Inf" {
						t.Errorf("exemplar 9 on bucket le=%s, want +Inf", b.LE)
					}
					exemplars++
				case 0: // no exemplar on this bucket
				default:
					t.Errorf("unexpected exemplar %d on le=%s", b.Exemplar, b.LE)
				}
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d of 2 metrics in JSON doc", found)
	}
	if exemplars != 2 {
		t.Errorf("surfaced %d exemplars, want 2", exemplars)
	}
}

// TestHistogramExemplars: the per-bucket exemplar slot must keep the
// maximum TraceID across shards (a shard-order-independent merge), and a
// histogram without WithExemplars must return nil.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry(4)
	r.SetEnabled(true)
	h := r.Histogram("charm_ex_ns", "h", nil, []int64{100}, WithExemplars())
	for shard := 0; shard < 4; shard++ {
		h.ObserveT(shard, 50, TraceID(10+shard))
		h.ObserveT(shard, 5000, TraceID(20+shard))
	}
	h.ObserveT(0, 50, 0) // trace 0 never becomes an exemplar
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplar slots = %d, want 2", len(ex))
	}
	if ex[0] != 13 || ex[1] != 23 {
		t.Errorf("exemplars = %v, want [13 23]", ex)
	}
	plain := r.Histogram("charm_noex_ns", "h", nil, []int64{100})
	plain.Observe(0, 50)
	if plain.Exemplars() != nil {
		t.Error("histogram without WithExemplars returned exemplars")
	}
}

// --- Sampling under concurrency (satellite: race coverage) ---

// TestSamplingConcurrentShards: concurrent MaybeSample and shard writes
// must race-cleanly produce a bounded history with monotone timestamps and
// an accurate drop count.
func TestSamplingConcurrentShards(t *testing.T) {
	const shards, iters, cap = 8, 2000, 16
	r := NewRegistry(shards)
	r.SetEnabled(true)
	r.EnableSampling(1, cap) // every virtual tick
	c := r.Counter("charm_samp_total", "h", nil, Traced())
	g := r.Gauge("charm_samp_gauge", "h", nil, Traced())
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; i <= iters; i++ {
				c.Inc(s)
				g.Set(s, int64(i))
				r.MaybeSample(int64(i))
			}
		}(s)
	}
	wg.Wait()
	hist := r.History()
	if len(hist) == 0 || len(hist) > cap {
		t.Fatalf("history length %d, want 1..%d", len(hist), cap)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].T <= hist[i-1].T {
			t.Fatalf("history out of order: T[%d]=%d, T[%d]=%d",
				i-1, hist[i-1].T, i, hist[i].T)
		}
	}
	// Every sample taken past the cap evicted exactly one snapshot.
	taken := int64(len(hist)) + r.DroppedSamples()
	if r.DroppedSamples() == 0 && taken > cap {
		t.Errorf("took %d samples with cap %d but dropped none", taken, cap)
	}
	if c.Value() != shards*iters {
		t.Errorf("counter = %d, want %d", c.Value(), shards*iters)
	}
}

// --- Tracer mechanics ---

// TestTracerRetainReleaseCompact: Compact must drop only the spans of
// released (or ring-evicted) traces and keep retained ones intact.
func TestTracerRetainReleaseCompact(t *testing.T) {
	tr := NewTracer(2, 0)
	tr.SetEnabled(true)
	for id := TraceID(1); id <= 4; id++ {
		tr.Emit(int(id)%2, Span{Trace: id, Kind: SpanTask, Start: int64(id), End: int64(id) + 1})
	}
	tr.Retain(1)
	tr.Retain(2)
	tr.Release(3)
	tr.Release(4)
	tr.Compact()
	if got := len(tr.TraceOf(1).Spans) + len(tr.TraceOf(2).Spans); got != 2 {
		t.Errorf("retained traces lost spans: %d left, want 2", got)
	}
	for _, id := range []TraceID{3, 4} {
		if n := len(tr.TraceOf(id).Spans); n != 0 {
			t.Errorf("released trace %d still has %d spans", id, n)
		}
	}
	// A trace that is neither retained nor released survives compaction
	// (it may still be in flight).
	tr.Emit(0, Span{Trace: 9, Kind: SpanTask, Start: 9, End: 10})
	tr.Compact()
	if n := len(tr.TraceOf(9).Spans); n != 1 {
		t.Errorf("in-flight trace compacted away (%d spans)", n)
	}
}

// TestTracerRingEviction: retaining past the flight-recorder cap must
// evict the oldest retained trace, which the next Compact reclaims.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(1, 0)
	tr.SetEnabled(true)
	tr.SetFlightRecorderCap(2)
	for id := TraceID(1); id <= 3; id++ {
		tr.Emit(0, Span{Trace: id, Kind: SpanTask, Start: int64(id), End: int64(id) + 1})
		tr.Retain(id)
	}
	ids := tr.RetainedIDs()
	if len(ids) != 2 || tr.Retained(1) {
		t.Fatalf("retained = %v, want [2 3] (oldest evicted)", ids)
	}
	tr.Compact()
	if n := len(tr.TraceOf(1).Spans); n != 0 {
		t.Errorf("evicted trace 1 still has %d spans after Compact", n)
	}
}

// TestTracerShardOverflowDrops: a full shard must drop spans and count
// them rather than grow or block.
func TestTracerShardOverflowDrops(t *testing.T) {
	tr := NewTracer(1, 4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Emit(0, Span{Trace: 1, Kind: SpanTask, Start: int64(i), End: int64(i) + 1})
	}
	if got := tr.SpanCount(); got != 4 {
		t.Errorf("span count = %d, want 4 (shard cap)", got)
	}
	if got := tr.DroppedSpans(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

// TestTraceJSONCanonicalOrder: the exported document must not depend on
// which shard a span landed in — only on the span set itself.
func TestTraceJSONCanonicalOrder(t *testing.T) {
	spans := []Span{
		{Trace: 2, Kind: SpanStage, Start: 10, End: 30, Stage: 0, Arg: 4},
		{Trace: 1, Kind: SpanTask, Start: 10, End: 20, Worker: 3},
		{Trace: 1, Kind: SpanAdmitQueue, Start: 0, End: 10, Stage: -1},
		{Trace: 0, Kind: SpanBreaker, Start: 15, End: 15, Arg: 1},
	}
	var docs [2]bytes.Buffer
	for rev := 0; rev < 2; rev++ {
		tr := NewTracer(3, 0)
		tr.SetEnabled(true)
		for i, s := range spans {
			if rev == 1 {
				s = spans[len(spans)-1-i]
			}
			tr.Emit((i*7)%3, s) // scatter across shards differently per pass
		}
		if err := tr.WriteJSON(&docs[rev]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Errorf("trace JSON depends on emission order:\n%s\nvs\n%s",
			docs[0].String(), docs[1].String())
	}
	if !strings.Contains(docs[0].String(), `"admit-queue"`) {
		t.Errorf("span kinds not symbolic in JSON:\n%s", docs[0].String())
	}
}

// --- SLO burn-rate tracker ---

// TestSLOBurnRateWindows: the alert must fire only when both windows
// exceed their thresholds, and clear once the fast window recovers.
func TestSLOBurnRateWindows(t *testing.T) {
	cfg := BurnConfig{SlotNS: 100, FastWindow: 500, SlowWindow: 3_000,
		FastBurn: 10, SlowBurn: 5}
	tr := NewSLOTracker(cfg)
	tr.SetObjective(0, 0.99) // 1% budget: burn = badFraction * 100
	now := int64(0)
	record := func(n int, good bool) {
		for i := 0; i < n; i++ {
			now += 10
			tr.Record(0, good, now)
			tr.Evaluate(now)
		}
	}
	record(100, true) // healthy baseline: burn 0
	if alerts := tr.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts on healthy traffic: %+v", alerts)
	}
	record(60, false) // 100% bad = burn 100 in both windows
	alerts := tr.Alerts()
	if len(alerts) == 0 || !alerts[0].Firing {
		t.Fatalf("no alert after sustained bad traffic: %+v", alerts)
	}
	// Recovery: good traffic drains the fast window first; the alert must
	// clear even while the slow window still remembers the bad era.
	record(200, true)
	alerts = tr.Alerts()
	last := alerts[len(alerts)-1]
	if last.Firing {
		t.Fatalf("alert never cleared after recovery: %+v", alerts)
	}
	st := tr.Status(now)
	if len(st) != 1 || st[0].Firing {
		t.Errorf("status still firing after recovery: %+v", st)
	}
	if st[0].Good != 300 || st[0].Bad != 60 {
		t.Errorf("lifetime good/bad = %d/%d, want 300/60", st[0].Good, st[0].Bad)
	}
}

// TestSLOBurnUnreachableTarget: a class whose target leaves more budget
// than the thresholds can ever burn must never fire.
func TestSLOBurnUnreachableTarget(t *testing.T) {
	tr := NewSLOTracker(BurnConfig{})
	tr.SetObjective(1, 0.5) // burn caps at 1/(1-0.5) = 2 < both thresholds
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += 10_000
		tr.Record(1, false, now)
		tr.Evaluate(now)
	}
	if alerts := tr.Alerts(); len(alerts) != 0 {
		t.Errorf("impossible alert fired: %+v", alerts)
	}
}

// --- Critical-path analyzer on hand-built traces ---

// TestAnalyzeSyntheticTrace checks the bucket math exactly: admit wait,
// dispatch wait, compute, stall, and a retry window carved out of queue.
func TestAnalyzeSyntheticTrace(t *testing.T) {
	tr := Trace{ID: 5, Spans: []Span{
		{Trace: 5, Kind: SpanAdmitQueue, Start: 100, End: 150, Stage: -1, Arg: 2},
		// Stage 0: dispatch 150, barrier 450. Critical task started
		// executing at 250 (100 queue+retry), ran 160 exec with 60 stall,
		// finishing at 410; 40 ns of barrier tail goes back to queue.
		{Trace: 5, Kind: SpanStage, Start: 150, End: 450, Stage: 0, Arg: 2},
		{Trace: 5, Kind: SpanTask, Start: 150, End: 410, Stage: 0, Arg: 250, Arg2: 60},
		{Trace: 5, Kind: SpanTask, Start: 150, End: 300, Stage: 0, Arg: 160, Arg2: 0},
		// A 30 ns retry backoff window inside the critical task's wait.
		{Trace: 5, Kind: SpanRetry, Start: 200, End: 230, Stage: 0, Arg: 1},
	}}
	b, ok := Analyze(tr)
	if !ok {
		t.Fatal("Analyze returned ok=false for a dispatched trace")
	}
	if b.Priority != 2 || b.Arrival != 100 || b.Finish != 450 || b.Total != 350 {
		t.Fatalf("frame: %+v", b)
	}
	if b.AdmitQueue != 50 {
		t.Errorf("AdmitQueue = %d, want 50", b.AdmitQueue)
	}
	// queue = (250-150) - 30 retry + 40 tail = 110
	if b.DispatchQueue != 110 || b.Retry != 30 {
		t.Errorf("DispatchQueue/Retry = %d/%d, want 110/30", b.DispatchQueue, b.Retry)
	}
	// compute = 410-250-60
	if b.Compute != 100 || b.Stall != 60 {
		t.Errorf("Compute/Stall = %d/%d, want 100/60", b.Compute, b.Stall)
	}
	if b.Unattributed != 0 || b.AttributedFraction() != 1 {
		t.Errorf("unattributed %d (%.2f attributed)", b.Unattributed, b.AttributedFraction())
	}
}

// TestAnalyzeShedTrace: a never-dispatched job is pure admit-queue time.
func TestAnalyzeShedTrace(t *testing.T) {
	tr := Trace{ID: 8, Spans: []Span{
		{Trace: 8, Kind: SpanShed, Start: 1000, End: 1600, Stage: -1, Arg: 1},
	}}
	b, ok := Analyze(tr)
	if ok {
		t.Fatal("ok=true for a shed trace with no stages")
	}
	if b.Total != 600 || b.AdmitQueue != 600 || b.Unattributed != 0 {
		t.Errorf("shed breakdown: %+v", b)
	}
	if b.Priority != 1 || b.Arrival != 1000 {
		t.Errorf("shed frame: priority %d arrival %d", b.Priority, b.Arrival)
	}
}
