// Package obs is the virtual-time observability substrate of the runtime:
// a metrics registry of counters, gauges, and fixed-bucket histograms,
// all sharded per worker so that recording stays off the simulated access
// fast path, merged only at snapshot time.
//
// Design rules:
//
//   - Recording is gated on one atomic enabled flag: with metrics off, a
//     Record costs a single read-mostly atomic load and no writes.
//   - Hot-path handles (Counter, Gauge, Histogram) are sharded: each
//     worker writes its own cache-line-padded slot, so concurrent workers
//     never contend on a metric.
//   - Snapshot-time metrics (Func) are evaluated lazily against the
//     current virtual time — per-chiplet PMU aggregations and link
//     occupancies cost nothing between snapshots.
//   - Periodic sampling is driven by virtual time (MaybeSample from the
//     scheduler tick), producing the time series the Chrome trace's
//     counter tracks and the JSON history are built from.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric for exporters.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Labels attaches dimensions (chiplet, link, channel, worker) to a metric.
type Labels map[string]string

// labelKey renders labels canonically (sorted) for dedup and ordering.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// Desc describes one registered metric.
type Desc struct {
	Name   string
	Help   string
	Labels Labels
	Kind   Kind
	// Traced metrics are included in periodic samples and exported as
	// Chrome-trace counter tracks.
	Traced bool
	// Exemplars gives a histogram one TraceID slot per bucket, linking
	// tail buckets to a job trace that landed there (ObserveT).
	Exemplars bool
}

// Option modifies a metric description at registration.
type Option func(*Desc)

// Traced marks a metric for periodic sampling / trace counter tracks.
func Traced() Option { return func(d *Desc) { d.Traced = true } }

// WithExemplars allocates per-bucket exemplar slots on a histogram so
// ObserveT can attach the observing job's TraceID to its bucket.
func WithExemplars() Option { return func(d *Desc) { d.Exemplars = true } }

// metric is the internal interface every registered metric implements.
type metric interface {
	describe() *Desc
	collect(now int64) Sample
}

// pad64 is a cache-line-padded atomic counter slot (one per shard).
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// Registry holds all metrics of one runtime.
type Registry struct {
	shards  int
	enabled atomic.Bool

	// Virtual-time sampling state.
	sampleEvery atomic.Int64
	lastSample  atomic.Int64

	mu      sync.Mutex
	metrics []metric
	byKey   map[string]metric

	histMu    sync.Mutex
	history   []Snapshot // ring buffer when full
	histStart int        // index of the oldest entry once wrapped
	histCap   int
	dropped   int64
}

// NewRegistry creates a registry whose sharded metrics have one slot per
// worker (shards < 1 selects 1). The registry starts disabled.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, byKey: map[string]metric{}}
}

// Shards returns the shard count handles were built with.
func (r *Registry) Shards() int { return r.shards }

// SetEnabled turns recording on or off. Disabled handles drop records
// after a single atomic load.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// register dedups by (name, labels): re-registering returns the existing
// metric (the kinds must agree), which makes instrumentation idempotent.
func (r *Registry) register(d Desc, mk func() metric) metric {
	key := d.Name + "{" + labelKey(d.Labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.describe().Kind != d.Kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", key, d.Kind, m.describe().Kind))
		}
		if d.Traced {
			m.describe().Traced = true
		}
		return m
	}
	m := mk()
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns) a sharded monotonic counter.
func (r *Registry) Counter(name, help string, labels Labels, opts ...Option) *Counter {
	d := Desc{Name: name, Help: help, Labels: labels, Kind: KindCounter}
	for _, o := range opts {
		o(&d)
	}
	return r.register(d, func() metric {
		return &Counter{d: d, r: r, shards: make([]pad64, r.shards)}
	}).(*Counter)
}

// Gauge registers (or returns) a sharded additive gauge: each shard holds
// its own contribution and the exported value is the sum over shards.
func (r *Registry) Gauge(name, help string, labels Labels, opts ...Option) *Gauge {
	d := Desc{Name: name, Help: help, Labels: labels, Kind: KindGauge}
	for _, o := range opts {
		o(&d)
	}
	return r.register(d, func() metric {
		return &Gauge{d: d, r: r, shards: make([]pad64, r.shards)}
	}).(*Gauge)
}

// Histogram registers (or returns) a fixed-bucket histogram. bounds are
// inclusive upper bucket bounds in ascending order; an implicit +Inf
// bucket catches the overflow.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []int64, opts ...Option) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	d := Desc{Name: name, Help: help, Labels: labels, Kind: KindHistogram}
	for _, o := range opts {
		o(&d)
	}
	return r.register(d, func() metric {
		h := &Histogram{d: d, r: r, bounds: append([]int64(nil), bounds...)}
		h.shards = make([]histShard, r.shards)
		for i := range h.shards {
			h.shards[i].counts = make([]atomic.Int64, len(bounds)+1)
			if d.Exemplars {
				h.shards[i].ex = make([]atomic.Uint64, len(bounds)+1)
			}
		}
		return h
	}).(*Histogram)
}

// Func registers a metric evaluated lazily at snapshot time against the
// snapshot's virtual timestamp. kind must be KindCounter or KindGauge.
func (r *Registry) Func(name, help string, kind Kind, labels Labels, f func(now int64) float64, opts ...Option) {
	if kind == KindHistogram {
		panic("obs: Func metrics cannot be histograms")
	}
	d := Desc{Name: name, Help: help, Labels: labels, Kind: kind}
	for _, o := range opts {
		o(&d)
	}
	r.register(d, func() metric { return &funcMetric{d: d, f: f} })
}

// Counter is a sharded monotonic counter.
type Counter struct {
	d      Desc
	r      *Registry
	shards []pad64
}

func (c *Counter) describe() *Desc { return &c.d }

// Add increments the counter by v on the given shard (the caller's worker
// ID). It is a no-op while the registry is disabled.
func (c *Counter) Add(shard int, v int64) {
	if !c.r.enabled.Load() {
		return
	}
	c.shards[shard].v.Add(v)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges all shards.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

func (c *Counter) collect(int64) Sample {
	return Sample{Name: c.d.Name, Labels: c.d.Labels, Kind: c.d.Kind,
		Help: c.d.Help, Traced: c.d.Traced, Value: float64(c.Value())}
}

// Gauge is a sharded additive gauge.
type Gauge struct {
	d      Desc
	r      *Registry
	shards []pad64
}

func (g *Gauge) describe() *Desc { return &g.d }

// Set stores the shard's contribution. Unlike counters, Set works even
// while the registry is disabled so state-tracking gauges stay coherent
// across enable/disable cycles (a Set is one atomic store either way).
func (g *Gauge) Set(shard int, v int64) { g.shards[shard].v.Store(v) }

// Add adjusts the shard's contribution by v (may be negative).
func (g *Gauge) Add(shard int, v int64) {
	if !g.r.enabled.Load() {
		return
	}
	g.shards[shard].v.Add(v)
}

// Value merges all shards by summing.
func (g *Gauge) Value() int64 {
	var s int64
	for i := range g.shards {
		s += g.shards[i].v.Load()
	}
	return s
}

func (g *Gauge) collect(int64) Sample {
	return Sample{Name: g.d.Name, Labels: g.d.Labels, Kind: g.d.Kind,
		Help: g.d.Help, Traced: g.d.Traced, Value: float64(g.Value())}
}

// histShard is one worker's private bucket array.
type histShard struct {
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	ex     []atomic.Uint64 // optional per-bucket exemplar TraceIDs
	_      [24]byte
}

// Histogram is a sharded fixed-bucket histogram over int64 observations
// (virtual nanoseconds in practice).
type Histogram struct {
	d      Desc
	r      *Registry
	bounds []int64
	shards []histShard
}

func (h *Histogram) describe() *Desc { return &h.d }

// Observe records v into the shard's bucket for the smallest bound >= v.
func (h *Histogram) Observe(shard int, v int64) { h.ObserveT(shard, v, 0) }

// ObserveT is Observe plus an exemplar: when the histogram was registered
// WithExemplars and trace is non-zero, the bucket's exemplar slot keeps
// the largest TraceID seen — a max is shard-order-independent, so merged
// exemplars are deterministic under replay (and the largest job id is the
// most recently admitted job to land in the bucket).
func (h *Histogram) ObserveT(shard int, v int64, trace TraceID) {
	if !h.r.enabled.Load() {
		return
	}
	s := &h.shards[shard]
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	s.counts[i].Add(1)
	s.sum.Add(v)
	if s.ex != nil && trace != 0 {
		for {
			old := s.ex[i].Load()
			if uint64(trace) <= old || s.ex[i].CompareAndSwap(old, uint64(trace)) {
				break
			}
		}
	}
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Merged returns the merged per-bucket counts (last entry is +Inf), the
// sum of observations, and the total count.
func (h *Histogram) Merged() (counts []int64, sum, count int64) {
	counts = make([]int64, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range counts {
			counts[i] += sh.counts[i].Load()
		}
		sum += sh.sum.Load()
	}
	for _, c := range counts {
		count += c
	}
	return counts, sum, count
}

// Exemplars merges the per-bucket exemplar TraceIDs across shards (max
// wins; 0 means none). Returns nil when the histogram has no exemplar
// slots.
func (h *Histogram) Exemplars() []TraceID {
	if !h.d.Exemplars {
		return nil
	}
	out := make([]TraceID, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		if sh.ex == nil {
			continue
		}
		for i := range out {
			if v := TraceID(sh.ex[i].Load()); v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

func (h *Histogram) collect(int64) Sample {
	counts, sum, count := h.Merged()
	return Sample{Name: h.d.Name, Labels: h.d.Labels, Kind: h.d.Kind,
		Help: h.d.Help, Traced: h.d.Traced,
		Hist: &HistData{Bounds: h.bounds, Counts: counts, Sum: sum, Count: count,
			Exemplars: h.Exemplars()}}
}

// funcMetric is evaluated at snapshot time.
type funcMetric struct {
	d Desc
	f func(now int64) float64
}

func (m *funcMetric) describe() *Desc { return &m.d }

func (m *funcMetric) collect(now int64) Sample {
	return Sample{Name: m.d.Name, Labels: m.d.Labels, Kind: m.d.Kind,
		Help: m.d.Help, Traced: m.d.Traced, Value: m.f(now)}
}

// HistData is a histogram's merged state in a snapshot.
type HistData struct {
	Bounds    []int64 // upper bounds, ascending, +Inf implicit
	Counts    []int64 // per-bucket (non-cumulative); len(Bounds)+1
	Sum       int64
	Count     int64
	Exemplars []TraceID // per-bucket exemplar TraceIDs (nil if disabled)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the distribution by
// linear interpolation within the bucket holding the target rank. Values
// in the +Inf overflow bucket are attributed to the last finite bound (a
// floor — the true quantile may be larger). Returns 0 when empty.
func (h *HistData) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.Counts)-1 {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Sample is one metric's value at snapshot time.
type Sample struct {
	Name   string
	Labels Labels
	Kind   Kind
	Help   string
	Traced bool
	Value  float64   // counter/gauge/func value
	Hist   *HistData // histogram state (nil otherwise)
}

// Key renders the sample's identity as name{labels}.
func (s *Sample) Key() string {
	lk := labelKey(s.Labels)
	if lk == "" {
		return s.Name
	}
	return s.Name + "{" + lk + "}"
}

// Snapshot is the full machine state at one virtual time.
type Snapshot struct {
	T       int64
	Samples []Sample
}

// Find returns the first sample with the given name and labels, or nil.
func (s *Snapshot) Find(name string, labels Labels) *Sample {
	want := labelKey(labels)
	for i := range s.Samples {
		if s.Samples[i].Name == name && labelKey(s.Samples[i].Labels) == want {
			return &s.Samples[i]
		}
	}
	return nil
}

// Snapshot merges every metric at virtual time now, sorted by
// (name, labels) so output is deterministic and diffable.
func (r *Registry) Snapshot(now int64) Snapshot {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	snap := Snapshot{T: now, Samples: make([]Sample, 0, len(metrics))}
	for _, m := range metrics {
		snap.Samples = append(snap.Samples, m.collect(now))
	}
	sort.SliceStable(snap.Samples, func(i, j int) bool {
		if snap.Samples[i].Name != snap.Samples[j].Name {
			return snap.Samples[i].Name < snap.Samples[j].Name
		}
		return labelKey(snap.Samples[i].Labels) < labelKey(snap.Samples[j].Labels)
	})
	return snap
}

// snapshotTraced collects only Traced, non-histogram metrics — the cheap
// periodic sample the trace counter tracks are built from.
func (r *Registry) snapshotTraced(now int64) Snapshot {
	r.mu.Lock()
	metrics := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		if d := m.describe(); d.Traced && d.Kind != KindHistogram {
			metrics = append(metrics, m)
		}
	}
	r.mu.Unlock()
	snap := Snapshot{T: now, Samples: make([]Sample, 0, len(metrics))}
	for _, m := range metrics {
		snap.Samples = append(snap.Samples, m.collect(now))
	}
	return snap
}

// EnableSampling turns on periodic traced-metric sampling every interval
// virtual nanoseconds, keeping at most maxSamples snapshots (ring buffer;
// older snapshots are dropped and counted). interval <= 0 disables.
func (r *Registry) EnableSampling(interval int64, maxSamples int) {
	if maxSamples < 1 {
		maxSamples = 4096
	}
	r.histMu.Lock()
	r.histCap = maxSamples
	r.histMu.Unlock()
	r.sampleEvery.Store(interval)
}

// MaybeSample records a traced-metric snapshot when at least the sampling
// interval has elapsed since the last one. Safe for concurrent use from
// every worker: one caller wins the CAS, the rest return immediately. The
// fast path (sampling off or not yet due) is two atomic loads.
func (r *Registry) MaybeSample(now int64) bool {
	iv := r.sampleEvery.Load()
	if iv <= 0 || !r.enabled.Load() {
		return false
	}
	last := r.lastSample.Load()
	if now-last < iv {
		return false
	}
	if !r.lastSample.CompareAndSwap(last, now) {
		return false
	}
	snap := r.snapshotTraced(now)
	r.histMu.Lock()
	if len(r.history) < r.histCap {
		r.history = append(r.history, snap)
	} else {
		r.history[r.histStart] = snap
		r.histStart = (r.histStart + 1) % r.histCap
		r.dropped++
	}
	r.histMu.Unlock()
	return true
}

// History returns the recorded periodic snapshots in time order.
func (r *Registry) History() []Snapshot {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	out := make([]Snapshot, 0, len(r.history))
	out = append(out, r.history[r.histStart:]...)
	out = append(out, r.history[:r.histStart]...)
	return out
}

// DroppedSamples reports how many periodic snapshots were evicted from
// the ring buffer (non-zero means History is a suffix of the run).
func (r *Registry) DroppedSamples() int64 {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	return r.dropped
}
