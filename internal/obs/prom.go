package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Samples arrive sorted by (name, labels) from
// Registry.Snapshot, so each family's HELP/TYPE header is emitted once.
// The snapshot's virtual time is exported as its own gauge,
// charm_virtual_time_ns, rather than as per-line timestamps (which
// Prometheus would interpret as wall-clock milliseconds).
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP charm_virtual_time_ns Virtual time of this snapshot.\n")
	fmt.Fprintf(bw, "# TYPE charm_virtual_time_ns gauge\n")
	fmt.Fprintf(bw, "charm_virtual_time_ns %d\n", s.T)
	prev := ""
	for i := range s.Samples {
		sm := &s.Samples[i]
		if sm.Name != prev {
			prev = sm.Name
			if sm.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", sm.Name, escapeHelp(sm.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", sm.Name, sm.Kind)
		}
		if sm.Hist != nil {
			writePromHistogram(bw, sm)
			continue
		}
		fmt.Fprintf(bw, "%s%s %s\n", sm.Name, promLabels(sm.Labels, "", ""), formatValue(sm.Value))
	}
	return bw.Flush()
}

// writePromHistogram emits the cumulative _bucket/_sum/_count series.
func writePromHistogram(w io.Writer, sm *Sample) {
	h := sm.Hist
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", sm.Name, promLabels(sm.Labels, "le", strconv.FormatInt(b, 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", sm.Name, promLabels(sm.Labels, "le", "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", sm.Name, promLabels(sm.Labels, "", ""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", sm.Name, promLabels(sm.Labels, "", ""), h.Count)
}

// promLabels renders {k="v",...} with an optional extra label appended.
func promLabels(l Labels, extraK, extraV string) string {
	if len(l) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: only
// backslash, double-quote, and newline are escaped; everything else —
// including non-ASCII UTF-8 — passes through raw. (Go's %q is wrong
// here: it emits \xNN/\uNNNN escapes the format does not define.)
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// formatValue prints integers without exponents and floats compactly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", "\\\\")
	return strings.ReplaceAll(h, "\n", "\\n")
}
