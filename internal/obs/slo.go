package obs

import (
	"fmt"
	"io"
	"sort"
)

// Multi-window SLO burn-rate tracking over virtual time. Each priority
// class carries an availability objective ("this fraction of jobs meets
// its deadline"); completions stream in as good/bad events bucketed into
// fixed virtual-time slots, and evaluation compares the burn rate — bad
// fraction divided by the error budget (1 − target) — over a fast and a
// slow window. An alert fires only when BOTH windows exceed their
// thresholds (the fast window gives low detection latency, the slow one
// filters blips), the standard multi-window multi-burn-rate construction
// from SRE practice. Everything is keyed to virtual timestamps, so
// deterministic replays produce identical alert sequences.

// BurnConfig shapes the evaluation windows. Zero values select the
// defaults, scaled for simulated runs (milliseconds of virtual time
// rather than the hours a production system would use).
type BurnConfig struct {
	SlotNS     int64   // bucketing granularity (default 50µs virtual)
	FastWindow int64   // fast window span (default 20 slots)
	SlowWindow int64   // slow window span (default 120 slots)
	FastBurn   float64 // fast-window burn threshold (default 14)
	SlowBurn   float64 // slow-window burn threshold (default 6)
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.SlotNS <= 0 {
		c.SlotNS = 50_000
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 20 * c.SlotNS
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 120 * c.SlotNS
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	return c
}

// sloSlot is one virtual-time bucket of outcomes.
type sloSlot struct {
	slot int64 // slot index (virtual time / SlotNS)
	good int64
	bad  int64
}

// sloClass tracks one priority class's budget.
type sloClass struct {
	class  int
	target float64
	slots  []sloSlot // ascending by slot; pruned past the slow window
	firing bool
	good   int64 // lifetime totals
	bad    int64
}

// SLOAlert is one burn-rate alert edge.
type SLOAlert struct {
	Class    int
	T        int64 // virtual time of the evaluation that flipped it
	Firing   bool  // true = fired, false = cleared
	FastBurn float64
	SlowBurn float64
}

// SLOTracker holds per-class error budgets. It is not internally
// synchronized: the job service drives it under its own lock, in
// virtual-time order, which is what keeps replays byte-identical.
type SLOTracker struct {
	cfg     BurnConfig
	classes map[int]*sloClass
	alerts  []SLOAlert
}

// NewSLOTracker builds a tracker with the given window config.
func NewSLOTracker(cfg BurnConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), classes: map[int]*sloClass{}}
}

// SetObjective declares a class's availability target, e.g. 0.95 means
// "95% of this class's jobs meet their deadline". Targets outside (0,1)
// are clamped.
func (t *SLOTracker) SetObjective(class int, target float64) {
	if target <= 0 {
		target = 0.5
	}
	if target >= 1 {
		target = 0.999
	}
	c := t.classes[class]
	if c == nil {
		c = &sloClass{class: class}
		t.classes[class] = c
	}
	c.target = target
}

// Record streams one job outcome for a class at virtual time now.
// Classes without a declared objective are ignored.
func (t *SLOTracker) Record(class int, good bool, now int64) {
	c := t.classes[class]
	if c == nil {
		return
	}
	slot := now / t.cfg.SlotNS
	n := len(c.slots)
	if n == 0 || c.slots[n-1].slot != slot {
		c.slots = append(c.slots, sloSlot{slot: slot})
		n++
		// Prune slots older than the slow window.
		min := slot - t.cfg.SlowWindow/t.cfg.SlotNS - 1
		cut := 0
		for cut < n && c.slots[cut].slot < min {
			cut++
		}
		if cut > 0 {
			c.slots = append(c.slots[:0], c.slots[cut:]...)
			n = len(c.slots)
		}
	}
	if good {
		c.slots[n-1].good++
		c.good++
	} else {
		c.slots[n-1].bad++
		c.bad++
	}
}

// burn computes the burn rate over [now-window, now] for one class.
func (t *SLOTracker) burn(c *sloClass, now, window int64) float64 {
	minSlot := (now - window) / t.cfg.SlotNS
	var good, bad int64
	for i := len(c.slots) - 1; i >= 0; i-- {
		if c.slots[i].slot < minSlot {
			break
		}
		good += c.slots[i].good
		bad += c.slots[i].bad
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - c.target
	return (float64(bad) / float64(total)) / budget
}

// Evaluate recomputes every class's windows at virtual time now and
// returns the alert edges (fired or cleared) this evaluation produced.
// Edges are also appended to the tracker's alert log.
func (t *SLOTracker) Evaluate(now int64) []SLOAlert {
	classes := make([]int, 0, len(t.classes))
	for k := range t.classes {
		classes = append(classes, k)
	}
	sort.Ints(classes)
	var edges []SLOAlert
	for _, k := range classes {
		c := t.classes[k]
		fast := t.burn(c, now, t.cfg.FastWindow)
		slow := t.burn(c, now, t.cfg.SlowWindow)
		firing := fast >= t.cfg.FastBurn && slow >= t.cfg.SlowBurn
		if firing != c.firing {
			c.firing = firing
			e := SLOAlert{Class: k, T: now, Firing: firing, FastBurn: fast, SlowBurn: slow}
			edges = append(edges, e)
			t.alerts = append(t.alerts, e)
		}
	}
	return edges
}

// Alerts returns the full alert-edge log in virtual-time order.
func (t *SLOTracker) Alerts() []SLOAlert { return t.alerts }

// SLOStatus is one class's summary for reports.
type SLOStatus struct {
	Class    int
	Target   float64
	Good     int64
	Bad      int64
	Achieved float64 // lifetime good fraction
	FastBurn float64
	SlowBurn float64
	Firing   bool
	Alerts   int // fired edges over the run
}

// Status summarizes every class at virtual time now.
func (t *SLOTracker) Status(now int64) []SLOStatus {
	classes := make([]int, 0, len(t.classes))
	for k := range t.classes {
		classes = append(classes, k)
	}
	sort.Ints(classes)
	out := make([]SLOStatus, 0, len(classes))
	for _, k := range classes {
		c := t.classes[k]
		st := SLOStatus{Class: k, Target: c.target, Good: c.good, Bad: c.bad,
			FastBurn: t.burn(c, now, t.cfg.FastWindow),
			SlowBurn: t.burn(c, now, t.cfg.SlowWindow), Firing: c.firing}
		if tot := c.good + c.bad; tot > 0 {
			st.Achieved = float64(c.good) / float64(tot)
		}
		for _, a := range t.alerts {
			if a.Class == k && a.Firing {
				st.Alerts++
			}
		}
		out = append(out, st)
	}
	return out
}

// WriteText renders the per-class status table plus the alert log.
func (t *SLOTracker) WriteText(w io.Writer, now int64) {
	fmt.Fprintf(w, "SLO status at virtual t=%d ns\n\n", now)
	fmt.Fprintf(w, "  %-5s %7s %9s %8s %8s %9s %9s %7s %7s\n",
		"class", "target", "achieved", "good", "bad", "fastburn", "slowburn", "firing", "alerts")
	for _, st := range t.Status(now) {
		fmt.Fprintf(w, "  %-5d %6.2f%% %8.2f%% %8d %8d %9.2f %9.2f %7v %7d\n",
			st.Class, 100*st.Target, 100*st.Achieved, st.Good, st.Bad,
			st.FastBurn, st.SlowBurn, st.Firing, st.Alerts)
	}
	if len(t.alerts) > 0 {
		fmt.Fprintf(w, "\n  alert log\n")
		for _, a := range t.alerts {
			verb := "FIRED"
			if !a.Firing {
				verb = "cleared"
			}
			fmt.Fprintf(w, "    t=%-12d class %d %-7s (fast %.2f, slow %.2f)\n",
				a.T, a.Class, verb, a.FastBurn, a.SlowBurn)
		}
	}
}
