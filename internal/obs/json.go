package obs

import (
	"encoding/json"
	"io"
)

// JSONBucket is one histogram bucket in the JSON document. LE is the
// inclusive upper bound in virtual ns; the +Inf bucket uses LE = "+Inf".
// Exemplar, when non-zero, is a TraceID that observed into this bucket —
// the link from a tail bucket to the flight-recorded trace behind it.
type JSONBucket struct {
	LE       string `json:"le"`
	Count    int64  `json:"count"`
	Exemplar uint64 `json:"exemplar,omitempty"`
}

// JSONMetric is one metric in the JSON document.
type JSONMetric struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    string            `json:"type"`
	Value   *float64          `json:"value,omitempty"`
	Buckets []JSONBucket      `json:"buckets,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	Count   *int64            `json:"count,omitempty"`
}

// JSONHistoryPoint is one periodic sample: series key -> value.
type JSONHistoryPoint struct {
	T      int64              `json:"t"`
	Values map[string]float64 `json:"values"`
}

// JSONDoc is the machine-readable snapshot document the BENCH_*.json
// tooling consumes: the full metric state at one virtual time plus the
// periodic traced-metric history.
type JSONDoc struct {
	VirtualTimeNS int64              `json:"virtual_time_ns"`
	Metrics       []JSONMetric       `json:"metrics"`
	History       []JSONHistoryPoint `json:"history,omitempty"`
}

// BuildJSON converts a snapshot (plus optional history) to the document
// form. history may be nil.
func BuildJSON(s Snapshot, history []Snapshot) JSONDoc {
	doc := JSONDoc{VirtualTimeNS: s.T, Metrics: make([]JSONMetric, 0, len(s.Samples))}
	for i := range s.Samples {
		sm := &s.Samples[i]
		jm := JSONMetric{Name: sm.Name, Labels: sm.Labels, Type: sm.Kind.String()}
		if sm.Hist != nil {
			h := sm.Hist
			ex := func(j int) uint64 {
				if j < len(h.Exemplars) {
					return uint64(h.Exemplars[j])
				}
				return 0
			}
			var cum int64
			for j, b := range h.Bounds {
				cum += h.Counts[j]
				jm.Buckets = append(jm.Buckets, JSONBucket{LE: formatValue(float64(b)), Count: cum, Exemplar: ex(j)})
			}
			jm.Buckets = append(jm.Buckets, JSONBucket{LE: "+Inf", Count: h.Count, Exemplar: ex(len(h.Bounds))})
			sum, count := h.Sum, h.Count
			jm.Sum, jm.Count = &sum, &count
		} else {
			v := sm.Value
			jm.Value = &v
		}
		doc.Metrics = append(doc.Metrics, jm)
	}
	for _, hs := range history {
		pt := JSONHistoryPoint{T: hs.T, Values: make(map[string]float64, len(hs.Samples))}
		for i := range hs.Samples {
			pt.Values[hs.Samples[i].Key()] = hs.Samples[i].Value
		}
		doc.History = append(doc.History, pt)
	}
	return doc
}

// WriteJSON renders the snapshot (plus optional history) as indented JSON.
func WriteJSON(w io.Writer, s Snapshot, history []Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(s, history))
}
