package obs

import (
	"fmt"
	"io"
	"sort"
)

// Post-hoc critical-path attribution. A completed job's trace is a
// contiguous chain in virtual time — admit-queue wait, then one window
// per stage (dispatch → barrier release) — so walking the span tree
// decomposes end-to-end latency into named buckets with no gaps by
// construction. Within a stage the critical task is the one whose End
// closes the barrier; its own span splits the stage window into dispatch
// wait, compute, and memory/fabric stall, and any residue before the
// critical task's enqueue is barrier skew from earlier work in the same
// window (charged to queue, since the stage's tasks were runnable but
// the critical one had not been picked up yet).

// Breakdown attributes one job's end-to-end latency (virtual ns) to
// causes. Total = AdmitQueue + DispatchQueue + Compute + Stall + Retry +
// Unattributed; Unattributed is nonzero only when the trace is missing
// spans (dropped on a full shard, or the job never completed).
type Breakdown struct {
	Trace    TraceID
	Priority int64
	Arrival  int64
	Finish   int64
	Total    int64

	AdmitQueue    int64 // arrival → dispatch (admission-queue wait)
	DispatchQueue int64 // stage-internal wait before the critical task ran
	Compute       int64 // critical tasks' execution minus stalls
	Stall         int64 // critical tasks' memory/fabric access time
	Retry         int64 // backoff windows on the critical path
	Unattributed  int64 // trace gaps (dropped spans, incomplete job)

	Stages []StageBreakdown
}

// StageBreakdown decomposes one stage window.
type StageBreakdown struct {
	Stage   int32
	Start   int64
	End     int64
	Tasks   int64
	Queue   int64 // window time before the critical task executed
	Compute int64
	Stall   int64
	Retry   int64
	Chiplet int32 // chiplet the critical task ran on (-1 if unknown)
	Worker  int32
}

// AttributedFraction is the share of Total explained by named buckets.
func (b Breakdown) AttributedFraction() float64 {
	if b.Total <= 0 {
		return 1
	}
	return 1 - float64(b.Unattributed)/float64(b.Total)
}

// Analyze decomposes one job trace. It returns ok=false when the trace
// has no stage spans (the job was shed, rejected, or expired before
// dispatch — its breakdown is pure admit-queue time).
func Analyze(tr Trace) (Breakdown, bool) {
	b := Breakdown{Trace: tr.ID}
	var stages []Span
	var admit, term *Span
	tasksByStage := map[int32][]Span{}
	retriesByStage := map[int32][]Span{}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		switch s.Kind {
		case SpanAdmitQueue:
			admit = s
		case SpanStage:
			stages = append(stages, *s)
		case SpanTask:
			tasksByStage[s.Stage] = append(tasksByStage[s.Stage], *s)
		case SpanRetry:
			retriesByStage[s.Stage] = append(retriesByStage[s.Stage], *s)
		case SpanShed, SpanExpire, SpanReject, SpanCancel, SpanFail:
			if term == nil || s.End > term.End {
				term = s
			}
			if b.Finish < s.End {
				b.Finish = s.End
			}
		}
	}
	if admit != nil {
		b.Arrival = admit.Start
		b.Priority = admit.Arg
		b.AdmitQueue = admit.End - admit.Start
	} else if term != nil {
		// Never dispatched: the terminal span covers arrival → verdict.
		b.Arrival = term.Start
		b.Priority = term.Arg
	}
	if len(stages) == 0 {
		b.Total = b.Finish - b.Arrival
		if b.Total < 0 {
			b.Total = 0
		}
		// A job with no stage spans spent its whole recorded life in the
		// admission queue (shed, rejected, or expired before dispatch).
		if b.AdmitQueue < b.Total {
			b.AdmitQueue = b.Total
		}
		return b, false
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	for _, st := range stages {
		sb := StageBreakdown{Stage: st.Stage, Start: st.Start, End: st.End,
			Tasks: st.Arg, Chiplet: -1, Worker: -1}
		wall := st.End - st.Start
		// The critical task is the one that released the barrier: the
		// latest End in the stage (ties broken by the canonical order the
		// spans already carry).
		var crit *Span
		tasks := tasksByStage[st.Stage]
		for i := range tasks {
			if crit == nil || tasks[i].End > crit.End {
				crit = &tasks[i]
			}
		}
		if crit != nil {
			execStart := crit.Arg // first-execution time
			queue := execStart - st.Start
			if queue < 0 {
				queue = 0
			}
			stall := crit.Arg2
			compute := crit.End - execStart - stall
			if compute < 0 {
				compute = 0
			}
			// Retry backoff windows for this stage that overlap the
			// critical task's pre-exec wait are the fault-induced share.
			var retry int64
			for _, r := range retriesByStage[st.Stage] {
				retry += r.End - r.Start
			}
			if retry > queue {
				retry = queue
			}
			queue -= retry
			// Clamp to the stage wall so a missing tail span can never
			// over-attribute.
			if queue+compute+stall+retry > wall {
				over := queue + compute + stall + retry - wall
				if queue >= over {
					queue -= over
				} else {
					over -= queue
					queue = 0
					if compute >= over {
						compute -= over
					} else {
						compute = 0
					}
				}
			}
			sb.Queue, sb.Compute, sb.Stall, sb.Retry = queue, compute, stall, retry
			sb.Chiplet, sb.Worker = crit.Chiplet, crit.Worker
			// Tail of the window after the critical task's End (barrier
			// bookkeeping) is charged to queue — it is time the job spent
			// waiting on scheduling, not computing.
			sb.Queue += wall - (queue + compute + stall + retry)
		} else {
			// No task spans survived for this stage: charge the whole
			// window to queue only if we know nothing better.
			sb.Queue = wall
		}
		b.Stages = append(b.Stages, sb)
		b.DispatchQueue += sb.Queue
		b.Compute += sb.Compute
		b.Stall += sb.Stall
		b.Retry += sb.Retry
		if b.Finish < st.End {
			b.Finish = st.End
		}
	}
	if b.Arrival == 0 && admit == nil {
		b.Arrival = stages[0].Start
	}
	b.Total = b.Finish - b.Arrival
	attributed := b.AdmitQueue + b.DispatchQueue + b.Compute + b.Stall + b.Retry
	b.Unattributed = b.Total - attributed
	if b.Unattributed < 0 {
		b.Unattributed = 0
	}
	return b, true
}

// Culprit is one row of an aggregate attribution table.
type Culprit struct {
	Key   string
	NS    int64
	Count int64
}

// Report aggregates per-job breakdowns into "top culprits" tables.
type Report struct {
	Jobs       []Breakdown
	ByChiplet  []Culprit // critical-path exec+stall ns per chiplet
	ByStage    []Culprit // critical-path wall ns per stage index
	ByFault    []Culprit // instant counts per fault kind (retry/rehome/...)
	TotalNS    int64
	AttribNS   int64
	QueueNS    int64 // admit + dispatch queue
	ComputeNS  int64
	StallNS    int64
	RetryNS    int64
	UnattribNS int64
}

// BuildReport analyzes every job trace the tracer holds (trace 0, the
// runtime scope, feeds only the fault table).
func BuildReport(t *Tracer) Report {
	var rep Report
	faults := map[string]*Culprit{}
	chiplets := map[string]*Culprit{}
	stages := map[string]*Culprit{}
	bump := func(m map[string]*Culprit, key string, ns int64) {
		c := m[key]
		if c == nil {
			c = &Culprit{Key: key}
			m[key] = c
		}
		c.NS += ns
		c.Count++
	}
	for _, tr := range t.Traces() {
		if tr.ID == 0 {
			for _, s := range tr.Spans {
				switch s.Kind {
				case SpanRehome, SpanPark, SpanBreaker:
					bump(faults, s.Kind.String(), 0)
				}
			}
			continue
		}
		for _, s := range tr.Spans {
			switch s.Kind {
			case SpanRetry:
				bump(faults, "retry", s.End-s.Start)
			case SpanShed, SpanExpire, SpanFail, SpanCancel:
				bump(faults, s.Kind.String(), 0)
			}
		}
		b, ok := Analyze(tr)
		if !ok && b.Total == 0 {
			continue
		}
		rep.Jobs = append(rep.Jobs, b)
		rep.TotalNS += b.Total
		rep.AttribNS += b.Total - b.Unattributed
		rep.QueueNS += b.AdmitQueue + b.DispatchQueue
		rep.ComputeNS += b.Compute
		rep.StallNS += b.Stall
		rep.RetryNS += b.Retry
		rep.UnattribNS += b.Unattributed
		for _, st := range b.Stages {
			bump(stages, fmt.Sprintf("stage-%d", st.Stage), st.End-st.Start)
			if st.Chiplet >= 0 {
				bump(chiplets, fmt.Sprintf("chiplet-%d", st.Chiplet), st.Compute+st.Stall)
			}
		}
	}
	rep.ByChiplet = sortCulprits(chiplets)
	rep.ByStage = sortCulprits(stages)
	rep.ByFault = sortCulprits(faults)
	// Slowest jobs first — the tail is what the report is for.
	sort.Slice(rep.Jobs, func(i, j int) bool {
		if rep.Jobs[i].Total != rep.Jobs[j].Total {
			return rep.Jobs[i].Total > rep.Jobs[j].Total
		}
		return rep.Jobs[i].Trace < rep.Jobs[j].Trace
	})
	return rep
}

func sortCulprits(m map[string]*Culprit) []Culprit {
	out := make([]Culprit, 0, len(m))
	for _, c := range m {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NS != out[j].NS {
			return out[i].NS > out[j].NS
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WriteText renders the report as aligned tables.
func (rep Report) WriteText(w io.Writer, topJobs int) {
	pct := func(ns int64) float64 {
		if rep.TotalNS == 0 {
			return 0
		}
		return 100 * float64(ns) / float64(rep.TotalNS)
	}
	fmt.Fprintf(w, "critical-path attribution over %d jobs (total %.3f ms on the critical path)\n\n",
		len(rep.Jobs), float64(rep.TotalNS)/1e6)
	fmt.Fprintf(w, "  %-14s %12s %7s\n", "bucket", "ns", "share")
	for _, row := range []struct {
		k  string
		ns int64
	}{
		{"queue", rep.QueueNS}, {"compute", rep.ComputeNS},
		{"stall", rep.StallNS}, {"retry", rep.RetryNS},
		{"unattributed", rep.UnattribNS},
	} {
		fmt.Fprintf(w, "  %-14s %12d %6.1f%%\n", row.k, row.ns, pct(row.ns))
	}
	writeCulprits := func(title string, rows []Culprit) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(w, "\n  top culprits %s\n", title)
		for i, c := range rows {
			if i >= 8 {
				break
			}
			fmt.Fprintf(w, "    %-14s %12d ns  %6d events\n", c.Key, c.NS, c.Count)
		}
	}
	writeCulprits("by chiplet (critical exec+stall)", rep.ByChiplet)
	writeCulprits("by stage (wall)", rep.ByStage)
	writeCulprits("by fault kind", rep.ByFault)
	if topJobs > 0 && len(rep.Jobs) > 0 {
		fmt.Fprintf(w, "\n  slowest jobs\n")
		fmt.Fprintf(w, "    %-8s %4s %12s %10s %10s %10s %10s %8s\n",
			"trace", "prio", "total", "queue", "compute", "stall", "retry", "attrib")
		for i, b := range rep.Jobs {
			if i >= topJobs {
				break
			}
			fmt.Fprintf(w, "    %-8d %4d %12d %10d %10d %10d %10d %7.1f%%\n",
				b.Trace, b.Priority, b.Total, b.AdmitQueue+b.DispatchQueue,
				b.Compute, b.Stall, b.Retry, 100*b.AttributedFraction())
		}
	}
}

// WriteJobText renders one job's per-stage breakdown.
func (b Breakdown) WriteJobText(w io.Writer) {
	fmt.Fprintf(w, "trace %d  priority %d  arrival %d  finish %d  total %d ns  (%.1f%% attributed)\n",
		b.Trace, b.Priority, b.Arrival, b.Finish, b.Total, 100*b.AttributedFraction())
	fmt.Fprintf(w, "  %-14s %12d ns\n", "admit-queue", b.AdmitQueue)
	for _, st := range b.Stages {
		fmt.Fprintf(w, "  stage %-3d [%d..%d] %d tasks  queue %d  compute %d  stall %d  retry %d",
			st.Stage, st.Start, st.End, st.Tasks, st.Queue, st.Compute, st.Stall, st.Retry)
		if st.Chiplet >= 0 {
			fmt.Fprintf(w, "  (critical on chiplet %d, worker %d)", st.Chiplet, st.Worker)
		}
		fmt.Fprintln(w)
	}
	if b.Unattributed > 0 {
		fmt.Fprintf(w, "  %-14s %12d ns\n", "unattributed", b.Unattributed)
	}
}
