package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the causal-tracing half of the observability plane: every
// job admitted through the open-loop service carries a TraceID, and the
// runtime emits typed span events — queue wait, per-stage execution,
// per-task lifecycle, retries, sheds, breaker transitions — into a
// sharded span buffer. Spans carry only virtual timestamps, so under
// deterministic lockstep two runs of the same seeded workload produce
// byte-identical trace output (see WriteJSON's canonical ordering).
//
// Buffering follows the registry's sharding rule: each worker appends to
// its own cache-padded shard, so concurrent workers never contend; the
// service-side emissions (admission, stage advancement, breakers) go to a
// dedicated extra shard serialized by the service lock. Shard locks exist
// only so post-run collection and mid-run compaction are race-free — in
// steady state every shard has exactly one writer and the lock is never
// contended.

// TraceID identifies one job's causal trace. 0 is the runtime scope:
// spans that belong to the machine (re-homes, parks, breaker flaps, SLO
// alerts) rather than to a single job.
type TraceID uint64

// SpanKind types a span event.
type SpanKind uint8

const (
	// SpanAdmitQueue covers arrival → dispatch: the admission-queue wait.
	// Arg is the job's priority class.
	SpanAdmitQueue SpanKind = iota
	// SpanStage covers one job stage: dispatch → barrier release.
	// Stage is the stage index; Arg is the stage's task count.
	SpanStage
	// SpanTask is one job task's lifecycle: Start is the enqueue stamp,
	// End the completion; Arg is the first-execution time (so
	// Arg−Start is the task's dispatch-queue wait and End−Arg its
	// execution window) and Arg2 the virtual ns of that window spent in
	// simulated memory/fabric accesses (the stall aggregate).
	SpanTask
	// SpanRetry covers a failed execution's backoff window: failure time
	// → the retry's earliest start stamp. Arg is the attempt number.
	SpanRetry
	// SpanRehome is an instant: a worker migrated off a dead core.
	// Arg is the replacement core.
	SpanRehome
	// SpanPark is an instant: a worker parked with no replacement core.
	SpanPark
	// SpanCancel is an instant: the job was discarded after cancellation.
	SpanCancel
	// SpanShed covers arrival → drop for a job discarded by deadline-
	// aware shedding (hopeless budget or evicted). Arg is the priority.
	SpanShed
	// SpanReject is an instant: the job was refused at admission.
	SpanReject
	// SpanExpire covers arrival → drop for a job whose deadline passed
	// while queued.
	SpanExpire
	// SpanFail is an instant: a task failure past its retry budget
	// terminated the job.
	SpanFail
	// SpanBreaker is an instant: a chiplet breaker changed state.
	// Chiplet locates it; Arg is the new state, Arg2 the previous
	// (admit.BreakerState values).
	SpanBreaker
	// SpanSLOAlert is an instant: a burn-rate alert fired (Arg2=1) or
	// cleared (Arg2=0) for priority class Arg.
	SpanSLOAlert
	// SpanLease is an instant: a chiplet-group lease changed hands.
	// Chiplet locates it; Arg is the new tenant index (-1 = freed), Arg2
	// the previous owner (-1 = was free).
	SpanLease

	numSpanKinds
)

// String names the kind for reports and serialized traces.
func (k SpanKind) String() string {
	switch k {
	case SpanAdmitQueue:
		return "admit-queue"
	case SpanStage:
		return "stage"
	case SpanTask:
		return "task"
	case SpanRetry:
		return "retry"
	case SpanRehome:
		return "rehome"
	case SpanPark:
		return "park"
	case SpanCancel:
		return "cancel"
	case SpanShed:
		return "shed"
	case SpanReject:
		return "reject"
	case SpanExpire:
		return "expire"
	case SpanFail:
		return "fail"
	case SpanBreaker:
		return "breaker"
	case SpanSLOAlert:
		return "slo-alert"
	case SpanLease:
		return "lease"
	}
	return "?"
}

// Span is one typed trace event in virtual time. Instant events have
// End == Start. The Arg/Arg2 meanings are kind-specific (see the kind
// constants).
type Span struct {
	Trace   TraceID
	Kind    SpanKind
	Start   int64
	End     int64
	Worker  int32
	Chiplet int32
	Stage   int32
	Arg     int64
	Arg2    int64
}

// traceShard is one writer's private span buffer. The mutex is only ever
// contended by post-run collection and compaction; steady-state appends
// come from the shard's single owner.
type traceShard struct {
	mu    sync.Mutex
	spans []Span
	_     [40]byte
}

// DefaultSpanCap is the per-shard span bound when NewTracer is given 0.
const DefaultSpanCap = 1 << 16

// DefaultFlightRecorderCap bounds how many violating/anomalous traces the
// flight recorder retains.
const DefaultFlightRecorderCap = 256

// Tracer is the runtime's span sink. Emission is gated on one atomic
// flag: with tracing off an Emit costs a single atomic load and no
// writes, so traced and untraced runs have identical virtual-time
// results.
type Tracer struct {
	enabled  atomic.Bool
	shardCap int
	shards   []traceShard
	dropped  atomic.Int64

	// Flight-recorder state: a bounded FIFO of retained TraceIDs plus
	// the set of explicitly released (healthy, completed) traces that
	// compaction may reclaim.
	recMu     sync.Mutex
	retainCap int
	retained  map[TraceID]struct{}
	ring      []TraceID
	released  map[TraceID]struct{}
}

// NewTracer builds a tracer with the given shard count (one per worker
// plus one for the service side) and per-shard span bound (0 selects
// DefaultSpanCap). The tracer starts disabled.
func NewTracer(shards, shardCap int) *Tracer {
	if shards < 1 {
		shards = 1
	}
	if shardCap <= 0 {
		shardCap = DefaultSpanCap
	}
	return &Tracer{
		shardCap:  shardCap,
		shards:    make([]traceShard, shards),
		retainCap: DefaultFlightRecorderCap,
		retained:  map[TraceID]struct{}{},
		released:  map[TraceID]struct{}{},
	}
}

// SetEnabled turns span recording on or off.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetFlightRecorderCap bounds the retained-trace ring (minimum 1).
func (t *Tracer) SetFlightRecorderCap(n int) {
	if n < 1 {
		n = 1
	}
	t.recMu.Lock()
	t.retainCap = n
	t.recMu.Unlock()
}

// Emit appends one span to the given shard. It is a no-op while the
// tracer is disabled; a full shard drops the span and counts it.
func (t *Tracer) Emit(shard int, s Span) {
	if !t.enabled.Load() {
		return
	}
	sh := &t.shards[shard]
	sh.mu.Lock()
	if len(sh.spans) >= t.shardCap {
		sh.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// DroppedSpans reports how many spans were discarded on full shards.
func (t *Tracer) DroppedSpans() int64 { return t.dropped.Load() }

// Retain marks a trace for flight-recorder retention (SLO violators and
// anomalies). When the ring is full the oldest retained trace is evicted
// and released for compaction.
func (t *Tracer) Retain(id TraceID) {
	if !t.enabled.Load() || id == 0 {
		return
	}
	t.recMu.Lock()
	if _, ok := t.retained[id]; !ok {
		if len(t.ring) >= t.retainCap {
			old := t.ring[0]
			t.ring = t.ring[1:]
			delete(t.retained, old)
			t.released[old] = struct{}{}
		}
		t.retained[id] = struct{}{}
		t.ring = append(t.ring, id)
		delete(t.released, id)
	}
	t.recMu.Unlock()
}

// Release marks a completed trace as uninteresting: compaction may drop
// its spans to reclaim buffer space (tail-based retention — only
// violating traces keep their full span record).
func (t *Tracer) Release(id TraceID) {
	if !t.enabled.Load() || id == 0 {
		return
	}
	t.recMu.Lock()
	if _, ok := t.retained[id]; !ok {
		t.released[id] = struct{}{}
	}
	t.recMu.Unlock()
}

// Retained reports whether the flight recorder holds the trace.
func (t *Tracer) Retained(id TraceID) bool {
	t.recMu.Lock()
	_, ok := t.retained[id]
	t.recMu.Unlock()
	return ok
}

// RetainedIDs returns the flight recorder's contents in retention order.
func (t *Tracer) RetainedIDs() []TraceID {
	t.recMu.Lock()
	out := append([]TraceID(nil), t.ring...)
	t.recMu.Unlock()
	return out
}

// Compact drops the spans of released (healthy, completed) traces from
// every shard, reclaiming buffer space mid-run. The caller decides when
// — the job service invokes it from its evaluation tick once the buffer
// passes a high-water mark, which keeps the decision in virtual time and
// therefore deterministic.
func (t *Tracer) Compact() {
	t.recMu.Lock()
	if len(t.released) == 0 {
		t.recMu.Unlock()
		return
	}
	released := t.released
	t.released = map[TraceID]struct{}{}
	t.recMu.Unlock()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		kept := sh.spans[:0]
		for _, s := range sh.spans {
			if _, drop := released[s.Trace]; !drop {
				kept = append(kept, s)
			}
		}
		sh.spans = kept
		sh.mu.Unlock()
	}
}

// SpanCount returns the number of buffered spans across all shards.
func (t *Tracer) SpanCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.spans)
		sh.mu.Unlock()
	}
	return n
}

// spanLess is the canonical span order: a total order over every field,
// so any two runs that produced the same span multiset serialize
// byte-identically regardless of shard placement.
func spanLess(a, b *Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Worker != b.Worker {
		return a.Worker < b.Worker
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Arg != b.Arg {
		return a.Arg < b.Arg
	}
	return a.Arg2 < b.Arg2
}

// Spans merges every shard's buffer in canonical order.
func (t *Tracer) Spans() []Span {
	var out []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return spanLess(&out[i], &out[j]) })
	return out
}

// Trace is one job's collected spans in canonical order.
type Trace struct {
	ID    TraceID
	Spans []Span
}

// TraceOf collects the spans of a single trace.
func (t *Tracer) TraceOf(id TraceID) Trace {
	tr := Trace{ID: id}
	for _, s := range t.Spans() {
		if s.Trace == id {
			tr.Spans = append(tr.Spans, s)
		}
	}
	return tr
}

// Traces groups every buffered span by TraceID, ascending (the runtime
// scope, trace 0, comes first when present).
func (t *Tracer) Traces() []Trace {
	spans := t.Spans()
	byID := map[TraceID][]Span{}
	for _, s := range spans {
		byID[s.Trace] = append(byID[s.Trace], s)
	}
	ids := make([]TraceID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		out = append(out, Trace{ID: id, Spans: byID[id]})
	}
	return out
}

// jsonSpan is the serialized span form: stable field order, symbolic
// kind, virtual-ns timestamps.
type jsonSpan struct {
	Trace   TraceID `json:"trace"`
	Kind    string  `json:"kind"`
	Start   int64   `json:"start"`
	End     int64   `json:"end"`
	Worker  int32   `json:"worker"`
	Chiplet int32   `json:"chiplet"`
	Stage   int32   `json:"stage"`
	Arg     int64   `json:"arg,omitempty"`
	Arg2    int64   `json:"arg2,omitempty"`
}

// TraceDoc is the serialized trace document.
type TraceDoc struct {
	Spans    []jsonSpan `json:"spans"`
	Retained []TraceID  `json:"retained,omitempty"`
	Dropped  int64      `json:"dropped,omitempty"`
}

// WriteJSON serializes every buffered span (canonical order) plus the
// flight-recorder contents. Two deterministic runs of the same seeded
// workload produce byte-identical output.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	doc := TraceDoc{Spans: make([]jsonSpan, 0, len(spans)),
		Retained: t.RetainedIDs(), Dropped: t.dropped.Load()}
	for _, s := range spans {
		doc.Spans = append(doc.Spans, jsonSpan{
			Trace: s.Trace, Kind: s.Kind.String(), Start: s.Start, End: s.End,
			Worker: s.Worker, Chiplet: s.Chiplet, Stage: s.Stage,
			Arg: s.Arg, Arg2: s.Arg2,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
