package harness

import (
	"charm"
	"charm/internal/core"
	"charm/internal/workloads/oltp"
	"charm/internal/workloads/sgd"
	"charm/internal/workloads/streamcluster"
)

// scCores returns the Fig. 9 core sweep.
func scCores() []int { return []int{1, 4, 8, 16, 24, 32, 48, 64, 96, 128} }

// scConfig builds the streamcluster configuration under the options,
// sizing tasks so every worker gets several chunks per phase.
func (o Options) scConfig(replicate bool, workers int) streamcluster.Config {
	points := 1 << (o.GraphScale + 2)
	if o.Full {
		points = 1_000_000
	}
	batch := points / 4
	grain := batch / (workers * 4)
	if grain < 32 {
		grain = 32
	}
	if grain > 512 {
		grain = 512
	}
	return streamcluster.Config{
		Points:          points,
		Dims:            32,
		Batch:           batch,
		CandidateRounds: 6,
		Grain:           grain,
		Seed:            9,
		ReplicatePoints: replicate,
	}
}

// fig9Baseline measures the no-runtime-support execution: sequential core
// placement, data touched only by worker 0's node, no adaptation.
func (o Options) fig9Run(sys charm.System, workers int) int64 {
	rt := o.runtime(o.amd(), sys, workers)
	defer rt.Finalize()
	res := streamcluster.Run(rt, o.scConfig(sys == charm.SystemSHOAL, workers))
	return res.Makespan
}

// fig9NoSupport measures the baseline the paper normalizes to: the same
// core count but without any architecture-aware runtime support (OS-style
// scatter, churned assignment, main-thread allocation on node 0).
func (o Options) fig9NoSupport(workers int) int64 {
	rt, err := charm.Init(charm.Config{
		Topology:    o.amd(),
		CacheScale:  o.CacheScale,
		Workers:     workers,
		Naive:       true,
		SampleShift: o.SampleShift,
	})
	if err != nil {
		panic(err)
	}
	o.observe(rt)
	defer rt.Finalize()
	cfg := o.scConfig(false, workers)
	cfg.CentralAlloc = true
	return streamcluster.Run(rt, cfg).Makespan
}

// Fig9 regenerates the streamcluster speedup curves: CHARM vs SHOAL,
// normalized to the single-core unoptimized run.
func (o Options) Fig9() *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Streamcluster speedup over no-runtime-support execution",
		Header: []string{"cores", "charm", "shoal"},
		Notes:  "CHARM peaks ~21x around 24 cores, SHOAL ~16x around 32; both decay toward 1x at 128 as fragmentation dominates",
	}
	// Normalize to the serial unoptimized execution: the rise-peak-decline
	// curve of the paper emerges as parallel overheads erode the gains.
	base := o.fig9NoSupport(1)
	for _, c := range scCores() {
		charmT := o.fig9Run(charm.SystemCHARM, c)
		shoalT := o.fig9Run(charm.SystemSHOAL, c)
		t.Rows = append(t.Rows, []string{
			i64(int64(c)),
			f1(float64(base) / float64(charmT)),
			f1(float64(base) / float64(shoalT)),
		})
	}
	return t
}

// Tab2 regenerates the memory/cache access comparison between CHARM and
// SHOAL across core counts (x1000 accesses).
func (o Options) Tab2() *Table {
	t := &Table{
		ID:    "tab2",
		Title: "Memory and cache accesses (x1000): CHARM vs SHOAL",
		Header: []string{"cores", "localchip CHARM", "localchip SHOAL",
			"remotechip CHARM", "remotechip SHOAL", "mainmem CHARM", "mainmem SHOAL"},
		Notes: "at low core counts SHOAL reaches main memory far more than CHARM; access patterns converge at 64 cores",
	}
	for _, c := range []int{8, 16, 32, 64} {
		var localchip, remotechip, mainmem [2]int64
		for i, sys := range []charm.System{charm.SystemCHARM, charm.SystemSHOAL} {
			rt := o.runtime(o.amd(), sys, c)
			streamcluster.Run(rt, o.scConfig(sys == charm.SystemSHOAL, c))
			localchip[i] = rt.Counter(charm.FillL3Local)
			remotechip[i] = rt.Counter(charm.FillL3RemoteNear) + rt.Counter(charm.FillL3RemoteFar)
			mainmem[i] = rt.Counter(charm.FillDRAMLocal) + rt.Counter(charm.FillDRAMRemote)
			rt.Finalize()
		}
		t.Rows = append(t.Rows, []string{i64(int64(c)),
			i64(localchip[0] / 1000), i64(localchip[1] / 1000),
			i64(remotechip[0] / 1000), i64(remotechip[1] / 1000),
			i64(mainmem[0] / 1000), i64(mainmem[1] / 1000)})
	}
	return t
}

// sgdConfig builds the §5.5 problem under the options.
func (o Options) sgdConfig() sgd.Config {
	samples, features := 1<<(o.GraphScale-4), 512
	if o.Full {
		samples, features = 10_000, 8192
	}
	return sgd.Config{Samples: samples, Features: features, Epochs: 2, Grain: 8, Seed: 11}
}

// Fig11 regenerates the SGD throughput comparison: loss and gradient GB/s
// for DimmWitted's native strategies, DW+CHARM, and DW+CHARM+std::async.
func (o Options) Fig11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "SGD logistic regression throughput (GB/s)",
		Header: []string{"system", "cores", "loss GB/s", "grad GB/s"},
		Notes:  "DW+CHARM scales with cores (paper peaks 165/106 GB/s); DW natives plateau (best ~50/40); std::async trails CHARM",
	}
	cfg := o.sgdConfig()
	cores := []int{8, 16, 32, 64, 128}
	type variant struct {
		name     string
		sys      charm.System
		strategy sgd.Strategy
	}
	variants := []variant{
		{"DW+CHARM", charm.SystemCHARM, sgd.PerNode},
		{"DW-per-core", charm.SystemRING, sgd.PerCore},
		{"DW-NUMA-node", charm.SystemRING, sgd.PerNode},
		{"DW-per-machine", charm.SystemRING, sgd.PerMachine},
		{"DW+CHARM+async", charm.SystemOSAsync, sgd.PerNode},
	}
	for _, v := range variants {
		for _, c := range cores {
			rt := o.runtime(o.amd(), v.sys, c)
			res := sgd.Run(rt, cfg, v.strategy)
			rt.Finalize()
			t.Rows = append(t.Rows, []string{v.name, i64(int64(c)),
				f2(res.LossGBps()), f2(res.GradGBps())})
		}
	}
	return t
}

// Fig12 regenerates the thread-concurrency trace during SGD at 32 cores:
// live task/thread counts sampled while the gradient phase runs.
func (o Options) Fig12() *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Thread concurrency during SGD (32 cores)",
		Header: []string{"system", "samples", "mean live", "min", "max"},
		Notes:  "std::async fluctuates well below core count (paper mean 16.2); CHARM holds a stable count near cores (31.1)",
	}
	for _, v := range []struct {
		name string
		sys  charm.System
	}{
		{"DW+CHARM", charm.SystemCHARM},
		{"DW+std::async", charm.SystemOSAsync},
	} {
		rt := o.runtime(o.amd(), v.sys, 32)
		// Live-task counts are sampled in virtual time at worker 0's
		// scheduler ticks (ProfConcurrency).
		rt.EnableProfiler(true)
		sgd.Run(rt, o.sgdConfig(), sgd.PerNode)
		samples := rt.Engine().Profiler().Samples(core.ProfConcurrency)
		rt.Finalize()
		var sum, min, max int64
		min = 1 << 62
		for _, s := range samples {
			sum += s.V
			if s.V < min {
				min = s.V
			}
			if s.V > max {
				max = s.V
			}
		}
		mean := 0.0
		if len(samples) > 0 {
			mean = float64(sum) / float64(len(samples))
		} else {
			min = 0
		}
		t.Rows = append(t.Rows, []string{v.name, i64(int64(len(samples))),
			f1(mean), i64(min), i64(max)})
	}
	return t
}

// Fig14 regenerates the OLTP commits/s comparison between the LocalCache
// and DistributedCache static policies on YCSB and TPC-C.
func (o Options) Fig14() *Table {
	t := &Table{
		ID:     "fig14",
		Title:  "OLTP commits/s: LocalCache vs DistributedCache",
		Header: []string{"workload", "cores", "local kc/s", "distributed kc/s", "ratio"},
		Notes:  "throughput nearly identical across placements at every core count (commit/sync bound)",
	}
	for _, wl := range []string{"ycsb", "tpcc"} {
		for _, c := range []int{8, 16, 32, 64} {
			var vals [2]float64
			for i, local := range []bool{true, false} {
				rt := o.oltpRuntime(local, c)
				e := oltp.New(rt, oltp.Config{
					Records: 1 << (o.GraphScale + 2), TxPerWorker: 400, Seed: 5,
					Warehouses: 8, Items: 512,
				})
				var res oltp.Result
				if wl == "ycsb" {
					res = e.RunYCSB()
				} else {
					res = e.RunTPCC()
				}
				vals[i] = res.CommitsPerSec() / 1000
				rt.Finalize()
			}
			t.Rows = append(t.Rows, []string{wl, i64(int64(c)),
				f1(vals[0]), f1(vals[1]), f2(vals[0] / vals[1])})
		}
	}
	return t
}

// oltpRuntime builds a statically placed runtime: compact (LocalCache) or
// chiplet-spread (DistributedCache), mirroring the §5.7 ERMIA policies.
func (o Options) oltpRuntime(local bool, workers int) *charm.Runtime {
	rt, err := charm.Init(charm.Config{
		Topology:    o.amd(),
		CacheScale:  o.CacheScale,
		Workers:     workers,
		NoAdapt:     true,
		SampleShift: o.SampleShift,
	})
	if err != nil {
		panic(err)
	}
	if !local {
		spread := rt.Topology().ChipletsPerNode
		for w := 0; w < workers; w++ {
			rt.Engine().Worker(w).SetSpreadRate(spread)
			core.UpdateLocation(rt.Engine().Worker(w))
		}
	}
	return o.observe(rt)
}
