// Package harness regenerates every table and figure of the paper's
// evaluation (§5) on the simulated machines. Each experiment returns a
// Table whose rows correspond to the published plot's series; the
// cmd/charm-bench binary prints them, the test suite asserts their shapes
// (who wins, by roughly what factor, where crossovers fall), and
// EXPERIMENTS.md records paper-vs-measured values.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"charm"
	"charm/internal/topology"
)

// Options scale the experiments. The defaults run every experiment in
// seconds on a laptop; Full selects paper-sized inputs (minutes to hours).
type Options struct {
	// CacheScale divides machine cache sizes; workloads shrink by the
	// same factor so crossovers land in the same relative place.
	CacheScale int64
	// SampleShift samples cache lines (DESIGN.md §4.1).
	SampleShift uint
	// SchedulerTimer is the Alg. 1 interval in virtual ns.
	SchedulerTimer int64
	// GraphScale is log2 of the graph vertex count.
	GraphScale int
	// Runs repeats each measured cell and reports "mean±sd" (the paper
	// averages 10 runs and scales Fig. 7/8 markers by variance).
	// 0 or 1 measures once.
	Runs int
	// Full selects paper-sized inputs.
	Full bool
	// Faults, when non-empty, is a fault-scenario spec (internal/fault
	// grammar, e.g. "chiplet-flap:seed=7" or "chaos") injected into every
	// runtime the harness builds — run any experiment on a degrading
	// machine. The chaos experiment builds its own schedules and ignores
	// this knob.
	Faults string
	// ArrivalLoad, when positive, pins the overload experiment's arrival
	// rate to this multiple of machine capacity instead of sweeping
	// 0.5x/1x/2x (charm-bench -arrivals).
	ArrivalLoad float64
	// Obs, when non-nil, enables the metrics registry on every runtime
	// the harness builds and captures a metrics document into the sink at
	// each Finalize (the per-experiment metrics dump).
	Obs *ObsSink

	// obsExp is the experiment id stamped onto metrics captures. Run sets
	// it on its by-value receiver before building the experiment closures,
	// so concurrent experiments (charm-bench -parallel) attribute their
	// captures correctly without sharing mutable sink state.
	obsExp string
}

// Defaults returns the scaled configuration used by tests and benches.
func Defaults() Options {
	return Options{
		CacheScale:     256,
		SampleShift:    2,
		SchedulerTimer: 25_000,
		GraphScale:     13,
	}
}

// FullScale returns the paper-sized configuration.
func FullScale() Options {
	return Options{
		CacheScale:     1,
		SampleShift:    6,
		SchedulerTimer: 500_000_000,
		GraphScale:     24,
		Full:           true,
	}
}

// amd and intel build the testbed topologies under the option scaling.
func (o Options) amd() *charm.Topology { return charm.AMDMilan() }

func (o Options) intel() *charm.Topology { return charm.IntelSPR() }

// topology4 returns the Milan machine in NPS4 mode (ablation target).
func topology4() *charm.Topology { return topology.AMDMilanNPS4() }

// runtime builds a runtime for a system on the selected machine.
func (o Options) runtime(topo *charm.Topology, sys charm.System, workers int) *charm.Runtime {
	rt, err := charm.Init(charm.Config{
		Topology:       topo,
		CacheScale:     o.CacheScale,
		Workers:        workers,
		System:         sys,
		SampleShift:    o.SampleShift,
		SchedulerTimer: o.SchedulerTimer,
		FaultSpec:      o.Faults,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return o.observe(rt)
}

// observe attaches the metrics sink (when configured) to a runtime —
// including ones an experiment built with charm.Init directly. The
// capture hook carries the experiment id by value, so runtimes built by
// concurrently running experiments stamp their own id.
func (o Options) observe(rt *charm.Runtime) *charm.Runtime {
	if o.Obs != nil {
		rt.EnableMetrics(true)
		exp := o.obsExp
		rt.SetFinalizeHook(func(r *charm.Runtime) { o.Obs.captureAs(exp, r) })
	}
	return rt
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes records the paper's expected shape for EXPERIMENTS.md.
	Notes string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(w, "# expected shape: %s\n", t.Notes)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as RFC-4180 CSV (header row first) for
// plotting pipelines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cell lookup helpers used by tests.

// Col returns the index of a header column, or -1.
func (t *Table) Col(name string) int {
	for i, h := range t.Header {
		if h == name {
			return i
		}
	}
	return -1
}

// Find returns the first row whose first column equals key, or nil.
func (t *Table) Find(key string) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return r
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vs {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vs)))
}
