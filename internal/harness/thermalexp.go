package harness

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"charm"
	"charm/internal/topology"
)

// The thermal-cliff experiment serves one job stream over a package with a
// single hot chiplet (a high-leakage compute die next to three efficient
// ones) under four configurations. At 70% load: the plane disabled (no
// thermal model at all — the baseline ledger), the closed-loop governor
// with load-aware dispatch (the governor's temperatures and throttle
// factors feed the placement view, so dispatch steers work off the hot die
// before it crosses a setpoint), and the governor with blind round-robin
// dispatch (the stream keeps feeding the hot die, which the governor must
// then rescue with hard throttles and emergency parks — the cliff the
// closed loop exists to catch). The shape: thermal-aware dispatch keeps
// the hot die below the park setpoint with zero parks and spends
// measurably less energy, while blind dispatch rides the governor through
// every tier and pays parks. The final overdrive row runs blind dispatch
// at 130% load: no placement slack, the governor's emergency tiers are
// the only defense, and graceful degradation means every job is still
// accounted for (completed, shed, or expired) instead of the service
// collapsing.

const (
	thWorkers  = 8
	thJobs     = 300
	thTasks    = 4      // tasks per job (one stage)
	thTaskCost = 10_000 // virtual ns of compute per task
	thWork     = thTasks * thTaskCost
	thDeadline = 400_000
	thSeed     = 11
	thQueueCap = 256
)

// thGap is the mean arrival gap at pct percent of machine capacity. The
// main rows run at 70%: the three cool chiplets (six of eight cores) can
// absorb the whole stream, so a dispatcher that sees temperatures has
// real slack to steer into. The overdrive row runs at 130%: there is
// nowhere left to steer, the hot die must work, and the governor's
// emergency tiers are what keep the machine alive.
func thGap(pct int) int64 { return int64(thWork * 100 / (thWorkers * pct)) }

// thPowerConfig builds the heterogeneous package: chiplet 0 runs a hot
// model (4x the dynamic energy per compute-ns of its three efficient
// siblings) with a fast thermal time constant, so sustained full load
// drives it through every governor tier while the cool chiplets never
// leave the nominal band.
func thPowerConfig() *charm.PowerConfig {
	hot := charm.DefaultPowerModel()
	hot.Name = "hot"
	hot.EnergyPJ[charm.ComputeNS] = 12000
	hot.CThermal = 4e-5 // tau = 200 us: ten governor ticks, so the tiers regulate instead of overshooting
	cool := charm.DefaultPowerModel()
	cool.Name = "cool"
	cool.EnergyPJ[charm.ComputeNS] = 1500
	cool.CThermal = 4e-5
	return &charm.PowerConfig{
		TDPWatts: 20,
		SoftC:    65, HardC: 75, ParkC: 85,
		TickNS: 20_000, ParkNS: 500_000,
		Models: []charm.PowerModel{hot, cool, cool, cool},
	}
}

// thermalResult is one measured run plus the plane's final snapshot.
type thermalResult struct {
	stats   charm.JobStats
	lats    []int64 // completed-job latencies in arrival order
	span    int64
	metWork int64
	power   *charm.PowerSnapshot // nil when the plane is off
}

// thermalRun serves thJobs Poisson arrivals at loadPct percent of machine
// capacity under one dispatch placement, with or without the closed-loop
// plane, and drains.
func (o Options) thermalRun(placement charm.JobPlacement, pcfg *charm.PowerConfig, loadPct int) thermalResult {
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       thWorkers,
		Deterministic: true,
		Power:         pcfg,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: thermal: %v", err))
	}
	o.observe(rt)
	defer rt.Finalize()
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		Policy:        charm.AdmitShed,
		QueueCapacity: thQueueCap,
		Placement:     placement,
		EvalInterval:  50_000,
		Source: &charm.SpecSource{
			Arrivals: charm.NewPoissonArrivals(thSeed, thGap(loadPct), thJobs),
			Gen: func(i int) charm.JobSpec {
				stage := make(charm.JobStage, thTasks)
				for k := range stage {
					stage[k] = func(ctx *charm.Ctx) { ctx.Compute(thTaskCost) }
				}
				return charm.JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Priority: i % 3,
					Deadline: thDeadline,
					Cost:     thWork,
					Stages:   []charm.JobStage{stage},
				}
			},
		},
	})
	if err != nil {
		panic(fmt.Sprintf("harness: thermal: %v", err))
	}
	svc.Drain()

	var r thermalResult
	r.stats = svc.Stats()
	first, last := int64(math.MaxInt64), int64(0)
	for _, j := range svc.Jobs() {
		if j.Arrival() < first {
			first = j.Arrival()
		}
		if j.State() != charm.JobCompleted {
			continue
		}
		r.lats = append(r.lats, j.Latency())
		if f := j.Finished(); f > last {
			last = f
		}
		if j.MetDeadline() {
			r.metWork += thWork
		}
	}
	if last > first {
		r.span = last - first
	}
	if pw := rt.Power(); pw != nil {
		r.power = pw.Stats()
	}
	return r
}

func (r thermalResult) goodputPct() float64 {
	if r.span <= 0 {
		return 0
	}
	return 100 * float64(r.metWork) / float64(thWorkers*r.span)
}

func (r thermalResult) p99us() float64 {
	if len(r.lats) == 0 {
		return 0
	}
	s := append([]int64(nil), r.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return float64(s[idx-1]) / 1000
}

// thermalSame reports bit-identical replays: ledger, per-job latencies,
// and the plane's full final snapshot (temperatures, ledgers, tier
// counts).
func thermalSame(a, b thermalResult) bool {
	if a.stats != b.stats || a.span != b.span || !reflect.DeepEqual(a.lats, b.lats) {
		return false
	}
	if (a.power == nil) != (b.power == nil) {
		return false
	}
	return a.power == nil || reflect.DeepEqual(*a.power, *b.power)
}

// sumI64 totals one per-chiplet counter slice.
func sumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Thermal regenerates the thermal-cliff experiment. The repro column
// re-runs the closed-loop configuration and compares the job ledger and
// the plane's final snapshot byte for byte.
func (o Options) Thermal() *Table {
	tab := &Table{
		ID:    "thermal",
		Title: "Thermal cliff: closed-loop governor with thermal-aware vs blind dispatch",
		Header: []string{"run", "completed", "met", "shed", "expired",
			"goodput_pct", "p99_us", "soft", "hard", "parks", "maxT_C",
			"energy_mJ", "repro"},
		Notes: "one hot chiplet among three efficient ones: at 70% load " +
			"thermal-aware dispatch keeps the hot die out of the emergency tier " +
			"(zero parks, peak below the park setpoint) and burns less energy " +
			"than blind round-robin, which rides the governor over the cliff " +
			"(emergency parks, peak at the park setpoint); at 130% overdrive the " +
			"governor parks under blind dispatch and the service degrades " +
			"gracefully (every job completed, shed, or expired) instead of " +
			"collapsing",
	}
	row := func(name string, r thermalResult, repro string) []string {
		soft, hard, parks, maxT, energy := "-", "-", "-", "-", "-"
		if p := r.power; p != nil {
			soft, hard, parks = i64(sumI64(p.SoftEvents)), i64(sumI64(p.HardEvents)), i64(sumI64(p.ParkEvents))
			maxT = f1(float64(p.MaxTempMilliC) / 1000)
			energy = f1(float64(sumI64(p.EnergyPJ)) / 1e9)
		}
		return []string{
			name, i64(r.stats.Completed), i64(r.stats.Met), i64(r.stats.Shed),
			i64(r.stats.Expired), f1(r.goodputPct()), f1(r.p99us()),
			soft, hard, parks, maxT, energy, repro,
		}
	}
	off := o.thermalRun(charm.PlaceLoadAware, nil, 70)
	tab.Rows = append(tab.Rows, row("plane-off", off, "-"))
	closed := o.thermalRun(charm.PlaceLoadAware, thPowerConfig(), 70)
	repro := "no"
	if thermalSame(closed, o.thermalRun(charm.PlaceLoadAware, thPowerConfig(), 70)) {
		repro = "yes"
	}
	tab.Rows = append(tab.Rows, row("closed-loop", closed, repro))
	rr := o.thermalRun(charm.PlaceRoundRobin, thPowerConfig(), 70)
	tab.Rows = append(tab.Rows, row("static-rr", rr, "-"))
	over := o.thermalRun(charm.PlaceRoundRobin, thPowerConfig(), 130)
	tab.Rows = append(tab.Rows, row("overdrive-1.3x", over, "-"))
	return tab
}
