package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testOptions shrinks every experiment far enough for unit testing.
func testOptions() Options {
	o := Defaults()
	o.GraphScale = 10
	return o
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTablePrintAndLookup(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows:  [][]string{{"k1", "1"}, {"k2", "2"}},
		Notes: "n",
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"## x — T", "k1", "k2", "expected shape"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if tab.Col("b") != 1 || tab.Col("zz") != -1 {
		t.Error("Col lookup wrong")
	}
	if r := tab.Find("k2"); r == nil || r[1] != "2" {
		t.Errorf("Find wrong: %v", r)
	}
	if tab.Find("nope") != nil {
		t.Error("Find must return nil for missing keys")
	}
}

func TestRegistry(t *testing.T) {
	o := testOptions()
	ids := o.IDs()
	if len(ids) != 22 {
		t.Errorf("expected 22 experiments, got %d: %v", len(ids), ids)
	}
	if _, err := o.Run("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestChaosShape(t *testing.T) {
	tab := testOptions().Chaos()
	ratioCol, lostCol := tab.Col("ratio"), tab.Col("lost")
	reproCol, rehomeCol := tab.Col("repro"), tab.Col("rehomes")
	parkCol := tab.Col("parks")
	if len(tab.Rows) != 7 {
		t.Fatalf("expected 7 rows, got %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// Survival: every system completes every task — offlining 2 of 16
		// chiplets mid-run must not lose or deadlock work.
		if r[lostCol] != "0" {
			t.Errorf("%s: lost %s tasks under faults", r[0], r[lostCol])
		}
		ratio := parse(t, r[ratioCol])
		if ratio < 1.0 {
			t.Errorf("%s: faulty run faster than healthy (%.2fx)", r[0], ratio)
		}
	}
	// Scenario A: losing 2/16 cores from the 25%% mark costs ~9%% capacity;
	// graceful degradation means the makespan stays well under the 2x a
	// collapse would show (and under the 1.75x a parked-from-start run of
	// the whole workload on 14 cores would).
	charmRow := tab.Find("charm")
	if charmRow == nil {
		t.Fatal("missing charm row")
	}
	if ratio := parse(t, charmRow[ratioCol]); ratio > 1.6 {
		t.Errorf("charm degradation %.2fx not proportional to lost capacity", ratio)
	}
	if charmRow[reproCol] != "yes" {
		t.Error("charm faulty run not byte-for-byte reproducible")
	}
	// Scenario B: with spare cores CHARM re-homes (and so records
	// migrations-due-to-fault), while the static baseline parks.
	spare := tab.Find("spare-charm")
	if spare == nil {
		t.Fatal("missing spare-charm row")
	}
	if parse(t, spare[rehomeCol]) == 0 {
		t.Error("spare-charm recorded no fault re-homes")
	}
	spareRing := tab.Find("spare-ring")
	if spareRing == nil {
		t.Fatal("missing spare-ring row")
	}
	if parse(t, spareRing[parkCol]) == 0 {
		t.Error("spare-ring recorded no parks")
	}
	// Self-healing: CHARM's degradation with spare capacity available
	// must beat the static baseline's, which loses the workers outright.
	if cr, rr := parse(t, spare[ratioCol]), parse(t, spareRing[ratioCol]); cr >= rr {
		t.Errorf("spare-charm %.2fx not better than spare-ring %.2fx", cr, rr)
	}
}

func TestFig3Shape(t *testing.T) {
	tab := testOptions().Fig3()
	within := tab.Find("within-numa")
	if within == nil {
		t.Fatal("missing within-numa row")
	}
	// The stepped distribution: p10 is intra-chiplet (25 ns), p100 within
	// NUMA reaches the cross-CCX step (155 ns).
	if parse(t, within[1]) != 25 {
		t.Errorf("within-numa p10 = %s, want 25", within[1])
	}
	if parse(t, within[6]) != 155 {
		t.Errorf("within-numa p100 = %s, want 155", within[6])
	}
	all := tab.Find("all-pairs")
	if parse(t, all[6]) <= 155 {
		t.Errorf("all-pairs max %s must exceed within-NUMA (cross-socket step)", all[6])
	}
}

func TestFig4Shape(t *testing.T) {
	tab := testOptions().Fig4()
	first := parse(t, tab.Rows[0][4])
	last := parse(t, tab.Rows[len(tab.Rows)-1][4])
	if last <= first {
		t.Errorf("cores/channel ratio must widen: %v -> %v", first, last)
	}
}

func TestFig5Crossover(t *testing.T) {
	tab := testOptions().Fig5()
	col := tab.Col("dist speedup")
	firstRatio := parse(t, tab.Rows[0][col])
	if firstRatio >= 1 {
		t.Errorf("smallest size: LocalCache must win, dist speedup = %.2f", firstRatio)
	}
	// Somewhere beyond one L3 slice DistributedCache must win.
	best := 0.0
	for _, r := range tab.Rows {
		if v := parse(t, r[col]); v > best {
			best = v
		}
	}
	if best < 1.5 {
		t.Errorf("DistributedCache peak speedup = %.2f, want > 1.5", best)
	}
}

func TestFig14Insensitivity(t *testing.T) {
	o := testOptions()
	tab := o.Fig14()
	col := tab.Col("ratio")
	for _, r := range tab.Rows {
		v := parse(t, r[col])
		if v < 0.7 || v > 1.4 {
			t.Errorf("OLTP %s@%s placement ratio %.2f outside [0.7,1.4]", r[0], r[1], v)
		}
	}
}

func TestSensitivityRuns(t *testing.T) {
	tab := testOptions().Sensitivity()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if parse(t, r[1]) <= 0 {
			t.Errorf("threshold %s: non-positive throughput", r[0])
		}
	}
}

// TestFig7CharmWinsAt64 runs a reduced Fig. 7 (one benchmark) and checks
// the headline shape: CHARM beats the NUMA baselines at full-socket
// occupancy.
func TestFig7CharmWinsAt64(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	o.GraphScale = 12
	tab := o.Fig7()
	col := tab.Col("64c")
	if col < 0 {
		t.Fatal("missing 64c column")
	}
	var charmV, bestBase float64
	for _, r := range tab.Rows {
		if r[0] != "bfs" {
			continue
		}
		v := parse(t, r[col])
		if r[1] == "charm" {
			charmV = v
		} else if v > bestBase {
			bestBase = v
		}
	}
	if charmV <= bestBase {
		t.Errorf("BFS@64c: CHARM %.1f must beat best baseline %.1f", charmV, bestBase)
	}
}

func TestTab1RemoteAccessGap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	o.GraphScale = 12
	tab := o.Tab1()
	for _, r := range tab.Rows {
		charmRemote := parse(t, r[1])
		ringRemote := parse(t, r[2])
		if charmRemote > ringRemote {
			t.Errorf("%s: CHARM remote-NUMA accesses (%v) exceed RING's (%v)", r[0], charmRemote, ringRemote)
		}
	}
}

func TestFig13AllQueriesBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	tab := o.Fig13()
	col := tab.Col("speedup")
	below := 0
	for _, r := range tab.Rows {
		if parse(t, r[col]) < 0.95 {
			below++
		}
	}
	if below > 3 {
		t.Errorf("%d of 22 queries slowed down under CHARM", below)
	}
}

func TestFig9CharmLeadsMidRange(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	tab := o.Fig9()
	// CHARM should lead or tie SHOAL somewhere in the 8-32 core range.
	lead := false
	for _, r := range tab.Rows {
		c := parse(t, r[0])
		if c >= 8 && c <= 32 && parse(t, r[1]) >= parse(t, r[2]) {
			lead = true
		}
	}
	if !lead {
		t.Error("CHARM never led SHOAL in the 8-32 core range")
	}
}

func TestFig11CharmBeatsNatives(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	tab := o.Fig11()
	best := map[string]float64{}
	for _, r := range tab.Rows {
		v := parse(t, r[3])
		if v > best[r[0]] {
			best[r[0]] = v
		}
	}
	if best["DW+CHARM"] <= best["DW-NUMA-node"] {
		t.Errorf("DW+CHARM peak %.2f must beat DW-NUMA-node %.2f", best["DW+CHARM"], best["DW-NUMA-node"])
	}
	if best["DW+CHARM"] <= best["DW+CHARM+async"] {
		t.Errorf("DW+CHARM peak %.2f must beat std::async %.2f", best["DW+CHARM"], best["DW+CHARM+async"])
	}
}

func TestGranularityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tab := testOptions().Granularity()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The middle of the sweep must beat both extremes for Q3.
	first := parse(t, tab.Rows[0][1])
	last := parse(t, tab.Rows[len(tab.Rows)-1][1])
	best := 1e18
	for _, r := range tab.Rows[1 : len(tab.Rows)-1] {
		if v := parse(t, r[1]); v < best {
			best = v
		}
	}
	if best >= first || best >= last {
		t.Errorf("no interior optimum: first=%.2f best=%.2f last=%.2f", first, best, last)
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tab := testOptions().Ablation()
	get := func(name string, col int) float64 {
		r := tab.Find(name)
		if r == nil {
			t.Fatalf("missing row %s", name)
		}
		return parse(t, r[col])
	}
	full := get("charm-full", 1)
	if os := get("os-threads", 1); os >= full/2 {
		t.Errorf("OS threads (%.1f) should trail coroutines (%.1f) by >2x on BFS", os, full)
	}
	if smt := get("smt-siblings", 1); smt >= get("static-compact", 1) {
		t.Errorf("SMT sharing (%.1f) should trail dedicated cores (%.1f)", smt, get("static-compact", 1))
	}
	if noMLP := get("no-mlp", 2); noMLP >= get("charm-full", 2)/2 {
		t.Errorf("serialized misses (%.2f GB/s) should trail MLP (%.2f) by >2x on SGD", noMLP, get("charm-full", 2))
	}
}

func TestFig10StableSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	tab := o.Fig10()
	ci := tab.Col("64c")
	wins := 0
	for _, r := range tab.Rows {
		if r[ci] != "n/a" && parse(t, r[ci]) >= 1.0 {
			wins++
		}
	}
	if wins < len(tab.Rows)*2/3 {
		t.Errorf("CHARM won only %d of %d size/benchmark cells at 64 cores", wins, len(tab.Rows))
	}
}

func TestFig12Trace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tab := testOptions().Fig12()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if parse(t, r[1]) <= 0 {
			t.Errorf("%s: no samples collected", r[0])
		}
	}
}

func TestFig8IntelNarrowerThanAMD(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := testOptions()
	o.GraphScale = 11
	amd := o.Fig7()
	intel := o.Fig8()
	ratio := func(tab *Table, col string) float64 {
		ci := tab.Col(col)
		var charmV, best float64
		for _, r := range tab.Rows {
			if r[0] != "bfs" {
				continue
			}
			v := parse(t, r[ci])
			if r[1] == "charm" {
				charmV = v
			} else if v > best {
				best = v
			}
		}
		return charmV / best
	}
	a := ratio(amd, "64c")
	i := ratio(intel, "48c")
	// §5.3: CHARM's advantage is architectural — it narrows on Intel's
	// flatter mesh. Allow noise but the Intel edge must not exceed AMD's
	// by much.
	if i > a*1.25 {
		t.Errorf("Intel advantage %.2f unexpectedly exceeds AMD's %.2f", i, a)
	}
}

// TestOverloadShape asserts the admission experiment's acceptance shape:
// deadline-aware shedding sustains >=90% goodput at 2x capacity while the
// no-admission baseline's p99 diverges; load-aware dispatch meets or beats
// the round-robin placement ablation on goodput and p99 at 1x and 2x; the
// chiplet-1 circuit breaker caps the browned-out chiplet's queue depth
// relative to a breaker-off run; and the shed-2x cell replays byte for
// byte.
func TestOverloadShape(t *testing.T) {
	tab := testOptions().Overload()
	goodCol, p99Col := tab.Col("goodput_pct"), tab.Col("p99_us")
	maxqCol, reproCol := tab.Col("maxq_ch1"), tab.Col("repro")
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	get := func(name string) []string {
		r := tab.Find(name)
		if r == nil {
			t.Fatalf("missing row %q", name)
		}
		return r
	}
	shed2, none2 := get("shed-2x"), get("none-2x")
	if g := parse(t, shed2[goodCol]); g < 90 {
		t.Errorf("shed-2x goodput = %.1f%%, want >= 90%%", g)
	}
	if g := parse(t, none2[goodCol]); g >= 60 {
		t.Errorf("no-admission 2x goodput = %.1f%%; overload should collapse it below 60%%", g)
	}
	// The no-admission queue grows without bound at 2x: its p99 blows
	// far past the 200us deadline and past every admission policy's p99.
	non := parse(t, none2[p99Col])
	if non < 1000 {
		t.Errorf("no-admission 2x p99 = %.1fus, want divergence beyond 1000us", non)
	}
	if s := parse(t, shed2[p99Col]); s >= non {
		t.Errorf("shed-2x p99 %.1fus not below no-admission p99 %.1fus", s, non)
	}
	// At half load every policy behaves identically and meets everything.
	for _, name := range []string{"none-0.5x", "block-0.5x", "reject-0.5x", "shed-0.5x"} {
		r := get(name)
		if r[2] != "400" || r[3] != "400" {
			t.Errorf("%s: completed/met = %s/%s, want 400/400", name, r[2], r[3])
		}
	}
	// Load-aware placement must meet or beat the round-robin ablation at
	// matched load (small tolerance for placement-order noise).
	for _, load := range []string{"1x", "2x"} {
		la, rr := get("shed-"+load), get("rr-"+load)
		laG, rrG := parse(t, la[goodCol]), parse(t, rr[goodCol])
		if laG < rrG-1 {
			t.Errorf("load-aware %s goodput %.1f%% below round-robin %.1f%%", load, laG, rrG)
		}
		laP, rrP := parse(t, la[p99Col]), parse(t, rr[p99Col])
		if laP > rrP*1.05 {
			t.Errorf("load-aware %s p99 %.1fus above round-robin %.1fus", load, laP, rrP)
		}
	}
	off, on := get("breaker-off-2x"), get("breaker-on-2x")
	offQ, onQ := parse(t, off[maxqCol]), parse(t, on[maxqCol])
	if onQ >= offQ {
		t.Errorf("breaker did not cap chiplet-1 depth: on=%v off=%v", onQ, offQ)
	}
	if shed2[reproCol] != "yes" {
		t.Errorf("shed-2x replay not byte-identical")
	}
}

// TestTenantsShape asserts the multi-tenant isolation experiment's
// acceptance shape: with per-tenant queues, token buckets, DRR dispatch,
// and chiplet leases, tenant B's 10x flash crowd leaves tenant A's p99
// within 2x of A's solo run, while the shared-heap baseline blows past
// 10x; B's flood is contained by rate limiting, not starvation; the
// fault row rebalances A's lease instead of stalling A; and the isolated
// run replays byte for byte.
func TestTenantsShape(t *testing.T) {
	tab := testOptions().Tenants()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	complCol, metCol := tab.Col("completed"), tab.Col("met")
	limCol, contCol := tab.Col("rate_limited"), tab.Col("containment_x")
	leaseCol, evCol := tab.Col("leases"), tab.Col("lease_ev")
	reproCol := tab.Col("repro")
	get := func(run, tenant string) []string {
		for _, r := range tab.Rows {
			if r[0] == run && r[1] == tenant {
				return r
			}
		}
		t.Fatalf("missing row (%s, %s)", run, tenant)
		return nil
	}
	solo, baseA := get("solo", "A"), get("shared-heap", "A")
	isoA, isoB := get("isolated", "A"), get("isolated", "B")
	fltA := get("isolated-fault", "A")

	// A completes its whole stream in every configuration — isolation and
	// faults must never starve the well-behaved tenant.
	for _, r := range [][]string{solo, baseA, isoA, fltA} {
		if r[complCol] != "240" {
			t.Errorf("%s/%s completed = %s, want 240", r[0], r[1], r[complCol])
		}
	}
	// The containment guarantee: isolated A within 2x of solo, while the
	// shared heap lets B's flood push A past 10x.
	if c := parse(t, isoA[contCol]); c > 2.0 {
		t.Errorf("isolated A containment %.1fx, want <= 2x of solo", c)
	}
	if c := parse(t, baseA[contCol]); c <= 10 {
		t.Errorf("shared-heap A containment %.1fx, want > 10x (noisy neighbor)", c)
	}
	// B's flood is absorbed at its doorstep: the token bucket rate-limits
	// the excess and everything B does admit, it completes on time.
	if parse(t, isoB[limCol]) == 0 {
		t.Error("isolated B: flash crowd was never rate-limited")
	}
	if isoB[complCol] != isoB[metCol] {
		t.Errorf("isolated B: completed %s != met %s; admitted work must meet "+
			"its deadline under isolation", isoB[complCol], isoB[metCol])
	}
	// Steady state grants each tenant its quota of 2 chiplets.
	if isoA[leaseCol] != "2" || isoB[leaseCol] != "2" {
		t.Errorf("isolated leases A=%s B=%s, want 2/2", isoA[leaseCol], isoB[leaseCol])
	}
	// The fault row reshuffles leases (more lease events than the fault-free
	// run) but A still finishes everything.
	if parse(t, fltA[evCol]) <= parse(t, isoA[evCol]) {
		t.Errorf("fault run lease events %s not above fault-free %s; no rebalance",
			fltA[evCol], isoA[evCol])
	}
	if isoA[reproCol] != "yes" {
		t.Error("isolated replay not byte-identical")
	}
}

// TestThermalShape asserts the thermal-cliff experiment's acceptance
// shape: with the closed-loop governor running, thermal-aware dispatch
// keeps the hot die out of the emergency tier (zero parks, peak below the
// park setpoint) and spends less energy than blind round-robin, which
// parks repeatedly and peaks at the setpoint; at 130% overdrive the
// governor still parks but the service degrades gracefully — every job
// accounted for. The closed-loop cell replays byte for byte, plane state
// included.
func TestThermalShape(t *testing.T) {
	tab := testOptions().Thermal()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	softCol, parksCol := tab.Col("soft"), tab.Col("parks")
	maxTCol, energyCol := tab.Col("maxT_C"), tab.Col("energy_mJ")
	complCol, shedCol, expCol := tab.Col("completed"), tab.Col("shed"), tab.Col("expired")
	goodCol, reproCol := tab.Col("goodput_pct"), tab.Col("repro")
	get := func(name string) []string {
		r := tab.Find(name)
		if r == nil {
			t.Fatalf("missing row %q", name)
		}
		return r
	}
	off, closed := get("plane-off"), get("closed-loop")
	rr, over := get("static-rr"), get("overdrive-1.3x")

	// The plane-off baseline has no thermal state to report.
	for _, col := range []int{softCol, parksCol, maxTCol, energyCol} {
		if off[col] != "-" {
			t.Errorf("plane-off thermal cell = %q, want -", off[col])
		}
	}
	// At 70% load everything completes under every configuration.
	for _, r := range [][]string{off, closed, rr} {
		if r[complCol] != "300" {
			t.Errorf("%s completed = %s, want 300", r[0], r[complCol])
		}
	}
	// Thermal-aware dispatch: governor engaged (soft tier visited) but the
	// hot die never reaches the emergency tier.
	if parse(t, closed[softCol]) == 0 {
		t.Error("closed-loop: governor never entered the soft tier")
	}
	if p := parse(t, closed[parksCol]); p != 0 {
		t.Errorf("closed-loop parked %v times; thermal-aware dispatch must avoid the cliff", p)
	}
	if mt := parse(t, closed[maxTCol]); mt >= 85 {
		t.Errorf("closed-loop peak %v C reached the park setpoint", mt)
	}
	if closed[reproCol] != "yes" {
		t.Error("closed-loop replay not byte-identical")
	}
	// Blind dispatch pays the cliff: emergency parks, a hotter peak, and
	// more energy for the same completed work.
	if parse(t, rr[parksCol]) == 0 {
		t.Error("static-rr never parked; the cliff did not materialize")
	}
	if parse(t, rr[maxTCol]) <= parse(t, closed[maxTCol]) {
		t.Errorf("static-rr peak %s C not above closed-loop %s C", rr[maxTCol], closed[maxTCol])
	}
	if parse(t, rr[energyCol]) <= parse(t, closed[energyCol]) {
		t.Errorf("static-rr energy %s mJ not above closed-loop %s mJ", rr[energyCol], closed[energyCol])
	}
	// Overdrive: the governor parks with no placement slack, yet the
	// service stays alive — the whole stream is accounted for and goodput
	// holds up.
	if parse(t, over[parksCol]) == 0 {
		t.Error("overdrive never parked")
	}
	if n := parse(t, over[complCol]) + parse(t, over[shedCol]) + parse(t, over[expCol]); n != 300 {
		t.Errorf("overdrive accounted for %v of 300 jobs", n)
	}
	if g := parse(t, over[goodCol]); g < 50 {
		t.Errorf("overdrive goodput %v%%; degradation should be graceful, not a collapse", g)
	}
}
