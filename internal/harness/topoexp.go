package harness

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"charm"
)

// The topology-sensitivity experiment serves one mixed job stream over
// every interconnect fabric the topo-spec grammar knows, on a homogeneous
// and on a heterogeneous chiplet mix, comparing CHARM's placement
// (load-aware dispatch with congestion demotion and capability-preferred
// kinds) against the static round-robin baseline. The stream is built to
// expose fabric structure: memory-heavy jobs stream a shared array that
// lives spread across the package's L3s, so nearly every access is a
// cross-chiplet transfer and the per-link queueing of the interconnect —
// not the DRAM ceiling — is the bottleneck (a ring's few shared links
// saturate while a crossbar's private links never queue), and
// compute-heavy jobs prefer accelerator dies (which only the
// capability-aware dispatcher can honor). The repro column re-runs the
// CHARM cell and compares the job ledger and every per-job latency byte
// for byte.

const (
	tpWorkers  = 16
	tpJobs     = 200
	tpShared   = 256 << 10 // shared hot array: fits the aggregate L3, not any one chiplet's
	tpChunk    = 32 << 10  // bytes per streamed read
	tpSweeps   = 2         // full sweeps of the hot array per memory task
	tpMLP      = 32        // DMA-like streaming: queueing, not latency, is the bottleneck
	tpComputeN = 12_000    // virtual ns of compute per compute task
	tpTasks    = 4         // tasks per job (one stage)
	tpDeadline = 2_000_000
	tpSeed     = 23
	tpQueueCap = 256
	tpGapNS    = 9_000 // mean arrival gap
)

// tpSpec renders the spec string for one fabric and chiplet mix.
func tpSpec(fab string, het bool) string {
	if het {
		return fab + ":4x2,fast=2,eff=4,accel=2"
	}
	return fab + ":4x2"
}

// topoResult is one measured run.
type topoResult struct {
	stats charm.JobStats
	lats  []int64
	span  int64
	met   int64 // met-deadline work in virtual ns
}

// topoRun serves the mixed stream on one (spec, placement) cell and drains.
func (o Options) topoRun(spec string, placement charm.JobPlacement) topoResult {
	rt, err := charm.Init(charm.Config{
		TopoSpec:      spec,
		Workers:       tpWorkers,
		Deterministic: true,
		MLP:           tpMLP,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: topo: %v", err))
	}
	o.observe(rt)
	defer rt.Finalize()
	hot := rt.Alloc(tpShared)
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		Policy:        charm.AdmitShed,
		QueueCapacity: tpQueueCap,
		Placement:     placement,
		EvalInterval:  50_000,
		Source: &charm.SpecSource{
			Arrivals: charm.NewPoissonArrivals(tpSeed, tpGapNS, tpJobs),
			Gen: func(i int) charm.JobSpec {
				stage := make(charm.JobStage, tpTasks)
				prefer := charm.KindAny
				var cost int64
				if i%2 == 0 {
					// Memory-heavy: streaming sweeps over the shared hot
					// array. The array lives spread across the package's
					// L3s, so nearly every line is a cross-chiplet
					// transfer — pure fabric traffic, no DRAM ceiling to
					// equalize the interconnects.
					for k := range stage {
						k := k
						stage[k] = func(ctx *charm.Ctx) {
							start := charm.Addr((i*137 + k*61) % (tpShared / tpChunk) * tpChunk)
							for s := 0; s < tpSweeps; s++ {
								for off := 0; off < tpShared; off += tpChunk {
									ctx.Read(hot+(start+charm.Addr(off))%tpShared, tpChunk)
								}
							}
						}
					}
					prefer, cost = charm.KindEfficient, 120_000
				} else {
					// Compute-heavy: pure busy time that an accelerator die
					// finishes 2.5x sooner than a fast one.
					for k := range stage {
						stage[k] = func(ctx *charm.Ctx) { ctx.Compute(tpComputeN) }
					}
					prefer, cost = charm.KindAccel, int64(tpTasks*tpComputeN)
				}
				return charm.JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Deadline: tpDeadline,
					Cost:     cost,
					Prefer:   prefer,
					Stages:   []charm.JobStage{stage},
				}
			},
		},
	})
	if err != nil {
		panic(fmt.Sprintf("harness: topo: %v", err))
	}
	svc.Drain()

	var r topoResult
	r.stats = svc.Stats()
	first, last := int64(math.MaxInt64), int64(0)
	for _, j := range svc.Jobs() {
		if j.Arrival() < first {
			first = j.Arrival()
		}
		if j.State() != charm.JobCompleted {
			continue
		}
		r.lats = append(r.lats, j.Latency())
		if f := j.Finished(); f > last {
			last = f
		}
		if j.MetDeadline() {
			r.met += j.Spec().Cost
		}
	}
	if last > first {
		r.span = last - first
	}
	return r
}

func (r topoResult) goodputPct() float64 {
	if r.span <= 0 {
		return 0
	}
	return 100 * float64(r.met) / float64(tpWorkers*r.span)
}

func (r topoResult) p99us() float64 {
	if len(r.lats) == 0 {
		return 0
	}
	s := append([]int64(nil), r.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return float64(s[idx-1]) / 1000
}

// topoSame reports bit-identical replays: the admission ledger and every
// completed job's latency.
func topoSame(a, b topoResult) bool {
	return a.stats == b.stats && a.span == b.span && reflect.DeepEqual(a.lats, b.lats)
}

// Topo regenerates the topology-sensitivity experiment: every fabric ×
// homogeneous/heterogeneous mix, CHARM placement vs static round-robin.
func (o Options) Topo() *Table {
	tab := &Table{
		ID:    "topo",
		Title: "Topology sensitivity: fabrics x chiplet mixes, CHARM vs static placement",
		Header: []string{"spec", "charm_p99_us", "charm_goodput", "static_p99_us",
			"static_goodput", "repro"},
		Notes: "memory-heavy jobs stream a package-resident shared array, so " +
			"cross-chiplet transfers make per-link fabric queueing the bottleneck " +
			"(a ring's few shared links saturate, a crossbar's private links never " +
			"queue) and compute jobs prefer accelerator dies; CHARM = load-aware " +
			"dispatch with congestion demotion plus capability preference, static " +
			"= blind round-robin; the p99 spread across fabrics shows the " +
			"interconnect is a first-order term, and CHARM beats static's p99 on " +
			"every fabric and mix",
	}
	for _, het := range []bool{false, true} {
		for _, fab := range charm.SpecFabrics() {
			spec := tpSpec(fab, het)
			cr := o.topoRun(spec, charm.PlaceLoadAware)
			repro := "no"
			if topoSame(cr, o.topoRun(spec, charm.PlaceLoadAware)) {
				repro = "yes"
			}
			sr := o.topoRun(spec, charm.PlaceRoundRobin)
			tab.Rows = append(tab.Rows, []string{
				spec, f1(cr.p99us()), f1(cr.goodputPct()),
				f1(sr.p99us()), f1(sr.goodputPct()), repro,
			})
		}
	}
	return tab
}
