package harness

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"charm"
	"charm/internal/topology"
)

// The overload experiment drives the open-loop job service at arrival rates
// from 0.5x to 2x of machine capacity and compares the admission policies:
// a no-admission baseline (an effectively unbounded Block queue), bounded
// Block, typed Reject, and deadline-aware Shed. Goodput is the fraction of
// machine capacity spent on jobs that met their deadline; at 2x the shed
// policy must keep goodput high while the no-admission baseline's queue —
// and therefore its p99 latency — diverges. A second scenario thermally
// throttles one chiplet and shows the per-chiplet circuit breaker capping
// the browned-out chiplet's queue depth relative to a breaker-off run.

const (
	ovWorkers  = 8
	ovJobs     = 400
	ovTasks    = 4      // tasks per job (one stage)
	ovTaskCost = 10_000 // virtual ns of compute per task
	ovWork     = ovTasks * ovTaskCost
	// ovGap1x is the capacity-matched mean arrival gap: one job's compute
	// spread over all workers.
	ovGap1x    = ovWork / ovWorkers
	ovDeadline = 200_000
	ovSeed     = 7
	// ovBigQueue makes Block never fill: the no-admission baseline.
	ovBigQueue = 4 * ovJobs
	ovQueueCap = 64
)

// overloadResult is one measured open-loop run.
type overloadResult struct {
	stats   charm.JobStats
	lats    []int64 // completed-job latencies in arrival order
	span    int64   // first arrival to last completion, virtual ns
	metWork int64   // compute ns of jobs that met their deadline
	maxq1   int64   // chiplet 1 queue-depth high-water mark
}

// overloadRun serves ovJobs Poisson arrivals at `load` times capacity under
// one admission policy and drains the machine. A nil schedule runs healthy.
func (o Options) overloadRun(policy charm.AdmitPolicy, queueCap int, load float64,
	breakers bool, faults *charm.FaultSchedule, placement charm.JobPlacement) overloadResult {
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       ovWorkers,
		Deterministic: true,
		Faults:        faults,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: overload: %v", err))
	}
	o.observe(rt)
	defer rt.Finalize()
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		Policy:        policy,
		QueueCapacity: queueCap,
		Breakers:      breakers,
		Placement:     placement,
		EvalInterval:  50_000,
		Source: &charm.SpecSource{
			Arrivals: charm.NewPoissonArrivals(ovSeed, int64(float64(ovGap1x)/load), ovJobs),
			Gen: func(i int) charm.JobSpec {
				stage := make(charm.JobStage, ovTasks)
				for k := range stage {
					stage[k] = func(ctx *charm.Ctx) { ctx.Compute(ovTaskCost) }
				}
				return charm.JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Priority: i % 3,
					Deadline: ovDeadline,
					Cost:     ovWork,
					Stages:   []charm.JobStage{stage},
				}
			},
		},
	})
	if err != nil {
		panic(fmt.Sprintf("harness: overload: %v", err))
	}
	svc.Drain()

	var r overloadResult
	r.stats = svc.Stats()
	first, last := int64(math.MaxInt64), int64(0)
	for _, j := range svc.Jobs() {
		if j.Arrival() < first {
			first = j.Arrival()
		}
		if j.State() != charm.JobCompleted {
			continue
		}
		r.lats = append(r.lats, j.Latency())
		if f := j.Finished(); f > last {
			last = f
		}
		if j.MetDeadline() {
			r.metWork += ovWork
		}
	}
	if last > first {
		r.span = last - first
	}
	r.maxq1 = svc.MaxChipletDepth(1)
	return r
}

// goodputPct is the share of machine capacity spent on deadline-meeting
// jobs over the run's span.
func (r overloadResult) goodputPct() float64 {
	if r.span <= 0 {
		return 0
	}
	return 100 * float64(r.metWork) / float64(ovWorkers*r.span)
}

// p99us is the 99th-percentile completed-job latency in microseconds.
func (r overloadResult) p99us() float64 {
	if len(r.lats) == 0 {
		return 0
	}
	s := append([]int64(nil), r.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return float64(s[idx-1]) / 1000
}

// overloadSame reports bit-identical replays: same ledger, same per-job
// latencies, same queue high-water marks.
func overloadSame(a, b overloadResult) bool {
	return a.stats == b.stats && a.span == b.span && a.maxq1 == b.maxq1 &&
		reflect.DeepEqual(a.lats, b.lats)
}

// ovThermal throttles chiplet 1 by 3x for the bulk of the 2x-load run.
func ovThermal() *charm.FaultSchedule {
	return charm.NewFaultSchedule("overload-thermal", ovSeed).
		ThermalThrottle(1, 100_000, 1_500_000, 3.0)
}

// Overload regenerates the admission/overload experiment: policies
// none (unbounded Block), block, reject, and shed at 0.5x, 1x, and 2x of
// capacity, plus a breaker-off/on pair under a thermal fault at 2x. The
// repro column re-runs shed-2x and compares the full ledger byte for byte.
func (o Options) Overload() *Table {
	tab := &Table{
		ID:    "overload",
		Title: "Open-loop admission: goodput and p99 under 0.5x-2x arrival rates",
		Header: []string{"run", "offered", "completed", "met", "shed", "rejected",
			"expired", "goodput_pct", "p99_us", "maxq_ch1", "repro"},
		Notes: "at 2x capacity deadline-aware shedding sustains >=90% goodput " +
			"while the no-admission baseline's p99 diverges; under a thermal " +
			"fault the chiplet-1 breaker caps its queue depth vs breaker-off",
	}
	loads := []float64{0.5, 1, 2}
	if o.ArrivalLoad > 0 {
		loads = []float64{o.ArrivalLoad}
	}
	policies := []struct {
		name     string
		policy   charm.AdmitPolicy
		queueCap int
	}{
		{"none", charm.AdmitBlock, ovBigQueue},
		{"block", charm.AdmitBlock, ovQueueCap},
		{"reject", charm.AdmitReject, ovQueueCap},
		{"shed", charm.AdmitShed, ovQueueCap},
	}
	row := func(name string, r overloadResult, repro string) []string {
		return []string{
			name, i64(r.stats.Submitted), i64(r.stats.Completed), i64(r.stats.Met),
			i64(r.stats.Shed), i64(r.stats.Rejected), i64(r.stats.Expired),
			f1(r.goodputPct()), f1(r.p99us()), i64(r.maxq1), repro,
		}
	}
	for _, p := range policies {
		for _, load := range loads {
			r := o.overloadRun(p.policy, p.queueCap, load, false, nil, charm.PlaceLoadAware)
			repro := "-"
			if p.name == "shed" && load == 2 {
				again := o.overloadRun(p.policy, p.queueCap, load, false, nil, charm.PlaceLoadAware)
				repro = "no"
				if overloadSame(r, again) {
					repro = "yes"
				}
			}
			tab.Rows = append(tab.Rows, row(fmt.Sprintf("%s-%gx", p.name, load), r, repro))
		}
	}
	// Placement ablation: shed admission with the legacy round-robin
	// dispatch, the comparison the load-aware decision plane must meet or
	// beat on goodput and p99 at matched load.
	for _, load := range []float64{1, 2} {
		r := o.overloadRun(charm.AdmitShed, ovQueueCap, load, false, nil, charm.PlaceRoundRobin)
		tab.Rows = append(tab.Rows, row(fmt.Sprintf("rr-%gx", load), r, "-"))
	}
	// Breaker scenario: chiplet 1 runs 3x slow; with breakers on, its
	// admission refusals cap the browned-out chiplet's queue depth. The
	// pair runs under round-robin placement: load-aware dispatch already
	// routes around the browned-out chiplet via the view's fused health,
	// so the blind baseline is what isolates the breaker's own effect.
	off := o.overloadRun(charm.AdmitShed, ovQueueCap, 2, false, ovThermal(), charm.PlaceRoundRobin)
	on := o.overloadRun(charm.AdmitShed, ovQueueCap, 2, true, ovThermal(), charm.PlaceRoundRobin)
	tab.Rows = append(tab.Rows, row("breaker-off-2x", off, "-"))
	tab.Rows = append(tab.Rows, row("breaker-on-2x", on, "-"))
	return tab
}
