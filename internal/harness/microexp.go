package harness

import (
	"fmt"
	"sort"

	"charm"
	"charm/internal/core"
)

// Fig3 regenerates the core-to-core latency CDF of §2.1: CAS ping-pong
// latency between every core pair of the AMD machine, with the stepped
// distribution (intra-chiplet / inter-chiplet / cross-CCX / cross-socket).
func (o Options) Fig3() *Table {
	topo := o.amd()
	var all, within []int64
	n := topo.NumCores()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			l := topo.CASLatency(charm.CoreID(a), charm.CoreID(b))
			all = append(all, l)
			if topo.NodeOfCore(charm.CoreID(a)) == topo.NodeOfCore(charm.CoreID(b)) {
				within = append(within, l)
			}
		}
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Core-to-core CAS latency CDF (AMD EPYC Milan)",
		Header: []string{"scope", "p10 ns", "p25 ns", "p50 ns", "p75 ns", "p90 ns", "p100 ns"},
		Notes:  "within-NUMA latencies step at ~25/85/155 ns; cross-NUMA above 200 ns",
	}
	t.Rows = append(t.Rows, cdfRow("all-pairs", all))
	t.Rows = append(t.Rows, cdfRow("within-numa", within))
	return t
}

func cdfRow(name string, v []int64) []string {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	q := func(p float64) string {
		idx := int(p * float64(len(v)-1))
		return i64(v[idx])
	}
	return []string{name, q(0.10), q(0.25), q(0.50), q(0.75), q(0.90), q(1.0)}
}

// Fig4 reproduces the cores-vs-memory-channels trend table (§2.2). The
// data is historical; the point is the widening ratio.
func (o Options) Fig4() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Cores vs memory channels in high-end server CPUs",
		Header: []string{"year", "example", "cores", "channels", "cores/channel"},
		Notes:  "core counts grow ~12x since 2010 while channels only ~3x",
	}
	data := []struct {
		year     string
		name     string
		cores    int
		channels int
	}{
		{"2010", "Xeon X7560", 8, 4},
		{"2014", "Xeon E7-8890v2", 15, 4},
		{"2017", "EPYC Naples 7601", 32, 8},
		{"2019", "EPYC Rome 7742", 64, 8},
		{"2021", "EPYC Milan 7713", 64, 8},
		{"2023", "EPYC Genoa 9654", 96, 12},
		{"2026(proj)", "projected", 300, 16},
	}
	for _, d := range data {
		t.Rows = append(t.Rows, []string{d.year, d.name, i64(int64(d.cores)),
			i64(int64(d.channels)), f1(float64(d.cores) / float64(d.channels))})
	}
	return t
}

// Fig5 regenerates the §2.3 microbenchmark: 8 threads write contiguous
// segments of a shared vector, placed either on one chiplet (LocalCache)
// or across all 8 chiplets of a socket (DistributedCache). The row metric
// is DistributedCache's speedup over LocalCache; values below 1 mean
// LocalCache wins (small working sets), above 1 DistributedCache wins.
func (o Options) Fig5() *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "LocalCache vs DistributedCache segmented write sweep (8 workers)",
		Header: []string{"size", "local ns", "distributed ns", "dist speedup"},
		Notes:  "LocalCache wins below one chiplet's L3 capacity; DistributedCache wins beyond, up to ~2.5x",
	}
	topo := o.amd()
	l3 := topo.L3PerChiplet / maxI64(o.CacheScale, 1)
	// Sweep from below one cache line (the paper starts at 38 B, where
	// the 8 segments falsely share lines) to far above the socket's
	// aggregate L3.
	sizes := []int64{64, 256, l3 / 64, l3 / 8, l3 / 2, l3, 2 * l3, 4 * l3, 8 * l3, 32 * l3}
	for _, size := range sizes {
		local := o.fig5Run(charm.SystemCHARM, true, size)
		dist := o.fig5Run(charm.SystemCHARM, false, size)
		t.Rows = append(t.Rows, []string{
			byteLabel(size), i64(local), i64(dist), f2(float64(local) / float64(dist)),
		})
	}
	return t
}

// fig5Run measures the mean virtual time of segmented writes with 8
// workers placed compactly (local) or across chiplets (distributed).
func (o Options) fig5Run(sys charm.System, local bool, size int64) int64 {
	rt, err := charm.Init(charm.Config{
		Topology:    o.amd(),
		CacheScale:  o.CacheScale,
		Workers:     8,
		System:      sys,
		NoAdapt:     true, // static placement per the microbenchmark setup
		SampleShift: o.SampleShift,
	})
	if err != nil {
		panic(err)
	}
	o.observe(rt)
	defer rt.Finalize()
	if !local {
		// Move each worker to its own chiplet (DistributedCache).
		for w := 0; w < 8; w++ {
			rt.Engine().Worker(w).SetSpreadRate(8)
			core.UpdateLocation(rt.Engine().Worker(w))
		}
	}
	data := rt.AllocPolicy(maxI64(size, 64*8), charm.FirstTouch, 0)
	seg := maxI64(size/8, 8)
	// Warm-up pass (the benchmark's initialization), then measured passes.
	run := func() int64 {
		st := rt.AllDo(func(ctx *charm.Ctx) {
			off := charm.Addr(int64(ctx.Worker()) * seg)
			ctx.Write(data+off, seg)
		})
		return st.Makespan
	}
	run()
	var total int64
	const iters = 5
	for i := 0; i < iters; i++ {
		total += run()
	}
	return total / iters
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
