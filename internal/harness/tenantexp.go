package harness

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"charm"
	"charm/internal/topology"
)

// The tenant-isolation experiment is the noisy-neighbor containment gate.
// Two tenants share one machine: tenant A runs a diurnal latency-sensitive
// stream well inside its guaranteed share, tenant B flash-crowds to 10x its
// quota. Under the shared-heap baseline (one Block queue, no tenancy) B's
// flood queues ahead of A and A's p99 diverges; under the isolation plane
// (per-tenant queues, token buckets, DRR dispatch, chiplet leases) A's p99
// must stay within 2x of its solo run while the baseline exceeds 10x. A
// fault row offlines one of A's leased chiplets mid-run to show lease
// rebalance instead of starvation, and the repro row replays the isolated
// run and compares the full per-tenant ledger byte for byte.

const (
	tnWorkers  = 8
	tnTasks    = 4
	tnTaskCost = 10_000
	tnWork     = tnTasks * tnTaskCost
	tnDeadline = 200_000
	tnSeed     = 11
	tnQueueCap = 64
	// Tenant A: diurnal arrivals at ~0.4x of its 2-chiplet quota capacity
	// (4 workers drain one job per tnWork/4 = 10k ns; gap 26k ≈ 0.4x).
	tnAJobs = 240
	tnAGap  = 26_000
	// Tenant B: flash crowd bursting to 10x its quota rate (gap 10k → 1k
	// inside each 200k burst window of a 400k period).
	tnBJobs   = 600
	tnBGap    = 10_000
	tnBPeriod = 400_000
	tnBBurst  = 200_000
	tnBFactor = 10
	// B's token bucket caps admitted rate at its quota rate (gap 10k); the
	// rest of the flood is rate-limited at B's doorstep.
	tnBBucketGap   = 10_000
	tnBBucketBurst = 4
	// The in-flight cap stays far above the offered load so the per-tenant
	// queues — not a shared dispatch ceiling — are the serialization point.
	tnMaxInFlight = 256
)

// tnSpecA and tnSpecB build the tenant admission contracts.
func tnSpecA() charm.TenantSpec {
	return charm.TenantSpec{Name: "A", Weight: 1, Quota: 2,
		Policy: charm.AdmitShed, QueueCap: tnQueueCap}
}

func tnSpecB() charm.TenantSpec {
	return charm.TenantSpec{Name: "B", Weight: 1, Quota: 2,
		GapNS: tnBBucketGap, Burst: tnBBucketBurst,
		Policy: charm.AdmitShed, QueueCap: tnQueueCap}
}

// tnGen builds one tenant's job generator; the name prefix keys per-tenant
// accounting in the shared-heap baseline, where the service itself has no
// tenant dimension.
func tnGen(prefix string) func(i int) charm.JobSpec {
	return func(i int) charm.JobSpec {
		stage := make(charm.JobStage, tnTasks)
		for k := range stage {
			stage[k] = func(ctx *charm.Ctx) { ctx.Compute(tnTaskCost) }
		}
		return charm.JobSpec{
			Name:     fmt.Sprintf("%s-%d", prefix, i),
			Deadline: tnDeadline,
			Cost:     tnWork,
			Stages:   []charm.JobStage{stage},
		}
	}
}

func tnSourceA() charm.JobSource {
	return &charm.SpecSource{
		Arrivals: charm.NewDiurnalArrivals(tnSeed, tnAGap, 1_000_000, 0.3, tnAJobs),
		Gen:      tnGen("A"),
	}
}

func tnSourceB() charm.JobSource {
	return &charm.SpecSource{
		Arrivals: charm.NewFlashCrowdArrivals(tnSeed, tnBGap, tnBPeriod, tnBBurst,
			tnBFactor, tnBJobs),
		Gen: tnGen("B"),
	}
}

// mergedSource interleaves two job sources by earliest arrival — the
// shared-heap baseline's single stream.
type mergedSource struct {
	a, b     charm.JobSource
	aAt, bAt int64
	aSp, bSp charm.JobSpec
	aOK, bOK bool
	primed   bool
}

func (m *mergedSource) Next() (int64, charm.JobSpec, bool) {
	if !m.primed {
		m.aAt, m.aSp, m.aOK = m.a.Next()
		m.bAt, m.bSp, m.bOK = m.b.Next()
		m.primed = true
	}
	switch {
	case m.aOK && (!m.bOK || m.aAt <= m.bAt):
		at, sp := m.aAt, m.aSp
		m.aAt, m.aSp, m.aOK = m.a.Next()
		return at, sp, true
	case m.bOK:
		at, sp := m.bAt, m.bSp
		m.bAt, m.bSp, m.bOK = m.b.Next()
		return at, sp, true
	}
	return 0, charm.JobSpec{}, false
}

// tenantResult is one tenant's measured outcome within a run.
type tenantResult struct {
	lats                   []int64 // completed-job latencies, arrival order
	completed, met         int64
	shed, rejected         int64
	rateLimited            int64
	leases                 int
	leaseGrants, leaseRecl int64
}

func (r tenantResult) p99us() float64 {
	if len(r.lats) == 0 {
		return 0
	}
	s := append([]int64(nil), r.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return float64(s[idx-1]) / 1000
}

// tenantRun drives one configuration and splits the outcome by tenant.
// isolated=false runs the shared-heap baseline (one Block queue, merged
// streams, tenants distinguished only by name prefix).
func (o Options) tenantRun(isolated, soloA bool, faults *charm.FaultSchedule) map[string]tenantResult {
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       tnWorkers,
		Deterministic: true,
		Faults:        faults,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: tenants: %v", err))
	}
	o.observe(rt)
	defer rt.Finalize()

	opts := charm.JobServiceOptions{
		MaxInFlight:  tnMaxInFlight,
		EvalInterval: 50_000,
	}
	switch {
	case isolated && soloA:
		opts.Tenants = []charm.TenantConfig{{Spec: tnSpecA(), Source: tnSourceA()}}
	case isolated:
		opts.Tenants = []charm.TenantConfig{
			{Spec: tnSpecA(), Source: tnSourceA()},
			{Spec: tnSpecB(), Source: tnSourceB()},
		}
	default:
		opts.Policy = charm.AdmitBlock
		opts.QueueCapacity = 4 * (tnAJobs + tnBJobs)
		opts.Source = &mergedSource{a: tnSourceA(), b: tnSourceB()}
	}
	svc, err := rt.ServeJobs(opts)
	if err != nil {
		panic(fmt.Sprintf("harness: tenants: %v", err))
	}
	svc.Drain()

	out := map[string]tenantResult{}
	for _, j := range svc.Jobs() {
		name := "B"
		if len(j.Name()) > 0 && j.Name()[0] == 'A' {
			name = "A"
		}
		r := out[name]
		if j.State() == charm.JobCompleted {
			r.completed++
			r.lats = append(r.lats, j.Latency())
			if j.MetDeadline() {
				r.met++
			}
		}
		out[name] = r
	}
	if isolated {
		for _, st := range svc.TenantStats() {
			r := out[st.Name]
			r.shed, r.rejected, r.rateLimited = st.Shed, st.Rejected, st.RateLimited
			r.leases = st.Leases
			r.leaseGrants, r.leaseRecl = st.LeaseGrants, st.LeaseReclaims
			out[st.Name] = r
		}
	} else {
		st := svc.Stats()
		r := out["B"] // the baseline has no per-tenant ledger; park totals on B
		r.shed, r.rejected = st.Shed, st.Rejected
		out["B"] = r
	}
	return out
}

// tenantSame reports a bit-identical replay of the isolated run: same
// per-tenant latencies and ledgers.
func tenantSame(a, b map[string]tenantResult) bool {
	return reflect.DeepEqual(a, b)
}

// tnFault offlines chiplet 0 — one of tenant A's leased chiplets — for the
// rest of the run, forcing a lease rebalance.
func tnFault() *charm.FaultSchedule {
	return charm.NewFaultSchedule("tenant-fault", tnSeed).
		OfflineChiplet(0, 300_000, math.MaxInt64)
}

// Tenants regenerates the multi-tenant isolation experiment.
func (o Options) Tenants() *Table {
	tab := &Table{
		ID:    "tenants",
		Title: "Multi-tenant isolation: noisy-neighbor containment under a 10x flash crowd",
		Header: []string{"run", "tenant", "completed", "met", "shed", "rejected",
			"rate_limited", "p99_us", "containment_x", "leases", "lease_ev", "repro"},
		Notes: "tenant B flash-crowds to 10x its quota; with per-tenant queues, " +
			"token buckets, DRR dispatch, and chiplet leases, tenant A's p99 stays " +
			"within 2x of its solo run while the shared-heap baseline exceeds 10x; " +
			"the fault row offlines one of A's leased chiplets mid-run (lease " +
			"rebalance, not starvation); repro compares a full replay byte for byte",
	}
	solo := o.tenantRun(true, true, nil)
	base := o.tenantRun(false, false, nil)
	iso := o.tenantRun(true, false, nil)
	isoAgain := o.tenantRun(true, false, nil)
	flt := o.tenantRun(true, false, tnFault())

	soloP99 := solo["A"].p99us()
	repro := "no"
	if tenantSame(iso, isoAgain) {
		repro = "yes"
	}
	row := func(run, tenant string, r tenantResult, rep string) []string {
		cont := "-"
		if tenant == "A" && soloP99 > 0 && run != "solo" {
			cont = f1(r.p99us() / soloP99)
		}
		return []string{
			run, tenant, i64(r.completed), i64(r.met), i64(r.shed), i64(r.rejected),
			i64(r.rateLimited), f1(r.p99us()), cont, i64(int64(r.leases)),
			i64(r.leaseGrants + r.leaseRecl), rep,
		}
	}
	tab.Rows = append(tab.Rows,
		row("solo", "A", solo["A"], "-"),
		row("shared-heap", "A", base["A"], "-"),
		row("shared-heap", "B", base["B"], "-"),
		row("isolated", "A", iso["A"], repro),
		row("isolated", "B", iso["B"], repro),
		row("isolated-fault", "A", flt["A"], "-"),
		row("isolated-fault", "B", flt["B"], "-"),
	)
	return tab
}
