package harness

import (
	"charm"
	"charm/internal/core"
	"charm/internal/workloads/graph"
	"charm/internal/workloads/sgd"
	"charm/internal/workloads/spmv"
	"charm/internal/workloads/streamcluster"
)

// coreUpdateLocation applies Alg. 2 to worker w of rt (exposed for static
// placements in the experiments).
func coreUpdateLocation(rt *charm.Runtime, w int) {
	core.UpdateLocation(rt.Engine().Worker(w))
}

// Fig1 regenerates the headline summary: CHARM's speedup over the best
// NUMA-aware baseline per benchmark family at 64 cores.
func (o Options) Fig1() *Table {
	t := &Table{
		ID:     "fig1",
		Title:  "CHARM speedup over NUMA-aware baselines (64 cores)",
		Header: []string{"benchmark", "baseline", "speedup"},
		Notes:  "graph 1.8-2.3x, statistical analytics up to 3.9x, streamcluster ~1.3x over SHOAL, OLTP ~1x",
	}
	workers := 64
	g := graph.Kronecker(graph.GenConfig{LogVertices: o.GraphScale, EdgeFactor: 16, Seed: 42})

	// Graph benchmarks vs the best of RING/AsymSched/SAM. Measurements
	// average `reps` runs (the paper averages 10) to damp scheduling
	// noise.
	const reps = 3
	mean := func(sys charm.System, bench string, workers int) float64 {
		var sum float64
		for r := 0; r < reps; r++ {
			rt := o.runtime(o.amd(), sys, workers)
			sum += o.runGraphBenchmark(rt, bench, g)
			rt.Finalize()
		}
		return sum / reps
	}
	for _, bench := range []string{"bfs", "cc", "sssp", "gups"} {
		vC := mean(charm.SystemCHARM, bench, workers)
		best := 0.0
		bestName := ""
		for _, sys := range []charm.System{charm.SystemRING, charm.SystemAsymSched, charm.SystemSAM} {
			if v := mean(sys, bench, workers); v > best {
				best, bestName = v, string(sys)
			}
		}
		t.Rows = append(t.Rows, []string{bench, bestName, f2(vC / best)})
	}

	// Streamcluster vs SHOAL at 16 cores, where the paper's gap peaks
	// (SHOAL's sequential placement is stuck on 2 of 8 chiplets).
	rtC := o.runtime(o.amd(), charm.SystemCHARM, 16)
	cT := streamcluster.Run(rtC, o.scConfig(false, 16)).Makespan
	rtC.Finalize()
	rtS := o.runtime(o.amd(), charm.SystemSHOAL, 16)
	sT := streamcluster.Run(rtS, o.scConfig(true, 16)).Makespan
	rtS.Finalize()
	t.Rows = append(t.Rows, []string{"streamcluster", "shoal", f2(float64(sT) / float64(cT))})

	// SGD vs DimmWitted's best native strategy.
	cfg := o.sgdConfig()
	rtC = o.runtime(o.amd(), charm.SystemCHARM, workers)
	gC := sgd.Run(rtC, cfg, sgd.PerNode).GradGBps()
	rtC.Finalize()
	rtD := o.runtime(o.amd(), charm.SystemRING, workers)
	gD := sgd.Run(rtD, cfg, sgd.PerNode).GradGBps()
	rtD.Finalize()
	t.Rows = append(t.Rows, []string{"sgd", "dimmwitted-numa", f2(gC / gD)})

	// Sparse linear algebra (SpMV) vs RING — the second irregular family
	// the paper's Q4 names.
	spmvCfg := spmv.Config{LogRows: o.GraphScale - 1, NNZPerRow: 16, Iters: 3, Seed: 7}
	rtC = o.runtime(o.amd(), charm.SystemCHARM, workers)
	sC := spmv.Run(rtC, spmvCfg).GFLOPS()
	rtC.Finalize()
	rtR := o.runtime(o.amd(), charm.SystemRING, workers)
	sR := spmv.Run(rtR, spmvCfg).GFLOPS()
	rtR.Finalize()
	t.Rows = append(t.Rows, []string{"spmv", "ring", f2(sC / sR)})
	return t
}

// Sensitivity regenerates the §4.6 threshold study: sweeping
// RMT_CHIP_ACCESS_RATE around the chosen default and measuring BFS
// throughput at 32 cores.
func (o Options) Sensitivity() *Table {
	t := &Table{
		ID:     "sens",
		Title:  "RMT_CHIP_ACCESS_RATE sensitivity (BFS, 32 cores, MTEPS)",
		Header: []string{"threshold/interval", "mteps", "migrations"},
		Notes:  "performance is flat near the chosen threshold, degrading at extremes (too eager or too inert)",
	}
	g := graph.Kronecker(graph.GenConfig{LogVertices: o.GraphScale, EdgeFactor: 16, Seed: 42})
	base := o.SchedulerTimer / 500
	for _, mult := range []int64{1, 4, 16, 64, 256} {
		thr := maxI64(base*mult/16, 1)
		rt, err := charm.Init(charm.Config{
			Topology:            o.amd(),
			CacheScale:          o.CacheScale,
			Workers:             32,
			SampleShift:         o.SampleShift,
			SchedulerTimer:      o.SchedulerTimer,
			RemoteFillThreshold: thr,
		})
		if err != nil {
			panic(err)
		}
		o.observe(rt)
		b := graph.Bind(rt, g, 128)
		_, res := b.BFS(0)
		mig := rt.Counter(charm.Migration)
		rt.Finalize()
		t.Rows = append(t.Rows, []string{i64(thr), f1(res.TEPS() / 1e6), i64(mig)})
	}
	return t
}

// Ablation regenerates the DESIGN.md ablations: each CHARM mechanism
// disabled in isolation on a representative workload.
func (o Options) Ablation() *Table {
	t := &Table{
		ID:     "abl",
		Title:  "Ablation: CHARM mechanisms on BFS (32 cores, MTEPS) and SGD (GB/s)",
		Header: []string{"variant", "bfs mteps", "sgd grad GB/s"},
		Notes:  "full CHARM leads; static compact loses cache capacity; static spread loses locality; OS threads lose switch overhead",
	}
	g := graph.Kronecker(graph.GenConfig{LogVertices: o.GraphScale, EdgeFactor: 16, Seed: 42})
	cfg := o.sgdConfig()

	type variant struct {
		name string
		mk   func() *charm.Runtime
	}
	mkCfg := func(mutate func(*charm.Config)) func() *charm.Runtime {
		return func() *charm.Runtime {
			c := charm.Config{
				Topology:       o.amd(),
				CacheScale:     o.CacheScale,
				Workers:        32,
				SampleShift:    o.SampleShift,
				SchedulerTimer: o.SchedulerTimer,
			}
			if mutate != nil {
				mutate(&c)
			}
			rt, err := charm.Init(c)
			if err != nil {
				panic(err)
			}
			return o.observe(rt)
		}
	}
	variants := []variant{
		{"charm-full", mkCfg(nil)},
		{"static-compact", mkCfg(func(c *charm.Config) { c.NoAdapt = true })},
		{"os-threads", mkCfg(func(c *charm.Config) { c.System = charm.SystemOSAsync })},
		// Cost-model ablation: serialize every miss (no memory-level
		// parallelism) — streaming becomes latency-bound.
		{"no-mlp", mkCfg(func(c *charm.Config) { c.MLP = 1 })},
	}
	for _, v := range variants {
		rt := v.mk()
		b := graph.Bind(rt, g, 128)
		_, res := b.BFS(0)
		rt.Finalize()

		rt2 := v.mk()
		gr := sgd.Run(rt2, cfg, sgd.PerNode).GradGBps()
		rt2.Finalize()
		t.Rows = append(t.Rows, []string{v.name, f1(res.TEPS() / 1e6), f2(gr)})
	}
	// Static spread variant via explicit placement.
	rt := o.oltpRuntimeLikeSpread(32)
	b := graph.Bind(rt, g, 128)
	_, res := b.BFS(0)
	rt.Finalize()
	rt2 := o.oltpRuntimeLikeSpread(32)
	gr := sgd.Run(rt2, cfg, sgd.PerNode).GradGBps()
	rt2.Finalize()
	t.Rows = append(t.Rows, []string{"static-spread", f1(res.TEPS() / 1e6), f2(gr)})

	// Hyperthread-sharing variant: the same 32 workers packed as SMT
	// siblings onto 16 physical cores — the contention §4.6 says CHARM
	// avoids by scheduling physical cores only.
	mkSMT := func() *charm.Runtime {
		rt, err := charm.Init(charm.Config{
			Topology:       o.amd(),
			CacheScale:     o.CacheScale,
			Workers:        32,
			NoAdapt:        true,
			UseSMT:         true,
			SampleShift:    o.SampleShift,
			SchedulerTimer: o.SchedulerTimer,
		})
		if err != nil {
			panic(err)
		}
		// Compact placement with worker%cores maps workers 16-31 onto
		// the same cores as 0-15 when we halve the core range: emulate
		// by pinning pairs explicitly.
		for w := 16; w < 32; w++ {
			rt.Engine().Worker(w).Migrate(charm.CoreID(w - 16))
		}
		return o.observe(rt)
	}
	rtS := mkSMT()
	bS := graph.Bind(rtS, g, 128)
	_, resS := bS.BFS(0)
	rtS.Finalize()
	rtS2 := mkSMT()
	grS := sgd.Run(rtS2, cfg, sgd.PerNode).GradGBps()
	rtS2.Finalize()
	t.Rows = append(t.Rows, []string{"smt-siblings", f1(resS.TEPS() / 1e6), f2(grS)})

	// Steal-order variant: full CHARM but with topology-oblivious
	// (worker-ID ring) stealing instead of chiplet-first (§4.4).
	mkSeq := func() *charm.Runtime {
		rt, err := charm.Init(charm.Config{
			Topology:       o.amd(),
			CacheScale:     o.CacheScale,
			Workers:        32,
			ObliviousSteal: true,
			SampleShift:    o.SampleShift,
			SchedulerTimer: o.SchedulerTimer,
		})
		if err != nil {
			panic(err)
		}
		return o.observe(rt)
	}
	rtQ := mkSeq()
	bQ := graph.Bind(rtQ, g, 128)
	_, resQ := bQ.BFS(0)
	rtQ.Finalize()
	rtQ2 := mkSeq()
	grQ := sgd.Run(rtQ2, cfg, sgd.PerNode).GradGBps()
	rtQ2.Finalize()
	t.Rows = append(t.Rows, []string{"charm-seq-steal", f1(resQ.TEPS() / 1e6), f2(grQ)})

	// NPS4 variant: the same machine partitioned into 8 NUMA nodes;
	// strict NUMA-aware policies confine workers to quarter sockets
	// (§1 insight 4: overly strict NUMA awareness can hurt).
	rtN := o.runtime(topology4(), charm.SystemRING, 32)
	bN := graph.Bind(rtN, g, 128)
	_, resN := bN.BFS(0)
	rtN.Finalize()
	rtN2 := o.runtime(topology4(), charm.SystemRING, 32)
	grN := sgd.Run(rtN2, cfg, sgd.PerNode).GradGBps()
	rtN2.Finalize()
	t.Rows = append(t.Rows, []string{"ring-nps4", f1(resN.TEPS() / 1e6), f2(grN)})
	return t
}

// oltpRuntimeLikeSpread builds a statically chiplet-spread runtime.
func (o Options) oltpRuntimeLikeSpread(workers int) *charm.Runtime {
	return o.oltpRuntime(false, workers)
}
