package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"charm"
	"charm/internal/obs"
)

// ObsSink collects end-of-run metrics snapshots from every runtime the
// harness builds. Attach one via Options.Obs; each experiment stamps its id
// with SetCurrent before running, and every Finalize captures a full
// metrics document (snapshot + traced-metric history) into the sink.
type ObsSink struct {
	mu      sync.Mutex
	current string
	entries []ObsEntry
}

// ObsEntry is one runtime's end-of-run metrics capture.
type ObsEntry struct {
	// Experiment is the id active when the runtime finalized.
	Experiment string `json:"experiment"`
	// Workers is the runtime's worker count.
	Workers int `json:"workers"`
	// Metrics is the full metrics document at Finalize time.
	Metrics obs.JSONDoc `json:"metrics"`
}

// SetCurrent stamps subsequent captures that carry no explicit
// experiment id. The harness stamps ids per run (see Options.Run), which
// stays correct when experiments execute concurrently; SetCurrent remains
// the fallback for runtimes observed outside Options.Run.
func (s *ObsSink) SetCurrent(id string) {
	s.mu.Lock()
	s.current = id
	s.mu.Unlock()
}

// captureAs records one runtime's metrics under the given experiment id;
// installed (with the id bound) as a Finalize hook. An empty id falls
// back to the SetCurrent value. Safe for concurrent experiments.
func (s *ObsSink) captureAs(exp string, r *charm.Runtime) {
	doc := obs.BuildJSON(r.MetricsSnapshot(), r.MetricsRegistry().History())
	s.mu.Lock()
	if exp == "" {
		exp = s.current
	}
	s.entries = append(s.entries, ObsEntry{
		Experiment: exp,
		Workers:    r.Workers(),
		Metrics:    doc,
	})
	s.mu.Unlock()
}

// Entries returns a copy of the captures so far, stably ordered by
// experiment id: concurrent experiments append interleaved, but within
// one experiment the runtimes finalize in program order, which the stable
// sort preserves.
func (s *ObsSink) Entries() []ObsEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObsEntry, len(s.entries))
	copy(out, s.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Experiment < out[j].Experiment })
	return out
}

// Len reports the number of captures.
func (s *ObsSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// WriteJSON dumps every capture as one indented JSON document.
func (s *ObsSink) WriteJSON(w io.Writer) error {
	doc := struct {
		Entries []ObsEntry `json:"entries"`
	}{Entries: s.Entries()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Summary condenses the captures into one row per runtime: the headline
// counters an experiment's metrics dump leads with.
func (s *ObsSink) Summary() *Table {
	t := &Table{
		ID:     "obs",
		Title:  "Per-runtime metrics captures",
		Header: []string{"experiment", "workers", "vtime_ms", "tasks", "steals", "migrations", "fabric_MB", "dram_MB"},
	}
	find := func(d *obs.JSONDoc, name string) float64 {
		var sum float64
		for i := range d.Metrics {
			if d.Metrics[i].Name == name && d.Metrics[i].Value != nil {
				sum += *d.Metrics[i].Value
			}
		}
		return sum
	}
	for _, e := range s.Entries() {
		d := &e.Metrics
		t.Rows = append(t.Rows, []string{
			e.Experiment,
			fmt.Sprintf("%d", e.Workers),
			f3(float64(d.VirtualTimeNS) / 1e6),
			fmt.Sprintf("%.0f", find(d, "charm_tasks_total")),
			fmt.Sprintf("%.0f", find(d, "charm_steals_total")),
			fmt.Sprintf("%.0f", find(d, "charm_migrations_total")),
			f2(find(d, "charm_fabric_bytes_total") / (1 << 20)),
			f2(find(d, "charm_mem_bytes_total") / (1 << 20)),
		})
	}
	return t
}
