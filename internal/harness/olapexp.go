package harness

import (
	"fmt"

	"charm"
	"charm/internal/workloads/olap"
)

// olapRows returns the lineitem scale under the options.
func (o Options) olapRows() int {
	if o.Full {
		return 6_000_000 // ~SF1 shape; the paper uses SF100 on a testbed
	}
	return 1 << (o.GraphScale + 4)
}

// Fig13 regenerates the TPC-H comparison: each query analog on 8 cores
// (one chiplet's worth), DuckDB-default scheduling (static chiplet-
// oblivious scatter) vs DuckDB+CHARM (adaptive controller).
func (o Options) Fig13() *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "TPC-H query analogs on 8 cores: DuckDB vs DuckDB+CHARM (virtual ms)",
		Header: []string{"query", "duckdb ms", "duckdb+charm ms", "speedup"},
		Notes:  "all queries benefit; join-heavy queries (Q3,4,5,7,9,10,21) gain 1.2-1.5x; Q18's hash group-by gains least",
	}
	run := func(naive bool) []float64 {
		rt, err := charm.Init(charm.Config{
			Topology:   o.amd(),
			CacheScale: o.CacheScale,
			Workers:    8,
			// DuckDB default: OS-scattered threads across sockets and
			// chiplets with no task affinity (naive); DuckDB+CHARM:
			// the adaptive controller.
			Naive:          naive,
			SampleShift:    o.SampleShift,
			SchedulerTimer: o.SchedulerTimer / 4,
		})
		if err != nil {
			panic(err)
		}
		o.observe(rt)
		defer rt.Finalize()
		tb := olap.Generate(rt, olap.Config{LineitemRows: o.olapRows(), Seed: 3})
		e := olap.NewEngine(rt, tb, 1024)
		out := make([]float64, 22)
		for q := 1; q <= 22; q++ {
			// Warm run lets the adaptive controller settle (the paper
			// reports steady-state query times), then measure.
			e.RunQuery(q)
			out[q-1] = float64(e.RunQuery(q).Makespan) / 1e6
		}
		return out
	}
	duck := run(true)
	withCharm := run(false)
	for q := 0; q < 22; q++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Q%d", q+1),
			f2(duck[q]), f2(withCharm[q]), f2(duck[q] / withCharm[q])})
	}
	return t
}
