package harness

import (
	"fmt"
	"sort"
)

// Experiments maps experiment ids to their regenerators.
func (o Options) Experiments() map[string]func() *Table {
	return map[string]func() *Table{
		"fig1":     o.Fig1,
		"fig3":     o.Fig3,
		"fig4":     o.Fig4,
		"fig5":     o.Fig5,
		"fig7":     o.Fig7,
		"tab1":     o.Tab1,
		"fig8":     o.Fig8,
		"fig9":     o.Fig9,
		"tab2":     o.Tab2,
		"fig10":    o.Fig10,
		"fig11":    o.Fig11,
		"fig12":    o.Fig12,
		"fig13":    o.Fig13,
		"fig14":    o.Fig14,
		"sens":     o.Sensitivity,
		"abl":      o.Ablation,
		"gran":     o.Granularity,
		"chaos":    o.Chaos,
		"overload": o.Overload,
		"thermal":  o.Thermal,
		"tenants":  o.Tenants,
		"topo":     o.Topo,
	}
}

// IDs returns the experiment ids in a stable order.
func (o Options) IDs() []string {
	m := o.Experiments()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one experiment by id. The id is stamped onto the
// by-value receiver before the experiment closures are built, so the
// metrics captures of concurrently running experiments (charm-bench
// -parallel) attribute correctly.
func (o Options) Run(id string) (*Table, error) {
	o.obsExp = id
	f, ok := o.Experiments()[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, o.IDs())
	}
	if o.Obs != nil {
		o.Obs.SetCurrent(id)
	}
	return f(), nil
}
