package harness

import (
	"fmt"
	"reflect"
	"sync/atomic"

	"charm"
	"charm/internal/topology"
)

// The chaos experiment measures graceful degradation: a fixed workload runs
// on every system while the fault plan offlines 2 of 16 chiplets partway
// through. A runtime survives when it completes every task anyway; it
// degrades gracefully when the makespan grows roughly in proportion to the
// lost compute capacity rather than collapsing or deadlocking. A second
// scenario gives the machine spare cores, where CHARM's self-healing
// re-homing keeps the lost capacity near zero while static placements run
// the rest of the workload short-handed.

// chaosResult is one measured run of the chaos workload.
type chaosResult struct {
	makespan  int64
	tasks     int64
	completed int64
	rehomes   float64
	parks     float64
	reenq     float64
	pmu       any // pmu.Snapshot, compared via reflect for reproducibility
}

// chaosWorkload runs the fixed three-phase workload and returns the summed
// makespan and task stats plus the self-counted completions.
func chaosWorkload(rt *charm.Runtime) chaosResult {
	const phases, items = 3, 96
	data := rt.Alloc(64 << 10)
	var completed atomic.Int64
	var r chaosResult
	for p := 0; p < phases; p++ {
		st := rt.ParallelFor(0, items, 1, func(ctx *charm.Ctx, i0, i1 int) {
			ctx.Read(data+charm.Addr((i0%63)*1024), 1024)
			ctx.Compute(20_000)
			completed.Add(1)
		})
		r.makespan += st.Makespan
		r.tasks += st.Tasks
	}
	r.completed = completed.Load()
	snap := rt.MetricsSnapshot()
	if s := snap.Find("charm_fault_migrations_total", nil); s != nil {
		r.rehomes = s.Value
	}
	if s := snap.Find("charm_fault_parks_total", nil); s != nil {
		r.parks = s.Value
	}
	if s := snap.Find("charm_fault_reenqueues_total", nil); s != nil {
		r.reenq = s.Value
	}
	r.pmu = rt.Machine().PMU.Snapshot()
	return r
}

// chaosRun builds a deterministic runtime for sys on topo and runs the
// workload under the given fault schedule (nil = healthy machine).
func (o Options) chaosRun(topo *charm.Topology, sys charm.System, workers int, sched *charm.FaultSchedule) chaosResult {
	rt, err := charm.Init(charm.Config{
		Topology:       topo,
		Workers:        workers,
		System:         sys,
		SchedulerTimer: o.SchedulerTimer,
		Faults:         sched,
		Deterministic:  true,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: chaos: %v", err))
	}
	rt.EnableMetrics(true)
	o.observe(rt)
	defer rt.Finalize()
	return chaosWorkload(rt)
}

// chaosExpected is the per-phase task count × phases of chaosWorkload.
const chaosExpected = 3 * 96

// Chaos regenerates the fault-injection survival experiment. Scenario A
// (rows "<system>"): 16 workers fill a 16-chiplet machine; chiplets 3 and
// 11 go offline at 25% of each system's healthy makespan and never return.
// Scenario B (rows "spare-<system>"): 8 workers on a 32-core machine with
// idle chiplets; CHARM re-homes the offlined workers onto spare cores while
// a static placement parks them. The repro column re-runs CHARM's faulty
// scenario and compares Stats and full PMU state byte for byte.
func (o Options) Chaos() *Table {
	tab := &Table{
		ID:    "chaos",
		Title: "Fault injection: 2/16 chiplets offline mid-run, CHARM vs baselines",
		Header: []string{"system", "healthy_us", "faulty_us", "ratio",
			"completed", "lost", "rehomes", "parks", "reenq", "repro"},
		Notes: "every system completes all tasks; makespan grows ~proportionally " +
			"to lost capacity (16→14 cores ≈ 1.1x); with spare cores CHARM's " +
			"re-homing stays near 1x while static placements lose the workers; " +
			"identical seeds reproduce byte-for-byte",
	}

	systems := []charm.System{
		charm.SystemCHARM, charm.SystemRING, charm.SystemSHOAL,
		charm.SystemAsymSched, charm.SystemSAM,
	}

	// Scenario A: no spare capacity (16 workers on 16 single-core chiplets).
	topoA := func() *charm.Topology { return topology.Synthetic(16, 1) }
	for _, sys := range systems {
		healthy := o.chaosRun(topoA(), sys, 16, nil)
		sched := chaosSchedule(healthy.makespan / 4)
		faulty := o.chaosRun(topoA(), sys, 16, sched)
		repro := "-"
		if sys == charm.SystemCHARM {
			again := o.chaosRun(topoA(), sys, 16, sched)
			repro = "no"
			if again.makespan == faulty.makespan && again.tasks == faulty.tasks &&
				reflect.DeepEqual(again.pmu, faulty.pmu) {
				repro = "yes"
			}
		}
		tab.Rows = append(tab.Rows, chaosRow(string(sys), healthy, faulty, repro))
	}

	// Scenario B: spare capacity (8 workers, 16 chiplets × 2 cores).
	topoB := func() *charm.Topology { return topology.Synthetic(16, 2) }
	for _, sys := range []charm.System{charm.SystemCHARM, charm.SystemRING} {
		healthy := o.chaosRun(topoB(), sys, 8, nil)
		sched := chaosSchedule(healthy.makespan / 4)
		faulty := o.chaosRun(topoB(), sys, 8, sched)
		tab.Rows = append(tab.Rows, chaosRow("spare-"+string(sys), healthy, faulty, "-"))
	}
	return tab
}

// chaosSchedule offlines chiplets 3 and 11 from `from` onward, forever.
func chaosSchedule(from int64) *charm.FaultSchedule {
	if from < 1 {
		from = 1
	}
	return charm.NewFaultSchedule("chaos-2of16", 1).
		OfflineChiplet(3, from, 0).
		OfflineChiplet(11, from, 0)
}

func chaosRow(name string, healthy, faulty chaosResult, repro string) []string {
	ratio := float64(faulty.makespan) / float64(healthy.makespan)
	return []string{
		name,
		f1(float64(healthy.makespan) / 1000),
		f1(float64(faulty.makespan) / 1000),
		f2(ratio) + "x",
		i64(faulty.completed),
		i64(chaosExpected - faulty.completed),
		i64(int64(faulty.rehomes)),
		i64(int64(faulty.parks)),
		i64(int64(faulty.reenq)),
		repro,
	}
}
