package harness

import (
	"fmt"
	"math"

	"charm"
	"charm/internal/workloads/graph"
	"charm/internal/workloads/gups"
)

// GraphBenchmarks lists the §5.2 benchmark suite in paper order.
var GraphBenchmarks = []string{"bfs", "pr", "cc", "sssp", "gups", "graph500"}

// GraphSystems lists the systems compared in Fig. 7/8.
var GraphSystems = []charm.System{charm.SystemCHARM, charm.SystemRING, charm.SystemAsymSched, charm.SystemSAM}

// graphCoreCounts returns the scalability sweep for a machine.
func graphCoreCounts(topo *charm.Topology) []int {
	switch topo.NumCores() {
	case 128:
		return []int{8, 16, 32, 64, 96, 128}
	case 96:
		return []int{8, 16, 32, 48, 72, 96}
	default:
		n := topo.NumCores()
		return []int{n / 4, n / 2, n}
	}
}

// graphGrain sizes tasks so every worker gets several chunks per round
// (at least 8 tasks per worker when the input allows).
func graphGrain(n, workers int) int {
	g := n / (workers * 8)
	if g < 16 {
		g = 16
	}
	if g > 2048 {
		g = 2048
	}
	return g
}

// runGraphBenchmark executes one benchmark on one runtime and returns its
// throughput metric: traversed/processed edges (or updates) per virtual
// second, scaled to millions.
func (o Options) runGraphBenchmark(rt *charm.Runtime, name string, g *graph.CSR) float64 {
	grain := graphGrain(1<<o.GraphScale, rt.Workers())
	switch name {
	case "gups":
		updates := 4 << (o.GraphScale + 3)
		res := gups.Run(rt, gups.Config{
			LogTableSize: o.GraphScale + 3,
			Grain:        graphGrain(updates, rt.Workers()),
			Seed:         7,
		})
		return res.GUPS() * 1e3 // millions of updates/s
	case "bfs":
		b := graph.Bind(rt, g, grain)
		_, res := b.BFS(0)
		return res.TEPS() / 1e6
	case "pr":
		b := graph.Bind(rt, g, grain)
		_, res := b.PageRank(3)
		return res.TEPS() / 1e6
	case "cc":
		b := graph.Bind(rt, g, grain)
		_, res := b.CC()
		return res.TEPS() / 1e6
	case "sssp":
		b := graph.Bind(rt, g, grain)
		_, res := b.SSSP(0)
		return res.TEPS() / 1e6
	case "graph500":
		b := graph.Bind(rt, g, grain)
		res := b.Graph500(2)
		return res.TEPS() / 1e6
	default:
		panic("harness: unknown graph benchmark " + name)
	}
}

// graphScalability runs the Fig. 7/8 sweep on the given machine.
func (o Options) graphScalability(id, machine string, topo func() *charm.Topology) *Table {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Graph processing + random access scalability (%s), MTEPS/MUPS", machine),
		Header: []string{"benchmark", "system"},
		Notes: "CHARM scales near-linearly to one socket then dips and recovers; " +
			"NUMA-aware baselines saturate around 48-56 cores; CHARM leads 1.8-2.3x at 64 cores",
	}
	counts := graphCoreCounts(topo())
	for _, c := range counts {
		t.Header = append(t.Header, fmt.Sprintf("%dc", c))
	}
	g := graph.Kronecker(graph.GenConfig{LogVertices: o.GraphScale, EdgeFactor: 16, Seed: 42})
	runs := o.Runs
	if runs < 1 {
		runs = 1
	}
	for _, bench := range GraphBenchmarks {
		for _, sys := range GraphSystems {
			row := []string{bench, string(sys)}
			for _, workers := range counts {
				vals := make([]float64, runs)
				for r := range vals {
					rt := o.runtime(topo(), sys, workers)
					vals[r] = o.runGraphBenchmark(rt, bench, g)
					rt.Finalize()
				}
				row = append(row, meanSD(vals))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// meanSD formats measurements as "mean" (one run) or "mean±sd".
func meanSD(vals []float64) string {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if len(vals) == 1 {
		return f1(mean)
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(vals)-1))
	return f1(mean) + "±" + f1(sd)
}

// Fig7 regenerates the AMD scalability figure.
func (o Options) Fig7() *Table { return o.graphScalability("fig7", "AMD EPYC Milan", o.amd) }

// Fig8 regenerates the Intel scalability figure.
func (o Options) Fig8() *Table { return o.graphScalability("fig8", "Intel Xeon SPR", o.intel) }

// Tab1 regenerates the chiplet-access comparison at 64 cores (CHARM vs
// RING): accesses served by remote-NUMA chiplets vs the local chiplet.
func (o Options) Tab1() *Table {
	t := &Table{
		ID:     "tab1",
		Title:  "Chiplet accesses at 64 cores (x1000): CHARM vs RING",
		Header: []string{"benchmark", "remote-numa CHARM", "remote-numa RING", "local CHARM", "local RING"},
		Notes:  "CHARM's remote-NUMA chiplet accesses are orders of magnitude below RING's; local-chiplet accesses exceed RING's",
	}
	g := graph.Kronecker(graph.GenConfig{LogVertices: o.GraphScale, EdgeFactor: 16, Seed: 42})
	workers := 64
	if n := o.amd().NumCores(); workers > n {
		workers = n / 2
	}
	for _, bench := range GraphBenchmarks {
		var remote, local [2]int64
		for i, sys := range []charm.System{charm.SystemCHARM, charm.SystemRING} {
			rt := o.runtime(o.amd(), sys, workers)
			o.runGraphBenchmark(rt, bench, g)
			remote[i] = rt.Counter(charm.FillL3RemoteSocket) + rt.Counter(charm.FillDRAMRemote)
			local[i] = rt.Counter(charm.FillL2) + rt.Counter(charm.FillL3Local)
			rt.Finalize()
		}
		t.Rows = append(t.Rows, []string{bench,
			i64(remote[0] / 1000), i64(remote[1] / 1000),
			i64(local[0] / 1000), i64(local[1] / 1000)})
	}
	return t
}

// Fig10 regenerates the graph-size sensitivity sweep: CHARM's speedup over
// RING across graph sizes at 32 and 64 cores.
func (o Options) Fig10() *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "CHARM speedup over RING across graph sizes",
		Header: []string{"benchmark", "size", "bytes", "32c", "64c"},
		Notes:  "speedup stable across sizes (working-set driven), larger at 64 cores where RING stops scaling",
	}
	scales := []int{o.GraphScale - 3, o.GraphScale - 1, o.GraphScale}
	cores := []int{32, 64}
	for _, bench := range []string{"bfs", "pr", "cc", "sssp", "gups", "graph500"} {
		for _, s := range scales {
			g := graph.Kronecker(graph.GenConfig{LogVertices: s, EdgeFactor: 16, Seed: 42})
			row := []string{bench, fmt.Sprintf("2^%d", s), i64(g.ApproxBytes())}
			for _, workers := range cores {
				so := o
				so.GraphScale = s
				rtC := so.runtime(so.amd(), charm.SystemCHARM, workers)
				vC := so.runGraphBenchmark(rtC, bench, g)
				rtC.Finalize()
				rtR := so.runtime(so.amd(), charm.SystemRING, workers)
				vR := so.runGraphBenchmark(rtR, bench, g)
				rtR.Finalize()
				if vR <= 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, f2(vC/vR))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}
