package harness

import (
	"charm"
	"charm/internal/workloads/olap"
)

// Granularity regenerates the §5.6 task-granularity discussion as an
// experiment: sweeping the morsel size (rows per task) for a join-heavy
// (Q3) and a scan-heavy (Q6) query on 8 cores under CHARM. Too-fine
// morsels pay scheduling overhead; too-coarse ones defeat load balancing
// and the profiler's yield points.
func (o Options) Granularity() *Table {
	t := &Table{
		ID:     "gran",
		Title:  "Task granularity sweep on 8 cores (virtual ms)",
		Header: []string{"grain rows", "q3 ms", "q6 ms"},
		Notes:  "a broad optimum in the middle; extremes degrade (paper: 2-4 MB morsels work well, no strict lower bound)",
	}
	rt, err := charm.Init(charm.Config{
		Topology:       o.amd(),
		CacheScale:     o.CacheScale,
		Workers:        8,
		SampleShift:    o.SampleShift,
		SchedulerTimer: o.SchedulerTimer / 4,
	})
	if err != nil {
		panic(err)
	}
	o.observe(rt)
	defer rt.Finalize()
	tb := olap.Generate(rt, olap.Config{LineitemRows: o.olapRows(), Seed: 3})
	for _, grain := range []int{64, 256, 1024, 4096, 16384, 65536} {
		e := olap.NewEngine(rt, tb, grain)
		// Warm run, then measure.
		e.RunQuery(3)
		q3 := float64(e.RunQuery(3).Makespan) / 1e6
		e.RunQuery(6)
		q6 := float64(e.RunQuery(6).Makespan) / 1e6
		t.Rows = append(t.Rows, []string{i64(int64(grain)), f2(q3), f2(q6)})
	}
	return t
}
