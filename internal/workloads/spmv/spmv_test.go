package spmv

import (
	"math"
	"testing"

	"charm"
)

func testRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestRunBasics(t *testing.T) {
	rt := testRT(t, 4)
	res := Run(rt, Config{LogRows: 9, NNZPerRow: 8, Iters: 3, Seed: 7})
	if res.Makespan <= 0 || res.NNZ == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.GFLOPS() <= 0 {
		t.Error("non-positive GFLOPS")
	}
	if res.Norm <= 0 || math.IsNaN(res.Norm) {
		t.Errorf("bad final norm %f", res.Norm)
	}
}

func TestPowerIterationConverges(t *testing.T) {
	// For a symmetric nonnegative matrix, successive normalized iterates'
	// norms approach the dominant eigenvalue: the norm ratio between the
	// last two iterations must stabilize.
	rt := testRT(t, 4)
	shallow := Run(rt, Config{LogRows: 8, NNZPerRow: 8, Iters: 2, Seed: 3})
	rt2 := testRT(t, 4)
	deep := Run(rt2, Config{LogRows: 8, NNZPerRow: 8, Iters: 10, Seed: 3})
	if math.IsNaN(deep.Norm) || deep.Norm <= 0 {
		t.Fatalf("deep norm %f", deep.Norm)
	}
	// Deep iteration's norm approximates the dominant eigenvalue; it must
	// be at least the shallow estimate (power iteration is monotone for
	// symmetric nonnegative matrices up to numerical noise).
	if deep.Norm < shallow.Norm*0.5 {
		t.Errorf("norms diverge: shallow %f deep %f", shallow.Norm, deep.Norm)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	a := Run(testRT(t, 2), Config{LogRows: 7, NNZPerRow: 6, Iters: 3, Seed: 5})
	b := Run(testRT(t, 4), Config{LogRows: 7, NNZPerRow: 6, Iters: 3, Seed: 5})
	// Per-row sums are computed identically; only the norm reduction's
	// float order differs. Tolerate tiny drift.
	if math.Abs(a.Norm-b.Norm)/a.Norm > 1e-9 {
		t.Errorf("norms differ across parallelism: %v vs %v", a.Norm, b.Norm)
	}
}

func TestValidation(t *testing.T) {
	rt := testRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(rt, Config{})
}
