// Package spmv implements sparse matrix-vector multiplication, the second
// irregular workload family the paper's Q4 names ("graph processing and
// sparse linear algebra"). The kernel runs power-method iterations
// y = A·x over a Kronecker-structured sparse matrix in CSR form: row reads
// stream, x-vector gathers are random — the same locality profile that
// makes chiplet-aware placement matter for graphs.
package spmv

import (
	"math"
	"sync/atomic"

	"charm"
	"charm/internal/workloads/graph"
)

// Config parameterizes a run.
type Config struct {
	// LogRows is log2 of the matrix dimension.
	LogRows int
	// NNZPerRow is the average nonzeros per row (0 selects 16).
	NNZPerRow int
	// Iters is the number of y = A·x iterations (0 selects 5).
	Iters int
	// Grain is rows per task (0 selects 128).
	Grain int
	Seed  uint64
}

// Result reports one run.
type Result struct {
	Makespan int64
	NNZ      int64
	Iters    int
	// Norm is the final vector norm (for correctness checks).
	Norm float64
}

// GFLOPS returns billions of floating-point ops per virtual second
// (2 flops per nonzero per iteration).
func (r Result) GFLOPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(2*r.NNZ*int64(r.Iters)) / float64(r.Makespan)
}

// Run executes the kernel on the runtime.
func Run(rt *charm.Runtime, cfg Config) Result {
	if cfg.LogRows <= 0 {
		panic("spmv: LogRows must be positive")
	}
	if cfg.NNZPerRow <= 0 {
		cfg.NNZPerRow = 16
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Grain <= 0 {
		cfg.Grain = 128
	}
	// A Kronecker graph's CSR is a Kronecker sparse matrix; edge weights
	// become values.
	g := graph.Kronecker(graph.GenConfig{
		LogVertices: cfg.LogRows, EdgeFactor: cfg.NNZPerRow / 2, Seed: cfg.Seed,
	})
	n := g.N
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}

	aVal := rt.AllocPolicy(int64(g.M())*8, charm.FirstTouch, 0)
	aIdx := rt.AllocPolicy(int64(g.M())*4, charm.FirstTouch, 0)
	aX := rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)
	aY := rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)
	rt.ParallelFor(0, n, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		e0, e1 := g.Offsets[i0], g.Offsets[i1]
		if e1 > e0 {
			ctx.Write(aVal+charm.Addr(e0*8), (e1-e0)*8)
			ctx.Write(aIdx+charm.Addr(e0*4), (e1-e0)*4)
		}
		ctx.Write(aX+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Write(aY+charm.Addr(i0*8), int64(i1-i0)*8)
	})

	res := Result{NNZ: int64(g.M()), Iters: cfg.Iters}
	start := rt.Now()
	for it := 0; it < cfg.Iters; it++ {
		var norm2 atomic.Uint64 // float bits accumulated via CAS
		rt.ParallelFor(0, n, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
			e0, e1 := g.Offsets[i0], g.Offsets[i1]
			if e1 > e0 {
				ctx.Read(aVal+charm.Addr(e0*8), (e1-e0)*8)
				ctx.Read(aIdx+charm.Addr(e0*4), (e1-e0)*4)
			}
			var local float64
			for row := i0; row < i1; row++ {
				ctx.Yield()
				var sum float64
				cols := g.Neighbors(int32(row))
				ws := g.WeightsOf(int32(row))
				for k, c := range cols {
					ctx.Read(aX+charm.Addr(int64(c)*8), 8)
					sum += float64(ws[k]) * x[c]
				}
				y[row] = sum
				local += sum * sum
				ctx.Compute(int64(len(cols)) * 2)
			}
			ctx.Write(aY+charm.Addr(i0*8), int64(i1-i0)*8)
			for {
				old := norm2.Load()
				nv := math.Float64bits(math.Float64frombits(old) + local)
				if norm2.CompareAndSwap(old, nv) {
					break
				}
			}
		})
		// Normalize (power method) and swap.
		norm := math.Sqrt(math.Float64frombits(norm2.Load()))
		if norm == 0 {
			norm = 1
		}
		rt.ParallelFor(0, n, 1<<13, func(ctx *charm.Ctx, i0, i1 int) {
			for i := i0; i < i1; i++ {
				x[i] = y[i] / norm
			}
			ctx.Read(aY+charm.Addr(i0*8), int64(i1-i0)*8)
			ctx.Write(aX+charm.Addr(i0*8), int64(i1-i0)*8)
		})
		res.Norm = norm
	}
	res.Makespan = rt.Now() - start
	return res
}
