package oltp

import (
	"errors"
	"runtime"
	"sort"
	"sync/atomic"

	"charm"
	"charm/internal/rng"
)

// MVCC is a memory-optimized multi-version store in the spirit of ERMIA:
// per-key version chains, snapshot-isolation reads against a begin
// timestamp, write buffering, and first-committer-wins validation at
// commit. Every chain walk and version installation is charged to the
// simulated machine, so the engine's cache/coherence behavior is visible
// to the runtime under test.
type MVCC struct {
	rt    *charm.Runtime
	heads []atomic.Pointer[version]
	// locks serialize committers per key (readers never lock).
	locks []atomic.Int32
	// aHeads mirrors the head-pointer array (8 B per key); aVers mirrors
	// the version arena (versions are allocated round-robin in it).
	aHeads charm.Addr
	aVers  charm.Addr
	nVers  int64
	cursor atomic.Int64

	clock atomic.Int64 // commit timestamp authority

	commits atomic.Int64
	aborts  atomic.Int64
}

// version is one committed value of a key.
type version struct {
	value uint64
	begin int64 // commit timestamp
	next  *version
	slot  int64 // arena slot for simulated addressing
}

const versionBytes = 32

// ErrConflict is returned by Commit when first-committer-wins validation
// fails (another transaction committed a conflicting write first).
var ErrConflict = errors.New("oltp: write-write conflict")

// NewMVCC builds a store of n keys initialized to zero at timestamp 0.
func NewMVCC(rt *charm.Runtime, n int) *MVCC {
	if n <= 0 {
		panic("oltp: MVCC size must be positive")
	}
	s := &MVCC{
		rt:    rt,
		heads: make([]atomic.Pointer[version], n),
		locks: make([]atomic.Int32, n),
		nVers: int64(n) * 4,
	}
	s.aHeads = rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)
	s.aVers = rt.AllocPolicy(s.nVers*versionBytes, charm.FirstTouch, 0)
	for i := range s.heads {
		s.heads[i].Store(&version{begin: 0, slot: int64(i) % s.nVers})
	}
	return s
}

// Stats returns commit and abort counts.
func (s *MVCC) Stats() (commits, aborts int64) {
	return s.commits.Load(), s.aborts.Load()
}

func (s *MVCC) headAddr(key int) charm.Addr {
	return s.aHeads + charm.Addr(key*8)
}

func (s *MVCC) versAddr(slot int64) charm.Addr {
	return s.aVers + charm.Addr(slot*versionBytes)
}

// Txn is one transaction. Not safe for concurrent use.
type Txn struct {
	s      *MVCC
	begin  int64
	writes map[int]uint64
	done   bool
}

// Begin starts a transaction with a snapshot at the current timestamp.
func (s *MVCC) Begin() *Txn {
	return &Txn{s: s, begin: s.clock.Load(), writes: map[int]uint64{}}
}

// Read returns key's value under the transaction's snapshot, charging the
// head-pointer read plus one version read per chain hop.
func (t *Txn) Read(ctx *charm.Ctx, key int) uint64 {
	if v, ok := t.writes[key]; ok {
		return v // read-your-writes
	}
	ctx.Read(t.s.headAddr(key), 8)
	for v := t.s.heads[key].Load(); v != nil; v = v.next {
		ctx.Read(t.s.versAddr(v.slot), versionBytes)
		if v.begin <= t.begin {
			return v.value
		}
	}
	return 0
}

// Write buffers a value for key until Commit.
func (t *Txn) Write(key int, val uint64) {
	t.writes[key] = val
}

// Commit validates first-committer-wins and installs the write set at a
// fresh commit timestamp, atomically across all written keys: the write
// set is locked in sorted key order (deadlock-free), validated, installed,
// and unlocked. On conflict the transaction aborts with ErrConflict and
// installs nothing.
func (t *Txn) Commit(ctx *charm.Ctx) error {
	if t.done {
		panic("oltp: transaction reused after completion")
	}
	t.done = true
	if len(t.writes) == 0 {
		t.s.commits.Add(1)
		return nil
	}
	keys := make([]int, 0, len(t.writes))
	for key := range t.writes {
		keys = append(keys, key)
	}
	sort.Ints(keys)
	for _, key := range keys {
		for !t.s.locks[key].CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
		ctx.RMW(t.s.headAddr(key), 8) // lock word shares the head line
	}
	unlock := func() {
		for _, key := range keys {
			t.s.locks[key].Store(0)
		}
	}
	// Validation under locks: a head newer than our snapshot means a
	// concurrent transaction committed a conflicting write first.
	for _, key := range keys {
		if h := t.s.heads[key].Load(); h != nil && h.begin > t.begin {
			unlock()
			t.s.aborts.Add(1)
			return ErrConflict
		}
	}
	ts := t.s.clock.Add(1)
	for _, key := range keys {
		slot := t.s.cursor.Add(1) % t.s.nVers
		nv := &version{value: t.writes[key], begin: ts, next: t.s.heads[key].Load(), slot: slot}
		t.s.heads[key].Store(nv)
		ctx.Write(t.s.versAddr(slot), versionBytes)
	}
	unlock()
	ctx.Compute(500) // log-record construction
	t.s.commits.Add(1)
	return nil
}

// Vacuum trims version chains, keeping for every key the newest version
// plus any version still visible to a snapshot at or after horizon. It
// returns the number of versions reclaimed — ERMIA-style epoch GC.
// Vacuum requires quiescence: no transaction may be in flight, exactly as
// an epoch boundary guarantees.
func (s *MVCC) Vacuum(horizon int64) int64 {
	var reclaimed int64
	for i := range s.heads {
		v := s.heads[i].Load()
		if v == nil {
			continue
		}
		// Find the first version visible at the horizon; everything
		// older than it is unreachable by any live snapshot.
		for ; v != nil; v = v.next {
			if v.begin <= horizon {
				break
			}
		}
		if v == nil {
			continue
		}
		for cut := v.next; cut != nil; cut = cut.next {
			reclaimed++
		}
		v.next = nil
	}
	return reclaimed
}

// RunYCSBSI runs the YCSB mix as snapshot-isolation transactions on an
// MVCC store (the full-fidelity ERMIA path, vs. Engine.RunYCSB's
// single-record fast path). Read-modify-write transactions retry on
// write-write conflicts. It returns the throughput result counting only
// committed transactions.
func RunYCSBSI(rt *charm.Runtime, cfg Config) Result {
	cfg.defaults()
	s := NewMVCC(rt, cfg.Records)
	var commits atomic.Int64
	start := rt.Now()
	rt.AllDo(func(ctx *charm.Ctx) {
		seed := cfg.Seed ^ (uint64(ctx.Worker())*0x9E3779B97F4A7C15 + 3)
		for t := 0; t < cfg.TxPerWorker; t++ {
			k := int(rng.SplitMix64(&seed) % uint64(cfg.Records))
			read := int(rng.SplitMix64(&seed)%100) < cfg.ReadPct
			for {
				tx := s.Begin()
				v := tx.Read(ctx, k)
				if !read {
					tx.Write(k, v+1)
				}
				ctx.Compute(cfg.CommitCost)
				if tx.Commit(ctx) == nil {
					commits.Add(1)
					break
				}
				ctx.Yield() // back off and retry on conflict
			}
			ctx.Yield()
		}
	})
	return Result{Commits: commits.Load(), Makespan: rt.Now() - start}
}

// ChainLength returns key's version-chain length (diagnostics and tests).
func (s *MVCC) ChainLength(key int) int {
	n := 0
	for v := s.heads[key].Load(); v != nil; v = v.next {
		n++
	}
	return n
}
