// Package oltp implements the transaction-processing workload of §5.7: a
// miniature memory-optimized OLTP engine in the spirit of ERMIA, driven by
// YCSB (45% read / 55% read-modify-write) and a TPC-C-shaped mix. The
// engine's commit path — a shared log-tail reservation plus a fixed commit
// latency — deliberately dominates record accesses, reproducing the
// paper's negative result: chiplet-level placement barely moves OLTP
// throughput because synchronization and commit protocols bound it.
package oltp

import (
	"sync/atomic"

	"charm"
	"charm/internal/rng"
)

// Config parameterizes the engine.
type Config struct {
	// Records is the YCSB table size.
	Records int
	// Warehouses is the TPC-C scale (0 selects 4).
	Warehouses int
	// Items is the TPC-C item-table size (0 selects 1024).
	Items int
	// TxPerWorker is the transaction count each worker executes.
	TxPerWorker int
	// ReadPct is the YCSB read percentage (0 selects 45, the paper's mix).
	ReadPct int
	// CommitCost is the virtual cost of commit processing (log record
	// construction, durability wait); 0 selects 2 µs.
	CommitCost int64
	Seed       uint64
}

func (c *Config) defaults() {
	if c.Records <= 0 {
		c.Records = 1 << 16
	}
	if c.Warehouses <= 0 {
		c.Warehouses = 4
	}
	if c.Items <= 0 {
		c.Items = 1024
	}
	if c.TxPerWorker <= 0 {
		c.TxPerWorker = 1000
	}
	if c.ReadPct <= 0 {
		c.ReadPct = 45
	}
	if c.CommitCost <= 0 {
		c.CommitCost = 2000
	}
}

// Result reports one run.
type Result struct {
	Commits  int64
	Makespan int64
}

// CommitsPerSec returns committed transactions per virtual second.
func (r Result) CommitsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Commits) / (float64(r.Makespan) / 1e9)
}

// Engine is a bound OLTP database.
type Engine struct {
	rt  *charm.Runtime
	cfg Config

	// YCSB table: versioned counters.
	records []atomic.Uint64
	aRec    charm.Addr

	// TPC-C-shaped state.
	stock  []atomic.Uint64 // warehouses x items
	whYTD  []atomic.Uint64 // per-warehouse year-to-date (hot lines)
	aStock charm.Addr
	aWhYTD charm.Addr

	// Shared commit log: a tail cacheline every commit reserves.
	logTail atomic.Int64
	aLog    charm.Addr
}

// New builds and first-touch-initializes the engine on the runtime.
func New(rt *charm.Runtime, cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{rt: rt, cfg: cfg}
	e.records = make([]atomic.Uint64, cfg.Records)
	e.aRec = rt.AllocPolicy(int64(cfg.Records)*8, charm.FirstTouch, 0)
	e.stock = make([]atomic.Uint64, cfg.Warehouses*cfg.Items)
	e.aStock = rt.AllocPolicy(int64(len(e.stock))*8, charm.FirstTouch, 0)
	e.whYTD = make([]atomic.Uint64, cfg.Warehouses)
	e.aWhYTD = rt.AllocPolicy(int64(cfg.Warehouses)*64, charm.FirstTouch, 0)
	e.aLog = rt.AllocPolicy(1<<16, charm.FirstTouch, 0)
	rt.ParallelFor(0, cfg.Records, 1<<13, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(e.aRec+charm.Addr(i0*8), int64(i1-i0)*8)
	})
	rt.ParallelFor(0, len(e.stock), 1<<13, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(e.aStock+charm.Addr(i0*8), int64(i1-i0)*8)
	})
	return e
}

// commit reserves a log slot (shared tail ping-pong) and pays the commit
// latency — the cost every transaction serializes behind.
func (e *Engine) commit(ctx *charm.Ctx, size int64) {
	e.logTail.Add(size)
	ctx.RMW(e.aLog, 8)
	ctx.Compute(e.cfg.CommitCost)
}

// RunYCSB executes the YCSB mix and returns the throughput result.
func (e *Engine) RunYCSB() Result {
	cfg := e.cfg
	var commits atomic.Int64
	start := e.rt.Now()
	e.rt.AllDo(func(ctx *charm.Ctx) {
		s := cfg.Seed ^ (uint64(ctx.Worker())*0x9E3779B97F4A7C15 + 1)
		for t := 0; t < cfg.TxPerWorker; t++ {
			k := int(rng.SplitMix64(&s) % uint64(cfg.Records))
			a := e.aRec + charm.Addr(k*8)
			if int(rng.SplitMix64(&s)%100) < cfg.ReadPct {
				e.records[k].Load()
				ctx.Read(a, 8)
			} else {
				e.records[k].Add(1)
				ctx.RMW(a, 8)
			}
			e.commit(ctx, 64)
			commits.Add(1)
			ctx.Yield()
		}
	})
	return Result{Commits: commits.Load(), Makespan: e.rt.Now() - start}
}

// RecordSum returns the sum of all YCSB record values (equals the number
// of committed RMW operations — the engine's consistency invariant).
func (e *Engine) RecordSum() uint64 {
	var s uint64
	for i := range e.records {
		s += e.records[i].Load()
	}
	return s
}

// RunTPCC executes the TPC-C-shaped mix — 45% NewOrder, 43% Payment, and
// the remaining 12% split across OrderStatus, Delivery, and StockLevel,
// the proportions §5.1 configures — with home-warehouse affinity per
// worker, and returns the throughput result.
func (e *Engine) RunTPCC() Result {
	cfg := e.cfg
	var commits atomic.Int64
	start := e.rt.Now()
	e.rt.AllDo(func(ctx *charm.Ctx) {
		s := cfg.Seed ^ (uint64(ctx.Worker())*0xBF58476D1CE4E5B9 + 7)
		home := ctx.Worker() % cfg.Warehouses
		for t := 0; t < cfg.TxPerWorker; t++ {
			switch r := rng.SplitMix64(&s) % 100; {
			case r < 45:
				e.newOrder(ctx, &s, home)
			case r < 88:
				e.payment(ctx, &s, home)
			case r < 92:
				e.orderStatus(ctx, &s, home)
			case r < 96:
				e.delivery(ctx, &s, home)
			default:
				e.stockLevel(ctx, &s, home)
			}
			commits.Add(1)
			ctx.Yield()
		}
	})
	return Result{Commits: commits.Load(), Makespan: e.rt.Now() - start}
}

func (e *Engine) stockIdx(wh, item int) int { return wh*e.cfg.Items + item }

// newOrder reads 5-15 items and decrements their stock, 90% in the home
// warehouse, then commits a multi-record log entry.
func (e *Engine) newOrder(ctx *charm.Ctx, s *uint64, home int) {
	n := 5 + int(rng.SplitMix64(s)%11)
	for i := 0; i < n; i++ {
		wh := home
		if rng.SplitMix64(s)%100 < 10 && e.cfg.Warehouses > 1 {
			wh = int(rng.SplitMix64(s) % uint64(e.cfg.Warehouses))
		}
		item := int(rng.SplitMix64(s) % uint64(e.cfg.Items))
		idx := e.stockIdx(wh, item)
		e.stock[idx].Add(^uint64(0)) // decrement
		ctx.RMW(e.aStock+charm.Addr(idx*8), 8)
		ctx.Compute(150)
	}
	e.commit(ctx, int64(64*n))
}

// payment updates the hot warehouse YTD line and commits.
func (e *Engine) payment(ctx *charm.Ctx, s *uint64, home int) {
	amount := rng.SplitMix64(s) % 5000
	e.whYTD[home].Add(amount)
	ctx.RMW(e.aWhYTD+charm.Addr(home*64), 8)
	ctx.Compute(300)
	e.commit(ctx, 64)
}

// orderStatus reads a handful of records without writing.
func (e *Engine) orderStatus(ctx *charm.Ctx, s *uint64, home int) {
	for i := 0; i < 4; i++ {
		item := int(rng.SplitMix64(s) % uint64(e.cfg.Items))
		idx := e.stockIdx(home, item)
		e.stock[idx].Load()
		ctx.Read(e.aStock+charm.Addr(idx*8), 8)
	}
	ctx.Compute(200)
	e.commit(ctx, 32)
}

// delivery processes a batch of 10 district deliveries: each updates an
// order record (modeled as a stock RMW) and the warehouse YTD — a long
// write-heavy transaction with a proportionally larger commit record.
func (e *Engine) delivery(ctx *charm.Ctx, s *uint64, home int) {
	for d := 0; d < 10; d++ {
		item := int(rng.SplitMix64(s) % uint64(e.cfg.Items))
		idx := e.stockIdx(home, item)
		e.stock[idx].Add(1)
		ctx.RMW(e.aStock+charm.Addr(idx*8), 8)
		ctx.Compute(200)
	}
	e.whYTD[home].Add(10)
	ctx.RMW(e.aWhYTD+charm.Addr(home*64), 8)
	e.commit(ctx, 64*10)
}

// stockLevel scans the home warehouse's recent stock entries (a read-only
// range scan) and counts those below a threshold.
func (e *Engine) stockLevel(ctx *charm.Ctx, s *uint64, home int) {
	start := int(rng.SplitMix64(s) % uint64(e.cfg.Items))
	n := 64
	if start+n > e.cfg.Items {
		n = e.cfg.Items - start
	}
	low := 0
	for i := 0; i < n; i++ {
		idx := e.stockIdx(home, start+i)
		if int64(e.stock[idx].Load()) < 10 {
			low++
		}
	}
	ctx.Read(e.aStock+charm.Addr(e.stockIdx(home, start)*8), int64(n)*8)
	ctx.Compute(int64(n) * 3)
	e.commit(ctx, 32)
}

// YTDSum returns the total year-to-date across warehouses (the Payment
// consistency invariant).
func (e *Engine) YTDSum() uint64 {
	var s uint64
	for i := range e.whYTD {
		s += e.whYTD[i].Load()
	}
	return s
}
