package oltp

import (
	"sync/atomic"
	"testing"

	"charm"
)

func mvccRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestMVCCReadYourWrites(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 16)
	rt.Run(func(ctx *charm.Ctx) {
		tx := s.Begin()
		tx.Write(3, 42)
		if got := tx.Read(ctx, 3); got != 42 {
			t.Errorf("read-your-writes = %d", got)
		}
		if got := tx.Read(ctx, 4); got != 0 {
			t.Errorf("unwritten key = %d", got)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Errorf("commit: %v", err)
		}
		tx2 := s.Begin()
		if got := tx2.Read(ctx, 3); got != 42 {
			t.Errorf("committed value = %d", got)
		}
	})
}

func TestMVCCSnapshotStability(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 4)
	rt.Run(func(ctx *charm.Ctx) {
		old := s.Begin() // snapshot before any commit
		w := s.Begin()
		w.Write(0, 7)
		if err := w.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		// The old snapshot must not see the new value.
		if got := old.Read(ctx, 0); got != 0 {
			t.Errorf("snapshot leaked future value %d", got)
		}
		fresh := s.Begin()
		if got := fresh.Read(ctx, 0); got != 7 {
			t.Errorf("fresh snapshot = %d, want 7", got)
		}
	})
}

func TestMVCCFirstCommitterWins(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 4)
	rt.Run(func(ctx *charm.Ctx) {
		t1 := s.Begin()
		t2 := s.Begin()
		t1.Write(1, 10)
		t2.Write(1, 20)
		if err := t1.Commit(ctx); err != nil {
			t.Fatalf("first committer: %v", err)
		}
		if err := t2.Commit(ctx); err != ErrConflict {
			t.Fatalf("second committer: %v, want ErrConflict", err)
		}
		tx := s.Begin()
		if got := tx.Read(ctx, 1); got != 10 {
			t.Errorf("value = %d, want first committer's 10", got)
		}
	})
}

func TestMVCCAbortInstallsNothing(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 8)
	rt.Run(func(ctx *charm.Ctx) {
		t1 := s.Begin()
		t2 := s.Begin()
		t1.Write(2, 1)
		if err := t1.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		// t2 conflicts on key 2 but also writes key 5: neither may land.
		t2.Write(5, 99)
		t2.Write(2, 2)
		if err := t2.Commit(ctx); err != ErrConflict {
			t.Fatalf("want conflict, got %v", err)
		}
		tx := s.Begin()
		if got := tx.Read(ctx, 5); got != 0 {
			t.Errorf("aborted write leaked: key 5 = %d", got)
		}
	})
}

// TestMVCCNoLostUpdates is the classic SI counter test: concurrent
// increment transactions retry on conflict; the final value must equal the
// number of successful commits exactly.
func TestMVCCNoLostUpdates(t *testing.T) {
	rt := mvccRT(t, 8)
	s := NewMVCC(rt, 4)
	var succeeded atomic.Int64
	const perWorker = 200
	rt.AllDo(func(ctx *charm.Ctx) {
		for i := 0; i < perWorker; i++ {
			for {
				tx := s.Begin()
				v := tx.Read(ctx, 0)
				tx.Write(0, v+1)
				if tx.Commit(ctx) == nil {
					succeeded.Add(1)
					break
				}
				ctx.Yield()
			}
		}
	})
	rt.Run(func(ctx *charm.Ctx) {
		tx := s.Begin()
		got := tx.Read(ctx, 0)
		if int64(got) != succeeded.Load() {
			t.Errorf("counter = %d, want %d successful increments", got, succeeded.Load())
		}
	})
	if succeeded.Load() != 8*perWorker {
		t.Errorf("succeeded = %d, want %d (every increment retries to success)",
			succeeded.Load(), 8*perWorker)
	}
	commits, aborts := s.Stats()
	if commits < 8*perWorker {
		t.Errorf("commits = %d", commits)
	}
	if aborts == 0 {
		t.Log("no aborts observed (low contention run)")
	}
}

func TestMVCCMultiKeyAtomicity(t *testing.T) {
	// Transfers between two accounts: the sum is invariant under any
	// interleaving because commits are all-or-nothing.
	rt := mvccRT(t, 4)
	s := NewMVCC(rt, 2)
	rt.Run(func(ctx *charm.Ctx) {
		init := s.Begin()
		init.Write(0, 1000)
		init.Write(1, 1000)
		if err := init.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	})
	rt.AllDo(func(ctx *charm.Ctx) {
		for i := 0; i < 100; i++ {
			for {
				tx := s.Begin()
				a, b := tx.Read(ctx, 0), tx.Read(ctx, 1)
				if a == 0 {
					break
				}
				tx.Write(0, a-1)
				tx.Write(1, b+1)
				if tx.Commit(ctx) == nil {
					break
				}
				ctx.Yield()
			}
		}
	})
	rt.Run(func(ctx *charm.Ctx) {
		tx := s.Begin()
		if sum := tx.Read(ctx, 0) + tx.Read(ctx, 1); sum != 2000 {
			t.Errorf("sum = %d, want 2000", sum)
		}
	})
}

func TestMVCCVacuum(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 2)
	rt.Run(func(ctx *charm.Ctx) {
		for i := 0; i < 10; i++ {
			tx := s.Begin()
			tx.Write(0, uint64(i))
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n := s.ChainLength(0); n < 10 {
		t.Fatalf("chain length %d before vacuum", n)
	}
	horizon := int64(1 << 62) // everything older than the newest is dead
	reclaimed := s.Vacuum(horizon)
	if reclaimed == 0 {
		t.Error("vacuum reclaimed nothing")
	}
	if n := s.ChainLength(0); n != 1 {
		t.Errorf("chain length %d after vacuum, want 1", n)
	}
	rt.Run(func(ctx *charm.Ctx) {
		tx := s.Begin()
		if got := tx.Read(ctx, 0); got != 9 {
			t.Errorf("post-vacuum value = %d, want 9", got)
		}
	})
}

func TestMVCCTxnReusePanics(t *testing.T) {
	rt := mvccRT(t, 1)
	s := NewMVCC(rt, 1)
	rt.Run(func(ctx *charm.Ctx) {
		tx := s.Begin()
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if recover() == nil {
				t.Error("reused txn must panic")
			}
		}()
		tx.Commit(ctx)
	})
}

func TestMVCCValidation(t *testing.T) {
	rt := mvccRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-size store must panic")
		}
	}()
	NewMVCC(rt, 0)
}

func TestRunYCSBSI(t *testing.T) {
	rt := mvccRT(t, 4)
	res := RunYCSBSI(rt, Config{Records: 1 << 10, TxPerWorker: 200, Seed: 2})
	if res.Commits != 4*200 {
		t.Errorf("commits = %d, want 800", res.Commits)
	}
	if res.CommitsPerSec() <= 0 {
		t.Error("non-positive throughput")
	}
}
