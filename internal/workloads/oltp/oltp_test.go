package oltp

import (
	"testing"

	"charm"
)

func rtWith(t *testing.T, workers int, noAdapt bool) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		NoAdapt:        noAdapt,
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestYCSBCommitsAll(t *testing.T) {
	rt := rtWith(t, 4, false)
	e := New(rt, Config{Records: 1 << 10, TxPerWorker: 200, Seed: 1})
	res := e.RunYCSB()
	if res.Commits != 4*200 {
		t.Errorf("commits = %d, want 800", res.Commits)
	}
	if res.CommitsPerSec() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestYCSBRecordInvariant(t *testing.T) {
	rt := rtWith(t, 2, false)
	e := New(rt, Config{Records: 256, TxPerWorker: 500, ReadPct: 45, Seed: 3})
	e.RunYCSB()
	// Every RMW added exactly 1; the sum equals the RMW count, which must
	// be roughly 55% of transactions.
	sum := e.RecordSum()
	total := uint64(2 * 500)
	if sum == 0 || sum >= total {
		t.Errorf("record sum = %d out of %d transactions", sum, total)
	}
	frac := float64(sum) / float64(total)
	if frac < 0.4 || frac > 0.7 {
		t.Errorf("RMW fraction = %.2f, want ~0.55", frac)
	}
}

func TestTPCCCommitsAndInvariant(t *testing.T) {
	rt := rtWith(t, 4, false)
	e := New(rt, Config{Warehouses: 2, Items: 128, TxPerWorker: 300, Seed: 5})
	res := e.RunTPCC()
	if res.Commits != 4*300 {
		t.Errorf("commits = %d, want 1200", res.Commits)
	}
	if e.YTDSum() == 0 {
		t.Error("no payments recorded")
	}
}

func TestCommitBoundInsensitivity(t *testing.T) {
	// The §5.7 negative result: LocalCache (compact placement) and
	// DistributedCache (chiplet-spread placement) throughput differ by
	// far less than the commit cost dominates — within 25%.
	run := func(system charm.System, noAdapt bool) float64 {
		rt, err := charm.Init(charm.Config{
			Workers:  8,
			Topology: charm.SmallTopology(),
			System:   system,
			NoAdapt:  noAdapt,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Finalize()
		e := New(rt, Config{Records: 1 << 12, TxPerWorker: 400, Seed: 7})
		return e.RunYCSB().CommitsPerSec()
	}
	local := run(charm.SystemCHARM, true)       // compact static
	distributed := run(charm.SystemSHOAL, true) // SHOAL ignores NoAdapt; static sequential
	ratio := local / distributed
	if ratio < 0.75 || ratio > 1.33 {
		t.Errorf("OLTP throughput should be placement-insensitive; local/distributed = %.2f", ratio)
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.Records == 0 || c.Warehouses == 0 || c.Items == 0 || c.TxPerWorker == 0 ||
		c.ReadPct != 45 || c.CommitCost == 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
}

func TestZeroMakespanThroughput(t *testing.T) {
	if (Result{Commits: 5}).CommitsPerSec() != 0 {
		t.Error("zero makespan must yield zero throughput")
	}
}

func TestTPCCFullMixRuns(t *testing.T) {
	rt := rtWith(t, 8, false)
	e := New(rt, Config{Warehouses: 4, Items: 256, TxPerWorker: 1000, Seed: 9})
	res := e.RunTPCC()
	if res.Commits != 8*1000 {
		t.Errorf("commits = %d", res.Commits)
	}
	// Delivery adds 10/txn to YTD on top of payments; sum must be positive
	// and the engine must have exercised reads (stock levels) too.
	if e.YTDSum() == 0 {
		t.Error("no YTD updates")
	}
	if rt.Counter(charm.BytesRead) == 0 {
		t.Error("no read traffic (stock-level scans missing?)")
	}
}
