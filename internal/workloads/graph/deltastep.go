package graph

import (
	"sync"
	"sync/atomic"

	"charm"
)

// SSSPDelta runs delta-stepping SSSP (Meyer & Sanders): vertices are
// bucketed by distance/delta; each bucket settles its light edges
// (weight < delta) through repeated parallel relaxation rounds before its
// heavy edges are relaxed once. Compared to the plain Bellman-Ford
// frontier (SSSP), delta-stepping bounds re-relaxation work and is the
// strategy high-performance SSSP implementations use. delta <= 0 selects
// 64 (weights are 1..255).
func (b *Bound) SSSPDelta(root int32, delta int64) ([]int64, Result) {
	if delta <= 0 {
		delta = 64
	}
	g := b.G
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0

	// Buckets are grown on demand; membership is deduplicated per round
	// with an epoch-stamped array.
	var mu sync.Mutex
	buckets := [][]int32{{root}}
	inRound := make([]int32, g.N)
	settledIn := make([]int32, g.N) // bucket+1 the vertex was settled in
	res := Result{Name: "sssp-delta"}
	var edges atomic.Int64
	start := b.RT.Now()

	bucketOf := func(d int64) int { return int(d / delta) }
	push := func(local map[int][]int32, v int32, d int64) {
		bi := bucketOf(d)
		local[bi] = append(local[bi], v)
	}
	merge := func(local map[int][]int32) {
		mu.Lock()
		for bi, vs := range local {
			for len(buckets) <= bi {
				buckets = append(buckets, nil)
			}
			buckets[bi] = append(buckets[bi], vs...)
		}
		mu.Unlock()
	}

	// relax processes the given frontier, relaxing edges with weight
	// predicate keep(), collecting newly improved vertices into buckets.
	relax := func(frontier []int32, light bool) {
		if len(frontier) == 0 {
			return
		}
		b.RT.ParallelFor(0, len(frontier), b.grain, func(ctx *charm.Ctx, i0, i1 int) {
			local := map[int][]int32{}
			var traversed int64
			ctx.Read(b.AFront+charm.Addr(i0*4), int64(i1-i0)*4)
			for i := i0; i < i1; i++ {
				v := frontier[i]
				ctx.Yield()
				ctx.Read(b.AOff+charm.Addr(int64(v)*8), 16)
				e0, e1 := g.Offsets[v], g.Offsets[v+1]
				if e1 > e0 {
					ctx.Read(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
					ctx.Read(b.AWeight+charm.Addr(e0), e1-e0)
				}
				dv := atomic.LoadInt64(&dist[v])
				if dv == inf {
					continue
				}
				nbrs := g.Neighbors(v)
				ws := g.WeightsOf(v)
				for k, u := range nbrs {
					w := int64(ws[k])
					if light != (w < delta) {
						continue
					}
					traversed++
					nd := dv + w
					ctx.Read(b.propAddr(b.AProp, u), 8)
					for {
						cur := atomic.LoadInt64(&dist[u])
						if nd >= cur {
							break
						}
						if atomic.CompareAndSwapInt64(&dist[u], cur, nd) {
							ctx.Write(b.propAddr(b.AProp, u), 8)
							push(local, u, nd)
							break
						}
					}
				}
			}
			edges.Add(traversed)
			merge(local)
		})
	}

	for bi := 0; bi < len(buckets); bi++ {
		// Settle the bucket's light edges: vertices may re-enter the
		// current bucket, so iterate until it is empty. Deduplicate per
		// round using inRound stamps.
		var settled []int32
		round := int32(1)
		for {
			mu.Lock()
			cur := buckets[bi]
			buckets[bi] = nil
			mu.Unlock()
			if len(cur) == 0 {
				break
			}
			frontier := cur[:0:0]
			for _, v := range cur {
				if atomic.LoadInt64(&dist[v]) >= int64(bi+1)*delta {
					continue // moved to a later bucket
				}
				if atomic.SwapInt32(&inRound[v], round) != round {
					frontier = append(frontier, v)
					if settledIn[v] != int32(bi+1) {
						settledIn[v] = int32(bi + 1)
						settled = append(settled, v)
					}
				}
			}
			relax(frontier, true)
			res.Rounds++
			round++
		}
		// One heavy-edge pass over everything the bucket settled.
		relax(settled, false)
		for _, v := range settled {
			inRound[v] = 0
		}
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return dist, res
}
