package graph

import (
	"sync/atomic"

	"charm"
)

// BFSDirOpt runs a direction-optimizing BFS (Beamer et al., the strategy
// the Graph500 reference implementation uses): top-down expansion while the
// frontier is small, switching to bottom-up sweeps — every unvisited vertex
// scans its neighbors for a visited parent — once the frontier covers more
// than 1/alpha of the graph. On skewed Kronecker graphs the bottom-up
// phases touch far fewer edges, and their sequential vertex sweeps stream
// much better through the simulated caches.
func (b *Bound) BFSDirOpt(root int32, alpha int) ([]int32, Result) {
	if alpha <= 0 {
		alpha = 16
	}
	g := b.G
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root

	frontier := make([]bool, g.N) // current frontier membership
	next := make([]bool, g.N)
	frontier[root] = true
	frontierSize := 1
	res := Result{Name: "bfs-diropt"}
	var edges atomic.Int64
	start := b.RT.Now()

	for frontierSize > 0 {
		var produced atomic.Int64
		if frontierSize*alpha < g.N {
			// Top-down: expand frontier vertices.
			b.RT.ParallelFor(0, g.N, b.grain, func(ctx *charm.Ctx, i0, i1 int) {
				var traversed int64
				ctx.Read(b.AFront+charm.Addr(i0*4), int64(i1-i0)*4)
				for v := i0; v < i1; v++ {
					if !frontier[v] {
						continue
					}
					ctx.Yield()
					ctx.Read(b.AOff+charm.Addr(int64(v)*8), 16)
					e0, e1 := g.Offsets[v], g.Offsets[v+1]
					if e1 > e0 {
						ctx.Read(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
					}
					for _, u := range g.Neighbors(int32(v)) {
						traversed++
						ctx.Read(b.propAddr(b.AProp, u), 8)
						if atomic.LoadInt32(&parent[u]) == -1 &&
							atomic.CompareAndSwapInt32(&parent[u], -1, int32(v)) {
							ctx.Write(b.propAddr(b.AProp, u), 8)
							next[u] = true
							produced.Add(1)
						}
					}
				}
				edges.Add(traversed)
			})
		} else {
			// Bottom-up: every unvisited vertex looks for a frontier
			// parent; scanning stops at the first hit.
			b.RT.ParallelFor(0, g.N, b.grain, func(ctx *charm.Ctx, i0, i1 int) {
				var traversed int64
				b.chargeVertexScan(ctx, i0, i1, false)
				for v := i0; v < i1; v++ {
					if parent[v] != -1 {
						continue
					}
					ctx.Yield()
					for _, u := range g.Neighbors(int32(v)) {
						traversed++
						ctx.Read(b.propAddr(b.AProp, u), 8)
						if frontier[u] {
							parent[v] = u
							ctx.Write(b.propAddr(b.AProp, int32(v)), 8)
							next[v] = true
							produced.Add(1)
							break
						}
					}
				}
				edges.Add(traversed)
			})
		}
		frontier, next = next, frontier
		for i := range next {
			next[i] = false
		}
		frontierSize = int(produced.Load())
		res.Rounds++
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return parent, res
}
