package graph

import (
	"testing"
	"testing/quick"

	"charm"
)

func genSmall(t *testing.T) *CSR {
	t.Helper()
	g := Kronecker(GenConfig{LogVertices: 10, EdgeFactor: 8, Seed: 42})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func testRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker(GenConfig{LogVertices: 8, EdgeFactor: 4, Seed: 1})
	if g.N != 256 {
		t.Errorf("N = %d, want 256", g.N)
	}
	if g.M() != 2*256*4 { // symmetrized
		t.Errorf("M = %d, want %d", g.M(), 2*256*4)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Kronecker graphs are skewed: the max degree far exceeds the mean.
	var maxDeg int64
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if mean := int64(g.M() / g.N); maxDeg < 3*mean {
		t.Errorf("max degree %d not skewed vs mean %d", maxDeg, mean)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(GenConfig{LogVertices: 6, EdgeFactor: 4, Seed: 7})
	b := Kronecker(GenConfig{LogVertices: 6, EdgeFactor: 4, Seed: 7})
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := Kronecker(GenConfig{LogVertices: 6, EdgeFactor: 4, Seed: 8})
	same := c.M() == a.M()
	if same {
		diff := false
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestUniformValidates(t *testing.T) {
	g := Uniform(GenConfig{LogVertices: 8, EdgeFactor: 4, Seed: 3})
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCSRSymmetry(t *testing.T) {
	g := genSmall(t)
	// Every edge (v,u) has a reverse (u,v): check via degree-sum parity
	// on a sample of vertices.
	adj := map[[2]int32]int{}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			adj[[2]int32{int32(v), u}]++
		}
	}
	for k, c := range adj {
		if adj[[2]int32{k[1], k[0]}] != c {
			t.Fatalf("asymmetric edge %v", k)
		}
	}
}

func TestBFSCorrectness(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	parent, res := b.BFS(0)
	if parent[0] != 0 {
		t.Fatal("root not its own parent")
	}
	if res.WorkEdges == 0 || res.Makespan <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	// Verify levels: every reached vertex's parent is reached and adjacent.
	for v := int32(0); int(v) < g.N; v++ {
		p := parent[v]
		if p == -1 || v == 0 {
			continue
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vertex %d's parent %d is not a neighbor", v, p)
		}
	}
	// Reachability must match a sequential BFS.
	seq := seqReach(g, 0)
	for v := 0; v < g.N; v++ {
		if (parent[v] != -1) != seq[v] {
			t.Fatalf("vertex %d reachability mismatch", v)
		}
	}
}

func seqReach(g *CSR, root int32) []bool {
	seen := make([]bool, g.N)
	seen[root] = true
	queue := []int32{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return seen
}

func TestPageRankConverges(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	rank, res := b.PageRank(5)
	if res.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", res.Rounds)
	}
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Rank mass stays near 1 (dangling mass may leak slightly).
	if sum < 0.5 || sum > 1.5 {
		t.Errorf("rank sum = %f, want ~1", sum)
	}
}

func TestCCCorrectness(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	label, res := b.CC()
	if res.Rounds == 0 {
		t.Error("no rounds")
	}
	// Fixed point: every vertex's label equals the min over its closed
	// neighborhood.
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if label[u] != label[v] {
				t.Fatalf("edge (%d,%d) spans components %d,%d", v, u, label[v], label[u])
			}
		}
	}
}

func TestSSSPCorrectness(t *testing.T) {
	g := Kronecker(GenConfig{LogVertices: 8, EdgeFactor: 6, Seed: 5})
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	dist, res := b.SSSP(0)
	if res.WorkEdges == 0 {
		t.Error("no edges relaxed")
	}
	// Triangle inequality at fixed point: dist[u] <= dist[v] + w(v,u).
	for v := int32(0); int(v) < g.N; v++ {
		dv := dist[v]
		if dv >= 1<<62 {
			continue
		}
		ws := g.WeightsOf(v)
		for k, u := range g.Neighbors(v) {
			if dist[u] > dv+int64(ws[k]) {
				t.Fatalf("edge (%d,%d): dist[%d]=%d > %d+%d", v, u, u, dist[u], dv, ws[k])
			}
		}
	}
	// Dijkstra cross-check on this small graph.
	want := seqDijkstra(g, 0)
	for v := 0; v < g.N; v++ {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func seqDijkstra(g *CSR, root int32) []int64 {
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	done := make([]bool, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	for {
		v, best := int32(-1), inf
		for i := 0; i < g.N; i++ {
			if !done[i] && dist[i] < best {
				v, best = int32(i), dist[i]
			}
		}
		if v == -1 {
			return dist
		}
		done[v] = true
		ws := g.WeightsOf(v)
		for k, u := range g.Neighbors(v) {
			if nd := dist[v] + int64(ws[k]); nd < dist[u] {
				dist[u] = nd
			}
		}
	}
}

func TestGraph500Kernel(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	res := b.Graph500(2)
	if res.WorkEdges == 0 || res.TEPS() <= 0 {
		t.Errorf("degenerate graph500 result: %+v", res)
	}
}

func TestBindFree(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 2)
	b := Bind(rt, g, 64)
	b.Free()
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := genSmall(t)
	g.Edges[0] = int32(g.N) // out of range
	if err := g.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

func TestKroneckerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Kronecker(GenConfig{LogVertices: 0})
}

func TestResultTEPSProperty(t *testing.T) {
	f := func(edges uint32, ns uint32) bool {
		r := Result{WorkEdges: int64(edges), Makespan: int64(ns)}
		teps := r.TEPS()
		if ns == 0 {
			return teps == 0
		}
		return teps >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBFSDirOptMatchesBFS(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	pTop, _ := b.BFS(0)
	pOpt, res := b.BFSDirOpt(0, 16)
	if res.Rounds == 0 || res.WorkEdges == 0 {
		t.Fatalf("degenerate dir-opt result: %+v", res)
	}
	for v := 0; v < g.N; v++ {
		if (pTop[v] == -1) != (pOpt[v] == -1) {
			t.Fatalf("vertex %d reachability differs between top-down and dir-opt", v)
		}
	}
	// Parent validity for reached vertices.
	for v := int32(0); int(v) < g.N; v++ {
		p := pOpt[v]
		if p == -1 || v == 0 {
			continue
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("dir-opt parent %d of %d is not a neighbor", p, v)
		}
	}
}

func TestBFSDirOptTraversesFewerEdges(t *testing.T) {
	// On a connected skewed graph, bottom-up phases stop at the first
	// frontier parent, so dir-opt must touch no more edges than plain BFS.
	g := Kronecker(GenConfig{LogVertices: 11, EdgeFactor: 16, Seed: 3})
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	_, plain := b.BFS(0)
	_, opt := b.BFSDirOpt(0, 16)
	if opt.WorkEdges > plain.WorkEdges {
		t.Errorf("dir-opt traversed %d edges, plain %d", opt.WorkEdges, plain.WorkEdges)
	}
}

func TestBFSDirOptAlphaDefault(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 2)
	b := Bind(rt, g, 64)
	p, _ := b.BFSDirOpt(0, 0) // 0 selects the default alpha
	if p[0] != 0 {
		t.Error("root not its own parent")
	}
}

func TestValidateBFS(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	parent, _ := b.BFS(0)
	if err := ValidateBFS(g, 0, parent); err != nil {
		t.Fatalf("valid BFS rejected: %v", err)
	}
	// Corrupt the parent of a reached non-root vertex: must be rejected.
	for v := 1; v < g.N; v++ {
		if parent[v] == -1 {
			continue
		}
		bad := make([]int32, len(parent))
		copy(bad, parent)
		bad[v] = int32(v) // self-parent (cycle of length 1, non-root)
		if err := ValidateBFS(g, 0, bad); err == nil {
			t.Fatalf("self-parent at %d accepted", v)
		}
		break
	}
	// Wrong array length.
	if err := ValidateBFS(g, 0, parent[:g.N-1]); err == nil {
		t.Error("short parent array accepted")
	}
	// Root without self-parent.
	bad := make([]int32, len(parent))
	copy(bad, parent)
	bad[0] = -1
	if err := ValidateBFS(g, 0, bad); err == nil {
		t.Error("rootless tree accepted")
	}
}

func TestValidateBFSRejectsNonNeighborParent(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 2)
	b := Bind(rt, g, 64)
	parent, _ := b.BFS(0)
	for v := int32(1); int(v) < g.N; v++ {
		if parent[v] == -1 {
			continue
		}
		// Find a vertex that is NOT a neighbor of v.
		nb := map[int32]bool{}
		for _, u := range g.Neighbors(v) {
			nb[u] = true
		}
		for cand := int32(0); int(cand) < g.N; cand++ {
			if cand != v && !nb[cand] {
				bad := make([]int32, len(parent))
				copy(bad, parent)
				bad[v] = cand
				if err := ValidateBFS(g, 0, bad); err == nil {
					t.Fatal("non-neighbor parent accepted")
				}
				return
			}
		}
	}
	t.Skip("no suitable vertex found")
}

func TestSSSPDeltaMatchesDijkstra(t *testing.T) {
	g := Kronecker(GenConfig{LogVertices: 8, EdgeFactor: 6, Seed: 5})
	rt := testRT(t, 4)
	b := Bind(rt, g, 64)
	dist, res := b.SSSPDelta(0, 64)
	if res.WorkEdges == 0 || res.Rounds == 0 {
		t.Fatalf("degenerate delta-stepping result: %+v", res)
	}
	want := seqDijkstra(g, 0)
	for v := 0; v < g.N; v++ {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestSSSPDeltaVariousDeltas(t *testing.T) {
	g := Kronecker(GenConfig{LogVertices: 7, EdgeFactor: 6, Seed: 9})
	want := seqDijkstra(g, 0)
	for _, delta := range []int64{1, 16, 64, 256, 1024} {
		rt := testRT(t, 4)
		b := Bind(rt, g, 32)
		dist, _ := b.SSSPDelta(0, delta)
		for v := 0; v < g.N; v++ {
			if dist[v] != want[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, dist[v], want[v])
			}
		}
	}
}

func TestSSSPDeltaDefaultDelta(t *testing.T) {
	g := genSmall(t)
	rt := testRT(t, 2)
	b := Bind(rt, g, 64)
	dist, _ := b.SSSPDelta(0, 0) // 0 selects the default
	if dist[0] != 0 {
		t.Error("root distance not 0")
	}
}
