package graph

import (
	"fmt"
	"sync/atomic"

	"charm"
	"charm/internal/rng"
)

// BFS runs a level-synchronous parallel breadth-first search from root and
// returns the parent array along with the execution result. Frontier
// expansion generates one task per `grain` frontier entries — the dynamic
// per-active-node decomposition described in §5.1.
func (b *Bound) BFS(root int32) ([]int32, Result) {
	g := b.G
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root

	frontier := []int32{root}
	next := make([]int32, g.N)
	var nextLen atomic.Int64
	var edges atomic.Int64
	res := Result{Name: "bfs"}
	start := b.RT.Now()

	for len(frontier) > 0 {
		nextLen.Store(0)
		b.RT.ParallelFor(0, len(frontier), b.grain, func(ctx *charm.Ctx, i0, i1 int) {
			// Read this frontier chunk (contiguous).
			ctx.Read(b.AFront+charm.Addr(i0*4), int64(i1-i0)*4)
			var local []int32
			var traversed int64
			for i := i0; i < i1; i++ {
				v := frontier[i]
				ctx.Yield() // per-vertex scheduling/profiling point
				ctx.Read(b.AOff+charm.Addr(int64(v)*8), 16)
				e0, e1 := g.Offsets[v], g.Offsets[v+1]
				if e1 > e0 {
					ctx.Read(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
				}
				for _, u := range g.Neighbors(v) {
					traversed++
					ctx.Read(b.propAddr(b.AProp, u), 8)
					if atomic.LoadInt32(&parent[u]) != -1 {
						continue
					}
					if atomic.CompareAndSwapInt32(&parent[u], -1, v) {
						ctx.Write(b.propAddr(b.AProp, u), 8)
						local = append(local, u)
					}
				}
			}
			if len(local) > 0 {
				at := nextLen.Add(int64(len(local))) - int64(len(local))
				copy(next[at:], local)
				ctx.Write(b.AFront+charm.Addr(at*4), int64(len(local))*4)
			}
			edges.Add(traversed)
		})
		n := nextLen.Load()
		frontier = append(frontier[:0], next[:n]...)
		res.Rounds++
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return parent, res
}

// PageRank runs iters rounds of pull-based PageRank with damping 0.85 and
// returns the rank vector.
func (b *Bound) PageRank(iters int) ([]float64, Result) {
	g := b.G
	rank := make([]float64, g.N)
	rank2 := make([]float64, g.N)
	inv := 1.0 / float64(g.N)
	for i := range rank {
		rank[i] = inv
	}
	res := Result{Name: "pagerank"}
	start := b.RT.Now()
	var edges atomic.Int64

	for it := 0; it < iters; it++ {
		b.RT.ParallelFor(0, g.N, b.grain, func(ctx *charm.Ctx, i0, i1 int) {
			b.chargeVertexScan(ctx, i0, i1, false)
			var traversed int64
			for v := i0; v < i1; v++ {
				ctx.Yield()
				var sum float64
				for _, u := range g.Neighbors(int32(v)) {
					traversed++
					ctx.Read(b.propAddr(b.AProp, u), 8)
					if d := g.Degree(u); d > 0 {
						sum += rank[u] / float64(d)
					}
				}
				rank2[v] = 0.15*inv + 0.85*sum
				ctx.Compute(int64(g.Degree(int32(v))) * 2)
			}
			ctx.Write(b.AProp2+charm.Addr(i0*8), int64(i1-i0)*8)
			edges.Add(traversed)
		})
		rank, rank2 = rank2, rank
		b.AProp, b.AProp2 = b.AProp2, b.AProp
		res.Rounds++
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return rank, res
}

// CC runs min-label propagation until a fixed point and returns the
// component label of every vertex.
func (b *Bound) CC() ([]int32, Result) {
	g := b.G
	label := make([]int32, g.N)
	for i := range label {
		label[i] = int32(i)
	}
	res := Result{Name: "cc"}
	start := b.RT.Now()
	var edges atomic.Int64

	for {
		var changed atomic.Bool
		b.RT.ParallelFor(0, g.N, b.grain, func(ctx *charm.Ctx, i0, i1 int) {
			b.chargeVertexScan(ctx, i0, i1, false)
			var traversed int64
			for v := i0; v < i1; v++ {
				ctx.Yield()
				best := atomic.LoadInt32(&label[v])
				for _, u := range g.Neighbors(int32(v)) {
					traversed++
					ctx.Read(b.propAddr(b.AProp, u), 8)
					if l := atomic.LoadInt32(&label[u]); l < best {
						best = l
					}
				}
				if best < atomic.LoadInt32(&label[v]) {
					atomic.StoreInt32(&label[v], best)
					ctx.Write(b.propAddr(b.AProp, int32(v)), 8)
					changed.Store(true)
				}
			}
			edges.Add(traversed)
		})
		res.Rounds++
		if !changed.Load() {
			break
		}
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return label, res
}

// SSSP runs frontier-based Bellman-Ford relaxation from root over the
// weighted graph and returns the distance vector (math.MaxInt64/2 for
// unreachable vertices).
func (b *Bound) SSSP(root int32) ([]int64, Result) {
	g := b.G
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0

	frontier := []int32{root}
	inNext := make([]int32, g.N) // 0/1 membership flags for dedup
	next := make([]int32, g.N)
	var nextLen atomic.Int64
	var edges atomic.Int64
	res := Result{Name: "sssp"}
	start := b.RT.Now()

	for len(frontier) > 0 {
		nextLen.Store(0)
		b.RT.ParallelFor(0, len(frontier), b.grain, func(ctx *charm.Ctx, i0, i1 int) {
			ctx.Read(b.AFront+charm.Addr(i0*4), int64(i1-i0)*4)
			var local []int32
			var traversed int64
			for i := i0; i < i1; i++ {
				v := frontier[i]
				ctx.Yield()
				ctx.Read(b.AOff+charm.Addr(int64(v)*8), 16)
				e0, e1 := g.Offsets[v], g.Offsets[v+1]
				if e1 > e0 {
					ctx.Read(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
					ctx.Read(b.AWeight+charm.Addr(e0), e1-e0)
				}
				dv := atomic.LoadInt64(&dist[v])
				nbrs := g.Neighbors(v)
				ws := g.WeightsOf(v)
				for k, u := range nbrs {
					traversed++
					nd := dv + int64(ws[k])
					ctx.Read(b.propAddr(b.AProp, u), 8)
					for {
						cur := atomic.LoadInt64(&dist[u])
						if nd >= cur {
							break
						}
						if atomic.CompareAndSwapInt64(&dist[u], cur, nd) {
							ctx.Write(b.propAddr(b.AProp, u), 8)
							if atomic.CompareAndSwapInt32(&inNext[u], 0, 1) {
								local = append(local, u)
							}
							break
						}
					}
				}
			}
			if len(local) > 0 {
				at := nextLen.Add(int64(len(local))) - int64(len(local))
				copy(next[at:], local)
				ctx.Write(b.AFront+charm.Addr(at*4), int64(len(local))*4)
			}
			edges.Add(traversed)
		})
		n := nextLen.Load()
		frontier = append(frontier[:0], next[:n]...)
		for _, v := range frontier {
			inNext[v] = 0
		}
		res.Rounds++
	}
	res.Makespan = b.RT.Now() - start
	res.WorkEdges = edges.Load()
	return dist, res
}

// Graph500 runs the Graph500 kernel: BFS from `roots` pseudo-random
// distinct roots with result validation (the spec's kernel-2 check),
// reporting aggregate traversed edges per second.
func (b *Bound) Graph500(roots int) Result {
	if roots <= 0 {
		roots = 4
	}
	res := Result{Name: "graph500"}
	state := uint64(0x12345)
	start := b.RT.Now()
	for r := 0; r < roots; r++ {
		root := int32(rng.SplitMix64(&state) % uint64(b.G.N))
		// Pick a root with edges so the search does real work.
		for b.G.Degree(root) == 0 {
			root = int32(rng.SplitMix64(&state) % uint64(b.G.N))
		}
		parent, br := b.BFS(root)
		if err := ValidateBFS(b.G, root, parent); err != nil {
			panic("graph: graph500 validation failed: " + err.Error())
		}
		res.WorkEdges += br.WorkEdges
		res.Rounds += br.Rounds
	}
	res.Makespan = b.RT.Now() - start
	return res
}

// ValidateBFS checks a BFS parent array against the Graph500 validation
// rules: the root is its own parent, every parent edge exists in the
// graph, and the implied levels are consistent (each vertex is exactly one
// level below its parent, with no cycles).
func ValidateBFS(g *CSR, root int32, parent []int32) error {
	if len(parent) != g.N {
		return fmt.Errorf("parent array len %d, want %d", len(parent), g.N)
	}
	if parent[root] != root {
		return fmt.Errorf("root %d has parent %d", root, parent[root])
	}
	// Compute levels by chasing parents with a visited bound (cycle
	// detection): no chain may exceed N hops.
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	var chase func(v int32, depth int) (int32, error)
	chase = func(v int32, depth int) (int32, error) {
		if depth > g.N {
			return 0, fmt.Errorf("parent chain cycle at %d", v)
		}
		if level[v] >= 0 {
			return level[v], nil
		}
		p := parent[v]
		if p < 0 {
			return -1, nil // unreachable
		}
		// Parent edge must exist.
		ok := false
		for _, u := range g.Neighbors(v) {
			if u == p {
				ok = true
				break
			}
		}
		if !ok {
			return 0, fmt.Errorf("parent %d of %d is not a neighbor", p, v)
		}
		pl, err := chase(p, depth+1)
		if err != nil {
			return 0, err
		}
		if pl < 0 {
			return 0, fmt.Errorf("vertex %d reached through unreachable parent %d", v, p)
		}
		level[v] = pl + 1
		return level[v], nil
	}
	for v := int32(0); int(v) < g.N; v++ {
		if _, err := chase(v, 0); err != nil {
			return err
		}
	}
	// Tree edges span exactly one level; graph edges span at most one.
	for v := int32(0); int(v) < g.N; v++ {
		if level[v] < 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				return fmt.Errorf("edge (%d,%d) crosses into unvisited territory", v, u)
			}
			d := level[v] - level[u]
			if d < -1 || d > 1 {
				return fmt.Errorf("edge (%d,%d) spans %d levels", v, u, d)
			}
		}
	}
	return nil
}
