package graph

import "charm/internal/rng"

// Kronecker (R-MAT) graph generation following the Graph500 reference
// parameters: A=0.57, B=0.19, C=0.19 (D=0.05), edge factor 16. The paper's
// evaluation uses 2^24 vertices; the harness scales this down together with
// the cache sizes (DESIGN.md §4.5).

// GenConfig parameterizes Kronecker.
type GenConfig struct {
	// LogVertices is log2 of the vertex count (Graph500 "scale").
	LogVertices int
	// EdgeFactor is edges per vertex before symmetrization (default 16).
	EdgeFactor int
	// Seed makes generation deterministic.
	Seed uint64
}

// Kronecker generates a symmetric R-MAT graph.
func Kronecker(cfg GenConfig) *CSR {
	if cfg.LogVertices <= 0 {
		panic("graph: LogVertices must be positive")
	}
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = 16
	}
	n := 1 << cfg.LogVertices
	m := n * cfg.EdgeFactor
	src := make([]int32, m)
	dst := make([]int32, m)
	w := make([]uint8, m)
	state := cfg.Seed*0x9E3779B97F4A7C15 + 0xDEADBEEF

	// R-MAT quadrant probabilities scaled to 16-bit thresholds:
	// A=0.57, A+B=0.76, A+B+C=0.95.
	const tA, tAB, tABC = 37355, 49807, 62258
	for i := 0; i < m; i++ {
		var s, d int32
		for bit := cfg.LogVertices - 1; bit >= 0; bit-- {
			r := uint16(rng.SplitMix64(&state))
			switch {
			case r < tA:
				// top-left: no bits set
			case r < tAB:
				d |= 1 << bit
			case r < tABC:
				s |= 1 << bit
			default:
				s |= 1 << bit
				d |= 1 << bit
			}
		}
		src[i], dst[i] = s, d
		w[i] = uint8(rng.SplitMix64(&state)%254) + 1
	}
	return buildCSR(n, src, dst, w)
}

// Uniform generates a symmetric uniform-random graph (used by GUPS-style
// sensitivity tests and as a low-skew contrast to Kronecker).
func Uniform(cfg GenConfig) *CSR {
	if cfg.LogVertices <= 0 {
		panic("graph: LogVertices must be positive")
	}
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = 16
	}
	n := 1 << cfg.LogVertices
	m := n * cfg.EdgeFactor
	src := make([]int32, m)
	dst := make([]int32, m)
	w := make([]uint8, m)
	state := cfg.Seed*0x9E3779B97F4A7C15 + 0xFEEDFACE
	mask := uint64(n - 1)
	for i := 0; i < m; i++ {
		src[i] = int32(rng.SplitMix64(&state) & mask)
		dst[i] = int32(rng.SplitMix64(&state) & mask)
		w[i] = uint8(rng.SplitMix64(&state)%254) + 1
	}
	return buildCSR(n, src, dst, w)
}
