// Package graph implements the graph-processing workloads of the paper's
// evaluation (§5.1): a Graph500-style Kronecker generator and five
// algorithms — BFS, PageRank, Connected Components, SSSP, and the Graph500
// kernel — decomposed into fine-grained tasks over vertex ranges and driven
// against the simulated machine (every data-structure touch is charged to
// the cache/memory model).
package graph

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row graph. Graphs are symmetrized at build
// time (each generated edge is inserted in both directions), which lets the
// pull-based algorithms reuse the same structure.
type CSR struct {
	N       int     // vertices
	Offsets []int64 // len N+1
	Edges   []int32 // neighbor lists, len M
	Weights []uint8 // per-edge weights (for SSSP), len M
}

// M returns the number of directed edges stored.
func (g *CSR) M() int { return len(g.Edges) }

// Degree returns vertex v's out-degree.
func (g *CSR) Degree(v int32) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbors returns v's adjacency slice.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// WeightsOf returns v's adjacency weight slice.
func (g *CSR) WeightsOf(v int32) []uint8 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// ApproxBytes returns the memory footprint of the structure arrays, used to
// label the Fig. 10 size sweep.
func (g *CSR) ApproxBytes() int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Edges))*4 + int64(len(g.Weights))
}

// Validate checks CSR invariants.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets len %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: offset endpoints [%d,%d] inconsistent with %d edges",
			g.Offsets[0], g.Offsets[g.N], len(g.Edges))
	}
	if !sort.SliceIsSorted(g.Offsets, func(i, j int) bool { return g.Offsets[i] < g.Offsets[j] }) {
		// Equal neighbors are allowed; only strict decreases are invalid.
		for i := 0; i < g.N; i++ {
			if g.Offsets[i] > g.Offsets[i+1] {
				return fmt.Errorf("graph: offsets decrease at %d", i)
			}
		}
	}
	for i, e := range g.Edges {
		if e < 0 || int(e) >= g.N {
			return fmt.Errorf("graph: edge %d targets %d outside [0,%d)", i, e, g.N)
		}
	}
	if len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Edges))
	}
	return nil
}

// buildCSR constructs a symmetric CSR from an edge list.
func buildCSR(n int, src, dst []int32, w []uint8) *CSR {
	deg := make([]int64, n+1)
	for i := range src {
		deg[src[i]+1]++
		deg[dst[i]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg
	m := offsets[n]
	edges := make([]int32, m)
	weights := make([]uint8, m)
	cursor := make([]int64, n)
	for i := range src {
		s, d := src[i], dst[i]
		p := offsets[s] + cursor[s]
		edges[p], weights[p] = d, w[i]
		cursor[s]++
		p = offsets[d] + cursor[d]
		edges[p], weights[p] = s, w[i]
		cursor[d]++
	}
	return &CSR{N: n, Offsets: offsets, Edges: edges, Weights: weights}
}
