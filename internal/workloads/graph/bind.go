package graph

import (
	"charm"
)

// Bound ties a CSR to a runtime's simulated address space. Every algorithm
// touch of the host arrays is mirrored by an Access on the corresponding
// simulated range, so cache behavior, chiplet transfers and NUMA traffic
// are charged faithfully.
type Bound struct {
	G  *CSR
	RT *charm.Runtime

	// Simulated mirrors of the structure arrays.
	AOff, AEdge, AWeight charm.Addr
	// AProp and AProp2 mirror the per-vertex property arrays (8 B each):
	// parents, ranks, labels, or distances depending on the algorithm.
	AProp, AProp2 charm.Addr
	// AFront mirrors the frontier array (4 B per entry).
	AFront charm.Addr

	grain int
}

// Result reports one algorithm execution.
type Result struct {
	Name string
	// Makespan is the summed virtual time of all parallel phases (ns).
	Makespan int64
	// WorkEdges counts edges traversed or relaxed.
	WorkEdges int64
	// Rounds is the number of barrier-separated rounds executed.
	Rounds int
}

// TEPS returns traversed edges per virtual second.
func (r Result) TEPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.WorkEdges) / (float64(r.Makespan) / 1e9)
}

// Bind allocates the simulated mirrors under a first-touch policy and
// distributes the first touch across the runtime's workers, so pages land
// where each system's placement puts its workers (the NUMA behavior a real
// run would produce).
func Bind(rt *charm.Runtime, g *CSR, grain int) *Bound {
	if grain <= 0 {
		grain = 256
	}
	b := &Bound{G: g, RT: rt, grain: grain}
	n, m := int64(g.N), int64(g.M())
	b.AOff = rt.AllocPolicy((n+1)*8, charm.FirstTouch, 0)
	b.AEdge = rt.AllocPolicy(max64(m*4, 1), charm.FirstTouch, 0)
	b.AWeight = rt.AllocPolicy(max64(m, 1), charm.FirstTouch, 0)
	b.AProp = rt.AllocPolicy(n*8, charm.FirstTouch, 0)
	b.AProp2 = rt.AllocPolicy(n*8, charm.FirstTouch, 0)
	b.AFront = rt.AllocPolicy(n*4, charm.FirstTouch, 0)

	// First-touch pass: workers claim the pages of their vertex ranges.
	rt.ParallelFor(0, g.N, grain, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(b.AOff+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Write(b.AProp+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Write(b.AProp2+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Write(b.AFront+charm.Addr(i0*4), int64(i1-i0)*4)
		e0, e1 := g.Offsets[i0], g.Offsets[i1]
		if e1 > e0 {
			ctx.Write(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
			ctx.Write(b.AWeight+charm.Addr(e0), e1-e0)
		}
	})
	return b
}

// Free releases the simulated mirrors.
func (b *Bound) Free() {
	rt := b.RT
	for _, a := range []charm.Addr{b.AOff, b.AEdge, b.AWeight, b.AProp, b.AProp2, b.AFront} {
		rt.Free(a)
	}
}

// chargeVertexScan charges the structure reads for processing vertices
// [i0,i1): their offsets and full adjacency runs (contiguous).
func (b *Bound) chargeVertexScan(ctx *charm.Ctx, i0, i1 int, withWeights bool) {
	ctx.Read(b.AOff+charm.Addr(i0*8), int64(i1-i0+1)*8)
	e0, e1 := b.G.Offsets[i0], b.G.Offsets[i1]
	if e1 > e0 {
		ctx.Read(b.AEdge+charm.Addr(e0*4), (e1-e0)*4)
		if withWeights {
			ctx.Read(b.AWeight+charm.Addr(e0), e1-e0)
		}
	}
}

// propAddr returns the simulated address of vertex v's 8-byte property.
func (b *Bound) propAddr(base charm.Addr, v int32) charm.Addr {
	return base + charm.Addr(int64(v)*8)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
