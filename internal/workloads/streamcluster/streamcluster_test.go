package streamcluster

import (
	"testing"

	"charm"
)

func testRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestRunBasics(t *testing.T) {
	rt := testRT(t, 4)
	res := Run(rt, Config{Points: 2048, Dims: 16, Batch: 1024, CandidateRounds: 6, Seed: 3})
	if res.Batches != 2 {
		t.Errorf("batches = %d, want 2", res.Batches)
	}
	if res.Centers < 2 {
		t.Errorf("centers = %d, want >= 2 (one per batch)", res.Centers)
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if res.FinalCost < 0 {
		t.Error("negative cost")
	}
}

func TestClusteringReducesCost(t *testing.T) {
	rt := testRT(t, 4)
	// More candidate rounds must not increase the final cost.
	shallow := Run(rt, Config{Points: 1024, Dims: 8, CandidateRounds: 1, Seed: 9})
	rt2 := testRT(t, 4)
	deep := Run(rt2, Config{Points: 1024, Dims: 8, CandidateRounds: 12, Seed: 9})
	if deep.FinalCost > shallow.FinalCost*1.01 {
		t.Errorf("deeper search cost %.3f > shallow %.3f", deep.FinalCost, shallow.FinalCost)
	}
}

func TestDeterministicCost(t *testing.T) {
	a := Run(testRT(t, 2), Config{Points: 512, Dims: 8, CandidateRounds: 4, Seed: 5})
	b := Run(testRT(t, 2), Config{Points: 512, Dims: 8, CandidateRounds: 4, Seed: 5})
	if a.FinalCost != b.FinalCost || a.Centers != b.Centers {
		t.Errorf("nondeterministic clustering: %+v vs %+v", a, b)
	}
}

func TestReplicationEliminatesRemoteReads(t *testing.T) {
	// Dual-socket machine: with a single copy on node 0, workers on node 1
	// read remotely; with per-node replication they read locally.
	dual, err := charm.Init(charm.Config{Workers: 8, Topology: smallDual(), NoAdapt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dual.Finalize()
	Run(dual, Config{Points: 4096, Dims: 16, CandidateRounds: 4, Seed: 1, ReplicatePoints: true})
	repl := dual.Counter(charm.FillDRAMRemote)

	dual2, err := charm.Init(charm.Config{Workers: 8, Topology: smallDual(), NoAdapt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dual2.Finalize()
	Run(dual2, Config{Points: 4096, Dims: 16, CandidateRounds: 4, Seed: 1})
	single := dual2.Counter(charm.FillDRAMRemote)
	if repl > single {
		t.Errorf("replicated remote fills (%d) exceed single-copy (%d)", repl, single)
	}
}

func smallDual() *charm.Topology {
	t := charm.SmallTopology()
	t.Sockets = 2
	return t
}

func TestValidation(t *testing.T) {
	rt := testRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(rt, Config{})
}
