// Package streamcluster implements the PARSEC streamcluster workload used
// in §5.4: streaming k-median clustering over batched points. The hot
// kernel (the PARSEC pgain function) evaluates, in parallel over all
// points, whether opening a candidate center reduces total cost; the
// shared read of the candidate/centers plus per-batch barriers give the
// workload its locality, sharing and synchronization profile.
package streamcluster

import (
	"sync/atomic"

	"charm"
	"charm/internal/rng"
)

// Config parameterizes a run.
type Config struct {
	Points int
	Dims   int
	// Batch is the stream chunk size (the paper uses 200,000 points).
	Batch int
	// CandidateRounds is the number of center candidates evaluated per
	// batch (the local-search depth).
	CandidateRounds int
	// Grain is points per task (0 selects 512).
	Grain int
	Seed  uint64
	// ReplicatePoints allocates one copy of the point block per NUMA node
	// and lets workers read their local copy — SHOAL's array replication.
	ReplicatePoints bool
	// CentralAlloc binds all data to node 0 (main-thread allocation, no
	// NUMA awareness) instead of distributing it first-touch.
	CentralAlloc bool
}

// Result reports one run.
type Result struct {
	Makespan int64
	Centers  int
	Batches  int
	// FinalCost is the summed assignment cost (for correctness checks).
	FinalCost float64
}

// Run executes the clustering on the runtime.
func Run(rt *charm.Runtime, cfg Config) Result {
	if cfg.Points <= 0 || cfg.Dims <= 0 {
		panic("streamcluster: Points and Dims must be positive")
	}
	if cfg.Batch <= 0 || cfg.Batch > cfg.Points {
		cfg.Batch = cfg.Points
	}
	if cfg.CandidateRounds <= 0 {
		cfg.CandidateRounds = 8
	}
	if cfg.Grain <= 0 {
		cfg.Grain = 512
	}
	n, d := cfg.Points, cfg.Dims
	rowBytes := int64(d) * 4

	// Host data.
	state := cfg.Seed*0x9E3779B97F4A7C15 + 77
	pts := make([]float32, n*d)
	for i := range pts {
		pts[i] = float32(rng.Float64(&state))*2 - 1
	}
	assignCost := make([]float64, n) // distance to current center
	centerOf := make([]int32, n)

	// Simulated mirrors. With replication every node owns a copy of the
	// points and workers read the local one; otherwise a single
	// first-touch copy is shared.
	topo := rt.Topology()
	var ptsAddrs []charm.Addr
	var aCost charm.Addr
	switch {
	case cfg.ReplicatePoints:
		for node := 0; node < topo.NumNodes(); node++ {
			ptsAddrs = append(ptsAddrs, rt.AllocOn(int64(n)*rowBytes, charm.NodeID(node)))
		}
		aCost = rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)
	case cfg.CentralAlloc:
		ptsAddrs = []charm.Addr{rt.AllocOn(int64(n)*rowBytes, 0)}
		aCost = rt.AllocOn(int64(n)*8, 0)
	default:
		ptsAddrs = []charm.Addr{rt.AllocPolicy(int64(n)*rowBytes, charm.FirstTouch, 0)}
		aCost = rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)
	}

	ptsAddrFor := func(ctx *charm.Ctx) charm.Addr {
		if !cfg.ReplicatePoints {
			return ptsAddrs[0]
		}
		return ptsAddrs[topo.NodeOfCore(ctx.CoreID())]
	}
	rowAddr := func(ctx *charm.Ctx, i int) charm.Addr {
		return ptsAddrFor(ctx) + charm.Addr(int64(i)*rowBytes)
	}

	// First-touch initialization by the workers.
	rt.ParallelFor(0, n, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(rowAddr(ctx, i0), int64(i1-i0)*rowBytes)
		ctx.Write(aCost+charm.Addr(i0*8), int64(i1-i0)*8)
	})

	dist := func(a, b []float32) float64 {
		var s float64
		for j := range a {
			df := float64(a[j] - b[j])
			s += df * df
		}
		return s
	}
	row := func(i int) []float32 { return pts[i*d : (i+1)*d] }

	res := Result{}
	start := rt.Now()
	centers := []int32{}

	for b0 := 0; b0 < n; b0 += cfg.Batch {
		b1 := b0 + cfg.Batch
		if b1 > n {
			b1 = n
		}
		res.Batches++
		// Seed the batch with its first point as a center.
		first := int32(b0)
		centers = append(centers, first)
		rt.ParallelFor(b0, b1, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
			ctx.Read(rowAddr(ctx, int(first)), rowBytes)
			ctx.Read(rowAddr(ctx, i0), int64(i1-i0)*rowBytes)
			for i := i0; i < i1; i++ {
				assignCost[i] = dist(row(i), row(int(first)))
				centerOf[i] = first
				ctx.Compute(int64(d)/4 + 1)
				ctx.Yield()
			}
			ctx.Write(aCost+charm.Addr(i0*8), int64(i1-i0)*8)
		})

		// Local search: evaluate candidate centers (pgain).
		openCost := float64(d) * 0.5 * float64(b1-b0) / 64
		for r := 0; r < cfg.CandidateRounds; r++ {
			cand := int32(b0 + int(rng.SplitMix64(&state)%uint64(b1-b0)))
			gains := make([]float64, rt.Workers())
			rt.ParallelFor(b0, b1, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
				// Shared read of the candidate row by every task.
				ctx.Read(rowAddr(ctx, int(cand)), rowBytes)
				ctx.Read(rowAddr(ctx, i0), int64(i1-i0)*rowBytes)
				ctx.Read(aCost+charm.Addr(i0*8), int64(i1-i0)*8)
				var g float64
				for i := i0; i < i1; i++ {
					if dc := dist(row(i), row(int(cand))); dc < assignCost[i] {
						g += assignCost[i] - dc
					}
					ctx.Compute(int64(d)/4 + 1)
					ctx.Yield()
				}
				gains[ctx.Worker()] += g
			})
			var gain float64
			for _, g := range gains {
				gain += g
			}
			if gain <= openCost {
				continue
			}
			// Open the candidate: parallel reassignment.
			centers = append(centers, cand)
			rt.ParallelFor(b0, b1, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
				ctx.Read(rowAddr(ctx, int(cand)), rowBytes)
				ctx.Read(rowAddr(ctx, i0), int64(i1-i0)*rowBytes)
				for i := i0; i < i1; i++ {
					if dc := dist(row(i), row(int(cand))); dc < assignCost[i] {
						assignCost[i] = dc
						centerOf[i] = cand
					}
					ctx.Compute(int64(d)/4 + 1)
					ctx.Yield()
				}
				ctx.Write(aCost+charm.Addr(i0*8), int64(i1-i0)*8)
			})
		}
	}
	res.Makespan = rt.Now() - start
	res.Centers = len(centers)
	var cost atomic.Uint64 // accumulate via integer micro-units
	rt.ParallelFor(0, n, 1<<14, func(ctx *charm.Ctx, i0, i1 int) {
		var s float64
		for i := i0; i < i1; i++ {
			s += assignCost[i]
		}
		cost.Add(uint64(s * 1e6))
	})
	res.FinalCost = float64(cost.Load()) / 1e6
	return res
}
