package sgd

import (
	"testing"

	"charm"
)

func testRT(t *testing.T, workers int, sys charm.System) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		System:         sys,
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func smallCfg() Config {
	return Config{Samples: 256, Features: 64, Epochs: 3, Grain: 16, Seed: 7}
}

func TestTrainingReducesLoss(t *testing.T) {
	for _, s := range []Strategy{PerCore, PerNode, PerMachine} {
		rt := testRT(t, 4, charm.SystemCHARM)
		res := Run(rt, smallCfg(), s)
		if res.FinalLoss >= res.InitialLoss {
			t.Errorf("%s: loss did not decrease: %.4f -> %.4f", s, res.InitialLoss, res.FinalLoss)
		}
	}
}

func TestThroughputMetrics(t *testing.T) {
	rt := testRT(t, 4, charm.SystemCHARM)
	res := Run(rt, smallCfg(), PerNode)
	if res.LossGBps() <= 0 || res.GradGBps() <= 0 {
		t.Errorf("non-positive throughput: loss=%.3f grad=%.3f", res.LossGBps(), res.GradGBps())
	}
	if res.BytesPerEpoch != 256*64*8 {
		t.Errorf("BytesPerEpoch = %d", res.BytesPerEpoch)
	}
}

func TestPerCorePrivateReplicasAvoidSharing(t *testing.T) {
	// Per-core replicas see no cross-chiplet write sharing on the model;
	// per-machine must see plenty. Pin the placement (16 workers over 4
	// chiplets, no adaptation) so the only difference is model traffic.
	runFills := func(s Strategy) int64 {
		rt, err := charm.Init(charm.Config{
			Workers:  16,
			Topology: charm.SmallTopology(),
			NoAdapt:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Finalize()
		// Large enough that each phase spans many throttle windows, so
		// workers genuinely interleave their replica updates.
		Run(rt, Config{Samples: 2048, Features: 64, Epochs: 2, Grain: 16, Seed: 7}, s)
		return rt.Counter(charm.FillL3RemoteNear) + rt.Counter(charm.FillL3RemoteFar) +
			rt.Counter(charm.FillL3RemoteSocket)
	}
	perCore := runFills(PerCore)
	perMachine := runFills(PerMachine)
	if perMachine <= perCore {
		t.Errorf("per-machine coherence fills (%d) must exceed per-core (%d)", perMachine, perCore)
	}
}

func TestDeterministicDataset(t *testing.T) {
	a := genDataset(smallCfg())
	b := genDataset(smallCfg())
	for i := range a.x {
		if a.x[i] != b.x[i] {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		PerCore: "DW-per-core", PerNode: "DW-NUMA-node",
		PerMachine: "DW-per-machine", Strategy(9): "DW-unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	rt := testRT(t, 1, charm.SystemCHARM)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty config")
		}
	}()
	New(rt, Config{}, PerCore)
}

func TestRunsOnOSAsync(t *testing.T) {
	rt := testRT(t, 4, charm.SystemOSAsync)
	res := Run(rt, Config{Samples: 64, Features: 32, Epochs: 1, Grain: 8, Seed: 3}, PerNode)
	if res.GradGBps() <= 0 {
		t.Error("os-async run produced no throughput")
	}
}

func TestOSAsyncSlowerThanCharm(t *testing.T) {
	cfg := Config{Samples: 256, Features: 64, Epochs: 2, Grain: 8, Seed: 5}
	rtC := testRT(t, 4, charm.SystemCHARM)
	resC := Run(rtC, cfg, PerNode)
	rtA := testRT(t, 4, charm.SystemOSAsync)
	resA := Run(rtA, cfg, PerNode)
	if resA.GradGBps() >= resC.GradGBps() {
		t.Errorf("os-async throughput %.3f must trail CHARM %.3f",
			resA.GradGBps(), resC.GradGBps())
	}
}
