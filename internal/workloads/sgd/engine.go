package sgd

import (
	"math"

	"charm"
)

// Engine is a bound SGD problem: dataset mirrored into simulated memory
// plus the replica set selected by the strategy.
type Engine struct {
	rt  *charm.Runtime
	cfg Config
	ds  *dataset

	ax charm.Addr // simulated dataset mirror
	ay charm.Addr

	strategy Strategy
	replicas []*model // indexed per worker (PerCore), node (PerNode), or [0]
}

// New builds the engine: the dataset is allocated first-touch and
// initialized by the workers; replicas are placed according to the
// strategy (worker-local, node-local, or node 0).
func New(rt *charm.Runtime, cfg Config, s Strategy) *Engine {
	if cfg.Samples <= 0 || cfg.Features <= 0 {
		panic("sgd: Samples and Features must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Grain <= 0 {
		cfg.Grain = 64
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	e := &Engine{rt: rt, cfg: cfg, ds: genDataset(cfg), strategy: s}
	rowBytes := int64(cfg.Features) * 8
	e.ax = rt.AllocPolicy(int64(cfg.Samples)*rowBytes, charm.FirstTouch, 0)
	e.ay = rt.AllocPolicy(int64(cfg.Samples)*8, charm.FirstTouch, 0)
	rt.ParallelFor(0, cfg.Samples, cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(e.ax+charm.Addr(int64(i0)*rowBytes), int64(i1-i0)*rowBytes)
		ctx.Write(e.ay+charm.Addr(i0*8), int64(i1-i0)*8)
	})

	topo := rt.Topology()
	switch s {
	case PerCore:
		e.replicas = make([]*model, rt.Workers())
		for w := range e.replicas {
			node := topo.NodeOfCore(rt.CoreOfWorker(w))
			e.replicas[w] = newModel(rt, cfg.Features, node)
		}
	case PerNode:
		e.replicas = make([]*model, topo.NumNodes())
		for n := range e.replicas {
			e.replicas[n] = newModel(rt, cfg.Features, charm.NodeID(n))
		}
	case PerMachine:
		e.replicas = []*model{newModel(rt, cfg.Features, 0)}
	default:
		panic("sgd: unknown strategy")
	}
	return e
}

// replicaFor picks the replica the executing worker updates.
func (e *Engine) replicaFor(ctx *charm.Ctx) *model {
	switch e.strategy {
	case PerCore:
		return e.replicas[ctx.Worker()]
	case PerNode:
		return e.replicas[e.rt.Topology().NodeOfCore(ctx.CoreID())]
	default:
		return e.replicas[0]
	}
}

// rowAddr returns the simulated address of sample i's feature row.
func (e *Engine) rowAddr(i int) charm.Addr {
	return e.ax + charm.Addr(int64(i)*int64(e.cfg.Features)*8)
}

// Loss evaluates the mean logistic loss over the dataset in parallel,
// charging the dataset stream and the (read-only) model traffic.
func (e *Engine) Loss() (float64, int64) {
	d := e.cfg.Features
	rowBytes := int64(d) * 8
	partial := make([]float64, e.rt.Workers())
	start := e.rt.Now()
	e.rt.ParallelFor(0, e.cfg.Samples, e.cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		m := e.replicaFor(ctx)
		ctx.Read(e.rowAddr(i0), int64(i1-i0)*rowBytes)
		ctx.Read(e.ay+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Read(m.addr, int64(d)*8)
		var sum float64
		for i := i0; i < i1; i++ {
			row := e.ds.x[i*d : (i+1)*d]
			p := sigmoid(m.dot(row))
			yi := e.ds.y[i]
			sum += logLoss(p, yi)
		}
		ctx.Compute(int64(i1-i0) * int64(d) * 2)
		partial[ctx.Worker()] += sum
		ctx.Yield()
	})
	elapsed := e.rt.Now() - start
	var total float64
	for _, p := range partial {
		total += p
	}
	return total / float64(e.cfg.Samples), elapsed
}

// logLoss is the numerically clamped logistic loss.
func logLoss(p, y float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	if y > 0.5 {
		return -ln(p)
	}
	return -ln(1 - p)
}

// GradientEpoch runs one Hogwild epoch of SGD updates and returns its
// virtual duration. Each sample reads its row and the replica, then writes
// the replica — on shared replicas the write traffic is what produces the
// cross-chiplet invalidation storm DimmWitted's per-machine strategy
// suffers from.
func (e *Engine) GradientEpoch() int64 {
	d := e.cfg.Features
	rowBytes := int64(d) * 8
	lr := e.cfg.LearningRate
	start := e.rt.Now()
	e.rt.ParallelFor(0, e.cfg.Samples, e.cfg.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		m := e.replicaFor(ctx)
		ctx.Read(e.rowAddr(i0), int64(i1-i0)*rowBytes)
		ctx.Read(e.ay+charm.Addr(i0*8), int64(i1-i0)*8)
		for i := i0; i < i1; i++ {
			row := e.ds.x[i*d : (i+1)*d]
			ctx.Read(m.addr, int64(d)*8)
			g := sigmoid(m.dot(row)) - e.ds.y[i]
			for j, xj := range row {
				m.add(j, -lr*g*xj)
			}
			ctx.Write(m.addr, int64(d)*8)
			ctx.Compute(int64(d) * 4)
			// Per-sample scheduling point: lets concurrent workers
			// interleave their replica updates in virtual time.
			ctx.Yield()
		}
	})
	return e.rt.Now() - start
}

// averageReplicas merges per-core replicas (model averaging) and charges
// the all-reduce traffic.
func (e *Engine) averageReplicas() {
	if e.strategy != PerCore || len(e.replicas) == 1 {
		return
	}
	d := e.cfg.Features
	k := float64(len(e.replicas))
	e.rt.Run(func(ctx *charm.Ctx) {
		avg := make([]float64, d)
		for _, m := range e.replicas {
			ctx.Read(m.addr, int64(d)*8)
			for j := 0; j < d; j++ {
				avg[j] += m.get(j)
			}
		}
		for _, m := range e.replicas {
			for j := 0; j < d; j++ {
				m.w[j].Store(bits(avg[j] / k))
			}
			ctx.Write(m.addr, int64(d)*8)
		}
		ctx.Compute(int64(d) * int64(len(e.replicas)))
	})
}

// Run trains for the configured epochs, measuring loss and gradient phases
// separately as the paper's Fig. 11 does.
func Run(rt *charm.Runtime, cfg Config, s Strategy) Result {
	e := New(rt, cfg, s)
	res := Result{
		Epochs:        cfg.Epochs,
		BytesPerEpoch: int64(cfg.Samples) * int64(cfg.Features) * 8,
	}
	var lossNS, gradNS int64
	l0, t := e.Loss()
	res.InitialLoss = l0
	lossNS += t
	for ep := 0; ep < cfg.Epochs; ep++ {
		gradNS += e.GradientEpoch()
		e.averageReplicas()
		if ep < cfg.Epochs-1 {
			_, t := e.Loss()
			lossNS += t
		}
	}
	res.FinalLoss, t = e.Loss()
	lossNS += t
	// Normalize: the loss phase ran Epochs+1 times; scale to Epochs for a
	// per-epoch comparable figure.
	res.LossNS = lossNS * int64(cfg.Epochs) / int64(cfg.Epochs+1)
	res.GradNS = gradNS
	return res
}

func ln(x float64) float64 { return math.Log(x) }

func bits(f float64) uint64 { return math.Float64bits(f) }
