// Package sgd implements the statistical-analytics workload of §5.5: a
// DimmWitted-style engine running stochastic gradient descent for logistic
// regression. The engine supports DimmWitted's native model-replication
// strategies (per-core, per-NUMA-node, per-machine) and integrates with any
// runtime system, reproducing the Fig. 11/12 comparison:
//
//	DW-per-core      — one model replica per worker, no sharing;
//	DW-NUMA-node     — one replica per NUMA node, intra-node sharing;
//	DW-per-machine   — a single shared model, global write sharing;
//
// Model updates are Hogwild-style: host-side correctness uses atomic
// float adds, while the simulated cost comes from the Write traffic on the
// shared replica (coherence ping-pong across chiplets).
package sgd

import (
	"math"
	"sync/atomic"

	"charm"
	"charm/internal/rng"
)

// Strategy selects DimmWitted's model-replication scheme.
type Strategy uint8

const (
	// PerCore gives each worker a private replica, averaged per epoch.
	PerCore Strategy = iota
	// PerNode shares one replica per NUMA node.
	PerNode
	// PerMachine shares a single global replica.
	PerMachine
)

// String returns the strategy name as used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case PerCore:
		return "DW-per-core"
	case PerNode:
		return "DW-NUMA-node"
	case PerMachine:
		return "DW-per-machine"
	default:
		return "DW-unknown"
	}
}

// Config parameterizes a run.
type Config struct {
	Samples  int
	Features int
	Epochs   int
	// Grain is samples per task (0 selects 64; the paper's DimmWitted
	// partitions work into hundreds of fine-grained chunks).
	Grain int
	// LearningRate for the gradient updates (0 selects 0.05).
	LearningRate float64
	Seed         uint64
}

// Result reports one run.
type Result struct {
	// LossNS and GradNS are the virtual times of the loss-evaluation and
	// gradient phases summed over epochs.
	LossNS, GradNS int64
	// BytesPerEpoch is the dataset volume one epoch streams.
	BytesPerEpoch int64
	Epochs        int
	// FinalLoss is the mean logistic loss after training.
	FinalLoss float64
	// InitialLoss is the loss before training.
	InitialLoss float64
}

// LossGBps returns the loss-phase throughput in GB of application data per
// virtual second — the Fig. 11a metric.
func (r Result) LossGBps() float64 {
	if r.LossNS <= 0 {
		return 0
	}
	return float64(r.BytesPerEpoch*int64(r.Epochs)) / float64(r.LossNS)
}

// GradGBps returns the gradient-phase throughput (Fig. 11b).
func (r Result) GradGBps() float64 {
	if r.GradNS <= 0 {
		return 0
	}
	return float64(r.BytesPerEpoch*int64(r.Epochs)) / float64(r.GradNS)
}

// dataset is a synthetic logistic-regression problem with a known
// generating model, so training measurably reduces loss.
type dataset struct {
	x    []float64 // samples x features, row-major
	y    []float64 // labels in {0,1}
	n, d int
}

func genDataset(cfg Config) *dataset {
	ds := &dataset{n: cfg.Samples, d: cfg.Features}
	ds.x = make([]float64, ds.n*ds.d)
	ds.y = make([]float64, ds.n)
	state := cfg.Seed*0x9E3779B97F4A7C15 + 0xABCDEF
	truth := make([]float64, ds.d)
	for j := range truth {
		truth[j] = rng.Signed(&state) * 2
	}
	for i := 0; i < ds.n; i++ {
		var dot float64
		row := ds.x[i*ds.d : (i+1)*ds.d]
		for j := range row {
			row[j] = rng.Signed(&state)
			dot += row[j] * truth[j]
		}
		if sigmoid(dot) > rng.Float64(&state) {
			ds.y[i] = 1
		}
	}
	return ds
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// model is one replica with an atomic float representation for Hogwild
// updates plus its simulated address.
type model struct {
	w    []atomic.Uint64 // float64 bit patterns
	addr charm.Addr
}

func newModel(rt *charm.Runtime, d int, node charm.NodeID) *model {
	m := &model{w: make([]atomic.Uint64, d)}
	m.addr = rt.AllocOn(int64(d)*8, node)
	return m
}

func (m *model) get(j int) float64 { return math.Float64frombits(m.w[j].Load()) }

func (m *model) add(j int, delta float64) {
	for {
		old := m.w[j].Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if m.w[j].CompareAndSwap(old, nv) {
			return
		}
	}
}

func (m *model) dot(row []float64) float64 {
	var s float64
	for j, v := range row {
		s += v * m.get(j)
	}
	return s
}
