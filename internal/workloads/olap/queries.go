package olap

import (
	"fmt"

	"charm"
)

// QueryResult reports one query execution.
type QueryResult struct {
	ID       int
	Makespan int64   // virtual ns
	Value    float64 // deterministic checksum of the query's aggregate
}

// RunQuery executes TPC-H query analog id (1..22) and returns its result.
// The plans mirror the operator mixes of the corresponding TPC-H queries:
// Q1/Q6 scan-dominated, Q3/Q5/Q7/Q9/Q10/Q21 join chains over large tables,
// Q18 a large hash group-by, the rest mixtures (see queries_test.go for the
// shape assertions).
func (e *Engine) RunQuery(id int) QueryResult {
	start := e.RT.Now()
	var v float64
	switch id {
	case 1:
		v = e.q1()
	case 2:
		v = e.q2()
	case 3:
		v = e.q3()
	case 4:
		v = e.q4()
	case 5:
		v = e.q5()
	case 6:
		v = e.q6()
	case 7:
		v = e.q7()
	case 8:
		v = e.q8()
	case 9:
		v = e.q9()
	case 10:
		v = e.q10()
	case 11:
		v = e.q11()
	case 12:
		v = e.q12()
	case 13:
		v = e.q13()
	case 14:
		v = e.q14()
	case 15:
		v = e.q15()
	case 16:
		v = e.q16()
	case 17:
		v = e.q17()
	case 18:
		v = e.q18()
	case 19:
		v = e.q19()
	case 20:
		v = e.q20()
	case 21:
		v = e.q21()
	case 22:
		v = e.q22()
	default:
		panic(fmt.Sprintf("olap: no query %d", id))
	}
	return QueryResult{ID: id, Makespan: e.RT.Now() - start, Value: v}
}

// q1: pricing summary — full lineitem scan, 6-way group aggregate.
func (e *Engine) q1() float64 {
	t := e.T
	groups := make([][6]float64, e.RT.Workers())
	cols := []column{t.Col("l_retflag"), t.Col("l_linestat"), t.Col("l_shipdate"),
		t.Col("l_extprice"), t.Col("l_discount"), t.Col("l_quantity")}
	e.RT.ParallelFor(0, t.LRows, e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for _, c := range cols {
			c.read(ctx, i0, i1)
		}
		g := &groups[ctx.Worker()]
		for i := i0; i < i1; i++ {
			if t.LShipdate[i] <= 2400 {
				k := int(t.LRetFlag[i])*2 + int(t.LLineStat[i])
				g[k] += t.LExtPrice[i] * (1 - t.LDiscount[i])
			}
		}
		ctx.Compute(int64(i1-i0) * 6)
		ctx.Yield()
	})
	var sum float64
	for _, g := range groups {
		for k, s := range g {
			sum += s * float64(k+1)
		}
	}
	return sum
}

// q2: minimum-cost supplier — small part filter joined to supplier.
func (e *Engine) q2() float64 {
	t := e.T
	ids := e.Select(t.PRows, []string{"p_size", "p_brand"}, func(i int) bool {
		return t.PSize[i] == 15 && t.PBrand[i] < 5
	})
	return e.Agg(len(ids), []string{"s_nation"}, func(ctx *charm.Ctx, i int) float64 {
		p := ids[i]
		s := int(p) % t.SRows
		return float64(t.SNation[s]) + float64(p)*1e-6
	})
}

// q3: shipping priority — customer ⨝ orders ⨝ lineitem with date filters.
func (e *Engine) q3() float64 {
	t := e.T
	cust := e.Select(t.CRows, []string{"c_segment"}, func(i int) bool { return t.CSegment[i] == 1 })
	ch := e.Build(cust, func(i int32) int64 { return int64(i) })
	defer ch.Free()
	ords := e.Select(t.ORows, []string{"o_custkey", "o_orderdate"}, func(i int) bool {
		return t.OOrderdate[i] < 1200
	})
	// Probe customers while building the order table.
	oh := e.newHashTable(len(ords)+1, false)
	e.RT.ParallelFor(0, len(ords), e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			o := ords[i]
			if _, ok := ch.probe(ctx, int64(t.OCustkey[o])); ok {
				oh.insert(ctx, int64(o), o)
			}
			ctx.Yield()
		}
	})
	defer oh.Free()
	// Group revenue by order and return the top 10 (Q3's ORDER BY
	// revenue DESC LIMIT 10).
	rev := e.GroupSum(t.LRows, []string{"l_orderkey", "l_shipdate", "l_extprice", "l_discount"},
		func(i int) bool {
			if t.LShipdate[i] <= 1200 {
				return false
			}
			_, ok := hostProbe(oh, t.LOrderkey[i])
			return ok
		},
		func(i int) int64 { return t.LOrderkey[i] },
		func(i int) float64 { return t.LExtPrice[i] * (1 - t.LDiscount[i]) },
		len(ords)+1)
	defer rev.Free()
	var v float64
	for rank, kv := range rev.TopK(10) {
		v += kv.Sum * float64(rank+1)
	}
	return v
}

// q4: order priority checking — semi-join of lineitem against an order
// date window.
func (e *Engine) q4() float64 {
	t := e.T
	ords := e.Select(t.ORows, []string{"o_orderdate"}, func(i int) bool {
		return t.OOrderdate[i] >= 1200 && t.OOrderdate[i] < 1290
	})
	oh := e.Build(ords, func(i int32) int64 { return int64(i) })
	defer oh.Free()
	return e.Agg(t.LRows, []string{"l_orderkey", "l_discount"}, func(ctx *charm.Ctx, i int) float64 {
		if t.LDiscount[i] <= 0.05 {
			return 0
		}
		if _, ok := oh.probe(ctx, t.LOrderkey[i]); ok {
			return 1
		}
		return 0
	})
}

// q5: local supplier volume — customer ⨝ orders ⨝ lineitem ⨝ supplier with
// a nation filter.
func (e *Engine) q5() float64 {
	t := e.T
	cust := e.Select(t.CRows, []string{"c_nation"}, func(i int) bool { return t.CNation[i] < 5 })
	ch := e.Build(cust, func(i int32) int64 { return int64(i) })
	defer ch.Free()
	ords := e.Select(t.ORows, []string{"o_custkey", "o_orderdate"}, func(i int) bool {
		return t.OOrderdate[i] >= 365 && t.OOrderdate[i] < 730
	})
	oh := e.newHashTable(len(ords)+1, false)
	e.RT.ParallelFor(0, len(ords), e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			o := ords[i]
			if _, ok := ch.probe(ctx, int64(t.OCustkey[o])); ok {
				oh.insert(ctx, int64(o), o)
			}
			ctx.Yield()
		}
	})
	defer oh.Free()
	return e.Agg(t.LRows, []string{"l_orderkey", "l_suppkey", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			touch(ctx, t.Col("s_nation"), int64(t.LSuppkey[i]))
			if t.SNation[t.LSuppkey[i]] >= 5 {
				return 0
			}
			if _, ok := oh.probe(ctx, t.LOrderkey[i]); ok {
				return t.LExtPrice[i] * (1 - t.LDiscount[i])
			}
			return 0
		})
}

// q6: revenue forecast — pure lineitem scan with selective filters.
func (e *Engine) q6() float64 {
	t := e.T
	return e.Agg(t.LRows, []string{"l_shipdate", "l_discount", "l_quantity", "l_extprice"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.LShipdate[i] >= 365 && t.LShipdate[i] < 730 &&
				t.LDiscount[i] >= 0.05 && t.LDiscount[i] <= 0.07 && t.LQuantity[i] < 24 {
				return t.LExtPrice[i] * t.LDiscount[i]
			}
			return 0
		})
}

// q7: volume shipping — lineitem ⨝ orders ⨝ customer with a nation pair.
func (e *Engine) q7() float64 {
	t := e.T
	oh := e.Build(e.Select(t.ORows, []string{"o_orderdate", "o_custkey"}, func(i int) bool {
		return t.OOrderdate[i] >= 730 && t.OOrderdate[i] < 1460
	}), func(i int32) int64 { return int64(i) })
	defer oh.Free()
	return e.Agg(t.LRows, []string{"l_orderkey", "l_suppkey", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			touch(ctx, t.Col("s_nation"), int64(t.LSuppkey[i]))
			sn := t.SNation[t.LSuppkey[i]]
			if sn != 1 && sn != 2 {
				return 0
			}
			o, ok := oh.probe(ctx, t.LOrderkey[i])
			if !ok {
				return 0
			}
			touch(ctx, t.Col("c_nation"), int64(t.OCustkey[o]))
			cn := t.CNation[t.OCustkey[o]]
			if (sn == 1 && cn == 2) || (sn == 2 && cn == 1) {
				return t.LExtPrice[i] * (1 - t.LDiscount[i])
			}
			return 0
		})
}

// q8: national market share — part-filtered lineitem joined to orders.
func (e *Engine) q8() float64 {
	t := e.T
	ph := e.Build(e.Select(t.PRows, []string{"p_brand"}, func(i int) bool {
		return t.PBrand[i] == 7
	}), func(i int32) int64 { return int64(i) })
	defer ph.Free()
	return e.Agg(t.LRows, []string{"l_partkey", "l_orderkey", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			if _, ok := ph.probe(ctx, int64(t.LPartkey[i])); !ok {
				return 0
			}
			touch(ctx, t.Col("o_orderdate"), t.LOrderkey[i])
			year := t.OOrderdate[t.LOrderkey[i]] / 365
			return t.LExtPrice[i] * (1 - t.LDiscount[i]) * float64(year+1)
		})
}

// q9: product type profit — part-filtered lineitem grouped by order year.
func (e *Engine) q9() float64 {
	t := e.T
	ph := e.Build(e.Select(t.PRows, []string{"p_brand"}, func(i int) bool {
		return t.PBrand[i]%5 == 0
	}), func(i int32) int64 { return int64(i) })
	defer ph.Free()
	years := make([][8]float64, e.RT.Workers())
	cols := []column{e.T.Col("l_partkey"), e.T.Col("l_orderkey"), e.T.Col("l_extprice"),
		e.T.Col("l_quantity")}
	e.RT.ParallelFor(0, t.LRows, e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for _, c := range cols {
			c.read(ctx, i0, i1)
		}
		y := &years[ctx.Worker()]
		for i := i0; i < i1; i++ {
			if _, ok := ph.probe(ctx, int64(t.LPartkey[i])); ok {
				touch(ctx, e.T.Col("o_orderdate"), t.LOrderkey[i])
				yr := t.OOrderdate[t.LOrderkey[i]] / 365
				y[yr] += t.LExtPrice[i] - t.LQuantity[i]*10
			}
			ctx.Yield()
		}
	})
	var sum float64
	for _, y := range years {
		for k, s := range y {
			sum += s * float64(k+1)
		}
	}
	return sum
}

// q10: returned items — orders window joined to flagged lineitem, grouped
// by customer.
func (e *Engine) q10() float64 {
	t := e.T
	oh := e.Build(e.Select(t.ORows, []string{"o_orderdate", "o_custkey"}, func(i int) bool {
		return t.OOrderdate[i] >= 900 && t.OOrderdate[i] < 990
	}), func(i int32) int64 { return int64(i) })
	defer oh.Free()
	g := e.GroupSum(t.LRows, []string{"l_orderkey", "l_retflag", "l_extprice", "l_discount"},
		func(i int) bool { return t.LRetFlag[i] == 2 },
		func(i int) int64 {
			if o, ok := hostProbe(oh, t.LOrderkey[i]); ok {
				return int64(t.OCustkey[o])
			}
			return -1
		},
		func(i int) float64 { return t.LExtPrice[i] * (1 - t.LDiscount[i]) },
		t.CRows)
	defer g.Free()
	// Q10 returns the top 20 customers by returned revenue.
	var v float64
	for rank, kv := range g.TopK(20) {
		v += kv.Sum * float64(rank+1)
	}
	return v
}

// q11: important stock — tiny supplier-side aggregate.
func (e *Engine) q11() float64 {
	t := e.T
	return e.Agg(t.SRows, []string{"s_nation"}, func(ctx *charm.Ctx, i int) float64 {
		if t.SNation[i] == 3 {
			return float64(i)
		}
		return 0
	})
}

// q12: shipping modes — lineitem mode filter semi-joined to orders,
// weighted by priority.
func (e *Engine) q12() float64 {
	t := e.T
	return e.Agg(t.LRows, []string{"l_shipmode", "l_shipdate", "l_orderkey"},
		func(ctx *charm.Ctx, i int) float64 {
			if m := t.LShipMode[i]; m != 3 && m != 4 {
				return 0
			}
			if t.LShipdate[i] < 1095 || t.LShipdate[i] >= 1460 {
				return 0
			}
			touch(ctx, e.T.Col("o_priority"), t.LOrderkey[i])
			if t.OPriority[t.LOrderkey[i]] < 2 {
				return 2
			}
			return 1
		})
}

// q13: customer order counts — large group-by over orders.
func (e *Engine) q13() float64 {
	t := e.T
	g := e.GroupSum(t.ORows, []string{"o_custkey"},
		func(i int) bool { return true },
		func(i int) int64 { return int64(t.OCustkey[i]) },
		func(i int) float64 { return 1 },
		t.CRows)
	defer g.Free()
	v, n := g.SumWhere(func(s float64) bool { return s >= 2 })
	return v + float64(n)
}

// q14: promotion effect — date-filtered lineitem joined to part.
func (e *Engine) q14() float64 {
	t := e.T
	var promo, total float64
	promo = e.Agg(t.LRows, []string{"l_shipdate", "l_partkey", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.LShipdate[i] < 1000 || t.LShipdate[i] >= 1030 {
				return 0
			}
			touch(ctx, t.Col("p_brand"), int64(t.LPartkey[i]))
			rev := t.LExtPrice[i] * (1 - t.LDiscount[i])
			if t.PBrand[t.LPartkey[i]] < 3 {
				return rev
			}
			return 0
		})
	total = e.Agg(t.LRows, []string{"l_shipdate", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.LShipdate[i] < 1000 || t.LShipdate[i] >= 1030 {
				return 0
			}
			return t.LExtPrice[i] * (1 - t.LDiscount[i])
		})
	if total == 0 {
		return 0
	}
	return 100 * promo / total
}

// q15: top supplier — lineitem revenue grouped by supplier.
func (e *Engine) q15() float64 {
	t := e.T
	g := e.GroupSum(t.LRows, []string{"l_shipdate", "l_suppkey", "l_extprice", "l_discount"},
		func(i int) bool { return t.LShipdate[i] >= 500 && t.LShipdate[i] < 590 },
		func(i int) int64 { return int64(t.LSuppkey[i]) },
		func(i int) float64 { return t.LExtPrice[i] * (1 - t.LDiscount[i]) },
		t.SRows)
	defer g.Free()
	top := g.TopK(1)
	if len(top) == 0 {
		return 0
	}
	return top[0].Sum
}

// q16: part/supplier relationship — filtered part counts by brand/size.
func (e *Engine) q16() float64 {
	t := e.T
	return e.Agg(t.PRows, []string{"p_brand", "p_size", "p_container"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.PBrand[i] == 9 || t.PContainer[i] == 11 {
				return 0
			}
			if s := t.PSize[i]; s == 1 || s == 7 || s == 13 || s == 19 || s == 25 || s == 31 || s == 37 || s == 49 {
				return float64(t.PBrand[i]) + 1
			}
			return 0
		})
}

// q17: small-quantity revenue — narrow part filter joined to lineitem.
func (e *Engine) q17() float64 {
	t := e.T
	ph := e.Build(e.Select(t.PRows, []string{"p_brand", "p_container"}, func(i int) bool {
		return t.PBrand[i] == 11 && t.PContainer[i] == 3
	}), func(i int32) int64 { return int64(i) })
	defer ph.Free()
	v := e.Agg(t.LRows, []string{"l_partkey", "l_quantity", "l_extprice"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.LQuantity[i] >= 5 {
				return 0
			}
			if _, ok := ph.probe(ctx, int64(t.LPartkey[i])); ok {
				return t.LExtPrice[i]
			}
			return 0
		})
	return v / 7
}

// q18: large volume customers — the big hash group-by over order keys the
// paper highlights as CHARM's hardest case (uneven distribution).
func (e *Engine) q18() float64 {
	t := e.T
	g := e.GroupSum(t.LRows, []string{"l_orderkey", "l_quantity"},
		func(i int) bool { return true },
		func(i int) int64 { return t.LOrderkey[i] },
		func(i int) float64 { return t.LQuantity[i] },
		t.ORows)
	defer g.Free()
	v, n := g.SumWhere(func(s float64) bool { return s > 180 })
	return v + float64(n)
}

// q19: discounted revenue — disjunctive part/lineitem predicates.
func (e *Engine) q19() float64 {
	t := e.T
	ph := e.Build(e.Select(t.PRows, []string{"p_brand", "p_container", "p_size"}, func(i int) bool {
		return (t.PBrand[i] == 3 && t.PContainer[i] < 10) ||
			(t.PBrand[i] == 14 && t.PContainer[i] >= 10 && t.PContainer[i] < 20) ||
			(t.PBrand[i] == 21 && t.PSize[i] < 15)
	}), func(i int32) int64 { return int64(i) })
	defer ph.Free()
	return e.Agg(t.LRows, []string{"l_partkey", "l_quantity", "l_shipmode", "l_extprice", "l_discount"},
		func(ctx *charm.Ctx, i int) float64 {
			if t.LShipMode[i] > 2 || t.LQuantity[i] > 30 {
				return 0
			}
			if _, ok := ph.probe(ctx, int64(t.LPartkey[i])); ok {
				return t.LExtPrice[i] * (1 - t.LDiscount[i])
			}
			return 0
		})
}

// q20: potential promotion — part filter with per-part quantity sums.
func (e *Engine) q20() float64 {
	t := e.T
	ph := e.Build(e.Select(t.PRows, []string{"p_brand"}, func(i int) bool {
		return t.PBrand[i] == 5
	}), func(i int32) int64 { return int64(i) })
	defer ph.Free()
	g := e.GroupSum(t.LRows, []string{"l_partkey", "l_quantity"},
		func(i int) bool { _, ok := hostProbe(ph, int64(t.LPartkey[i])); return ok },
		func(i int) int64 { return int64(t.LPartkey[i]) },
		func(i int) float64 { return t.LQuantity[i] },
		t.PRows/25+8)
	defer g.Free()
	_, n := g.SumWhere(func(s float64) bool { return s > 50 })
	return float64(n)
}

// q21: suppliers who kept orders waiting — supplier-filtered lineitem
// joined to orders (the paper's multi-join showcase).
func (e *Engine) q21() float64 {
	t := e.T
	oh := e.Build(e.Select(t.ORows, []string{"o_priority"}, func(i int) bool {
		return t.OPriority[i] <= 2
	}), func(i int32) int64 { return int64(i) })
	defer oh.Free()
	return e.Agg(t.LRows, []string{"l_suppkey", "l_orderkey", "l_quantity"},
		func(ctx *charm.Ctx, i int) float64 {
			touch(ctx, t.Col("s_nation"), int64(t.LSuppkey[i]))
			if t.SNation[t.LSuppkey[i]] != 3 {
				return 0
			}
			if _, ok := oh.probe(ctx, t.LOrderkey[i]); ok && t.LQuantity[i] > 25 {
				return 1
			}
			return 0
		})
}

// q22: global sales opportunity — customer balance filter anti-joined to
// orders.
func (e *Engine) q22() float64 {
	t := e.T
	avg := e.Agg(t.CRows, []string{"c_acctbal"}, func(ctx *charm.Ctx, i int) float64 {
		if t.CAcctbal[i] > 0 {
			return t.CAcctbal[i]
		}
		return 0
	}) / float64(t.CRows)
	// Build the set of customers with orders.
	oc := e.GroupSum(t.ORows, []string{"o_custkey"},
		func(i int) bool { return true },
		func(i int) int64 { return int64(t.OCustkey[i]) },
		func(i int) float64 { return 1 },
		t.CRows)
	defer oc.Free()
	return e.Agg(t.CRows, []string{"c_acctbal", "c_nation"}, func(ctx *charm.Ctx, i int) float64 {
		if t.CAcctbal[i] <= avg || t.CNation[i] >= 7 {
			return 0
		}
		if _, ok := oc.probe(ctx, int64(i)); ok {
			return 0 // anti-join: skip customers with orders
		}
		return t.CAcctbal[i]
	})
}

// touch charges a single-row random access into a dimension column.
func touch(ctx *charm.Ctx, c column, idx int64) {
	ctx.Read(c.addr+charm.Addr(idx*c.width), c.width)
}

// hostProbe probes a hash table without charging simulated traffic, for
// predicates evaluated inside operators that charge their own accesses.
func hostProbe(ht *HashTable, key int64) (int32, bool) {
	j := hash64(key) & ht.mask
	for {
		k := ht.keys[j].Load()
		if k == 0 {
			return 0, false
		}
		if k == key+1 {
			var v int32
			if ht.vals != nil {
				v = ht.vals[j]
			}
			return v, true
		}
		j = (j + 1) & ht.mask
	}
}
