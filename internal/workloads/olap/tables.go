// Package olap implements the analytical-database workload of §5.6: a
// miniature columnar engine (parallel scans, hash joins, aggregations) over
// TPC-H-shaped tables, with 22 query plans that mirror the operator mixes
// of TPC-H Q1-Q22. The paper integrates CHARM into DuckDB by overriding its
// scheduler and thread mapping; here the same query plans run on any
// runtime system, so DuckDB-default (static chiplet-oblivious scatter) and
// DuckDB+CHARM (adaptive) are directly comparable.
package olap

import (
	"charm"
	"charm/internal/rng"
)

// Column element widths in bytes.
const (
	w64 = 8
	w32 = 4
	w8  = 1
)

// column is a host array mirrored in simulated memory.
type column struct {
	addr  charm.Addr
	width int64
}

// read charges the contiguous read of rows [i0,i1).
func (c column) read(ctx *charm.Ctx, i0, i1 int) {
	ctx.Read(c.addr+charm.Addr(int64(i0)*c.width), int64(i1-i0)*c.width)
}

// Tables holds the TPC-H-shaped dataset, host-side values plus simulated
// mirrors. Row counts follow TPC-H's table ratios relative to lineitem.
type Tables struct {
	// lineitem
	LRows     int
	LOrderkey []int64
	LPartkey  []int32
	LSuppkey  []int32
	LQuantity []float64
	LExtPrice []float64
	LDiscount []float64
	LShipdate []int32 // days since epoch, 0..2557 (7 years)
	LRetFlag  []uint8 // 0..2
	LLineStat []uint8 // 0..1
	LShipMode []uint8 // 0..6

	// orders
	ORows      int
	OCustkey   []int32
	OOrderdate []int32
	OTotal     []float64
	OPriority  []uint8 // 0..4

	// customer
	CRows    int
	CNation  []uint8 // 0..24
	CSegment []uint8 // 0..4
	CAcctbal []float64

	// part
	PRows      int
	PBrand     []uint8 // 0..24
	PSize      []int32 // 1..50
	PContainer []uint8 // 0..39

	// supplier
	SRows   int
	SNation []uint8

	cols map[string]column
}

// Config parameterizes generation.
type Config struct {
	// LineitemRows scales the dataset; other tables follow TPC-H ratios
	// (orders 1/4, customer 1/40, part 1/30, supplier 1/600).
	LineitemRows int
	Seed         uint64
}

// Generate builds the dataset and mirrors every column into the runtime's
// simulated memory (first-touch distributed by the workers).
func Generate(rt *charm.Runtime, cfg Config) *Tables {
	if cfg.LineitemRows <= 0 {
		panic("olap: LineitemRows must be positive")
	}
	l := cfg.LineitemRows
	t := &Tables{
		LRows: l,
		ORows: maxInt(l/4, 1),
		CRows: maxInt(l/40, 1),
		PRows: maxInt(l/30, 1),
		SRows: maxInt(l/600, 1),
		cols:  map[string]column{},
	}
	s := cfg.Seed*0x9E3779B97F4A7C15 + 123

	t.LOrderkey = make([]int64, l)
	t.LPartkey = make([]int32, l)
	t.LSuppkey = make([]int32, l)
	t.LQuantity = make([]float64, l)
	t.LExtPrice = make([]float64, l)
	t.LDiscount = make([]float64, l)
	t.LShipdate = make([]int32, l)
	t.LRetFlag = make([]uint8, l)
	t.LLineStat = make([]uint8, l)
	t.LShipMode = make([]uint8, l)
	for i := 0; i < l; i++ {
		t.LOrderkey[i] = int64(rng.SplitMix64(&s) % uint64(t.ORows))
		t.LPartkey[i] = int32(rng.SplitMix64(&s) % uint64(t.PRows))
		t.LSuppkey[i] = int32(rng.SplitMix64(&s) % uint64(t.SRows))
		t.LQuantity[i] = 1 + rng.Float64(&s)*49
		t.LExtPrice[i] = 100 + rng.Float64(&s)*99900
		t.LDiscount[i] = rng.Float64(&s) * 0.1
		t.LShipdate[i] = int32(rng.SplitMix64(&s) % 2557)
		t.LRetFlag[i] = uint8(rng.SplitMix64(&s) % 3)
		t.LLineStat[i] = uint8(rng.SplitMix64(&s) % 2)
		t.LShipMode[i] = uint8(rng.SplitMix64(&s) % 7)
	}
	t.OCustkey = make([]int32, t.ORows)
	t.OOrderdate = make([]int32, t.ORows)
	t.OTotal = make([]float64, t.ORows)
	t.OPriority = make([]uint8, t.ORows)
	for i := 0; i < t.ORows; i++ {
		t.OCustkey[i] = int32(rng.SplitMix64(&s) % uint64(t.CRows))
		t.OOrderdate[i] = int32(rng.SplitMix64(&s) % 2557)
		t.OTotal[i] = 1000 + rng.Float64(&s)*500000
		t.OPriority[i] = uint8(rng.SplitMix64(&s) % 5)
	}
	t.CNation = make([]uint8, t.CRows)
	t.CSegment = make([]uint8, t.CRows)
	t.CAcctbal = make([]float64, t.CRows)
	for i := 0; i < t.CRows; i++ {
		t.CNation[i] = uint8(rng.SplitMix64(&s) % 25)
		t.CSegment[i] = uint8(rng.SplitMix64(&s) % 5)
		t.CAcctbal[i] = rng.Float64(&s)*11000 - 1000
	}
	t.PBrand = make([]uint8, t.PRows)
	t.PSize = make([]int32, t.PRows)
	t.PContainer = make([]uint8, t.PRows)
	for i := 0; i < t.PRows; i++ {
		t.PBrand[i] = uint8(rng.SplitMix64(&s) % 25)
		t.PSize[i] = int32(rng.SplitMix64(&s)%50) + 1
		t.PContainer[i] = uint8(rng.SplitMix64(&s) % 40)
	}
	t.SNation = make([]uint8, t.SRows)
	for i := 0; i < t.SRows; i++ {
		t.SNation[i] = uint8(rng.SplitMix64(&s) % 25)
	}

	alloc := func(name string, rows int, width int64) {
		t.cols[name] = column{
			addr:  rt.AllocPolicy(int64(rows)*width, charm.FirstTouch, 0),
			width: width,
		}
	}
	alloc("l_orderkey", l, w64)
	alloc("l_partkey", l, w32)
	alloc("l_suppkey", l, w32)
	alloc("l_quantity", l, w64)
	alloc("l_extprice", l, w64)
	alloc("l_discount", l, w64)
	alloc("l_shipdate", l, w32)
	alloc("l_retflag", l, w8)
	alloc("l_linestat", l, w8)
	alloc("l_shipmode", l, w8)
	alloc("o_custkey", t.ORows, w32)
	alloc("o_orderdate", t.ORows, w32)
	alloc("o_total", t.ORows, w64)
	alloc("o_priority", t.ORows, w8)
	alloc("c_nation", t.CRows, w8)
	alloc("c_segment", t.CRows, w8)
	alloc("c_acctbal", t.CRows, w64)
	alloc("p_brand", t.PRows, w8)
	alloc("p_size", t.PRows, w32)
	alloc("p_container", t.PRows, w8)
	alloc("s_nation", t.SRows, w8)

	// First touch by the workers so pages land with each system's
	// placement.
	for _, rows := range []struct {
		n     int
		names []string
	}{
		{l, []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extprice", "l_discount", "l_shipdate", "l_retflag", "l_linestat", "l_shipmode"}},
		{t.ORows, []string{"o_custkey", "o_orderdate", "o_total", "o_priority"}},
		{t.CRows, []string{"c_nation", "c_segment", "c_acctbal"}},
		{t.PRows, []string{"p_brand", "p_size", "p_container"}},
		{t.SRows, []string{"s_nation"}},
	} {
		names := rows.names
		n := rows.n
		rt.ParallelFor(0, n, 1<<13, func(ctx *charm.Ctx, i0, i1 int) {
			for _, name := range names {
				c := t.cols[name]
				ctx.Write(c.addr+charm.Addr(int64(i0)*c.width), int64(i1-i0)*c.width)
			}
		})
	}
	return t
}

// Col returns a named column mirror; it panics on unknown names
// (a query programming error).
func (t *Tables) Col(name string) column {
	c, ok := t.cols[name]
	if !ok {
		panic("olap: unknown column " + name)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
