package olap

import (
	"math"
	"sync/atomic"

	"charm"
)

// Engine executes query plans over the tables on a runtime.
type Engine struct {
	RT    *charm.Runtime
	T     *Tables
	Grain int
}

// NewEngine binds tables to a runtime; grain is rows per scan task
// (0 selects 4096 — DuckDB-style vector-at-a-time morsels).
func NewEngine(rt *charm.Runtime, t *Tables, grain int) *Engine {
	if grain <= 0 {
		grain = 4096
	}
	return &Engine{RT: rt, T: t, Grain: grain}
}

// Select runs a parallel filtered scan over rows [0,rows), charging the
// reads of the named columns, and returns the selected row ids.
func (e *Engine) Select(rows int, cols []string, pred func(i int) bool) []int32 {
	parts := make([][]int32, e.RT.Workers())
	colv := make([]column, len(cols))
	for i, n := range cols {
		colv[i] = e.T.Col(n)
	}
	e.RT.ParallelFor(0, rows, e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for _, c := range colv {
			c.read(ctx, i0, i1)
		}
		buf := parts[ctx.Worker()]
		for i := i0; i < i1; i++ {
			if pred(i) {
				buf = append(buf, int32(i))
			}
		}
		parts[ctx.Worker()] = buf
		ctx.Compute(int64(i1-i0) * 2)
		ctx.Yield()
	})
	var out []int32
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Agg runs a parallel aggregation over rows [0,rows): fn returns each row's
// contribution (use 0 to skip). Column reads are charged per chunk.
func (e *Engine) Agg(rows int, cols []string, fn func(ctx *charm.Ctx, i int) float64) float64 {
	parts := make([]float64, e.RT.Workers())
	colv := make([]column, len(cols))
	for i, n := range cols {
		colv[i] = e.T.Col(n)
	}
	e.RT.ParallelFor(0, rows, e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for _, c := range colv {
			c.read(ctx, i0, i1)
		}
		var s float64
		for i := i0; i < i1; i++ {
			s += fn(ctx, i)
		}
		parts[ctx.Worker()] += s
		ctx.Compute(int64(i1-i0) * 4)
		ctx.Yield()
	})
	var total float64
	for _, p := range parts {
		total += p
	}
	return total
}

// slotBytes is the simulated footprint of one hash slot (key + payload).
const slotBytes = 16

// HashTable is an open-addressing int64 -> payload table with a simulated
// mirror: build and probe traffic lands in the cache model, so a table
// exceeding one chiplet's L3 rewards spreading (the Fig. 13 join effect).
type HashTable struct {
	keys []atomic.Int64 // stored key+1; 0 = empty
	vals []int32
	sums []atomic.Uint64 // float64 bits, used by group-sum tables
	mask uint64
	addr charm.Addr
	rt   *charm.Runtime
}

func (e *Engine) newHashTable(capacity int, withSums bool) *HashTable {
	n := 8
	for n < capacity*2 {
		n <<= 1
	}
	ht := &HashTable{
		keys: make([]atomic.Int64, n),
		mask: uint64(n - 1),
		addr: e.RT.AllocPolicy(int64(n)*slotBytes, charm.FirstTouch, 0),
		rt:   e.RT,
	}
	if withSums {
		ht.sums = make([]atomic.Uint64, n)
	} else {
		ht.vals = make([]int32, n)
	}
	return ht
}

// SimBytes returns the simulated size of the table region.
func (ht *HashTable) SimBytes() int64 { return int64(len(ht.keys)) * slotBytes }

// Free releases the simulated mirror.
func (ht *HashTable) Free() { ht.rt.Free(ht.addr) }

func hash64(k int64) uint64 {
	z := uint64(k) * 0xBF58476D1CE4E5B9
	z ^= z >> 31
	return z * 0x94D049BB133111EB
}

func (ht *HashTable) slotAddr(j uint64) charm.Addr {
	return ht.addr + charm.Addr(j*slotBytes)
}

// insert claims a slot for key and returns its index. Duplicate keys keep
// the first value (TPC-H join keys are unique on the build side).
func (ht *HashTable) insert(ctx *charm.Ctx, key int64, val int32) {
	j := hash64(key) & ht.mask
	for {
		ctx.RMW(ht.slotAddr(j), slotBytes)
		if ht.keys[j].CompareAndSwap(0, key+1) {
			if ht.vals != nil {
				ht.vals[j] = val
			}
			return
		}
		if ht.keys[j].Load() == key+1 {
			return
		}
		j = (j + 1) & ht.mask
	}
}

// probe looks key up, charging one read per probe step.
func (ht *HashTable) probe(ctx *charm.Ctx, key int64) (int32, bool) {
	j := hash64(key) & ht.mask
	for {
		ctx.Read(ht.slotAddr(j), slotBytes)
		k := ht.keys[j].Load()
		if k == 0 {
			return 0, false
		}
		if k == key+1 {
			var v int32
			if ht.vals != nil {
				v = ht.vals[j]
			}
			return v, true
		}
		j = (j + 1) & ht.mask
	}
}

// addSum accumulates v into key's float sum, inserting the key on demand.
func (ht *HashTable) addSum(ctx *charm.Ctx, key int64, v float64) {
	j := hash64(key) & ht.mask
	for {
		ctx.RMW(ht.slotAddr(j), slotBytes)
		k := ht.keys[j].Load()
		if k == key+1 || (k == 0 && ht.keys[j].CompareAndSwap(0, key+1)) {
			for {
				old := ht.sums[j].Load()
				nv := math.Float64bits(math.Float64frombits(old) + v)
				if ht.sums[j].CompareAndSwap(old, nv) {
					return
				}
			}
		}
		j = (j + 1) & ht.mask
	}
}

// Build constructs a hash table from the given build-side row ids in
// parallel. key maps a row id to its join key.
func (e *Engine) Build(ids []int32, key func(i int32) int64) *HashTable {
	ht := e.newHashTable(len(ids)+1, false)
	e.RT.ParallelFor(0, len(ids), e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			ht.insert(ctx, key(ids[i]), ids[i])
			ctx.Yield()
		}
	})
	return ht
}

// GroupSum aggregates val(i) by key(i) over selected rows into a hash
// group-by table and returns it (the Q18-style large group-by).
func (e *Engine) GroupSum(rows int, cols []string, pred func(i int) bool,
	key func(i int) int64, val func(i int) float64, capacity int) *HashTable {
	ht := e.newHashTable(capacity, true)
	colv := make([]column, len(cols))
	for i, n := range cols {
		colv[i] = e.T.Col(n)
	}
	e.RT.ParallelFor(0, rows, e.Grain, func(ctx *charm.Ctx, i0, i1 int) {
		for _, c := range colv {
			c.read(ctx, i0, i1)
		}
		for i := i0; i < i1; i++ {
			if pred(i) {
				ht.addSum(ctx, key(i), val(i))
			}
			ctx.Yield()
		}
	})
	return ht
}

// SumWhere folds the group-by table: total of sums where cond holds.
func (ht *HashTable) SumWhere(cond func(sum float64) bool) (float64, int) {
	var total float64
	n := 0
	for j := range ht.keys {
		if ht.keys[j].Load() != 0 {
			s := math.Float64frombits(ht.sums[j].Load())
			if cond(s) {
				total += s
				n++
			}
		}
	}
	return total, n
}

// KV is one (key, sum) group of a group-by table.
type KV struct {
	Key int64
	Sum float64
}

// TopK returns the k groups with the largest sums in descending order
// (ties broken by key for determinism) — the ORDER BY ... LIMIT k
// post-processing of TPC-H's Q3/Q10-style queries.
func (ht *HashTable) TopK(k int) []KV {
	if k <= 0 {
		return nil
	}
	// Min-heap of size k over (sum, key).
	heap := make([]KV, 0, k+1)
	less := func(a, b KV) bool {
		if a.Sum != b.Sum {
			return a.Sum < b.Sum
		}
		return a.Key > b.Key
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for j := range ht.keys {
		key := ht.keys[j].Load()
		if key == 0 {
			continue
		}
		kv := KV{Key: key - 1, Sum: math.Float64frombits(ht.sums[j].Load())}
		if len(heap) < k {
			heap = append(heap, kv)
			siftUp(len(heap) - 1)
		} else if less(heap[0], kv) {
			heap[0] = kv
			siftDown(0)
		}
	}
	// Extract in descending order.
	out := make([]KV, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}
