package olap

import (
	"testing"

	"charm"
)

func testRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func smallEngine(t *testing.T, workers int) *Engine {
	rt := testRT(t, workers)
	tb := Generate(rt, Config{LineitemRows: 8000, Seed: 11})
	return NewEngine(rt, tb, 512)
}

func TestGenerateShapes(t *testing.T) {
	rt := testRT(t, 2)
	tb := Generate(rt, Config{LineitemRows: 4000, Seed: 1})
	if tb.ORows != 1000 || tb.CRows != 100 || tb.PRows != 133 || tb.SRows != 6 {
		t.Errorf("table ratios wrong: O=%d C=%d P=%d S=%d", tb.ORows, tb.CRows, tb.PRows, tb.SRows)
	}
	for i, k := range tb.LOrderkey {
		if k < 0 || int(k) >= tb.ORows {
			t.Fatalf("row %d: orderkey %d out of range", i, k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown column must panic")
		}
	}()
	tb.Col("nope")
}

func TestGenerateValidation(t *testing.T) {
	rt := testRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(rt, Config{})
}

func TestAllQueriesRunAndAreDeterministic(t *testing.T) {
	e1 := smallEngine(t, 4)
	e2 := smallEngine(t, 2) // different parallelism, same data
	for q := 1; q <= 22; q++ {
		r1 := e1.RunQuery(q)
		r2 := e2.RunQuery(q)
		if r1.Makespan <= 0 {
			t.Errorf("Q%d: non-positive makespan", q)
		}
		if !closeEnough(r1.Value, r2.Value) {
			t.Errorf("Q%d: value differs across parallelism: %.6f vs %.6f", q, r1.Value, r2.Value)
		}
	}
}

// closeEnough tolerates float summation-order differences.
func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return d/m < 1e-6
}

func TestUnknownQueryPanics(t *testing.T) {
	e := smallEngine(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.RunQuery(23)
}

func TestSelectivity(t *testing.T) {
	e := smallEngine(t, 2)
	tb := e.T
	all := e.Select(tb.LRows, []string{"l_shipdate"}, func(i int) bool { return true })
	if len(all) != tb.LRows {
		t.Fatalf("full select = %d rows", len(all))
	}
	none := e.Select(tb.LRows, []string{"l_shipdate"}, func(i int) bool { return false })
	if len(none) != 0 {
		t.Fatalf("empty select = %d rows", len(none))
	}
	half := e.Select(tb.LRows, []string{"l_shipdate"}, func(i int) bool { return tb.LShipdate[i] < 1278 })
	frac := float64(len(half)) / float64(tb.LRows)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("uniform date filter selected %.2f, want ~0.5", frac)
	}
}

func TestHashTableBuildProbe(t *testing.T) {
	e := smallEngine(t, 2)
	ids := []int32{5, 17, 99}
	ht := e.Build(ids, func(i int32) int64 { return int64(i) * 10 })
	defer ht.Free()
	e.RT.Run(func(ctx *charm.Ctx) {
		for _, id := range ids {
			v, ok := ht.probe(ctx, int64(id)*10)
			if !ok || v != id {
				t.Errorf("probe(%d) = (%d,%v)", id*10, v, ok)
			}
		}
		if _, ok := ht.probe(ctx, 123456); ok {
			t.Error("phantom key found")
		}
	})
	if ht.SimBytes() <= 0 {
		t.Error("non-positive sim size")
	}
}

func TestGroupSumCounts(t *testing.T) {
	e := smallEngine(t, 4)
	tb := e.T
	g := e.GroupSum(tb.ORows, []string{"o_custkey"},
		func(i int) bool { return true },
		func(i int) int64 { return int64(tb.OCustkey[i]) },
		func(i int) float64 { return 1 },
		tb.CRows)
	defer g.Free()
	total, _ := g.SumWhere(func(s float64) bool { return s > 0 })
	if int(total) != tb.ORows {
		t.Errorf("group counts sum to %d, want %d", int(total), tb.ORows)
	}
}

func TestJoinQueryTouchesHashRegion(t *testing.T) {
	rt := testRT(t, 4)
	tb := Generate(rt, Config{LineitemRows: 8000, Seed: 11})
	e := NewEngine(rt, tb, 512)
	before := rt.Counter(charm.BytesRead)
	e.RunQuery(3)
	if rt.Counter(charm.BytesRead) <= before {
		t.Error("Q3 charged no simulated reads")
	}
}

func TestTopK(t *testing.T) {
	e := smallEngine(t, 2)
	tb := e.T
	g := e.GroupSum(tb.ORows, []string{"o_custkey"},
		func(i int) bool { return true },
		func(i int) int64 { return int64(tb.OCustkey[i]) },
		func(i int) float64 { return tb.OTotal[i] },
		tb.CRows)
	defer g.Free()
	top := g.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK(5) returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Sum > top[i-1].Sum {
			t.Fatalf("TopK not descending at %d: %v", i, top)
		}
	}
	// Cross-check the max against a host-side fold.
	sums := map[int64]float64{}
	for i := 0; i < tb.ORows; i++ {
		sums[int64(tb.OCustkey[i])] += tb.OTotal[i]
	}
	var best float64
	for _, s := range sums {
		if s > best {
			best = s
		}
	}
	if top[0].Sum != best {
		t.Errorf("TopK max %.2f != fold max %.2f", top[0].Sum, best)
	}
	// Edge cases.
	if g.TopK(0) != nil {
		t.Error("TopK(0) must be nil")
	}
	if got := len(g.TopK(1 << 20)); got != len(sums) {
		t.Errorf("TopK(huge) returned %d groups, want %d", got, len(sums))
	}
}
