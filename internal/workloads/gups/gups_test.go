package gups

import (
	"testing"

	"charm"
)

func testRT(t *testing.T, workers int) *charm.Runtime {
	t.Helper()
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		Topology:       charm.SmallTopology(),
		SchedulerTimer: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Finalize)
	return rt
}

func TestRunBasics(t *testing.T) {
	rt := testRT(t, 4)
	res := Run(rt, Config{LogTableSize: 12, Seed: 1})
	wantUpdates := int64(4 * (1 << 12))
	if res.Updates != wantUpdates {
		t.Errorf("updates = %d, want %d", res.Updates, wantUpdates)
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if res.GUPS() <= 0 {
		t.Error("non-positive GUPS")
	}
	// Random RMWs over a table far larger than the caches must reach DRAM.
	if rt.Counter(charm.FillDRAMLocal)+rt.Counter(charm.FillDRAMRemote) == 0 {
		t.Error("no DRAM fills recorded for an out-of-cache table")
	}
}

func TestRunValidation(t *testing.T) {
	rt := testRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero table size")
		}
	}()
	Run(rt, Config{})
}

func TestSmallTableStaysCached(t *testing.T) {
	rt := testRT(t, 2)
	// 2^6 words = 512 B: fits in L2/L3 after the first touch.
	res := Run(rt, Config{LogTableSize: 6, UpdatesPerWord: 64, Seed: 2})
	if res.Updates != 64*64 {
		t.Fatalf("updates = %d", res.Updates)
	}
	fills := rt.Counter(charm.FillDRAMLocal) + rt.Counter(charm.FillDRAMRemote)
	// Only cold misses: far fewer fills than updates.
	if fills > res.Updates/4 {
		t.Errorf("cached table produced %d DRAM fills for %d updates", fills, res.Updates)
	}
}

func TestGUPSZeroMakespan(t *testing.T) {
	if (Result{Updates: 10}).GUPS() != 0 {
		t.Error("zero makespan must yield zero GUPS")
	}
}

func TestDelegatedMatchesDirectSemantics(t *testing.T) {
	rt := testRT(t, 4)
	res := Run(rt, Config{LogTableSize: 10, UpdatesPerWord: 2, Seed: 4, Delegated: true})
	if res.Updates != 2*(1<<10) {
		t.Errorf("delegated updates = %d, want %d", res.Updates, 2*(1<<10))
	}
	if res.GUPS() <= 0 {
		t.Error("non-positive delegated GUPS")
	}
}

func TestDelegatedBatchSizes(t *testing.T) {
	for _, bs := range []int{1, 7, 256} {
		rt := testRT(t, 2)
		res := Run(rt, Config{LogTableSize: 8, UpdatesPerWord: 1, Seed: 4, Delegated: true, BatchSize: bs})
		if res.Updates != 1<<8 {
			t.Errorf("batch %d: updates = %d", bs, res.Updates)
		}
	}
}
