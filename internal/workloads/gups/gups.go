// Package gups implements the HPCC RandomAccess benchmark (§5.1): random
// read-modify-write updates to a large distributed table, measured in
// giga-updates per second (GUPS). It stresses non-contiguous memory access
// in a shared address space — the workload least friendly to caches and
// most sensitive to NUMA/chiplet placement.
package gups

import (
	"sync/atomic"

	"charm"
)

// Config parameterizes a run.
type Config struct {
	// LogTableSize is log2 of the table length in 8-byte words.
	LogTableSize int
	// UpdatesPerWord scales the update count: updates = 4*table length by
	// default, as in HPCC (0 selects 4).
	UpdatesPerWord int
	// Grain is updates per task (0 selects 4096).
	Grain int
	// Seed makes runs deterministic.
	Seed uint64
	// Delegated routes every update through the owner worker as a
	// batched RPC (the Grappa-style distributed-shared-memory execution
	// the original HPCC-on-Grappa RandomAccess uses) instead of issuing
	// remote read-modify-writes through the cache hierarchy.
	Delegated bool
	// BatchSize is the delegation batch length (0 selects 64).
	BatchSize int
}

// Result reports one run.
type Result struct {
	Updates  int64
	Makespan int64 // virtual ns
}

// GUPS returns giga-updates per virtual second.
func (r Result) GUPS() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Updates) / float64(r.Makespan)
}

// Run executes the benchmark on the runtime. The table is allocated
// first-touch and initialized by the workers, so placement follows the
// system under test.
func Run(rt *charm.Runtime, cfg Config) Result {
	if cfg.LogTableSize <= 0 {
		panic("gups: LogTableSize must be positive")
	}
	n := 1 << cfg.LogTableSize
	upw := cfg.UpdatesPerWord
	if upw <= 0 {
		upw = 4
	}
	grain := cfg.Grain
	if grain <= 0 {
		grain = 4096
	}
	table := make([]uint64, n)
	addr := rt.AllocPolicy(int64(n)*8, charm.FirstTouch, 0)

	// Initialization pass (the HPCC warm-up): table[i] = i.
	rt.ParallelFor(0, n, 1<<14, func(ctx *charm.Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			table[i] = uint64(i)
		}
		ctx.Write(addr+charm.Addr(i0*8), int64(i1-i0)*8)
	})

	updates := n * upw
	mask := uint64(n - 1)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	var done atomic.Int64
	start := rt.Now()
	rt.ParallelFor(0, updates, grain, func(ctx *charm.Ctx, i0, i1 int) {
		// Each task owns an independent LCG stream seeded by its range.
		s := cfg.Seed ^ (uint64(i0)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9)
		if cfg.Delegated {
			addrs := make([]charm.Addr, 0, batch)
			fns := make([]func(*charm.Ctx), 0, batch)
			flush := func() {
				if len(addrs) == 0 {
					return
				}
				ctx.DelegateBatch(addrs, fns)
				addrs, fns = addrs[:0], fns[:0]
			}
			for i := i0; i < i1; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				idx := (s >> 17) & mask
				val := s
				a := addr + charm.Addr(idx*8)
				addrs = append(addrs, a)
				fns = append(fns, func(c *charm.Ctx) {
					table[idx] ^= val // owner-local, unsynchronized by design
					c.RMW(a, 8)
				})
				if len(addrs) == batch {
					flush()
					ctx.Yield()
				}
			}
			flush()
		} else {
			for i := i0; i < i1; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				idx := (s >> 17) & mask
				// XOR update: read-modify-write of one word. The host
				// update races benignly between tasks exactly as HPCC
				// allows (up to 1% of updates may be lost).
				table[idx] ^= s
				ctx.RMW(addr+charm.Addr(idx*8), 8)
				if i&63 == 63 {
					ctx.Yield() // periodic scheduling/profiling point
				}
			}
		}
		done.Add(int64(i1 - i0))
		ctx.Yield()
	})
	return Result{Updates: done.Load(), Makespan: rt.Now() - start}
}
