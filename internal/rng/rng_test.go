package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if SplitMix64(&a) != SplitMix64(&b) {
			t.Fatal("same seed diverged")
		}
	}
	c := uint64(43)
	same := true
	a = 42
	for i := 0; i < 10; i++ {
		if SplitMix64(&a) != SplitMix64(&c) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		v := Float64(&s)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedRange(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		v := Signed(&s)
		return v >= -1 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		s := seed
		v := Intn(&s, int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformity(t *testing.T) {
	// Chi-square-lite: 16 buckets over 64k draws must each hold within
	// 20% of the expectation.
	s := uint64(7)
	var buckets [16]int
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		buckets[Intn(&s, 16)]++
	}
	want := draws / 16
	for i, c := range buckets {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d = %d, want ~%d", i, c, want)
		}
	}
}

func TestSeedStreamsDecorrelated(t *testing.T) {
	s0 := Seed(1, 0)
	s1 := Seed(1, 1)
	if s0 == s1 {
		t.Fatal("stream seeds collide")
	}
	matches := 0
	for i := 0; i < 64; i++ {
		if SplitMix64(&s0) == SplitMix64(&s1) {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("streams matched %d of 64 draws", matches)
	}
}
