// Package rng provides the deterministic pseudo-random generators the
// workloads share. Simulation code must not use math/rand or time-seeded
// randomness: every experiment is reproducible from its config seed.
package rng

// SplitMix64 advances the state and returns the next 64-bit value
// (Steele et al.'s SplitMix64, the Graph500 reference generator family).
func SplitMix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func Float64(s *uint64) float64 {
	return float64(SplitMix64(s)>>11) / (1 << 53)
}

// Signed returns a uniform float64 in [-1, 1).
func Signed(s *uint64) float64 { return Float64(s)*2 - 1 }

// Uint64n returns a uniform value in [0, n). n must be positive.
func Uint64n(s *uint64, n uint64) uint64 { return SplitMix64(s) % n }

// Intn returns a uniform int in [0, n). n must be positive.
func Intn(s *uint64, n int) int { return int(SplitMix64(s) % uint64(n)) }

// Seed derives a stream state from a base seed and a stream index, so
// parallel tasks get decorrelated deterministic streams.
func Seed(base uint64, stream uint64) uint64 {
	return base*0x9E3779B97F4A7C15 + stream*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
}
