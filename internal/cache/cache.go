// Package cache implements the set-associative cache structures of the
// simulated machine: core-private L2s and chiplet-local L3 slices.
//
// Tag arrays use atomics so concurrent simulated cores can probe and fill
// without locks; a lost LRU-update race merely perturbs replacement, which
// is statistically irrelevant. Set sampling (DESIGN.md §4.1) shrinks the
// simulated tag arrays: a cache configured with sample shift s holds
// capacity/2^s lines and is probed only for lines whose index is a multiple
// of 2^s, the classic set-sampling technique from architecture simulation.
package cache

import (
	"fmt"
	"sync/atomic"
)

// LineShift is log2 of the cache line size (64 B).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// way is one slot of a set: an atomically updated (tag, lastUse) pair.
// tag 0 means empty; stored tags are line+1.
type way struct {
	tag atomic.Uint64
	use atomic.Int64
}

// Cache is a set-associative cache over line numbers (addr >> LineShift).
// It is safe for concurrent use.
type Cache struct {
	sets    []way // numSets * ways, row-major
	numSets int
	ways    int
	// sampleShift: only lines with line % 2^sampleShift == 0 belong here.
	sampleShift uint

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// New builds a cache of capacityBytes with the given associativity,
// simulating only 1/2^sampleShift of its sets. Capacity is rounded down to
// a whole number of sets; at least one set is always simulated.
func New(capacityBytes int64, ways int, sampleShift uint) *Cache {
	if ways <= 0 {
		panic(fmt.Sprintf("cache: ways must be positive, got %d", ways))
	}
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", capacityBytes))
	}
	lines := capacityBytes >> LineShift
	sets := int(lines) / ways >> sampleShift
	if sets < 1 {
		sets = 1
	}
	return &Cache{
		sets:        make([]way, sets*ways),
		numSets:     sets,
		ways:        ways,
		sampleShift: sampleShift,
	}
}

// Sampled reports whether this cache simulates the given line.
func (c *Cache) Sampled(line uint64) bool {
	return line&((1<<c.sampleShift)-1) == 0
}

// setOf maps a sampled line to its set index. The sample bits are removed
// first so sampled lines spread over all simulated sets.
func (c *Cache) setOf(line uint64) int {
	return int((line >> c.sampleShift) % uint64(c.numSets))
}

// Lookup probes for line; on a hit it refreshes the LRU stamp with now and
// returns true. The caller must only pass sampled lines.
func (c *Cache) Lookup(line uint64, now int64) bool {
	tag := line + 1
	base := c.setOf(line) * c.ways
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+i]
		if w.tag.Load() == tag {
			w.use.Store(now)
			c.hits.Add(1)
			return true
		}
	}
	c.misses.Add(1)
	return false
}

// Touch is Lookup batched n times: on a hit it refreshes the LRU stamp with
// now (the stamp of the batch's final access) and adds n to the hit
// counter, leaving the array in exactly the state n consecutive Lookups at
// increasing times ending at now would have. It returns false — recording
// nothing — when the line is absent, so a caller batching repeat accesses
// can detect a concurrent invalidation and fall back to per-access replay.
func (c *Cache) Touch(line uint64, now int64, n int64) bool {
	tag := line + 1
	base := c.setOf(line) * c.ways
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+i]
		if w.tag.Load() == tag {
			w.use.Store(now)
			c.hits.Add(n)
			return true
		}
	}
	return false
}

// Contains probes for line without touching LRU state or hit statistics.
func (c *Cache) Contains(line uint64) bool {
	tag := line + 1
	base := c.setOf(line) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.sets[base+i].tag.Load() == tag {
			return true
		}
	}
	return false
}

// Insert places line into its set, evicting the LRU way if the set is full.
// It returns the evicted line and true when an eviction happened. Inserting
// a line that is already present refreshes it instead.
//
// Eviction reporting is exact: the victim tag is claimed with an atomic
// swap, so every line that leaves the array is returned to exactly one
// caller — the coherence directory in package sim mirrors cache contents
// from these notifications and must never double-count or miss a victim.
func (c *Cache) Insert(line uint64, now int64) (evicted uint64, ok bool) {
	tag := line + 1
	base := c.setOf(line) * c.ways
	victim := base
	victimUse := int64(1<<63 - 1)
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+i]
		t := w.tag.Load()
		if t == tag {
			w.use.Store(now)
			return 0, false
		}
		if t == 0 {
			// Empty way: claim it; on a lost race keep scanning.
			if w.tag.CompareAndSwap(0, tag) {
				w.use.Store(now)
				return 0, false
			}
			if w.tag.Load() == tag {
				w.use.Store(now)
				return 0, false
			}
		}
		if u := w.use.Load(); u < victimUse {
			victimUse = u
			victim = base + i
		}
	}
	w := &c.sets[victim]
	old := w.tag.Swap(tag)
	w.use.Store(now)
	if old == 0 || old == tag {
		return 0, false
	}
	c.evicts.Add(1)
	return old - 1, true
}

// Invalidate removes line if present and reports whether it was. The
// removal is a compare-and-swap so a racing Insert of a different line
// into the same way is never wiped by mistake.
func (c *Cache) Invalidate(line uint64) bool {
	tag := line + 1
	base := c.setOf(line) * c.ways
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+i]
		if w.tag.Load() == tag {
			if w.tag.CompareAndSwap(tag, 0) {
				return true
			}
		}
	}
	return false
}

// Clear empties the cache.
func (c *Cache) Clear() {
	for i := range c.sets {
		c.sets[i].tag.Store(0)
		c.sets[i].use.Store(0)
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evicts.Store(0)
}

// Stats returns the lookup hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the number of capacity evictions since Clear.
func (c *Cache) Evictions() int64 { return c.evicts.Load() }

// Sets returns the number of simulated sets. Ways returns associativity.
func (c *Cache) Sets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the number of lines the simulated structure holds.
func (c *Cache) Capacity() int { return c.numSets * c.ways }
