package cache

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	c := New(64<<10, 8, 0) // 64 KiB, 8-way => 1024 lines, 128 sets
	if c.Sets() != 128 {
		t.Errorf("Sets = %d, want 128", c.Sets())
	}
	if c.Ways() != 8 {
		t.Errorf("Ways = %d, want 8", c.Ways())
	}
	if c.Capacity() != 1024 {
		t.Errorf("Capacity = %d, want 1024", c.Capacity())
	}
}

func TestNewSampled(t *testing.T) {
	c := New(64<<10, 8, 4) // sampling 1/16 => 8 sets
	if c.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", c.Sets())
	}
	if !c.Sampled(0) || !c.Sampled(16) || c.Sampled(1) || c.Sampled(15) {
		t.Error("Sampled() classification wrong for shift 4")
	}
}

func TestNewMinimumOneSet(t *testing.T) {
	c := New(64, 8, 10) // tiny capacity, aggressive sampling
	if c.Sets() != 1 {
		t.Errorf("Sets = %d, want 1", c.Sets())
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero ways":     func() { New(1024, 0, 0) },
		"zero capacity": func() { New(0, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := New(4<<10, 4, 0)
	if c.Lookup(42, 1) {
		t.Error("empty cache must miss")
	}
	c.Insert(42, 2)
	if !c.Lookup(42, 3) {
		t.Error("inserted line must hit")
	}
	if !c.Contains(42) {
		t.Error("Contains must see inserted line")
	}
	if !c.Invalidate(42) {
		t.Error("Invalidate must find line")
	}
	if c.Contains(42) {
		t.Error("invalidated line must be gone")
	}
	if c.Invalidate(42) {
		t.Error("second Invalidate must report absence")
	}
}

func TestInsertIdempotent(t *testing.T) {
	c := New(1<<10, 4, 0)
	c.Insert(7, 1)
	if ev, ok := c.Insert(7, 2); ok {
		t.Errorf("re-insert evicted %d", ev)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way, 1 set (4 lines * 64B = 256B).
	c := New(256, 4, 0)
	// All lines land in set 0 regardless of number (numSets=1).
	c.Insert(1, 10)
	c.Insert(2, 20)
	c.Insert(3, 30)
	c.Insert(4, 40)
	// Touch 1 so 2 becomes LRU.
	if !c.Lookup(1, 50) {
		t.Fatal("line 1 must be present")
	}
	ev, ok := c.Insert(5, 60)
	if !ok || ev != 2 {
		t.Errorf("evicted (%d,%v), want (2,true)", ev, ok)
	}
	if c.Contains(2) {
		t.Error("evicted line still present")
	}
	for _, l := range []uint64{1, 3, 4, 5} {
		if !c.Contains(l) {
			t.Errorf("line %d must survive", l)
		}
	}
}

func TestZeroLineIsStorable(t *testing.T) {
	c := New(1<<10, 4, 0)
	c.Insert(0, 1)
	if !c.Contains(0) {
		t.Error("line 0 must be storable (tag bias)")
	}
	if !c.Invalidate(0) {
		t.Error("line 0 must be invalidatable")
	}
}

func TestStats(t *testing.T) {
	c := New(1<<10, 4, 0)
	c.Lookup(1, 1) // miss
	c.Insert(1, 2)
	c.Lookup(1, 3) // hit
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", h, m)
	}
	c.Clear()
	h, m = c.Stats()
	if h != 0 || m != 0 || c.Contains(1) {
		t.Error("Clear must reset contents and stats")
	}
}

func TestWorkingSetFitsNoEvictions(t *testing.T) {
	// Property: a working set no larger than capacity, touched twice
	// round-robin, hits on every second pass (no conflict misses when
	// lines map uniformly: use exactly capacity-many consecutive lines,
	// which spread perfectly across sets).
	c := New(64<<10, 8, 0)
	n := uint64(c.Capacity())
	for l := uint64(0); l < n; l++ {
		c.Insert(l, int64(l))
	}
	for l := uint64(0); l < n; l++ {
		if !c.Lookup(l, int64(n+l)) {
			t.Fatalf("line %d must hit on second pass", l)
		}
	}
}

func TestWorkingSetExceedsCapacityEvicts(t *testing.T) {
	c := New(4<<10, 4, 0) // 64 lines
	n := uint64(c.Capacity()) * 4
	for l := uint64(0); l < n; l++ {
		c.Insert(l, int64(l))
	}
	present := 0
	for l := uint64(0); l < n; l++ {
		if c.Contains(l) {
			present++
		}
	}
	if present != c.Capacity() {
		t.Errorf("present = %d, want exactly capacity %d", present, c.Capacity())
	}
}

func TestSampledSetMapping(t *testing.T) {
	// Property: sampled lines map within bounds and consistently.
	c := New(8<<10, 4, 3)
	f := func(l uint32) bool {
		line := uint64(l) << 3 // make it sampled
		if !c.Sampled(line) {
			return false
		}
		s := c.setOf(line)
		return s >= 0 && s < c.Sets() && s == c.setOf(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertLookupProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(1<<20, 8, 0) // big enough to never evict a uint16 space
		for i, l := range lines {
			c.Insert(uint64(l), int64(i))
		}
		for _, l := range lines {
			if !c.Contains(uint64(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64<<10, 8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				l := uint64(g*10000 + i)
				c.Insert(l, int64(i))
				c.Lookup(l, int64(i))
				if i%3 == 0 {
					c.Invalidate(l)
				}
			}
		}(g)
	}
	wg.Wait()
	// No assertion beyond absence of races/panics; contents are
	// nondeterministic under contention by design.
}
