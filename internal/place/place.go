// Package place is the runtime's placement decision plane. Every
// "which core / which worker" choice the system makes — initial worker
// placement, Alg. 2 location updates, fault re-homing, steal-victim
// ordering, and open-loop job dispatch — is phrased as a query against an
// immutable MachineView snapshot (View) built from explicit engine state
// at an explicit virtual time, instead of each call site walking the
// runtime's mutable occupancy/fault/breaker state itself.
//
// The pipeline is: view → constraints → scorer → enactment. A View fuses
// the precomputed distance ranks, per-core liveness from the fault plan,
// occupancy and the worker-on-core map, per-chiplet health (fault-plan
// milli-factors, PMU-observed slowdown, breaker refusal), and per-worker
// queue depth. Constraints (Live, Idle, BreakerClosed) filter candidate
// cores; Scorers (Nearest, LeastLoaded, RoundRobin) order them; Select
// and Rank resolve the query deterministically (ties break toward the
// lower core ID). Enactment — actually migrating a worker or enqueueing a
// task — stays with the caller, so every decision remains a pure function
// of virtual time and the snapshot, which is what keeps deterministic-
// lockstep runs bit-identical across replays.
package place

import "charm/internal/topology"

// Ranks precomputes, for every core, all other cores sorted by
// topological distance (latency class, stable within a class by core
// number) — the ordering chiplet-first stealing and fault re-homing walk.
// Ranks are immutable and shared by every View of one machine.
type Ranks struct {
	topo *topology.Topology
	from [][]topology.CoreID
	// pos[c][o] is o's position in from[c]; pos[c][c] = -1 so a core is
	// always nearest to itself.
	pos [][]int32
}

// NewRanks builds the distance ranking for topology t.
func NewRanks(t *topology.Topology) *Ranks {
	n := t.NumCores()
	r := &Ranks{
		topo: t,
		from: make([][]topology.CoreID, n),
		pos:  make([][]int32, n),
	}
	for c := 0; c < n; c++ {
		order := make([]topology.CoreID, 0, n-1)
		for class := topology.IntraChiplet; class <= topology.InterSocket; class++ {
			for o := 0; o < n; o++ {
				if o != c && t.ClassOf(topology.CoreID(c), topology.CoreID(o)) == class {
					order = append(order, topology.CoreID(o))
				}
			}
		}
		pos := make([]int32, n)
		pos[c] = -1
		for i, o := range order {
			pos[o] = int32(i)
		}
		r.from[c] = order
		r.pos[c] = pos
	}
	return r
}

// Topology returns the topology the ranks were built for.
func (r *Ranks) Topology() *topology.Topology { return r.topo }

// From returns all cores other than c in increasing distance from c.
// Callers must not mutate the returned slice.
func (r *Ranks) From(c topology.CoreID) []topology.CoreID { return r.from[c] }

// Distance returns to's rank in from's distance order (-1 when from == to,
// i.e. closer than every other core).
func (r *Ranks) Distance(from, to topology.CoreID) int { return int(r.pos[from][to]) }
