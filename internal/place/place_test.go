package place

import (
	"reflect"
	"testing"

	"charm/internal/topology"
)

// TestAlg2CoreBijectionPerSocket exhaustively checks Algorithm 2's
// collision-freedom on both machine presets: for every (workers, spread)
// combination the bounds check accepts, the workers of each socket map to
// distinct cores inside that socket — the property the paper's published
// wrap-around term violates and our lap-corrected term restores.
func TestAlg2CoreBijectionPerSocket(t *testing.T) {
	presets := map[string]*topology.Topology{
		"amd-milan":  topology.AMDMilan7713x2(),
		"intel-spr":  topology.IntelSPR8488Cx2(),
		"synthetic4": topology.Synthetic(4, 2),
	}
	for name, topo := range presets {
		t.Run(name, func(t *testing.T) {
			cps := topo.CoresPerSocket()
			chiplets := topo.ChipletsPerNode * topo.NodesPerSocket
			for workers := 1; workers <= topo.NumCores(); workers++ {
				for spread := 1; spread <= chiplets; spread++ {
					seen := map[topology.CoreID]int{}
					for w := 0; w < workers; w++ {
						c, ok := Alg2Core(w, workers, spread, topo)

						// The bounds check must match Alg. 2 line 2
						// exactly: spread addresses physical chiplets and
						// leaves a dedicated core per worker in the socket.
						socket := w / cps
						if socket >= topo.Sockets {
							socket = topo.Sockets - 1
						}
						inSocket := workers - socket*cps
						if inSocket > cps {
							inSocket = cps
						}
						wantOK := spread*topo.CoresPerChiplet >= inSocket
						if ok != wantOK {
							t.Fatalf("workers=%d spread=%d worker=%d: ok=%v, want %v",
								workers, spread, w, ok, wantOK)
						}
						if !ok {
							continue
						}
						if got := int(c) / cps; got != socket {
							t.Fatalf("workers=%d spread=%d worker=%d: core %d in socket %d, want %d",
								workers, spread, w, c, got, socket)
						}
						if prev, dup := seen[c]; dup {
							t.Fatalf("workers=%d spread=%d: workers %d and %d collide on core %d",
								workers, spread, prev, w, c)
						}
						seen[c] = w
					}
				}
			}
		})
	}
}

// TestRanksOrder checks the distance ranking: a core is nearest to itself
// (rank -1), and the closest other cores share its chiplet.
func TestRanksOrder(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	r := NewRanks(topo)
	if d := r.Distance(0, 0); d != -1 {
		t.Errorf("Distance(0,0) = %d, want -1", d)
	}
	from := r.From(0)
	if len(from) != topo.NumCores()-1 {
		t.Fatalf("From(0) has %d cores, want %d", len(from), topo.NumCores()-1)
	}
	for i := 0; i < topo.CoresPerChiplet-1; i++ {
		if topo.ChipletOf(from[i]) != topo.ChipletOf(0) {
			t.Errorf("rank %d core %d not on core 0's chiplet", i, from[i])
		}
	}
	// Ranks and Distance agree.
	for i, c := range from {
		if r.Distance(0, c) != i {
			t.Errorf("Distance(0,%d) = %d, want %d", c, r.Distance(0, c), i)
		}
	}
}

// synthSnapshot builds an 8-worker snapshot on Synthetic(4,2): worker i
// on core i, all cores occupied.
func synthSnapshot(topo *topology.Topology) Snapshot {
	n := topo.NumCores()
	s := Snapshot{
		Occ:        make([]int32, n),
		WorkerOn:   make([]int32, n),
		WorkerCore: make([]topology.CoreID, n),
		QueueDepth: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		s.Occ[i] = 1
		s.WorkerOn[i] = int32(i)
		s.WorkerCore[i] = topology.CoreID(i)
	}
	return s
}

// TestViewHealthFusion checks the per-chiplet health model: a fault-plan
// brownout, a PMU-observed slowdown, and an open breaker are three
// distinct signals — the milli factors fuse by worst-wins, breaker
// refusal is a separate hard flag, and dispatch preference orders
// healthy < slowed < refused.
func TestViewHealthFusion(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	r := NewRanks(topo)
	s := synthSnapshot(topo)
	s.PlanMilli = []int64{0, 3000, 0, 0}              // chiplet 1: declared brownout
	s.ObsMilli = []int64{0, 0, 2600, 0}               // chiplet 2: observed slowdown
	s.BreakerOpen = []bool{false, false, false, true} // chiplet 3: refused
	v := NewView(r, 42, s)

	if v.Now() != 42 {
		t.Errorf("Now = %d, want 42", v.Now())
	}
	wantHealth := []int64{1000, 3000, 2600, 1000}
	for ch, want := range wantHealth {
		if got := v.HealthMilli(topology.ChipletID(ch)); got != want {
			t.Errorf("HealthMilli(%d) = %d, want %d", ch, got, want)
		}
	}
	for ch := 0; ch < 4; ch++ {
		if got, want := v.IsRefused(topology.ChipletID(ch)), ch == 3; got != want {
			t.Errorf("IsRefused(%d) = %v, want %v", ch, got, want)
		}
	}
	// Preference: healthy chiplet 0 first, then observed-slow 2, then
	// browned-out 1; the refused chiplet orders last but is never dropped
	// (half-open probes must still reach it).
	want := []topology.ChipletID{0, 2, 1, 3}
	if got := v.ChipletsByPreference(0); !reflect.DeepEqual(got, want) {
		t.Errorf("ChipletsByPreference = %v, want %v", got, want)
	}
	// BreakerClosed filters chiplet 3's cores (6, 7); Live and Idle still
	// compose with it.
	if c, ok := v.Select(RoundRobin(6), BreakerClosed); !ok || c == 6 || c == 7 {
		t.Errorf("Select(BreakerClosed) = %d, %v — picked a refused core", c, ok)
	}
}

// TestFuseHealth pins the fusion rule: worst signal wins, floored at the
// nominal 1000, absent (zero) signals read as healthy.
func TestFuseHealth(t *testing.T) {
	cases := []struct{ plan, obs, want int64 }{
		{0, 0, 1000},
		{1000, 0, 1000},
		{3000, 0, 3000},
		{0, 2600, 2600},
		{3000, 2600, 3000},
		{1400, 2600, 2600},
		{500, 0, 1000}, // sub-nominal readings clamp up
	}
	for _, c := range cases {
		if got := FuseHealth(c.plan, c.obs); got != c.want {
			t.Errorf("FuseHealth(%d, %d) = %d, want %d", c.plan, c.obs, got, c.want)
		}
	}
}

// TestLeastLoadedPrefersIdleThenShallow checks the scorer's lexicographic
// order: occupancy dominates queue depth.
func TestLeastLoadedPrefersIdleThenShallow(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	r := NewRanks(topo)
	s := synthSnapshot(topo)
	s.Occ[3] = 0 // core 3 idle
	s.WorkerOn[3] = -1
	for i := range s.QueueDepth {
		s.QueueDepth[i] = int64(8 - i) // deepest at worker 0
	}
	v := NewView(r, 0, s)
	if c, ok := v.Select(LeastLoaded()); !ok || c != 3 {
		t.Errorf("Select(LeastLoaded) = %d, %v, want idle core 3", c, ok)
	}
	s2 := synthSnapshot(topo)
	for i := range s2.QueueDepth {
		s2.QueueDepth[i] = int64(8 - i)
	}
	v2 := NewView(r, 0, s2)
	if c, ok := v2.Select(LeastLoaded()); !ok || c != 7 {
		t.Errorf("Select(LeastLoaded) all-occupied = %d, %v, want shallowest core 7", c, ok)
	}
}

// TestSelectDeterminism is the replayability regression: two views built
// from identical snapshots at the same virtual time must answer every
// query identically — placement decisions are pure functions of
// (time, snapshot).
func TestSelectDeterminism(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	r := NewRanks(topo)
	build := func() *View {
		n := topo.NumCores()
		s := Snapshot{
			Live:       make([]bool, n),
			Occ:        make([]int32, n),
			WorkerOn:   make([]int32, n),
			WorkerCore: make([]topology.CoreID, 64),
			QueueDepth: make([]int64, 64),
			PlanMilli:  make([]int64, topo.NumChiplets()),
			ObsMilli:   make([]int64, topo.NumChiplets()),
		}
		for c := 0; c < n; c++ {
			s.Live[c] = c%7 != 0 // deterministic liveness pattern
			s.WorkerOn[c] = -1
		}
		for w := 0; w < 64; w++ {
			c := topology.CoreID((w * 5) % n)
			s.WorkerCore[w] = c
			s.Occ[c]++
			s.WorkerOn[c] = int32(w)
			s.QueueDepth[w] = int64((w * 13) % 17)
		}
		for ch := 0; ch < topo.NumChiplets(); ch++ {
			s.PlanMilli[ch] = int64(1000 + (ch%3)*700)
			s.ObsMilli[ch] = int64((ch % 5) * 400)
		}
		return NewView(r, 99, s)
	}
	a, b := build(), build()

	for _, from := range []topology.CoreID{0, 17, 63, 127} {
		ca, oka := a.Select(Nearest(from), Live, Idle)
		cb, okb := b.Select(Nearest(from), Live, Idle)
		if ca != cb || oka != okb {
			t.Errorf("Select(Nearest(%d)) differs: (%d,%v) vs (%d,%v)", from, ca, oka, cb, okb)
		}
		if !reflect.DeepEqual(a.VictimsByDistance(from, 0), b.VictimsByDistance(from, 0)) {
			t.Errorf("VictimsByDistance(%d) differs across identical views", from)
		}
	}
	if !reflect.DeepEqual(a.Rank(LeastLoaded(), Live), b.Rank(LeastLoaded(), Live)) {
		t.Error("Rank(LeastLoaded) differs across identical views")
	}
	for cursor := 0; cursor < 4; cursor++ {
		if !reflect.DeepEqual(a.ChipletsByPreference(cursor), b.ChipletsByPreference(cursor)) {
			t.Errorf("ChipletsByPreference(%d) differs across identical views", cursor)
		}
	}
}

// TestNilSnapshotDefaults checks that an all-nil snapshot reads as a
// healthy idle machine.
func TestNilSnapshotDefaults(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	v := NewView(NewRanks(topo), 0, Snapshot{})
	for c := 0; c < topo.NumCores(); c++ {
		id := topology.CoreID(c)
		if !v.IsLive(id) || v.Occupancy(id) != 0 || v.WorkerOn(id) != -1 {
			t.Errorf("core %d: live=%v occ=%d worker=%d, want live idle unowned",
				c, v.IsLive(id), v.Occupancy(id), v.WorkerOn(id))
		}
	}
	for ch := 0; ch < topo.NumChiplets(); ch++ {
		id := topology.ChipletID(ch)
		if v.HealthMilli(id) != 1000 || v.IsRefused(id) {
			t.Errorf("chiplet %d: health=%d refused=%v, want nominal admitting",
				ch, v.HealthMilli(id), v.IsRefused(id))
		}
	}
	if got := v.ChipletsByPreference(0); len(got) != 0 {
		t.Errorf("ChipletsByPreference with no workers = %v, want empty", got)
	}
}

// TestStaticLayoutsInBounds sweeps the pure layout helpers over both
// presets: every returned core must exist.
func TestStaticLayoutsInBounds(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.AMDMilan7713x2(), topology.IntelSPR8488Cx2(),
	} {
		n := topo.NumCores()
		for w := 0; w < 2*n; w++ {
			for _, c := range []topology.CoreID{
				CompactCore(w, topo),
				SpreadChipletsCore(w, topo),
				SpreadNodesCore(w, topo),
				NodeBalancedCore(w, topo),
				OversubscribedCore(w, 2*n, 4, topo),
			} {
				if int(c) < 0 || int(c) >= n {
					t.Fatalf("worker %d: core %d out of range [0,%d)", w, c, n)
				}
			}
		}
	}
}
