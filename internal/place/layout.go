package place

import (
	"fmt"

	"charm/internal/topology"
)

// Pure placement-shape functions: the static worker→core layouts the
// policies and baselines used to compute inline. They depend only on
// their arguments, never on runtime state, so initial placement is
// trivially replayable.

// CompactCore fills cores densely in worker order — socket 0 first,
// chiplet by chiplet (CHARM's §4.6 socket-fill initial placement and the
// LocalCache static mode).
func CompactCore(worker int, t *topology.Topology) topology.CoreID {
	return topology.CoreID(worker % t.NumCores())
}

// SpreadChipletsCore fills sockets in worker order but round-robins the
// chiplets within each socket (DistributedCache: maximum aggregate L3).
func SpreadChipletsCore(worker int, t *topology.Topology) topology.CoreID {
	cps := t.CoresPerSocket()
	socket := worker / cps
	if socket >= t.Sockets {
		socket = t.Sockets - 1
	}
	local := worker - socket*cps
	chipletsPerSocket := t.NodesPerSocket * t.ChipletsPerNode
	ch := local % chipletsPerSocket
	slot := local / chipletsPerSocket
	return topology.CoreID(socket*cps + ch*t.CoresPerChiplet + slot%t.CoresPerChiplet)
}

// SpreadNodesCore round-robins workers across NUMA nodes, dense within
// each node (the classic NUMA-balancing placement of RING/SAM-style
// runtimes' static variant).
func SpreadNodesCore(worker int, t *topology.Topology) topology.CoreID {
	nodes := t.NumNodes()
	node := worker % nodes
	slot := worker / nodes
	return topology.CoreID(node*t.CoresPerNode() + slot%t.CoresPerNode())
}

// WithinNodeCore places node-local index local round-robin across the
// chiplets of node — the chiplet-oblivious scatter NUMA-aware runtimes
// produce within a node.
func WithinNodeCore(t *topology.Topology, node topology.NodeID, local int) topology.CoreID {
	ch := local % t.ChipletsPerNode
	slot := (local / t.ChipletsPerNode) % t.CoresPerChiplet
	base := int(node) * t.CoresPerNode()
	return topology.CoreID(base + ch*t.CoresPerChiplet + slot)
}

// NodeBalancedCore places worker round-robin across NUMA nodes, scattered
// across chiplets within each node (RING/AsymSched/SAM initial placement).
func NodeBalancedCore(worker int, t *topology.Topology) topology.CoreID {
	nodes := t.NumNodes()
	node := topology.NodeID(worker % nodes)
	local := worker / nodes
	return WithinNodeCore(t, node, local)
}

// OversubscribedCore models an OS spreading a thread flood of
// workers = threads over workers/threadFactor cores round-robin (the
// std::async baseline's placement).
func OversubscribedCore(worker, workers, threadFactor int, t *topology.Topology) topology.CoreID {
	cores := t.NumCores()
	useCores := workers / threadFactor
	if useCores < 1 || useCores > cores {
		useCores = cores
	}
	return topology.CoreID(worker % useCores)
}

// Alg2Core is Algorithm 2's deterministic, collision-free (chiplet, slot)
// assignment: translate a worker's spread rate into a core within its
// socket. It returns ok=false when the bounds check fails (spread cannot
// address physical chiplets, or cannot leave a dedicated core per worker
// in the socket), in which case the caller keeps its current placement.
//
// Deviation from the paper's pseudo-code: the published wrap-around term
// slot += floor(id / CORES_PER_CHIPLET) produces colliding slots for some
// (workers, spread) combinations (e.g. 64 workers, spread 2). We use the
// algebraically collision-free equivalent slot += lap * div with
// lap = floor(id / (CHIPLETS * div)), which matches the paper's term in
// all the configurations its evaluation exercises and is a bijection over
// a socket in general (see DESIGN.md).
func Alg2Core(worker, workers, spread int, t *topology.Topology) (topology.CoreID, bool) {
	cpc := t.CoresPerChiplet
	chiplets := t.ChipletsPerNode * t.NodesPerSocket // per socket
	coresPerSocket := t.CoresPerSocket()

	// Socket-aware split: workers fill socket 0 before socket 1 (§4.6).
	socket := worker / coresPerSocket
	if socket >= t.Sockets {
		socket = t.Sockets - 1
	}
	localID := worker - socket*coresPerSocket
	workersInSocket := workers - socket*coresPerSocket
	if workersInSocket > coresPerSocket {
		workersInSocket = coresPerSocket
	}

	// Bounds check (Alg. 2 line 2): spread must address physical chiplets
	// and leave a dedicated core per worker.
	if spread < 1 || spread > chiplets || workersInSocket > spread*cpc {
		return 0, false
	}

	div := cpc / spread // consecutive workers sharing a chiplet
	if div < 1 {
		div = 1
	}
	chiplet := localID / div
	slot := localID % div
	if chiplet >= chiplets {
		lap := localID / (chiplets * div)
		chiplet %= chiplets
		slot += lap * div
	}
	if slot >= cpc {
		// Unreachable for valid inputs; guard against misconfiguration.
		panic(fmt.Sprintf("place: Alg2Core slot overflow (worker %d spread %d)", worker, spread))
	}
	return topology.CoreID(socket*coresPerSocket + chiplet*cpc + slot), true
}
