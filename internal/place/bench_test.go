package place

import (
	"testing"

	"charm/internal/topology"
)

// BenchmarkPlacement measures the decision plane's hot paths on the AMD
// Milan preset (128 cores): the one-time rank build, per-decision view
// construction, and the Select/ordering queries policies issue per
// scheduling event. Wired into BENCH_placement.json via `make bench`.
func BenchmarkPlacement(b *testing.B) {
	topo := topology.AMDMilan7713x2()
	ranks := NewRanks(topo)
	snap := func() Snapshot {
		n := topo.NumCores()
		s := Snapshot{
			Live:       make([]bool, n),
			Occ:        make([]int32, n),
			WorkerOn:   make([]int32, n),
			WorkerCore: make([]topology.CoreID, n),
			QueueDepth: make([]int64, n),
		}
		for c := 0; c < n; c++ {
			s.Live[c] = true
			s.Occ[c] = 1
			s.WorkerOn[c] = int32(c)
			s.WorkerCore[c] = topology.CoreID(c)
			s.QueueDepth[c] = int64(c % 9)
		}
		return s
	}
	view := NewView(ranks, 1, snap())

	b.Run("ranks-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewRanks(topo)
		}
	})
	b.Run("view-build", func(b *testing.B) {
		s := snap()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewView(ranks, int64(i), s)
		}
	})
	b.Run("select-nearest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view.Select(Nearest(topology.CoreID(i%128)), Live, Idle)
		}
	})
	b.Run("select-least-loaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view.Select(LeastLoaded(), Live)
		}
	})
	b.Run("victims-by-distance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view.VictimsByDistance(topology.CoreID(i%128), 0)
		}
	})
	b.Run("chiplets-by-preference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view.ChipletsByPreference(i)
		}
	})
	b.Run("alg2-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Alg2Core(i%128, 128, 1+i%8, topo)
		}
	})
}
