package place

import (
	"testing"

	"charm/internal/topology"
)

// TestCongestionAwareReducesToNearest: without a congestion or thermal
// signal the scorer must pick exactly what Nearest picks, for every
// origin core — the no-signal identity the engine's replay tests rely on.
func TestCongestionAwareReducesToNearest(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	r := NewRanks(topo)
	v := NewView(r, 0, Snapshot{})
	for c := 0; c < topo.NumCores(); c++ {
		from := topology.CoreID(c)
		a, okA := v.Select(Nearest(from), Live)
		b, okB := v.Select(CongestionAware(from), Live)
		if okA != okB || a != b {
			t.Fatalf("from core %d: Nearest → %v,%v; CongestionAware → %v,%v", c, a, okA, b, okB)
		}
	}
}

// TestCongestionAwareAvoidsHotLink: a chiplet whose incident link sits
// past the congestion guard must lose to a farther, calm chiplet.
func TestCongestionAwareAvoidsHotLink(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	r := NewRanks(topo)
	util := make([]int64, topo.NumChiplets())
	util[0] = 1000 // chiplet 0's link saturated
	v := NewView(r, 0, Snapshot{LinkUtilMilli: util})
	c, ok := v.Select(CongestionAware(0), Live)
	if !ok {
		t.Fatal("no core selected")
	}
	if topo.ChipletOf(c) == 0 {
		t.Fatalf("selected core %d on the congested chiplet", c)
	}
	// Below the guard the signal is ignored: distance wins again.
	util2 := make([]int64, topo.NumChiplets())
	util2[0] = congestionGuardMilli
	v2 := NewView(r, 0, Snapshot{LinkUtilMilli: util2})
	c2, _ := v2.Select(CongestionAware(0), Live)
	if topo.ChipletOf(c2) != 0 {
		t.Fatalf("guard-level occupancy must not repel: selected chiplet %d", topo.ChipletOf(c2))
	}
}

// hetView builds a view over the reference heterogeneous machine
// (mesh:4x2 with 2 fast, 4 efficient, 2 accelerator chiplets).
func hetView(t *testing.T) (*topology.Topology, *View) {
	t.Helper()
	sp, err := topology.ParseTopoSpec("het-mesh")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewView(NewRanks(topo), 0, Snapshot{})
}

// TestCapabilityMatchConstraint: the constraint admits exactly the cores
// of matching-kind chiplets, and KindAny admits everything.
func TestCapabilityMatchConstraint(t *testing.T) {
	topo, v := hetView(t)
	counts := map[topology.ChipletKind]int{}
	for c := 0; c < topo.NumCores(); c++ {
		id := topology.CoreID(c)
		for _, k := range []topology.ChipletKind{topology.KindFast, topology.KindEfficient, topology.KindAccel} {
			if CapabilityMatch(k)(v, id) {
				if got := topo.KindOf(topo.ChipletOf(id)); got != k {
					t.Fatalf("core %d admitted by %v but lives on a %v chiplet", c, k, got)
				}
				counts[k]++
			}
		}
		if !CapabilityMatch(topology.KindAny)(v, id) {
			t.Fatalf("KindAny refused core %d", c)
		}
	}
	cpc := topo.CoresPerChiplet
	if counts[topology.KindFast] != 2*cpc || counts[topology.KindEfficient] != 4*cpc || counts[topology.KindAccel] != 2*cpc {
		t.Fatalf("admitted cores per kind = %v, want 2/4/2 chiplets × %d cores", counts, cpc)
	}
	// Selecting under the constraint lands on the nearest matching chiplet.
	c, ok := v.Select(Nearest(0), Live, CapabilityMatch(topology.KindAccel))
	if !ok || topo.KindOf(topo.ChipletOf(c)) != topology.KindAccel {
		t.Fatalf("Select with accel constraint → core %v (ok=%v)", c, ok)
	}
}

// TestChipletsByPreferenceCongestionBand: with one worker per chiplet and
// equal everything else, a chiplet deep in the congestion band must sort
// behind every calm chiplet — but still appear (congestion demotes, never
// excludes).
func TestChipletsByPreferenceCongestionBand(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	r := NewRanks(topo)
	workerCore := make([]topology.CoreID, topo.NumChiplets())
	for ch := range workerCore {
		workerCore[ch] = topology.CoreID(ch * topo.CoresPerChiplet)
	}
	util := make([]int64, topo.NumChiplets())
	util[1] = 950
	v := NewView(r, 0, Snapshot{WorkerCore: workerCore, LinkUtilMilli: util})
	order := v.ChipletsByPreference(0)
	if len(order) != topo.NumChiplets() {
		t.Fatalf("order %v must list every chiplet", order)
	}
	if order[len(order)-1] != 1 {
		t.Fatalf("congested chiplet 1 must sort last: %v", order)
	}
}
