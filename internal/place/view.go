package place

import (
	"sort"

	"charm/internal/topology"
)

// Snapshot carries the engine-state inputs of a View. Nil slices select
// the healthy/empty default for their signal, so cheap callers (tests,
// fault-free runtimes) only fill what they have. NewView takes ownership
// of every non-nil slice: callers must not mutate them afterwards.
type Snapshot struct {
	// Live[c] reports core c not offlined by the fault plan (nil = all
	// live).
	Live []bool
	// Occ[c] is the number of workers currently pinned to core c (nil =
	// all idle).
	Occ []int32
	// WorkerOn[c] is the worker ID pinned to core c, or -1 (nil = none).
	WorkerOn []int32
	// WorkerCore[w] is worker w's current core.
	WorkerCore []topology.CoreID
	// QueueDepth[w] is worker w's pending-task count, inbox plus deque
	// (nil = all empty).
	QueueDepth []int64
	// PlanMilli[ch] is the fault plan's declared slowdown for chiplet ch
	// in milli-units — worst of thermal throttle and fabric-link brownout
	// (nil = healthy, 1000).
	PlanMilli []int64
	// ObsMilli[ch] is the PMU-observed execution slowdown for chiplet ch
	// from the last evaluation window, 0 meaning "no signal" (nil = none).
	ObsMilli []int64
	// BreakerOpen[ch] marks chiplets whose circuit breaker currently
	// refuses placements (nil = all admitting).
	BreakerOpen []bool
	// TempMilliC[ch] is chiplet ch's junction temperature from the
	// closed-loop power plane in milli-°C (nil = no thermal signal).
	TempMilliC []int64
	// TempSoftMilliC is the governor's soft-throttle setpoint in milli-°C;
	// the thermal scorers measure headroom against it (0 = no signal).
	TempSoftMilliC int64
	// LinkUtilMilli[ch] is the current-window occupancy of chiplet ch's
	// hottest incident fabric link in milli-units (1000 = saturated,
	// nil = no congestion signal). The congestion scorers demote chiplets
	// behind hot links.
	LinkUtilMilli []int64
}

// View is an immutable placement snapshot of one machine at one virtual
// time: the MachineView every placement decision queries. Build one with
// NewView, query it with Select/Rank and the typed helpers, throw it
// away. Views never observe later engine mutations, so two identical
// snapshots always produce identical decisions.
type View struct {
	ranks      *Ranks
	now        int64
	live       []bool
	occ        []int32
	workerOn   []int32
	workerCore []topology.CoreID
	depth      []int64
	// health[ch] is the fused milli-slowdown (1000 = nominal); refused[ch]
	// is the breaker's hard refusal flag.
	health  []int64
	refused []bool
	// temp[ch] is the junction temperature in milli-°C and tempSoft the
	// governor's soft setpoint; both nil/0 when no power plane runs.
	temp     []int64
	tempSoft int64
	// linkUtil[ch] is the hottest incident fabric-link occupancy in
	// milli-units (nil = no congestion signal).
	linkUtil []int64
}

// NewView builds a View of ranks' machine at virtual time now from
// snapshot s, fusing the per-chiplet health signals.
func NewView(r *Ranks, now int64, s Snapshot) *View {
	n := r.topo.NumCores()
	nch := r.topo.NumChiplets()
	v := &View{
		ranks:      r,
		now:        now,
		live:       s.Live,
		occ:        s.Occ,
		workerOn:   s.WorkerOn,
		workerCore: s.WorkerCore,
		depth:      s.QueueDepth,
		health:     make([]int64, nch),
		refused:    s.BreakerOpen,
		temp:       s.TempMilliC,
		tempSoft:   s.TempSoftMilliC,
		linkUtil:   s.LinkUtilMilli,
	}
	if v.live == nil {
		v.live = make([]bool, n)
		for i := range v.live {
			v.live[i] = true
		}
	}
	if v.occ == nil {
		v.occ = make([]int32, n)
	}
	if v.workerOn == nil {
		v.workerOn = make([]int32, n)
		for i := range v.workerOn {
			v.workerOn[i] = -1
		}
	}
	if v.depth == nil {
		v.depth = make([]int64, len(v.workerCore))
	}
	if v.refused == nil {
		v.refused = make([]bool, nch)
	}
	for ch := 0; ch < nch; ch++ {
		var pm, om int64
		if s.PlanMilli != nil {
			pm = s.PlanMilli[ch]
		}
		if s.ObsMilli != nil {
			om = s.ObsMilli[ch]
		}
		v.health[ch] = FuseHealth(pm, om)
	}
	return v
}

// FuseHealth fuses a chiplet's plan-declared and PMU-observed slowdown
// signals into one milli-factor: the worst signal wins, floored at the
// nominal 1000 (absent signals are reported as 0 and read as healthy).
func FuseHealth(planMilli, obsMilli int64) int64 {
	h := int64(1000)
	if planMilli > h {
		h = planMilli
	}
	if obsMilli > h {
		h = obsMilli
	}
	return h
}

// Now returns the virtual time the view was built at.
func (v *View) Now() int64 { return v.now }

// Topology returns the machine topology.
func (v *View) Topology() *topology.Topology { return v.ranks.topo }

// Ranks returns the shared distance ranking.
func (v *View) Ranks() *Ranks { return v.ranks }

// NumWorkers returns the snapshot's worker count.
func (v *View) NumWorkers() int { return len(v.workerCore) }

// IsLive reports whether core c is not offlined by the fault plan.
func (v *View) IsLive(c topology.CoreID) bool { return v.live[c] }

// Occupancy returns the number of workers pinned to core c.
func (v *View) Occupancy(c topology.CoreID) int { return int(v.occ[c]) }

// WorkerOn returns the worker ID pinned to core c, or -1.
func (v *View) WorkerOn(c topology.CoreID) int { return int(v.workerOn[c]) }

// CoreOf returns worker w's core at snapshot time.
func (v *View) CoreOf(w int) topology.CoreID { return v.workerCore[w] }

// DepthOf returns worker w's queued-task count at snapshot time.
func (v *View) DepthOf(w int) int64 { return v.depth[w] }

// HealthMilli returns chiplet ch's fused slowdown factor (1000 = nominal).
func (v *View) HealthMilli(ch topology.ChipletID) int64 { return v.health[ch] }

// IsRefused reports whether chiplet ch's breaker refuses placements.
func (v *View) IsRefused(ch topology.ChipletID) bool { return v.refused[ch] }

// TempMilliC returns chiplet ch's junction temperature in milli-°C, or 0
// when the view carries no thermal signal.
func (v *View) TempMilliC(ch topology.ChipletID) int64 {
	if v.temp == nil {
		return 0
	}
	return v.temp[ch]
}

// TempSoftMilliC returns the governor's soft-throttle setpoint in
// milli-°C, or 0 when the view carries no thermal signal.
func (v *View) TempSoftMilliC() int64 { return v.tempSoft }

// LinkUtilMilli returns the occupancy of chiplet ch's hottest incident
// fabric link in milli-units (1000 = saturated), or 0 when the view
// carries no congestion signal.
func (v *View) LinkUtilMilli(ch topology.ChipletID) int64 {
	if v.linkUtil == nil {
		return 0
	}
	return v.linkUtil[ch]
}

// KindOf returns chiplet ch's compute kind (KindFast on homogeneous
// machines).
func (v *View) KindOf(ch topology.ChipletID) topology.ChipletKind {
	return v.ranks.topo.KindOf(ch)
}

// thermalGuardMilliC is the guard band below the soft setpoint where the
// thermal scorers begin steering work away: a chiplet within 10 °C of
// soft throttling is already a bad place for more heat.
const thermalGuardMilliC = 10_000

// thermalPenalty converts a chiplet's temperature into a scorer penalty:
// zero with ample headroom, then one (1<<20)-scaled unit per °C past the
// guard band — large enough to dominate any topological distance, so a
// cool remote chiplet beats a hot local one.
func (v *View) thermalPenalty(ch topology.ChipletID) int64 {
	if v.temp == nil || v.tempSoft == 0 {
		return 0
	}
	over := v.temp[ch] - (v.tempSoft - thermalGuardMilliC)
	if over <= 0 {
		return 0
	}
	return over * (1 << 20) / 1000
}

// congestionGuardMilli is the link occupancy where the congestion scorers
// begin steering work away: past 70% of the bandwidth window, new
// transfers will land in the queueing regime before the window turns over.
const congestionGuardMilli = 700

// congestionPenalty converts a chiplet's hottest-link occupancy into a
// scorer penalty: zero below the guard, then one (1<<20)-scaled unit per
// 1000 milli of overshoot — the same magnitude scheme as thermalPenalty,
// so congestion dominates topological distance but defers to a chiplet
// that is ten degrees into its thermal guard band.
func (v *View) congestionPenalty(ch topology.ChipletID) int64 {
	if v.linkUtil == nil {
		return 0
	}
	over := v.linkUtil[ch] - congestionGuardMilli
	if over <= 0 {
		return 0
	}
	return over * (1 << 20) / 1000
}

// Constraint is a composable candidate filter: it reports whether core c
// is eligible in view v.
type Constraint func(v *View, c topology.CoreID) bool

// Live admits cores the fault plan has not offlined.
var Live Constraint = func(v *View, c topology.CoreID) bool { return v.live[c] }

// Idle admits cores with no worker pinned to them.
var Idle Constraint = func(v *View, c topology.CoreID) bool { return v.occ[c] == 0 }

// BreakerClosed admits cores whose chiplet breaker is not refusing
// placements.
var BreakerClosed Constraint = func(v *View, c topology.CoreID) bool {
	return !v.refused[v.ranks.topo.ChipletOf(c)]
}

// Scorer orders eligible candidates: lower is better. Scorers must be
// pure functions of the view and the candidate so selections replay.
type Scorer func(v *View, c topology.CoreID) int64

// Nearest prefers cores topologically closest to from (from itself scores
// -1, nearer than everything else).
func Nearest(from topology.CoreID) Scorer {
	return func(v *View, c topology.CoreID) int64 {
		return int64(v.ranks.pos[from][c])
	}
}

// LeastLoaded prefers unoccupied cores, then the shallowest queue of the
// core's resident worker (occupancy dominates: stacking two workers on
// one core serializes them regardless of queue depths).
func LeastLoaded() Scorer {
	return func(v *View, c topology.CoreID) int64 {
		s := int64(v.occ[c]) << 32
		if w := v.workerOn[c]; w >= 0 {
			s += v.depth[w]
		}
		return s
	}
}

// ThermalHeadroom prefers cores topologically close to from while trading
// that proximity against projected temperature headroom: candidates on
// chiplets inside the guard band of the governor's soft setpoint (or over
// it) pay thermalPenalty, so sustained hot work spreads across the
// package before the governor has to throttle anyone. On views without a
// thermal signal it reduces exactly to Nearest.
func ThermalHeadroom(from topology.CoreID) Scorer {
	return func(v *View, c topology.CoreID) int64 {
		s := int64(v.ranks.pos[from][c])
		return s + v.thermalPenalty(v.ranks.topo.ChipletOf(c))
	}
}

// CongestionAware prefers cores topologically close to from while demoting
// chiplets behind hot fabric links and hot dies: candidates pay
// congestionPenalty once their hottest incident link exceeds the guard
// occupancy, plus thermalPenalty inside the thermal guard band. On views
// without congestion or thermal signals it reduces exactly to Nearest.
func CongestionAware(from topology.CoreID) Scorer {
	return func(v *View, c topology.CoreID) int64 {
		ch := v.ranks.topo.ChipletOf(c)
		return int64(v.ranks.pos[from][c]) + v.congestionPenalty(ch) + v.thermalPenalty(ch)
	}
}

// CapabilityMatch admits only cores on chiplets of the given compute kind;
// KindAny admits everything. Dispatchers use it as a soft preference
// (match first, fall back to any kind) so declaring a preference can never
// strand a job.
func CapabilityMatch(kind topology.ChipletKind) Constraint {
	return func(v *View, c topology.CoreID) bool {
		return kind == topology.KindAny || v.ranks.topo.KindOf(v.ranks.topo.ChipletOf(c)) == kind
	}
}

// RoundRobin rotates preference through the cores starting at cursor —
// the deterministic fairness scorer for otherwise-equal candidates.
func RoundRobin(cursor int) Scorer {
	return func(v *View, c topology.CoreID) int64 {
		n := len(v.live)
		return int64(((int(c)-cursor)%n + n) % n)
	}
}

func (v *View) satisfies(c topology.CoreID, cons []Constraint) bool {
	for _, f := range cons {
		if !f(v, c) {
			return false
		}
	}
	return true
}

// Select returns the best core under the scorer among those satisfying
// every constraint, or ok=false when no core qualifies. Ties break toward
// the lower core ID, so identical views always select identically.
func (v *View) Select(score Scorer, cons ...Constraint) (topology.CoreID, bool) {
	var best topology.CoreID
	var bestScore int64
	found := false
	for i := range v.live {
		c := topology.CoreID(i)
		if !v.satisfies(c, cons) {
			continue
		}
		if s := score(v, c); !found || s < bestScore {
			best, bestScore, found = c, s, true
		}
	}
	return best, found
}

// Rank returns every core satisfying the constraints in ascending score
// order, ties broken by core ID.
func (v *View) Rank(score Scorer, cons ...Constraint) []topology.CoreID {
	type scored struct {
		c topology.CoreID
		s int64
	}
	cand := make([]scored, 0, len(v.live))
	for i := range v.live {
		c := topology.CoreID(i)
		if v.satisfies(c, cons) {
			cand = append(cand, scored{c, score(v, c)})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].s != cand[j].s {
			return cand[i].s < cand[j].s
		}
		return cand[i].c < cand[j].c
	})
	out := make([]topology.CoreID, len(cand))
	for i, x := range cand {
		out[i] = x.c
	}
	return out
}

// VictimsByDistance returns the IDs of all workers other than selfWorker
// in increasing topological distance of their core from self — the
// chiplet-first steal-victim order of §4.4. Cores transiently shared by
// two workers contribute only the currently registered one, matching the
// engine's worker-on-core map.
func (v *View) VictimsByDistance(self topology.CoreID, selfWorker int) []int {
	out := make([]int, 0, len(v.workerCore))
	for _, c := range v.ranks.from[self] {
		if w := v.workerOn[c]; w >= 0 && int(w) != selfWorker {
			out = append(out, int(w))
		}
	}
	return out
}

// VictimsNodeFirst returns all workers other than selfWorker, those on
// self's NUMA node first, each group in worker-ID order — NUMA-aware but
// chiplet-oblivious stealing (RING/SAM).
func (v *View) VictimsNodeFirst(self topology.CoreID, selfWorker int) []int {
	topo := v.ranks.topo
	node := topo.NodeOfCore(self)
	var same, other []int
	for w, c := range v.workerCore {
		if w == selfWorker {
			continue
		}
		if topo.NodeOfCore(c) == node {
			same = append(same, w)
		} else {
			other = append(other, w)
		}
	}
	return append(same, other...)
}

// LiveWorkersOn returns the IDs of workers currently on live cores of
// chiplet ch, in worker-ID order — the dispatch group co-located stage
// placement spreads a stage across.
func (v *View) LiveWorkersOn(ch topology.ChipletID) []int {
	var out []int
	for w, c := range v.workerCore {
		if v.ranks.topo.ChipletOf(c) == ch && v.live[c] {
			out = append(out, w)
		}
	}
	return out
}

// ChipletDepth returns the summed queue depth of the workers on live
// cores of chiplet ch.
func (v *View) ChipletDepth(ch topology.ChipletID) int64 {
	var d int64
	for w, c := range v.workerCore {
		if v.ranks.topo.ChipletOf(c) == ch && v.live[c] {
			d += v.depth[w]
		}
	}
	return d
}

// ChipletsByPreference orders every chiplet hosting at least one worker
// on a live core for dispatch: breaker-admitting chiplets before refused
// ones (refused chiplets stay listed last so half-open probes can still
// reach them), then healthier fused milli, then cooler thermal band (2 °C
// buckets inside the soft setpoint's guard band — a no-op without a
// thermal signal), then calmer congestion band (100-milli buckets of
// hottest-incident-link occupancy past the congestion guard — a no-op
// without a link signal), then lower aggregate queue depth. Remaining
// ties rotate deterministically with cursor so equally-good chiplets
// share work round-robin.
func (v *View) ChipletsByPreference(cursor int) []topology.ChipletID {
	topo := v.ranks.topo
	nch := topo.NumChiplets()
	type cand struct {
		ch    topology.ChipletID
		band  int64
		cong  int64
		depth int64
		rot   int
	}
	cands := make([]cand, 0, nch)
	for ch := 0; ch < nch; ch++ {
		id := topology.ChipletID(ch)
		hasLive := false
		var depth int64
		for w, c := range v.workerCore {
			if topo.ChipletOf(c) == id && v.live[c] {
				hasLive = true
				depth += v.depth[w]
			}
		}
		if !hasLive {
			continue
		}
		var band int64
		if v.temp != nil && v.tempSoft != 0 {
			if over := v.temp[ch] - (v.tempSoft - thermalGuardMilliC); over > 0 {
				band = over/2000 + 1
			}
		}
		var cong int64
		if v.linkUtil != nil {
			if over := v.linkUtil[ch] - congestionGuardMilli; over > 0 {
				cong = over/100 + 1
			}
		}
		cands = append(cands, cand{id, band, cong, depth, ((ch-cursor)%nch + nch) % nch})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if v.refused[a.ch] != v.refused[b.ch] {
			return !v.refused[a.ch]
		}
		if v.health[a.ch] != v.health[b.ch] {
			return v.health[a.ch] < v.health[b.ch]
		}
		if a.band != b.band {
			return a.band < b.band
		}
		if a.cong != b.cong {
			return a.cong < b.cong
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.rot < b.rot
	})
	out := make([]topology.ChipletID, len(cands))
	for i, c := range cands {
		out[i] = c.ch
	}
	return out
}
