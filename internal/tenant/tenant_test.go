package tenant

import (
	"reflect"
	"testing"

	"charm/internal/admit"
	"charm/internal/rng"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"a", Spec{Name: "a", Weight: 1, Policy: admit.Shed}},
		{"tenant:a,weight=3,quota=2", Spec{Name: "a", Weight: 3, Quota: 2, Policy: admit.Shed}},
		{"a,3,2", Spec{Name: "a", Weight: 3, Quota: 2, Policy: admit.Shed}},
		{"a,3,2,class=1,gap=50us,burst=8,policy=reject,queue=16",
			Spec{Name: "a", Weight: 3, Quota: 2, Class: 1, GapNS: 50_000, Burst: 8,
				Policy: admit.Reject, QueueCap: 16}},
		{"b,gap=2ms", Spec{Name: "b", Weight: 1, GapNS: 2_000_000, Burst: 1, Policy: admit.Shed}},
		{"b,gap=1000", Spec{Name: "b", Weight: 1, GapNS: 1000, Burst: 1, Policy: admit.Shed}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Canonical round trip.
		rt, err := ParseSpec(got.String())
		if err != nil || rt != got {
			t.Errorf("round trip of %q via %q: got %+v, err %v", c.in, got.String(), rt, err)
		}
	}
	bad := []string{
		"", ",weight=1", "a b", "a,weight=0", "a,weight=x", "a,quota=-1",
		"a,1,2,3", "a,frob=1", "a,policy=drop", "a,gap=1.5ms", "a,class=9",
		"a,burst=4", "a,gap=-5", "a,gap=99999999999s",
	}
	for _, in := range bad {
		if got, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) = %+v, want error", in, got)
		}
	}
}

func TestBucketRefill(t *testing.T) {
	b := NewBucket(100, 2)
	if !b.Take(0) || !b.Take(0) {
		t.Fatal("bucket should start full")
	}
	if b.Take(50) {
		t.Fatal("half a gap must not mint a token")
	}
	if got := b.NextAt(50); got != 100 {
		t.Fatalf("NextAt(50) = %d, want 100", got)
	}
	if !b.Take(100) {
		t.Fatal("one gap elapsed: token due")
	}
	// Sub-gap credit must carry exactly: 100..149 minted one token and 49
	// ns of credit, so the next token lands at 200, not 249.
	if b.Take(149) {
		t.Fatal("credit must not round up to a token")
	}
	if got := b.NextAt(149); got != 200 {
		t.Fatalf("NextAt(149) = %d, want 200 (credit carries)", got)
	}
	// Cap: a long idle period refills to burst, never past it.
	if got := b.Tokens(10_000); got != 2 {
		t.Fatalf("Tokens after idle = %d, want burst 2", got)
	}
	u := NewBucket(0, 1)
	for i := int64(0); i < 100; i++ {
		if !u.Take(i) {
			t.Fatal("unlimited bucket refused")
		}
	}
}

// drain runs n grants against the mux, recording the grant sequence.
func drain(d *DRR, n int, backlog func(i int) bool) []int {
	seq := make([]int, 0, n)
	for k := 0; k < n; k++ {
		i := d.Next(backlog)
		if i < 0 {
			break
		}
		seq = append(seq, i)
	}
	return seq
}

// TestDRRFairnessInvariant is the property test of the drain's fairness
// guarantee: over any window of the grant sequence in which every tenant
// stays backlogged, each tenant's granted slots deviate from its weighted
// share of the window by at most one quantum on each cut boundary (2·w_i
// in total), and round-aligned windows are exact.
func TestDRRFairnessInvariant(t *testing.T) {
	weights := []int64{1, 2, 5}
	var total int64
	for _, w := range weights {
		total += w
	}
	d := NewDRR(weights)
	all := func(int) bool { return true }
	const rounds = 50
	seq := drain(d, rounds*int(total), all)
	if len(seq) != rounds*int(total) {
		t.Fatalf("granted %d slots, want %d", len(seq), rounds*int(total))
	}
	// Round-aligned exactness: each full round grants exactly w_i per tenant.
	for r := 0; r < rounds; r++ {
		cnt := make([]int64, len(weights))
		for _, i := range seq[r*int(total) : (r+1)*int(total)] {
			cnt[i]++
		}
		for i, w := range weights {
			if cnt[i] != w {
				t.Fatalf("round %d: tenant %d got %d slots, want exactly %d", r, i, cnt[i], w)
			}
		}
	}
	// Arbitrary windows: every [a, b) window's per-tenant count stays
	// within one quantum of the weighted share at each cut (<= 2*w_i).
	for a := 0; a < len(seq); a += 7 {
		cnt := make([]int64, len(weights))
		for b := a; b < len(seq); b++ {
			cnt[seq[b]]++
			win := int64(b - a + 1)
			for i, w := range weights {
				share := float64(win) * float64(w) / float64(total)
				dev := float64(cnt[i]) - share
				if dev > 2*float64(w) || dev < -2*float64(w) {
					t.Fatalf("window [%d,%d]: tenant %d got %d slots, share %.1f (dev %.1f > quantum bound %d)",
						a, b, i, cnt[i], share, dev, 2*w)
				}
			}
		}
	}
}

// TestDRRNoBankedBurst pins the deficit cap: a tenant that goes idle
// forfeits its unused deficit, so on return it cannot claim more than one
// quantum before the other tenants are served again.
func TestDRRNoBankedBurst(t *testing.T) {
	d := NewDRR([]int64{2, 2})
	idle0 := false
	backlog := func(i int) bool { return i != 0 || !idle0 }
	// Tenant 0 idles for many rounds while tenant 1 drains alone.
	idle0 = true
	if seq := drain(d, 20, backlog); len(seq) != 20 {
		t.Fatal("tenant 1 should drain alone")
	}
	// Tenant 0 returns: over the next full round (4 slots) it gets exactly
	// its quantum (2), not a banked burst.
	idle0 = false
	cnt := [2]int{}
	for _, i := range drain(d, 4, backlog) {
		cnt[i]++
	}
	if cnt[0] != 2 || cnt[1] != 2 {
		t.Fatalf("post-idle round = %v, want [2 2] (no banked deficit)", cnt)
	}
}

// TestDRRRandomizedBacklog drives the mux with a seeded random backlog
// pattern and checks the structural invariants: only backlogged tenants
// are ever granted, and -1 only when nobody is backlogged.
func TestDRRRandomizedBacklog(t *testing.T) {
	state := rng.Seed(42, 0x7e57)
	weights := []int64{1, 3, 2, 1}
	d := NewDRR(weights)
	back := make([]bool, len(weights))
	for step := 0; step < 5000; step++ {
		for i := range back {
			back[i] = rng.SplitMix64(&state)%4 != 0
		}
		got := d.Next(func(i int) bool { return back[i] })
		any := false
		for _, b := range back {
			any = any || b
		}
		switch {
		case got < 0 && any:
			t.Fatalf("step %d: Next=-1 with backlog %v", step, back)
		case got >= 0 && !back[got]:
			t.Fatalf("step %d: granted idle tenant %d (backlog %v)", step, got, back)
		}
	}
}

func TestLeaseTableQuotaAndGrowth(t *testing.T) {
	live := []bool{true, true, true, true}
	lt := NewLeaseTable(4, []int{1, 1}, []int64{1, 1})

	// Only tenant 0 demands: quota first, then elastic growth into the rest.
	lt.Rebalance(live, []bool{true, false})
	if got := lt.Owners(); !reflect.DeepEqual(got, []int{0, 0, 0, 0}) {
		t.Fatalf("solo growth owners = %v", got)
	}
	// Tenant 1 arrives: its quota is carved back out of 0's surplus,
	// lease by lease, and growth rebalances the remainder.
	evs := lt.Rebalance(live, []bool{true, true})
	if lt.Held(1) < 1 {
		t.Fatalf("tenant 1 quota not honored: owners %v", lt.Owners())
	}
	if lt.Held(0)+lt.Held(1) != 4 {
		t.Fatalf("live chiplets must stay leased under demand: owners %v", lt.Owners())
	}
	reclaimed := false
	for _, e := range evs {
		if e.From == 0 && e.To == 1 {
			reclaimed = true
		}
	}
	if !reclaimed {
		t.Fatalf("expected a 0→1 reclamation transfer, events %v", evs)
	}
	// Steady state: rebalancing again with unchanged inputs is a no-op.
	if evs := lt.Rebalance(live, []bool{true, true}); len(evs) != 0 {
		t.Fatalf("steady-state rebalance produced events %v", evs)
	}
}

func TestLeaseTableFaultRebalance(t *testing.T) {
	lt := NewLeaseTable(4, []int{2, 2}, []int64{1, 1})
	live := []bool{true, true, true, true}
	lt.Rebalance(live, []bool{true, true})
	if lt.Held(0) != 2 || lt.Held(1) != 2 {
		t.Fatalf("setup owners = %v", lt.Owners())
	}
	victim := -1
	for ch, own := range lt.Owners() {
		if own == 0 {
			victim = ch
			break
		}
	}
	// The chiplet dies (parked/offlined): the lease is voided, and with no
	// free live chiplet the quota reclaims one from the other tenant —
	// rebalance, not starvation.
	live[victim] = false
	evs := lt.Rebalance(live, []bool{true, true})
	if lt.FaultFrees() != 1 {
		t.Fatalf("fault frees = %d, want 1 (events %v)", lt.FaultFrees(), evs)
	}
	if lt.Owner(victim) != -1 {
		t.Fatalf("dead chiplet still leased: owners %v", lt.Owners())
	}
	if lt.Held(0) == 0 {
		t.Fatalf("tenant 0 starved after fault: owners %v", lt.Owners())
	}
	if lt.Held(0)+lt.Held(1) != 3 {
		t.Fatalf("3 live chiplets should stay leased, owners %v", lt.Owners())
	}
}

func TestLeaseTableIdleRelease(t *testing.T) {
	live := []bool{true, true, true, true}
	lt := NewLeaseTable(4, []int{1, 1}, []int64{1, 1})
	lt.Rebalance(live, []bool{true, false}) // tenant 0 grows to 4
	lt.Rebalance(live, []bool{false, false})
	if lt.Held(0) != 1 {
		t.Fatalf("idle tenant should shed surplus to quota, held=%d owners=%v",
			lt.Held(0), lt.Owners())
	}
}
