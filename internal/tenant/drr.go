package tenant

// DRR is a deficit-round-robin mux over the per-tenant admission queues:
// each call to Next grants one dispatch slot to a backlogged tenant such
// that, over any backlogged window, every tenant's granted slots stay
// within one quantum of its weighted fair share. Dispatch slots are
// unit-cost (one job each), so quantum_i is simply Weight_i slots per
// round.
//
// The deficit cap is the isolation property: a tenant's unused deficit is
// forfeited the moment its queue goes empty, so an idle tenant cannot bank
// scheduling credit and burst past its share when it returns. Not
// goroutine-safe; the job service drives it under its own lock.
type DRR struct {
	weight  []int64
	deficit []int64
	cur     int
	grants  []int64
}

// NewDRR builds a mux over n tenants with the given per-tenant weights
// (values below 1 are raised to 1).
func NewDRR(weights []int64) *DRR {
	d := &DRR{
		weight:  append([]int64(nil), weights...),
		deficit: make([]int64, len(weights)),
		grants:  make([]int64, len(weights)),
	}
	for i, w := range d.weight {
		if w < 1 {
			d.weight[i] = 1
		}
	}
	return d
}

// Next grants one dispatch slot: it returns the index of the tenant to
// serve, or -1 when no tenant is backlogged. backlog reports whether
// tenant i currently has queued work; it is consulted in rotation order
// and an idle tenant's remaining deficit is zeroed as the cursor passes it.
func (d *DRR) Next(backlog func(i int) bool) int {
	n := len(d.weight)
	if n == 0 {
		return -1
	}
	// Two full rotations bound the scan: the first may only recharge
	// deficits, the second must serve if anyone is backlogged.
	for scanned := 0; scanned <= 2*n; scanned++ {
		i := d.cur
		if !backlog(i) {
			d.deficit[i] = 0 // idle tenants forfeit unused deficit
			d.cur = (i + 1) % n
			continue
		}
		if d.deficit[i] == 0 {
			d.deficit[i] = d.weight[i] // new quantum for this round's visit
		}
		d.deficit[i]--
		if d.deficit[i] == 0 {
			d.cur = (i + 1) % n // quantum exhausted after this grant
		}
		d.grants[i]++
		return i
	}
	return -1
}

// Grants returns the cumulative dispatch slots granted per tenant.
// The returned slice is a copy.
func (d *DRR) Grants() []int64 { return append([]int64(nil), d.grants...) }
