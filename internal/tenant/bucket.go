package tenant

// Bucket is a virtual-time token bucket: one token per admitted job,
// refilled at one token per GapNS of virtual time up to Burst. All
// arithmetic is integer, so refill accounting is exact and replayable —
// leftover sub-token time carries in the credit field instead of being
// rounded away. Not goroutine-safe; the job service drives it under its
// own lock.
type Bucket struct {
	gap    int64 // ns per token; <=0 = unlimited
	burst  int64
	tokens int64
	credit int64 // accumulated refill remainder, in [0, gap)
	last   int64 // virtual time of the last refill
}

// NewBucket builds a bucket refilling one token per gapNS up to burst
// tokens, starting full. gapNS <= 0 disables rate limiting entirely.
func NewBucket(gapNS, burst int64) *Bucket {
	if burst < 1 {
		burst = 1
	}
	return &Bucket{gap: gapNS, burst: burst, tokens: burst}
}

// refill credits tokens for the virtual time elapsed since the last call.
func (b *Bucket) refill(now int64) {
	if b.gap <= 0 || now <= b.last {
		return
	}
	total := (now - b.last) + b.credit
	b.tokens += total / b.gap
	b.credit = total % b.gap
	if b.tokens >= b.burst {
		b.tokens = b.burst
		b.credit = 0 // a full bucket does not bank fractional refill
	}
	b.last = now
}

// Take consumes one token at virtual time now, reporting whether one was
// available. Unlimited buckets always admit.
func (b *Bucket) Take(now int64) bool {
	b.refill(now)
	if b.gap <= 0 {
		return true
	}
	if b.tokens > 0 {
		b.tokens--
		return true
	}
	return false
}

// Tokens returns the whole tokens available at virtual time now.
func (b *Bucket) Tokens(now int64) int64 {
	b.refill(now)
	if b.gap <= 0 {
		return 1
	}
	return b.tokens
}

// NextAt returns the earliest virtual time a token will be available: now
// when one already is, otherwise the completion time of the in-progress
// refill — the wake-up time a Block-policy arrival waits for.
func (b *Bucket) NextAt(now int64) int64 {
	b.refill(now)
	if b.gap <= 0 || b.tokens > 0 {
		return now
	}
	return now + (b.gap - b.credit)
}
