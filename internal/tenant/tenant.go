// Package tenant implements the multi-tenant isolation plane of the
// open-loop job service: per-tenant admission specs (weights, chiplet
// quotas, token-bucket rate limits, SLO classes), the deficit-round-robin
// mux that shares dispatch slots fairly across tenants, and the elastic
// chiplet-lease table the placement plane arbitrates.
//
// Like internal/admit, everything here runs in virtual time and is a pure
// function of its inputs: no wall clocks, no randomness. The job service
// drives all state machines under its own lock, which deterministic runs
// serialize by the turn baton — so two identical runs make byte-identical
// arbitration decisions.
package tenant

import (
	"fmt"
	"strconv"
	"strings"

	"charm/internal/admit"
)

// Spec declares one tenant's admission contract.
type Spec struct {
	// Name labels the tenant in metrics, spans, and reports.
	Name string
	// Weight is the tenant's deficit-round-robin quantum: dispatch slots
	// granted per scheduling round while the tenant is backlogged.
	Weight int64
	// Quota is the tenant's guaranteed chiplet-lease count. Tenants may
	// elastically grow past it into idle chiplets, but only the quota is
	// defended when other tenants demand their share back.
	Quota int
	// Class is the tenant's SLO class, used as the priority label for
	// per-tenant SLO objectives (clamped to [0, 7] like job priorities).
	Class int
	// GapNS is the token-bucket refill gap in virtual ns per admitted job
	// (the inverse of the tenant's contracted arrival rate). 0 disables
	// rate limiting for the tenant.
	GapNS int64
	// Burst is the token-bucket depth: how many jobs may arrive back to
	// back before the rate limit engages. 0 selects 1 when GapNS is set.
	Burst int64
	// Policy is the tenant's backpressure policy, applied both to its
	// admission queue and to token-bucket overflow: Block holds the
	// arrival upstream, Reject refuses it, Shed drops deadline-hopeless
	// work first.
	Policy admit.Policy
	// QueueCap bounds the tenant's admission queue (0 = service default).
	QueueCap int
}

// specLimits bound the grammar so a fuzzer (or a typo) cannot demand an
// absurd allocation.
const (
	maxWeight   = 1 << 20
	maxQuota    = 1 << 12
	maxClass    = 7
	maxQueueCap = 1 << 20
)

// Validate rejects malformed specs with a descriptive error.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("tenant: empty name")
	}
	for _, r := range s.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("tenant: name %q: invalid character %q", s.Name, r)
		}
	}
	if s.Weight < 1 || s.Weight > maxWeight {
		return fmt.Errorf("tenant %s: weight %d out of range [1, %d]", s.Name, s.Weight, maxWeight)
	}
	if s.Quota < 0 || s.Quota > maxQuota {
		return fmt.Errorf("tenant %s: quota %d out of range [0, %d]", s.Name, s.Quota, maxQuota)
	}
	if s.Class < 0 || s.Class > maxClass {
		return fmt.Errorf("tenant %s: class %d out of range [0, %d]", s.Name, s.Class, maxClass)
	}
	if s.GapNS < 0 {
		return fmt.Errorf("tenant %s: negative gap %d", s.Name, s.GapNS)
	}
	if s.Burst < 0 {
		return fmt.Errorf("tenant %s: negative burst %d", s.Name, s.Burst)
	}
	if s.GapNS == 0 && s.Burst > 0 {
		return fmt.Errorf("tenant %s: burst %d without a gap (rate limit disabled)", s.Name, s.Burst)
	}
	if s.QueueCap < 0 || s.QueueCap > maxQueueCap {
		return fmt.Errorf("tenant %s: queue %d out of range [0, %d]", s.Name, s.QueueCap, maxQueueCap)
	}
	if s.Policy > admit.Shed {
		return fmt.Errorf("tenant %s: unknown policy %d", s.Name, s.Policy)
	}
	return nil
}

// ParseSpec parses the tenant-spec grammar:
//
//	[tenant:]name[,weight[,quota]][,key=value...]
//
// The name comes first; the next up-to-two bare integers are positional
// weight and quota; keyed fields are weight, quota, class, gap (a virtual
// duration: "250us", "1ms", or bare ns), burst, policy (block/reject/
// shed), and queue. Omitted fields default to weight 1, quota 0, no rate
// limit, policy shed.
//
//	tenant:batch,weight=1,quota=1,gap=50us,burst=8,policy=shed
//	interactive,4,2,class=1
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimPrefix(s, "tenant:")
	parts := strings.Split(s, ",")
	spec := Spec{Weight: 1, Policy: admit.Shed}
	spec.Name = strings.TrimSpace(parts[0])
	if spec.Name == "" || strings.ContainsAny(spec.Name, "=:") {
		return Spec{}, fmt.Errorf("tenant: spec %q: first field must be the tenant name", s)
	}
	pos := 0 // positional cursor: 0 = weight, 1 = quota
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		if p == "" {
			return Spec{}, fmt.Errorf("tenant %s: empty field", spec.Name)
		}
		k, v, keyed := strings.Cut(p, "=")
		if !keyed {
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("tenant %s: bad positional field %q: %v", spec.Name, p, err)
			}
			switch pos {
			case 0:
				spec.Weight = n
			case 1:
				spec.Quota = int(n)
			default:
				return Spec{}, fmt.Errorf("tenant %s: too many positional fields at %q", spec.Name, p)
			}
			pos++
			continue
		}
		pos = 2 // keyed fields end the positional prefix
		var err error
		switch k {
		case "weight":
			spec.Weight, err = strconv.ParseInt(v, 10, 64)
		case "quota":
			spec.Quota, err = atoi(v)
		case "class":
			spec.Class, err = atoi(v)
		case "gap":
			spec.GapNS, err = parseDur(v)
		case "burst":
			spec.Burst, err = strconv.ParseInt(v, 10, 64)
		case "queue":
			spec.QueueCap, err = atoi(v)
		case "policy":
			spec.Policy, err = admit.ParsePolicy(v)
		default:
			return Spec{}, fmt.Errorf("tenant %s: unknown key %q", spec.Name, k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("tenant %s: %s=%q: %v", spec.Name, k, v, err)
		}
	}
	if spec.GapNS > 0 && spec.Burst == 0 {
		spec.Burst = 1
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// String renders the spec in canonical grammar form: ParseSpec(s.String())
// reproduces s exactly (the fuzz target's round-trip property).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenant:%s,weight=%d,quota=%d", s.Name, s.Weight, s.Quota)
	if s.Class != 0 {
		fmt.Fprintf(&b, ",class=%d", s.Class)
	}
	if s.GapNS > 0 {
		fmt.Fprintf(&b, ",gap=%d,burst=%d", s.GapNS, s.Burst)
	}
	fmt.Fprintf(&b, ",policy=%s", s.Policy)
	if s.QueueCap > 0 {
		fmt.Fprintf(&b, ",queue=%d", s.QueueCap)
	}
	return b.String()
}

func atoi(v string) (int, error) {
	n, err := strconv.ParseInt(v, 10, 32)
	return int(n), err
}

// parseDur parses a virtual duration: bare integers are ns; the ns, us,
// µs, ms, and s suffixes scale accordingly. Virtual time is integer ns, so
// fractional values are rejected.
func parseDur(v string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "ns"):
		v = strings.TrimSuffix(v, "ns")
	case strings.HasSuffix(v, "µs"):
		v, mult = strings.TrimSuffix(v, "µs"), 1_000
	case strings.HasSuffix(v, "us"):
		v, mult = strings.TrimSuffix(v, "us"), 1_000
	case strings.HasSuffix(v, "ms"):
		v, mult = strings.TrimSuffix(v, "ms"), 1_000_000
	case strings.HasSuffix(v, "s"):
		v, mult = strings.TrimSuffix(v, "s"), 1_000_000_000
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 || (mult > 1 && n > (1<<62)/mult) {
		return 0, fmt.Errorf("duration %q out of range", v)
	}
	return n * mult, nil
}
