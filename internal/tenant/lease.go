package tenant

// LeaseTable tracks which tenant holds each chiplet group. Leases are
// elastic: a demanding tenant is first topped up to its quota (the
// guaranteed share), then all demanding tenants grow weight-proportionally
// into whatever live chiplets remain free. Reclamation is lease-by-lease
// and never kills work: Rebalance only flips ownership — in-flight tasks
// on a reclaimed chiplet drain through the normal execution and re-home
// machinery, new placements simply stop targeting it.
//
// The lease lifecycle per chiplet is Free → Granted → Draining → Free:
// "Draining" is the window after a Rebalance transfers or releases a lease
// while tasks dispatched under the old owner still sit in the chiplet's
// worker queues. The table does not model that window explicitly — it is
// an emergent property of never cancelling on reclaim.
//
// All decisions are deterministic functions of the inputs: chiplets are
// scanned in ascending ID order, tenants in ascending index order, and
// every tie-break is total. Not goroutine-safe; the job service drives it
// under its own lock.
type LeaseTable struct {
	owner  []int // chiplet -> tenant index, -1 = free
	held   []int // tenant -> chiplets currently leased
	quota  []int
	weight []int64

	grants, reclaims []int64 // per-tenant lifetime counters
	faultFrees       int64   // leases released because the chiplet died
}

// LeaseEvent is one ownership change from a Rebalance, in decision order.
type LeaseEvent struct {
	// Chiplet is the chiplet whose lease changed.
	Chiplet int
	// From and To are tenant indices; -1 means free. A fault release has
	// To == -1; a reclamation transfer has both >= 0.
	From, To int
}

// NewLeaseTable builds a table over nch chiplets for len(quota) tenants.
// weight drives the elastic-growth share; quota the guaranteed floor.
func NewLeaseTable(nch int, quota []int, weight []int64) *LeaseTable {
	t := &LeaseTable{
		owner:    make([]int, nch),
		held:     make([]int, len(quota)),
		quota:    append([]int(nil), quota...),
		weight:   append([]int64(nil), weight...),
		grants:   make([]int64, len(quota)),
		reclaims: make([]int64, len(quota)),
	}
	for ch := range t.owner {
		t.owner[ch] = -1
	}
	return t
}

// Owner returns the tenant index leasing chiplet ch, or -1.
func (t *LeaseTable) Owner(ch int) int { return t.owner[ch] }

// Owners returns a copy of the chiplet→tenant ownership map.
func (t *LeaseTable) Owners() []int { return append([]int(nil), t.owner...) }

// Held returns how many chiplets tenant ten currently leases.
func (t *LeaseTable) Held(ten int) int { return t.held[ten] }

// Grants and Reclaims return tenant ten's lifetime lease-acquisition and
// lease-loss counts; FaultFrees counts leases released by chiplet death.
func (t *LeaseTable) Grants(ten int) int64   { return t.grants[ten] }
func (t *LeaseTable) Reclaims(ten int) int64 { return t.reclaims[ten] }
func (t *LeaseTable) FaultFrees() int64      { return t.faultFrees }

// Rebalance recomputes the lease assignment at one arbitration point.
// live[ch] reports whether chiplet ch still hosts at least one live worker
// (a park or offline clears it — the fault/power interplay that must
// trigger rebalance, not starvation); demand[i] reports whether tenant i
// has queued or pending work. It returns the ownership changes in the
// order they were decided.
func (t *LeaseTable) Rebalance(live []bool, demand []bool) []LeaseEvent {
	var evs []LeaseEvent
	release := func(ch, to int) {
		from := t.owner[ch]
		if from >= 0 {
			t.held[from]--
			t.reclaims[from]++
		}
		t.owner[ch] = to
		if to >= 0 {
			t.held[to]++
			t.grants[to]++
		}
		evs = append(evs, LeaseEvent{Chiplet: ch, From: from, To: to})
	}

	// 1. Leases on dead chiplets are void: the group lost its workers to a
	// park or offline, so holding the lease would starve the tenant.
	for ch := range t.owner {
		if t.owner[ch] >= 0 && !live[ch] {
			t.faultFrees++
			release(ch, -1)
		}
	}

	// 2. Idle tenants shed elastic surplus (anything past quota) so the
	// capacity returns to the free pool; their guaranteed share stays
	// warm for when demand returns.
	for i := range t.held {
		for j := len(t.owner) - 1; j >= 0 && !demand[i] && t.held[i] > t.quota[i]; j-- {
			if t.owner[j] == i {
				release(j, -1)
			}
		}
	}

	// 3. Guaranteed share: top every demanding tenant up to its quota,
	// first from free live chiplets, then by reclaiming lease-by-lease
	// from the tenant with the most elastic surplus (ties: more held,
	// then higher index), then from idle tenants still holding leases.
	for i := range t.held {
		if !demand[i] {
			continue
		}
		for t.held[i] < t.quota[i] {
			if ch := t.freeLive(live); ch >= 0 {
				release(ch, i)
				continue
			}
			v := t.victim(i, demand)
			if v < 0 {
				break // nothing reclaimable: quotas oversubscribe live capacity
			}
			if ch := t.lastLeased(v, live); ch >= 0 {
				release(ch, i)
				continue
			}
			break
		}
	}

	// 4. Elastic growth: remaining free live chiplets go to demanding
	// tenants one at a time, lowest held-per-weight first, so growth is
	// weight-proportional and deterministic.
	for {
		ch := t.freeLive(live)
		if ch < 0 {
			break
		}
		best := -1
		for i := range t.held {
			if !demand[i] {
				continue
			}
			if best < 0 || int64(t.held[i])*t.weight[best] < int64(t.held[best])*t.weight[i] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		release(ch, best)
	}
	return evs
}

// freeLive returns the lowest-ID free live chiplet, or -1.
func (t *LeaseTable) freeLive(live []bool) int {
	for ch := range t.owner {
		if t.owner[ch] < 0 && live[ch] {
			return ch
		}
	}
	return -1
}

// victim picks the tenant to reclaim one lease from, for the benefit of
// tenant want: most elastic surplus first, then — when no one holds more
// than their quota — an idle tenant still holding leases.
func (t *LeaseTable) victim(want int, demand []bool) int {
	best, bestSurplus := -1, int64(0)
	for i := range t.held {
		if i == want {
			continue
		}
		s := int64(t.held[i] - t.quota[i])
		if s > 0 && (best < 0 || s > bestSurplus ||
			(s == bestSurplus && t.held[i] > t.held[best])) {
			best, bestSurplus = i, s
		}
	}
	if best >= 0 {
		return best
	}
	for i := range t.held {
		if i == want || demand[i] || t.held[i] == 0 {
			continue
		}
		if best < 0 || t.held[i] > t.held[best] {
			best = i
		}
	}
	return best
}

// lastLeased returns tenant ten's highest-ID leased live chiplet, or -1.
func (t *LeaseTable) lastLeased(ten int, live []bool) int {
	for ch := len(t.owner) - 1; ch >= 0; ch-- {
		if t.owner[ch] == ten && live[ch] {
			return ch
		}
	}
	return -1
}
