package tenant

import "testing"

// FuzzParseSpec churns the tenant-spec grammar: no input may panic, and
// every accepted spec must validate, render canonically, and survive a
// parse→String→parse round trip unchanged (the grammar is its own codec).
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"a",
		"tenant:a,weight=3,quota=2",
		"interactive,4,2,class=1",
		"batch,weight=1,quota=1,gap=50us,burst=8,policy=shed",
		"b,gap=2ms,policy=block,queue=64",
		"x,1,0,gap=1000,burst=2,policy=reject",
		"tenant:z-9._,weight=1048576,quota=4096",
		"a,,b", "a,gap=9223372036854775807", "a,weight=-1", ",",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", in, spec, verr)
		}
		s := spec.String()
		again, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", s, in, err)
		}
		if again != spec {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", in, spec, s, again)
		}
	})
}
