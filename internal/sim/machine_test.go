package sim

import (
	"testing"

	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/topology"
)

func testMachine() *Machine {
	return New(Config{Topo: topology.SyntheticDual(2, 4)})
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil topo must panic")
		}
	}()
	New(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	cold := m.Read(0, 0, a, 64)
	if cold < m.Topo.Cost.DRAMLocal {
		t.Errorf("cold read cost %d < DRAM latency %d", cold, m.Topo.Cost.DRAMLocal)
	}
	warm := m.Read(0, 100, a, 64)
	if warm > m.Topo.Cost.L2Hit*2 {
		t.Errorf("warm read cost %d, want ~L2 hit %d", warm, m.Topo.Cost.L2Hit)
	}
	if got := m.PMU.Read(0, pmu.FillDRAMLocal); got != 1 {
		t.Errorf("dram_local fills = %d, want 1", got)
	}
	if got := m.PMU.Read(0, pmu.FillL2); got != 1 {
		t.Errorf("l2 fills = %d, want 1", got)
	}
}

func TestRemoteDRAMClassification(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 1) // homed on node 1
	m.Read(0, 0, a, 64)                   // core 0 lives on node 0
	if got := m.PMU.Read(0, pmu.FillDRAMRemote); got != 1 {
		t.Errorf("dram_remote fills = %d, want 1", got)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 64) // chiplet 0 caches the line
	// Core 4 is on chiplet 1, same socket: must fill from chiplet 0's L3.
	cost := m.Read(4, 100, a, 64)
	if got := m.PMU.Read(4, pmu.FillL3RemoteNear); got != 1 {
		t.Errorf("l3_remote_near fills = %d, want 1", got)
	}
	if cost < m.Topo.Cost.L3RemoteNearHit {
		t.Errorf("transfer cost %d < %d", cost, m.Topo.Cost.L3RemoteNearHit)
	}
}

func TestCrossSocketTransferClassification(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 64)
	// Core 8 is on chiplet 2 = socket 1.
	m.Read(8, 100, a, 64)
	if got := m.PMU.Read(8, pmu.FillL3RemoteSocket); got != 1 {
		t.Errorf("l3_remote_socket fills = %d, want 1", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 64)  // chiplet 0 holds
	m.Read(4, 10, a, 64) // chiplet 1 holds too (shared)
	if !m.L3(0).Contains(uint64(a)>>6) || !m.L3(1).Contains(uint64(a)>>6) {
		t.Fatal("both chiplets must share the line")
	}
	m.Write(0, 20, a, 64) // write upgrade invalidates chiplet 1
	if m.L3(1).Contains(uint64(a) >> 6) {
		t.Error("chiplet 1 copy must be invalidated by the write")
	}
	// Core 4's next read ping-pongs back (cache-to-cache again).
	m.Read(4, 30, a, 64)
	if got := m.PMU.Read(4, pmu.FillL3RemoteNear); got != 2 {
		t.Errorf("ping-pong fills = %d, want 2", got)
	}
}

func TestL2HitRequiresL3Inclusion(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 64)
	// Remote write invalidates chiplet 0's L3 copy; core 0's stale L2
	// entry must not produce an L2 hit afterwards.
	m.Write(4, 10, a, 64)
	m.Read(0, 20, a, 64)
	if got := m.PMU.Read(0, pmu.FillL2); got != 0 {
		t.Errorf("stale L2 hit recorded: %d", got)
	}
	if got := m.PMU.Read(0, pmu.FillL3RemoteNear); got != 1 {
		t.Errorf("expected cache-to-cache refill, got %d", got)
	}
}

func TestCapacityEvictionReachesDRAM(t *testing.T) {
	m := testMachine()     // synthetic: L3 = 64 KiB per chiplet
	size := int64(1 << 20) // 1 MiB >> L3
	a := m.Space.Alloc(size, mem.Bind, 0)
	m.Read(0, 0, a, size)
	before := m.PMU.Read(0, pmu.FillDRAMLocal)
	// Second pass: working set exceeds cache, must still miss heavily.
	m.Read(0, 1_000_000, a, size)
	after := m.PMU.Read(0, pmu.FillDRAMLocal)
	if after-before < size/64/2 {
		t.Errorf("thrashing pass had only %d DRAM fills, want >= %d", after-before, size/64/2)
	}
}

func TestSmallWorkingSetStaysCached(t *testing.T) {
	m := testMachine()
	size := int64(16 << 10) // 16 KiB < 64 KiB L3
	a := m.Space.Alloc(size, mem.Bind, 0)
	m.Read(0, 0, a, size)
	before := m.PMU.Read(0, pmu.FillDRAMLocal)
	m.Read(0, 1_000_000, a, size)
	after := m.PMU.Read(0, pmu.FillDRAMLocal)
	if after != before {
		t.Errorf("cached pass caused %d extra DRAM fills", after-before)
	}
}

func TestSamplingExtrapolatesCounters(t *testing.T) {
	m := New(Config{Topo: topology.SyntheticDual(2, 4), SampleShift: 3})
	if m.SampleFactor() != 8 {
		t.Fatalf("SampleFactor = %d", m.SampleFactor())
	}
	size := int64(64 << 10)
	a := m.Space.Alloc(size, mem.Bind, 0)
	m.Read(0, 0, a, size)
	fills := m.PMU.Read(0, pmu.FillDRAMLocal)
	lines := size / 64
	// Extrapolated fills should approximate the true line count.
	if fills < lines/2 || fills > lines*2 {
		t.Errorf("extrapolated fills = %d, want ~%d", fills, lines)
	}
}

func TestSampledCostApproximatesExact(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	exact := New(Config{Topo: topo})
	sampled := New(Config{Topo: topo, SampleShift: 3})
	size := int64(256 << 10)
	ae := exact.Space.Alloc(size, mem.Bind, 0)
	as := sampled.Space.Alloc(size, mem.Bind, 0)
	ce := exact.Read(0, 0, ae, size)
	cs := sampled.Read(0, 0, as, size)
	ratio := float64(cs) / float64(ce)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("sampled/exact cost ratio = %.2f, want within [0.5, 2.0]", ratio)
	}
}

func TestAccessZeroSize(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(64, mem.Bind, 0)
	if c := m.Read(0, 0, a, 0); c != 0 {
		t.Errorf("zero-size access cost %d", c)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 100)
	m.Write(0, 0, a, 200)
	if got := m.PMU.Read(0, pmu.BytesRead); got != 100 {
		t.Errorf("BytesRead = %d, want 100", got)
	}
	if got := m.PMU.Read(0, pmu.BytesWritten); got != 200 {
		t.Errorf("BytesWritten = %d, want 200", got)
	}
}

func TestFlushCaches(t *testing.T) {
	m := testMachine()
	a := m.Space.Alloc(4096, mem.Bind, 0)
	m.Read(0, 0, a, 64)
	m.FlushCaches()
	if m.L3(0).Contains(uint64(a) >> 6) {
		t.Error("flushed cache still holds line")
	}
	cost := m.Read(0, 100, a, 64)
	if cost < m.Topo.Cost.DRAMLocal {
		t.Errorf("post-flush read cost %d, want cold miss", cost)
	}
}

func TestLocalVsDistributedCacheEffect(t *testing.T) {
	// The §2.3 microbenchmark in miniature: a working set that exceeds one
	// chiplet's L3 but fits in two is cheaper to process from two chiplets
	// than from one on the second pass.
	topo := topology.Synthetic(4, 2)
	size := int64(96 << 10) // 1.5x one chiplet's 64 KiB L3

	run := func(cores []topology.CoreID) int64 {
		m := New(Config{Topo: topo})
		a := m.Space.Alloc(size, mem.Bind, 0)
		per := size / int64(len(cores))
		// Warm-up pass, then measured pass (as in Fig. 5's setup).
		for pass := 0; pass < 2; pass++ {
			for i, c := range cores {
				m.Access(c, int64(pass)*10_000_000, a+mem.Addr(int64(i)*per), per, false)
			}
		}
		var total int64
		for i, c := range cores {
			total += m.Access(c, 20_000_000, a+mem.Addr(int64(i)*per), per, false)
		}
		return total
	}

	local := run([]topology.CoreID{0, 1})       // one chiplet
	distributed := run([]topology.CoreID{0, 2}) // two chiplets
	if distributed >= local {
		t.Errorf("distributed (%d) must beat local (%d) when working set exceeds one L3", distributed, local)
	}
}

// TestCostClassOrdering checks the fundamental monotonicity of the access
// cost model: with cold caches, a local DRAM fill is cheaper than a remote
// one, and a local L3 hit is cheaper than any cache-to-cache transfer.
func TestCostClassOrdering(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	m := New(Config{Topo: topo})
	local := m.Space.Alloc(4096, mem.Bind, 0)
	remote := m.Space.Alloc(4096, mem.Bind, 1)

	cLocalDRAM := m.Read(0, 0, local, 64)
	cRemoteDRAM := m.Read(0, 0, remote, 64)
	if cLocalDRAM >= cRemoteDRAM {
		t.Errorf("local DRAM (%d) must be cheaper than remote DRAM (%d)", cLocalDRAM, cRemoteDRAM)
	}

	// Warm local L3, then compare hit classes.
	m.Read(0, 100, local, 64)
	cL3Local := m.Read(1, 200, local, 64) // same chiplet as core 0
	// Chiplet 1 (core 4): cache-to-cache transfer.
	cC2C := m.Read(4, 300, local, 64)
	if cL3Local >= cC2C {
		t.Errorf("local L3 hit (%d) must be cheaper than cache-to-cache (%d)", cL3Local, cC2C)
	}
	// Cross-socket transfer costs even more: chiplet 2 is socket 1.
	m2 := New(Config{Topo: topo})
	l2 := m2.Space.Alloc(4096, mem.Bind, 0)
	m2.Read(0, 0, l2, 64)
	near := m2.Read(4, 100, l2, 64)
	m3 := New(Config{Topo: topo})
	l3a := m3.Space.Alloc(4096, mem.Bind, 0)
	m3.Read(0, 0, l3a, 64)
	cross := m3.Read(8, 100, l3a, 64)
	if near >= cross {
		t.Errorf("intra-socket transfer (%d) must be cheaper than cross-socket (%d)", near, cross)
	}
}

// TestStreamingCheaperThanRandom checks the MLP model: streaming a block is
// cheaper per line than touching the same lines in single-line accesses.
func TestStreamingCheaperThanRandom(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	size := int64(1 << 20) // far beyond all caches

	mStream := New(Config{Topo: topo})
	aS := mStream.Space.Alloc(size, mem.Bind, 0)
	streamed := mStream.Read(0, 0, aS, size)

	mRand := New(Config{Topo: topo})
	aR := mRand.Space.Alloc(size, mem.Bind, 0)
	var single int64
	var tnow int64
	for off := int64(0); off < size; off += 64 {
		c := mRand.Read(0, tnow, aR+mem.Addr(off), 64)
		single += c
		tnow += c
	}
	if streamed*2 >= single {
		t.Errorf("streamed read (%d) should be well under serialized reads (%d)", streamed, single)
	}
}
