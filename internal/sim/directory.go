// Coherence directory: the simulated I/O-die probe filter.
//
// Real chiplet CPUs do not broadcast-snoop every L3 slice on a miss; the
// I/O die keeps a directory (AMD's probe filter, Intel's snoop filter)
// mapping lines to the set of chiplets that hold them, so a miss probes
// only actual holders and a write invalidates only actual sharers. The
// directory here plays the same role for the simulator's hot path: it
// replaces the O(chiplets × ways) tag-array scans in closestHolder and
// invalidateOthers with an O(holders) walk over a presence bitmask, and
// the L2-inclusivity check with a single bit test.
//
// Layout: two levels, tuned so the steady-state fast path takes no
// exclusive lock and performs one atomic word operation per event.
//
//   - Lines group into pages of dirPageLines consecutive lines. A page is
//     a flat array of per-line presence bitmasks (uint64, so any topology
//     up to 64 chiplets is covered — every preset is 16 or fewer), each
//     updated with lock-free atomics. Contiguous streaming runs therefore
//     walk one hot page sequentially instead of hashing every line.
//   - Page keys hash onto dirShards shards, each a small RWMutex-guarded
//     map from page key to page. Lookups take the read lock only; the
//     write lock is taken once per page lifetime (creation) and on reset.
//     Sharding keeps concurrent simulated cores from serializing on one
//     lock even when they fault pages in simultaneously.
//
// Memory: pages are created on first touch of their address range and
// reclaimed only by reset (FlushCaches), so the directory footprint is
// touched-address-space/8 — a few MB for the scaled experiments, tens of
// MB for paper-sized runs — and the live-bit population is bounded by the
// machine's aggregate L3 capacity.
//
// Exactness: the directory is a mirror of L3 tag-array state, not an
// approximation. Every mutation of an L3 goes through exactly one of
// Insert (which reports its victim exactly once, see cache.Insert),
// Invalidate, or Clear, and the Machine updates the directory at each of
// those points with an atomic read-modify-write of the line's mask. Under
// a single-threaded access sequence the directory is therefore
// bit-identical to a brute-force scan of the tag arrays
// (TestDirectoryMatchesScanState proves this); under concurrent access it
// tolerates the same benign races the lock-free tag arrays already
// tolerate — a racing insert pair on one cache set can leave a stale
// presence bit, which perturbs one transfer-latency estimate and nothing
// else, the same class of statistically irrelevant perturbation as the
// documented lost-LRU-update race.
package sim

import (
	"sync"
	"sync/atomic"
)

// dirShardBits selects 128 shards for the page maps: enough to spread any
// preset's core count with negligible collision, small enough to stay
// cache-resident.
const dirShardBits = 7

// dirShards is the shard count (a power of two so shard selection is a
// multiply-shift, no division).
const dirShards = 1 << dirShardBits

// dirPageShift selects 256-line pages (16 KiB of simulated address space,
// 2 KiB of directory): big enough that streaming runs amortize the page
// lookup, small enough that sparse access patterns don't balloon memory.
const dirPageShift = 8

// dirPageLines is the number of lines per page.
const dirPageLines = 1 << dirPageShift

// maxDirChiplets is the widest topology a uint64 presence mask covers.
const maxDirChiplets = 64

// dirPage holds the presence bitmasks of dirPageLines consecutive lines.
type dirPage struct {
	masks [dirPageLines]atomic.Uint64
}

// dirShard is one lock domain of the page registry, padded so
// neighbouring shards' locks do not false-share.
type dirShard struct {
	mu    sync.RWMutex
	pages map[uint64]*dirPage
	_     [64 - 24 - 8]byte
}

// directory maps cache-line numbers to per-chiplet presence bitmasks.
type directory struct {
	shards [dirShards]dirShard
}

// newDirectory builds an empty directory.
func newDirectory() *directory {
	d := &directory{}
	for i := range d.shards {
		d.shards[i].pages = make(map[uint64]*dirPage, 8)
	}
	return d
}

// dirCache is a one-entry page cache owned by a single simulated core.
// Pages are created once and live until reset, so a cached pointer stays
// valid for the machine's whole run; Machine.FlushCaches clears the
// caches together with the directory. It turns the per-access page lookup
// into a key compare for the common case (consecutive or repeated lines).
type dirCache struct {
	key  uint64
	page *dirPage
}

// page returns the page covering line, creating it when create is set and
// returning nil otherwise. Fibonacci hashing spreads page keys over the
// shards; the create path double-checks under the write lock.
func (d *directory) page(line uint64, create bool) *dirPage {
	pk := line >> dirPageShift
	s := &d.shards[(pk*0x9E3779B97F4A7C15)>>(64-dirShardBits)]
	s.mu.RLock()
	p := s.pages[pk]
	s.mu.RUnlock()
	if p != nil || !create {
		return p
	}
	s.mu.Lock()
	if p = s.pages[pk]; p == nil {
		p = new(dirPage)
		s.pages[pk] = p
	}
	s.mu.Unlock()
	return p
}

// pageFor is page with a per-core cache in front: the hot path of every
// directory operation that targets the line currently being accessed.
func (d *directory) pageFor(line uint64, create bool, c *dirCache) *dirPage {
	pk := line >> dirPageShift
	if c.page != nil && c.key == pk {
		return c.page
	}
	p := d.page(line, create)
	if p != nil {
		c.key, c.page = pk, p
	}
	return p
}

// slot returns the mask word of line within page p.
func (p *dirPage) slot(line uint64) *atomic.Uint64 {
	return &p.masks[line&(dirPageLines-1)]
}

// add records that chiplet ch now holds line. c is the calling core's
// page cache.
func (d *directory) add(line uint64, ch int, c *dirCache) {
	atomicOr(d.pageFor(line, true, c).slot(line), 1<<uint(ch))
}

// remove records that chiplet ch no longer holds line (eviction or
// invalidation). Removing an absent bit is a no-op. Uncached: victims are
// scattered lines, caching them would only thrash the caller's entry.
func (d *directory) remove(line uint64, ch int) {
	if p := d.page(line, false); p != nil {
		atomicAndNot(p.slot(line), 1<<uint(ch))
	}
}

// has reports whether chiplet ch holds line — the O(1) replacement for the
// L2-inclusivity Contains probe.
func (d *directory) has(line uint64, ch int, c *dirCache) bool {
	return d.holders(line, c)&(1<<uint(ch)) != 0
}

// holders returns the presence mask of line.
func (d *directory) holders(line uint64, c *dirCache) uint64 {
	if p := d.pageFor(line, false, c); p != nil {
		return p.slot(line).Load()
	}
	return 0
}

// takeOthers atomically clears every holder of line except self and
// returns the mask of cleared bits — the ownership-upgrade step of a
// write. The caller invalidates the corresponding tag arrays.
func (d *directory) takeOthers(line uint64, self int, c *dirCache) uint64 {
	p := d.pageFor(line, false, c)
	if p == nil {
		return 0
	}
	w := p.slot(line)
	selfBit := uint64(1) << uint(self)
	for {
		v := w.Load()
		others := v &^ selfBit
		if others == 0 {
			return 0
		}
		if w.CompareAndSwap(v, v&selfBit) {
			return others
		}
	}
}

// reset drops every page; paired with Machine.FlushCaches.
func (d *directory) reset() {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		clear(s.pages)
		s.mu.Unlock()
	}
}

// forEach calls fn for every line with a non-empty presence mask
// (diagnostics and tests).
func (d *directory) forEach(fn func(line, mask uint64)) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for pk, p := range s.pages {
			for j := range p.masks {
				if v := p.masks[j].Load(); v != 0 {
					fn(pk<<dirPageShift|uint64(j), v)
				}
			}
		}
		s.mu.RUnlock()
	}
}

// lines returns the number of tracked lines (diagnostics and tests).
func (d *directory) lines() int {
	n := 0
	d.forEach(func(uint64, uint64) { n++ })
	return n
}

// atomicOr sets bits in w atomically. (atomic.Uint64.Or needs go 1.23;
// the module targets 1.22, so these are CAS loops — uncontended they cost
// the same one RMW.)
func atomicOr(w *atomic.Uint64, bits uint64) {
	for {
		v := w.Load()
		if v&bits == bits || w.CompareAndSwap(v, v|bits) {
			return
		}
	}
}

// atomicAndNot clears bits in w atomically.
func atomicAndNot(w *atomic.Uint64, bits uint64) {
	for {
		v := w.Load()
		if v&bits == 0 || w.CompareAndSwap(v, v&^bits) {
			return
		}
	}
}
