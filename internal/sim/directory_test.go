package sim

import (
	"sync"
	"testing"

	"charm/internal/cache"
	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/rng"
	"charm/internal/topology"
)

// TestDirectoryMatchesScanState drives randomized access sequences and
// repeatedly asserts the exactness invariant: the directory's presence
// bitmask equals a brute-force scan of every chiplet's tag array, bit for
// bit. The directory is a mirror, not an approximation.
func TestDirectoryMatchesScanState(t *testing.T) {
	for _, tc := range []struct {
		name  string
		topo  *topology.Topology
		shift uint
	}{
		{"dual-2x4", topology.SyntheticDual(2, 4), 0},
		{"wide-16x1", topology.Synthetic(16, 1), 0},
		{"sampled", topology.SyntheticDual(2, 4), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := New(Config{Topo: tc.topo, SampleShift: tc.shift})
			if m.dir == nil {
				t.Fatal("directory must be enabled by default")
			}
			const regionSize = 1 << 16
			region := m.Space.Alloc(regionSize, mem.Interleave, 0)
			firstLine := uint64(region) >> cache.LineShift
			lastLine := (uint64(region) + regionSize - 1) >> cache.LineShift
			check := func() {
				t.Helper()
				scratch := &dirCache{}
				for line := firstLine; line <= lastLine; line++ {
					mask := m.dir.holders(line, scratch)
					for ch := range m.l3 {
						scan := m.l3[ch].Contains(line)
						dir := mask&(1<<uint(ch)) != 0
						if scan != dir {
							t.Fatalf("line %#x chiplet %d: directory=%v tag scan=%v", line, ch, dir, scan)
						}
					}
				}
			}
			s := uint64(0xC0FFEE)
			cores := m.Topo.NumCores()
			var now int64
			for i := 0; i < 5000; i++ {
				core := topology.CoreID(rng.Intn(&s, cores))
				off := int64(rng.Uint64n(&s, regionSize-2048))
				size := int64(rng.Uint64n(&s, 2048)) + 1
				write := rng.Uint64n(&s, 3) == 0
				now += m.Access(core, now, region+mem.Addr(off), size, write)
				if i%500 == 499 {
					check()
				}
			}
			check()
			m.FlushCaches()
			if n := m.dir.lines(); n != 0 {
				t.Fatalf("directory still tracks %d lines after FlushCaches", n)
			}
		})
	}
}

// TestDirectoryEquivalentToScan runs the identical randomized sequence on
// a directory machine and a scan machine and requires identical per-access
// costs and identical PMU counters: the directory changes the complexity
// of coherence lookups, never their outcome.
func TestDirectoryEquivalentToScan(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	const regionSize = 1 << 16
	const ops = 8000
	run := func(noDir bool) ([]int64, [][]int64) {
		m := New(Config{Topo: topo, NoDirectory: noDir})
		if m.DirectoryEnabled() == noDir {
			t.Fatalf("DirectoryEnabled() = %v with NoDirectory=%v", m.DirectoryEnabled(), noDir)
		}
		region := m.Space.Alloc(regionSize, mem.Interleave, 0)
		s := uint64(7)
		cores := m.Topo.NumCores()
		var now int64
		costs := make([]int64, 0, ops)
		for i := 0; i < ops; i++ {
			core := topology.CoreID(rng.Intn(&s, cores))
			off := int64(rng.Uint64n(&s, regionSize-2048))
			size := int64(rng.Uint64n(&s, 2048)) + 1
			write := rng.Uint64n(&s, 3) == 0
			c := m.Access(core, now, region+mem.Addr(off), size, write)
			costs = append(costs, c)
			now += c
		}
		counters := make([][]int64, cores)
		for c := 0; c < cores; c++ {
			counters[c] = make([]int64, pmu.NumEvents)
			for e := 0; e < pmu.NumEvents; e++ {
				counters[c][e] = m.PMU.Read(c, pmu.Event(e))
			}
		}
		return costs, counters
	}
	dirCosts, dirPMU := run(false)
	scanCosts, scanPMU := run(true)
	for i := range dirCosts {
		if dirCosts[i] != scanCosts[i] {
			t.Fatalf("access %d: directory cost %d != scan cost %d", i, dirCosts[i], scanCosts[i])
		}
	}
	for c := range dirPMU {
		for e := range dirPMU[c] {
			if dirPMU[c][e] != scanPMU[c][e] {
				t.Fatalf("core %d event %v: directory %d != scan %d",
					c, pmu.Event(e), dirPMU[c][e], scanPMU[c][e])
			}
		}
	}
}

// conflictEvict fills victim's L3 set from core filler until victim's line
// is evicted by capacity pressure, and returns the virtual time after the
// fills. The filler lines alias the same L3 set (stride = numSets lines).
func conflictEvict(t *testing.T, m *Machine, filler topology.CoreID, region mem.Addr, line uint64, now int64) int64 {
	t.Helper()
	l3 := m.L3(m.Topo.ChipletOf(filler))
	stride := uint64(l3.Sets()) << cache.LineShift
	for k := 1; k <= l3.Ways()+2; k++ {
		a := region + mem.Addr(uint64(k)*stride)
		now += m.Read(filler, now, a, 64)
	}
	if l3.Contains(line) {
		t.Fatal("capacity pressure failed to evict the victim line")
	}
	return now
}

// TestEvictionLeavesDirectory checks eviction propagation: a line evicted
// from an L3 by capacity pressure must drop out of the directory, stop
// being found by closestHolder (the next remote access goes to DRAM, not
// cache-to-cache), and stop validating the L2-inclusivity fast path even
// while the stale L2 copy survives.
func TestEvictionLeavesDirectory(t *testing.T) {
	// Synthetic(2,2): chiplet 0 = cores {0,1}, chiplet 1 = cores {2,3};
	// 64 KiB 8-way L3 slices, 8 KiB 4-way L2s, one NUMA node.
	m := New(Config{Topo: topology.Synthetic(2, 2)})
	region := m.Space.Alloc(1<<20, mem.Bind, 0)
	line := uint64(region) >> cache.LineShift

	// Part 1: closestHolder must not find an evicted line.
	now := m.Read(0, 0, region, 64) // chiplet 0 caches the line
	if !m.dir.has(line, 0, &dirCache{}) {
		t.Fatal("directory must track the filled line")
	}
	// Core 1 shares chiplet 0's L3: its conflict fills evict the line from
	// L3(0) without touching core 0's L2.
	now = conflictEvict(t, m, 1, region, line, now)
	if m.dir.has(line, 0, &dirCache{}) {
		t.Fatal("evicted line must drop out of the directory")
	}
	// Chiplet 1's read must fill from DRAM — there is no holder left.
	now += m.Read(2, now, region, 64)
	if got := m.PMU.Read(2, pmu.FillL3RemoteNear); got != 0 {
		t.Errorf("closestHolder found an evicted line: %d c2c fills", got)
	}
	if got := m.PMU.Read(2, pmu.FillDRAMLocal); got != 1 {
		t.Errorf("expected a DRAM refill after eviction, got %d", got)
	}

	// Part 2: the L2-inclusivity fast path must reject a stale L2 copy.
	m2 := New(Config{Topo: topology.Synthetic(2, 2)})
	region2 := m2.Space.Alloc(1<<20, mem.Bind, 0)
	line2 := uint64(region2) >> cache.LineShift
	now = m2.Read(0, 0, region2, 64) // line in L2(0) and L3(0)
	now = conflictEvict(t, m2, 1, region2, line2, now)
	if !m2.L2Of(0).Contains(line2) {
		t.Fatal("test setup: core 0's L2 copy must survive the L3 conflict fills")
	}
	hitsBefore := m2.PMU.Read(0, pmu.FillL2)
	m2.Read(0, now, region2, 64)
	if got := m2.PMU.Read(0, pmu.FillL2); got != hitsBefore {
		t.Errorf("stale L2 hit counted after L3 eviction: %d -> %d", hitsBefore, got)
	}
	if got := m2.PMU.Read(0, pmu.FillDRAMLocal); got != 2 {
		t.Errorf("expected a DRAM refill through the broken inclusivity, got %d", got)
	}
}

// TestMachineAccessRaceStress hammers Machine.Access from one goroutine
// per simulated core over one shared region — the concurrency contract of
// the machine — and checks every returned cost is positive. Run under
// -race (the Makefile verify target does) it also proves the sharded
// directory introduces no data races.
func TestMachineAccessRaceStress(t *testing.T) {
	m := New(Config{Topo: topology.SyntheticDual(2, 4)})
	const regionSize = 64 << 10
	region := m.Space.Alloc(regionSize, mem.Interleave, 0)
	iters := 4000
	if testing.Short() {
		iters = 500
	}
	var wg sync.WaitGroup
	for c := 0; c < m.Topo.NumCores(); c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := rng.Seed(42, uint64(c))
			var now int64
			for i := 0; i < iters; i++ {
				off := int64(rng.Uint64n(&s, regionSize-2048))
				size := int64(rng.Uint64n(&s, 2048)) + 1
				write := rng.Uint64n(&s, 4) == 0
				cost := m.Access(topology.CoreID(c), now, region+mem.Addr(off), size, write)
				if cost <= 0 {
					t.Errorf("core %d op %d: non-positive cost %d", c, i, cost)
					return
				}
				now += cost
			}
		}(c)
	}
	wg.Wait()
	// After the dust settles, every directory bit must refer to a line the
	// corresponding tag array could plausibly hold; exact equality is only
	// guaranteed single-threaded, but the directory must never be left
	// tracking lines outside the accessed region.
	first := uint64(region) >> cache.LineShift
	last := (uint64(region) + regionSize - 1) >> cache.LineShift
	m.dir.forEach(func(line, mask uint64) {
		if line < first || line > last {
			t.Errorf("directory tracks line %#x outside the accessed region [%#x,%#x]", line, first, last)
		}
	})
}
