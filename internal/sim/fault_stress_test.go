package sim

import (
	"sync"
	"testing"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/rng"
	"charm/internal/topology"
)

// TestMachineAccessRaceStressFaults is the access-stress test with a fault
// plan armed: concurrent accessors charge memory channels and fabric links
// whose capacities are being degraded by brownout and thermal windows. Run
// under -race (the Makefile verify target matches this name too) it proves
// the fault hooks add no data races and never produce non-positive costs.
func TestMachineAccessRaceStressFaults(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	sched := fault.New("stress", 3).
		LinkBrownout(0, 0, fault.Forever, 6).
		LinkBrownout(2, 10_000, 4_000_000, 3).
		SocketBrownout(1, 0, 2_000_000, 4).
		MemBrownout(0, 0, fault.Forever, 2).
		MemBrownout(1, 500_000, 3_000_000, 8).
		ThermalThrottle(3, 0, fault.Forever, 2)
	plan, err := sched.Compile(topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := New(Config{Topo: topo})
	m.SetFaultPlan(plan)
	const regionSize = 64 << 10
	region := m.Space.Alloc(regionSize, mem.Interleave, 0)
	iters := 4000
	if testing.Short() {
		iters = 500
	}
	cores := m.Topo.NumCores()
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := rng.Seed(42, uint64(c))
			var now int64
			for i := 0; i < iters; i++ {
				off := int64(rng.Uint64n(&s, regionSize-2048))
				size := int64(rng.Uint64n(&s, 2048)) + 1
				write := rng.Uint64n(&s, 4) == 0
				cost := m.Access(topology.CoreID(c), now, region+mem.Addr(off), size, write)
				if cost <= 0 {
					t.Errorf("core %d op %d: non-positive cost %d", c, i, cost)
					return
				}
				if i%64 == 0 {
					// Exercise the browned-out message path concurrently.
					dst := topology.CoreID(int(rng.Uint64n(&s, uint64(cores))))
					if d := m.Fabric.MessageDelay(topology.CoreID(c), dst, now, 64); d < 0 {
						t.Errorf("core %d op %d: negative message delay %d", c, i, d)
						return
					}
				}
				now += cost
			}
		}(c)
	}
	wg.Wait()
}
