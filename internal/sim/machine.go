// Package sim composes the substrate packages (topology, mem, cache,
// fabric, pmu) into a Machine: a cost-model simulator of a chiplet-based
// server. Workloads drive it with Access calls against simulated addresses;
// the machine returns virtual-nanosecond costs and maintains the PMU
// counters the CHARM runtime schedules on.
//
// Coherence is modeled at L3 granularity: chiplet L3 slices hold (possibly
// shared) copies of lines; a write invalidates every other chiplet's copy,
// so read-write sharing across chiplets produces the cache-to-cache
// ping-pong traffic that chiplet-aware placement avoids. L2s are private
// filters kept functionally inclusive in the local L3: an L2 hit counts
// only while the local L3 still holds the line. Presence is tracked by a
// sharded coherence directory (directory.go) modeling the I/O die's probe
// filter, so holder lookup and invalidation touch only actual sharers
// instead of broadcast-scanning every chiplet's tag array.
package sim

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"charm/internal/cache"
	"charm/internal/fabric"
	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/pmu"
	"charm/internal/topology"
)

// Config parameterizes a Machine.
type Config struct {
	// Topo is the machine layout; required.
	Topo *topology.Topology
	// Fabric selects the interconnect topology. The zero value is
	// fabric.KindStar, the original hub-and-spoke model.
	Fabric fabric.Kind
	// SampleShift simulates only 1/2^SampleShift of cache lines exactly;
	// other lines are charged the core's recent average cost. 0 = exact.
	SampleShift uint
	// WindowNS is the bandwidth accounting window (0 = default 10 µs).
	WindowNS int64
	// MLP is the memory-level parallelism of contiguous accesses: within
	// one multi-line Access, miss latencies after the first line overlap
	// and are charged latency/MLP (bandwidth queueing is never divided).
	// This is what makes streaming workloads bandwidth-bound rather than
	// latency-bound, the §2.2 bottleneck. 0 selects 8.
	MLP int64
	// NoDirectory disables the coherence directory (the simulated IOD
	// probe filter, see directory.go) and falls back to broadcast
	// tag-array scans. The two modes are behaviourally identical; the
	// flag exists for the directory/scan cross-check tests and the
	// before/after benchmarks.
	NoDirectory bool
}

// Machine is a simulated chiplet server. All methods are safe for
// concurrent use by one goroutine per simulated core.
type Machine struct {
	Topo   *topology.Topology
	Space  *mem.Space
	DRAM   *mem.DRAM
	Fabric fabric.Fabric
	PMU    *pmu.PMU

	l2 []*cache.Cache // per core
	l3 []*cache.Cache // per chiplet

	// dir is the coherence directory mirroring L3 presence (the IOD
	// probe filter). nil selects broadcast tag-array scans — only when
	// Config.NoDirectory is set or the topology exceeds 64 chiplets.
	dir *directory

	sampleShift  uint
	sampleFactor int64
	mlp          int64

	// accMilli[ch] is chiplet ch's kind access-cost multiplier in
	// milli-units, nil on homogeneous machines so the baseline access
	// path is arithmetically untouched.
	accMilli []int64

	// avg holds per-core scratch state — the EWMA cost of recent sampled
	// line accesses (charged to unsampled lines) and the core's directory
	// page cache. Owner-core access only; padded against false sharing.
	avg []coreScratch

	// faults is the compiled fault plan armed via SetFaultPlan (nil = a
	// permanently healthy machine).
	faults *fault.Plan
}

// SetFaultPlan arms a compiled fault plan on the machine's shared
// resources: fabric links and memory channels degrade per the plan's
// windows, evaluated at each charge's own virtual time. Core-offline
// windows are not interpreted here — the runtime layer owns worker
// placement and queries the plan directly. Call before the machine starts
// executing; a nil plan restores healthy behaviour.
func (m *Machine) SetFaultPlan(p *fault.Plan) {
	m.faults = p
	m.Fabric.SetFaultPlan(p)
	m.DRAM.SetFaultPlan(p)
}

// FaultPlan returns the armed fault plan (nil when healthy).
func (m *Machine) FaultPlan() *fault.Plan { return m.faults }

type coreScratch struct {
	v   int64
	dir dirCache
	_   [64 - 8 - 16]byte
}

// New builds a Machine. It panics on an invalid topology, which indicates a
// configuration programming error.
func New(cfg Config) *Machine {
	t := cfg.Topo
	if t == nil {
		panic("sim: Config.Topo is required")
	}
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	mlp := cfg.MLP
	if mlp <= 0 {
		mlp = 8
	}
	m := &Machine{
		Topo:         t,
		Space:        mem.NewSpace(t),
		DRAM:         mem.NewDRAM(t, cfg.WindowNS),
		Fabric:       fabric.Build(cfg.Fabric, t, cfg.WindowNS),
		PMU:          pmu.New(t.NumCores()),
		sampleShift:  cfg.SampleShift,
		sampleFactor: 1 << cfg.SampleShift,
		mlp:          mlp,
		avg:          make([]coreScratch, t.NumCores()),
	}
	m.l2 = make([]*cache.Cache, t.NumCores())
	for i := range m.l2 {
		if t.L2PerCore > 0 {
			m.l2[i] = cache.New(t.L2PerCore, t.L2Ways, cfg.SampleShift)
		}
	}
	m.l3 = make([]*cache.Cache, t.NumChiplets())
	for i := range m.l3 {
		m.l3[i] = cache.New(t.L3PerChiplet, t.L3Ways, cfg.SampleShift)
	}
	if !cfg.NoDirectory && t.NumChiplets() <= maxDirChiplets {
		m.dir = newDirectory()
	}
	if t.Heterogeneous() {
		m.accMilli = make([]int64, t.NumChiplets())
		for ch := range m.accMilli {
			m.accMilli[ch] = t.AccessMilli(topology.ChipletID(ch))
		}
	}
	for i := range m.avg {
		m.avg[i].v = scaleAccess(t.Cost.L2Hit, m.coreAccMilli(topology.CoreID(i)))
	}
	return m
}

// coreAccMilli returns the access-cost multiplier of the chiplet hosting
// core (1000 on homogeneous machines).
func (m *Machine) coreAccMilli(core topology.CoreID) int64 {
	if m.accMilli == nil {
		return 1000
	}
	return m.accMilli[m.Topo.ChipletOf(core)]
}

// scaleAccess applies a chiplet kind's access multiplier to a cost. The
// 1000 fast path leaves the cost untouched — heterogeneity must never
// perturb homogeneous replays — and scaled costs floor at 1 ns so the
// EWMA and hit costs stay positive.
func scaleAccess(cost, milli int64) int64 {
	if milli == 1000 {
		return cost
	}
	c := cost * milli / 1000
	if c < 1 {
		c = 1
	}
	return c
}

// SampleFactor returns 2^SampleShift, the extrapolation factor applied to
// PMU fill counters.
func (m *Machine) SampleFactor() int64 { return m.sampleFactor }

// Instrument registers the machine's telemetry with reg so one snapshot
// shows the full simulated state: every PMU counter aggregated per
// chiplet, per-chiplet L3 hit/miss/eviction counts, per-link fabric
// occupancy, and per-channel memory bandwidth. All machine metrics are
// snapshot-time funcs or charge-path counters — nothing is added to the
// access fast path beyond what the charge paths already do.
func (m *Machine) Instrument(reg *obs.Registry) {
	t := m.Topo
	for e := pmu.Event(0); int(e) < pmu.NumEvents; e++ {
		name := "charm_pmu_" + strings.ReplaceAll(e.String(), ".", "_") + "_total"
		help := "PMU event " + e.String() + " summed over the chiplet's cores."
		for ch := 0; ch < t.NumChiplets(); ch++ {
			cores := t.CoresOfChiplet(topology.ChipletID(ch))
			reg.Func(name, help, obs.KindCounter,
				obs.Labels{"chiplet": strconv.Itoa(ch)}, func(int64) float64 {
					var s int64
					for _, c := range cores {
						s += m.PMU.Read(int(c), e)
					}
					return float64(s)
				})
		}
	}
	for ch := range m.l3 {
		c := m.l3[ch]
		l := obs.Labels{"chiplet": strconv.Itoa(ch)}
		reg.Func("charm_l3_hits_total", "L3 slice lookup hits.", obs.KindCounter, l,
			func(int64) float64 { h, _ := c.Stats(); return float64(h) })
		reg.Func("charm_l3_misses_total", "L3 slice lookup misses.", obs.KindCounter, l,
			func(int64) float64 { _, ms := c.Stats(); return float64(ms) })
		reg.Func("charm_l3_evictions_total", "L3 slice capacity evictions.", obs.KindCounter, l,
			func(int64) float64 { return float64(c.Evictions()) })
	}
	m.Fabric.Instrument(reg)
	m.DRAM.Instrument(reg)
}

// Access simulates core touching [addr, addr+size) at virtual time t and
// returns the total cost in nanoseconds. write selects the coherence
// action. Size may span many lines; sampled lines are simulated exactly and
// the rest charged the core's running average cost.
func (m *Machine) Access(core topology.CoreID, t int64, addr mem.Addr, size int64, write bool) int64 {
	if size <= 0 {
		return 0
	}
	first := uint64(addr) >> cache.LineShift
	last := (uint64(addr) + uint64(size) - 1) >> cache.LineShift
	var cost int64
	mask := uint64(m.sampleFactor - 1)
	acc := m.coreAccMilli(core)
	// Contiguous multi-line accesses pipeline their misses (hardware
	// prefetch + MLP): only the first line pays the full latency.
	streamRun := last-first >= 3
	for line := first; line <= last; line++ {
		if line&mask == 0 {
			c := scaleAccess(m.accessLine(core, t+cost, line, addr, write, streamRun && line != first), acc)
			a := &m.avg[core]
			a.v += (c - a.v) / 8
			cost += c
		} else {
			cost += m.avg[core].v
		}
	}
	if write {
		m.PMU.Add(int(core), pmu.BytesWritten, size)
	} else {
		m.PMU.Add(int(core), pmu.BytesRead, size)
	}
	return cost
}

// RepeatCost returns the per-access cost of immediately re-touching
// [addr, addr+size) after an Access by the same core, and whether that cost
// is time-invariant so the caller may batch such repeats. The guarantee
// behind it: Access leaves a single-line target in the core's L2 (when one
// exists) and its local L3, so a repeat is a hit of constant latency — hit
// paths charge no token bucket — and a repeat after a write has no remote
// copies left to invalidate. Unsampled lines are charged the core's running
// average, which only sampled accesses move, so it too is constant across a
// run of same-line repeats. Multi-line accesses don't qualify (their lines
// can evict each other and their misses pipeline).
func (m *Machine) RepeatCost(core topology.CoreID, addr mem.Addr, size int64) (cost int64, ok bool) {
	first := uint64(addr) >> cache.LineShift
	if size <= 0 || first != (uint64(addr)+uint64(size)-1)>>cache.LineShift {
		return 0, false
	}
	if first&uint64(m.sampleFactor-1) != 0 {
		return m.avg[core].v, true
	}
	if m.l2[core] != nil {
		return scaleAccess(m.Topo.Cost.L2Hit, m.coreAccMilli(core)), true
	}
	return scaleAccess(m.Topo.Cost.L3LocalHit, m.coreAccMilli(core)), true
}

// AccessRepeat settles n deferred repeat accesses (see RepeatCost) in one
// call, leaving every machine counter exactly as n individual Access calls
// ending at virtual time lastT would have: the line's LRU stamp and hit
// counter, the core's fill-event and byte PMU counters, and n iterations of
// the core's average-cost EWMA. It returns false — recording nothing — when
// the line is no longer resident where RepeatCost assumed (a concurrent
// invalidation or a migration moved the core), so the caller can replay the
// repeats through Access instead.
func (m *Machine) AccessRepeat(core topology.CoreID, lastT int64, addr mem.Addr, size int64, write bool, n int64) bool {
	line := uint64(addr) >> cache.LineShift
	if line&uint64(m.sampleFactor-1) == 0 {
		var c int64
		if l2 := m.l2[core]; l2 != nil {
			// Same inclusivity rule as the L2-hit path in accessLine: the
			// hit only counts while the local L3 still holds the line.
			if !m.l3Holds(m.Topo.ChipletOf(core), line, &m.avg[core].dir) ||
				!l2.Touch(line, lastT, n) {
				return false
			}
			m.PMU.Add(int(core), pmu.FillL2, n*m.sampleFactor)
			c = scaleAccess(m.Topo.Cost.L2Hit, m.coreAccMilli(core))
		} else {
			if !m.l3[m.Topo.ChipletOf(core)].Touch(line, lastT, n) {
				return false
			}
			m.PMU.Add(int(core), pmu.FillL3Local, n*m.sampleFactor)
			c = scaleAccess(m.Topo.Cost.L3LocalHit, m.coreAccMilli(core))
		}
		// Iterate the EWMA the n hits would have applied; the integer
		// recurrence reaches its fixed point (|c-v| < 8) in a few steps, so
		// large batches exit early.
		a := &m.avg[core]
		for i := int64(0); i < n; i++ {
			d := (c - a.v) / 8
			if d == 0 {
				break
			}
			a.v += d
		}
	}
	if write {
		m.PMU.Add(int(core), pmu.BytesWritten, n*size)
	} else {
		m.PMU.Add(int(core), pmu.BytesRead, n*size)
	}
	return true
}

// Read is shorthand for a read Access.
func (m *Machine) Read(core topology.CoreID, t int64, addr mem.Addr, size int64) int64 {
	return m.Access(core, t, addr, size, false)
}

// Write is shorthand for a write Access.
func (m *Machine) Write(core topology.CoreID, t int64, addr mem.Addr, size int64) int64 {
	return m.Access(core, t, addr, size, true)
}

// accessLine simulates one sampled line access exactly. streaming marks a
// non-leading line of a contiguous run: its miss latency overlaps with its
// predecessors (divided by MLP) while bandwidth charges stay whole. Under
// sampling, each sampled line represents sampleFactor real lines, so
// bandwidth is charged for all of them.
func (m *Machine) accessLine(core topology.CoreID, t int64, line uint64, addr mem.Addr, write bool, streaming bool) int64 {
	topo := m.Topo
	ch := topo.ChipletOf(core)
	l3 := m.l3[ch]
	l2 := m.l2[core]
	sc := &m.avg[core].dir
	xfer := int64(cache.LineSize) * m.sampleFactor

	// pipelined divides a latency by MLP for non-leading lines of a
	// contiguous run (hits pipeline just like misses).
	pipelined := func(lat int64) int64 {
		if streaming {
			lat /= m.mlp
			if lat < 1 {
				lat = 1
			}
		}
		return lat
	}

	// invalidationCost models the ownership-upgrade round trips a write
	// to a shared line pays: each remote copy must be invalidated and
	// acknowledged (the coherence serialization that makes contended
	// lines expensive).
	invalidationCost := func(copies int) int64 {
		return int64(copies) * topo.Cost.L3RemoteNearHit / 2
	}

	// L2 hit, valid only while the local L3 still holds the line
	// (functional inclusivity) — a single directory bit test.
	if l2 != nil && l2.Lookup(line, t) && m.l3Holds(ch, line, sc) {
		cost := pipelined(topo.Cost.L2Hit)
		if write {
			cost += invalidationCost(m.invalidateOthers(ch, line, sc))
		}
		m.PMU.Add(int(core), pmu.FillL2, m.sampleFactor)
		return cost
	}

	// Local L3 hit.
	if l3.Lookup(line, t) {
		cost := pipelined(topo.Cost.L3LocalHit)
		if l2 != nil {
			l2.Insert(line, t)
		}
		if write {
			cost += invalidationCost(m.invalidateOthers(ch, line, sc))
		}
		m.PMU.Add(int(core), pmu.FillL3Local, m.sampleFactor)
		return cost
	}

	// Local miss: find the topologically closest chiplet holding the line.
	holder, lat := m.closestHolder(core, ch, line, sc)
	var cost int64
	var ev pmu.Event
	if holder >= 0 {
		q := m.Fabric.ChargeTransfer(topology.ChipletID(holder), ch, t, xfer)
		cost = pipelined(lat) + q
		switch topo.ClassOf(core, topo.FirstCoreOf(topology.ChipletID(holder))) {
		case topology.InterChipletNear:
			ev = pmu.FillL3RemoteNear
		case topology.InterChipletFar:
			ev = pmu.FillL3RemoteFar
		default:
			ev = pmu.FillL3RemoteSocket
		}
		if write {
			cost += invalidationCost(m.invalidateOthers(ch, line, sc))
		}
	} else {
		node := m.Space.HomeOf(addr, topo.NodeOfCore(core))
		qd := m.DRAM.Charge(node, t, xfer)
		qf := m.Fabric.ChargeMemory(ch, node, t, xfer)
		cost = pipelined(topo.DRAMLatency(core, node)) + qd + qf
		if node == topo.NodeOfCore(core) {
			ev = pmu.FillDRAMLocal
		} else {
			ev = pmu.FillDRAMRemote
		}
	}
	m.insertL3(ch, l3, line, t, sc)
	if l2 != nil {
		l2.Insert(line, t)
	}
	m.PMU.Add(int(core), ev, m.sampleFactor)
	return cost
}

// l3Holds reports whether chiplet ch's L3 holds line: a directory bit test,
// or a tag-array probe in scan mode.
func (m *Machine) l3Holds(ch topology.ChipletID, line uint64, sc *dirCache) bool {
	if m.dir != nil {
		return m.dir.has(line, int(ch), sc)
	}
	return m.l3[ch].Contains(line)
}

// insertL3 fills line into chiplet ch's L3 and keeps the directory exact:
// the inserted line gains ch's presence bit and the capacity victim (if
// any) loses it. This is the eviction-notification plumbing — the
// (evicted, ok) return of cache.Insert is what lets the directory observe
// capacity evictions at all.
func (m *Machine) insertL3(ch topology.ChipletID, l3 *cache.Cache, line uint64, t int64, sc *dirCache) {
	evicted, ok := l3.Insert(line, t)
	if m.dir == nil {
		return
	}
	if ok {
		m.dir.remove(evicted, int(ch))
	}
	m.dir.add(line, int(ch), sc)
}

// closestHolder finds the cached copy of line with the lowest transfer
// latency, or (-1, 0) when no other chiplet holds it. With the directory
// it walks only the set bits of the presence mask; in scan mode it
// broadcast-probes every chiplet's tag array. Ties resolve to the lowest
// chiplet id in both modes (bits iterate LSB-first, the scan ascends).
func (m *Machine) closestHolder(core topology.CoreID, self topology.ChipletID, line uint64, sc *dirCache) (int, int64) {
	best := -1
	var bestLat int64
	if m.dir != nil {
		mask := m.dir.holders(line, sc) &^ (1 << uint(self))
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &= mask - 1
			lat := m.Topo.L3HitLatency(core, topology.ChipletID(i))
			if best < 0 || lat < bestLat {
				best, bestLat = i, lat
			}
		}
		return best, bestLat
	}
	for i := range m.l3 {
		if topology.ChipletID(i) == self || !m.l3[i].Contains(line) {
			continue
		}
		lat := m.Topo.L3HitLatency(core, topology.ChipletID(i))
		if best < 0 || lat < bestLat {
			best, bestLat = i, lat
		}
	}
	return best, bestLat
}

// invalidateOthers removes the line from every other chiplet's L3 and
// returns the number of copies invalidated. With the directory the sharer
// set is claimed in one locked bitmask update and only actual holders'
// tag arrays are touched; in scan mode every chiplet is probed.
func (m *Machine) invalidateOthers(self topology.ChipletID, line uint64, sc *dirCache) int {
	if m.dir != nil {
		mask := m.dir.takeOthers(line, int(self), sc)
		n := bits.OnesCount64(mask)
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &= mask - 1
			m.l3[i].Invalidate(line)
		}
		return n
	}
	n := 0
	for i := range m.l3 {
		if topology.ChipletID(i) == self {
			continue
		}
		if m.l3[i].Invalidate(line) {
			n++
		}
	}
	return n
}

// L3 returns chiplet ch's cache (for tests and diagnostics).
func (m *Machine) L3(ch topology.ChipletID) *cache.Cache { return m.l3[ch] }

// L2Of returns core c's private cache, which may be nil.
func (m *Machine) L2Of(c topology.CoreID) *cache.Cache { return m.l2[c] }

// FlushCaches empties every cache; used between experiment repetitions.
func (m *Machine) FlushCaches() {
	for _, c := range m.l2 {
		if c != nil {
			c.Clear()
		}
	}
	for _, c := range m.l3 {
		c.Clear()
	}
	if m.dir != nil {
		m.dir.reset()
	}
	for i := range m.avg {
		m.avg[i].v = scaleAccess(m.Topo.Cost.L2Hit, m.coreAccMilli(topology.CoreID(i)))
		m.avg[i].dir = dirCache{}
	}
}

// DirectoryEnabled reports whether the coherence directory is active
// (false in scan mode; see Config.NoDirectory).
func (m *Machine) DirectoryEnabled() bool { return m.dir != nil }
