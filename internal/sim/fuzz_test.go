package sim

import (
	"testing"

	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/topology"
)

// FuzzMachineAccess drives the memory-system simulator with arbitrary
// access sequences and checks its core invariants: costs are positive,
// clamped within physical bounds, fill counters account for every sampled
// access, and no access panics or corrupts cache state.
func FuzzMachineAccess(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 100}, uint8(0))
	f.Add([]byte{255, 254, 253}, uint8(2))
	f.Fuzz(func(t *testing.T, ops []byte, shift uint8) {
		m := New(Config{
			Topo:        topology.SyntheticDual(2, 4),
			SampleShift: uint(shift % 4),
		})
		region := m.Space.Alloc(1<<16, mem.Interleave, 0)
		cores := m.Topo.NumCores()
		var now int64
		for i := 0; i+2 < len(ops); i += 3 {
			core := topology.CoreID(int(ops[i]) % cores)
			off := int64(ops[i+1]) << 7 // stay within 64 KiB (255*128 < 65536)
			size := int64(ops[i+2])%2048 + 1
			if off+size > 1<<16 {
				size = 1<<16 - off
			}
			write := ops[i]%2 == 1
			cost := m.Access(core, now, region+mem.Addr(off), size, write)
			if cost < 0 {
				t.Fatalf("negative cost %d", cost)
			}
			// Upper bound: every line at worst pays remote DRAM plus
			// heavy queueing and full invalidation; 100x DRAMRemote per
			// line is far beyond any legal path.
			lines := size/64 + 2
			if cost > lines*m.Topo.Cost.DRAMRemote*100 {
				t.Fatalf("cost %d exceeds physical bound for %d lines", cost, lines)
			}
			now += cost
		}
		// Counter sanity: every fill class is non-negative and the total
		// fill count is consistent with sampling extrapolation.
		for c := 0; c < cores; c++ {
			for _, e := range []pmu.Event{pmu.FillL2, pmu.FillL3Local,
				pmu.FillL3RemoteNear, pmu.FillL3RemoteFar,
				pmu.FillL3RemoteSocket, pmu.FillDRAMLocal, pmu.FillDRAMRemote} {
				if v := m.PMU.Read(c, e); v < 0 {
					t.Fatalf("negative counter %v on core %d", e, c)
				} else if v%m.SampleFactor() != 0 {
					t.Fatalf("counter %v=%d not a multiple of sample factor %d", e, v, m.SampleFactor())
				}
			}
		}
	})
}
