package sim

import (
	"testing"

	"charm/internal/mem"
	"charm/internal/topology"
)

// BenchmarkMachineAccess measures the simulator hot path on the 16-chiplet
// Milan preset under the access mixes that stress coherence tracking, in
// both modes: "dir" (the coherence directory, the default) and "scan"
// (NoDirectory broadcast tag-array scans, the pre-directory behaviour).
// The miss-heavy mixes are where the directory pays: a scan-mode miss
// probes chiplets × ways tag slots per line, a directory-mode miss reads
// one presence bitmask.
//
//	readhot       — per-core working set resident in L2: the hit fast path.
//	writeshared   — chiplets round-robin writing one hot block: closest-
//	                holder transfer + ownership-upgrade invalidation per op.
//	streamingmiss — a region far beyond L3 streamed sequentially: every
//	                line misses everywhere, fills, and eventually evicts.
func BenchmarkMachineAccess(b *testing.B) {
	for _, mode := range []struct {
		name  string
		noDir bool
	}{{"dir", false}, {"scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.Run("readhot", func(b *testing.B) { benchReadHot(b, mode.noDir) })
			b.Run("writeshared", func(b *testing.B) { benchWriteShared(b, mode.noDir) })
			b.Run("streamingmiss", func(b *testing.B) { benchStreamingMiss(b, mode.noDir) })
		})
	}
}

func milanMachine(b *testing.B, noDir bool) *Machine {
	b.Helper()
	return New(Config{Topo: topology.AMDMilan7713x2(), NoDirectory: noDir})
}

// benchReadHot: core 0 re-reads a 256 KiB region that fits its 512 KiB L2.
func benchReadHot(b *testing.B, noDir bool) {
	m := milanMachine(b, noDir)
	const size = 256 << 10
	region := m.Space.Alloc(size, mem.Bind, 0)
	now := m.Read(0, 0, region, size) // warm L2+L3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%(size/64)) * 64
		now += m.Read(0, now, region+mem.Addr(off), 64)
	}
}

// benchWriteShared: eight writers on eight different chiplets take turns
// writing lines of one 4 KiB block. Every write misses locally, fills
// cache-to-cache from the previous writer's chiplet, and invalidates it.
func benchWriteShared(b *testing.B, noDir bool) {
	m := milanMachine(b, noDir)
	const size = 4 << 10
	region := m.Space.Alloc(size, mem.Bind, 0)
	per := m.Topo.CoresPerChiplet
	writers := make([]topology.CoreID, 8)
	for i := range writers {
		writers[i] = topology.CoreID(i * per) // first core of chiplets 0..7
	}
	var now int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := writers[i%len(writers)]
		off := int64(i%(size/64)) * 64
		now += m.Write(core, now, region+mem.Addr(off), 64)
	}
}

// benchStreamingMiss: core 0 streams 4 KiB chunks through a 128 MiB region
// (4x its chiplet's 32 MiB L3), wrapping around, so every pass misses all
// the way to DRAM and churns fills and capacity evictions.
func benchStreamingMiss(b *testing.B, noDir bool) {
	m := milanMachine(b, noDir)
	const size = 128 << 20
	const chunk = 4 << 10
	region := m.Space.Alloc(size, mem.Bind, 0)
	var now, off int64
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += m.Read(0, now, region+mem.Addr(off), chunk)
		off += chunk
		if off >= size {
			off = 0
		}
	}
}
