package core

import (
	"charm/internal/admit"
	"charm/internal/place"
	"charm/internal/topology"
)

// This file is the only bridge between the runtime's mutable scheduling
// state and the immutable place.View snapshots every placement decision
// queries. Policy code (policy.go), steal-order construction
// (stealorder.go), and job dispatch (job.go) never read coreOcc /
// workerOnCore / fault-plan liveness directly — they ask for a view built
// here at an explicit virtual time, which keeps each decision a pure
// function of (virtual time, snapshot) and therefore replayable.

// placeSnapshot captures the engine's placement state at virtual time
// now: per-core liveness from the fault plan, occupancy, the
// worker-on-core map, each worker's core, and each worker's queue depth.
func (rt *Runtime) placeSnapshot(now int64) place.Snapshot {
	n := rt.M.Topo.NumCores()
	snap := place.Snapshot{
		Occ:        make([]int32, n),
		WorkerOn:   make([]int32, n),
		WorkerCore: make([]topology.CoreID, len(rt.workers)),
		QueueDepth: make([]int64, len(rt.workers)),
	}
	for c := 0; c < n; c++ {
		snap.Occ[c] = rt.coreOcc[c].Load()
		snap.WorkerOn[c] = rt.workerOnCore[c].Load()
	}
	if plan := rt.opts.Faults; plan != nil {
		snap.Live = make([]bool, n)
		for c := 0; c < n; c++ {
			snap.Live[c] = !plan.CoreDown(topology.CoreID(c), now)
		}
	}
	for i, w := range rt.workers {
		snap.WorkerCore[i] = w.Core()
		snap.QueueDepth[i] = w.inbox.Len() + int64(w.deque.Len())
	}
	if pw := rt.power; pw != nil {
		// Published thermal state: the governor replaces the snapshot slice
		// wholesale, so handing it to the view preserves immutability.
		snap.TempMilliC = pw.TempsMilliC()
		snap.TempSoftMilliC = pw.SoftMilliC()
	}
	if f := rt.M.Fabric; f != nil {
		nch := rt.M.Topo.NumChiplets()
		snap.LinkUtilMilli = make([]int64, nch)
		for ch := 0; ch < nch; ch++ {
			snap.LinkUtilMilli[ch] = f.ChipletUtilMilli(topology.ChipletID(ch), now)
		}
	}
	return snap
}

// placeView builds the policy-facing MachineView (no job-service health
// signals: Alg. 2 enactment, re-homing, and steal ordering predate and
// outlive any installed job service).
func (rt *Runtime) placeView(now int64) *place.View {
	return place.NewView(rt.ranks, now, rt.placeSnapshot(now))
}

// viewLocked builds the dispatch-facing MachineView: the engine snapshot
// plus per-chiplet health fusing the fault plan's thermal/link
// milli-factors, the PMU-observed slowdown from the last breaker
// evaluation window, and breaker refusal state. Caller holds s.mu.
func (s *JobService) viewLocked(now int64) *place.View {
	rt := s.rt
	snap := rt.placeSnapshot(now)
	nch := rt.M.Topo.NumChiplets()
	if plan := rt.opts.Faults; plan != nil {
		snap.PlanMilli = make([]int64, nch)
		for ch := 0; ch < nch; ch++ {
			id := topology.ChipletID(ch)
			pm := plan.ThermalMilli(id, now)
			if lm := plan.ChipletLinkMilli(id, now); lm > pm {
				pm = lm
			}
			snap.PlanMilli[ch] = pm
		}
	}
	// obsMilli is replaced wholesale at each evaluation, never mutated in
	// place, so handing the slice to the view preserves immutability.
	snap.ObsMilli = s.obsMilli
	if s.brk != nil {
		snap.BreakerOpen = make([]bool, nch)
		for ch := 0; ch < nch; ch++ {
			snap.BreakerOpen[ch] = s.brk.State(ch) == admit.BreakerOpen
		}
	}
	return place.NewView(rt.ranks, now, snap)
}
