package core

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/sim"
	"charm/internal/topology"
)

// compilePlan builds a fault plan for topo, failing the test on error.
func compilePlan(t *testing.T, s *fault.Schedule, topo *topology.Topology) *fault.Plan {
	t.Helper()
	p, err := s.Compile(topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// faultActions returns how many ProfFault samples carry each code.
func faultActions(rt *Runtime) map[int64]int {
	out := make(map[int64]int)
	for _, s := range rt.Profiler().Samples(ProfFault) {
		out[s.V]++
	}
	return out
}

// TestOfflineRehome: CHARM workers whose chiplet is offlined must drain
// their queues, migrate to live cores, and finish every task.
func TestOfflineRehome(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	plan := compilePlan(t, fault.New("rehome", 1).
		OfflineChiplet(0, 20_000, fault.Forever), topo)
	rt := NewRuntime(m, Options{Workers: 4, SchedulerTimer: 50_000, Faults: plan})
	rt.Start()
	defer rt.Stop()
	rt.Profiler().Enable(true)

	var n atomic.Int64
	st := rt.ParallelFor(0, 64, 1, func(ctx *Ctx, i0, i1 int) {
		ctx.Compute(5_000)
		n.Add(1)
	})
	if n.Load() != 64 {
		t.Fatalf("completed %d of 64 tasks", n.Load())
	}
	if st.Tasks != 64 {
		t.Errorf("Stats.Tasks = %d, want 64", st.Tasks)
	}
	acts := faultActions(rt)
	if acts[fcRehome] == 0 {
		t.Errorf("no fcRehome recorded; actions = %v", acts)
	}
	// The re-homed workers must sit on live cores.
	now := rt.MaxWorkerClock()
	for _, w := range rt.workers {
		if plan.CoreDown(w.Core(), now) {
			t.Errorf("worker %d still on dead core %d", w.id, w.Core())
		}
	}
}

// TestOfflineParkAndResume: a policy without Rehomer parks the offlined
// worker and resumes it when the core revives; no task is lost either way.
func TestOfflineParkAndResume(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	m := sim.New(sim.Config{Topo: topo})
	plan := compilePlan(t, fault.New("park", 1).
		OfflineCore(0, 20_000, 150_000), topo)
	rt := NewRuntime(m, Options{
		Workers: 4, SchedulerTimer: 50_000, Faults: plan,
		Policy: NewStaticPolicy(Compact),
	})
	rt.Start()
	defer rt.Stop()
	rt.Profiler().Enable(true)

	var n atomic.Int64
	rt.ParallelFor(0, 128, 1, func(ctx *Ctx, i0, i1 int) {
		ctx.Compute(5_000)
		n.Add(1)
	})
	if n.Load() != 128 {
		t.Fatalf("completed %d of 128 tasks", n.Load())
	}
	acts := faultActions(rt)
	if acts[fcPark] == 0 {
		t.Errorf("no fcPark recorded; actions = %v", acts)
	}
	if acts[fcResume] == 0 {
		t.Errorf("no fcResume recorded; actions = %v", acts)
	}
	if acts[fcRehome] != 0 {
		t.Errorf("static policy must not re-home; actions = %v", acts)
	}
}

// TestRetrySucceedsWithinBudget: a task that fails twice completes on its
// third attempt when MaxTaskRetries allows, with virtual-time backoff.
func TestRetrySucceedsWithinBudget(t *testing.T) {
	rt := newTestRT(t, 2, func(o *Options) {
		o.MaxTaskRetries = 3
		o.RetryBackoff = 1_000
	})
	rt.Profiler().Enable(true)
	var attempts atomic.Int64
	rt.Run(func(ctx *Ctx) {
		if attempts.Add(1) <= 2 {
			panic("transient fault")
		}
	})
	if attempts.Load() != 3 {
		t.Errorf("task ran %d times, want 3", attempts.Load())
	}
	if acts := faultActions(rt); acts[fcRetry] != 2 {
		t.Errorf("fcRetry = %d, want 2; actions = %v", acts[fcRetry], acts)
	}
}

// TestRetryExhaustionFailsGroup: when every attempt panics, the group fails
// with a TaskError whose Attempts reflects the full budget.
func TestRetryExhaustionFailsGroup(t *testing.T) {
	rt := newTestRT(t, 2, func(o *Options) {
		o.MaxTaskRetries = 2
		o.RetryBackoff = 1_000
	})
	var attempts atomic.Int64
	e := recoverTaskError(t, func() {
		rt.Run(func(ctx *Ctx) {
			attempts.Add(1)
			panic("persistent fault")
		})
	})
	if attempts.Load() != 3 {
		t.Errorf("task ran %d times, want 3 (1 + 2 retries)", attempts.Load())
	}
	if e.Attempts != 3 {
		t.Errorf("TaskError.Attempts = %d, want 3", e.Attempts)
	}
	if !strings.Contains(e.Error(), "persistent fault") {
		t.Errorf("error lacks the panic value: %q", e.Error())
	}
}

// TestCoroutineRetryRestartsFresh: a retried coroutine gets a fresh stack
// (it re-runs from the beginning, not from the last Yield).
func TestCoroutineRetryRestartsFresh(t *testing.T) {
	rt := newTestRT(t, 2, func(o *Options) {
		o.MaxTaskRetries = 1
		o.RetryBackoff = 1_000
	})
	var starts, finishes atomic.Int64
	rt.submitWait([]func(*Ctx){func(ctx *Ctx) {
		if starts.Add(1) == 1 {
			ctx.Yield()
			panic("coroutine transient")
		}
		ctx.Yield()
		finishes.Add(1)
	}}, false, true)
	if starts.Load() != 2 || finishes.Load() != 1 {
		t.Errorf("starts=%d finishes=%d, want 2/1", starts.Load(), finishes.Load())
	}
}

// TestWatchdogFlagsStarvedTasks: tasks finishing past StarvationDeadline
// trip the watchdog.
func TestWatchdogFlagsStarvedTasks(t *testing.T) {
	rt := newTestRT(t, 2, func(o *Options) {
		o.StarvationDeadline = 1_000
	})
	rt.Profiler().Enable(true)
	rt.Run(func(ctx *Ctx) { ctx.Compute(50_000) })
	if acts := faultActions(rt); acts[fcWatchdog] == 0 {
		t.Errorf("no fcWatchdog recorded; actions = %v", acts)
	}
}

// TestSubmitReroutesAroundDeadCores: work submitted while a worker's core
// is offline lands on live workers instead of queueing on a parked one.
func TestSubmitReroutesAroundDeadCores(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	m := sim.New(sim.Config{Topo: topo})
	plan := compilePlan(t, fault.New("reroute", 1).
		OfflineCore(0, 0, fault.Forever), topo)
	rt := NewRuntime(m, Options{
		Workers: 4, SchedulerTimer: 50_000, Faults: plan,
		Policy: NewStaticPolicy(Compact),
	})
	rt.Start()
	defer rt.Stop()
	var n atomic.Int64
	rt.ParallelFor(0, 32, 1, func(ctx *Ctx, i0, i1 int) {
		if ctx.CoreID() == 0 {
			t.Error("task executed on the dead core")
		}
		n.Add(1)
	})
	if n.Load() != 32 {
		t.Fatalf("completed %d of 32 tasks", n.Load())
	}
}

// faultDetRun executes one deterministic run under a seeded fault schedule
// and returns its observable outputs for bit-identical comparison.
func faultDetRun(t *testing.T) (Stats, pmu.Snapshot) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	sched := fault.New("det", 7).
		OfflineChiplet(1, 30_000, 400_000).
		LinkBrownout(2, 10_000, 500_000, 8).
		MemBrownout(0, 0, fault.Forever, 2).
		ThermalThrottle(3, 50_000, 300_000, 3)
	plan := compilePlan(t, sched, topo)
	rt := NewRuntime(m, Options{
		Workers: 8, SchedulerTimer: 50_000,
		Faults: plan, Deterministic: true,
		MaxTaskRetries: 1, RetryBackoff: 1_000,
	})
	rt.Start()
	defer rt.Stop()

	// Background stress: concurrent observers exercising the same atomics
	// the workers write, so -race sees the cross-thread traffic (the PR 2
	// access-stress pattern). Observers never mutate state, so they cannot
	// perturb the schedule.
	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = rt.MaxWorkerClock()
				_ = rt.LiveTasks()
				_ = rt.M.PMU.Total(pmu.TaskRun)
				yieldHost()
			}
		}
	}()

	addr := rt.Alloc(1<<16, 0)
	var total Stats
	for phase := 0; phase < 3; phase++ {
		// Each marked index fails exactly once per phase, so the single
		// configured retry always recovers it — deterministically.
		var failedOnce [48]atomic.Bool
		st := rt.ParallelFor(0, 48, 2, func(ctx *Ctx, i0, i1 int) {
			for i := i0; i < i1; i++ {
				ctx.Read(addr+mem.Addr(i%256)*256, 256)
				ctx.Compute(2_000)
				if i%17 == 3 && !failedOnce[i].Swap(true) {
					panic("deterministic transient")
				}
				ctx.Write(addr+mem.Addr(i%256)*256, 64)
			}
		})
		total.Makespan += st.Makespan
		total.Tasks += st.Tasks
		total.Steals += st.Steals
		total.RemoteSteals += st.RemoteSteals
		total.Migrations += st.Migrations
	}
	close(stop)
	<-obsDone
	return total, rt.M.PMU.Snapshot()
}

// TestFaultDeterminism: the same seed and fault schedule must produce
// bit-identical Stats and PMU counters across independent runs (run under
// -race by make verify).
func TestFaultDeterminism(t *testing.T) {
	st1, pm1 := faultDetRun(t)
	st2, pm2 := faultDetRun(t)
	if st1 != st2 {
		t.Errorf("Stats differ across identical runs:\n  run1 %+v\n  run2 %+v", st1, st2)
	}
	if !reflect.DeepEqual(pm1, pm2) {
		t.Error("PMU counters differ across identical runs")
	}
	if st1.Tasks != 3*24 {
		t.Errorf("Stats.Tasks = %d, want 72", st1.Tasks)
	}
}
