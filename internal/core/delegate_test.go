package core

import (
	"sync/atomic"
	"testing"

	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/sim"
	"charm/internal/topology"
)

func TestOwnerOfStableAndHomeNode(t *testing.T) {
	m := sim.New(sim.Config{Topo: topology.SyntheticDual(2, 4)})
	// 16 workers fill both sockets, so each node has owner candidates.
	rt := NewRuntime(m, Options{Workers: 16})
	a0 := m.Space.AllocLocal(mem.PageSize, 0)
	a1 := m.Space.AllocLocal(mem.PageSize, 1)
	o0 := rt.OwnerOf(a0)
	o1 := rt.OwnerOf(a1)
	if rt.NodeOfWorker(o0) != 0 {
		t.Errorf("owner of node-0 data on node %d", rt.NodeOfWorker(o0))
	}
	if rt.NodeOfWorker(o1) != 1 {
		t.Errorf("owner of node-1 data on node %d", rt.NodeOfWorker(o1))
	}
	// Stability: repeated queries return the same owner.
	for i := 0; i < 10; i++ {
		if rt.OwnerOf(a0) != o0 {
			t.Fatal("owner not stable")
		}
	}
	// Different lines spread across the node's workers.
	owners := map[int]bool{}
	big := m.Space.AllocLocal(1<<16, 0)
	for off := int64(0); off < 1<<16; off += 64 {
		owners[rt.OwnerOf(big+mem.Addr(off))] = true
	}
	if len(owners) < 2 {
		t.Errorf("line ownership not spread: %v", owners)
	}
}

func TestOwnerOfFallbackWithoutNodeWorkers(t *testing.T) {
	m := sim.New(sim.Config{Topo: topology.SyntheticDual(2, 4)})
	rt := NewRuntime(m, Options{Workers: 2}) // both workers on node 0
	a1 := m.Space.AllocLocal(mem.PageSize, 1)
	o := rt.OwnerOf(a1)
	if o < 0 || o >= 2 {
		t.Errorf("fallback owner %d out of range", o)
	}
}

func TestDelegateRunsOnOwner(t *testing.T) {
	rt := newTestRT(t, 8)
	a := rt.M.Space.AllocLocal(mem.PageSize, 1)
	owner := rt.OwnerOf(a)
	var ranOn atomic.Int64
	ranOn.Store(-1)
	rt.Run(func(ctx *Ctx) {
		ctx.Delegate(a, func(c *Ctx) {
			ranOn.Store(int64(c.Worker()))
			c.RMW(a, 8)
		})
	})
	if int(ranOn.Load()) != owner {
		t.Errorf("delegate ran on %d, want owner %d", ranOn.Load(), owner)
	}
}

func TestDelegateAsyncJoinsGroup(t *testing.T) {
	rt := newTestRT(t, 4)
	a := rt.M.Space.AllocLocal(mem.PageSize, 0)
	var n atomic.Int64
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < 50; i++ {
			ctx.DelegateAsync(a, func(c *Ctx) { n.Add(1) })
		}
	})
	if n.Load() != 50 {
		t.Errorf("completed %d of 50 async delegations before Run returned", n.Load())
	}
}

func TestDelegateBatch(t *testing.T) {
	rt := newTestRT(t, 8)
	// Addresses spread across both nodes.
	var addrs []mem.Addr
	var fns []func(*Ctx)
	var n atomic.Int64
	ranOnOwner := atomic.Bool{}
	ranOnOwner.Store(true)
	for i := 0; i < 64; i++ {
		node := topology.NodeID(i % 2)
		a := rt.M.Space.AllocLocal(mem.PageSize, node)
		owner := rt.OwnerOf(a)
		addrs = append(addrs, a)
		fns = append(fns, func(c *Ctx) {
			if c.Worker() != owner {
				ranOnOwner.Store(false)
			}
			n.Add(1)
		})
	}
	rt.Run(func(ctx *Ctx) {
		ctx.DelegateBatch(addrs, fns)
	})
	if n.Load() != 64 {
		t.Errorf("batch completed %d of 64", n.Load())
	}
	if !ranOnOwner.Load() {
		t.Error("a batched delegation ran off its owner")
	}
}

func TestDelegateBatchValidation(t *testing.T) {
	rt := newTestRT(t, 2)
	a := rt.M.Space.AllocLocal(mem.PageSize, 0)
	rt.Run(func(ctx *Ctx) {
		mustPanic(t, "length mismatch", func() {
			ctx.DelegateBatch([]mem.Addr{a}, nil)
		})
	})
}

func TestDelegationAvoidsCoherenceTraffic(t *testing.T) {
	// A hot counter on node 0 updated by all workers: direct RMWs
	// ping-pong the line across chiplets; delegation keeps the line in
	// one chiplet's cache and pays message latency instead.
	topo := topology.SyntheticDual(4, 2)
	const updates = 300

	run := func(delegate bool) int64 {
		m := sim.New(sim.Config{Topo: topo})
		rt := NewRuntime(m, Options{Workers: 8, SchedulerTimer: 1 << 60,
			Policy: NewStaticPolicy(Compact)})
		rt.Start()
		defer rt.Stop()
		hot := m.Space.AllocLocal(64, 0)
		rt.AllDo(func(ctx *Ctx) {
			for i := 0; i < updates; i++ {
				if delegate {
					ctx.DelegateAsync(hot, func(c *Ctx) { c.RMW(hot, 8) })
				} else {
					ctx.RMW(hot, 8)
				}
				ctx.Yield()
			}
		})
		return m.PMU.Total(pmu.FillL3RemoteNear) + m.PMU.Total(pmu.FillL3RemoteFar) +
			m.PMU.Total(pmu.FillL3RemoteSocket)
	}
	direct := run(false)
	delegated := run(true)
	if delegated >= direct {
		t.Errorf("delegation coherence fills (%d) must be below direct RMW (%d)", delegated, direct)
	}
}

func TestRebindAllocsMovesWorkerMemory(t *testing.T) {
	rt := newTestRT(t, 2)
	var a mem.Addr
	rt.AllDo(func(ctx *Ctx) {
		if ctx.Worker() == 0 {
			a = ctx.Alloc(4 * mem.PageSize)
		}
	})
	if got := rt.M.Space.HomeOf(a, 0); got != 0 {
		t.Fatalf("initial home = %d", got)
	}
	w := rt.Worker(0)
	before := w.Clock().Now()
	var moved int64
	done := make(chan struct{})
	// RebindAllocs must run on the owner goroutine; drive it via a task.
	rt.AllDo(func(ctx *Ctx) {
		if ctx.Worker() == 0 {
			moved = w.RebindAllocs(1)
			close(done)
		}
	})
	<-done
	if moved != 4*mem.PageSize {
		t.Errorf("moved %d bytes, want %d", moved, 4*mem.PageSize)
	}
	if got := rt.M.Space.HomeOf(a, 0); got != 1 {
		t.Errorf("home after rebind = %d, want 1", got)
	}
	if w.Clock().Now() <= before {
		t.Error("rebind charged no virtual time")
	}
	// Freed regions are skipped, not fatal.
	rt.M.Space.Free(a)
	rt.AllDo(func(ctx *Ctx) {
		if ctx.Worker() == 0 {
			if n := w.RebindAllocs(0); n != 0 {
				t.Errorf("rebind of freed region moved %d bytes", n)
			}
		}
	})
}
