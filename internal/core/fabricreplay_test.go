package core

import (
	"reflect"
	"testing"

	"charm/internal/fabric"
	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/sim"
	"charm/internal/topology"
)

// fabricRun executes one deterministic run of a cross-chiplet-heavy
// workload on the reference heterogeneous machine with the given fabric,
// and returns every engine observable: aggregate Stats, the full PMU
// snapshot, and the final virtual clock.
func fabricRun(t *testing.T, kind fabric.Kind) (Stats, pmu.Snapshot, int64) {
	t.Helper()
	sp, err := topology.ParseTopoSpec("het-mesh")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sim.Config{Topo: topo, Fabric: kind})
	rt := NewRuntime(m, Options{
		Workers: topo.NumCores(), Deterministic: true, SchedulerTimer: 50_000,
	})
	rt.Start()
	defer rt.Stop()

	// Shared arrays force cross-chiplet coherence transfers (every worker
	// touches lines homed elsewhere), so the fabric's per-link charging is
	// on the critical path of every access.
	shared := rt.Alloc(1<<18, 0)
	var total Stats
	add := func(st Stats) {
		total.Makespan += st.Makespan
		total.Tasks += st.Tasks
		total.Steals += st.Steals
	}
	add(rt.ParallelFor(0, 64, 2, func(ctx *Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			a := shared + mem.Addr((i*97)%512)*64
			for r := 0; r < 60; r++ {
				ctx.Read(a, 64)
			}
			ctx.Compute(1_500)
			for r := 0; r < 30; r++ {
				ctx.Write(a, 64)
			}
		}
	}))
	// An RPC wave exercises MessageDelay over every fabric's routes.
	add(rt.AllDoCo(func(ctx *Ctx) {
		peer := (ctx.Worker() + len(rt.workers)/2) % len(rt.workers)
		for r := 0; r < 3; r++ {
			ctx.CallAsync(peer, func(c2 *Ctx) {
				c2.Read(shared, 64)
				c2.Compute(500)
			})
			ctx.Yield()
		}
	}))
	return total, rt.M.PMU.Snapshot(), rt.MaxWorkerClock()
}

// TestFabricReplayBitIdentical: every fabric kind must replay
// bit-identically in Deterministic mode — two runs of the same workload
// agree on Stats, every PMU counter on every core, and the final clock.
// make verify runs this under -race (the internal/core race pass), which
// also stresses the fabrics' concurrent charging.
func TestFabricReplayBitIdentical(t *testing.T) {
	for _, kind := range fabric.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			st1, pm1, clk1 := fabricRun(t, kind)
			st2, pm2, clk2 := fabricRun(t, kind)
			if st1.Tasks == 0 {
				t.Fatalf("workload too tame to be a gate: %+v", st1)
			}
			if st1 != st2 {
				t.Errorf("Stats diverge:\n  run1 %+v\n  run2 %+v", st1, st2)
			}
			if !reflect.DeepEqual(pm1, pm2) {
				t.Error("PMU counters diverge across identical runs")
			}
			if clk1 != clk2 {
				t.Errorf("final clock %d vs %d", clk1, clk2)
			}
		})
	}
}

// TestHeterogeneousComputeScaling: the same Compute(ns) call must cost
// more virtual time on an efficiency die and less on an accelerator than
// on a fast die — the per-kind compute multipliers threaded through the
// worker fast path.
func TestHeterogeneousComputeScaling(t *testing.T) {
	sp, err := topology.ParseTopoSpec("mesh:4x2,fast=2,eff=4,accel=2,cores=1")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: topo.NumCores(), Deterministic: true})
	rt.Start()
	defer rt.Stop()
	clock := make([]int64, topo.NumCores())
	rt.AllDo(func(ctx *Ctx) {
		start := ctx.Now()
		ctx.Compute(100_000)
		clock[ctx.Worker()] = ctx.Now() - start
	})
	fastNS, effNS, accelNS := clock[0], clock[2], clock[7]
	if fastNS != 100_000 {
		t.Errorf("fast die compute = %d, want the raw 100000", fastNS)
	}
	if effNS != 170_000 {
		t.Errorf("efficiency die compute = %d, want 170000 (1.7x)", effNS)
	}
	if accelNS != 40_000 {
		t.Errorf("accelerator compute = %d, want 40000 (0.4x)", accelNS)
	}
}
