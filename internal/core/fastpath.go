package core

import (
	"math"

	"charm/internal/cache"
	"charm/internal/mem"
	"charm/internal/topology"
)

// This file is the engine fast path: per-worker caching of placement
// invariants and epoch-batching of repeat memory accesses. Both exist to
// strip per-access bookkeeping off Ctx.Read/Write without changing a single
// simulated cost — DESIGN.md §4.16 derives the equivalence argument, and
// TestBatchingReplayBitIdentical holds it to bit-identical Deterministic
// replays.
//
// Placement cache: everything Ctx.advance needs — the worker's chiplet, the
// core-occupancy inflation factor, and the fault plan's current thermal
// step-function segment — is a pure function of (placement epoch, thermal
// segment). The cache is rebuilt only when the runtime's placeEpoch moves
// (any placeOn/Migrate in the fleet) or the worker's clock crosses the
// cached segment boundary, so the steady state costs one atomic load and
// two compares instead of an occupancy load, a chiplet division, and a
// step-function binary search per access.
//
// Access batching: consecutive accesses to the same line with the same size
// and direction are guaranteed hits with a time-invariant per-access cost
// (hit latencies take no token-bucket charge), so Ctx defers them as a
// count and settles the whole run in one Machine.AccessRepeat at the next
// flush point — Yield, barrier, clock read, a different access, task end,
// or the batch cap. Flush points are exactly the points where other workers
// (in Deterministic lockstep) or the scheduler can observe engine state, so
// deferral is invisible. When the cached thermal segment would expire
// mid-batch, or the line was concurrently invalidated (parallel mode only),
// the flush replays the deferred accesses one by one, which is the exact
// unbatched path.

// batchMaxRepeats caps how many repeats defer before a forced flush: it
// bounds both the virtual-clock skew other workers can observe in parallel
// mode and the worst-case replay length on a fallback.
const batchMaxRepeats = 1 << 12

// placeFast is the cached per-placement state; owner-goroutine access only.
type placeFast struct {
	// epoch is the runtime placeEpoch the cache was built at (-1 = never).
	epoch   int64
	chiplet topology.ChipletID
	// occMul/occDiv is the core-occupancy cost inflation (1/1 when the
	// worker has its core to itself).
	occMul int64
	occDiv int64
	// thermMilli is the chiplet's thermal factor, valid for clock times
	// before thermUntil.
	thermMilli int64
	thermUntil int64
	// compMilli is the chiplet kind's compute-speed multiplier (1000 on
	// homogeneous machines; a pure function of the chiplet).
	compMilli int64
}

// fastState returns the placement cache, rebuilding it when the placement
// epoch moved or now crossed the cached thermal segment boundary.
func (w *Worker) fastState(now int64) *placeFast {
	f := &w.fast
	if ep := w.rt.placeEpoch.Load(); ep != f.epoch || now >= f.thermUntil {
		w.reloadFast(ep, now)
	}
	return f
}

// reloadFast rebuilds the placement cache from the live engine state,
// replicating Ctx.advance's historical per-access computation exactly.
func (w *Worker) reloadFast(epoch, now int64) {
	f := &w.fast
	core := w.Core()
	topo := w.rt.M.Topo
	f.epoch = epoch
	f.chiplet = topo.ChipletOf(core)
	f.compMilli = topo.ComputeMilli(f.chiplet)
	f.occMul, f.occDiv = 1, 1
	if occ := w.rt.coreOcc[core].Load(); occ > 1 {
		if int(occ) <= topo.SMT() {
			// Hyperthread sharing: ~40% mutual slowdown per sibling.
			f.occMul, f.occDiv = 10+4*int64(occ-1), 10
		} else {
			// Beyond SMT width it is timesharing, which serializes.
			f.occMul, f.occDiv = int64(occ), 1
		}
	}
	f.thermMilli, f.thermUntil = 1000, math.MaxInt64
	if pw := w.rt.power; pw != nil {
		// Reloads are exactly where cached thermal segments expire, so this
		// is the governor's claim point: integrate any grid windows the
		// clock has crossed before re-reading throttle state.
		pw.MaybeTick(now)
	}
	if p := w.rt.opts.Faults; p != nil {
		f.thermMilli, f.thermUntil = p.ThermalSegment(f.chiplet, now)
	}
}

// inflate applies the cached occupancy and thermal factors to a raw cost,
// in the same order and integer arithmetic as the uncached path.
func (f *placeFast) inflate(cost int64) int64 {
	if f.occMul != 1 {
		cost = cost * f.occMul / f.occDiv
	}
	if f.thermMilli > 1000 {
		cost = cost * f.thermMilli / 1000
	}
	return cost
}

// accessBatch is the pending repeat-access run of one Ctx.
type accessBatch struct {
	line  uint64
	addr  mem.Addr
	size  int64
	cost  int64 // per-repeat raw machine cost (pre-inflation)
	n     int64 // deferred repeats not yet charged
	write bool
	valid bool // a seed access established the repeat cost
}

// access routes one simulated memory access: extend the pending batch when
// it repeats the previous access, otherwise settle the batch and take the
// full machine path, seeding a new batch for potential repeats.
func (c *Ctx) access(addr mem.Addr, size int64, write bool) {
	b := &c.bat
	if b.valid && b.line == uint64(addr)>>cache.LineShift && size == b.size && write == b.write {
		b.n++
		if b.n >= batchMaxRepeats {
			c.flushBatch()
		}
		return
	}
	c.flushBatch()
	w := c.w
	c.stall(w.rt.M.Access(w.Core(), w.clock.Now(), addr, size, write))
	if !w.rt.batch {
		return
	}
	if rc, ok := w.rt.M.RepeatCost(w.Core(), addr, size); ok {
		*b = accessBatch{
			line: uint64(addr) >> cache.LineShift, addr: addr, size: size,
			cost: rc, write: write, valid: true,
		}
	}
}

// flushBatch settles the deferred repeat accesses. The batched fast path
// applies when the cached thermal segment covers the whole span and the
// line is still resident; otherwise the repeats replay individually, which
// is the exact unbatched computation.
func (c *Ctx) flushBatch() {
	b := &c.bat
	n := b.n
	if n == 0 {
		// The seed still dies with the flush: a flush point may hand
		// control elsewhere (yield, RPC), after which the seed's cached
		// repeat cost could describe a core this task no longer runs on.
		b.valid = false
		return
	}
	b.n, b.valid = 0, false
	w := c.w
	now := w.clock.Now()
	f := w.fastState(now)
	d := f.inflate(b.cost)
	last := now + (n-1)*d // clock at the final repeat's charge point
	if last < f.thermUntil &&
		w.rt.M.AccessRepeat(w.Core(), last, b.addr, b.size, b.write, n) {
		if c.task != nil {
			c.task.stallNS += n * b.cost
		}
		w.clock.Advance(n * d)
		return
	}
	for i := int64(0); i < n; i++ {
		c.stall(w.rt.M.Access(w.Core(), w.clock.Now(), b.addr, b.size, b.write))
	}
}
