package core

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"charm/internal/admit"
	"charm/internal/fault"
	"charm/internal/sim"
	"charm/internal/topology"
)

// jobRuntime builds a started deterministic runtime on a small synthetic
// machine for open-loop tests.
func jobRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	if opts.Workers == 0 {
		opts.Workers = 8
	}
	rt := NewRuntime(m, opts)
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

// computeJob builds a one-stage job of n tasks, each charging cost virtual
// ns and counting into ran.
func computeJob(n int, cost int64, ran *atomic.Int64) JobSpec {
	stage := make(JobStage, n)
	for i := range stage {
		stage[i] = func(ctx *Ctx) {
			ctx.Compute(cost)
			if ran != nil {
				ran.Add(1)
			}
		}
	}
	return JobSpec{Stages: []JobStage{stage}}
}

// TestOpenLoopPoissonDrain: a seeded Poisson arrival stream must admit,
// run, and complete every job, and Drain must return once the source is
// exhausted and all jobs are terminal.
func TestOpenLoopPoissonDrain(t *testing.T) {
	rt := jobRuntime(t, Options{Deterministic: true})
	var ran atomic.Int64
	const jobs = 40
	svc, err := rt.ServeJobs(JobServiceOptions{
		Policy: admit.Reject,
		Source: &SpecSource{
			Arrivals: admit.NewPoisson(7, 5_000, jobs),
			Gen: func(i int) JobSpec {
				s := computeJob(4, 2_000, &ran)
				s.Name = "j"
				s.Deadline = 10_000_000
				return s
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	st := svc.Stats()
	if st.Submitted != jobs || st.Admitted != jobs || st.Completed != jobs {
		t.Fatalf("stats = %+v, want %d submitted/admitted/completed", st, jobs)
	}
	if st.Met != jobs {
		t.Errorf("Met = %d, want %d (generous deadline)", st.Met, jobs)
	}
	if ran.Load() != jobs*4 {
		t.Errorf("tasks ran = %d, want %d", ran.Load(), jobs*4)
	}
	for _, j := range svc.Jobs() {
		if j.State() != JobCompleted || !j.MetDeadline() || j.Latency() <= 0 {
			t.Fatalf("job %d: state=%v met=%v lat=%d", j.ID(), j.State(), j.MetDeadline(), j.Latency())
		}
	}
}

// TestSubmitJobExternal: SubmitJob outside any source must run the job and
// deliver completion through Done.
func TestSubmitJobExternal(t *testing.T) {
	rt := jobRuntime(t, Options{})
	var ran atomic.Int64
	j, err := rt.SubmitJob(computeJob(3, 1_000, &ran))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != JobCompleted || ran.Load() != 3 {
		t.Fatalf("state=%v ran=%d", j.State(), ran.Load())
	}
}

// TestJobMultiStageOrder: stages must run strictly in order, with stage
// k+1 seeing every stage-k task finished.
func TestJobMultiStageOrder(t *testing.T) {
	rt := jobRuntime(t, Options{Deterministic: true})
	var s1 atomic.Int64
	var bad atomic.Bool
	spec := JobSpec{Stages: []JobStage{
		{
			func(ctx *Ctx) { ctx.Compute(3_000); s1.Add(1) },
			func(ctx *Ctx) { ctx.Compute(1_000); s1.Add(1) },
		},
		{}, // empty stages are skipped
		{
			func(ctx *Ctx) {
				if s1.Load() != 2 {
					bad.Store(true)
				}
			},
		},
	}}
	j, err := rt.SubmitJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != JobCompleted || bad.Load() {
		t.Fatalf("state=%v stageOrderViolated=%v", j.State(), bad.Load())
	}
}

// TestJobCancellation: cancelling a job must discard its queued tasks,
// unwind its suspended coroutines at Yield, and never give a dead job a
// fresh coroutine stack. The second (never-dispatched) stage must not run.
func TestJobCancellation(t *testing.T) {
	rt := jobRuntime(t, Options{Workers: 2, Deterministic: true})
	var stage2 atomic.Int64
	var resumed atomic.Int64
	release := make(chan struct{})
	var j *Job
	var mu sync.Mutex
	stage1 := make(JobStage, 4)
	for i := range stage1 {
		stage1[i] = func(ctx *Ctx) {
			mu.Lock()
			self := j
			mu.Unlock()
			<-release // hold until the cancel lands (host-side gate)
			ctx.Compute(1_000)
			self.Cancel()
			ctx.Yield() // cancellation point: must not return
			resumed.Add(1)
		}
	}
	spec := JobSpec{
		Coro:   true,
		Stages: []JobStage{stage1, {func(ctx *Ctx) { stage2.Add(1) }}},
	}
	mu.Lock()
	jj, err := rt.SubmitJob(spec)
	j = jj
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-j.Done()
	if j.State() != JobCancelled {
		t.Fatalf("state = %v, want cancelled", j.State())
	}
	if resumed.Load() != 0 {
		t.Errorf("%d coroutines ran past a post-cancel Yield", resumed.Load())
	}
	if stage2.Load() != 0 {
		t.Errorf("stage 2 ran %d tasks after cancellation", stage2.Load())
	}
	svc := rt.JobServer()
	if st := svc.Stats(); st.Cancelled != 1 || st.TasksCancelled == 0 {
		t.Errorf("stats = %+v, want 1 cancelled job with cancelled tasks", st)
	}
}

// TestShedPolicyDropsHopeless: under Shed, a job whose deadline budget is
// below its declared cost must be dropped at admission with ErrHopeless.
func TestShedPolicyDropsHopeless(t *testing.T) {
	rt := jobRuntime(t, Options{})
	if _, err := rt.ServeJobs(JobServiceOptions{Policy: admit.Shed}); err != nil {
		t.Fatal(err)
	}
	spec := computeJob(1, 1_000, nil)
	spec.Deadline = 10_000
	spec.Cost = 50_000 // estimated service time exceeds the budget
	j, err := rt.SubmitJob(spec)
	if !errors.Is(err, admit.ErrHopeless) {
		t.Fatalf("err = %v, want ErrHopeless", err)
	}
	if j.State() != JobShed {
		t.Fatalf("state = %v, want shed", j.State())
	}
}

// TestRejectPolicyTypedError: a full Reject queue must refuse with
// ErrQueueFull and leave prior jobs untouched.
func TestRejectPolicyTypedError(t *testing.T) {
	rt := jobRuntime(t, Options{})
	// MaxInFlight 1 and a held first job keep the queue occupied.
	if _, err := rt.ServeJobs(JobServiceOptions{Policy: admit.Reject, QueueCapacity: 1, MaxInFlight: 1}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	blocker := JobSpec{Stages: []JobStage{{func(ctx *Ctx) { <-release }}}}
	j1, err := rt.SubmitJob(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j1 is dispatched so the queue is empty, then fill it.
	for j1.State() == JobQueued {
		yieldHost()
	}
	j2, err := rt.SubmitJob(computeJob(1, 1_000, nil))
	if err != nil {
		t.Fatalf("queued job refused: %v", err)
	}
	if _, err := rt.SubmitJob(computeJob(1, 1_000, nil)); !errors.Is(err, admit.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(release)
	<-j1.Done()
	<-j2.Done()
	if j1.State() != JobCompleted || j2.State() != JobCompleted {
		t.Fatalf("states = %v/%v", j1.State(), j2.State())
	}
}

// TestJobFailure: a job whose task panics past the retry budget must end
// Failed with a typed TaskError.
func TestJobFailure(t *testing.T) {
	rt := jobRuntime(t, Options{})
	j, err := rt.SubmitJob(JobSpec{Stages: []JobStage{{
		func(ctx *Ctx) { panic("job boom") },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != JobFailed {
		t.Fatalf("state = %v, want failed", j.State())
	}
	var te *TaskError
	if !errors.As(j.Err(), &te) {
		t.Fatalf("Err = %v, want *TaskError", j.Err())
	}
}

// TestFinalizeIdempotentAndTyped (satellite): Stop must be idempotent,
// wait out a racing Run, and make later submissions fail with
// ErrFinalized.
func TestFinalizeIdempotentAndTyped(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 4})
	rt.Start()

	var ran atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		rt.Run(func(ctx *Ctx) {
			ctx.Compute(200_000)
			ran.Add(1)
		})
	}()
	<-started
	rt.Stop() // must wait for the racing Run's tasks, not abandon them
	wg.Wait()
	if ran.Load() != 1 {
		t.Fatalf("racing Run lost its task (ran=%d)", ran.Load())
	}
	rt.Stop() // idempotent

	if _, err := rt.SubmitJob(JobSpec{}); !errors.Is(err, ErrFinalized) {
		t.Fatalf("SubmitJob after Stop: err = %v, want ErrFinalized", err)
	}
	func() {
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrFinalized) {
				t.Fatalf("Run after Stop panicked %v, want ErrFinalized", r)
			}
		}()
		rt.Run(func(ctx *Ctx) {})
		t.Fatal("Run after Stop returned")
	}()
}

// overloadRun drives one deterministic open-loop overload run and returns
// its observable outputs (stats, PMU totals, job latencies).
func overloadRun(t *testing.T, seed uint64) (JobStats, []int64, [4]int64) {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	plan, err := fault.New("thermal", seed).
		ThermalThrottle(1, 200_000, 1_200_000, 3.0).
		Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m, Options{Workers: 8, Deterministic: true, Faults: plan})
	rt.Start()
	defer rt.Stop()
	svc, err := rt.ServeJobs(JobServiceOptions{
		Policy:       admit.Shed,
		Breakers:     true,
		EvalInterval: 50_000,
		Source: &SpecSource{
			Arrivals: admit.NewPoisson(seed, 3_000, 120),
			Gen: func(i int) JobSpec {
				s := computeJob(4, 8_000, nil)
				s.Priority = i % 3
				s.Deadline = 120_000
				s.Cost = 32_000
				return s
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	lats := make([]int64, 0, 120)
	for _, j := range svc.Jobs() {
		lats = append(lats, j.Latency())
	}
	return svc.Stats(), lats, rt.snapshotCounters()
}

// TestOpenLoopDeterministicReplay (satellite): two open-loop overload runs
// with the same seeds must be bit-identical — stats, shed counts, every
// job latency, and the PMU totals.
func TestOpenLoopDeterministicReplay(t *testing.T) {
	s1, l1, p1 := overloadRun(t, 11)
	s2, l2, p2 := overloadRun(t, 11)
	if s1 != s2 {
		t.Errorf("stats diverge:\n  %+v\n  %+v", s1, s2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Errorf("job latencies diverge")
	}
	if p1 != p2 {
		t.Errorf("PMU counters diverge: %v vs %v", p1, p2)
	}
}

// TestBreakerTripsUnderThermalFault: with breakers on, a browned-out
// chiplet must trip its breaker while the run makes progress.
func TestBreakerTripsUnderThermalFault(t *testing.T) {
	st, _, _ := overloadRun(t, 23)
	if st.BreakerTrips == 0 {
		t.Errorf("no breaker trips under 3x thermal throttle; stats = %+v", st)
	}
	if st.Completed == 0 {
		t.Errorf("no jobs completed; stats = %+v", st)
	}
	if st.Submitted != 120 {
		t.Errorf("Submitted = %d, want 120", st.Submitted)
	}
}
