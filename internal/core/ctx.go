package core

import (
	"fmt"
	"sync/atomic"

	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/topology"
)

// Ctx is the execution context handed to every task. It routes the task's
// memory accesses through the simulated machine, advances the executing
// worker's virtual clock, and exposes the CHARM task API (spawn, yield,
// call, barrier).
//
// A Ctx is only valid inside the task function it was created for.
type Ctx struct {
	w    *Worker
	task *Task
	co   *coroutine
	// bat is the pending run of deferred repeat accesses (fastpath.go).
	bat accessBatch
}

// Worker returns the executing worker's ID. For coroutines this can change
// across Yield points when the task migrates.
func (c *Ctx) Worker() int { return c.w.id }

// CoreID returns the simulated core currently executing the task.
func (c *Ctx) CoreID() topology.CoreID { return c.w.Core() }

// Chiplet returns the chiplet of the executing core.
func (c *Ctx) Chiplet() topology.ChipletID {
	return c.w.fastState(c.w.clock.Now()).chiplet
}

// Now returns the task's current virtual time. Reading the clock settles
// any deferred repeat accesses first, so the time observed includes every
// access the task has issued.
func (c *Ctx) Now() int64 {
	c.flushBatch()
	return c.w.clock.Now()
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.w.rt }

// advance adds cost to the worker clock, inflated by core occupancy when
// several workers share one physical core (up to the core's SMT width the
// sharing is hyperthreading, beyond it timesharing) and by the chiplet's
// thermal-throttle factor. The factors come from the worker's placement
// cache (fastpath.go), which reloads only when the placement epoch moves
// or the clock crosses a thermal segment boundary.
func (c *Ctx) advance(cost int64) {
	w := c.w
	w.clock.Advance(w.fastState(w.clock.Now()).inflate(cost))
}

// stall charges an access cost and accumulates it into the task's stall
// aggregate, the memory/fabric half of its trace span's execution window.
func (c *Ctx) stall(cost int64) {
	if c.task != nil {
		c.task.stallNS += cost
	}
	c.advance(cost)
}

// Read simulates reading [addr, addr+size).
func (c *Ctx) Read(addr mem.Addr, size int64) {
	c.access(addr, size, false)
}

// Write simulates writing [addr, addr+size).
func (c *Ctx) Write(addr mem.Addr, size int64) {
	c.access(addr, size, true)
}

// RMW simulates an atomic read-modify-write on [addr, addr+size): a read, a
// write, and the intra-chiplet CAS cost (crossing-chiplet cost emerges from
// the coherence model when the line is held elsewhere).
func (c *Ctx) RMW(addr mem.Addr, size int64) {
	c.flushBatch()
	core, now := c.w.Core(), c.w.clock.Now()
	cost := c.w.rt.M.Access(core, now, addr, size, false)
	cost += c.w.rt.M.Access(core, now+cost, addr, size, true)
	cost += c.w.rt.M.Topo.Cost.CASIntraChiplet
	c.stall(cost)
}

// Compute charges ns nanoseconds of pure CPU work. The busy time is also
// counted on the core's ComputeNS PMU counter — the signal the energy
// model prices into dynamic compute power.
func (c *Ctx) Compute(ns int64) {
	c.flushBatch()
	if ns > 0 {
		// Heterogeneous chiplets run compute at their kind's speed: an
		// accelerator shrinks the busy-time, an efficiency core stretches
		// it. The scaled time is what the PMU prices (a faster die busy
		// for less virtual time burns correspondingly less energy).
		if m := c.w.fastState(c.w.clock.Now()).compMilli; m != 1000 {
			ns = ns * m / 1000
			if ns < 1 {
				ns = 1
			}
		}
		c.w.rt.M.PMU.Add(int(c.w.Core()), pmu.ComputeNS, ns)
	}
	c.advance(ns)
}

// Alloc reserves simulated memory bound to the worker's current NUMA node
// (the allocation policy Alg. 2 maintains). The worker remembers its
// allocations so memory-migrating policies can move them with it.
func (c *Ctx) Alloc(size int64) mem.Addr {
	a := c.w.rt.M.Space.AllocLocal(size, c.w.allocNode)
	c.w.ownAllocs = append(c.w.ownAllocs, a)
	return a
}

// Yield is the cooperative scheduling point of §4.4. In a coroutine task it
// suspends execution: the worker regains control, may run or steal other
// tasks, the profiler/adaptive controller runs, and the coroutine resumes
// later — possibly on a different worker and chiplet. In a run-to-completion
// task it is only a scheduling check point (the Alg. 1 timer).
func (c *Ctx) Yield() {
	c.flushBatch()
	if c.co == nil {
		if c.task != nil && c.task.jobCancelled() {
			// Cooperative cancellation point: unwind the task body; the
			// worker's recover path discards instead of retrying.
			panic(cancelUnwind{})
		}
		// Scheduling point: honor the virtual-time gate (so concurrent
		// tasks interleave at window granularity even mid-task) and run
		// the Alg. 1 timer. Under lockstep the turn cycles instead, which
		// interleaves workers in virtual-clock order.
		c.w.yieldTurn()
		c.w.throttle()
		c.w.maybeTick()
		return
	}
	c.co.yield()
}

// Spawn schedules fn as a new task in the same completion group, on the
// current worker's deque (stealable, so load balancing distributes it).
func (c *Ctx) Spawn(fn func(*Ctx)) {
	c.flushBatch()
	t := c.w.newTask(fn, c.task.grp, c.w.clock.Now(), false, c.w.id)
	t.job = c.task.job
	t.stage = c.task.stage
	c.task.grp.add(1)
	c.w.rt.met.spawns.Inc(c.w.id)
	c.w.deque.Push(t)
}

// SpawnCo schedules fn as a coroutine task (suspendable via Yield).
func (c *Ctx) SpawnCo(fn func(*Ctx)) {
	c.flushBatch()
	t := c.w.newTask(fn, c.task.grp, c.w.clock.Now(), true, c.w.id)
	t.job = c.task.job
	t.stage = c.task.stage
	c.task.grp.add(1)
	c.w.rt.met.spawns.Inc(c.w.id)
	c.w.deque.Push(t)
}

// CallAsync sends fn for asynchronous execution on the target worker (the
// call_async RPC of the CHARM API). The message pays the fabric latency
// between the two workers' cores.
func (c *Ctx) CallAsync(target int, fn func(*Ctx)) {
	c.flushBatch()
	rt := c.w.rt
	if target < 0 || target >= len(rt.workers) {
		panic(fmt.Sprintf("core: CallAsync target %d out of range", target))
	}
	target = rt.liveTarget(target, c.w.clock.Now())
	tw := rt.workers[target]
	// The sender pays the message-issue cost; the in-flight latency is
	// carried by the task's start stamp.
	c.advance(rt.M.Topo.Cost.StealPenalty)
	delay := rt.M.Fabric.MessageDelay(c.w.Core(), tw.Core(), c.w.clock.Now(), 64)
	t := c.w.newTask(fn, c.task.grp, c.w.clock.Now()+delay, false, target)
	t.pinned = true
	t.job = c.task.job
	t.stage = c.task.stage
	t.delegated = true
	t.hops = c.task.hops + 1
	rt.met.delegations.Inc(c.w.id)
	c.task.grp.add(1)
	tw.inbox.Put(t)
}

// Call executes fn on the target worker and blocks until it completes (the
// synchronous call RPC). The reply pays the return fabric latency. Calling
// a worker's own ID runs fn inline. From a run-to-completion task, Call on
// another worker spins the host thread; prefer coroutines for heavy RPC use.
func (c *Ctx) Call(target int, fn func(*Ctx)) {
	c.flushBatch()
	rt := c.w.rt
	if target == c.w.id {
		fn(c)
		return
	}
	if target < 0 || target >= len(rt.workers) {
		panic(fmt.Sprintf("core: Call target %d out of range", target))
	}
	target = rt.liveTarget(target, c.w.clock.Now())
	if target == c.w.id {
		fn(c)
		return
	}
	tw := rt.workers[target]
	sendDelay := rt.M.Fabric.MessageDelay(c.w.Core(), tw.Core(), c.w.clock.Now(), 64)
	var done atomic.Bool
	var finish atomic.Int64
	g := &callGroup{done: &done, finish: &finish}
	t := c.w.newTask(fn, nil, c.w.clock.Now()+sendDelay, false, target)
	t.pinned = true
	t.grp = nil
	t.onDone = g
	// Propagate the job so a cancelled job's RPC body is discarded (its
	// onDone still fires, releasing the caller's poll loop below).
	t.job = c.task.job
	t.stage = c.task.stage
	t.delegated = true
	t.hops = c.task.hops + 1
	rt.met.delegations.Inc(c.w.id)
	tw.inbox.Put(t)
	if c.co != nil {
		// Coroutine: suspend between polls; the worker keeps scheduling.
		for !done.Load() {
			c.co.yield()
		}
	} else if ls := rt.ls; ls != nil {
		// Deterministic mode: hand the turn away until the reply lands.
		c.w.blocked.Store(true)
		ls.blockOn(c.w.id, done.Load)
		c.w.blocked.Store(false)
	} else {
		// Run-to-completion task: the worker itself blocks.
		c.w.blocked.Store(true)
		for !done.Load() {
			yieldHost()
		}
		c.w.blocked.Store(false)
	}
	replyDelay := rt.M.Fabric.MessageDelay(tw.Core(), c.w.Core(), finish.Load(), 64)
	c.w.clock.SyncTo(finish.Load() + replyDelay)
	if p := g.pan.Load(); p != nil {
		panic(p)
	}
}

// liveTarget redirects a delegation aimed at a worker whose core is
// offline at time t to a live worker (graceful degradation: the RPC runs
// on the dead target's replacement instead of queueing forever).
func (rt *Runtime) liveTarget(target int, t int64) int {
	if p := rt.opts.Faults; p != nil && p.CoreDown(rt.workers[target].Core(), t) {
		return rt.nextLiveWorker(target, t)
	}
	return target
}

// callGroup carries the completion signal of a synchronous Call.
type callGroup struct {
	done   *atomic.Bool
	finish *atomic.Int64
	pan    atomic.Pointer[TaskError]
}

// Barrier blocks until all parties of b arrived; every party leaves at the
// common (maximum) virtual time plus the barrier cost — the barrier()
// primitive of the CHARM API. Use one task per worker (AllDo) to avoid
// starving the barrier.
func (c *Ctx) Barrier(b *RtBarrier) {
	c.flushBatch()
	if ls := c.w.rt.ls; ls != nil && c.co == nil {
		// Deterministic mode: register the arrival, then hand the turn
		// away until the last party closes the generation.
		g := b.enter(c.Now())
		c.w.blocked.Store(true)
		for {
			ls.blockOn(c.w.id, func() bool {
				return g.released() || !c.w.inbox.Empty()
			})
			if g.released() || c.w.rt.stop.Load() {
				break
			}
			// A task delivered mid-barrier (a faulted worker re-homing
			// its queue here) would strand in the inbox while this
			// goroutine is parked inside the party's stack: spill it to
			// the deque, where thieves can rescue it.
			for {
				t := c.w.inbox.Take()
				if t == nil {
					break
				}
				c.w.deque.Push(t)
			}
		}
		c.w.blocked.Store(false)
		c.w.clock.SyncTo(g.t)
		return
	}
	c.w.blocked.Store(true)
	t := b.wait(c.Now())
	c.w.blocked.Store(false)
	c.w.clock.SyncTo(t)
}

// Fills returns the executing core's cumulative fills-from-system counter —
// the per-task profiling view of §4.5. Reading a PMU counter settles any
// deferred repeat accesses so their fills are visible.
func (c *Ctx) Fills() int64 {
	c.flushBatch()
	return c.w.rt.M.PMU.FillsFromSystem(int(c.w.Core()))
}

// Event reads an arbitrary PMU counter of the executing core.
func (c *Ctx) Event(e pmu.Event) int64 {
	c.flushBatch()
	return c.w.rt.M.PMU.Read(int(c.w.Core()), e)
}
