package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"charm/internal/admit"
	"charm/internal/obs"
	"charm/internal/tenant"
)

// This file is the multi-tenant isolation plane of the job service. With
// JobServiceOptions.Tenants set, the single admission heap becomes one
// bounded queue per tenant, drained by a deficit-round-robin mux so every
// tenant holds a weighted fair share of dispatch slots; per-tenant token
// buckets rate-limit arrivals under each tenant's own overflow policy; and
// chiplet-group leases — arbitrated at every evaluation tick through the
// placement plane's liveness view — partition the machine elastically, so
// a bursting tenant floods its own lease instead of its neighbors'.
// Single-tenant services (Tenants empty) take none of these paths.
//
// All tenant state lives behind svc.mu like the rest of the service, so
// deterministic runs arbitrate identically: queues are scanned in tenant
// index order, the DRR cursor and lease table are pure state machines, and
// every tie-break is total.

// Typed multi-tenant admission errors.
var (
	// ErrUnknownTenant reports a submission naming no configured tenant.
	ErrUnknownTenant = errors.New("core: unknown tenant")
	// ErrRateLimited reports a submission refused by its tenant's token
	// bucket (Reject/Shed overflow policy, or a synchronous submission
	// under Block).
	ErrRateLimited = errors.New("core: tenant rate limit exceeded")
)

// TenantConfig declares one tenant of a multi-tenant job service.
type TenantConfig struct {
	// Spec is the tenant's admission contract (weight, quota, rate
	// limit, backpressure policy). See tenant.ParseSpec for the grammar.
	Spec tenant.Spec
	// Source is the tenant's open-loop arrival stream (nil = external
	// SubmitJob only, routed by JobSpec.Tenant).
	Source JobSource
}

// TenantStats is one tenant's admission and lease ledger.
type TenantStats struct {
	// Name is the tenant's configured name.
	Name string
	// Submitted counts every arrival presented; Admitted entered the
	// tenant's queue; Completed ran to completion; Met completed within
	// deadline.
	Submitted, Admitted, Completed, Met int64
	// Rejected, Shed, Expired, Cancelled, Failed mirror JobStats per
	// tenant. RateLimited counts arrivals refused (or shed) by the token
	// bucket; it is included in Rejected/Shed.
	Rejected, Shed, Expired, Cancelled, Failed, RateLimited int64
	// MaxQueue is the tenant queue's high-water mark.
	MaxQueue int
	// Leases is the tenant's current chiplet-lease count; Quota is its
	// configured guarantee; LeaseGrants and LeaseReclaims are lifetime
	// acquisition/loss counts.
	Leases        int
	Quota         int
	LeaseGrants   int64
	LeaseReclaims int64
}

// tenantRt is one tenant's runtime state, guarded by svc.mu.
type tenantRt struct {
	spec    tenant.Spec
	q       *admit.Queue
	bucket  *tenant.Bucket
	src     JobSource
	pending *Job
	srcOK   bool
	// bucketAt is the virtual time the next token matures for a
	// Block-policy arrival held upstream by the rate limiter (0 = none).
	bucketAt int64
	inflight int
	stats    TenantStats

	lat      *obs.Histogram
	leases   *obs.Gauge
	mAdmit   *obs.Counter
	mDone    *obs.Counter
	mShed    *obs.Counter
	mReject  *obs.Counter
	mLimited *obs.Counter
}

// setupTenants builds the multi-tenant plane during ServeJobs. Caller has
// already defaulted the global options.
func (s *JobService) setupTenants(cfgs []TenantConfig) error {
	if s.opts.Source != nil {
		return errors.New("core: Tenants and a global Source are mutually exclusive (give each tenant its own)")
	}
	nch := s.rt.M.Topo.NumChiplets()
	s.tenIdx = make(map[string]int, len(cfgs))
	weights := make([]int64, len(cfgs))
	quotas := make([]int, len(cfgs))
	quotaSum := 0
	reg := s.rt.met.reg
	for i, c := range cfgs {
		spec := c.Spec
		if err := spec.Validate(); err != nil {
			return err
		}
		if _, dup := s.tenIdx[spec.Name]; dup {
			return errors.New("core: duplicate tenant " + strconv.Quote(spec.Name))
		}
		s.tenIdx[spec.Name] = i
		weights[i] = spec.Weight
		quotas[i] = spec.Quota
		quotaSum += spec.Quota
		qcap := spec.QueueCap
		if qcap <= 0 {
			qcap = s.opts.QueueCapacity
		}
		l := obs.Labels{"tenant": spec.Name}
		outcome := func(o string) obs.Labels {
			return obs.Labels{"tenant": spec.Name, "outcome": o}
		}
		tr := &tenantRt{
			spec:   spec,
			q:      admit.NewQueue(qcap, spec.Policy),
			bucket: tenant.NewBucket(spec.GapNS, spec.Burst),
			src:    c.Source,
			stats:  TenantStats{Name: spec.Name},
			lat: reg.Histogram("charm_tenant_job_latency_ns",
				"Virtual ns from job arrival to completion, per tenant.",
				l, latencyBounds, obs.WithExemplars()),
			leases: reg.Gauge("charm_tenant_leases",
				"Chiplet-group leases currently held by the tenant.", l, obs.Traced()),
			mAdmit: reg.Counter("charm_tenant_jobs_total",
				"Per-tenant job admission outcomes.", outcome("admitted")),
			mDone: reg.Counter("charm_tenant_jobs_total",
				"Per-tenant job admission outcomes.", outcome("completed")),
			mShed: reg.Counter("charm_tenant_jobs_total",
				"Per-tenant job admission outcomes.", outcome("shed")),
			mReject: reg.Counter("charm_tenant_jobs_total",
				"Per-tenant job admission outcomes.", outcome("rejected")),
			mLimited: reg.Counter("charm_tenant_jobs_total",
				"Per-tenant job admission outcomes.", outcome("rate-limited")),
		}
		s.tens = append(s.tens, tr)
	}
	if quotaSum > nch {
		return errors.New("core: tenant quotas oversubscribe the machine: " +
			strconv.Itoa(quotaSum) + " chiplets guaranteed, " + strconv.Itoa(nch) + " exist")
	}
	s.drr = tenant.NewDRR(weights)
	s.leases = tenant.NewLeaseTable(nch, quotas, weights)
	s.estBank = admit.NewEstimatorBank(len(cfgs), s.opts.EstQuantile, s.opts.EstMinSamples)
	s.publishLeaseViewLocked()
	for i, tr := range s.tens {
		if tr.src != nil {
			s.advanceTenantSource(i)
		}
	}
	return nil
}

// tenantOf resolves a spec's tenant name (empty selects tenant 0, so
// single-tenant callers keep working against a tenant-enabled service).
func (s *JobService) tenantOf(spec *JobSpec) (int, error) {
	if spec.Tenant == "" {
		return 0, nil
	}
	i, ok := s.tenIdx[spec.Tenant]
	if !ok {
		return -1, fmt.Errorf("%w: %q", ErrUnknownTenant, spec.Tenant)
	}
	return i, nil
}

// advanceTenantSource pulls tenant i's next arrival into its pending
// cursor. Caller holds mu (or is still constructing the service).
func (s *JobService) advanceTenantSource(i int) {
	tr := s.tens[i]
	at, spec, ok := tr.src.Next()
	if !ok {
		tr.pending, tr.srcOK = nil, false
		return
	}
	if err := validateSpec(&spec); err != nil {
		panic(err)
	}
	tr.srcOK = true
	j := s.newJobLocked(at, spec)
	j.ten = i
	tr.pending = j
}

// admitDueTenantLocked processes tenant i's due arrivals at time now:
// token bucket first (Block holds the arrival upstream until a token
// matures; Reject/Shed refuse outright), then the tenant queue under the
// tenant's own policy. Returns true when it decided at least one arrival.
func (s *JobService) admitDueTenantLocked(i int, now int64) bool {
	tr := s.tens[i]
	did := false
	for tr.pending != nil && tr.pending.arrival <= now {
		j := tr.pending
		if tr.spec.Policy == admit.Block && tr.q.Len() >= tr.q.Cap() {
			break // held upstream until dispatch frees queue space
		}
		if !tr.bucket.Take(now) {
			if tr.spec.Policy == admit.Block {
				tr.bucketAt = tr.bucket.NextAt(now)
				break // held upstream until a token matures
			}
			s.rateLimitLocked(tr, j, now)
			did = true
			s.advanceTenantSource(i)
			continue
		}
		tr.bucketAt = 0
		s.offerTenantLocked(j)
		did = true
		s.advanceTenantSource(i)
	}
	return did
}

// rateLimitLocked refuses arrival j under tenant tr's overflow policy
// after a token-bucket miss.
func (s *JobService) rateLimitLocked(tr *tenantRt, j *Job, now int64) {
	s.stats.Submitted++
	tr.stats.Submitted++
	tr.stats.RateLimited++
	tr.mLimited.Add(0, 1)
	m := s.rt.met
	if tr.spec.Policy == admit.Shed {
		s.stats.Shed++
		tr.stats.Shed++
		m.jobsShed.Add(0, 1)
		s.finalizeLocked(j, JobShed, now)
		return
	}
	s.stats.Rejected++
	tr.stats.Rejected++
	m.jobsRejected.Add(0, 1)
	s.finalizeLocked(j, JobRejected, now)
}

// offerTenantLocked presents job j to its tenant's admission queue. The
// token bucket has already been consulted.
func (s *JobService) offerTenantLocked(j *Job) error {
	tr := s.tens[j.ten]
	s.stats.Submitted++
	tr.stats.Submitted++
	m := s.rt.met
	est := s.estBank.Estimate(j.ten, j.spec.Cost)
	if tr.q.Policy() == admit.Shed && s.thermMilli > 1000 {
		est = est * s.thermMilli / 1000
	}
	evicted, err := tr.q.Offer(j.arrival, admit.Entry{
		Seq:      j.id,
		Priority: j.spec.Priority,
		Arrival:  j.arrival,
		Deadline: j.deadline,
		Est:      est,
		Payload:  j,
	})
	if evicted != nil {
		v := evicted.Payload.(*Job)
		s.stats.Shed++
		tr.stats.Shed++
		tr.mShed.Add(0, 1)
		m.jobsShed.Add(0, 1)
		s.finalizeLocked(v, JobShed, j.arrival)
	}
	switch {
	case err == nil:
		s.stats.Admitted++
		tr.stats.Admitted++
		tr.mAdmit.Add(0, 1)
		m.jobsAdmitted.Add(0, 1)
		if n := tr.q.Len(); n > tr.stats.MaxQueue {
			tr.stats.MaxQueue = n
		}
		if n := s.backlogLocked(); n > s.stats.MaxQueue {
			s.stats.MaxQueue = n
		}
		m.jobQueueDepth.Set(0, int64(s.backlogLocked()))
		return nil
	case err == admit.ErrHopeless:
		s.stats.Shed++
		tr.stats.Shed++
		tr.mShed.Add(0, 1)
		m.jobsShed.Add(0, 1)
		s.finalizeLocked(j, JobShed, j.arrival)
	default: // ErrQueueFull, ErrWouldBlock
		s.stats.Rejected++
		tr.stats.Rejected++
		tr.mReject.Add(0, 1)
		m.jobsRejected.Add(0, 1)
		s.finalizeLocked(j, JobRejected, j.arrival)
	}
	return err
}

// backlogLocked sums the tenant queues.
func (s *JobService) backlogLocked() int {
	n := 0
	for _, tr := range s.tens {
		n += tr.q.Len()
	}
	return n
}

// pumpTenants is the multi-tenant pump body: per-tenant admission, the
// shared periodic evaluation, then DRR-fair dispatch. Caller holds mu.
func (s *JobService) pumpTenants(now int64) bool {
	did := false

	// 1. Admission, tenant by tenant in index order.
	for i := range s.tens {
		if s.admitDueTenantLocked(i, now) {
			did = true
		}
	}

	// 2. Periodic evaluation: telemetry, breakers, thermal forecast, and
	// lease arbitration.
	if now-s.lastEval >= s.opts.EvalInterval {
		s.evalLocked(now)
		s.evalSLOLocked(now)
		did = true
	}

	// 3. Dispatch: the DRR mux grants one slot at a time, so over any
	// backlogged window each tenant's share of dispatch slots tracks its
	// weight regardless of how deep any one queue is.
	m := s.rt.met
	for s.inflight < s.opts.MaxInFlight {
		ti := s.drr.Next(func(i int) bool { return s.tens[i].q.Len() > 0 })
		if ti < 0 {
			break
		}
		tr := s.tens[ti]
		e, ok := tr.q.Pop()
		if !ok {
			break
		}
		did = true
		m.jobQueueDepth.Set(0, int64(s.backlogLocked()))
		j := e.Payload.(*Job)
		if j.cancelled.Load() {
			s.stats.Cancelled++
			tr.stats.Cancelled++
			m.jobsCancelled.Add(0, 1)
			s.finalizeLocked(j, JobCancelled, now)
			continue
		}
		if tr.q.Policy() == admit.Shed {
			if j.deadline != 0 && j.deadline <= now {
				s.stats.Expired++
				tr.stats.Expired++
				m.jobsExpired.Add(0, 1)
				s.finalizeLocked(j, JobExpired, now)
				continue
			}
			est := s.estBank.Estimate(ti, j.spec.Cost)
			if s.thermMilli > 1000 {
				est = est * s.thermMilli / 1000
			}
			if j.deadline != 0 && j.deadline-now < est {
				s.stats.Shed++
				tr.stats.Shed++
				tr.mShed.Add(0, 1)
				m.jobsShed.Add(0, 1)
				s.finalizeLocked(j, JobShed, now)
				continue
			}
		}
		s.startLocked(j, now)
	}

	// 4. Dispatch may have freed queue space a Block-policy arrival was
	// waiting on.
	for i := range s.tens {
		if s.admitDueTenantLocked(i, now) {
			did = true
		}
	}
	return did
}

// evalTenantsLocked arbitrates the chiplet-group leases at an evaluation
// tick: chiplets live (hosting at least one worker on a live core) flow to
// demanding tenants — quota first, then weight-proportional growth — and
// leases on parked or offlined chiplets are voided so the tenant's share
// re-homes instead of starving. Emits a SpanLease per ownership change.
func (s *JobService) evalTenantsLocked(now int64) {
	topo := s.rt.M.Topo
	live := make([]bool, topo.NumChiplets())
	plan := s.rt.opts.Faults
	for _, w := range s.rt.workers {
		c := w.Core()
		if plan == nil || !plan.CoreDown(c, now) {
			live[topo.ChipletOf(c)] = true
		}
	}
	demand := make([]bool, len(s.tens))
	for i, tr := range s.tens {
		demand[i] = tr.q.Len() > 0 || tr.inflight > 0 ||
			(tr.pending != nil && tr.pending.arrival <= now)
	}
	evs := s.leases.Rebalance(live, demand)
	if len(evs) > 0 {
		s.publishLeaseViewLocked()
		if tr := s.rt.tracer; tr.Enabled() {
			for _, e := range evs {
				tr.Emit(s.trShard, obs.Span{Kind: obs.SpanLease,
					Start: now, End: now, Chiplet: int32(e.Chiplet), Stage: -1,
					Arg: int64(e.To), Arg2: int64(e.From)})
			}
		}
		for i, tr := range s.tens {
			tr.leases.Set(0, int64(s.leases.Held(i)))
		}
	}
}

// TenantStats returns every tenant's ledger in configuration order (nil
// for a single-tenant service).
func (s *JobService) TenantStats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, len(s.tens))
	for i, tr := range s.tens {
		st := tr.stats
		st.Quota = tr.spec.Quota
		st.Leases = s.leases.Held(i)
		st.LeaseGrants = s.leases.Grants(i)
		st.LeaseReclaims = s.leases.Reclaims(i)
		out[i] = st
	}
	return out
}

// TenantNames returns the configured tenant names in index order.
func (s *JobService) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.tens))
	for i, tr := range s.tens {
		names[i] = tr.spec.Name
	}
	return names
}

// LeaseOwners returns the chiplet→tenant-index ownership map (-1 = free;
// nil for a single-tenant service).
func (s *JobService) LeaseOwners() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leases == nil {
		return nil
	}
	return s.leases.Owners()
}

// DispatchGrants returns the DRR mux's cumulative dispatch slots per
// tenant (nil for a single-tenant service).
func (s *JobService) DispatchGrants() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drr == nil {
		return nil
	}
	return s.drr.Grants()
}

// publishLeaseViewLocked republishes the lock-free ownership snapshot the
// steal fence reads.
func (s *JobService) publishLeaseViewLocked() {
	owners := s.leases.Owners()
	view := make([]int32, len(owners))
	for ch, o := range owners {
		view[ch] = int32(o)
	}
	s.leaseView.Store(&view)
}

// stealAllowed is the work-stealing lease fence, consulted lock-free on
// the steal path: a thief on chiplet ch may not import a task of a tenant
// that does not own ch. Free chiplets (owner -1) and non-tenant tasks are
// unfenced, and the caller bypasses the fence for blocked victims —
// rescue beats isolation, exactly like the pinned-task escape hatch.
func (s *JobService) stealAllowed(ch int, t *Task) bool {
	if t.job == nil || t.job.ten < 0 {
		return true
	}
	p := s.leaseView.Load()
	if p == nil || ch < 0 || ch >= len(*p) {
		return true
	}
	owner := (*p)[ch]
	return owner < 0 || owner == int32(t.job.ten)
}

// updateNextWorkTenantsLocked is updateNextWorkLocked's multi-tenant
// body: the pump's next wake-up is the earliest of a dispatchable
// backlog (now), the earliest decidable pending arrival — pushed out to
// its token-maturity time when the rate limiter holds it upstream — and
// the next evaluation tick.
func (s *JobService) updateNextWorkTenantsLocked() {
	next := int64(math.MaxInt64)
	backlog := 0
	anySrc, anyPend := false, false
	for _, tr := range s.tens {
		backlog += tr.q.Len()
		if tr.srcOK {
			anySrc = true
		}
		if tr.pending == nil {
			continue
		}
		anyPend = true
		if tr.spec.Policy == admit.Block && tr.q.Len() >= tr.q.Cap() {
			continue // waits for dispatch to free queue space
		}
		t := tr.pending.arrival
		if tr.bucketAt > t {
			t = tr.bucketAt
		}
		if t < next {
			next = t
		}
	}
	if backlog > 0 && s.inflight < s.opts.MaxInFlight {
		next = 0
	}
	if s.inflight > 0 || backlog > 0 || anySrc || anyPend {
		if due := s.lastEval + s.opts.EvalInterval; due < next {
			next = due
		}
	}
	s.nextWork.Store(next)
}

// updateThermLocked refreshes the thermal shed-pressure factor from the
// power plane's temperature forecast: with the horizon set a few governor
// ticks out, the fraction of chiplets forecast to cross the soft
// setpoint scales Shed-policy service estimates toward the soft-throttle
// slowdown — so deadline-hopeless jobs are shed before the throttle
// cliff, not discovered after it. A pure function of the published
// snapshot, so deterministic replays recompute it identically.
func (s *JobService) updateThermLocked() {
	pw := s.rt.power
	if pw == nil {
		s.thermMilli = 1000
		return
	}
	fc := pw.ForecastMilliC(4 * pw.Tick())
	soft := pw.SoftMilliC()
	over := 0
	for _, f := range fc {
		if f >= soft {
			over++
		}
	}
	factor := pw.SoftFactorMilli()
	if over == 0 || len(fc) == 0 || factor <= 1000 {
		s.thermMilli = 1000
		return
	}
	s.thermMilli = 1000 + (factor-1000)*int64(over)/int64(len(fc))
}
