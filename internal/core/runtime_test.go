package core

import (
	"sync/atomic"
	"testing"

	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/sim"
	"charm/internal/topology"
)

func newTestRT(t *testing.T, workers int, opts ...func(*Options)) *Runtime {
	t.Helper()
	m := sim.New(sim.Config{Topo: topology.SyntheticDual(2, 4)})
	o := Options{Workers: workers, SchedulerTimer: 50_000}
	for _, f := range opts {
		f(&o)
	}
	rt := NewRuntime(m, o)
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

func TestRunExecutesRoot(t *testing.T) {
	rt := newTestRT(t, 4)
	var ran atomic.Bool
	st := rt.Run(func(ctx *Ctx) {
		ctx.Compute(1000)
		ran.Store(true)
	})
	if !ran.Load() {
		t.Fatal("root task did not run")
	}
	if st.Makespan < 1000 {
		t.Errorf("makespan = %d, want >= 1000", st.Makespan)
	}
	if st.Tasks != 1 {
		t.Errorf("tasks = %d, want 1", st.Tasks)
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	m := sim.New(sim.Config{Topo: topology.Synthetic(2, 2)})
	mustPanic(t, "zero workers", func() { NewRuntime(m, Options{Workers: 0}) })
	mustPanic(t, "too many workers", func() { NewRuntime(m, Options{Workers: 100}) })
	// Oversubscribe lifts the cap.
	rt := NewRuntime(m, Options{Workers: 100, Oversubscribe: true})
	if rt.Workers() != 100 {
		t.Errorf("Workers = %d, want 100", rt.Workers())
	}
	mustPanic(t, "double start", func() {
		rt2 := NewRuntime(m, Options{Workers: 1})
		rt2.Start()
		defer rt2.Stop()
		rt2.Start()
	})
}

func TestSubmitBeforeStartPanics(t *testing.T) {
	m := sim.New(sim.Config{Topo: topology.Synthetic(2, 2)})
	rt := NewRuntime(m, Options{Workers: 2})
	mustPanic(t, "run before start", func() { rt.Run(func(*Ctx) {}) })
}

func TestAllDoRunsOncePerWorker(t *testing.T) {
	rt := newTestRT(t, 6)
	var hits [8]atomic.Int64
	st := rt.AllDo(func(ctx *Ctx) {
		hits[ctx.Worker()].Add(1)
		ctx.Compute(100)
	})
	if st.Tasks != 6 {
		t.Errorf("tasks = %d, want 6", st.Tasks)
	}
	for i := 0; i < 6; i++ {
		if hits[i].Load() != 1 {
			t.Errorf("worker %d ran %d times, want 1", i, hits[i].Load())
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	rt := newTestRT(t, 4)
	var covered [1000]atomic.Int32
	rt.ParallelFor(0, 1000, 7, func(ctx *Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			covered[i].Add(1)
		}
		ctx.Compute(10)
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestParallelForEmptyAndGrainClamp(t *testing.T) {
	rt := newTestRT(t, 2)
	st := rt.ParallelFor(5, 5, 10, func(ctx *Ctx, i0, i1 int) {
		t.Error("body must not run for empty range")
	})
	if st.Tasks != 0 {
		t.Errorf("tasks = %d, want 0", st.Tasks)
	}
	var n atomic.Int64
	rt.ParallelFor(0, 3, 0, func(ctx *Ctx, i0, i1 int) { n.Add(int64(i1 - i0)) })
	if n.Load() != 3 {
		t.Errorf("grain 0 covered %d, want 3", n.Load())
	}
}

func TestSpawnRecursive(t *testing.T) {
	rt := newTestRT(t, 4)
	var count atomic.Int64
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < 10; i++ {
			ctx.Spawn(func(c2 *Ctx) {
				count.Add(1)
				c2.Spawn(func(c3 *Ctx) { count.Add(1) })
			})
		}
	})
	if count.Load() != 20 {
		t.Errorf("spawned tasks = %d, want 20", count.Load())
	}
}

func TestWorkStealingDistributes(t *testing.T) {
	rt := newTestRT(t, 4)
	var perWorker [4]atomic.Int64
	// All tasks spawn from the root on one worker; stealing must spread
	// them.
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < 200; i++ {
			ctx.Spawn(func(c *Ctx) {
				perWorker[c.Worker()].Add(1)
				c.Compute(10_000)
			})
		}
	})
	busy := 0
	for i := range perWorker {
		if perWorker[i].Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d workers participated; stealing failed", busy)
	}
	if got := rt.M.PMU.Total(pmu.TaskSteal); got == 0 {
		t.Error("no steals recorded")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	rt := newTestRT(t, 2)
	st1 := rt.Run(func(ctx *Ctx) { ctx.Compute(5000) })
	start2 := rt.Now()
	if start2 < 5000 {
		t.Errorf("phase clock = %d, want >= 5000", start2)
	}
	st2 := rt.Run(func(ctx *Ctx) { ctx.Compute(700) })
	if st2.Makespan < 700 {
		t.Errorf("second phase makespan = %d", st2.Makespan)
	}
	_ = st1
}

func TestMemoryAccessChargesClock(t *testing.T) {
	rt := newTestRT(t, 1)
	a := rt.Alloc(1<<16, 0)
	st := rt.Run(func(ctx *Ctx) {
		ctx.Read(a, 1<<16)
	})
	// 1024 lines of cold DRAM reads pipeline with MLP=8 but still cost
	// far more than L2 hits.
	if st.Makespan < 1024*rt.M.Topo.Cost.DRAMLocal/16 {
		t.Errorf("makespan = %d, too cheap for cold reads", st.Makespan)
	}
	if st.Makespan > 1024*rt.M.Topo.Cost.DRAMLocal*2 {
		t.Errorf("makespan = %d, streaming reads failed to pipeline", st.Makespan)
	}
}

func TestCtxAllocBindsToWorkerNode(t *testing.T) {
	rt := newTestRT(t, 8) // 8 workers over 2 sockets (4 cores each)
	var addrs [8]mem.Addr
	rt.AllDo(func(ctx *Ctx) {
		addrs[ctx.Worker()] = ctx.Alloc(mem.PageSize)
	})
	for w := 0; w < 8; w++ {
		wantNode := rt.M.Topo.NodeOfCore(rt.CoreOfWorker(w))
		if got := rt.M.Space.HomeOf(addrs[w], 0); got != wantNode {
			t.Errorf("worker %d alloc homed on %d, want %d", w, got, wantNode)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	rt := newTestRT(t, 4)
	b := rt.NewBarrier(4)
	var after [4]int64
	rt.AllDo(func(ctx *Ctx) {
		// Unequal work before the barrier.
		ctx.Compute(int64(ctx.Worker()+1) * 10_000)
		ctx.Barrier(b)
		after[ctx.Worker()] = ctx.Now()
	})
	for w := 1; w < 4; w++ {
		if after[w] != after[0] {
			t.Errorf("worker %d left barrier at %d, worker 0 at %d", w, after[w], after[0])
		}
	}
	if after[0] < 40_000 {
		t.Errorf("barrier release %d < slowest worker's 40000", after[0])
	}
}

func TestBarrierValidation(t *testing.T) {
	rt := newTestRT(t, 2)
	mustPanic(t, "zero parties", func() { rt.NewBarrier(0) })
}

func TestCallAsyncRunsOnTarget(t *testing.T) {
	rt := newTestRT(t, 4)
	var ranOn atomic.Int64
	ranOn.Store(-1)
	rt.Run(func(ctx *Ctx) {
		ctx.CallAsync(3, func(c *Ctx) {
			ranOn.Store(int64(c.Worker()))
		})
	})
	if ranOn.Load() != 3 {
		t.Errorf("CallAsync ran on worker %d, want 3", ranOn.Load())
	}
}

func TestCallSyncAdvancesCallerClock(t *testing.T) {
	rt := newTestRT(t, 4)
	var callerAfter int64
	rt.Run(func(ctx *Ctx) {
		before := ctx.Now()
		ctx.Call(2, func(c *Ctx) { c.Compute(50_000) })
		callerAfter = ctx.Now() - before
	})
	if callerAfter < 50_000 {
		t.Errorf("caller advanced %d, want >= callee's 50000", callerAfter)
	}
}

func TestCallSelfRunsInline(t *testing.T) {
	rt := newTestRT(t, 2)
	var ok atomic.Bool
	rt.Run(func(ctx *Ctx) {
		self := ctx.Worker()
		ctx.Call(self, func(c *Ctx) { ok.Store(c.Worker() == self) })
	})
	if !ok.Load() {
		t.Error("self Call must run inline on the same worker")
	}
}

func TestCallValidation(t *testing.T) {
	rt := newTestRT(t, 2)
	rt.Run(func(ctx *Ctx) {
		mustPanic(t, "bad target", func() { ctx.Call(99, func(*Ctx) {}) })
		mustPanic(t, "bad async target", func() { ctx.CallAsync(-1, func(*Ctx) {}) })
	})
}

func TestCoroutineYieldAndResume(t *testing.T) {
	rt := newTestRT(t, 2)
	var order []int
	st := rt.submitWait([]func(*Ctx){func(ctx *Ctx) {
		order = append(order, 1)
		ctx.Yield()
		order = append(order, 2)
		ctx.Yield()
		order = append(order, 3)
	}}, false, true)
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if st.Tasks != 1 {
		t.Errorf("tasks = %d, want 1", st.Tasks)
	}
	if got := rt.M.PMU.Total(pmu.CtxSwitch); got < 3 {
		t.Errorf("ctx switches = %d, want >= 3 (start + 2 resumes)", got)
	}
}

func TestCoroutineMigratesAcrossWorkers(t *testing.T) {
	rt := newTestRT(t, 4)
	// One coroutine yields many times while other workers are idle and
	// hungry; it should eventually be stolen and resumed elsewhere.
	seen := map[int]bool{}
	rt.submitWait([]func(*Ctx){func(ctx *Ctx) {
		for i := 0; i < 400; i++ {
			seen[ctx.Worker()] = true
			ctx.Compute(100)
			ctx.Yield()
		}
	}}, false, true)
	if len(seen) < 2 {
		t.Logf("coroutine stayed on one worker (valid but unexpected under idle thieves): %v", seen)
	}
}

func TestLightTaskYieldIsTickPoint(t *testing.T) {
	rt := newTestRT(t, 1)
	rt.Run(func(ctx *Ctx) {
		ctx.Compute(200_000) // well past the 50µs timer
		ctx.Yield()          // must trigger the policy timer, not suspend
	})
	// CHARM policy ran at least once: profiler would have data if enabled;
	// instead check the decision state advanced.
	w := rt.Worker(0)
	if w.lastDecision == 0 {
		t.Error("light-task Yield did not run the scheduler timer")
	}
}

func TestOversubscriptionInflatesCost(t *testing.T) {
	m := sim.New(sim.Config{Topo: topology.Synthetic(1, 2)})
	// 6 workers on 2 cores: occupancy 3 per core.
	rt := NewRuntime(m, Options{Workers: 6, Oversubscribe: true, SchedulerTimer: 1 << 60,
		Policy: NewStaticPolicy(Compact)})
	rt.Start()
	defer rt.Stop()
	st := rt.AllDo(func(ctx *Ctx) { ctx.Compute(1000) })
	if st.Makespan < 3000 {
		t.Errorf("makespan = %d, want >= 3000 under 3x occupancy", st.Makespan)
	}
}

func TestRunStatsCounts(t *testing.T) {
	rt := newTestRT(t, 2)
	st := rt.ParallelFor(0, 100, 1, func(ctx *Ctx, i0, i1 int) { ctx.Compute(10) })
	if st.Tasks != 100 {
		t.Errorf("tasks = %d, want 100", st.Tasks)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestUseSMTAllowsSiblings(t *testing.T) {
	m := sim.New(sim.Config{Topo: func() *topology.Topology {
		tp := topology.Synthetic(2, 2) // 4 physical cores
		tp.SMTWays = 2
		return tp
	}()})
	mustPanic(t, "8 workers without SMT", func() {
		NewRuntime(m, Options{Workers: 8})
	})
	rt := NewRuntime(m, Options{Workers: 8, UseSMT: true,
		Policy: NewStaticPolicy(Compact), SchedulerTimer: 1 << 60})
	rt.Start()
	defer rt.Stop()
	// 8 workers on 4 cores: SMT siblings each run ~1.4x slower, so the
	// makespan of per-worker compute sits between the dedicated-core time
	// and full serialization.
	st := rt.AllDo(func(ctx *Ctx) { ctx.Compute(10_000) })
	if st.Makespan < 14_000 {
		t.Errorf("SMT makespan %d, want >= 14000 (1.4x contention)", st.Makespan)
	}
	if st.Makespan > 20_000*2 {
		t.Errorf("SMT makespan %d, want < 40000 (not fully serialized)", st.Makespan)
	}
}

func TestSMTSiblingsShareL2(t *testing.T) {
	// Each worker streams its own 6 KiB block through an 8 KiB L2.
	// With dedicated cores the block fits and re-reads hit L2; with two
	// SMT siblings per core 12 KiB contend for 8 KiB, so the L2 hit
	// fraction must drop.
	l2Fraction := func(workers int, smt bool) float64 {
		tp := topology.Synthetic(1, 2) // 2 cores, 8 KiB L2 each
		tp.SMTWays = 2
		m := sim.New(sim.Config{Topo: tp})
		rt := NewRuntime(m, Options{Workers: workers, UseSMT: smt,
			Policy: NewStaticPolicy(Compact), SchedulerTimer: 1 << 60})
		rt.Start()
		defer rt.Stop()
		blocks := make([]mem.Addr, workers)
		for i := range blocks {
			blocks[i] = rt.Alloc(6<<10, 0)
		}
		rt.AllDo(func(ctx *Ctx) {
			for r := 0; r < 20; r++ {
				ctx.Read(blocks[ctx.Worker()], 6<<10)
				ctx.Yield()
			}
		})
		l2 := float64(m.PMU.Total(pmu.FillL2))
		l3 := float64(m.PMU.Total(pmu.FillL3Local))
		return l2 / (l2 + l3 + 1)
	}
	dedicated := l2Fraction(2, false)
	shared := l2Fraction(4, true)
	if shared >= dedicated {
		t.Errorf("shared-L2 hit fraction %.3f must be below dedicated %.3f", shared, dedicated)
	}
}

func TestCallAsyncChargesSender(t *testing.T) {
	rt := newTestRT(t, 4)
	var delta int64
	rt.Run(func(ctx *Ctx) {
		before := ctx.Now()
		for i := 0; i < 10; i++ {
			ctx.CallAsync(3, func(*Ctx) {})
		}
		delta = ctx.Now() - before
	})
	want := 10 * rt.M.Topo.Cost.StealPenalty
	if delta < want {
		t.Errorf("sender advanced %d, want >= %d (message issue cost)", delta, want)
	}
}
