package core

import (
	"fmt"
	"sync"

	"charm/internal/vtime"
)

// RtBarrier is the barrier() synchronization primitive of the CHARM API:
// all parties block until the last arrives; everyone resumes at the maximum
// arrival time plus the barrier cost. Reusable across generations.
type RtBarrier struct {
	parties int
	cost    int64

	mu  sync.Mutex
	cur *barGen
}

type barGen struct {
	waiting int
	vb      vtime.Barrier
	release chan struct{}
	t       int64
}

// NewBarrier creates a barrier for n parties.
func (rt *Runtime) NewBarrier(n int) *RtBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("core: barrier parties must be positive, got %d", n))
	}
	return &RtBarrier{
		parties: n,
		cost:    rt.opts.BarrierCost,
		cur:     &barGen{release: make(chan struct{})},
	}
}

// enter registers one arrival at time now without blocking and returns the
// generation to wait on. The last arrival computes the common release time
// and closes the generation.
func (b *RtBarrier) enter(now int64) *barGen {
	b.mu.Lock()
	g := b.cur
	g.vb.Enter(now)
	g.waiting++
	if g.waiting == b.parties {
		g.t = g.vb.Release(b.cost)
		b.cur = &barGen{release: make(chan struct{})}
		close(g.release)
	}
	b.mu.Unlock()
	return g
}

// released reports whether the generation has been closed (safe to poll).
func (g *barGen) released() bool {
	select {
	case <-g.release:
		return true
	default:
		return false
	}
}

// wait blocks the calling goroutine until all parties arrived and returns
// the common virtual release time.
func (b *RtBarrier) wait(now int64) int64 {
	g := b.enter(now)
	<-g.release
	return g.t
}
