package core

import (
	"fmt"
	"sync"

	"charm/internal/vtime"
)

// RtBarrier is the barrier() synchronization primitive of the CHARM API:
// all parties block until the last arrives; everyone resumes at the maximum
// arrival time plus the barrier cost. Reusable across generations.
type RtBarrier struct {
	parties int
	cost    int64

	mu  sync.Mutex
	cur *barGen
}

type barGen struct {
	waiting int
	vb      vtime.Barrier
	release chan struct{}
	t       int64
}

// NewBarrier creates a barrier for n parties.
func (rt *Runtime) NewBarrier(n int) *RtBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("core: barrier parties must be positive, got %d", n))
	}
	return &RtBarrier{
		parties: n,
		cost:    rt.opts.BarrierCost,
		cur:     &barGen{release: make(chan struct{})},
	}
}

// wait blocks the calling goroutine until all parties arrived and returns
// the common virtual release time.
func (b *RtBarrier) wait(now int64) int64 {
	b.mu.Lock()
	g := b.cur
	g.vb.Enter(now)
	g.waiting++
	if g.waiting == b.parties {
		g.t = g.vb.Release(b.cost)
		b.cur = &barGen{release: make(chan struct{})}
		close(g.release)
		b.mu.Unlock()
		return g.t
	}
	b.mu.Unlock()
	<-g.release
	return g.t
}
