package core

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"charm/internal/admit"
	"charm/internal/obs"
	"charm/internal/place"
	"charm/internal/tenant"
	"charm/internal/topology"
)

// This file implements the open-loop job service: jobs — multi-stage
// groups of tasks with a priority and a virtual-time deadline — arrive
// from a seeded arrival source (or external SubmitJob calls) while the
// machine runs, pass a bounded admission queue with a pluggable
// backpressure policy (block / reject / deadline-aware shed), and are
// dispatched through the placement decision plane (internal/place): each
// stage is co-located on the least-loaded live chiplet group whose
// breaker admits it, with a legacy round-robin mode kept as the
// comparison baseline. Cancellation is cooperative:
// a cancelled job's queued tasks are discarded wherever a worker finds
// them (deque, inbox, fault drain, retry), and its running coroutines
// unwind at their next Yield point, so a dead job never consumes a fresh
// coroutine stack.
//
// Determinism: all admission, dispatch, and breaker state lives behind
// svc.mu, and every mutation happens inside a worker's scheduling step.
// Under deterministic lockstep those steps are serialized by the turn
// baton in virtual-clock order, so the whole open-loop run — arrivals
// included — is a pure function of the seeds. (External SubmitJob calls
// pause the fleet like submitWait, but their timing depends on the host;
// deterministic experiments drive arrivals from a Source instead.)

// JobStage is one stage of a job: a set of tasks that run in parallel.
// Stages execute in order; stage k+1 starts when every task of stage k
// (and everything those tasks spawned) has finished — a simple series-
// parallel DAG, which is what the paper's workloads are built from.
type JobStage []func(*Ctx)

// JobSpec describes one job submitted to the open-loop service.
type JobSpec struct {
	// Name labels the job in traces (optional).
	Name string
	// Priority orders admission and dispatch: higher runs first.
	Priority int
	// Deadline is the job's latency budget in virtual ns relative to its
	// arrival (0 = no deadline).
	Deadline int64
	// Cost is the caller's estimate of the job's total service time in
	// virtual ns; used by deadline-aware shedding until the service-time
	// estimator has enough completed-job samples.
	Cost int64
	// Coro runs the job's tasks as suspendable coroutines (cancellation
	// points at every Yield).
	Coro bool
	// Tenant routes the job to a configured tenant on a multi-tenant
	// service (empty selects the first tenant). Ignored — and must stay
	// empty — on a single-tenant service.
	Tenant string
	// Prefer is the preferred chiplet kind for the job's stages on a
	// heterogeneous machine (zero = KindAny = no preference). It is a
	// soft preference: matching-kind chiplets are tried first in the
	// placement walk, but dispatch falls back to any kind rather than
	// queueing — capability matching must never starve a job.
	Prefer topology.ChipletKind
	// Stages are the job's task stages, run in order.
	Stages []JobStage
}

// JobState is a job's lifecycle state.
type JobState int32

const (
	// JobQueued: admitted, waiting for dispatch.
	JobQueued JobState = iota
	// JobRunning: dispatched, tasks executing.
	JobRunning
	// JobCompleted: all stages finished.
	JobCompleted
	// JobFailed: a task failed past its retry budget.
	JobFailed
	// JobCancelled: cancelled before completion.
	JobCancelled
	// JobRejected: refused at admission (queue full, Reject policy).
	JobRejected
	// JobShed: dropped by deadline-aware shedding (hopeless budget or
	// evicted for a more viable arrival).
	JobShed
	// JobExpired: deadline passed while queued (dispatch-time check).
	JobExpired
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	case JobRejected:
		return "rejected"
	case JobShed:
		return "shed"
	case JobExpired:
		return "expired"
	}
	return fmt.Sprintf("JobState(%d)", int32(s))
}

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s != JobQueued && s != JobRunning }

// Job is a submitted job's handle.
type Job struct {
	id   uint64
	spec JobSpec
	svc  *JobService

	state     atomic.Int32
	cancelled atomic.Bool

	arrival  int64        // virtual arrival time
	deadline int64        // absolute deadline (0 = none)
	started  int64        // dispatch time (set before state flips to Running)
	finished atomic.Int64 // completion time (any terminal state)
	stage    int          // next stage to dispatch; guarded by svc.mu
	ten      int          // tenant index (-1 = single-tenant service)

	// Trace bookkeeping for the currently running stage (guarded by
	// svc.mu): dispatch time, index, and task count — the SpanStage
	// emitted when the stage's barrier releases.
	stageStart int64
	curStage   int32
	stageTasks int64

	err  atomic.Pointer[TaskError]
	done chan struct{}
}

// ID returns the job's service-wide sequence number.
func (j *Job) ID() uint64 { return j.id }

// Name returns the spec's label.
func (j *Job) Name() string { return j.spec.Name }

// Spec returns a copy of the job's submitted spec (stage slices shared).
func (j *Job) Spec() JobSpec { return j.spec }

// Priority returns the job's priority.
func (j *Job) Priority() int { return j.spec.Priority }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Tenant returns the owning tenant's name ("" on a single-tenant
// service).
func (j *Job) Tenant() string {
	if j.ten >= 0 && j.svc != nil && j.ten < len(j.svc.tens) {
		return j.svc.tens[j.ten].spec.Name
	}
	return ""
}

// Arrival returns the virtual arrival time.
func (j *Job) Arrival() int64 { return j.arrival }

// Deadline returns the absolute virtual-time deadline (0 = none).
func (j *Job) Deadline() int64 { return j.deadline }

// Finished returns the virtual time the job reached a terminal state
// (0 while still queued or running).
func (j *Job) Finished() int64 { return j.finished.Load() }

// Latency returns arrival→finish in virtual ns (0 until terminal).
func (j *Job) Latency() int64 {
	if f := j.finished.Load(); f > 0 {
		return f - j.arrival
	}
	return 0
}

// MetDeadline reports whether the job completed within its deadline.
// Deadline-free jobs meet trivially when completed.
func (j *Job) MetDeadline() bool {
	if JobState(j.state.Load()) != JobCompleted {
		return false
	}
	return j.deadline == 0 || j.finished.Load() <= j.deadline
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the task failure that terminated the job (nil otherwise).
func (j *Job) Err() error {
	if e := j.err.Load(); e != nil {
		return e
	}
	return nil
}

// Cancel requests cooperative cancellation: queued tasks are discarded
// where workers find them, running coroutines unwind at their next Yield,
// and retries/re-homing drop the job's tasks instead of re-queueing them.
// Safe to call from any goroutine and idempotent; cancelling a terminal
// job is a no-op.
func (j *Job) Cancel() { j.cancelled.Store(true) }

// JobSource produces the open-loop arrival stream: successive (arrival
// time, spec) pairs in non-decreasing virtual time. Next is called by the
// service with its lock held; implementations must be single-threaded and
// deterministic (seeded).
type JobSource interface {
	Next() (at int64, spec JobSpec, ok bool)
}

// SpecSource adapts an admit.ArrivalProcess plus a spec generator into a
// JobSource — the usual way to build a seeded Poisson or trace workload.
type SpecSource struct {
	// Arrivals yields the arrival times.
	Arrivals admit.ArrivalProcess
	// Gen builds the i-th job's spec (i counts from 0).
	Gen func(i int) JobSpec
	n   int
}

// Next implements JobSource.
func (s *SpecSource) Next() (int64, JobSpec, bool) {
	at, ok := s.Arrivals.Next()
	if !ok {
		return 0, JobSpec{}, false
	}
	spec := s.Gen(s.n)
	s.n++
	return at, spec, true
}

// JobPlacement selects how dispatch maps a stage's tasks onto workers.
type JobPlacement uint8

const (
	// PlaceLoadAware (the default) co-locates each stage's tasks on the
	// least-loaded live chiplet group whose breaker admits them: locality
	// for the stage's shared data, load balance across stages.
	PlaceLoadAware JobPlacement = iota
	// PlaceRoundRobin is the legacy blind rotation over workers, skipping
	// offlined cores and refused chiplets — kept as the comparison
	// baseline for the overload experiment.
	PlaceRoundRobin
)

// JobServiceOptions configure ServeJobs.
type JobServiceOptions struct {
	// QueueCapacity bounds the admission queue (0 = 1024).
	QueueCapacity int
	// MaxInFlight bounds concurrently running jobs (0 = 2×workers).
	MaxInFlight int
	// Policy selects the backpressure policy for a full queue (and, for
	// Shed, deadline-aware dropping). Default admit.Block.
	Policy admit.Policy
	// Source is the open-loop arrival stream (nil = external SubmitJob
	// only).
	Source JobSource
	// Breakers enables per-chiplet circuit breakers.
	Breakers bool
	// Breaker tunes the breakers (zero fields select defaults).
	Breaker admit.BreakerConfig
	// EstQuantile is the service-time estimator's quantile (0 = 0.5).
	EstQuantile float64
	// EstMinSamples is the sample count before estimates replace the
	// spec's Cost hint (0 = 16).
	EstMinSamples int64
	// EvalInterval is the breaker/telemetry evaluation period in virtual
	// ns (0 = the runtime's scheduler timer).
	EvalInterval int64
	// Placement selects the dispatch placement strategy (default
	// PlaceLoadAware).
	Placement JobPlacement
	// SLO declares per-priority-class availability objectives: class →
	// target fraction of jobs completing within their deadline (e.g.
	// 0.95). Non-empty enables the burn-rate tracker; alert edges surface
	// in metrics, the Chrome trace, and the span stream.
	SLO map[int]float64
	// SLOBurn tunes the burn-rate windows (zero fields select defaults).
	SLOBurn obs.BurnConfig
	// Tenants enables the multi-tenant isolation plane: one admission
	// queue, token bucket, and service-time estimator per tenant, a
	// deficit-round-robin dispatch mux weighted by each tenant's share,
	// and elastic chiplet-group leases with a guaranteed quota floor.
	// Mutually exclusive with Source (each tenant carries its own);
	// tenant quotas must not oversubscribe the machine's chiplets.
	Tenants []TenantConfig
}

// JobStats summarizes a service's admission ledger.
type JobStats struct {
	// Submitted counts every arrival presented to admission.
	Submitted int64
	// Admitted entered the queue (including later-evicted entries).
	Admitted int64
	// Completed ran all stages; Met completed within their deadline.
	Completed int64
	Met       int64
	// Rejected were refused with ErrQueueFull/ErrWouldBlock; Shed were
	// dropped by deadline-aware shedding (hopeless or evicted); Expired
	// timed out in the queue; Cancelled and Failed terminated abnormally
	// after admission.
	Rejected  int64
	Shed      int64
	Expired   int64
	Cancelled int64
	Failed    int64
	// TasksCancelled counts individual tasks discarded by cancellation.
	TasksCancelled int64
	// BreakerTrips counts breaker Closed→Open transitions; BreakersOpen
	// is the current not-Closed count.
	BreakerTrips int64
	BreakersOpen int
	// MaxQueue is the admission queue's high-water mark.
	MaxQueue int
}

// JobService runs the open-loop admission/dispatch pipeline of one
// runtime. Obtain one with Runtime.ServeJobs.
type JobService struct {
	rt   *Runtime
	opts JobServiceOptions

	// nextWork is the earliest virtual time the pump could have work to
	// do (math.MaxInt64 = wait for a completion event). Read lock-free by
	// every worker step; written under mu.
	nextWork atomic.Int64

	mu  sync.Mutex
	q   *admit.Queue
	est *admit.Estimator
	brk *admit.Set // nil when breakers are off

	// Arrival cursor: the next pending arrival pulled from Source.
	pending   *Job
	srcOK     bool
	seq       uint64
	rr        int // round-robin dispatch cursor
	inflight  int
	lastEval  int64
	drainOnce sync.Once
	drained   chan struct{}
	stats     JobStats
	maxDepth  []int64 // per-chiplet queue-depth high-water mark
	jobs      []*Job
	latByPrio map[int]*obs.Histogram
	qwByPrio  map[int]*obs.Histogram // charm_admit_queue_wait_ns{priority}
	// SLO burn-rate state (nil without declared objectives). Driven
	// entirely under mu in virtual-time order.
	slo       *obs.SLOTracker
	sloCnt    map[int]*obs.Counter // charm_slo_alerts_total{class}
	sloBurn   map[int]*obs.Gauge   // charm_slo_fast_burn_milli{class}
	trShard   int                  // tracer shard for mu-serialized emissions
	tasksCanc atomic.Int64         // cancelled-task count (updated off-lock)
	chExecSum []atomic.Int64       // per-chiplet job-task exec time
	chExecCnt []atomic.Int64
	lastChSum []int64 // previous eval snapshots (window deltas)
	lastChCnt []int64
	// obsMilli is the last evaluation window's observed per-chiplet
	// slowdown, fed to dispatch views; replaced wholesale at each eval.
	obsMilli   []int64
	everServed bool

	// Multi-tenant isolation plane (all nil/empty on a single-tenant
	// service; immutable after ServeJobs, contents guarded by mu).
	tens    []*tenantRt
	tenIdx  map[string]int
	drr     *tenant.DRR
	leases  *tenant.LeaseTable
	estBank *admit.EstimatorBank
	// leaseView is the lock-free chiplet→tenant ownership snapshot the
	// steal path consults (republished after every Rebalance): a worker
	// on a chiplet leased to one tenant does not import another tenant's
	// queued tasks, so a flooding neighbor's backlog stays on its own
	// lease instead of riding work stealing across the fence.
	leaseView atomic.Pointer[[]int32]
	// thermMilli inflates Shed-policy service-time estimates when the
	// power plane's temperature forecast predicts chiplets crossing the
	// soft setpoint (1000 = no inflation): jobs that would complete only
	// at pre-throttle speed are shed before the cliff, not after.
	thermMilli int64
}

// ServeJobs installs an open-loop job service on the runtime. At most one
// service per runtime; a second call returns an error. May be called
// before or after Start, but not after Stop.
func (rt *Runtime) ServeJobs(opts JobServiceOptions) (*JobService, error) {
	if rt.lifecycle.Load() == lcStopped {
		return nil, ErrFinalized
	}
	if opts.QueueCapacity <= 0 {
		opts.QueueCapacity = 1024
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * len(rt.workers)
	}
	if opts.EstQuantile <= 0 {
		opts.EstQuantile = 0.5
	}
	if opts.EstMinSamples <= 0 {
		opts.EstMinSamples = 16
	}
	if opts.EvalInterval <= 0 {
		opts.EvalInterval = rt.opts.SchedulerTimer
	}
	nch := rt.M.Topo.NumChiplets()
	s := &JobService{
		rt:        rt,
		opts:      opts,
		q:         admit.NewQueue(opts.QueueCapacity, opts.Policy),
		est:       admit.NewEstimator(opts.EstQuantile, opts.EstMinSamples),
		drained:   make(chan struct{}),
		maxDepth:  make([]int64, nch),
		latByPrio: map[int]*obs.Histogram{},
		qwByPrio:  map[int]*obs.Histogram{},
		chExecSum: make([]atomic.Int64, nch),
		chExecCnt: make([]atomic.Int64, nch),
		lastChSum: make([]int64, nch),
		lastChCnt: make([]int64, nch),
		trShard:   rt.trShard(),
	}
	if opts.Breakers {
		s.brk = admit.NewSet(nch, opts.Breaker)
		// Breaker flaps go on the trace timeline: a typed instant span per
		// transition, emitted under svc.mu (EvalPlan's caller).
		s.brk.OnTransition = func(ch int, now int64, from, to admit.BreakerState) {
			if tr := rt.tracer; tr.Enabled() {
				tr.Emit(s.trShard, obs.Span{Kind: obs.SpanBreaker,
					Start: now, End: now, Chiplet: int32(ch),
					Arg: int64(to), Arg2: int64(from)})
			}
		}
	}
	if len(opts.SLO) > 0 {
		s.slo = obs.NewSLOTracker(opts.SLOBurn)
		for class, target := range opts.SLO {
			s.slo.SetObjective(class, target)
		}
		s.sloCnt = map[int]*obs.Counter{}
		s.sloBurn = map[int]*obs.Gauge{}
	}
	s.thermMilli = 1000
	if len(opts.Tenants) > 0 {
		if err := s.setupTenants(opts.Tenants); err != nil {
			return nil, err
		}
	}
	if opts.Source != nil {
		s.advanceSource()
	}
	s.updateNextWorkLocked()
	if !rt.svc.CompareAndSwap(nil, s) {
		return nil, fmt.Errorf("core: runtime already serves jobs")
	}
	return s, nil
}

// JobServer returns the installed job service, or nil.
func (rt *Runtime) JobServer() *JobService { return rt.svc.Load() }

// SubmitJob submits one job at the current virtual time through the
// admission pipeline, installing a default job service on first use. It
// returns the job handle and a typed admission error (admit.ErrQueueFull,
// admit.ErrWouldBlock, admit.ErrHopeless) when the job was refused — the
// handle's state then records Rejected/Shed. After Finalize/Stop it
// returns ErrFinalized.
func (rt *Runtime) SubmitJob(spec JobSpec) (*Job, error) {
	if rt.lifecycle.Load() == lcNew {
		panic("core: runtime not started")
	}
	if !rt.submitBegin() {
		return nil, ErrFinalized
	}
	defer rt.submitEnd()
	svc := rt.svc.Load()
	if svc == nil {
		if _, err := rt.ServeJobs(JobServiceOptions{Policy: admit.Reject}); err != nil && rt.svc.Load() == nil {
			return nil, err
		}
		svc = rt.svc.Load()
	}
	if err := validateSpec(&spec); err != nil {
		return nil, err
	}
	if rt.ls != nil {
		rt.ls.pause()
	}
	now := rt.MaxWorkerClock()
	if p := rt.phase.Load(); p > now {
		now = p
	}
	svc.mu.Lock()
	j, err := svc.admitLocked(now, spec)
	svc.updateNextWorkLocked()
	svc.mu.Unlock()
	if rt.ls != nil {
		rt.ls.resume()
	}
	return j, err
}

func validateSpec(spec *JobSpec) error {
	if spec.Deadline < 0 {
		return fmt.Errorf("core: job %q: negative deadline %d", spec.Name, spec.Deadline)
	}
	if spec.Cost < 0 {
		return fmt.Errorf("core: job %q: negative cost %d", spec.Name, spec.Cost)
	}
	return nil
}

// Stats returns the service's admission ledger.
func (s *JobService) Stats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.TasksCancelled = s.tasksCanc.Load()
	if s.brk != nil {
		st.BreakerTrips = s.brk.Trips()
		st.BreakersOpen = s.brk.Open()
	}
	return st
}

// Jobs returns every job the service has seen, in submission order.
func (s *JobService) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobs...)
}

// QueueLen returns the current admission-queue length.
func (s *JobService) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// BreakerState returns chiplet ch's breaker state (Closed with breakers
// disabled).
func (s *JobService) BreakerState(ch int) admit.BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.brk == nil {
		return admit.BreakerClosed
	}
	return s.brk.State(ch)
}

// SLOStatus summarizes every declared SLO class at virtual time now
// (nil without declared objectives).
func (s *JobService) SLOStatus(now int64) []obs.SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return nil
	}
	return s.slo.Status(now)
}

// SLOAlerts returns the burn-rate alert-edge log in virtual-time order.
func (s *JobService) SLOAlerts() []obs.SLOAlert {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return nil
	}
	return append([]obs.SLOAlert(nil), s.slo.Alerts()...)
}

// MaxChipletDepth returns the high-water mark of chiplet ch's task-queue
// depth (inbox + deque sums of its workers, sampled at each evaluation).
func (s *JobService) MaxChipletDepth(ch int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch < 0 || ch >= len(s.maxDepth) {
		return 0
	}
	return s.maxDepth[ch]
}

// Drain blocks until the arrival source is exhausted, the queue is empty,
// and every admitted job has reached a terminal state. A service without
// a source drains once all externally submitted jobs finish.
func (s *JobService) Drain() {
	<-s.drained
}

// advanceSource pulls the next arrival from the source into the pending
// cursor. Caller holds mu (or is still constructing the service).
func (s *JobService) advanceSource() {
	at, spec, ok := s.opts.Source.Next()
	if !ok {
		s.pending, s.srcOK = nil, false
		return
	}
	if err := validateSpec(&spec); err != nil {
		panic(err) // a source generating invalid specs is a programming error
	}
	s.srcOK = true
	s.pending = s.newJobLocked(at, spec)
}

func (s *JobService) newJobLocked(arrival int64, spec JobSpec) *Job {
	s.seq++
	j := &Job{
		id:      s.seq,
		spec:    spec,
		svc:     s,
		arrival: arrival,
		ten:     -1,
		done:    make(chan struct{}),
	}
	if spec.Deadline > 0 {
		j.deadline = arrival + spec.Deadline
	}
	s.jobs = append(s.jobs, j)
	return j
}

// admitLocked runs the admission decision for a job arriving at time at.
// Returns the job handle and the typed refusal error, if any.
func (s *JobService) admitLocked(at int64, spec JobSpec) (*Job, error) {
	if s.tens != nil {
		i, err := s.tenantOf(&spec)
		if err != nil {
			return nil, err
		}
		j := s.newJobLocked(at, spec)
		j.ten = i
		// A synchronous submission cannot be held upstream: a token-bucket
		// miss refuses it outright under the tenant's policy.
		if !s.tens[i].bucket.Take(at) {
			s.rateLimitLocked(s.tens[i], j, at)
			return j, ErrRateLimited
		}
		return j, s.offerTenantLocked(j)
	}
	j := s.newJobLocked(at, spec)
	return j, s.offerLocked(j)
}

// offerLocked presents job j to the admission queue.
func (s *JobService) offerLocked(j *Job) error {
	s.stats.Submitted++
	m := s.rt.met
	est := s.est.Estimate(j.spec.Cost)
	if s.q.Policy() == admit.Shed && s.thermMilli > 1000 {
		est = est * s.thermMilli / 1000
	}
	evicted, err := s.q.Offer(j.arrival, admit.Entry{
		Seq:      j.id,
		Priority: j.spec.Priority,
		Arrival:  j.arrival,
		Deadline: j.deadline,
		Est:      est,
		Payload:  j,
	})
	if evicted != nil {
		v := evicted.Payload.(*Job)
		s.stats.Shed++
		m.jobsShed.Add(0, 1)
		s.finalizeLocked(v, JobShed, j.arrival)
	}
	switch {
	case err == nil:
		s.stats.Admitted++
		m.jobsAdmitted.Add(0, 1)
		if n := s.q.Len(); n > s.stats.MaxQueue {
			s.stats.MaxQueue = n
		}
		m.jobQueueDepth.Set(0, int64(s.q.Len()))
		return nil
	case err == admit.ErrHopeless:
		s.stats.Shed++
		m.jobsShed.Add(0, 1)
		s.finalizeLocked(j, JobShed, j.arrival)
	default: // ErrQueueFull, ErrWouldBlock
		s.stats.Rejected++
		m.jobsRejected.Add(0, 1)
		s.finalizeLocked(j, JobRejected, j.arrival)
	}
	return err
}

// finalizeLocked moves j to a terminal state at virtual time now.
// Caller holds mu and has already updated the relevant counters. This is
// the one funnel every job exits through, so the observability plane
// hangs off it: the terminal span, the SLO outcome, and the flight-
// recorder retention decision.
func (s *JobService) finalizeLocked(j *Job, st JobState, now int64) {
	if JobState(j.state.Load()).terminal() {
		return
	}
	j.finished.Store(now)
	j.state.Store(int32(st))
	close(j.done)

	met := st == JobCompleted && (j.deadline == 0 || now <= j.deadline)
	if tr := s.rt.tracer; tr.Enabled() {
		var kind obs.SpanKind
		emit := true
		switch st {
		case JobShed:
			kind = obs.SpanShed
		case JobRejected:
			kind = obs.SpanReject
		case JobExpired:
			kind = obs.SpanExpire
		case JobCancelled:
			kind = obs.SpanCancel
		case JobFailed:
			kind = obs.SpanFail
		default:
			emit = false // completion is covered by the stage spans
		}
		if emit {
			tr.Emit(s.trShard, obs.Span{Trace: obs.TraceID(j.id), Kind: kind,
				Start: j.arrival, End: now, Stage: -1,
				Arg: int64(j.spec.Priority)})
		}
		// Tail-based retention: violators (missed deadline or abnormal
		// termination) keep their full trace; healthy completions release
		// theirs for compaction.
		if met {
			tr.Release(obs.TraceID(j.id))
		} else if st != JobCancelled {
			tr.Retain(obs.TraceID(j.id))
		}
	}
	// SLO accounting: a completed job within deadline is good; sheds,
	// rejections, expiries, and failures burn budget. Cancellation is the
	// caller's choice, not a service failure — skip it.
	if s.slo != nil && st != JobCancelled {
		s.slo.Record(j.spec.Priority, met, now)
	}
}

// updateNextWorkLocked recomputes the pump wake-up time. Caller holds mu.
func (s *JobService) updateNextWorkLocked() {
	if s.tens != nil {
		s.updateNextWorkTenantsLocked()
		return
	}
	next := int64(math.MaxInt64)
	if s.q.Len() > 0 && s.inflight < s.opts.MaxInFlight {
		next = 0 // dispatchable right now
	}
	if s.pending != nil && (s.q.Len() < s.q.Cap() || s.q.Policy() != admit.Block) {
		// The pending arrival can be decided at its arrival time. A
		// Block-policy arrival facing a full queue waits for space, which
		// only a dispatch or completion (nextWork=0 paths) can create.
		if s.pending.arrival < next {
			next = s.pending.arrival
		}
	}
	if s.inflight > 0 || s.q.Len() > 0 || s.srcOK {
		if due := s.lastEval + s.opts.EvalInterval; due < next {
			next = due
		}
	}
	s.nextWork.Store(next)
}

// checkDrainedLocked closes the drained channel once nothing is pending.
func (s *JobService) checkDrainedLocked() {
	if s.tens != nil {
		for _, tr := range s.tens {
			if tr.srcOK || tr.pending != nil || tr.q.Len() > 0 {
				return
			}
		}
		if s.inflight == 0 && s.everServed {
			s.drainOnce.Do(func() { close(s.drained) })
		}
		return
	}
	if !s.srcOK && s.pending == nil && s.q.Len() == 0 && s.inflight == 0 && s.everServed {
		s.drainOnce.Do(func() { close(s.drained) })
	}
}

// pumpJobs is the worker-side entry: admit due arrivals, evaluate
// breakers, dispatch queued jobs. The fast path — no service, or nothing
// due yet — is one or two atomic loads. Returns true when it did work.
func (w *Worker) pumpJobs() bool {
	s := w.rt.svc.Load()
	if s == nil {
		return false
	}
	now := w.clock.Now()
	if s.nextWork.Load() > now {
		return false
	}
	return s.pump(w, now)
}

func (s *JobService) pump(w *Worker, now int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	did := false
	s.everServed = true
	if s.tens != nil {
		did = s.pumpTenants(now)
		s.updateNextWorkLocked()
		s.checkDrainedLocked()
		return did
	}

	// 1. Admit every arrival due by now. A Block-policy arrival that
	// finds the queue full stays in the pending cursor — held upstream —
	// and re-offers when space frees.
	for s.pending != nil && s.pending.arrival <= now {
		j := s.pending
		if s.q.Policy() == admit.Block && s.q.Len() == s.q.Cap() {
			break
		}
		err := s.offerLocked(j)
		if err == admit.ErrWouldBlock {
			break
		}
		did = true
		if s.opts.Source != nil {
			s.advanceSource()
		} else {
			s.pending, s.srcOK = nil, false
		}
	}

	// 2. Periodic evaluation: per-chiplet queue-depth high-water marks,
	// plus breaker state from fault-plan and observed slowdown.
	if now-s.lastEval >= s.opts.EvalInterval {
		s.evalLocked(now)
		s.evalSLOLocked(now)
		did = true
	}

	// 3. Dispatch while capacity allows.
	for s.inflight < s.opts.MaxInFlight {
		e, ok := s.q.Pop()
		if !ok {
			break
		}
		did = true
		s.rt.met.jobQueueDepth.Set(0, int64(s.q.Len()))
		j := e.Payload.(*Job)
		m := s.rt.met
		if j.cancelled.Load() {
			s.stats.Cancelled++
			m.jobsCancelled.Add(0, 1)
			s.finalizeLocked(j, JobCancelled, now)
			continue
		}
		if s.q.Policy() == admit.Shed {
			// Dispatch-time re-check: the queueing delay may have consumed
			// the budget since admission.
			if j.deadline != 0 && j.deadline <= now {
				s.stats.Expired++
				m.jobsExpired.Add(0, 1)
				s.finalizeLocked(j, JobExpired, now)
				continue
			}
			est := s.est.Estimate(j.spec.Cost)
			if s.thermMilli > 1000 {
				est = est * s.thermMilli / 1000
			}
			if j.deadline != 0 && j.deadline-now < est {
				s.stats.Shed++
				m.jobsShed.Add(0, 1)
				s.finalizeLocked(j, JobShed, now)
				continue
			}
		}
		s.startLocked(j, now)
	}

	// A Block-policy arrival may have been waiting on the space the
	// dispatch loop just created.
	for s.pending != nil && s.pending.arrival <= now && s.q.Len() < s.q.Cap() {
		j := s.pending
		if s.offerLocked(j) == admit.ErrWouldBlock {
			break
		}
		did = true
		if s.opts.Source != nil {
			s.advanceSource()
		} else {
			s.pending, s.srcOK = nil, false
		}
	}

	s.updateNextWorkLocked()
	s.checkDrainedLocked()
	return did
}

// evalLocked runs the periodic telemetry and breaker evaluation at
// virtual time now. Depth high-water marks are sampled even with
// breakers off, so breaker-on/off runs compare like for like.
func (s *JobService) evalLocked(now int64) {
	s.lastEval = now
	topo := s.rt.M.Topo
	// Queue-depth high-water marks per chiplet (telemetry for the
	// breaker-capping acceptance check).
	depth := make([]int64, len(s.maxDepth))
	for _, w := range s.rt.workers {
		ch := topo.ChipletOf(w.Core())
		depth[ch] += w.inbox.Len() + int64(w.deque.Len())
	}
	for ch, d := range depth {
		if d > s.maxDepth[ch] {
			s.maxDepth[ch] = d
		}
	}
	// Pre-cliff shedding pressure from the thermal forecast, then lease
	// arbitration (both are no-ops without a power plane / tenants).
	s.updateThermLocked()
	if s.tens != nil {
		s.evalTenantsLocked(now)
	}
	if s.brk == nil {
		return
	}
	// Observed slowdown: window-delta mean exec time per chiplet vs the
	// fleet mean, in milli-units. Chiplets with too few samples in the
	// window contribute no signal (0).
	n := len(s.maxDepth)
	sums := make([]int64, n)
	cnts := make([]int64, n)
	var fleetSum, fleetCnt int64
	for ch := 0; ch < n; ch++ {
		cs, cc := s.chExecSum[ch].Load(), s.chExecCnt[ch].Load()
		sums[ch] = cs - s.lastChSum[ch]
		cnts[ch] = cc - s.lastChCnt[ch]
		s.lastChSum[ch], s.lastChCnt[ch] = cs, cc
		fleetSum += sums[ch]
		fleetCnt += cnts[ch]
	}
	minS := s.brk.Config().MinSamples
	// A fresh slice every window: dispatch views hold a reference to the
	// previous one, which must stay frozen for replayability.
	om := make([]int64, n)
	for ch := 0; ch < n; ch++ {
		if cnts[ch] < minS || fleetCnt == 0 || fleetSum == 0 {
			continue
		}
		chMean := float64(sums[ch]) / float64(cnts[ch])
		fleetMean := float64(fleetSum) / float64(fleetCnt)
		om[ch] = int64(1000 * chMean / fleetMean)
	}
	s.obsMilli = om
	s.brk.EvalPlan(now, s.rt.opts.Faults, func(ch int) int64 { return om[ch] })
	s.rt.met.breakersOpen.Set(0, int64(s.brk.Open()))
}

// evalSLOLocked runs the burn-rate evaluation and surfaces alert edges:
// typed spans, per-class alert counters, and traced burn gauges. It also
// compacts the span buffer once it passes the high-water mark (released,
// healthy traces are dropped; retained violators survive) — the decision
// keys off virtual-time state only, so replays compact identically.
func (s *JobService) evalSLOLocked(now int64) {
	tr := s.rt.tracer
	if s.slo != nil {
		for _, e := range s.slo.Evaluate(now) {
			if e.Firing {
				c, ok := s.sloCnt[e.Class]
				if !ok {
					c = s.rt.met.reg.Counter("charm_slo_alerts_total",
						"SLO burn-rate alerts fired.",
						obs.Labels{"class": strconv.Itoa(clampPrio(e.Class))})
					s.sloCnt[e.Class] = c
				}
				c.Add(0, 1)
			}
			if tr.Enabled() {
				fired := int64(0)
				if e.Firing {
					fired = 1
				}
				tr.Emit(s.trShard, obs.Span{Kind: obs.SpanSLOAlert,
					Start: now, End: now, Stage: -1,
					Arg: int64(e.Class), Arg2: fired})
			}
		}
		for _, st := range s.slo.Status(now) {
			g, ok := s.sloBurn[st.Class]
			if !ok {
				g = s.rt.met.reg.Gauge("charm_slo_fast_burn_milli",
					"Fast-window SLO burn rate in milli-units (1000 = budget-rate burn).",
					obs.Labels{"class": strconv.Itoa(clampPrio(st.Class))},
					obs.Traced())
				s.sloBurn[st.Class] = g
			}
			g.Set(0, int64(1000*st.FastBurn))
		}
	}
	if tr.Enabled() && tr.SpanCount() >= (s.trShard+1)*obs.DefaultSpanCap/2 {
		tr.Compact()
	}
}

// startLocked dispatches job j's first runnable stage at time now.
func (s *JobService) startLocked(j *Job, now int64) {
	j.started = now
	j.state.Store(int32(JobRunning))
	s.inflight++
	if t := s.tenantRtOf(j); t != nil {
		t.inflight++
	}
	prio := clampPrio(j.spec.Priority)
	h, ok := s.qwByPrio[prio]
	if !ok {
		h = s.rt.met.reg.Histogram("charm_admit_queue_wait_ns",
			"Virtual ns from job arrival to dispatch (admission-queue wait).",
			obs.Labels{"priority": strconv.Itoa(prio)}, latencyBounds)
		s.qwByPrio[prio] = h
	}
	h.Observe(0, now-j.arrival)
	if tr := s.rt.tracer; tr.Enabled() {
		tr.Emit(s.trShard, obs.Span{Trace: obs.TraceID(j.id), Kind: obs.SpanAdmitQueue,
			Start: j.arrival, End: now, Stage: -1, Arg: int64(j.spec.Priority)})
	}
	s.dispatchStageLocked(j, now)
}

// dispatchStageLocked launches j's next non-empty stage, or completes the
// job when none remain. Caller holds mu.
func (s *JobService) dispatchStageLocked(j *Job, now int64) {
	for j.stage < len(j.spec.Stages) && len(j.spec.Stages[j.stage]) == 0 {
		j.stage++
	}
	if j.stage >= len(j.spec.Stages) {
		s.completeLocked(j, now)
		return
	}
	stage := j.spec.Stages[j.stage]
	j.curStage = int32(j.stage)
	j.stageStart = now
	j.stageTasks = int64(len(stage))
	j.stage++
	g := newGroup()
	g.job = j
	g.add(int64(len(stage)))
	wids := s.placeStageLocked(now, len(stage), j.ten, j.spec.Prefer)
	for i, fn := range stage {
		wid := wids[i]
		t := s.rt.newTask(fn, g, now, j.spec.Coro, wid)
		t.job = j
		t.stage = j.curStage
		s.rt.workers[wid].inbox.Put(t)
	}
}

// placeStageLocked picks dispatch targets for a stage's n tasks from a
// single MachineView. Load-aware mode co-locates the stage on the most
// preferable chiplet — live workers, closed breaker, lowest fused health
// penalty, shallowest queues — spreading tasks across that chiplet's
// workers; refused chiplets are ordered last (not excluded) so a breaker
// past its retry window still sees the probe traffic it needs to heal.
// The breaker's Allow remains the authoritative admission gate: it is
// consulted (and its half-open probe budget consumed) per stage here.
//
// On a multi-tenant service (ten >= 0) the candidate walk is restricted
// to the tenant's leased chiplets first: a bursting tenant stacks its own
// lease's queues instead of its neighbors'. Only when the lease yields no
// admissible live worker at all (every leased chiplet died or is breaker-
// refused between rebalances) does the walk fall back to the whole
// machine — isolation never starves a compliant tenant.
//
// When the job prefers a chiplet kind (kind != KindAny) on a
// heterogeneous machine, matching-kind chiplets are moved to the front
// of the preference walk with the rest appended after: the capability
// match is a soft preference with natural fallback, never a hard gate.
func (s *JobService) placeStageLocked(now int64, n int, ten int, kind topology.ChipletKind) []int {
	v := s.viewLocked(now)
	out := make([]int, 0, n)
	if s.opts.Placement == PlaceRoundRobin {
		for k := 0; k < n; k++ {
			out = append(out, s.placeRoundRobinLocked(v))
		}
		return out
	}
	m := s.rt.met
	// Admit chiplets lazily in preference order until every task in the
	// stage has a dedicated live worker (or the list is exhausted): small
	// stages co-locate on the top group, larger stages spill onto the
	// next-preferred groups instead of stacking one group's queues.
	chs := v.ChipletsByPreference(s.rr)
	if kind != topology.KindAny {
		ordered := make([]topology.ChipletID, 0, len(chs))
		var rest []topology.ChipletID
		for _, ch := range chs {
			if v.KindOf(ch) == kind {
				ordered = append(ordered, ch)
			} else {
				rest = append(rest, ch)
			}
		}
		if len(ordered) > 0 && len(rest) > 0 {
			chs = append(ordered, rest...)
		}
	}
	var cand []int
	if ten >= 0 && s.leases != nil && s.leases.Held(ten) > 0 {
		for _, ch := range chs {
			if len(cand) >= n {
				break
			}
			if s.leases.Owner(int(ch)) != ten {
				continue
			}
			grp := v.LiveWorkersOn(ch)
			if len(grp) == 0 {
				continue
			}
			if s.brk != nil && !s.brk.Allow(int(ch)) {
				continue
			}
			cand = append(cand, grp...)
		}
	}
	if len(cand) == 0 {
		for _, ch := range chs {
			if len(cand) >= n {
				break
			}
			grp := v.LiveWorkersOn(ch)
			if len(grp) == 0 {
				continue
			}
			if s.brk != nil && !s.brk.Allow(int(ch)) {
				continue
			}
			cand = append(cand, grp...)
		}
	}
	for k := 0; k < n; k++ {
		if len(cand) == 0 {
			out = append(out, s.placeFallbackLocked(v))
			continue
		}
		out = append(out, cand[k%len(cand)])
		m.placeJob.Inc(0)
	}
	// Rotate the chiplet tie-break cursor so equally-preferable chiplets
	// take turns across stages instead of pinning the first one.
	s.rr++
	return out
}

// placeRoundRobinLocked is the legacy baseline: rotate over workers,
// skipping offlined cores and chiplets whose breaker refuses admission.
func (s *JobService) placeRoundRobinLocked(v *place.View) int {
	n := v.NumWorkers()
	for i := 0; i < n; i++ {
		wid := s.rr % n
		s.rr++
		c := v.CoreOf(wid)
		if !v.IsLive(c) {
			continue
		}
		if s.brk != nil && !s.brk.Allow(int(v.Topology().ChipletOf(c))) {
			continue
		}
		return wid
	}
	return s.placeFallbackLocked(v)
}

// placeFallbackLocked handles the every-worker-refused case (all breakers
// open and unwilling to probe, or no live chiplet group): prefer any
// worker still on a live core, and only when the fault plan has downed
// every core fall back to blind rotation — the work has to go somewhere.
func (s *JobService) placeFallbackLocked(v *place.View) int {
	n := v.NumWorkers()
	for i := 0; i < n; i++ {
		wid := s.rr % n
		s.rr++
		if v.IsLive(v.CoreOf(wid)) {
			s.rt.met.placeFallbackLive.Inc(0)
			return wid
		}
	}
	wid := s.rr % n
	s.rr++
	s.rt.met.placeFallbackBlind.Inc(0)
	return wid
}

// completeLocked finishes job j successfully at time now.
func (s *JobService) completeLocked(j *Job, now int64) {
	s.inflight--
	s.stats.Completed++
	m := s.rt.met
	m.jobsCompleted.Add(0, 1)
	t := s.tenantRtOf(j)
	if t != nil {
		// Per-tenant estimator: service times feed only the owning
		// tenant's distribution.
		t.inflight--
		s.estBank.Observe(j.ten, now-j.started)
	} else {
		s.est.Observe(now - j.started)
	}
	s.finalizeLocked(j, JobCompleted, now)
	if j.MetDeadline() {
		s.stats.Met++
	}
	if t != nil {
		t.stats.Completed++
		t.mDone.Add(0, 1)
		if j.MetDeadline() {
			t.stats.Met++
		}
		t.lat.ObserveT(0, now-j.arrival, obs.TraceID(j.id))
	}
	s.observeLatencyLocked(j, now-j.arrival)
	s.updateNextWorkLocked()
	s.checkDrainedLocked()
}

// tenantRtOf returns job j's tenant runtime, or nil on a single-tenant
// service.
func (s *JobService) tenantRtOf(j *Job) *tenantRt {
	if j.ten >= 0 && j.ten < len(s.tens) {
		return s.tens[j.ten]
	}
	return nil
}

// clampPrio clamps a priority to the [0, 7] label range.
func clampPrio(p int) int {
	if p < 0 {
		return 0
	}
	if p > 7 {
		return 7
	}
	return p
}

// observeLatencyLocked records a completed job's arrival→finish latency
// in the per-priority histogram (priority label clamped to [0, 7]). The
// histogram carries exemplar slots, so tail buckets link back to the
// TraceID of a job that landed there.
func (s *JobService) observeLatencyLocked(j *Job, lat int64) {
	p := clampPrio(j.spec.Priority)
	h, ok := s.latByPrio[p]
	if !ok {
		h = s.rt.met.reg.Histogram("charm_job_latency_ns",
			"Virtual ns from job arrival to completion.",
			obs.Labels{"priority": strconv.Itoa(p)}, latencyBounds,
			obs.WithExemplars())
		s.latByPrio[p] = h
	}
	h.ObserveT(0, lat, obs.TraceID(j.id))
}

// stageDone is the group-completion hook: the last task of a stage (on
// whatever worker finished it) advances the job — next stage, completion,
// failure, or cancellation.
func (s *JobService) stageDone(j *Job, g *group) {
	end := g.bar.Release(s.rt.opts.BarrierCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr := s.rt.tracer; tr.Enabled() {
		// The stage window closes here: dispatch → barrier release.
		// Windows are contiguous (the next stage dispatches at end), so a
		// job's trace covers its whole running phase gap-free.
		tr.Emit(s.trShard, obs.Span{Trace: obs.TraceID(j.id), Kind: obs.SpanStage,
			Start: j.stageStart, End: end, Stage: j.curStage, Arg: j.stageTasks})
	}
	m := s.rt.met
	switch {
	case j.cancelled.Load():
		s.inflight--
		s.stats.Cancelled++
		if t := s.tenantRtOf(j); t != nil {
			t.inflight--
			t.stats.Cancelled++
		}
		m.jobsCancelled.Add(0, 1)
		s.finalizeLocked(j, JobCancelled, end)
		s.updateNextWorkLocked()
		s.checkDrainedLocked()
	case g.panicked.Load() != nil:
		s.inflight--
		s.stats.Failed++
		if t := s.tenantRtOf(j); t != nil {
			t.inflight--
			t.stats.Failed++
		}
		j.err.Store(g.panicked.Load())
		s.finalizeLocked(j, JobFailed, end)
		s.updateNextWorkLocked()
		s.checkDrainedLocked()
	default:
		s.dispatchStageLocked(j, end)
	}
}

// observeExec records a finished job task's execution time against its
// chiplet (the breaker's PMU-observed slowdown input). Lock-free.
func (s *JobService) observeExec(ch int, exec int64) {
	if ch < 0 || ch >= len(s.chExecSum) {
		return
	}
	s.chExecSum[ch].Add(exec)
	s.chExecCnt[ch].Add(1)
}

// --- cancellation plumbing (worker side) ---

// cancelUnwind is the sentinel a cancelled task's Yield panics with to
// unwind its stack; runTaskRecovered converts it into a TaskError whose
// Val is this type, and the worker discards instead of retrying.
type cancelUnwind struct{}

func (cancelUnwind) String() string { return "job cancelled" }

// jobCancelled reports whether the task belongs to a cancelled job.
func (t *Task) jobCancelled() bool {
	return t.job != nil && t.job.cancelled.Load()
}

// discardCancelled completes a cancelled task's lifecycle without running
// it: group accounting still fires (so stages drain and the job
// finalizes), but no execution, latency, or PMU accounting is recorded.
func (w *Worker) discardCancelled(t *Task) {
	now := w.clock.Now()
	if t.spawned {
		w.rt.liveTasks.Add(-1)
	}
	w.rt.met.jobTasksCancelled.Inc(w.id)
	if t.job != nil {
		t.job.svc.tasksCanc.Add(1)
	}
	if t.grp != nil {
		t.grp.taskDone(now)
	}
	if t.onDone != nil {
		t.onDone.finish.Store(now)
		t.onDone.done.Store(true)
	}
	// Terminal: the discard is the task's last lifecycle event.
	w.freeTask(t)
}

// unwindCancelled resumes a started coroutine of a cancelled job so its
// Yield observes the flag and unwinds; the stack goroutine parks back at
// its work loop and is recycled. The worker then discards the task.
func (w *Worker) unwindCancelled(t *Task) {
	co := t.co
	co.ctx.w = w
	co.resume <- struct{}{}
	<-co.status // always false: yield panics cancelUnwind on resume
	t.err = nil
	t.co = nil
	w.putCoroutine(co)
	w.discardCancelled(t)
}
