package core

import (
	"testing"

	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/sim"
	"charm/internal/topology"
)

// Microbenchmarks of the runtime primitives: these report both host ns/op
// (simulator efficiency) and the primitive's virtual cost as a custom
// metric (cost-model validation).

func benchRT(b *testing.B, workers int) *Runtime {
	b.Helper()
	m := sim.New(sim.Config{Topo: topology.AMDMilan7713x2().Scaled(256)})
	rt := NewRuntime(m, Options{Workers: workers, SchedulerTimer: 1 << 60})
	rt.Start()
	b.Cleanup(rt.Stop)
	return rt
}

func BenchmarkTaskSpawnExecute(b *testing.B) {
	rt := benchRT(b, 8)
	start := rt.Now()
	b.ResetTimer()
	rt.ParallelFor(0, b.N, 64, func(ctx *Ctx, i0, i1 int) {})
	b.StopTimer()
	tasks := float64((b.N + 63) / 64)
	// Fleet-parallel: makespan covers tasks/8 per worker.
	b.ReportMetric(float64(rt.Now()-start)/tasks*8, "virtual_ns/task")
}

// BenchmarkTaskSpawnExecuteMetrics measures the instrumentation overhead
// on the core task-throughput path: "off" is the always-on counter cost
// (registry disabled), "on" adds histogram observes, span recording, and
// periodic sampling. Compare against BenchmarkTaskSpawnExecute's ns/op.
func BenchmarkTaskSpawnExecuteMetrics(b *testing.B) {
	run := func(b *testing.B, metrics, profiler bool) {
		rt := benchRT(b, 8)
		rt.EnableMetrics(metrics)
		rt.Profiler().Enable(profiler)
		b.ResetTimer()
		rt.ParallelFor(0, b.N, 64, func(ctx *Ctx, i0, i1 int) {})
	}
	b.Run("off", func(b *testing.B) { run(b, false, false) })
	b.Run("on", func(b *testing.B) { run(b, true, false) })
	b.Run("on+spans", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkTracing measures causal-job-tracing overhead on the job
// admission/dispatch path: "off" is the cost of the disabled tracer (one
// atomic load per would-be span), "on" records admit-queue, stage, and
// per-task spans for every job. "emit" isolates the raw span-append cost.
func BenchmarkTracing(b *testing.B) {
	run := func(b *testing.B, on bool) {
		rt := benchRT(b, 8)
		rt.EnableTracing(on)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := rt.SubmitJob(computeJob(4, 1_000, nil))
			if err != nil {
				b.Fatal(err)
			}
			<-j.Done()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
	b.Run("emit", func(b *testing.B) {
		tr := obs.NewTracer(1, 1<<30)
		tr.SetEnabled(true)
		s := obs.Span{Trace: 1, Kind: obs.SpanTask, Start: 1, End: 2}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Start = int64(i)
			tr.Emit(0, s)
		}
	})
}

func BenchmarkCoroutineSwitch(b *testing.B) {
	rt := benchRT(b, 1)
	w := rt.Worker(0)
	before := w.Clock().Now()
	b.ResetTimer()
	rt.submitWait([]func(*Ctx){func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Yield()
		}
	}}, false, true)
	b.StopTimer()
	b.ReportMetric(float64(w.Clock().Now()-before)/float64(b.N), "virtual_ns/switch")
}

func BenchmarkMemoryReadCached(b *testing.B) {
	rt := benchRT(b, 1)
	a := rt.M.Space.AllocLocal(1<<12, 0)
	w := rt.Worker(0)
	rt.Run(func(ctx *Ctx) { ctx.Read(a, 1<<12) }) // warm
	before := w.Clock().Now()
	b.ResetTimer()
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Read(a, 64)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(w.Clock().Now()-before)/float64(b.N), "virtual_ns/line")
}

func BenchmarkRMWContended(b *testing.B) {
	rt := benchRT(b, 8)
	a := rt.M.Space.AllocLocal(64, 0)
	start := rt.Now()
	b.ResetTimer()
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < b.N/8+1; i++ {
			ctx.RMW(a, 8)
			ctx.Yield()
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(rt.Now()-start)/float64(b.N/8+1), "virtual_ns/rmw")
}

func BenchmarkBarrier(b *testing.B) {
	rt := benchRT(b, 8)
	bar := rt.NewBarrier(8)
	start := rt.Now()
	b.ResetTimer()
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < b.N/8+1; i++ {
			ctx.Barrier(bar)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(rt.Now()-start)/float64(b.N/8+1), "virtual_ns/barrier")
}

func BenchmarkDelegateAsync(b *testing.B) {
	rt := benchRT(b, 8)
	a := rt.M.Space.AllocLocal(mem.PageSize, 0)
	w := rt.Worker(0)
	var ownerClockDelta int64
	b.ResetTimer()
	rt.Run(func(ctx *Ctx) {
		before := w.Clock().Now()
		for i := 0; i < b.N; i++ {
			ctx.DelegateAsync(a, func(c *Ctx) {})
		}
		ownerClockDelta = w.Clock().Now() - before
	})
	b.StopTimer()
	// The submitting worker's clock advance per delegation (message
	// construction + fabric charge on the send side).
	b.ReportMetric(float64(ownerClockDelta)/float64(b.N), "virtual_ns/send")
}

func BenchmarkStealThroughput(b *testing.B) {
	// All work spawned on one worker; seven thieves drain it.
	rt := benchRT(b, 8)
	start := rt.Now()
	b.ResetTimer()
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Spawn(func(c *Ctx) { c.Compute(500) })
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(rt.Now()-start)/float64(b.N), "virtual_ns/task")
}
