package core

import (
	"charm/internal/obs"
)

// latencyBounds are the fixed histogram buckets for task latencies, in
// virtual nanoseconds: roughly logarithmic from sub-µs task bodies to
// second-scale phases.
var latencyBounds = []int64{
	500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
	10_000_000, 100_000_000, 1_000_000_000,
}

// rtMetrics bundles the runtime's hot-path metric handles. Every handle
// is sharded per worker, so recording never contends across workers, and
// gated on the registry's enabled flag, so a disabled registry costs one
// atomic load per record.
type rtMetrics struct {
	reg *obs.Registry

	tasks        *obs.Counter
	spawns       *obs.Counter
	steals       *obs.Counter
	remoteSteals *obs.Counter
	migrations   *obs.Counter
	delegations  *obs.Counter
	// taskLatency measures enqueue→completion; taskExec measures first
	// execution→completion (the queueing-free residence time).
	taskLatency *obs.Histogram
	taskExec    *obs.Histogram

	// Fault-handling counters (all zero when no fault plan is active).
	faultOfflines   *obs.Counter
	faultReenqueues *obs.Counter
	faultMigrations *obs.Counter
	faultParks      *obs.Counter
	faultRetries    *obs.Counter
	watchdogTrips   *obs.Counter

	// Open-loop job-service instruments (all zero without ServeJobs).
	// Authoritative counts live in JobService.Stats — these mirror them
	// into the registry for traces and snapshots.
	jobsAdmitted      *obs.Counter
	jobsCompleted     *obs.Counter
	jobsRejected      *obs.Counter
	jobsShed          *obs.Counter
	jobsExpired       *obs.Counter
	jobsCancelled     *obs.Counter
	jobTasksCancelled *obs.Counter
	jobQueueDepth     *obs.Gauge
	breakersOpen      *obs.Gauge

	// Placement decision-plane counters: one per Select site, labeled by
	// site, plus the two dispatch fallback tiers.
	placeAlg2          *obs.Counter
	placeRehome        *obs.Counter
	placeJob           *obs.Counter
	placeSteal         *obs.Counter
	placeFallbackLive  *obs.Counter
	placeFallbackBlind *obs.Counter
}

// newRTMetrics builds the registry (one shard per worker) and the
// runtime-level instruments, and registers snapshot-time funcs for
// scheduler state (live tasks, per-worker spread rate and placement).
func newRTMetrics(rt *Runtime, workers int) *rtMetrics {
	reg := obs.NewRegistry(workers)
	m := &rtMetrics{
		reg: reg,
		tasks: reg.Counter("charm_tasks_total",
			"Tasks executed to completion.", nil),
		spawns: reg.Counter("charm_task_spawns_total",
			"Tasks spawned from within running tasks.", nil),
		steals: reg.Counter("charm_steals_total",
			"Successful steals.", nil),
		remoteSteals: reg.Counter("charm_steals_remote_chiplet_total",
			"Steals that crossed a chiplet boundary.", nil),
		migrations: reg.Counter("charm_migrations_total",
			"Alg. 2 worker core re-assignments.", nil),
		delegations: reg.Counter("charm_delegations_total",
			"Tasks shipped via Call/CallAsync/Delegate.", nil),
		taskLatency: reg.Histogram("charm_task_latency_ns",
			"Virtual ns from task enqueue to completion.", nil, latencyBounds),
		taskExec: reg.Histogram("charm_task_exec_ns",
			"Virtual ns from first execution to completion.", nil, latencyBounds),
		faultOfflines: reg.Counter("charm_fault_core_offline_total",
			"Times a worker found its core offlined by the fault plan.", nil),
		faultReenqueues: reg.Counter("charm_fault_reenqueues_total",
			"Queued tasks drained off a dead core onto live workers.", nil),
		faultMigrations: reg.Counter("charm_fault_migrations_total",
			"Worker re-homes to a replacement core after an offline.", nil),
		faultParks: reg.Counter("charm_fault_parks_total",
			"Workers parked because no replacement core was available.", nil),
		faultRetries: reg.Counter("charm_task_retries_total",
			"Failed task executions re-queued under MaxTaskRetries.", nil),
		watchdogTrips: reg.Counter("charm_watchdog_trips_total",
			"Tasks whose enqueue-to-completion time exceeded StarvationDeadline.", nil),
		jobsAdmitted: reg.Counter("charm_jobs_admitted_total",
			"Jobs accepted into the admission queue.", nil),
		jobsCompleted: reg.Counter("charm_jobs_completed_total",
			"Jobs that ran every stage to completion.", nil),
		jobsRejected: reg.Counter("charm_jobs_rejected_total",
			"Jobs refused at admission (queue full).", nil),
		jobsShed: reg.Counter("charm_jobs_shed_total",
			"Jobs dropped by deadline-aware shedding.", nil),
		jobsExpired: reg.Counter("charm_jobs_expired_total",
			"Jobs whose deadline passed while queued.", nil),
		jobsCancelled: reg.Counter("charm_jobs_cancelled_total",
			"Jobs cancelled after admission.", nil),
		jobTasksCancelled: reg.Counter("charm_job_tasks_cancelled_total",
			"Individual tasks discarded by job cancellation.", nil),
		jobQueueDepth: reg.Gauge("charm_job_queue_depth",
			"Current admission-queue length.", nil, obs.Traced()),
		breakersOpen: reg.Gauge("charm_breakers_open",
			"Chiplet circuit breakers currently not closed.", nil, obs.Traced()),
		placeAlg2: reg.Counter("charm_place_decisions_total",
			"Placement decisions taken through the internal/place plane.",
			obs.Labels{"site": "alg2"}),
		placeRehome: reg.Counter("charm_place_decisions_total",
			"Placement decisions taken through the internal/place plane.",
			obs.Labels{"site": "rehome"}),
		placeJob: reg.Counter("charm_place_decisions_total",
			"Placement decisions taken through the internal/place plane.",
			obs.Labels{"site": "job"}),
		placeSteal: reg.Counter("charm_place_decisions_total",
			"Placement decisions taken through the internal/place plane.",
			obs.Labels{"site": "steal-order"}),
		placeFallbackLive: reg.Counter("charm_place_fallback_total",
			"Dispatch placements that fell back past every preferred chiplet.",
			obs.Labels{"kind": "live"}),
		placeFallbackBlind: reg.Counter("charm_place_fallback_total",
			"Dispatch placements that fell back past every preferred chiplet.",
			obs.Labels{"kind": "blind"}),
	}
	reg.Func("charm_live_tasks", "Currently executing or suspended tasks.",
		obs.KindGauge, nil, func(int64) float64 { return float64(rt.liveTasks.Load()) },
		obs.Traced())
	if rt.opts.Faults != nil {
		reg.Func("charm_cores_offline", "Cores currently offlined by the fault plan.",
			obs.KindGauge, nil,
			func(t int64) float64 { return float64(rt.opts.Faults.CoresDown(t)) },
			obs.Traced())
	}
	return m
}

// Metrics returns the runtime's metrics registry (disabled by default;
// see EnableMetrics).
func (rt *Runtime) Metrics() *obs.Registry { return rt.met.reg }

// EnableMetrics turns metric recording on or off. Enabling also starts
// virtual-time periodic sampling of traced metrics at the scheduler-timer
// interval, which feeds the Chrome trace's counter tracks and the JSON
// history.
func (rt *Runtime) EnableMetrics(on bool) {
	if on {
		rt.met.reg.EnableSampling(rt.opts.SchedulerTimer, 4096)
	} else {
		rt.met.reg.EnableSampling(0, 0)
	}
	rt.met.reg.SetEnabled(on)
}

// MetricsSnapshot merges every metric at the fleet's current maximum
// virtual time (so window-based occupancy gauges read the live window).
func (rt *Runtime) MetricsSnapshot() obs.Snapshot {
	now := rt.MaxWorkerClock()
	if p := rt.phase.Load(); p > now {
		now = p
	}
	return rt.met.reg.Snapshot(now)
}
