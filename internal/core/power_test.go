package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/power"
	"charm/internal/sim"
	"charm/internal/topology"
)

// Tests for the closed-loop power plane wired into the engine: with the
// plane enabled, a Deterministic run must stay byte-identical across
// replays and across every fast-path knob, and the governor must actually
// exercise its tiers during the gate workload (a quiet run proves nothing).

// hotPowerConfig tunes the plane so the replay workload drives the
// governor through every tier. The heterogeneous two-model table maps the
// hot model to chiplets 0/2 and the cool one to 1/3 (Models cycle by
// chiplet index): hot chiplets run to their park setpoint under full
// compute load, cool chiplets only brush the soft tier — so one run
// exercises soft throttle, hard throttle, emergency park, park expiry,
// and the rehome path of evicted workers.
func hotPowerConfig() *power.Config {
	hot := power.DefaultModel()
	hot.Name = "hot"
	hot.CThermal = 2e-6 // tau = 10 µs: temperature chases power within a tick
	cool := hot
	cool.Name = "cool"
	cool.EnergyPJ[pmu.ComputeNS] = 800
	return &power.Config{
		TDPWatts: 40,
		SoftC:    55, HardC: 60, ParkC: 66,
		TickNS: 10_000, ParkNS: 150_000,
		Models: []power.Model{hot, cool},
	}
}

// powerRun executes one deterministic run with the closed-loop plane
// enabled and returns every observable the gate compares: scheduler
// stats, the full PMU snapshot, the final worker clock, and the plane's
// published thermal/energy snapshot (final temperatures, ledgers, and
// tier event counts). The workload mixes compute-heavy phases (heating),
// yields and barriers (governor claims from many workers), transient
// panics (retries crossing park windows), and a near-idle tail (decay
// and park expiry through the idle-drift hook).
func powerRun(t *testing.T, workers int, noBatch, noPool bool) (Stats, pmu.Snapshot, int64, power.Snapshot) {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{
		Workers: workers, Deterministic: true,
		SchedulerTimer: 50_000, Power: hotPowerConfig(),
		MaxTaskRetries: 1, RetryBackoff: 500,
		NoAccessBatch: noBatch, NoPooling: noPool,
	})
	rt.Start()
	defer rt.Stop()

	addr := rt.Alloc(1<<16, 0)
	var total Stats
	add := func(st Stats) {
		total.Makespan += st.Makespan
		total.Tasks += st.Tasks
		total.Steals += st.Steals
		total.RemoteSteals += st.RemoteSteals
		total.Migrations += st.Migrations
	}

	// Phase 1: compute-heavy tasks with repeat runs and transient panics.
	// The sustained Compute drives hot chiplets through soft, hard, and
	// park; the panics route retries through park-induced placement churn.
	var failedOnce [64]atomic.Bool
	add(rt.ParallelFor(0, 64, 2, func(ctx *Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			a := addr + mem.Addr(i%32)*64
			for r := 0; r < 100; r++ {
				ctx.Read(a, 64)
			}
			ctx.Compute(30_000)
			if i%13 == 5 && !failedOnce[i].Swap(true) {
				panic("deterministic transient")
			}
			for r := 0; r < 50; r++ {
				ctx.Write(a, 8)
			}
		}
	}))

	// Phase 2: coroutines interleaving compute with yields — governor
	// claims land at suspension points on every worker.
	add(rt.AllDoCo(func(ctx *Ctx) {
		a := addr + mem.Addr(ctx.CoreID())*64
		for round := 0; round < 4; round++ {
			ctx.Compute(8_000)
			for r := 0; r < 32; r++ {
				ctx.Read(a, 64)
			}
			ctx.Yield()
		}
	}))

	// Phase 2b: a barrier between heating bursts (claims while workers
	// block, then a synchronized resume).
	bar := rt.NewBarrier(workers)
	add(rt.AllDo(func(ctx *Ctx) {
		for round := 0; round < 3; round++ {
			ctx.Compute(12_000)
			ctx.Barrier(bar)
		}
	}))

	// Phase 3: spawn storm from one worker — thieves pull hot work onto
	// every chiplet while parks come and go.
	add(rt.Run(func(ctx *Ctx) {
		for i := 0; i < 96; i++ {
			i := i
			ctx.Spawn(func(c *Ctx) {
				a := addr + mem.Addr(i%32)*64
				for r := 0; r < 32; r++ {
					c.Read(a, 64)
				}
				c.Compute(6_000)
			})
		}
	}))

	// Phase 4: near-idle tail. One worker computes; the rest idle-drift
	// across many governor windows, so decay and park expiry run through
	// the idle hook rather than the reload hook.
	add(rt.Run(func(ctx *Ctx) { ctx.Compute(400_000) }))

	return total, rt.M.PMU.Snapshot(), rt.MaxWorkerClock(), *rt.Power().Stats()
}

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestPowerReplayBitIdentical: the acceptance gate for the closed-loop
// plane. Two Deterministic runs of the hot workload must produce
// byte-identical Stats, PMU counters, final worker clocks, and final
// plane state (temperatures, energy ledgers, tier event counts); the
// fast-path knobs (batching, pooling) must stay invisible with the plane
// enabled. The guard assertions make the gate non-vacuous: the governor
// must have fired every tier during the base run.
func TestPowerReplayBitIdentical(t *testing.T) {
	const workers = 8
	base, basePMU, baseClk, basePW := powerRun(t, workers, false, false)
	if base.Tasks == 0 {
		t.Fatalf("workload too tame to be a gate: %+v", base)
	}
	if n := sum64(basePW.SoftEvents); n == 0 {
		t.Fatalf("governor never entered the soft tier: %+v", basePW)
	}
	if n := sum64(basePW.HardEvents); n == 0 {
		t.Fatalf("governor never entered the hard tier: %+v", basePW)
	}
	if n := sum64(basePW.ParkEvents); n == 0 {
		t.Fatalf("governor never parked a chiplet: %+v", basePW)
	}
	if max := sum64(basePW.EnergyPJ); max == 0 {
		t.Fatal("energy ledger empty after a compute-heavy run")
	}
	if basePW.MaxTempMilliC <= 45_000 {
		t.Fatalf("no chiplet warmed above ambient: max %d milli°C", basePW.MaxTempMilliC)
	}

	for _, tc := range []struct {
		name            string
		noBatch, noPool bool
	}{
		{"replay", false, false},
		{"nobatch", true, false},
		{"nopool", false, true},
		{"nobatch-nopool", true, true},
	} {
		st, pm, clk, pw := powerRun(t, workers, tc.noBatch, tc.noPool)
		if st != base {
			t.Errorf("%s: Stats diverge:\n  base %+v\n  %s %+v", tc.name, base, tc.name, st)
		}
		if !reflect.DeepEqual(pm, basePMU) {
			t.Errorf("%s: PMU counters diverge", tc.name)
		}
		if clk != baseClk {
			t.Errorf("%s: final clock %d, base %d", tc.name, clk, baseClk)
		}
		if !reflect.DeepEqual(pw, basePW) {
			t.Errorf("%s: plane state diverges:\n  base %+v\n  %s %+v", tc.name, basePW, tc.name, pw)
		}
	}
}

// TestPowerPlaneOffUnchanged: enabling-then-disabling must be a pure
// no-op — a run without Options.Power must match the seed behavior
// (rt.Power() nil, no overlay attached, no thermal factors anywhere).
func TestPowerPlaneOffUnchanged(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 4, Deterministic: true})
	rt.Start()
	defer rt.Stop()
	if rt.Power() != nil {
		t.Fatal("Power() non-nil without Options.Power")
	}
	st := rt.ParallelFor(0, 16, 1, func(ctx *Ctx, i0, i1 int) { ctx.Compute(1_000) })
	if st.Tasks != 16 {
		t.Fatalf("Tasks = %d, want 16", st.Tasks)
	}
}

// BenchmarkPower gates the plane's cost claims, recorded in
// BENCH_power.json by make bench:
//
//   - access/off vs access/on: the per-access fast path with the plane
//     absent (one nil pointer check at each hook site) and present but
//     between governor windows (one extra atomic load of the claim gate).
//   - tick: one full governor window per op — PMU delta, RC integration,
//     tier decision, and snapshot publish for every chiplet.
func BenchmarkPower(b *testing.B) {
	access := func(b *testing.B, pcfg *power.Config) {
		m := sim.New(sim.Config{Topo: topology.AMDMilan7713x2().Scaled(256)})
		rt := NewRuntime(m, Options{Workers: 1, SchedulerTimer: 1 << 60, Power: pcfg})
		rt.Start()
		b.Cleanup(rt.Stop)
		a := rt.M.Space.AllocLocal(64, 0)
		rt.Run(func(ctx *Ctx) { ctx.Read(a, 64) }) // warm the line
		b.ResetTimer()
		rt.Run(func(ctx *Ctx) {
			for i := 0; i < b.N; i++ {
				ctx.Read(a, 64)
			}
		})
	}
	b.Run("access/off", func(b *testing.B) { access(b, nil) })
	b.Run("access/on", func(b *testing.B) {
		// A huge tick keeps the governor idle for the whole run, so the
		// measured delta over access/off is the steady-state overhead:
		// the nextAt gate load on each placement-cache reload.
		access(b, &power.Config{TickNS: 1 << 50})
	})

	b.Run("tick", func(b *testing.B) {
		topo := topology.Synthetic(4, 2)
		pm := pmu.New(topo.NumCores())
		plan, err := (*fault.Schedule)(nil).Compile(topo)
		if err != nil {
			b.Fatal(err)
		}
		pl, err := power.NewPlane(topo, pm, plan, power.Config{TickNS: 1000})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < topo.NumCores(); c++ {
			pm.Add(c, pmu.ComputeNS, 500)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Advance exactly one window per op; top up the PMU so each
			// window sees a fresh energy delta.
			pl.MaybeTick(int64(i+1) * 1000)
			pm.Add(i%topo.NumCores(), pmu.ComputeNS, 100)
		}
	})
}
