package core

import (
	"fmt"

	"charm/internal/topology"
)

// Policy abstracts the placement and adaptation strategy of a runtime. The
// CHARM policy implements the paper's Algorithms 1 and 2; the baseline
// runtimes (RING, SHOAL, AsymSched, SAM) provide their own implementations
// in internal/baselines.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// InitialCore maps worker w of n total to its starting core.
	InitialCore(worker, workers int, t *topology.Topology) topology.CoreID
	// OnTimer runs the periodic per-worker decision; elapsed is the
	// virtual time since the last decision (Alg. 1's entry state).
	OnTimer(w *Worker, elapsed int64)
	// StealOrder returns victim worker IDs in preference order.
	StealOrder(w *Worker) []int
	// AssignWorker maps task index i of a submission to a worker. phase
	// increments per submission. CHARM preserves the task-to-worker
	// mapping across phases (§4.1), keeping each task's data in the same
	// chiplet's L3 between iterations; topology-oblivious runtimes
	// redistribute every phase, churning cache contents.
	AssignWorker(i int, phase uint64, workers int) int
}

// StableAssign preserves task-to-worker affinity across phases.
func StableAssign(i int, phase uint64, workers int) int { return i % workers }

// ChurnAssign rotates the task-to-worker mapping every phase, modeling
// schedulers with no task-identity affinity.
func ChurnAssign(i int, phase uint64, workers int) int {
	return (i + int(phase*7)) % workers
}

// CharmPolicy is the paper's chiplet scheduling policy: decentralized
// spread-rate adaptation (Alg. 1) enacted through the collision-free
// location update (Alg. 2), socket-aware placement, and chiplet-first
// stealing.
type CharmPolicy struct {
	// ObliviousSteal replaces chiplet-first stealing with worker-ID ring
	// order (the steal-order ablation of DESIGN.md).
	ObliviousSteal bool
}

// NewCharmPolicy returns the CHARM policy.
func NewCharmPolicy() *CharmPolicy { return &CharmPolicy{} }

// Name implements Policy.
func (p *CharmPolicy) Name() string { return "charm" }

// InitialCore fills sockets densely in worker order (§4.6: use all cores
// and chiplets within one socket before the next), which preserves the
// initial task-to-worker-to-core mapping until profiling detects
// inefficiency.
func (p *CharmPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return topology.CoreID(worker % t.NumCores())
}

// OnTimer is Algorithm 1 (ChipletScheduling). The caller guarantees
// elapsed >= SCHEDULER_TIMER. The counter is the per-core
// fills-from-system delta; the rate normalizes it to one timer interval.
func (p *CharmPolicy) OnTimer(w *Worker, elapsed int64) {
	opts := w.rt.opts
	counter := w.FillsSinceDecision()
	rate := counter * opts.SchedulerTimer / elapsed
	chiplets := w.rt.M.Topo.ChipletsPerNode * w.rt.M.Topo.NodesPerSocket
	switch {
	case rate >= opts.RemoteFillThreshold:
		w.lowStreak = 0
		if w.spreadRate < chiplets {
			w.spreadRate++
		}
	case rate < opts.RemoteFillThreshold/opts.Hysteresis:
		// Consolidation is debounced: one borderline-quiet interval is
		// not evidence of a smaller working set, and every enacted
		// flip-flop costs a migration plus cold refills.
		w.lowStreak++
		if w.lowStreak >= 2 && w.spreadRate > 1 {
			w.spreadRate--
			w.lowStreak = 0
		}
	default:
		w.lowStreak = 0
	}
	UpdateLocation(w)
	w.rt.prof.Record(ProfSpread, w.id, w.clock.Now(), int64(w.spreadRate))
	w.rt.prof.Record(ProfFillRate, w.id, w.clock.Now(), rate)
}

// StealOrder implements chiplet-first stealing (§4.4): victims on the same
// chiplet first, then increasing topological distance.
func (p *CharmPolicy) StealOrder(w *Worker) []int {
	if p.ObliviousSteal {
		return w.sequentialOrder()
	}
	return w.chipletFirstOrder()
}

// AssignWorker implements Policy: CHARM preserves the initial
// task-to-worker-to-core mapping (§4.1).
func (p *CharmPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return StableAssign(i, phase, workers)
}

// Rehome implements the Rehomer interface: when the fault plan offlines the
// worker's core, CHARM moves it to the nearest *idle* live core (the same
// distance ranking chiplet-first stealing uses). On a saturated machine it
// returns false and the worker parks — stacking two workers on one core
// would serialize them and make that core the makespan bottleneck, worse
// than spreading the drained tasks across the survivors. The static
// baselines do not implement Rehomer at all, so their workers always park —
// the self-healing contrast the chaos experiment measures.
func (p *CharmPolicy) Rehome(w *Worker, now int64) (topology.CoreID, bool) {
	plan := w.rt.opts.Faults
	for _, c := range w.rt.coresByDistance[w.Core()] {
		if plan.CoreDown(c, now) {
			continue
		}
		if w.rt.coreOcc[c].Load() == 0 {
			return c, true
		}
	}
	return 0, false
}

// UpdateLocation is Algorithm 2: translate the worker's spread_rate into a
// deterministic, collision-free (chiplet, slot) assignment, then enact it
// as core affinity plus a NUMA memory binding.
//
// Deviation from the paper's pseudo-code: the published wrap-around term
// slot += floor(id / CORES_PER_CHIPLET) produces colliding slots for some
// (workers, spread) combinations (e.g. 64 workers, spread 2). We use the
// algebraically collision-free equivalent slot += lap * div with
// lap = floor(id / (CHIPLETS * div)), which matches the paper's term in all
// the configurations its evaluation exercises and is a bijection over a
// socket in general (see DESIGN.md).
func UpdateLocation(w *Worker) {
	topo := w.rt.M.Topo
	cpc := topo.CoresPerChiplet
	chiplets := topo.ChipletsPerNode * topo.NodesPerSocket // per socket
	coresPerSocket := topo.CoresPerSocket()

	// Socket-aware split: workers fill socket 0 before socket 1 (§4.6).
	socket := w.id / coresPerSocket
	if socket >= topo.Sockets {
		socket = topo.Sockets - 1
	}
	localID := w.id - socket*coresPerSocket
	workersInSocket := w.rt.Workers() - socket*coresPerSocket
	if workersInSocket > coresPerSocket {
		workersInSocket = coresPerSocket
	}

	spread := w.spreadRate
	// Bounds check (Alg. 2 line 2): spread must address physical chiplets
	// and leave a dedicated core per worker.
	if spread < 1 || spread > chiplets || workersInSocket > spread*cpc {
		return
	}

	div := cpc / spread // consecutive workers sharing a chiplet
	if div < 1 {
		div = 1
	}
	chiplet := localID / div
	slot := localID % div
	if chiplet >= chiplets {
		lap := localID / (chiplets * div)
		chiplet %= chiplets
		slot += lap * div
	}
	if slot >= cpc {
		// Unreachable for valid inputs; guard against misconfiguration.
		panic(fmt.Sprintf("core: UpdateLocation slot overflow (worker %d spread %d)", w.id, spread))
	}
	core := topology.CoreID(socket*coresPerSocket + chiplet*cpc + slot)
	if p := w.rt.opts.Faults; p != nil && p.CoreDown(core, w.clock.Now()) {
		// Alg. 2 would move the worker onto a core the fault plan has
		// offlined; stay put and let the next decision interval retry.
		return
	}
	w.Migrate(core)
}

// StaticMode selects a fixed placement for StaticPolicy.
type StaticMode uint8

const (
	// Compact fills chiplets densely in worker order (LocalCache in §2.3
	// and §5.7: fewest chiplets, maximum locality).
	Compact StaticMode = iota
	// SpreadChiplets round-robins workers across the chiplets of socket 0
	// first, then socket 1 (DistributedCache: maximum aggregate L3).
	SpreadChiplets
	// SpreadSockets round-robins workers across NUMA nodes first (the
	// classic NUMA-balancing placement of RING/SAM-style runtimes).
	SpreadSockets
)

// StaticPolicy places workers once and never adapts. Churn selects
// phase-rotating task assignment (modeling schedulers without task
// affinity, e.g. a default DB thread pool).
type StaticPolicy struct {
	mode  StaticMode
	name  string
	Churn bool
}

// NewStaticPolicy builds a static policy.
func NewStaticPolicy(mode StaticMode) *StaticPolicy {
	names := map[StaticMode]string{
		Compact: "static-compact", SpreadChiplets: "static-spread-chiplets",
		SpreadSockets: "static-spread-sockets",
	}
	return &StaticPolicy{mode: mode, name: names[mode]}
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return p.name }

// InitialCore implements Policy.
func (p *StaticPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	switch p.mode {
	case Compact:
		return topology.CoreID(worker % t.NumCores())
	case SpreadChiplets:
		// Socket-fill, but stride chiplets within the socket.
		cps := t.CoresPerSocket()
		socket := worker / cps
		if socket >= t.Sockets {
			socket = t.Sockets - 1
		}
		local := worker - socket*cps
		chipletsPerSocket := t.NodesPerSocket * t.ChipletsPerNode
		ch := local % chipletsPerSocket
		slot := local / chipletsPerSocket
		return topology.CoreID(socket*cps + ch*t.CoresPerChiplet + slot%t.CoresPerChiplet)
	case SpreadSockets:
		// Round-robin across NUMA nodes; dense within each node.
		nodes := t.NumNodes()
		node := worker % nodes
		slot := worker / nodes
		return topology.CoreID(node*t.CoresPerNode() + slot%t.CoresPerNode())
	default:
		panic(fmt.Sprintf("core: unknown static mode %d", p.mode))
	}
}

// OnTimer implements Policy (no adaptation).
func (p *StaticPolicy) OnTimer(w *Worker, elapsed int64) {}

// StealOrder implements Policy: compact placement steals chiplet-first;
// spread placements steal in worker-ID order (topology-oblivious).
func (p *StaticPolicy) StealOrder(w *Worker) []int {
	if p.mode == Compact {
		return w.chipletFirstOrder()
	}
	return w.sequentialOrder()
}

// AssignWorker implements Policy.
func (p *StaticPolicy) AssignWorker(i int, phase uint64, workers int) int {
	if p.Churn {
		return ChurnAssign(i, phase, workers)
	}
	return StableAssign(i, phase, workers)
}
