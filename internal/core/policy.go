package core

import (
	"fmt"

	"charm/internal/place"
	"charm/internal/topology"
)

// Policy abstracts the placement and adaptation strategy of a runtime. The
// CHARM policy implements the paper's Algorithms 1 and 2; the baseline
// runtimes (RING, SHOAL, AsymSched, SAM) provide their own implementations
// in internal/baselines.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// InitialCore maps worker w of n total to its starting core.
	InitialCore(worker, workers int, t *topology.Topology) topology.CoreID
	// OnTimer runs the periodic per-worker decision; elapsed is the
	// virtual time since the last decision (Alg. 1's entry state).
	OnTimer(w *Worker, elapsed int64)
	// StealOrder returns victim worker IDs in preference order.
	StealOrder(w *Worker) []int
	// AssignWorker maps task index i of a submission to a worker. phase
	// increments per submission. CHARM preserves the task-to-worker
	// mapping across phases (§4.1), keeping each task's data in the same
	// chiplet's L3 between iterations; topology-oblivious runtimes
	// redistribute every phase, churning cache contents.
	AssignWorker(i int, phase uint64, workers int) int
}

// StableAssign preserves task-to-worker affinity across phases.
func StableAssign(i int, phase uint64, workers int) int { return i % workers }

// ChurnAssign rotates the task-to-worker mapping every phase, modeling
// schedulers with no task-identity affinity.
func ChurnAssign(i int, phase uint64, workers int) int {
	return (i + int(phase*7)) % workers
}

// CharmPolicy is the paper's chiplet scheduling policy: decentralized
// spread-rate adaptation (Alg. 1) enacted through the collision-free
// location update (Alg. 2), socket-aware placement, and chiplet-first
// stealing.
type CharmPolicy struct {
	// ObliviousSteal replaces chiplet-first stealing with worker-ID ring
	// order (the steal-order ablation of DESIGN.md).
	ObliviousSteal bool
}

// NewCharmPolicy returns the CHARM policy.
func NewCharmPolicy() *CharmPolicy { return &CharmPolicy{} }

// Name implements Policy.
func (p *CharmPolicy) Name() string { return "charm" }

// InitialCore fills sockets densely in worker order (§4.6: use all cores
// and chiplets within one socket before the next), which preserves the
// initial task-to-worker-to-core mapping until profiling detects
// inefficiency.
func (p *CharmPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return place.CompactCore(worker, t)
}

// OnTimer is Algorithm 1 (ChipletScheduling). The caller guarantees
// elapsed >= SCHEDULER_TIMER. The counter is the per-core
// fills-from-system delta; the rate normalizes it to one timer interval.
func (p *CharmPolicy) OnTimer(w *Worker, elapsed int64) {
	opts := w.rt.opts
	counter := w.FillsSinceDecision()
	rate := counter * opts.SchedulerTimer / elapsed
	chiplets := w.rt.M.Topo.ChipletsPerNode * w.rt.M.Topo.NodesPerSocket
	switch {
	case rate >= opts.RemoteFillThreshold:
		w.lowStreak = 0
		if w.spreadRate < chiplets {
			w.spreadRate++
		}
	case rate < opts.RemoteFillThreshold/opts.Hysteresis:
		// Consolidation is debounced: one borderline-quiet interval is
		// not evidence of a smaller working set, and every enacted
		// flip-flop costs a migration plus cold refills.
		w.lowStreak++
		if w.lowStreak >= 2 && w.spreadRate > 1 {
			w.spreadRate--
			w.lowStreak = 0
		}
	default:
		w.lowStreak = 0
	}
	UpdateLocation(w)
	w.rt.prof.Record(ProfSpread, w.id, w.clock.Now(), int64(w.spreadRate))
	w.rt.prof.Record(ProfFillRate, w.id, w.clock.Now(), rate)
}

// StealOrder implements chiplet-first stealing (§4.4): victims on the same
// chiplet first, then increasing topological distance.
func (p *CharmPolicy) StealOrder(w *Worker) []int {
	if p.ObliviousSteal {
		return w.sequentialOrder()
	}
	return w.chipletFirstOrder()
}

// AssignWorker implements Policy: CHARM preserves the initial
// task-to-worker-to-core mapping (§4.1).
func (p *CharmPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return StableAssign(i, phase, workers)
}

// Rehome implements the Rehomer interface: when the fault plan offlines the
// worker's core, CHARM moves it to the nearest *idle* live core (the same
// distance ranking chiplet-first stealing uses). On a saturated machine it
// returns false and the worker parks — stacking two workers on one core
// would serialize them and make that core the makespan bottleneck, worse
// than spreading the drained tasks across the survivors. The static
// baselines do not implement Rehomer at all, so their workers always park —
// the self-healing contrast the chaos experiment measures.
func (p *CharmPolicy) Rehome(w *Worker, now int64) (topology.CoreID, bool) {
	v := w.rt.placeView(now)
	// CongestionAware reduces to plain nearest-distance when neither a
	// power plane nor a fabric congestion signal runs; with them, an
	// evicted worker avoids re-homing onto a chiplet that is about to
	// throttle (or just parked it) or one behind a saturated fabric link.
	c, ok := v.Select(place.CongestionAware(w.Core()), place.Live, place.Idle)
	if ok {
		w.rt.met.placeRehome.Inc(w.id)
	}
	return c, ok
}

// UpdateLocation is Algorithm 2's enactment: translate the worker's
// spread_rate into the deterministic, collision-free (chiplet, slot)
// assignment computed by place.Alg2Core, then enact it as core affinity
// plus a NUMA memory binding (set_thread_affinity + set_mempolicy).
func UpdateLocation(w *Worker) {
	core, ok := place.Alg2Core(w.id, w.rt.Workers(), w.spreadRate, w.rt.M.Topo)
	if !ok {
		// Bounds check failed (Alg. 2 line 2): keep the current placement.
		return
	}
	w.rt.met.placeAlg2.Inc(w.id)
	if w.rt.opts.Faults != nil && !w.rt.placeView(w.clock.Now()).IsLive(core) {
		// Alg. 2 would move the worker onto a core the fault plan has
		// offlined; stay put and let the next decision interval retry.
		return
	}
	w.Migrate(core)
}

// StaticMode selects a fixed placement for StaticPolicy.
type StaticMode uint8

const (
	// Compact fills chiplets densely in worker order (LocalCache in §2.3
	// and §5.7: fewest chiplets, maximum locality).
	Compact StaticMode = iota
	// SpreadChiplets round-robins workers across the chiplets of socket 0
	// first, then socket 1 (DistributedCache: maximum aggregate L3).
	SpreadChiplets
	// SpreadSockets round-robins workers across NUMA nodes first (the
	// classic NUMA-balancing placement of RING/SAM-style runtimes).
	SpreadSockets
)

// StaticPolicy places workers once and never adapts. Churn selects
// phase-rotating task assignment (modeling schedulers without task
// affinity, e.g. a default DB thread pool).
type StaticPolicy struct {
	mode  StaticMode
	name  string
	Churn bool
}

// NewStaticPolicy builds a static policy.
func NewStaticPolicy(mode StaticMode) *StaticPolicy {
	names := map[StaticMode]string{
		Compact: "static-compact", SpreadChiplets: "static-spread-chiplets",
		SpreadSockets: "static-spread-sockets",
	}
	return &StaticPolicy{mode: mode, name: names[mode]}
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return p.name }

// InitialCore implements Policy via the decision plane's pure layouts.
func (p *StaticPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	switch p.mode {
	case Compact:
		return place.CompactCore(worker, t)
	case SpreadChiplets:
		return place.SpreadChipletsCore(worker, t)
	case SpreadSockets:
		return place.SpreadNodesCore(worker, t)
	default:
		panic(fmt.Sprintf("core: unknown static mode %d", p.mode))
	}
}

// OnTimer implements Policy (no adaptation).
func (p *StaticPolicy) OnTimer(w *Worker, elapsed int64) {}

// StealOrder implements Policy: compact placement steals chiplet-first;
// spread placements steal in worker-ID order (topology-oblivious).
func (p *StaticPolicy) StealOrder(w *Worker) []int {
	if p.mode == Compact {
		return w.chipletFirstOrder()
	}
	return w.sequentialOrder()
}

// AssignWorker implements Policy.
func (p *StaticPolicy) AssignWorker(i int, phase uint64, workers int) int {
	if p.Churn {
		return ChurnAssign(i, phase, workers)
	}
	return StableAssign(i, phase, workers)
}
