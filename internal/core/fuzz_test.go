package core

import (
	"testing"

	"charm/internal/sim"
	"charm/internal/topology"
)

// FuzzUpdateLocationCollisionFree drives Alg. 2 with arbitrary worker
// counts and per-worker spread rates on the Milan topology and checks that
// no two workers ever land on the same core when they share a spread rate
// (the paper's collision-freedom claim; mixed rates may transiently share,
// which the runtime tolerates via occupancy accounting).
func FuzzUpdateLocationCollisionFree(f *testing.F) {
	f.Add(uint8(64), uint8(8))
	f.Add(uint8(16), uint8(2))
	f.Add(uint8(128), uint8(4))
	f.Fuzz(func(t *testing.T, workersRaw, spreadRaw uint8) {
		topo := topology.AMDMilan7713x2()
		workers := int(workersRaw)%topo.NumCores() + 1
		spread := int(spreadRaw)%(topo.ChipletsPerNode*topo.NodesPerSocket) + 1
		m := sim.New(sim.Config{Topo: topo})
		rt := NewRuntime(m, Options{Workers: workers})
		for i := 0; i < workers; i++ {
			rt.workers[i].spreadRate = spread
			UpdateLocation(rt.workers[i])
		}
		seen := map[topology.CoreID]int{}
		for i := 0; i < workers; i++ {
			c := rt.workers[i].Core()
			if int(c) < 0 || int(c) >= topo.NumCores() {
				t.Fatalf("worker %d on invalid core %d", i, c)
			}
			if prev, dup := seen[c]; dup {
				t.Fatalf("workers=%d spread=%d: core %d shared by %d and %d",
					workers, spread, c, prev, i)
			}
			seen[c] = i
		}
		// Socket-aware invariant: workers fill socket 0 first.
		for i := 0; i < workers && i < topo.CoresPerSocket(); i++ {
			if topo.SocketOfCore(rt.workers[i].Core()) != 0 {
				t.Fatalf("worker %d of %d escaped socket 0 (spread %d)", i, workers, spread)
			}
		}
	})
}
