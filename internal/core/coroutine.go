package core

import (
	"charm/internal/pmu"
)

// coroutine backs a suspendable task with its own (goroutine) stack — the
// user-level-thread half of CHARM's concurrency model (§4.4). The worker
// goroutine and the coroutine goroutine hand control back and forth over
// unbuffered channels, so exactly one of them runs at a time and the
// worker's virtual clock is always owned by the running side.
type coroutine struct {
	ctx *Ctx
	// resume carries control worker -> coroutine.
	resume chan struct{}
	// status carries control coroutine -> worker; true = yielded,
	// false = finished.
	status  chan bool
	started bool
}

// yield suspends the coroutine until a worker resumes it. Called from the
// coroutine goroutine. If the task's job was cancelled while suspended,
// the resume unwinds the coroutine stack instead of returning to the task
// body — the cooperative cancellation point of the job service.
func (co *coroutine) yield() {
	co.status <- true
	<-co.resume
	if co.ctx.task.jobCancelled() {
		panic(cancelUnwind{})
	}
}

// runCoroutine starts or resumes a coroutine task and processes its next
// suspension or completion. Called from the worker goroutine.
func (w *Worker) runCoroutine(t *Task) {
	if t.co == nil {
		t.co = &coroutine{
			resume: make(chan struct{}),
			status: make(chan bool),
		}
		t.co.ctx = &Ctx{w: w, task: t, co: t.co}
	}
	co := t.co
	// Rebind the coroutine to this worker: after a steal the task now
	// advances the thief's clock and touches the thief's caches.
	co.ctx.w = w
	w.clock.Advance(w.rt.opts.Overheads.Switch)
	w.rt.M.PMU.Add(int(w.Core()), pmu.CtxSwitch, 1)

	if !co.started {
		co.started = true
		go func() {
			// A panic is attributed to the worker currently bound to the
			// coroutine and handed back over the status channel; the
			// worker goroutine decides between retry and failure.
			t.err = co.ctx.w.runTaskRecovered(t, func() { t.fn(co.ctx) })
			co.status <- false
		}()
	} else {
		co.resume <- struct{}{}
	}

	if yielded := <-co.status; yielded {
		// Suspended: make the continuation schedulable (and stealable,
		// which is how tasks migrate across chiplets).
		w.deque.Push(t)
		return
	}
	if err := t.err; err != nil {
		t.err = nil
		if t.jobCancelled() {
			// A cancelled job's coroutine unwound (or failed): discard, do
			// not spend retries or a fresh stack on a dead job.
			w.discardCancelled(t)
		} else if !w.retryTask(t, err) {
			w.failTask(t, err)
		}
		return
	}
	w.finishTask(t)
}
