package core

import (
	"charm/internal/pmu"
)

// coroutine backs a suspendable task with its own (goroutine) stack — the
// user-level-thread half of CHARM's concurrency model (§4.4). The worker
// goroutine and the coroutine goroutine hand control back and forth over
// unbuffered channels, so exactly one of them runs at a time and the
// worker's virtual clock is always owned by the running side.
//
// Stacks are pooled: the goroutine is a loop over a work channel, so a
// terminal task parks it there and the worker can hand it the next
// coroutine task without paying goroutine creation and stack growth again.
// The worker re-zeroes the coroutine's Ctx before each work send, and the
// send's happens-before edge publishes it to the stack goroutine.
type coroutine struct {
	ctx *Ctx
	// work hands the next task worker -> parked goroutine; closing it
	// retires the goroutine.
	work chan *Task
	// resume carries control worker -> coroutine.
	resume chan struct{}
	// status carries control coroutine -> worker; true = yielded,
	// false = finished.
	status chan bool
	// started marks a task mid-flight on this stack (set at first
	// dispatch, cleared when the stack is recycled). Worker-side only.
	started bool
}

// yield suspends the coroutine until a worker resumes it. Called from the
// coroutine goroutine. If the task's job was cancelled while suspended,
// the resume unwinds the coroutine stack instead of returning to the task
// body — the cooperative cancellation point of the job service.
func (co *coroutine) yield() {
	co.status <- true
	<-co.resume
	if co.ctx.task.jobCancelled() {
		panic(cancelUnwind{})
	}
}

// run is the stack goroutine's work loop: execute each task handed over
// the work channel and report its completion. A panic is attributed to the
// worker bound to the coroutine at dispatch and handed back over the
// status channel; the worker goroutine decides between retry and failure.
func (co *coroutine) run() {
	for t := range co.work {
		ctx := co.ctx
		t.err = ctx.w.runTaskRecovered(t, func() {
			defer ctx.flushBatch()
			t.fn(ctx)
		})
		co.status <- false
	}
}

// getCoroutine hands t a stack, reusing a pooled one when available. A
// pooled coroutine's goroutine is parked at its work loop; its Ctx is
// re-zeroed for the new task here, before the work send publishes it.
func (w *Worker) getCoroutine(t *Task) *coroutine {
	if n := len(w.coPool); n > 0 {
		co := w.coPool[n-1]
		w.coPool[n-1] = nil
		w.coPool = w.coPool[:n-1]
		*co.ctx = Ctx{w: w, task: t, co: co}
		return co
	}
	co := &coroutine{
		work:   make(chan *Task),
		resume: make(chan struct{}),
		status: make(chan bool),
	}
	co.ctx = &Ctx{w: w, task: t, co: co}
	go co.run()
	return co
}

// putCoroutine recycles a terminal coroutine: the goroutine is parked back
// at its work loop, ready for the next task. Over the pool cap (or with
// pooling disabled) the work channel is closed instead, letting the
// goroutine exit.
func (w *Worker) putCoroutine(co *coroutine) {
	co.started = false
	if w.rt.pool && len(w.coPool) < coPoolCap {
		co.ctx.task = nil // don't pin the (possibly recycled) task struct
		w.coPool = append(w.coPool, co)
		return
	}
	close(co.work)
}

// closeCoPool retires the worker's idle pooled stack goroutines (worker
// shutdown).
func (w *Worker) closeCoPool() {
	for _, co := range w.coPool {
		close(co.work)
	}
	w.coPool = nil
}

// runCoroutine starts or resumes a coroutine task and processes its next
// suspension or completion. Called from the worker goroutine.
func (w *Worker) runCoroutine(t *Task) {
	if t.co == nil {
		t.co = w.getCoroutine(t)
	}
	co := t.co
	// Rebind the coroutine to this worker: after a steal the task now
	// advances the thief's clock and touches the thief's caches.
	co.ctx.w = w
	w.clock.Advance(w.rt.opts.Overheads.Switch)
	w.rt.M.PMU.Add(int(w.Core()), pmu.CtxSwitch, 1)

	if !co.started {
		co.started = true
		co.work <- t
	} else {
		co.resume <- struct{}{}
	}

	if yielded := <-co.status; yielded {
		// Suspended: make the continuation schedulable (and stealable,
		// which is how tasks migrate across chiplets).
		w.deque.Push(t)
		return
	}
	// Terminal (success, failure, or cancel-unwind): the stack goroutine
	// is parked back at its work loop. Detach and recycle it before the
	// task's lifecycle accounting, which may free the task struct.
	err := t.err
	t.err = nil
	t.co = nil
	w.putCoroutine(co)
	if err != nil {
		if t.jobCancelled() {
			// A cancelled job's coroutine unwound (or failed): discard, do
			// not spend retries or a fresh stack on a dead job.
			w.discardCancelled(t)
		} else if !w.retryTask(t, err) {
			w.failTask(t, err)
		}
		return
	}
	w.finishTask(t)
}
