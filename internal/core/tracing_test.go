package core

import (
	"bytes"
	"strings"
	"testing"

	"charm/internal/admit"
	"charm/internal/fault"
	"charm/internal/obs"
	"charm/internal/sim"
	"charm/internal/topology"
)

// tracedOverloadRun drives the overload scenario (the PR 4 harness
// experiment: 400 one-stage Poisson jobs at 2x capacity under deadline-aware
// shedding) on a deterministic runtime with tracing, metrics, and
// per-priority SLOs enabled. thermal throttles chiplet 1 by 3x mid-run with
// the circuit breakers on.
func tracedOverloadRun(t *testing.T, thermal bool) (*Runtime, *JobService) {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	var plan *fault.Plan
	if thermal {
		var err error
		plan, err = fault.New("trace-thermal", 7).
			ThermalThrottle(1, 100_000, 1_500_000, 3.0).Compile(topo)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 8, Deterministic: true, Faults: plan})
	rt.Start()
	t.Cleanup(rt.Stop)
	rt.EnableTracing(true)
	rt.EnableMetrics(true)
	svc, err := rt.ServeJobs(JobServiceOptions{
		Policy:        admit.Shed,
		QueueCapacity: 64,
		Breakers:      thermal,
		EvalInterval:  50_000,
		SLO:           map[int]float64{0: 0.95, 1: 0.99, 2: 0.999},
		Source: &SpecSource{
			// 2x capacity: one job is 4x10000 ns of compute over 8 workers,
			// so the capacity-matched gap is 5000 ns and 2500 doubles it.
			Arrivals: admit.NewPoisson(7, 2_500, 400),
			Gen: func(i int) JobSpec {
				s := computeJob(4, 10_000, nil)
				s.Priority = i % 3
				s.Deadline = 200_000
				s.Cost = 40_000
				return s
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	return rt, svc
}

// TestDeterministicTraceReplay: two runs of the same seeded, faulted,
// overloaded workload in Deterministic mode must produce byte-identical
// trace documents — span-for-span, including the flight recorder's
// retained set and the drop counter.
func TestDeterministicTraceReplay(t *testing.T) {
	var docs [2]bytes.Buffer
	for i := range docs {
		rt, _ := tracedOverloadRun(t, true)
		if err := rt.Tracer().WriteJSON(&docs[i]); err != nil {
			t.Fatal(err)
		}
		rt.Stop()
	}
	if docs[0].Len() == 0 {
		t.Fatal("empty trace document")
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Errorf("trace documents differ across identical seeded runs (%d vs %d bytes)",
			docs[0].Len(), docs[1].Len())
	}
}

// TestCritpathAttribution: on the overload scenario every completed job's
// breakdown must explain >=90% of its end-to-end latency — in particular
// the shed-era p99 job — with no bucket sum exceeding the total.
func TestCritpathAttribution(t *testing.T) {
	rt, svc := tracedOverloadRun(t, false)
	if svc.Stats().Shed == 0 {
		t.Fatal("scenario did not shed: not an overload run")
	}
	var lats []int64
	byLat := map[int64]*Job{}
	for _, j := range svc.Jobs() {
		if j.State() == JobCompleted {
			lats = append(lats, j.Latency())
			byLat[j.Latency()] = j
		}
	}
	if len(lats) == 0 {
		t.Fatal("no completed jobs")
	}
	for _, tr := range rt.Tracer().Traces() {
		if tr.ID == 0 {
			continue
		}
		b, ok := obs.Analyze(tr)
		if !ok {
			continue // never dispatched: pure admit-queue wait by definition
		}
		if f := b.AttributedFraction(); f < 0.90 {
			t.Errorf("trace %d: attributed %.1f%% of %d ns (unattributed %d)",
				tr.ID, 100*f, b.Total, b.Unattributed)
		}
		sum := b.AdmitQueue + b.DispatchQueue + b.Compute + b.Stall + b.Retry + b.Unattributed
		if sum != b.Total {
			t.Errorf("trace %d: buckets sum to %d, total %d", tr.ID, sum, b.Total)
		}
	}
	// The p99 completed job specifically must be fully explained.
	sortInt64s(lats)
	p99 := byLat[lats[(99*len(lats)+99)/100-1]]
	b, ok := obs.Analyze(rt.Tracer().TraceOf(obs.TraceID(p99.ID())))
	if !ok {
		t.Fatalf("p99 job %d has no stage spans", p99.ID())
	}
	if f := b.AttributedFraction(); f < 0.90 {
		t.Errorf("p99 job %d: attributed %.1f%%, want >=90%%", p99.ID(), 100*f)
	}
	if b.Total != p99.Latency() {
		t.Errorf("p99 job %d: trace total %d != measured latency %d",
			p99.ID(), b.Total, p99.Latency())
	}
	rep := obs.BuildReport(rt.Tracer())
	if len(rep.Jobs) == 0 || rep.TotalNS <= 0 {
		t.Fatalf("empty report: %d jobs, %d ns", len(rep.Jobs), rep.TotalNS)
	}
	if rep.UnattribNS*10 > rep.TotalNS {
		t.Errorf("aggregate unattributed %d ns exceeds 10%% of %d ns",
			rep.UnattribNS, rep.TotalNS)
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestAdmitQueueWaitHistogram: every dispatched job must observe its
// enqueue->dispatch wait into charm_admit_queue_wait_ns under its priority
// class label, and the per-class counts must sum to the dispatched total.
func TestAdmitQueueWaitHistogram(t *testing.T) {
	rt, svc := tracedOverloadRun(t, false)
	// Expired jobs are caught at the dispatch-time budget check before they
	// start, so only completed jobs are guaranteed a wait observation.
	dispatched := svc.Stats().Completed
	var seen int64
	classes := map[string]bool{}
	for _, s := range rt.MetricsSnapshot().Samples {
		if s.Name != "charm_admit_queue_wait_ns" || s.Hist == nil {
			continue
		}
		seen += s.Hist.Count
		classes[s.Labels["priority"]] = true
		if s.Hist.Sum < 0 {
			t.Errorf("negative wait sum for priority %q", s.Labels["priority"])
		}
	}
	if seen == 0 {
		t.Fatal("charm_admit_queue_wait_ns not recorded")
	}
	if seen < dispatched {
		t.Errorf("histogram count %d < %d dispatched jobs", seen, dispatched)
	}
	for _, c := range []string{"0", "1", "2"} {
		if !classes[c] {
			t.Errorf("no admit-queue-wait samples for priority class %s", c)
		}
	}
}

// TestBreakerTransitionSpans: the thermal scenario must record breaker
// state transitions as runtime-scoped spans with valid states, and the
// Chrome trace must carry them as instant events.
func TestBreakerTransitionSpans(t *testing.T) {
	rt, _ := tracedOverloadRun(t, true)
	var transitions int
	for _, s := range rt.Tracer().TraceOf(0).Spans {
		if s.Kind != obs.SpanBreaker {
			continue
		}
		transitions++
		if s.Arg == s.Arg2 {
			t.Errorf("breaker span with from == to == %d", s.Arg)
		}
		for _, st := range []int64{s.Arg, s.Arg2} {
			if st < 0 || st > 2 {
				t.Errorf("breaker span with invalid state %d", st)
			}
		}
		if s.Chiplet < 0 || s.Chiplet > 3 {
			t.Errorf("breaker span on invalid chiplet %d", s.Chiplet)
		}
	}
	if transitions == 0 {
		t.Fatal("no breaker transition spans under a thermal fault with breakers on")
	}
	var chrome bytes.Buffer
	if err := rt.prof.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"breaker-open"`) {
		t.Error("Chrome trace has no breaker-open instant event")
	}
}

// TestSLOBurnAlerts: under 2x overload the lower classes must burn their
// error budgets and fire burn-rate alerts, visible through the service
// status, the alert log, the alert counter metric, and alert spans.
func TestSLOBurnAlerts(t *testing.T) {
	rt, svc := tracedOverloadRun(t, false)
	alerts := svc.SLOAlerts()
	fired := 0
	for _, a := range alerts {
		if a.Firing {
			fired++
			if a.FastBurn < 14 || a.SlowBurn < 6 {
				t.Errorf("alert fired below thresholds: fast %.2f slow %.2f",
					a.FastBurn, a.SlowBurn)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no SLO alerts fired under 2x overload")
	}
	st := svc.SLOStatus(rt.MaxWorkerClock())
	if len(st) != 3 {
		t.Fatalf("SLOStatus classes = %d, want 3", len(st))
	}
	var counted float64
	for _, s := range rt.MetricsSnapshot().Samples {
		if s.Name == "charm_slo_alerts_total" {
			counted += s.Value
		}
	}
	if int(counted) != fired {
		t.Errorf("charm_slo_alerts_total = %.0f, want %d", counted, fired)
	}
	var spans int
	for _, s := range rt.Tracer().TraceOf(0).Spans {
		if s.Kind == obs.SpanSLOAlert {
			spans++
		}
	}
	if spans != len(alerts) {
		t.Errorf("SLO alert spans = %d, want %d edges", spans, len(alerts))
	}
}

// TestFlightRecorderRetention: the recorder must retain SLO-violating
// jobs' traces (bounded by the cap) and none of the deadline-meeting ones.
func TestFlightRecorderRetention(t *testing.T) {
	rt, svc := tracedOverloadRun(t, false)
	tr := rt.Tracer()
	ids := tr.RetainedIDs()
	if len(ids) == 0 {
		t.Fatal("nothing retained under overload")
	}
	if len(ids) > obs.DefaultFlightRecorderCap {
		t.Fatalf("retained %d traces, cap %d", len(ids), obs.DefaultFlightRecorderCap)
	}
	for _, j := range svc.Jobs() {
		if j.State() == JobCompleted && j.MetDeadline() && tr.Retained(obs.TraceID(j.ID())) {
			t.Errorf("deadline-meeting job %d retained by the flight recorder", j.ID())
		}
	}
	for _, id := range ids {
		if len(tr.TraceOf(id).Spans) == 0 {
			t.Errorf("retained trace %d has no spans", id)
		}
	}
}

// TestTracingDisabledZeroCost: with tracing off, Emit must be a single
// atomic load — no allocation, no span recorded.
func TestTracingDisabledZeroCost(t *testing.T) {
	tr := obs.NewTracer(2, 0)
	span := obs.Span{Trace: 1, Kind: obs.SpanTask, Start: 1, End: 2}
	if n := testing.AllocsPerRun(100, func() { tr.Emit(0, span) }); n != 0 {
		t.Errorf("disabled Emit allocates %.1f times per call", n)
	}
	if got := tr.SpanCount(); got != 0 {
		t.Errorf("disabled Emit recorded %d spans", got)
	}
	tr.SetEnabled(true)
	tr.Emit(0, span)
	if got := tr.SpanCount(); got != 1 {
		t.Errorf("enabled Emit recorded %d spans, want 1", got)
	}
}
