package core

import (
	"fmt"
	"math"
	"runtime/debug"

	"charm/internal/obs"
	"charm/internal/topology"
)

// This file is the runtime half of the fault-injection subsystem
// (internal/fault holds the schedules): graceful degradation when cores go
// offline mid-run, typed task failures with bounded retry, and the
// starvation watchdog. The protocol on core-offline is
//
//  1. drain — the worker empties its deque and inbox, re-enqueueing every
//     queued task to a live worker (pinned tasks are re-homed). Suspended
//     coroutines that were queued locally migrate the same way; a
//     coroutine running elsewhere simply never steals back.
//  2. re-home — if the policy implements Rehomer, the worker migrates to
//     the replacement core and keeps executing (CHARM's self-healing).
//  3. park — otherwise the worker blocks, excluded from the throttle
//     gate, until virtual time reaches the core's revival or a stray task
//     lands in its inbox (which it re-homes and parks again). Static
//     baseline policies take this path: their capacity is gone until the
//     core returns, which is exactly the degradation the chaos experiment
//     measures.

// TaskError is a task panic converted into a typed, attributed error: which
// task failed, where it was executing, what it panicked with, and how many
// attempts were made. Submission APIs re-panic it on the submitter;
// errors.As works through the panic value.
type TaskError struct {
	// TaskID is the runtime-wide task sequence number.
	TaskID uint64
	// Worker, Core, Chiplet locate the execution that panicked.
	Worker  int
	Core    topology.CoreID
	Chiplet topology.ChipletID
	// Attempts is the number of executions, including retries.
	Attempts int
	// Val is the recovered panic value; Stack the goroutine stack at the
	// panic site.
	Val   any
	Stack []byte
}

// Error formats the failure with its attribution and original stack.
func (e *TaskError) Error() string {
	return fmt.Sprintf("core: task %d panicked on worker %d (core %d, chiplet %d, attempt %d): %v\n\ntask stack:\n%s",
		e.TaskID, e.Worker, e.Core, e.Chiplet, e.Attempts, e.Val, e.Stack)
}

// Unwrap exposes a panic value that was itself an error.
func (e *TaskError) Unwrap() error {
	if err, ok := e.Val.(error); ok {
		return err
	}
	return nil
}

// Rehomer is an optional Policy extension: a policy that can relocate a
// worker whose core just went offline returns a live replacement core.
// Policies without it (the static baselines) leave the worker parked until
// the core revives — adaptivity under faults is precisely what separates
// CHARM from them in the chaos experiment.
type Rehomer interface {
	Rehome(w *Worker, now int64) (topology.CoreID, bool)
}

// Fault event codes recorded in the ProfFault series (and as Chrome-trace
// instant events).
const (
	fcOffline  = int64(iota) // worker's core went offline
	fcRehome                 // worker migrated to a live core after a fault
	fcPark                   // worker parked (no replacement core)
	fcResume                 // worker resumed on its revived core
	fcRetry                  // failed task re-enqueued for a retry
	fcWatchdog               // task finished past the starvation deadline
)

// checkFault handles this worker's core being offline at its current
// virtual time. Returns true when it consumed the scheduling iteration.
func (w *Worker) checkFault() bool {
	plan := w.rt.opts.Faults
	if plan == nil {
		return false
	}
	c := w.Core()
	now := w.clock.Now()
	if !plan.CoreDown(c, now) {
		return false
	}
	w.rt.met.faultOfflines.Inc(w.id)
	w.rt.prof.Record(ProfFault, w.id, now, fcOffline)
	w.drainToLive(now)
	if r, ok := w.rt.opts.Policy.(Rehomer); ok {
		if dst, ok := r.Rehome(w, now); ok && !plan.CoreDown(dst, now) {
			w.rt.met.faultMigrations.Inc(w.id)
			w.rt.prof.Record(ProfFault, w.id, now, fcRehome)
			if tr := w.rt.tracer; tr.Enabled() {
				// Runtime-scoped instant (trace 0): the worker moved, which
				// affects every job placed on it.
				tr.Emit(w.id, obs.Span{Kind: obs.SpanRehome, Start: now, End: now,
					Worker: int32(w.id), Chiplet: int32(w.rt.M.Topo.ChipletOf(c)),
					Arg: int64(dst)})
			}
			w.Migrate(dst)
			// Restart the Alg. 1 interval on the new core's counters: the
			// old core's fill history is meaningless there.
			w.lastDecision = w.clock.Now()
			w.lastFills = w.rt.M.PMU.FillsFromSystem(int(dst))
			w.lowStreak = 0
			return true
		}
	}
	w.park(c)
	return true
}

// drainToLive empties the worker's deque and inbox, re-enqueueing every
// task to a live worker. Pinned tasks are re-homed (their target is gone;
// running them on the replacement is the degradation contract).
func (w *Worker) drainToLive(now int64) {
	next := w.id
	if w.rt.nextLiveWorker(next, now) == next {
		// Every worker's core is down at now — there is nowhere to drain
		// to, and rerouting would cycle this worker's own inbox forever.
		// Fold the inbox into the deque and keep the queue: a re-homing
		// policy carries it to the replacement core, and a parked worker
		// holds it (with an empty inbox, so park waits for revival instead
		// of waking instantly) until the fleet reaches the revival time.
		for {
			t := w.inbox.Take()
			if t == nil {
				return
			}
			w.deque.Push(t)
		}
	}
	reroute := func(t *Task) {
		if t.jobCancelled() && (t.co == nil || !t.co.started) {
			// A cancelled job's never-started task dies here instead of
			// migrating; a started coroutine is re-homed so a live worker
			// can resume-and-unwind its stack.
			w.discardCancelled(t)
			return
		}
		next = w.rt.nextLiveWorker(next, now)
		if t.pinned {
			// The home core is gone; the degradation contract is "run it
			// on a live worker" — which one no longer matters, so unpin.
			// A task that stayed pinned could strand in the deque of a
			// worker blocked inside a barrier this task is itself a party
			// of (thieves bounce pinned tasks back), deadlocking the
			// fleet.
			t.pinned = false
			t.home = next
		}
		w.rt.workers[next].inbox.Put(t)
		w.rt.met.faultReenqueues.Inc(w.id)
	}
	for {
		t := w.deque.Pop()
		if t == nil {
			break
		}
		reroute(t)
	}
	for {
		t := w.inbox.Take()
		if t == nil {
			break
		}
		reroute(t)
	}
}

// nextLiveWorker returns the first worker after wid (cyclically, wid last)
// whose core is online at time t. With every core down it returns wid —
// the caller's park fallback then advances virtual time.
func (rt *Runtime) nextLiveWorker(wid int, t int64) int {
	plan := rt.opts.Faults
	n := len(rt.workers)
	for i := 1; i <= n; i++ {
		cand := (wid + i) % n
		if !plan.CoreDown(rt.workers[cand].Core(), t) {
			return cand
		}
	}
	return wid
}

// park blocks the worker while its core is offline. It wakes to re-home
// stray inbox arrivals (re-parking via the caller's loop), and resumes
// once the fleet's virtual time reaches the core's revival. If the entire
// fleet is blocked, the parked worker jumps its clock to the revival time
// so virtual time keeps moving.
func (w *Worker) park(c topology.CoreID) {
	plan := w.rt.opts.Faults
	upAt := plan.CoreUpAt(c, w.clock.Now())
	w.rt.met.faultParks.Inc(w.id)
	w.rt.prof.Record(ProfFault, w.id, w.clock.Now(), fcPark)
	if tr := w.rt.tracer; tr.Enabled() {
		tr.Emit(w.id, obs.Span{Kind: obs.SpanPark, Start: w.clock.Now(), End: w.clock.Now(),
			Worker: int32(w.id), Chiplet: int32(w.rt.M.Topo.ChipletOf(c))})
	}
	w.blocked.Store(true)
	defer w.blocked.Store(false)
	if ls := w.rt.ls; ls != nil {
		ls.blockOn(w.id, func() bool {
			return !w.inbox.Empty() || w.rt.MaxWorkerClock() >= upAt ||
				ls.othersBlockedLocked(w.id)
		})
		if w.rt.stop.Load() {
			return
		}
		if w.inbox.Empty() {
			w.resumeAt(upAt)
		}
		return
	}
	for !w.rt.stop.Load() {
		if !w.inbox.Empty() {
			// A stray task found the dead worker; the caller's loop
			// re-drains it to a live worker and parks again.
			return
		}
		if w.rt.MaxWorkerClock() >= upAt {
			w.resumeAt(upAt)
			return
		}
		if w.rt.minUnblockedClock() == math.MaxInt64 {
			// Every worker is parked or blocked: nobody can advance
			// virtual time, so jump to the revival point.
			w.resumeAt(upAt)
			return
		}
		yieldHost()
	}
}

// resumeAt brings a parked worker back online at virtual time t.
func (w *Worker) resumeAt(t int64) {
	w.clock.SyncTo(t)
	w.lastDecision = w.clock.Now()
	w.lastFills = w.rt.M.PMU.FillsFromSystem(int(w.Core()))
	w.rt.prof.Record(ProfFault, w.id, w.clock.Now(), fcResume)
}

// runTaskRecovered executes fn, converting a panic into a typed TaskError
// attributed to the executing task and location (failure isolation: a
// crashing task must not take the worker — and the whole runtime — down
// with it). Returns nil on success.
func (w *Worker) runTaskRecovered(t *Task, fn func()) (err *TaskError) {
	defer func() {
		if r := recover(); r != nil {
			err = &TaskError{
				TaskID:   t.id,
				Worker:   w.id,
				Core:     w.Core(),
				Chiplet:  w.rt.M.Topo.ChipletOf(w.Core()),
				Attempts: int(t.attempts) + 1,
				Val:      r,
				Stack:    debug.Stack(),
			}
		}
	}()
	fn()
	return nil
}

// retryTask re-enqueues a failed task when the retry budget allows,
// applying exponential backoff in virtual time. Returns false when the
// budget is exhausted (the caller then fails the group).
func (w *Worker) retryTask(t *Task, err *TaskError) bool {
	if int(t.attempts) >= w.rt.opts.MaxTaskRetries {
		return false
	}
	t.attempts++
	backoff := w.rt.opts.RetryBackoff << (t.attempts - 1)
	now := w.clock.Now()
	t.stamp = now + backoff
	t.co = nil // a coroutine retry starts from a fresh stack
	t.err = nil
	w.rt.met.faultRetries.Inc(w.id)
	w.rt.prof.Record(ProfFault, w.id, now, fcRetry)
	if tr := w.rt.tracer; tr.Enabled() && t.job != nil {
		// The span covers the backoff window: failure → earliest restart.
		tr.Emit(w.id, obs.Span{Trace: obs.TraceID(t.job.id), Kind: obs.SpanRetry,
			Start: now, End: t.stamp, Worker: int32(w.id),
			Chiplet: int32(w.rt.M.Topo.ChipletOf(w.Core())), Stage: t.stage,
			Arg: int64(t.attempts)})
	}
	w.deque.Push(t)
	return true
}

// failTask reports a task failure (retries exhausted or disabled) to the
// task's group or caller and completes its lifecycle accounting.
func (w *Worker) failTask(t *Task, err *TaskError) {
	if t.grp != nil {
		t.grp.fail(err)
	}
	if t.onDone != nil {
		t.onDone.pan.Store(err)
	}
	w.finishTask(t)
}
