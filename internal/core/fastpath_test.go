package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/pmu"
	"charm/internal/sim"
	"charm/internal/topology"
)

// Tests for the engine fast path (fastpath.go): the placement cache and
// access batching must be invisible in every simulated observable, and the
// task/coroutine pools must never leak state across recycled structs.

// fastRun executes one deterministic run with the given fast-path knobs and
// returns its observable outputs. The workload is built to cross every
// fast-path boundary: long same-line repeat runs (batching) that straddle
// thermal step-function edges (the replay fallback), oversubscribed workers
// (occupancy inflation, cached), steals and retries (placement-epoch
// invalidation), coroutine yields, barriers, clock reads, and delegation
// (every flush-point flavor).
func fastRun(t *testing.T, workers int, oversub, noBatch, noPool bool) (Stats, pmu.Snapshot, int64) {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	sched := fault.New("fastpath", 3).
		ThermalThrottle(0, 40_000, 900_000, 2.5).
		ThermalThrottle(2, 120_000, 600_000, 4)
	plan := compilePlan(t, sched, topo)
	rt := NewRuntime(m, Options{
		Workers: workers, Oversubscribe: oversub, Deterministic: true,
		SchedulerTimer: 50_000, Faults: plan,
		MaxTaskRetries: 1, RetryBackoff: 500,
		NoAccessBatch: noBatch, NoPooling: noPool,
	})
	rt.Start()
	defer rt.Stop()

	addr := rt.Alloc(1<<16, 0)
	var total Stats
	add := func(st Stats) {
		total.Makespan += st.Makespan
		total.Tasks += st.Tasks
		total.Steals += st.Steals
		total.RemoteSteals += st.RemoteSteals
		total.Migrations += st.Migrations
	}

	// Phase 1: repeat-heavy plain tasks. The line stride keeps both sampled
	// and unsampled lines in play; the transient panics route a fixed subset
	// through the retry path while repeats are pending.
	var failedOnce [64]atomic.Bool
	add(rt.ParallelFor(0, 64, 2, func(ctx *Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			a := addr + mem.Addr(i%32)*64
			for r := 0; r < 200; r++ {
				ctx.Read(a, 64)
			}
			ctx.Compute(2_000)
			if i%13 == 5 && !failedOnce[i].Swap(true) {
				panic("deterministic transient")
			}
			for r := 0; r < 100; r++ {
				ctx.Write(a, 8)
			}
			_ = ctx.Now() // clock read mid-run: forces a flush
		}
	}))

	// Phase 2: coroutines interleaving repeats with yields (suspension and
	// steal points between pending batches).
	add(rt.AllDoCo(func(ctx *Ctx) {
		a := addr + mem.Addr(ctx.CoreID())*64
		for round := 0; round < 4; round++ {
			for r := 0; r < 64; r++ {
				ctx.Read(a, 64)
			}
			ctx.Yield()
			for r := 0; r < 32; r++ {
				ctx.Write(a, 64)
			}
		}
	}))

	// Phase 2b: a barrier mid-repeat-run (barrier flush on plain tasks).
	bar := rt.NewBarrier(workers)
	add(rt.AllDo(func(ctx *Ctx) {
		a := addr + mem.Addr(ctx.CoreID())*64
		for round := 0; round < 3; round++ {
			for r := 0; r < 40; r++ {
				ctx.Read(a, 64)
			}
			ctx.Barrier(bar)
		}
	}))

	// Phase 3: spawn storm from one worker — the other eleven steal, so
	// pooled structs and pending batches cross placement changes.
	add(rt.Run(func(ctx *Ctx) {
		for i := 0; i < 96; i++ {
			i := i
			ctx.Spawn(func(c *Ctx) {
				a := addr + mem.Addr(i%32)*64
				for r := 0; r < 64; r++ {
					c.Read(a, 64)
				}
				c.Compute(1_500)
			})
		}
	}))

	// Phase 4: delegation — the RPC send is a flush point on the sender and
	// the delegated body batches on the owner.
	add(rt.Run(func(ctx *Ctx) {
		for i := 0; i < 16; i++ {
			ctx.Delegate(addr+mem.Addr(i)*mem.PageSize%(1<<16), func(c *Ctx) {
				for r := 0; r < 50; r++ {
					c.Read(addr, 64)
				}
			})
		}
	}))

	return total, rt.M.PMU.Snapshot(), rt.MaxWorkerClock()
}

// TestBatchingReplayBitIdentical: the acceptance gate for the fast path.
// Runs with batching and pooling disabled in every combination must be
// bit-identical to the fast-path run — Stats, all PMU counters on all
// cores, and the final worker clocks. Two machine shapes: "balanced"
// exercises steals and retries; "oversubscribed" exercises the cached
// occupancy-inflation factors (two workers timesharing some cores).
func TestBatchingReplayBitIdentical(t *testing.T) {
	configs := []struct {
		name    string
		workers int
		oversub bool
	}{
		{"balanced", 8, false},
		{"oversubscribed", 12, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			base, basePMU, baseClk := fastRun(t, cfg.workers, cfg.oversub, false, false)
			if base.Tasks == 0 {
				t.Fatalf("workload too tame to be a gate: %+v", base)
			}
			if !cfg.oversub && base.Steals == 0 {
				t.Fatalf("balanced workload recorded no steals: %+v", base)
			}
			for _, tc := range []struct {
				name            string
				noBatch, noPool bool
			}{
				{"nobatch", true, false},
				{"nopool", false, true},
				{"nobatch-nopool", true, true},
			} {
				st, pm, clk := fastRun(t, cfg.workers, cfg.oversub, tc.noBatch, tc.noPool)
				if st != base {
					t.Errorf("%s: Stats diverge:\n  fast %+v\n  %s %+v", tc.name, base, tc.name, st)
				}
				if !reflect.DeepEqual(pm, basePMU) {
					t.Errorf("%s: PMU counters diverge", tc.name)
				}
				if clk != baseClk {
					t.Errorf("%s: final clock %d, fast path %d", tc.name, clk, baseClk)
				}
			}
		})
	}
}

// TestBatchFlushOnThermalEdge: a repeat run deliberately started just
// before a thermal step must charge exactly the unbatched cost — the
// replay-fallback path — not the flat pre-step cost for the whole batch.
func TestBatchFlushOnThermalEdge(t *testing.T) {
	run := func(noBatch bool) int64 {
		topo := topology.Synthetic(1, 1)
		m := sim.New(sim.Config{Topo: topo})
		sched := fault.New("edge", 1).ThermalThrottle(0, 500, fault.Forever, 3)
		plan := compilePlan(t, sched, topo)
		rt := NewRuntime(m, Options{
			Workers: 1, Deterministic: true, SchedulerTimer: 1 << 60,
			Faults: plan, NoAccessBatch: noBatch,
		})
		rt.Start()
		defer rt.Stop()
		a := rt.Alloc(64, 0)
		rt.Run(func(ctx *Ctx) {
			// The seed access lands before t=500; the 300 repeats cross it.
			for r := 0; r < 301; r++ {
				ctx.Read(a, 64)
			}
		})
		return rt.MaxWorkerClock()
	}
	fast, slow := run(false), run(true)
	if fast != slow {
		t.Fatalf("clock across thermal edge: batched %d, unbatched %d", fast, slow)
	}
}

// TestPooledReuseStress hammers task-struct and coroutine-stack recycling
// under the adversarial lifecycle mix — cross-worker steals of pooled
// structs, transient-failure retries, and job cancellation unwinding
// suspended coroutines — in parallel (non-lockstep) mode. make verify runs
// this under -race, which is the actual assertion: any stale pointer or
// unsynchronized recycle shows up as a race or a torn task.
func TestPooledReuseStress(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 8, MaxTaskRetries: 2, RetryBackoff: 200})
	rt.Start()
	defer rt.Stop()
	addr := rt.Alloc(1<<12, 0)

	for round := 0; round < 4; round++ {
		// Steal + retry storm: all tasks spawned from one worker, so seven
		// thieves pull recycled structs out of a foreign pool; a fixed
		// subset panics once to route through retry (which must not free).
		var fail [256]atomic.Bool
		var ran atomic.Int64
		rt.Run(func(ctx *Ctx) {
			for i := 0; i < 256; i++ {
				i := i
				ctx.Spawn(func(c *Ctx) {
					c.Read(addr+mem.Addr(i%16)*64, 64)
					c.Compute(500)
					if i%7 == 3 && !fail[i].Swap(true) {
						panic("transient")
					}
					ran.Add(1)
				})
			}
		})
		if got := ran.Load(); got != 256 {
			t.Fatalf("round %d: %d of 256 spawned tasks ran", round, got)
		}

		// Cancellation storm: coroutine jobs cancelled mid-flight must
		// unwind at Yield and recycle their stacks while the surviving
		// jobs keep completing from the same pools.
		jobs := make([]*Job, 8)
		for i := range jobs {
			stage := make(JobStage, 8)
			for k := range stage {
				stage[k] = func(c *Ctx) {
					for y := 0; y < 4; y++ {
						c.Compute(300)
						c.Yield()
					}
				}
			}
			j, err := rt.SubmitJob(JobSpec{Coro: true, Stages: []JobStage{stage}})
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = j
			if i%2 == 1 {
				j.Cancel()
			}
		}
		for i, j := range jobs {
			<-j.Done()
			st := j.State()
			if i%2 == 1 {
				if st != JobCancelled && st != JobCompleted {
					t.Fatalf("round %d: cancelled job %d ended %v", round, i, st)
				}
			} else if st != JobCompleted {
				t.Fatalf("round %d: job %d ended %v, want completed", round, i, st)
			}
		}
	}
}

// TestPoolRecycleZeroed: a recycled task struct must carry nothing over
// from its previous life — run a first wave that sets every optional field
// (pinned delegated coroutine tasks with retries), then a second wave of
// plain tasks from the same pools and check their observable behavior.
func TestPoolRecycleZeroed(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 4, Deterministic: true, MaxTaskRetries: 1})
	rt.Start()
	defer rt.Stop()
	addr := rt.Alloc(1<<12, 0)

	// Wave 1: delegated work (pinned, hops, delegated flags), coroutines
	// (stacks), and one retry each (attempts, backoff stamps).
	var once [32]atomic.Bool
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < 32; i++ {
			i := i
			ctx.DelegateAsync(addr+mem.Addr(i%8)*mem.PageSize%(1<<12), func(c *Ctx) {
				c.Compute(200)
				if !once[i].Swap(true) {
					panic("transient")
				}
			})
		}
	})
	rt.AllDoCo(func(ctx *Ctx) { ctx.Yield(); ctx.Compute(100) })

	// Wave 2: plain spawns drawing from the now-populated pools. Any field
	// leaking from wave 1 (a stale group, a stale coroutine pointer, a
	// pinned or delegated flag) breaks completion or steal accounting.
	var ran atomic.Int64
	st := rt.ParallelFor(0, 64, 1, func(ctx *Ctx, i0, i1 int) {
		ctx.Read(addr, 64)
		ran.Add(1)
	})
	if ran.Load() != 64 || st.Tasks != 64 {
		t.Fatalf("wave 2: ran %d tasks, stats %+v", ran.Load(), st)
	}
}
