package core

import "sync"

// lockstep serializes worker execution for Options.Deterministic: exactly
// one worker runs at a time, and the next to run is always the waiting
// worker with the smallest (virtual clock, id) pair. Because every
// state-mutating step (task execution, stealing, PMU and bandwidth-bucket
// charges, migrations) happens inside a turn, the entire run becomes a
// pure function of the inputs — two runs with the same seed, workload, and
// fault schedule produce bit-identical Stats and PMU counters regardless
// of host scheduling. The price is parallelism; deterministic mode exists
// for reproducible experiments and debugging, not throughput.
//
// Worker states: a worker is *waiting* (wants a turn), *running* (holds
// the turn), *blocked* (waiting on a predicate — a synchronous Call, a
// barrier, or a fault park), or *done* (its loop exited). Turns are only
// granted when every worker is checked in (waiting/blocked/done), so
// predicates always observe a quiescent fleet; they are evaluated under
// the lockstep mutex in worker-id order, which makes wake-ups
// deterministic too.
//
// External submitters (submitWait) pause the fleet between turns to
// distribute tasks, and converge all waiting workers' clocks to the fleet
// maximum first, so the number of idle turns a run happened to take before
// the pause cannot leak into subsequent virtual times.
type lockstep struct {
	rt   *Runtime
	mu   sync.Mutex
	cond *sync.Cond
	// state[id] is the worker's check-in state; pred[id] the wake
	// predicate of a blocked worker (evaluated with mu held).
	state []lsState
	pred  []func() bool
	// holder is the worker id holding the turn, -1 when free, -2 while an
	// external submitter holds the fleet paused.
	holder    int
	pauseWant bool
	// last is the previous turn holder; clock ties are broken round-robin
	// after it. Without rotation, equal-clock idle workers with low ids
	// would monopolize turns and starve a higher-id worker whose inbox
	// (which only its owner may drain) holds the remaining work. Reset on
	// resume so the host-dependent number of idle turns before an external
	// pause cannot leak into the post-pause grant order.
	last int
}

type lsState uint8

const (
	lsStart lsState = iota // goroutine not yet at its first acquire
	lsWaiting
	lsRunning
	lsBlocked
	lsDone
)

func newLockstep(rt *Runtime, workers int) *lockstep {
	ls := &lockstep{
		rt:     rt,
		state:  make([]lsState, workers),
		pred:   make([]func() bool, workers),
		holder: -1,
		last:   -1,
	}
	ls.cond = sync.NewCond(&ls.mu)
	return ls
}

// grantLocked hands the turn to the next runner if the fleet is quiescent.
// Caller holds mu.
func (ls *lockstep) grantLocked() {
	if ls.holder != -1 {
		return
	}
	for _, s := range ls.state {
		if s == lsStart || s == lsRunning {
			return // someone is mid-turn or not checked in yet
		}
	}
	stopping := ls.rt.stop.Load()
	for id, s := range ls.state {
		if s == lsBlocked && (stopping || ls.pred[id]()) {
			ls.state[id] = lsWaiting
			ls.pred[id] = nil
		}
	}
	if ls.pauseWant {
		ls.holder = -2
		ls.cond.Broadcast()
		return
	}
	n := len(ls.state)
	best, bestRank := -1, 0
	var bestClock int64
	for id, s := range ls.state {
		if s != lsWaiting {
			continue
		}
		c := ls.rt.workers[id].clock.Now()
		// Round-robin tie-break: among equal clocks, the id cyclically
		// after the previous holder runs next.
		rank := (id - ls.last - 1 + n) % n
		if best == -1 || c < bestClock || (c == bestClock && rank < bestRank) {
			best, bestClock, bestRank = id, c, rank
		}
	}
	if best == -1 {
		if stopping {
			return
		}
		for _, s := range ls.state {
			if s == lsBlocked {
				// No predicate fired and nothing can run: the workload
				// deadlocked (e.g. a cycle of synchronous Calls). Failing
				// loudly beats hanging the deterministic run forever.
				panic("core: lockstep deadlock: every worker is blocked and no wake predicate holds")
			}
		}
		return // all done
	}
	ls.holder = best
	ls.last = best
	ls.cond.Broadcast()
}

// acquire blocks until worker id holds the turn (or the runtime stops).
func (ls *lockstep) acquire(id int) {
	ls.mu.Lock()
	ls.state[id] = lsWaiting
	ls.grantLocked()
	for ls.holder != id && !ls.rt.stop.Load() {
		ls.cond.Wait()
	}
	ls.state[id] = lsRunning
	ls.mu.Unlock()
}

// release ends worker id's turn.
func (ls *lockstep) release(id int) {
	ls.mu.Lock()
	if ls.holder == id {
		ls.holder = -1
	}
	ls.state[id] = lsWaiting
	ls.grantLocked()
	ls.mu.Unlock()
}

// blockOn parks worker id until pred holds (pred runs with mu held and
// must not take locks), then re-acquires the turn before returning.
func (ls *lockstep) blockOn(id int, pred func() bool) {
	ls.mu.Lock()
	ls.state[id] = lsBlocked
	ls.pred[id] = pred
	if ls.holder == id {
		ls.holder = -1
	}
	ls.grantLocked()
	for !(ls.holder == id && ls.state[id] != lsBlocked) && !ls.rt.stop.Load() {
		ls.cond.Wait()
	}
	ls.pred[id] = nil
	ls.state[id] = lsRunning
	ls.mu.Unlock()
}

// exit marks worker id's loop as finished.
func (ls *lockstep) exit(id int) {
	ls.mu.Lock()
	if ls.holder == id {
		ls.holder = -1
	}
	ls.state[id] = lsDone
	ls.grantLocked()
	ls.mu.Unlock()
}

// othersBlockedLocked reports whether every worker but id is blocked or
// done — the park fallback's "nobody can advance virtual time" test. Only
// valid from a wake predicate (mu held).
func (ls *lockstep) othersBlockedLocked(id int) bool {
	for j, s := range ls.state {
		if j != id && s != lsBlocked && s != lsDone {
			return false
		}
	}
	return true
}

// pause stops the fleet between turns so an external goroutine can mutate
// shared state (distribute tasks). Waiting workers' clocks converge to the
// fleet maximum first, making the post-pause state independent of how many
// idle turns preceded the pause. Balance with resume.
func (ls *lockstep) pause() {
	ls.mu.Lock()
	for ls.pauseWant {
		ls.cond.Wait() // one external pause at a time
	}
	ls.pauseWant = true
	ls.grantLocked()
	for ls.holder != -2 && !ls.rt.stop.Load() {
		ls.cond.Wait()
	}
	max := ls.rt.MaxWorkerClock()
	for id, s := range ls.state {
		if s == lsWaiting {
			ls.rt.workers[id].clock.SyncTo(max)
		}
	}
	ls.mu.Unlock()
}

// resume releases a pause.
func (ls *lockstep) resume() {
	ls.mu.Lock()
	ls.pauseWant = false
	ls.last = -1
	if ls.holder == -2 {
		ls.holder = -1
	}
	ls.grantLocked()
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// stopAll wakes every goroutine blocked in the lockstep so they can
// observe Runtime.stop and exit.
func (ls *lockstep) stopAll() {
	ls.mu.Lock()
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// Worker-side helpers; all are no-ops when deterministic mode is off.

func (w *Worker) turnAcquire() {
	if ls := w.rt.ls; ls != nil {
		ls.acquire(w.id)
	}
}

func (w *Worker) turnRelease() {
	if ls := w.rt.ls; ls != nil {
		ls.release(w.id)
	}
}

func (w *Worker) turnExit() {
	if ls := w.rt.ls; ls != nil {
		ls.exit(w.id)
	}
}

// yieldTurn cycles the turn at a cooperative scheduling point, letting the
// virtually-furthest-behind worker interleave mid-task.
func (w *Worker) yieldTurn() {
	if ls := w.rt.ls; ls != nil {
		ls.release(w.id)
		ls.acquire(w.id)
	}
}
