package core

import (
	"testing"

	"charm/internal/mem"
	"charm/internal/sim"
	"charm/internal/topology"
)

// stoppedRuntime builds a runtime without starting workers, for direct
// manipulation of placement state.
func stoppedRuntime(t *testing.T, topo *topology.Topology, workers int, p Policy) *Runtime {
	t.Helper()
	m := sim.New(sim.Config{Topo: topo})
	return NewRuntime(m, Options{Workers: workers, Policy: p})
}

func TestUpdateLocationCollisionFree(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	for _, workers := range []int{8, 16, 32, 64, 128} {
		for spread := 1; spread <= topo.ChipletsPerNode; spread++ {
			rt := stoppedRuntime(t, topo, workers, NewCharmPolicy())
			for i := 0; i < workers; i++ {
				rt.workers[i].spreadRate = spread
				UpdateLocation(rt.workers[i])
			}
			seen := map[topology.CoreID][]int{}
			for i := 0; i < workers; i++ {
				c := rt.workers[i].Core()
				seen[c] = append(seen[c], i)
			}
			for c, ws := range seen {
				if len(ws) > 1 {
					t.Errorf("workers=%d spread=%d: core %d shared by %v", workers, spread, c, ws)
				}
			}
		}
	}
}

// TestUpdateLocationCollisionFreeIntel repeats the collision property on
// the Intel SPR preset (4 chiplets x 12 cores per socket), whose
// chiplet/slot divisors differ from Milan's — the shape where the paper's
// published wrap-around term breaks.
func TestUpdateLocationCollisionFreeIntel(t *testing.T) {
	topo := topology.IntelSPR8488Cx2()
	for workers := 1; workers <= topo.NumCores(); workers++ {
		for spread := 1; spread <= topo.ChipletsPerNode*topo.NodesPerSocket; spread++ {
			rt := stoppedRuntime(t, topo, workers, NewCharmPolicy())
			for i := 0; i < workers; i++ {
				rt.workers[i].spreadRate = spread
				UpdateLocation(rt.workers[i])
			}
			seen := map[topology.CoreID][]int{}
			for i := 0; i < workers; i++ {
				seen[rt.workers[i].Core()] = append(seen[rt.workers[i].Core()], i)
			}
			for c, ws := range seen {
				if len(ws) > 1 {
					t.Fatalf("workers=%d spread=%d: core %d shared by %v", workers, spread, c, ws)
				}
			}
		}
	}
}

func TestUpdateLocationBoundsCheck(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	rt := stoppedRuntime(t, topo, 64, NewCharmPolicy())
	w := rt.workers[0]
	before := w.Core()

	// 64 workers on one socket: spread 1 cannot give each a dedicated
	// core (the paper's example); the migration must be skipped.
	w.spreadRate = 1
	UpdateLocation(w)
	if w.Core() != before {
		t.Errorf("invalid spread 1 migrated worker to %d", w.Core())
	}
	// Spread beyond the physical chiplet count is also skipped.
	w.spreadRate = topo.ChipletsPerNode + 5
	UpdateLocation(w)
	if w.Core() != before {
		t.Errorf("overlarge spread migrated worker to %d", w.Core())
	}
	// Spread 8 is the unique valid value for 64 workers per socket: the
	// formula round-robins consecutive workers across chiplets, fully
	// occupying the socket without collisions.
	seen := map[topology.CoreID]bool{}
	for i := 0; i < 64; i++ {
		rt.workers[i].spreadRate = 8
		UpdateLocation(rt.workers[i])
		c := rt.workers[i].Core()
		if want := topology.ChipletID(i % 8); topo.ChipletOf(c) != want {
			t.Errorf("worker %d at spread 8 on chiplet %d, want %d", i, topo.ChipletOf(c), want)
		}
		if seen[c] {
			t.Errorf("core %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestUpdateLocationSpreadSemantics(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	rt := stoppedRuntime(t, topo, 8, NewCharmPolicy())
	// 8 workers, spread 1: all consolidate on chiplet 0.
	for _, w := range rt.workers {
		w.spreadRate = 1
		UpdateLocation(w)
		if got := topo.ChipletOf(w.Core()); got != 0 {
			t.Errorf("spread 1: worker %d on chiplet %d, want 0", w.id, got)
		}
	}
	// Spread 8: one worker per chiplet.
	used := map[topology.ChipletID]bool{}
	for _, w := range rt.workers {
		w.spreadRate = 8
		UpdateLocation(w)
		used[topo.ChipletOf(w.Core())] = true
	}
	if len(used) != 8 {
		t.Errorf("spread 8: %d distinct chiplets, want 8", len(used))
	}
	// Spread 2: workers split over exactly 2 chiplets.
	used = map[topology.ChipletID]bool{}
	for _, w := range rt.workers {
		w.spreadRate = 2
		UpdateLocation(w)
		used[topo.ChipletOf(w.Core())] = true
	}
	if len(used) != 2 {
		t.Errorf("spread 2: %d distinct chiplets, want 2", len(used))
	}
}

func TestUpdateLocationSocketAware(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	rt := stoppedRuntime(t, topo, 128, NewCharmPolicy())
	for _, w := range rt.workers {
		w.spreadRate = 8
		UpdateLocation(w)
	}
	// Workers 0-63 stay on socket 0; 64-127 on socket 1.
	for _, w := range rt.workers {
		wantSocket := topology.SocketID(w.id / 64)
		if got := topo.SocketOfCore(w.Core()); got != wantSocket {
			t.Errorf("worker %d on socket %d, want %d", w.id, got, wantSocket)
		}
	}
}

func TestUpdateLocationBindsMemoryNode(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	rt := stoppedRuntime(t, topo, 128, NewCharmPolicy())
	w := rt.workers[100] // socket 1
	w.spreadRate = 8
	UpdateLocation(w)
	if got := w.AllocNode(); got != topo.NodeOfCore(w.Core()) {
		t.Errorf("allocNode = %d, want %d", got, topo.NodeOfCore(w.Core()))
	}
}

func TestCharmInitialPlacementSocketFill(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	p := NewCharmPolicy()
	// First 64 workers land on socket 0 even with 96 workers total.
	for w := 0; w < 64; w++ {
		c := p.InitialCore(w, 96, topo)
		if topo.SocketOfCore(c) != 0 {
			t.Errorf("worker %d initially on socket %d", w, topo.SocketOfCore(c))
		}
	}
	for w := 64; w < 96; w++ {
		c := p.InitialCore(w, 96, topo)
		if topo.SocketOfCore(c) != 1 {
			t.Errorf("worker %d initially on socket %d, want 1", w, topo.SocketOfCore(c))
		}
	}
}

func TestStaticPolicyPlacements(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	compact := NewStaticPolicy(Compact)
	// 8 compact workers share chiplet 0.
	for w := 0; w < 8; w++ {
		if ch := topo.ChipletOf(compact.InitialCore(w, 8, topo)); ch != 0 {
			t.Errorf("compact worker %d on chiplet %d", w, ch)
		}
	}
	spread := NewStaticPolicy(SpreadChiplets)
	chs := map[topology.ChipletID]bool{}
	cores := map[topology.CoreID]bool{}
	for w := 0; w < 8; w++ {
		c := spread.InitialCore(w, 8, topo)
		chs[topo.ChipletOf(c)] = true
		cores[c] = true
	}
	if len(chs) != 8 {
		t.Errorf("spread-chiplets used %d chiplets, want 8", len(chs))
	}
	if len(cores) != 8 {
		t.Errorf("spread-chiplets collided: %d distinct cores", len(cores))
	}
	nodes := NewStaticPolicy(SpreadSockets)
	n0, n1 := 0, 0
	for w := 0; w < 8; w++ {
		if topo.NodeOfCore(nodes.InitialCore(w, 8, topo)) == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 != 4 || n1 != 4 {
		t.Errorf("spread-sockets split %d/%d, want 4/4", n0, n1)
	}
}

func TestStaticPolicyNoCollisionProperty(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	for _, mode := range []StaticMode{Compact, SpreadChiplets, SpreadSockets} {
		p := NewStaticPolicy(mode)
		for _, workers := range []int{1, 7, 8, 16, 64, 128} {
			seen := map[topology.CoreID]int{}
			for w := 0; w < workers; w++ {
				c := p.InitialCore(w, workers, topo)
				if prev, dup := seen[c]; dup {
					t.Errorf("%s workers=%d: core %d shared by %d and %d", p.Name(), workers, c, prev, w)
				}
				seen[c] = w
			}
		}
	}
}

// TestAdaptiveSpreadGrowsUnderDRAMPressure drives a DRAM-bound worker and
// checks Alg. 1 raises spread_rate toward the chiplet count.
func TestAdaptiveSpreadGrowsUnderDRAMPressure(t *testing.T) {
	topo := topology.Synthetic(4, 2) // tiny L3: 64 KiB/chiplet
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{
		Workers:        2,
		SchedulerTimer: 20_000,
	})
	rt.Start()
	defer rt.Stop()

	big := rt.AllocPolicy(4<<20, mem.Bind, 0) // 4 MiB >> all caches
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < 40; i++ {
			ctx.Read(big, 4<<20)
			ctx.Yield()
		}
	})
	for i := 0; i < rt.Workers(); i++ {
		if got := rt.Worker(i).SpreadRate(); got < 2 {
			t.Errorf("worker %d spread = %d, want >= 2 under DRAM pressure", i, got)
		}
	}
}

// TestAdaptiveSpreadShrinksWhenCached drives a cache-resident worker and
// checks Alg. 1 consolidates.
func TestAdaptiveSpreadShrinksWhenCached(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 2, SchedulerTimer: 20_000})
	rt.Start()
	defer rt.Stop()

	for i := 0; i < rt.Workers(); i++ {
		rt.Worker(i).SetSpreadRate(4)
		UpdateLocation(rt.Worker(i))
	}
	small := rt.AllocPolicy(8<<10, mem.Bind, 0) // 8 KiB fits everywhere
	rt.AllDo(func(ctx *Ctx) {
		// Streamed cache hits are cheap, so many iterations are needed
		// to span several scheduler-timer intervals.
		for i := 0; i < 3000; i++ {
			ctx.Read(small, 8<<10)
			ctx.Yield()
		}
	})
	for i := 0; i < rt.Workers(); i++ {
		if got := rt.Worker(i).SpreadRate(); got != 1 {
			t.Errorf("worker %d spread = %d, want 1 when cache-resident", i, got)
		}
	}
}

func TestProfilerRecordsSpreadSeries(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, Options{Workers: 2, SchedulerTimer: 20_000})
	rt.Profiler().Enable(true)
	rt.Start()
	defer rt.Stop()
	big := rt.AllocPolicy(2<<20, mem.Bind, 0)
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < 20; i++ {
			ctx.Read(big, 2<<20)
			ctx.Yield()
		}
	})
	if got := rt.Profiler().Samples(ProfSpread); len(got) == 0 {
		t.Error("profiler recorded no spread samples")
	}
	if got := rt.Profiler().Samples(ProfFillRate); len(got) == 0 {
		t.Error("profiler recorded no fill-rate samples")
	}
}
