package core

import (
	"reflect"
	"testing"

	"charm/internal/admit"
	"charm/internal/fault"
	"charm/internal/sim"
	"charm/internal/tenant"
	"charm/internal/topology"
)

// tenantLedger is the full observable outcome of a multi-tenant run:
// service totals, per-tenant ledgers, the lease map, DRR dispatch
// grants, the final worker clock, and every job's (name, state, met,
// latency) tuple. Two Deterministic runs must match it byte for byte.
type tenantLedger struct {
	Stats  JobStats
	Tens   []TenantStats
	Owners []int
	Grants []int64
	Clock  int64
	Jobs   [][4]int64
	Names  []string
}

// tenantReplayRun drives the isolation workload once: tenant A's diurnal
// stream shares the machine with tenant B's 10x flash crowd, and a fault
// offlines chiplet 0 — initially leased — a fifth of the way in.
func tenantReplayRun(t *testing.T) tenantLedger {
	t.Helper()
	topo := topology.Synthetic(4, 2)
	m := sim.New(sim.Config{Topo: topo})
	plan := compilePlan(t, fault.New("tenant-replay", 3).
		OfflineChiplet(0, 300_000, fault.Forever), topo)
	rt := NewRuntime(m, Options{Workers: 8, Deterministic: true, Faults: plan})
	rt.Start()
	defer rt.Stop()

	gen := func(deadline int64) func(i int) JobSpec {
		return func(i int) JobSpec {
			s := computeJob(4, 10_000, nil)
			s.Deadline = deadline
			s.Cost = 40_000
			return s
		}
	}
	svc, err := rt.ServeJobs(JobServiceOptions{
		MaxInFlight:  256,
		EvalInterval: 50_000,
		Tenants: []TenantConfig{
			{
				Spec: tenant.Spec{Name: "A", Weight: 1, Quota: 2,
					Policy: admit.Shed, QueueCap: 64},
				Source: &SpecSource{
					Arrivals: admit.NewDiurnal(11, 20_000, 1_000_000, 0.3, 80),
					Gen:      gen(1_000_000),
				},
			},
			{
				Spec: tenant.Spec{Name: "B", Weight: 1, Quota: 2,
					GapNS: 10_000, Burst: 4, Policy: admit.Shed, QueueCap: 64},
				Source: &SpecSource{
					Arrivals: admit.NewFlashCrowd(11, 10_000, 400_000, 200_000, 10, 200),
					Gen:      gen(200_000),
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()

	led := tenantLedger{
		Stats:  svc.Stats(),
		Tens:   svc.TenantStats(),
		Owners: svc.LeaseOwners(),
		Grants: svc.DispatchGrants(),
		Clock:  rt.MaxWorkerClock(),
	}
	for _, j := range svc.Jobs() {
		met := int64(0)
		if j.MetDeadline() {
			met = 1
		}
		led.Jobs = append(led.Jobs, [4]int64{int64(j.id), int64(j.State()), met, j.Latency()})
		led.Names = append(led.Names, j.Name())
	}
	return led
}

// TestTenantIsolationReplay is the acceptance gate for the isolation
// plane: the multi-tenant workload — per-tenant queues, token buckets,
// DRR dispatch, elastic leases, AND a mid-run chiplet fault landing on a
// leased chiplet — must replay byte for byte under Deterministic mode.
// The guard assertions make the gate non-vacuous: the well-behaved
// tenant finishes its whole stream (the fault rebalances leases, it does
// not starve anyone), the flash crowd is rate-limited at its doorstep,
// the fault forces lease churn beyond the initial grants, and both
// tenants draw DRR dispatch slots.
func TestTenantIsolationReplay(t *testing.T) {
	base := tenantReplayRun(t)

	var a, b TenantStats
	for _, st := range base.Tens {
		switch st.Name {
		case "A":
			a = st
		case "B":
			b = st
		}
	}
	if a.Completed != 80 || a.Completed != a.Submitted {
		t.Fatalf("tenant A starved: completed %d of %d submitted", a.Completed, a.Submitted)
	}
	if b.RateLimited == 0 {
		t.Fatalf("tenant B's 10x flash crowd was never rate-limited: %+v", b)
	}
	if b.Completed == 0 {
		t.Fatalf("tenant B fully starved: %+v", b)
	}
	// Initial arbitration grants each tenant its quota (4 grants total on 4
	// chiplets); the chiplet-0 fault must force additional grants.
	if n := a.LeaseGrants + b.LeaseGrants; n <= 4 {
		t.Fatalf("lease grants = %d; fault forced no rebalance (A %+v, B %+v)", n, a, b)
	}
	for i, g := range base.Grants {
		if g == 0 {
			t.Fatalf("tenant %d drew no DRR dispatch slots: %v", i, base.Grants)
		}
	}
	if len(base.Owners) != 4 {
		t.Fatalf("lease map = %v, want 4 chiplets", base.Owners)
	}

	for run := 0; run < 2; run++ {
		replay := tenantReplayRun(t)
		if !reflect.DeepEqual(replay, base) {
			t.Errorf("replay %d diverges:\n  base   %+v\n  replay %+v", run, base, replay)
		}
	}
}

// TestTenantSetupErrors: malformed tenant configurations must be
// rejected at ServeJobs time, not discovered mid-run.
func TestTenantSetupErrors(t *testing.T) {
	rt := jobRuntime(t, Options{Deterministic: true})
	mk := func(specs ...tenant.Spec) JobServiceOptions {
		opts := JobServiceOptions{}
		for _, sp := range specs {
			opts.Tenants = append(opts.Tenants, TenantConfig{Spec: sp})
		}
		return opts
	}
	cases := []struct {
		name string
		opts JobServiceOptions
	}{
		{"empty name", mk(tenant.Spec{Weight: 1, Quota: 1})},
		{"duplicate name", mk(
			tenant.Spec{Name: "A", Weight: 1, Quota: 1},
			tenant.Spec{Name: "A", Weight: 1, Quota: 1})},
		{"quota oversubscribed", mk(
			tenant.Spec{Name: "A", Weight: 1, Quota: 3},
			tenant.Spec{Name: "B", Weight: 1, Quota: 2})},
	}
	for _, tc := range cases {
		if _, err := rt.ServeJobs(tc.opts); err == nil {
			t.Errorf("%s: ServeJobs accepted a bad config", tc.name)
		}
	}
	// A global Source cannot be combined with per-tenant sources.
	opts := mk(tenant.Spec{Name: "A", Weight: 1, Quota: 1})
	opts.Source = &SpecSource{Arrivals: admit.NewPoisson(1, 1_000, 1),
		Gen: func(i int) JobSpec { return computeJob(1, 100, nil) }}
	if _, err := rt.ServeJobs(opts); err == nil {
		t.Error("ServeJobs accepted a global Source alongside Tenants")
	}
}

// TestTenantUnknownSubmit: submitting a job naming an unconfigured
// tenant fails with ErrUnknownTenant; an empty tenant routes to the
// first configured tenant.
func TestTenantUnknownSubmit(t *testing.T) {
	rt := jobRuntime(t, Options{Deterministic: true})
	svc, err := rt.ServeJobs(JobServiceOptions{
		Tenants: []TenantConfig{{Spec: tenant.Spec{Name: "A", Weight: 1, Quota: 1,
			Policy: admit.Reject, QueueCap: 8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := computeJob(1, 1_000, nil)
	spec.Tenant = "ghost"
	if _, err := rt.SubmitJob(spec); err == nil {
		t.Error("SubmitJob accepted an unknown tenant")
	}
	spec.Tenant = ""
	j, err := rt.SubmitJob(spec)
	if err != nil {
		t.Fatalf("SubmitJob with empty tenant: %v", err)
	}
	if got := j.Tenant(); got != "A" {
		t.Errorf("empty tenant routed to %q, want A", got)
	}
	svc.Drain()
}
