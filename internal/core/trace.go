package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace exports the recorded profiler series as a Chrome
// trace-event JSON document (load it at chrome://tracing or in Perfetto):
// per-worker counter tracks for spread_rate and the Alg. 1 fill rate, and
// instant events for migrations. Timestamps are virtual microseconds.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	type event struct {
		Name  string           `json:"name"`
		Phase string           `json:"ph"`
		TS    float64          `json:"ts"`
		PID   int              `json:"pid"`
		TID   int              `json:"tid"`
		Args  map[string]int64 `json:"args,omitempty"`
		Scope string           `json:"s,omitempty"`
	}
	var events []event
	add := func(series ProfSeries, name string, counter bool) {
		for _, s := range p.Samples(series) {
			e := event{
				Name: name,
				TS:   float64(s.T) / 1000.0,
				PID:  0,
				TID:  s.Worker,
			}
			if counter {
				e.Phase = "C"
				e.Name = fmt.Sprintf("%s.w%02d", name, s.Worker)
				e.Args = map[string]int64{"value": s.V}
			} else {
				e.Phase = "i"
				e.Scope = "t"
				e.Args = map[string]int64{"core": s.V}
			}
			events = append(events, e)
		}
	}
	add(ProfSpread, "spread_rate", true)
	add(ProfFillRate, "fill_rate", true)
	add(ProfConcurrency, "live_tasks", true)
	add(ProfMigration, "migration", false)

	doc := struct {
		TraceEvents []event `json:"traceEvents"`
		DisplayUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
