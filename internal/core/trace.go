package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"charm/internal/obs"
)

// traceEvent is one Chrome trace-event JSON object. Args values are
// float64 so counter tracks can carry utilization ratios; integral values
// round-trip exactly (they stay far below 2^53).
type traceEvent struct {
	Name  string             `json:"name"`
	Phase string             `json:"ph"`
	TS    float64            `json:"ts"`
	PID   int                `json:"pid"`
	TID   int                `json:"tid"`
	Args  map[string]float64 `json:"args,omitempty"`
	Scope string             `json:"s,omitempty"`
}

// phaseRank orders phases at identical (ts, tid): the Chrome trace format
// requires an E to precede the next span's B at the same timestamp so
// back-to-back tasks nest properly. Span emission guarantees E > B within
// one span (see minSpanUS), so E-first never unbalances a span.
func phaseRank(ph string) int {
	switch ph {
	case "E":
		return 0
	case "B":
		return 2
	default:
		return 1
	}
}

// minSpanUS pads zero-duration spans to one virtual nanosecond so their
// B/E pair stays balanced under E-first ordering.
const minSpanUS = 0.001

// WriteChromeTrace exports the recorded observability data as a Chrome
// trace-event JSON document (load it at chrome://tracing or in Perfetto):
//
//   - per-worker counter tracks for spread_rate, the Alg. 1 fill rate,
//     and the live-task concurrency trace;
//   - instant events for migrations;
//   - B/E duration events for every recorded task span (name encodes the
//     provenance: task, task-stolen, delegate), tid = completing worker;
//   - counter tracks for every traced registry metric sampled over the
//     run (fabric link occupancy, memory channel utilization, ...) when a
//     registry is attached.
//
// Timestamps are virtual microseconds. Events are sorted by (ts, tid,
// phase), so output is deterministic and diffable across runs with
// identical seeds.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	var events []traceEvent
	add := func(series ProfSeries, name string, counter bool) {
		for _, s := range p.Samples(series) {
			e := traceEvent{
				Name: name,
				TS:   float64(s.T) / 1000.0,
				PID:  0,
				TID:  s.Worker,
			}
			if counter {
				e.Phase = "C"
				e.Name = fmt.Sprintf("%s.w%02d", name, s.Worker)
				e.Args = map[string]float64{"value": float64(s.V)}
			} else {
				e.Phase = "i"
				e.Scope = "t"
				e.Args = map[string]float64{"core": float64(s.V)}
			}
			events = append(events, e)
		}
	}
	add(ProfSpread, "spread_rate", true)
	add(ProfFillRate, "fill_rate", true)
	add(ProfConcurrency, "live_tasks", true)
	add(ProfMigration, "migration", false)

	// Fault-handling actions: one instant event per recorded action, named
	// by the fc* code so offline/re-home/park/resume/retry/watchdog show up
	// as distinct markers on the worker's track.
	fcNames := map[int64]string{
		fcOffline: "fault-offline", fcRehome: "fault-rehome",
		fcPark: "fault-park", fcResume: "fault-resume",
		fcRetry: "task-retry", fcWatchdog: "watchdog-trip",
	}
	for _, s := range p.Samples(ProfFault) {
		name := fcNames[s.V]
		if name == "" {
			name = "fault"
		}
		events = append(events, traceEvent{
			Name: name, Phase: "i", Scope: "t",
			TS: float64(s.T) / 1000.0, PID: 0, TID: s.Worker,
			Args: map[string]float64{"code": float64(s.V)},
		})
	}

	// Task lifecycle spans: one B/E pair per completed task on the
	// completing worker's track.
	for _, s := range p.Spans() {
		name := "task"
		switch {
		case s.Delegated:
			name = "delegate"
		case s.Steals > 0:
			name = "task-stolen"
		}
		args := map[string]float64{
			"id":         float64(s.ID),
			"home":       float64(s.Home),
			"enqueue_us": float64(s.Enqueue) / 1000.0,
		}
		if s.Steals > 0 {
			args["steals"] = float64(s.Steals)
			if s.Remote {
				args["remote_steal"] = 1
			}
		}
		if s.Delegated {
			args["hops"] = float64(s.Hops)
		}
		start := float64(s.Start) / 1000.0
		end := float64(s.End) / 1000.0
		if end <= start {
			end = start + minSpanUS
		}
		events = append(events,
			traceEvent{Name: name, Phase: "B", TS: start,
				PID: 0, TID: s.Worker, Args: args},
			traceEvent{Name: name, Phase: "E", TS: end,
				PID: 0, TID: s.Worker})
	}

	// Breaker transitions and SLO alert edges from the span tracer: one
	// instant event per edge on the machine-level pid, tid = chiplet (for
	// breakers) or priority class (for alerts), so overload runs show
	// breaker flaps and budget burns on the timeline.
	if p.tracer != nil {
		brkNames := map[int64]string{
			0: "breaker-closed", 1: "breaker-open", 2: "breaker-half-open",
		}
		for _, s := range p.tracer.Spans() {
			switch s.Kind {
			case obs.SpanBreaker:
				name := brkNames[s.Arg]
				if name == "" {
					name = "breaker"
				}
				events = append(events, traceEvent{
					Name: name, Phase: "i", Scope: "t",
					TS: float64(s.Start) / 1000.0, PID: 1, TID: int(s.Chiplet),
					Args: map[string]float64{"from": float64(s.Arg2), "to": float64(s.Arg)},
				})
			case obs.SpanSLOAlert:
				name := "slo-alert-cleared"
				if s.Arg2 == 1 {
					name = "slo-alert-fired"
				}
				events = append(events, traceEvent{
					Name: name, Phase: "i", Scope: "t",
					TS: float64(s.Start) / 1000.0, PID: 1, TID: int(s.Arg),
					Args: map[string]float64{"class": float64(s.Arg)},
				})
			}
		}
	}

	// Registry history: one counter track per traced metric (fabric link
	// occupancy, memory channel utilization, live tasks, ...). pid 1
	// groups the machine-level tracks away from the worker tracks.
	if p.reg != nil {
		for _, snap := range p.reg.History() {
			for i := range snap.Samples {
				s := &snap.Samples[i]
				events = append(events, traceEvent{
					Name:  s.Key(),
					Phase: "C",
					TS:    float64(snap.T) / 1000.0,
					PID:   1,
					Args:  map[string]float64{"value": s.Value},
				})
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return phaseRank(events[i].Phase) < phaseRank(events[j].Phase)
	})

	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
