package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"charm/internal/obs"
)

// ProfSeries identifies a profiler time series.
type ProfSeries uint8

const (
	// ProfSpread records a worker's spread_rate after each decision.
	ProfSpread ProfSeries = iota
	// ProfFillRate records the Alg. 1 normalized fill rate per decision.
	ProfFillRate
	// ProfConcurrency records sampled live-task counts (Fig. 12).
	ProfConcurrency
	// ProfMigration records core re-assignments (value = new core).
	ProfMigration
	// ProfFault records fault-handling actions (value = one of the fc*
	// codes in fault.go): offlining, drains, re-homes, parks, retries,
	// watchdog trips. Rendered as instant events in the Chrome trace.
	ProfFault

	numProfSeries
)

// ProfSample is one (virtual time, value) observation of a worker.
type ProfSample struct {
	Worker int
	T      int64
	V      int64
}

// TaskSpan is the lifecycle record of one finished task: enqueue → first
// execution → completion, with its steal and delegation provenance.
type TaskSpan struct {
	// ID is the runtime-wide task sequence number.
	ID uint64
	// Home is the worker the task was submitted to; Worker is the one
	// that completed it (they differ after a steal).
	Home, Worker int
	// Enqueue, Start, End are virtual times: submission stamp, first
	// execution, completion.
	Enqueue, Start, End int64
	// Steals counts how many times the task changed workers via
	// stealing (a coroutine can migrate more than once).
	Steals int
	// Remote marks a steal that crossed a chiplet boundary.
	Remote bool
	// Delegated marks tasks shipped by Call/CallAsync/Delegate; Hops is
	// the delegation depth (1 for a direct delegation).
	Delegated bool
	Hops      int
}

// Profiler records low-overhead time series and task-lifecycle spans for
// post-run analysis — the performance profiler component ① of the CHARM
// architecture. Disabled by default; when disabled, Record and RecordSpan
// cost one atomic load and take no lock.
type Profiler struct {
	enabled atomic.Bool
	mu      sync.Mutex
	series  [numProfSeries][]ProfSample
	spans   []TaskSpan
	// reg, when attached, contributes its sampled history to the Chrome
	// trace as counter tracks (fabric links, memory channels).
	reg *obs.Registry
	// tracer, when attached, contributes breaker transitions and SLO
	// alert edges to the Chrome trace as instant events.
	tracer *obs.Tracer
}

// NewProfiler returns a disabled profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// AttachRegistry links a metrics registry whose periodic samples become
// counter tracks in WriteChromeTrace.
func (p *Profiler) AttachRegistry(r *obs.Registry) { p.reg = r }

// AttachTracer links a span tracer whose breaker transitions and SLO
// alert edges become instant events in WriteChromeTrace.
func (p *Profiler) AttachTracer(t *obs.Tracer) { p.tracer = t }

// Enable turns recording on or off and clears recorded data when enabling.
func (p *Profiler) Enable(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if on {
		for i := range p.series {
			p.series[i] = nil
		}
		p.spans = nil
	}
	p.enabled.Store(on)
}

// Enabled reports whether the profiler is recording.
func (p *Profiler) Enabled() bool { return p.enabled.Load() }

// Record appends one observation if the profiler is enabled. The disabled
// path is a single atomic load — cheap enough for every decision interval.
func (p *Profiler) Record(s ProfSeries, worker int, t, v int64) {
	if !p.enabled.Load() {
		return
	}
	p.mu.Lock()
	p.series[s] = append(p.series[s], ProfSample{Worker: worker, T: t, V: v})
	p.mu.Unlock()
}

// RecordSpan appends one task-lifecycle span if the profiler is enabled.
func (p *Profiler) RecordSpan(s TaskSpan) {
	if !p.enabled.Load() {
		return
	}
	p.mu.Lock()
	p.spans = append(p.spans, s)
	p.mu.Unlock()
}

// Samples returns a copy of the recorded series sorted by time.
func (p *Profiler) Samples(s ProfSeries) []ProfSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfSample, len(p.series[s]))
	copy(out, p.series[s])
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Spans returns a copy of the recorded task spans sorted by start time
// (ties broken by ID so the order is deterministic).
func (p *Profiler) Spans() []TaskSpan {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TaskSpan, len(p.spans))
	copy(out, p.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MeanValue returns the mean of a series' values, or 0 when empty.
func (p *Profiler) MeanValue(s ProfSeries) float64 {
	samples := p.Samples(s)
	if len(samples) == 0 {
		return 0
	}
	var sum int64
	for _, x := range samples {
		sum += x.V
	}
	return float64(sum) / float64(len(samples))
}
