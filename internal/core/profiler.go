package core

import (
	"sort"
	"sync"
)

// ProfSeries identifies a profiler time series.
type ProfSeries uint8

const (
	// ProfSpread records a worker's spread_rate after each decision.
	ProfSpread ProfSeries = iota
	// ProfFillRate records the Alg. 1 normalized fill rate per decision.
	ProfFillRate
	// ProfConcurrency records sampled live-task counts (Fig. 12).
	ProfConcurrency
	// ProfMigration records core re-assignments (value = new core).
	ProfMigration

	numProfSeries
)

// ProfSample is one (virtual time, value) observation of a worker.
type ProfSample struct {
	Worker int
	T      int64
	V      int64
}

// Profiler records low-overhead time series for post-run analysis — the
// performance profiler component ① of the CHARM architecture. Disabled by
// default; recording costs one mutex acquisition per decision interval,
// which is far off the access fast path.
type Profiler struct {
	mu      sync.Mutex
	enabled bool
	series  [numProfSeries][]ProfSample
}

// NewProfiler returns a disabled profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Enable turns recording on or off and clears recorded data when enabling.
func (p *Profiler) Enable(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.enabled = on
	if on {
		for i := range p.series {
			p.series[i] = nil
		}
	}
}

// Record appends one observation if the profiler is enabled.
func (p *Profiler) Record(s ProfSeries, worker int, t, v int64) {
	p.mu.Lock()
	if p.enabled {
		p.series[s] = append(p.series[s], ProfSample{Worker: worker, T: t, V: v})
	}
	p.mu.Unlock()
}

// Samples returns a copy of the recorded series sorted by time.
func (p *Profiler) Samples(s ProfSeries) []ProfSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfSample, len(p.series[s]))
	copy(out, p.series[s])
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// MeanValue returns the mean of a series' values, or 0 when empty.
func (p *Profiler) MeanValue(s ProfSeries) float64 {
	samples := p.Samples(s)
	if len(samples) == 0 {
		return 0
	}
	var sum int64
	for _, x := range samples {
		sum += x.V
	}
	return float64(sum) / float64(len(samples))
}
