package core

import (
	"math"
	"sync/atomic"

	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/pmu"
	"charm/internal/task"
	"charm/internal/topology"
	"charm/internal/vtime"
)

// Worker is one runtime worker thread, dedicated to one simulated core
// (§4.6: one physical core per worker to prevent contention). Each worker
// owns a local task deque, an RPC/submission inbox, its virtual clock, and
// the decentralized scheduling state of Alg. 1 (spread_rate, decision
// timer, PMU snapshot).
type Worker struct {
	id int
	rt *Runtime

	core  atomic.Int32 // current simulated core
	clock vtime.Clock
	// blocked marks the worker as waiting on a barrier or synchronous
	// call; blocked workers are excluded from the throttle gate's
	// minimum so waiters cannot deadlock the fleet.
	blocked atomic.Bool

	deque *task.Deque[Task]
	inbox *task.Inbox[Task]

	// Alg. 1 state (worker-private).
	spreadRate   int
	lastDecision int64
	lastFills    int64
	// lowStreak counts consecutive below-watermark intervals; the policy
	// consolidates only after two, debouncing borderline rates.
	lowStreak int

	// allocNode is the NUMA node new allocations bind to (set_mempolicy
	// analog, updated by Alg. 2).
	allocNode topology.NodeID
	// ownAllocs records this worker's Ctx.Alloc regions so
	// memory-migrating policies (AsymSched) can move them with the
	// worker. Owner-goroutine access only.
	ownAllocs []mem.Addr

	// Steal-order cache, invalidated by the runtime's placement epoch.
	soCache []int
	soKind  orderKind
	soEpoch int64

	// lastThrottleOK caches the last virtual time the throttle gate
	// passed, to keep fine-grained Yield points cheap.
	lastThrottleOK int64
	// lastSample is the last ProfConcurrency sample time (worker 0).
	lastSample int64

	// settleUntil suppresses scheduling decisions for a short period
	// after a migration, so the cold-cache refill burst is not mistaken
	// for workload-driven remote traffic (the oscillation damper behind
	// §4.3's "only when significant inefficiency is detected").
	settleUntil int64

	rng uint64

	// fast caches the per-placement cost factors Ctx.advance needs
	// (fastpath.go). Owner-goroutine access only.
	fast placeFast

	// runCtx is the reused execution context for run-to-completion tasks:
	// one worker executes at most one such task at a time, so the Ctx never
	// needs to outlive execute().
	runCtx Ctx

	// taskPool and coPool recycle finished Task structs and idle coroutine
	// stacks (goroutine + channels + Ctx). Owner-goroutine access only;
	// recycled objects are fully re-zeroed before reuse.
	taskPool []*Task
	coPool   []*coroutine
}

// taskPoolCap and coPoolCap bound the per-worker free lists so a spiky
// phase cannot pin an unbounded object graph.
const (
	taskPoolCap = 256
	coPoolCap   = 64
)

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		id:         id,
		rt:         rt,
		deque:      task.NewDeque[Task](256),
		inbox:      task.NewInbox[Task](),
		spreadRate: 1,
		rng:        uint64(id)*0x9E3779B97F4A7C15 + 1,
	}
	w.fast.epoch = -1 // force the first placement-cache load
	return w
}

// newTask is Runtime.newTask fed from the worker's free list. Task IDs
// still come from the runtime-global sequence, so pooling never perturbs
// deterministic-mode identities.
func (w *Worker) newTask(fn func(*Ctx), g *group, stamp int64, coro bool, home int) *Task {
	if n := len(w.taskPool); n > 0 {
		t := w.taskPool[n-1]
		w.taskPool[n-1] = nil
		w.taskPool = w.taskPool[:n-1]
		*t = Task{id: w.rt.taskSeq.Add(1), fn: fn, grp: g, stamp: stamp, coro: coro, home: home, startT: -1}
		return t
	}
	return w.rt.newTask(fn, g, stamp, coro, home)
}

// freeTask returns a terminal task (finished or discarded — never a retry,
// which stays queued) to the free list, fully re-zeroed so no lifecycle
// state can leak into its next incarnation. Tasks still bound to a
// coroutine are never freed here: the coroutine path detaches the stack
// first.
func (w *Worker) freeTask(t *Task) {
	if !w.rt.pool || t.co != nil || len(w.taskPool) >= taskPoolCap {
		return
	}
	*t = Task{}
	w.taskPool = append(w.taskPool, t)
}

// ID returns the worker's unique ID (Alg. 2's unique_worker_ID).
func (w *Worker) ID() int { return w.id }

// Core returns the simulated core the worker currently runs on.
func (w *Worker) Core() topology.CoreID { return topology.CoreID(w.core.Load()) }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.rt }

// Clock returns the worker's virtual clock.
func (w *Worker) Clock() *vtime.Clock { return &w.clock }

// SpreadRate returns the worker's current Alg. 1 spread_rate.
func (w *Worker) SpreadRate() int { return w.spreadRate }

// SetSpreadRate overrides spread_rate (static policies and tests).
func (w *Worker) SetSpreadRate(r int) { w.spreadRate = r }

// AllocNode returns the worker's current memory-binding node.
func (w *Worker) AllocNode() topology.NodeID { return w.allocNode }

// placeOn pins the worker to core c, updating occupancy accounting and the
// memory policy. Initial placement; does not charge migration costs.
func (w *Worker) placeOn(c topology.CoreID) {
	w.core.Store(int32(c))
	w.rt.coreOcc[c].Add(1)
	w.rt.workerOnCore[c].Store(int32(w.id))
	w.allocNode = w.rt.M.Topo.NodeOfCore(c)
	w.rt.placeEpoch.Add(1)
}

// Migrate moves the worker to core c at virtual time now, charging the
// thread-switch cost and binding memory policy to c's NUMA node (the
// set_thread_affinity + set_mempolicy pair of Alg. 2).
func (w *Worker) Migrate(c topology.CoreID) {
	old := topology.CoreID(w.core.Load())
	if old == c {
		return
	}
	w.rt.coreOcc[old].Add(-1)
	w.rt.workerOnCore[old].CompareAndSwap(int32(w.id), -1)
	w.core.Store(int32(c))
	w.rt.coreOcc[c].Add(1)
	w.rt.workerOnCore[c].Store(int32(w.id))
	w.allocNode = w.rt.M.Topo.NodeOfCore(c)
	w.clock.Advance(w.rt.M.Topo.Cost.ThreadSwitch)
	w.rt.M.PMU.Add(int(c), pmu.Migration, 1)
	w.rt.met.migrations.Inc(w.id)
	w.rt.placeEpoch.Add(1)
	w.settleUntil = w.clock.Now() + 2*w.rt.opts.SchedulerTimer
	w.rt.prof.Record(ProfMigration, w.id, w.clock.Now(), int64(c))
}

// RebindAllocs moves the worker's own allocations to node (AsymSched's
// memory migration), charging the copy time against the worker's clock at
// the inter-socket transfer rate. It returns the bytes moved. Freed or
// non-Bind regions are skipped.
func (w *Worker) RebindAllocs(node topology.NodeID) int64 {
	var moved int64
	for _, a := range w.ownAllocs {
		n, ok := w.rt.M.Space.TryRebind(a, node)
		if ok {
			moved += n
		}
	}
	if moved > 0 {
		bw := w.rt.M.Topo.Cost.SocketBandwidth
		if bw > 0 {
			w.clock.Advance(int64(float64(moved) / bw))
		}
	}
	return moved
}

// FillsSinceDecision returns the fills-from-system delta since the last
// Alg. 1 decision (getEventCounter + reset semantics are handled by
// maybeTick).
func (w *Worker) FillsSinceDecision() int64 {
	return w.rt.M.PMU.FillsFromSystem(int(w.Core())) - w.lastFills
}

// loop is the worker's main scheduling loop. Under deterministic lockstep
// each iteration is one turn; otherwise the turn calls are no-ops.
func (w *Worker) loop() {
	defer w.rt.wg.Done()
	defer w.turnExit()
	defer w.closeCoPool()
	idle := 0
	for !w.rt.stop.Load() {
		w.turnAcquire()
		if !w.rt.stop.Load() {
			w.step(&idle)
		}
		w.turnRelease()
		if idle > 16 {
			yieldHost()
		}
	}
}

// step runs one scheduling iteration: handle a faulted core, then run the
// first available task (inbox, own deque, steal), else drift idle.
func (w *Worker) step(idle *int) {
	if w.checkFault() {
		*idle = 0
		return
	}
	w.throttle()
	if w.pumpJobs() {
		// The open-loop job service had due work (arrivals, breaker
		// evaluation, dispatch); the tasks it enqueued run on later steps.
		*idle = 0
		return
	}
	if t := w.drainInbox(); t != nil {
		w.execute(t)
		*idle = 0
		return
	}
	if t := w.deque.Pop(); t != nil {
		w.execute(t)
		*idle = 0
		return
	}
	if t := w.steal(); t != nil {
		w.execute(t)
		*idle = 0
		return
	}
	// Nothing runnable: drift the idle clock forward (capped at the
	// global maximum) so this worker does not pin the throttle gate,
	// and give the host scheduler room.
	w.idleDrift()
	*idle++
}

// throttle pauses the worker while its virtual clock runs more than the
// throttle window ahead of the slowest unblocked worker. This couples real
// execution order to virtual time: a virtually-idle worker gets real time
// to steal queued work before a fast host thread burns through it, keeping
// the simulated makespan honest regardless of host scheduling.
//
// A passed check is cached for a quarter window of virtual time so that
// fine-grained Yield points stay cheap.
func (w *Worker) throttle() {
	if w.rt.ls != nil {
		// Deterministic lockstep already serializes workers in virtual-
		// clock order; the wall-clock gate would deadlock against it.
		return
	}
	window := w.rt.opts.ThrottleWindow
	now := w.clock.Now()
	if now-w.lastThrottleOK < window/4 {
		return
	}
	for !w.rt.stop.Load() {
		min := w.rt.minUnblockedClock()
		if now = w.clock.Now(); now <= min+window {
			w.lastThrottleOK = now
			return
		}
		yieldHost()
	}
}

// idleDrift advances an idle worker's clock by the idle quantum, capped at
// the fleet maximum, modeling time spent waiting for stealable work.
func (w *Worker) idleDrift() {
	t := w.clock.Now() + w.rt.opts.IdleQuantum
	gm := w.rt.MaxWorkerClock()
	if s := w.rt.svc.Load(); s != nil {
		// Open loop: an all-idle fleet must keep virtual time moving toward
		// the next arrival or breaker evaluation, or the run deadlocks
		// before the next job lands. An exhausted source (MaxInt64) leaves
		// the fleet-maximum cap in force so idle clocks cannot run away.
		if nw := s.nextWork.Load(); nw > gm && nw != math.MaxInt64 {
			gm = nw
		}
	}
	if t > gm {
		t = gm
	}
	w.clock.SyncTo(t)
	if pw := w.rt.power; pw != nil {
		// Idle fleets still cross governor boundaries: temperatures must
		// keep decaying (and parks expiring) while no task runs.
		pw.MaybeTick(t)
	}
	// Keep the concurrency trace alive even when this worker has no
	// tasks of its own.
	if t-w.lastSample >= w.rt.opts.SchedulerTimer {
		w.sampleConcurrency(t)
		w.rt.met.reg.MaybeSample(t)
	}
}

// sampleConcurrency records the fleet's live-task count at worker 0's
// scheduler ticks — the Fig. 12 thread-concurrency trace, in virtual time.
func (w *Worker) sampleConcurrency(now int64) {
	if w.id != 0 {
		return
	}
	w.lastSample = now
	w.rt.prof.Record(ProfConcurrency, 0, now, w.rt.liveTasks.Load())
}

// drainInbox moves all but one inbox task to the deque and returns the
// first for immediate execution.
func (w *Worker) drainInbox() *Task {
	first := w.inbox.Take()
	if first == nil {
		return nil
	}
	for {
		t := w.inbox.Take()
		if t == nil {
			return first
		}
		w.deque.Push(t)
	}
}

// steal probes victims in the policy's preference order: the paper's
// strategy tries cores on the same chiplet before other chiplets (§4.4).
func (w *Worker) steal() *Task {
	self := w.Core()
	topo := w.rt.M.Topo
	selfCh := topo.ChipletOf(self)
	importOK := true
	if plan := w.rt.opts.Faults; plan != nil {
		// A thermally throttled chiplet never imports work: a stolen task
		// would execute here at the throttle multiplier while the victim —
		// or any cool die — runs it at full speed, and the imported heat
		// only deepens the throttle (the closed-loop governor's positive
		// feedback). Same-chiplet steals stay allowed; that work is
		// already committed to this die's queues. The one exception is a
		// *blocked* victim (parked, or waiting inside a barrier/call):
		// its queue cannot drain itself, so refusing it can starve the
		// fleet — a hot slow rescue beats a deadlock.
		importOK = plan.ThermalMilli(selfCh, w.clock.Now()) <= 1000
	}
	for _, victim := range w.rt.opts.Policy.StealOrder(w) {
		v := w.rt.workers[victim]
		vc := v.Core()
		if !importOK && topo.ChipletOf(vc) != selfCh && !v.blocked.Load() {
			continue
		}
		t := v.deque.Steal()
		if t == nil {
			continue
		}
		// Multi-tenant lease fence: don't import another tenant's task onto
		// a chiplet leased away from it — a bursting tenant's backlog must
		// drain on its own lease, not ride stealing across the fence. A
		// blocked victim is exempt (its queue cannot drain itself).
		if svc := w.rt.svc.Load(); svc != nil && !v.blocked.Load() &&
			!svc.stealAllowed(int(selfCh), t) {
			v.inbox.Put(t)
			continue
		}
		if t.pinned {
			if hw := w.rt.workers[t.home]; !hw.blocked.Load() {
				// Pinned tasks must run on their home worker; return it.
				v.inbox.Put(t)
				continue
			}
			// The home worker is blocked (parked, or waiting inside a
			// barrier/call), so it cannot run its own queue. Honoring the
			// pin would strand the task — and deadlock the fleet if the
			// task is itself a party of the barrier its home is waiting
			// in (an AllDo instance displaced into the deque by an
			// earlier arrival). The degradation contract is "run it on a
			// live worker": unpin and take it.
			t.pinned = false
		}
		w.clock.Advance(topo.Cost.StealPenalty + topo.CASLatency(self, vc))
		w.rt.M.PMU.Add(int(self), pmu.TaskSteal, 1)
		w.rt.met.steals.Inc(w.id)
		t.stealCount++
		if topo.ChipletOf(self) != topo.ChipletOf(vc) {
			w.rt.M.PMU.Add(int(self), pmu.StealRemoteChiplet, 1)
			w.rt.met.remoteSteals.Inc(w.id)
			t.remoteStolen = true
		}
		return t
	}
	return nil
}

// execute runs one task to completion (or through its coroutine lifecycle).
func (w *Worker) execute(t *Task) {
	w.clock.SyncTo(t.stamp)
	if t.pinned && t.home != w.id {
		// Misrouted pinned task (should not happen): forward home.
		w.rt.workers[t.home].inbox.Put(t)
		return
	}
	if t.jobCancelled() {
		// Cooperative cancellation: a never-started task is discarded
		// without ever getting a coroutine stack; a suspended coroutine is
		// resumed once so its Yield point unwinds the stack.
		if t.co != nil && t.co.started {
			w.unwindCancelled(t)
		} else {
			w.discardCancelled(t)
		}
		return
	}
	if !t.spawned {
		// First execution: charge the spawn cost and count the task live
		// until finishTask (suspended coroutines and retries stay live,
		// matching the thread-concurrency semantics of Fig. 12).
		t.spawned = true
		if w.rt.opts.Overheads.Spawn > 0 {
			w.clock.Advance(w.rt.opts.Overheads.Spawn)
		}
		w.rt.liveTasks.Add(1)
	}
	if t.startT < 0 {
		t.startT = w.clock.Now()
	}
	if t.coro {
		w.runCoroutine(t)
	} else {
		// Run-to-completion tasks share the worker's one reused Ctx (a
		// worker executes at most one at a time); the deferred flush
		// settles any deferred repeat accesses even on a panic unwind, so
		// retried and cancelled tasks keep their charges.
		ctx := &w.runCtx
		*ctx = Ctx{w: w, task: t}
		if err := w.runTaskRecovered(t, func() { defer ctx.flushBatch(); t.fn(ctx) }); err != nil {
			if t.jobCancelled() {
				// Cancellation propagates through the retry path: the
				// unwind (or a coincident failure) of a cancelled job's
				// task is discarded, never re-queued.
				w.discardCancelled(t)
			} else if !w.retryTask(t, err) {
				w.failTask(t, err)
			}
		} else {
			w.finishTask(t)
		}
	}
	w.maybeTick()
}

func (w *Worker) finishTask(t *Task) {
	now := w.clock.Now()
	if dl := w.rt.opts.StarvationDeadline; dl > 0 && now-t.stamp > dl {
		// Watchdog: the task sat starved (queued, suspended, or retried)
		// past the configured deadline before completing.
		w.rt.met.watchdogTrips.Inc(w.id)
		w.rt.prof.Record(ProfFault, w.id, now, fcWatchdog)
	}
	w.rt.M.PMU.Add(int(w.Core()), pmu.TaskRun, 1)
	w.rt.liveTasks.Add(-1)
	w.rt.met.tasks.Inc(w.id)
	w.rt.met.taskLatency.Observe(w.id, now-t.stamp)
	w.rt.met.taskExec.Observe(w.id, now-t.startT)
	if t.job != nil {
		// Feed the job service's per-chiplet slowdown window (the
		// PMU-observed half of the circuit-breaker signal).
		ch := int(w.rt.M.Topo.ChipletOf(w.Core()))
		t.job.svc.observeExec(ch, now-t.startT)
		if tr := w.rt.tracer; tr.Enabled() {
			// Arg carries the first-execution time (Arg−Start = dispatch
			// wait, End−Arg = execution window) and Arg2 the window's
			// accumulated memory/fabric stall.
			tr.Emit(w.id, obs.Span{
				Trace: obs.TraceID(t.job.id), Kind: obs.SpanTask,
				Start: t.stamp, End: now,
				Worker: int32(w.id), Chiplet: int32(ch), Stage: t.stage,
				Arg: t.startT, Arg2: t.stallNS,
			})
		}
	}
	if w.rt.prof.Enabled() {
		w.rt.prof.RecordSpan(TaskSpan{
			ID: t.id, Home: t.home, Worker: w.id,
			Enqueue: t.stamp, Start: t.startT, End: now,
			Steals: int(t.stealCount), Remote: t.remoteStolen,
			Delegated: t.delegated, Hops: int(t.hops),
		})
	}
	if t.grp != nil {
		t.grp.taskDone(now)
	}
	if t.onDone != nil {
		t.onDone.finish.Store(now)
		t.onDone.done.Store(true)
	}
	// Terminal: nothing references the task past its completion signals.
	w.freeTask(t)
}

// maybeTick runs the policy's periodic decision (Alg. 1's entry condition:
// elapsed >= SCHEDULER_TIMER) at task boundaries and yield points.
func (w *Worker) maybeTick() {
	now := w.clock.Now()
	if pw := w.rt.power; pw != nil {
		pw.MaybeTick(now)
	}
	if now-w.lastDecision < w.rt.opts.SchedulerTimer {
		return
	}
	if now < w.settleUntil {
		// Post-migration settle period: discard the refill burst.
		w.lastDecision = now
		w.lastFills = w.rt.M.PMU.FillsFromSystem(int(w.Core()))
		return
	}
	w.sampleConcurrency(now)
	w.rt.met.reg.MaybeSample(now)
	w.rt.opts.Policy.OnTimer(w, now-w.lastDecision)
	w.lastDecision = now
	w.lastFills = w.rt.M.PMU.FillsFromSystem(int(w.Core()))
}

// nextRand is a xorshift64* PRNG for tie-breaking.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545F4914F6CDD1D
}
