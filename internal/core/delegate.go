package core

import (
	"charm/internal/mem"
	"charm/internal/topology"
)

// Delegation: the Grappa/RING task-and-RPC model the paper builds on
// (§4.6). Instead of pulling remote data through the cache hierarchy, a
// task ships a small closure to a worker co-located with the data and gets
// the result back — one message pair instead of a coherence ping-pong.
// CHARM keeps this model and adds chiplet-aware owner selection: the owner
// is a worker on the data's home NUMA node, chosen deterministically per
// cache line so the same line is always served by the same worker (its
// chiplet L3 keeps the line).

// OwnerOf returns the worker that owns addr under the delegation model:
// a worker on the page's home NUMA node, selected by line hash so
// ownership is stable and spread across that node's workers.
func (rt *Runtime) OwnerOf(addr mem.Addr) int {
	node := rt.M.Space.HomeOf(addr, 0)
	var candidates []int
	for _, w := range rt.workers {
		if rt.M.Topo.NodeOfCore(w.Core()) == node {
			candidates = append(candidates, w.id)
		}
	}
	if len(candidates) == 0 {
		// No worker on the home node (small worker counts): fall back to
		// hashing across all workers.
		line := uint64(addr) >> 6
		return int(line % uint64(len(rt.workers)))
	}
	line := uint64(addr) >> 6
	return candidates[line%uint64(len(candidates))]
}

// Delegate executes fn on the owner of addr and blocks until it completes,
// charging the request/reply message latencies (the synchronous delegate
// of the RING API). Running on the owner already executes fn inline.
func (c *Ctx) Delegate(addr mem.Addr, fn func(*Ctx)) {
	c.Call(c.w.rt.OwnerOf(addr), fn)
}

// DelegateAsync ships fn to the owner of addr without waiting; completion
// joins the surrounding submission's group.
func (c *Ctx) DelegateAsync(addr mem.Addr, fn func(*Ctx)) {
	c.CallAsync(c.w.rt.OwnerOf(addr), fn)
}

// DelegateBatch ships a batch of independent async delegations grouped by
// owner, amortizing the per-message fabric latency over the batch — the
// message batching that gives RING its name. Each element of addrs is
// delegated to fns[i] on its owner; len(addrs) must equal len(fns).
func (c *Ctx) DelegateBatch(addrs []mem.Addr, fns []func(*Ctx)) {
	if len(addrs) != len(fns) {
		panic("core: DelegateBatch length mismatch")
	}
	c.flushBatch()
	rt := c.w.rt
	type batch struct {
		fns []func(*Ctx)
	}
	byOwner := map[int]*batch{}
	for i, a := range addrs {
		o := rt.OwnerOf(a)
		b := byOwner[o]
		if b == nil {
			b = &batch{}
			byOwner[o] = b
		}
		b.fns = append(b.fns, fns[i])
	}
	for owner, b := range byOwner {
		fns := b.fns
		// One message carries the whole batch: the sender pays one issue
		// cost, and the latency charge covers the per-element payload.
		tw := rt.workers[owner]
		c.advance(rt.M.Topo.Cost.StealPenalty)
		delay := rt.M.Fabric.MessageDelay(c.w.Core(), tw.Core(), c.w.clock.Now(),
			64+int64(len(fns))*16)
		t := c.w.newTask(func(ctx *Ctx) {
			for _, fn := range fns {
				fn(ctx)
			}
		}, c.task.grp, c.w.clock.Now()+delay, false, owner)
		t.pinned = true
		t.delegated = true
		t.hops = c.task.hops + 1
		rt.met.delegations.Inc(c.w.id)
		c.task.grp.add(1)
		tw.inbox.Put(t)
	}
}

// NodeOfWorker reports the NUMA node hosting worker id's current core.
func (rt *Runtime) NodeOfWorker(id int) topology.NodeID {
	return rt.M.Topo.NodeOfCore(rt.workers[id].Core())
}
