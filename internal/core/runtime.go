// Package core implements the CHARM runtime (§4 of the paper): worker
// threads pinned to simulated cores, per-core lock-free task deques with
// chiplet-first work stealing, coroutine-based fine-grained parallelism,
// the decentralized chiplet scheduling policy (Alg. 1) with its
// collision-free location update (Alg. 2), and the performance profiler
// the adaptive controller feeds on.
//
// Baseline runtimes (RING, SHOAL, AsymSched, SAM, std::async) reuse this
// engine through the Policy interface: they differ in placement, stealing
// order, adaptation, and task-switch costs, exactly the axes the paper
// evaluates.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/place"
	"charm/internal/pmu"
	"charm/internal/power"
	"charm/internal/sim"
	"charm/internal/topology"
	"charm/internal/vtime"
)

// Default tuning constants; see §4.6 of the paper. The virtual-time
// defaults are calibrated for the simulator's scaled workloads — the paper
// uses 500 ms wall-clock on full-size inputs; DESIGN.md discusses the
// scaling relation.
const (
	// DefaultSchedulerTimer is the Alg. 1 decision interval in virtual ns.
	DefaultSchedulerTimer = 500_000 // 500 µs virtual
	// DefaultBarrierCost is the virtual cost of one barrier release.
	DefaultBarrierCost = 500
)

// TaskOverheads models the concurrency substrate a runtime uses for tasks.
// CHARM uses user-level coroutines; the std::async baseline uses OS threads.
type TaskOverheads struct {
	// Spawn is charged when a task is created.
	Spawn int64
	// Switch is charged on every suspend/resume pair.
	Switch int64
}

// Options configure a Runtime.
type Options struct {
	// Workers is the number of worker threads; the engine dedicates one
	// simulated core per worker (§4.6). Required, must be positive and at
	// most the machine's core count unless Oversubscribe is set.
	Workers int
	// Policy selects placement/scheduling; nil selects NewCharmPolicy().
	Policy Policy
	// SchedulerTimer and RemoteFillThreshold parameterize Alg. 1;
	// zero selects the defaults.
	SchedulerTimer      int64
	RemoteFillThreshold int64
	// Hysteresis divides the threshold for the consolidation decision:
	// spread_rate decrements only when the rate falls below
	// threshold/Hysteresis, which keeps workers whose rate sits near the
	// threshold from flip-flopping (each flip is a migration). 1
	// reproduces Alg. 1 literally; 0 selects the default of 4.
	Hysteresis int64
	// Overheads selects the task substrate costs; zero values select the
	// topology's coroutine costs.
	Overheads TaskOverheads
	// BarrierCost is the virtual cost of one barrier release (0=default).
	BarrierCost int64
	// Oversubscribe permits more workers than cores (used by the
	// std::async baseline to model thread floods).
	Oversubscribe bool
	// UseSMT permits up to SMTWays workers per physical core (hardware
	// threads). CHARM itself never co-schedules hyperthread siblings
	// (§4.6); this knob exists for baselines and ablations.
	UseSMT bool
	// ThrottleWindow bounds how far (in virtual ns) a worker's clock may
	// run ahead of the slowest unblocked worker before it pauses to let
	// virtual laggards take work. It caps the virtual-time skew
	// introduced by host scheduling; 0 selects the default (20 µs).
	ThrottleWindow int64
	// IdleQuantum is the virtual time an idle worker drifts forward per
	// fruitless steal round (0 = default 2 µs).
	IdleQuantum int64
	// Faults is a compiled fault plan (see internal/fault). The runtime
	// arms it on the machine's fabric and memory channels and handles
	// core-offline windows itself: offline workers drain their queues to
	// live workers and either re-home (Rehomer policies) or park. Nil
	// runs a permanently healthy machine.
	Faults *fault.Plan
	// Power enables the closed-loop thermal/energy plane (internal/power):
	// per-chiplet energy accounting from the PMU counters, an RC thermal
	// model advanced in virtual time, and a governor that feeds throttle
	// and park decisions back through the fault plan's dynamic overlay.
	// The plan in Faults hosts the overlay; when Faults is nil an empty
	// plan is compiled to carry it. Nil disables the plane entirely (the
	// hot paths then pay a single nil check).
	Power *power.Config
	// MaxTaskRetries re-executes a panicking task up to N times before
	// failing its group, with exponential backoff in virtual time. 0
	// (default) fails on the first panic.
	MaxTaskRetries int
	// RetryBackoff is the virtual-ns backoff before the first retry;
	// retry k waits RetryBackoff << (k-1). 0 selects 10 µs.
	RetryBackoff int64
	// StarvationDeadline, when positive, flags every task whose
	// enqueue-to-completion latency exceeds it (virtual ns) in the
	// watchdog metric and the ProfFault series.
	StarvationDeadline int64
	// Deterministic serializes workers in virtual-clock lockstep (see
	// lockstep.go): runs become bit-identical across repetitions at the
	// price of host parallelism.
	Deterministic bool
	// NoAccessBatch disables the epoch-batched access fast path
	// (fastpath.go): every Ctx.Read/Write takes the full per-access machine
	// path. The two modes produce identical simulated results (the
	// equivalence tests assert it); the knob exists for those tests and the
	// before/after benchmarks.
	NoAccessBatch bool
	// NoPooling disables task-struct and coroutine-stack recycling: every
	// task allocates fresh. Exists for allocation benchmarks and leak
	// triage; behaviour is identical either way.
	NoPooling bool
}

// Stats summarizes one phase or run.
type Stats struct {
	// Makespan is the virtual time at which the last task of the run
	// finished, relative to the run's start.
	Makespan int64
	// Tasks is the number of tasks executed.
	Tasks int64
	// Steals counts successful steals; RemoteSteals those that crossed a
	// chiplet boundary.
	Steals       int64
	RemoteSteals int64
	// Migrations counts Alg. 2 enactments.
	Migrations int64
}

// Runtime executes tasks on a simulated machine.
type Runtime struct {
	M    *sim.Machine
	opts Options

	workers []*Worker
	// workerOnCore[c] holds the worker ID currently pinned to core c,
	// or -1. Multiple workers can transiently share a core while their
	// spread rates diverge; coreOcc tracks the multiplicity.
	workerOnCore []atomic.Int32
	coreOcc      []atomic.Int32

	// ranks precomputes the topological distance ordering every placement
	// view shares (steal-victim ordering, fault re-homing).
	ranks *place.Ranks

	phase      atomic.Int64 // virtual start time of the next submission
	placeEpoch atomic.Int64 // bumped on every placement change
	stop       atomic.Bool
	// lifecycle moves lcNew → lcStarted → lcStopped exactly once each;
	// activeSubmits counts in-flight submissions so Stop can wait out a
	// racing Run/SubmitJob instead of abandoning its tasks mid-air.
	lifecycle     atomic.Int32
	activeSubmits atomic.Int64
	wg            sync.WaitGroup

	// svc is the open-loop job service (nil until ServeJobs/SubmitJob).
	svc atomic.Pointer[JobService]

	taskSeq  atomic.Uint64
	phaseSeq atomic.Uint64

	// liveTasks tracks currently executing or suspended tasks; the
	// profiler samples it for the Fig. 12 concurrency trace.
	liveTasks atomic.Int64

	prof *Profiler
	met  *rtMetrics
	// tracer is the causal-span sink: one shard per worker plus one for
	// the job service's lock-serialized emissions. Disabled by default.
	tracer *obs.Tracer

	// power is the closed-loop thermal/energy governor (nil when the plane
	// is disabled — hot paths check the pointer once).
	power *power.Plane

	// ls serializes workers when Options.Deterministic is set (else nil).
	ls *lockstep

	// batch/pool mirror the (inverted) Options knobs for the hot paths.
	batch bool
	pool  bool
}

// NewRuntime builds a runtime on machine m. It panics on invalid options
// (a configuration programming error).
func NewRuntime(m *sim.Machine, opts Options) *Runtime {
	if opts.Workers <= 0 {
		panic(fmt.Sprintf("core: Workers must be positive, got %d", opts.Workers))
	}
	if !opts.Oversubscribe {
		limit := m.Topo.NumCores()
		unit := "cores"
		if opts.UseSMT {
			limit = m.Topo.NumThreads()
			unit = "hardware threads"
		}
		if opts.Workers > limit {
			panic(fmt.Sprintf("core: %d workers exceed %d %s", opts.Workers, limit, unit))
		}
	}
	if opts.Policy == nil {
		opts.Policy = NewCharmPolicy()
	}
	if opts.SchedulerTimer <= 0 {
		opts.SchedulerTimer = DefaultSchedulerTimer
	}
	if opts.RemoteFillThreshold <= 0 {
		// One fill-from-system per 500 ns marks a worker as
		// remote-traffic bound: comfortably above the residual rate of a
		// cache-resident worker (~0) and below a DRAM-bound worker's
		// (one per ~105-200 ns). Expressed per timer interval, matching
		// Alg. 1's RMT_CHIP_ACCESS_RATE semantics; the paper's absolute
		// constant (300 per 500 ms) is specific to its hardware PMU.
		opts.RemoteFillThreshold = opts.SchedulerTimer / 500
		if opts.RemoteFillThreshold < 1 {
			opts.RemoteFillThreshold = 1
		}
	}
	if opts.Hysteresis <= 0 {
		opts.Hysteresis = 4
	}
	if opts.Overheads.Switch == 0 {
		opts.Overheads.Switch = m.Topo.Cost.CoroutineSwitch
	}
	if opts.BarrierCost <= 0 {
		// Barrier release wakes every party: the cost grows with the
		// worker count, which is what erodes fine-grained parallel
		// regions at high core counts (§5.4's fragmentation effect).
		opts.BarrierCost = DefaultBarrierCost + 20*int64(opts.Workers)
	}
	if opts.ThrottleWindow <= 0 {
		opts.ThrottleWindow = 5_000
	}
	if opts.IdleQuantum <= 0 {
		opts.IdleQuantum = 2_000
	}
	if opts.Faults != nil && opts.Faults.Empty() && opts.Power == nil {
		opts.Faults = nil // an empty plan is a healthy machine; skip the hooks
	}
	if opts.MaxTaskRetries < 0 {
		panic(fmt.Sprintf("core: MaxTaskRetries must be non-negative, got %d", opts.MaxTaskRetries))
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10_000
	}
	var pw *power.Plane
	if opts.Power != nil {
		// The plane rides on the fault plan's dynamic overlay; compile an
		// empty plan to host it when no static faults were configured.
		if opts.Faults == nil {
			pl, err := (*fault.Schedule)(nil).Compile(m.Topo)
			if err != nil {
				panic(fmt.Sprintf("core: empty fault plan: %v", err))
			}
			opts.Faults = pl
		}
		var err error
		pw, err = power.NewPlane(m.Topo, m.PMU, opts.Faults, *opts.Power)
		if err != nil {
			panic(fmt.Sprintf("core: power plane: %v", err))
		}
	}

	rt := &Runtime{
		M:            m,
		opts:         opts,
		workerOnCore: make([]atomic.Int32, m.Topo.NumCores()),
		coreOcc:      make([]atomic.Int32, m.Topo.NumCores()),
		ranks:        place.NewRanks(m.Topo),
		prof:         NewProfiler(),
		power:        pw,
		batch:        !opts.NoAccessBatch,
		pool:         !opts.NoPooling,
	}
	// The observability layer: a per-worker-sharded registry covering the
	// runtime and the whole simulated machine, attached to the profiler
	// so traces can include counter tracks.
	rt.met = newRTMetrics(rt, opts.Workers)
	m.Instrument(rt.met.reg)
	if rt.power != nil {
		rt.power.Instrument(rt.met.reg)
	}
	rt.prof.AttachRegistry(rt.met.reg)
	rt.tracer = obs.NewTracer(opts.Workers+1, 0)
	rt.prof.AttachTracer(rt.tracer)
	for i := range rt.workerOnCore {
		rt.workerOnCore[i].Store(-1)
	}
	rt.workers = make([]*Worker, opts.Workers)
	for i := range rt.workers {
		rt.workers[i] = newWorker(rt, i)
	}
	for _, w := range rt.workers {
		core := opts.Policy.InitialCore(w.id, opts.Workers, m.Topo)
		w.placeOn(core)
	}
	if opts.Faults != nil {
		// One wiring point for the whole stack: fabric links and memory
		// channels read the same plan the scheduler does.
		m.SetFaultPlan(opts.Faults)
	}
	if opts.Deterministic {
		rt.ls = newLockstep(rt, opts.Workers)
	}
	return rt
}

// Runtime lifecycle states.
const (
	lcNew int32 = iota
	lcStarted
	lcStopped
)

// ErrFinalized is returned (SubmitJob) or panicked (Run and friends) by
// submissions that race or follow Stop/Finalize.
var ErrFinalized = errors.New("core: runtime finalized")

// Start launches the worker goroutines. It must be called once before any
// submission.
func (rt *Runtime) Start() {
	if !rt.lifecycle.CompareAndSwap(lcNew, lcStarted) {
		panic("core: Start called twice")
	}
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go w.loop()
	}
}

// Stop terminates the workers. Pending tasks are abandoned; call only when
// the last submission has completed. Stop is idempotent, and a Stop racing
// an in-flight submission waits for that submission's tasks to drain
// before tearing the fleet down; later submissions fail with ErrFinalized.
func (rt *Runtime) Stop() {
	if !rt.lifecycle.CompareAndSwap(lcStarted, lcStopped) {
		// Never started: just mark stopped so submissions fail typed.
		// Already stopped: idempotent no-op.
		rt.lifecycle.CompareAndSwap(lcNew, lcStopped)
		return
	}
	for rt.activeSubmits.Load() > 0 {
		yieldHost()
	}
	rt.stop.Store(true)
	if rt.ls != nil {
		rt.ls.stopAll()
	}
	rt.wg.Wait()
}

// submitBegin registers an in-flight submission. It fails once the
// lifecycle reached stopped; the registration order against Stop's CAS
// decides whether Stop waits for this submission or refuses it.
func (rt *Runtime) submitBegin() bool {
	rt.activeSubmits.Add(1)
	if rt.lifecycle.Load() == lcStopped {
		rt.activeSubmits.Add(-1)
		return false
	}
	return true
}

func (rt *Runtime) submitEnd() { rt.activeSubmits.Add(-1) }

// Workers returns the number of workers.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Worker returns worker i (for policies and tests).
func (rt *Runtime) Worker(i int) *Worker { return rt.workers[i] }

// Options returns the runtime's options.
func (rt *Runtime) Options() Options { return rt.opts }

// Profiler returns the runtime's time-series profiler.
func (rt *Runtime) Profiler() *Profiler { return rt.prof }

// Power returns the closed-loop thermal/energy plane, or nil when the
// plane is disabled.
func (rt *Runtime) Power() *power.Plane { return rt.power }

// Tracer returns the runtime's causal-span tracer (disabled by default;
// see EnableTracing).
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }

// EnableTracing turns causal job tracing on or off. When off, every span
// emission point costs a single atomic load.
func (rt *Runtime) EnableTracing(on bool) { rt.tracer.SetEnabled(on) }

// trShard is the tracer shard index for service-side emissions (the
// extra shard past the per-worker ones, serialized by svc.mu).
func (rt *Runtime) trShard() int { return len(rt.workers) }

// Now returns the current phase clock: the virtual time up to which all
// submitted phases have completed.
func (rt *Runtime) Now() int64 { return rt.phase.Load() }

// MaxWorkerClock returns the maximum clock over all workers.
func (rt *Runtime) MaxWorkerClock() int64 {
	var m int64
	for _, w := range rt.workers {
		if t := w.clock.Now(); t > m {
			m = t
		}
	}
	return m
}

// minUnblockedClock returns the minimum clock over workers not blocked in a
// barrier or synchronous call, or MaxInt64 when all are blocked.
func (rt *Runtime) minUnblockedClock() int64 {
	min := int64(1<<63 - 1)
	for _, w := range rt.workers {
		if w.blocked.Load() {
			continue
		}
		if t := w.clock.Now(); t < min {
			min = t
		}
	}
	return min
}

// group tracks the outstanding tasks of one submission.
type group struct {
	pending atomic.Int64
	bar     vtime.Barrier
	done    chan struct{}
	// panicked holds the first task failure of the group (nil when clean);
	// submitWait re-panics it on the submitter so a failing task behaves
	// like a failing function call instead of killing a worker.
	panicked atomic.Pointer[TaskError]
	// job links a stage group back to its open-loop job: the last task to
	// finish advances the job instead of waking a submitter.
	job *Job
}

func newGroup() *group {
	return &group{done: make(chan struct{})}
}

func (g *group) add(n int64) { g.pending.Add(n) }

func (g *group) taskDone(t int64) {
	g.bar.Enter(t)
	if g.pending.Add(-1) == 0 {
		close(g.done)
		if g.job != nil {
			g.job.svc.stageDone(g.job, g)
		}
	}
}

func (g *group) fail(e *TaskError) {
	g.panicked.CompareAndSwap(nil, e)
}

// Task is one schedulable unit of work.
type Task struct {
	id    uint64
	fn    func(*Ctx)
	grp   *group
	stamp int64 // virtual time before which the task cannot start
	coro  bool  // run as a suspendable coroutine
	co    *coroutine
	// pinned prevents stealing-based migration (used by AllDo).
	pinned bool
	home   int // worker the task was submitted to
	// onDone signals a synchronous Call's completion (nil otherwise).
	onDone *callGroup

	// Lifecycle-span state (read by the profiler at completion). startT
	// is the virtual time of the first execution (-1 until then);
	// stealCount/remoteStolen record steal provenance; delegated/hops
	// record the delegation chain depth.
	startT       int64
	stealCount   int32
	remoteStolen bool
	delegated    bool
	hops         int32

	// Fault-tolerance state: spawned marks the first execution's
	// accounting as done (so a retry is not double-counted); attempts is
	// the retry count; err carries a coroutine failure from the coroutine
	// goroutine back to the worker (synchronized by the status channel).
	spawned  bool
	attempts int32
	err      *TaskError

	// job links the task to its open-loop job (nil for phase submissions);
	// workers poll its cancellation flag at discard and yield points.
	job *Job
	// stage is the job stage index the task belongs to (trace spans);
	// stallNS accumulates the task's simulated memory/fabric access time,
	// the stall half of its execution window. Worker-owned.
	stage   int32
	stallNS int64
}

func (rt *Runtime) newTask(fn func(*Ctx), g *group, stamp int64, coro bool, home int) *Task {
	return &Task{
		id:     rt.taskSeq.Add(1),
		fn:     fn,
		grp:    g,
		stamp:  stamp,
		coro:   coro,
		home:   home,
		startT: -1,
	}
}

// Run executes fn as a single root task on worker 0 and waits for it and
// every task it spawned (transitively) to finish. It returns the phase
// statistics.
func (rt *Runtime) Run(fn func(*Ctx)) Stats {
	return rt.submitWait([]func(*Ctx){fn}, false, false)
}

// AllDo runs fn once per worker, pinned (not stealable), and waits for all
// instances — the all_do() primitive of the CHARM API. Tasks may call
// ctx.Barrier to phase-synchronize.
func (rt *Runtime) AllDo(fn func(*Ctx)) Stats {
	fns := make([]func(*Ctx), len(rt.workers))
	for i := range fns {
		fns[i] = fn
	}
	return rt.submitWait(fns, true, false)
}

// AllDoCo is AllDo with coroutine tasks (suspendable via ctx.Yield).
func (rt *Runtime) AllDoCo(fn func(*Ctx)) Stats {
	fns := make([]func(*Ctx), len(rt.workers))
	for i := range fns {
		fns[i] = fn
	}
	return rt.submitWait(fns, true, true)
}

// ParallelFor splits [lo, hi) into chunks of at most grain iterations and
// executes body(ctx, i0, i1) over them, distributing chunks round-robin and
// letting work stealing balance the rest. It waits for completion.
func (rt *Runtime) ParallelFor(lo, hi, grain int, body func(ctx *Ctx, i0, i1 int)) Stats {
	if grain <= 0 {
		grain = 1
	}
	var fns []func(*Ctx)
	for s := lo; s < hi; s += grain {
		e := s + grain
		if e > hi {
			e = hi
		}
		s, e := s, e
		fns = append(fns, func(ctx *Ctx) { body(ctx, s, e) })
	}
	if len(fns) == 0 {
		return Stats{}
	}
	return rt.submitWait(fns, false, false)
}

// submitWait distributes one task per fns entry (round-robin over workers;
// pinned tasks go to their same-index worker), waits for the group, and
// advances the phase clock.
func (rt *Runtime) submitWait(fns []func(*Ctx), pinned, coro bool) Stats {
	if rt.lifecycle.Load() == lcNew {
		panic("core: runtime not started")
	}
	if !rt.submitBegin() {
		panic(ErrFinalized)
	}
	defer rt.submitEnd()
	start := rt.phase.Load()
	seq := rt.phaseSeq.Add(1)
	g := newGroup()
	g.add(int64(len(fns)))
	s0 := rt.snapshotCounters()
	if rt.ls != nil {
		rt.ls.pause()
	}
	for i, fn := range fns {
		var wid int
		pin := pinned
		if pinned {
			// AllDo: instance i belongs to worker i by construction.
			wid = i % len(rt.workers)
		} else {
			wid = rt.opts.Policy.AssignWorker(i, seq, len(rt.workers))
		}
		if rt.opts.Faults != nil && rt.opts.Faults.CoreDown(rt.workers[wid].Core(), start) {
			// The assigned worker's core is offline at phase start: route
			// to a live worker instead of queueing work on a parked one.
			// The rerouted instance loses its pin — its home is gone, so
			// any live worker may run it. Keeping the pin would strand it
			// in the replacement's deque if that worker blocks inside a
			// barrier the instance is itself a party of (thieves bounce
			// pinned tasks back to their home).
			wid = rt.nextLiveWorker(wid, start)
			pin = false
		}
		w := rt.workers[wid]
		t := rt.newTask(fn, g, start, coro, w.id)
		t.pinned = pin
		w.inbox.Put(t)
	}
	if rt.ls != nil {
		rt.ls.resume()
	}
	<-g.done
	if p := g.panicked.Load(); p != nil {
		// Propagate the first task failure to the submitter as a typed
		// error, carrying the original stack and attribution.
		panic(p)
	}
	end := g.bar.Release(rt.opts.BarrierCost)
	rt.phase.Store(end)
	s1 := rt.snapshotCounters()
	return Stats{
		Makespan:     end - start,
		Tasks:        s1[0] - s0[0],
		Steals:       s1[1] - s0[1],
		RemoteSteals: s1[2] - s0[2],
		Migrations:   s1[3] - s0[3],
	}
}

func (rt *Runtime) snapshotCounters() [4]int64 {
	p := rt.M.PMU
	return [4]int64{
		p.Total(pmu.TaskRun), p.Total(pmu.TaskSteal),
		p.Total(pmu.StealRemoteChiplet), p.Total(pmu.Migration),
	}
}

// Alloc reserves simulated memory bound to the given NUMA node.
func (rt *Runtime) Alloc(size int64, node topology.NodeID) mem.Addr {
	return rt.M.Space.AllocLocal(size, node)
}

// AllocPolicy reserves simulated memory under an explicit policy.
func (rt *Runtime) AllocPolicy(size int64, p mem.Policy, node topology.NodeID) mem.Addr {
	return rt.M.Space.Alloc(size, p, node)
}

// LiveTasks returns the number of currently executing or suspended tasks
// (the "thread concurrency" the Fig. 12 trace samples).
func (rt *Runtime) LiveTasks() int64 { return rt.liveTasks.Load() }

// yieldHost cooperatively yields the host goroutine while polling.
func yieldHost() { runtime.Gosched() }
