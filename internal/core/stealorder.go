package core

import "charm/internal/topology"

// Steal-victim orderings. Orders depend on worker placement, so each worker
// caches its computed order and invalidates it when any migration occurs
// (tracked by the runtime's placement epoch). The cache is worker-private:
// these functions (and the exported wrappers below) must only be called on
// the worker's own goroutine, which is where Policy.StealOrder runs.

type orderKind uint8

const (
	orderNone orderKind = iota
	orderChipletFirst
	orderSequential
	orderNodeFirst
)

// chipletFirstOrder returns victims sorted by topological distance from the
// worker's current core: same chiplet, then same quadrant, same node, and
// finally across sockets (§4.4's stealing strategy).
func (w *Worker) chipletFirstOrder() []int {
	return w.cachedOrder(orderChipletFirst, func() []int {
		w.rt.met.placeSteal.Inc(w.id)
		return w.rt.placeView(w.clock.Now()).VictimsByDistance(w.Core(), w.id)
	})
}

// sequentialOrder returns victims in worker-ID ring order, ignoring the
// topology (the placement-oblivious stealing of classic runtimes).
func (w *Worker) sequentialOrder() []int {
	return w.cachedOrder(orderSequential, func() []int {
		n := len(w.rt.workers)
		out := make([]int, 0, n-1)
		for k := 1; k < n; k++ {
			out = append(out, (w.id+k)%n)
		}
		return out
	})
}

// nodeFirstOrder returns victims on the same NUMA node first (in ID order),
// then the rest — NUMA-aware but chiplet-oblivious stealing (RING/SAM).
func (w *Worker) nodeFirstOrder() []int {
	return w.cachedOrder(orderNodeFirst, func() []int {
		w.rt.met.placeSteal.Inc(w.id)
		return w.rt.placeView(w.clock.Now()).VictimsNodeFirst(w.Core(), w.id)
	})
}

// cachedOrder memoizes an order until the placement epoch changes.
func (w *Worker) cachedOrder(kind orderKind, build func() []int) []int {
	epoch := w.rt.placeEpoch.Load()
	if w.soKind == kind && w.soEpoch == epoch && w.soCache != nil {
		return w.soCache
	}
	w.soCache = build()
	w.soKind = kind
	w.soEpoch = epoch
	return w.soCache
}

// SequentialStealOrder exposes worker-ID ring stealing for baseline
// policies.
func SequentialStealOrder(w *Worker) []int { return w.sequentialOrder() }

// NodeFirstStealOrder exposes NUMA-node-first stealing for baseline
// policies.
func NodeFirstStealOrder(w *Worker) []int { return w.nodeFirstOrder() }

// ChipletFirstStealOrder exposes chiplet-first stealing.
func ChipletFirstStealOrder(w *Worker) []int { return w.chipletFirstOrder() }

// CoreOfWorker reports which simulated core currently hosts worker id.
func (rt *Runtime) CoreOfWorker(id int) topology.CoreID {
	return rt.workers[id].Core()
}
