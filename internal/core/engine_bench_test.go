package core

import (
	"testing"

	"charm/internal/sim"
	"charm/internal/topology"
)

// BenchmarkEngine gates the engine fast path (fastpath.go): each pair runs
// the identical workload with the optimization on and off, so the recorded
// BENCH_engine.json carries its own before/after. The access pair is the
// per-access microbench the PR's >=1.5x target applies to; the task and
// coro pairs are about allocs/op (run with -benchmem).
func BenchmarkEngine(b *testing.B) {
	engineRT := func(b *testing.B, workers int, opts Options) *Runtime {
		b.Helper()
		opts.Workers = workers
		opts.SchedulerTimer = 1 << 60
		m := sim.New(sim.Config{Topo: topology.AMDMilan7713x2().Scaled(256)})
		rt := NewRuntime(m, opts)
		rt.Start()
		b.Cleanup(rt.Stop)
		return rt
	}

	// Hot-line reads on one worker: with batching each repeat is a compare
	// and an increment; without it each repeat walks the full machine
	// access path (placement lookup, cache probe, PMU, EWMA).
	access := func(b *testing.B, noBatch bool) {
		rt := engineRT(b, 1, Options{NoAccessBatch: noBatch})
		a := rt.M.Space.AllocLocal(64, 0)
		rt.Run(func(ctx *Ctx) { ctx.Read(a, 64) }) // warm the line
		b.ResetTimer()
		rt.Run(func(ctx *Ctx) {
			for i := 0; i < b.N; i++ {
				ctx.Read(a, 64)
			}
		})
	}
	b.Run("access/batch", func(b *testing.B) { access(b, false) })
	b.Run("access/nobatch", func(b *testing.B) { access(b, true) })

	// Task lifecycle: spawn-execute-finish in rounds of 64 on one worker,
	// so every round after the first draws its task structs from the
	// free list a prior round refilled (the steady state of a spawn-heavy
	// workload). Pooling turns the per-task allocation into a list pop.
	task := func(b *testing.B, noPool bool) {
		rt := engineRT(b, 1, Options{NoPooling: noPool})
		rt.Run(func(ctx *Ctx) { // warm the pool
			for i := 0; i < 64; i++ {
				ctx.Spawn(func(c *Ctx) {})
			}
		})
		b.ResetTimer()
		for done := 0; done < b.N; done += 64 {
			n := 64
			if rest := b.N - done; rest < n {
				n = rest
			}
			rt.Run(func(ctx *Ctx) {
				for i := 0; i < n; i++ {
					ctx.Spawn(func(c *Ctx) {})
				}
			})
		}
	}
	b.Run("task/pool", func(b *testing.B) { task(b, false) })
	b.Run("task/nopool", func(b *testing.B) { task(b, true) })

	// Coroutine lifecycle: each op is one suspendable task (goroutine
	// stack dispatch, one yield-resume, terminal recycle). Pooling parks
	// the stack goroutine instead of creating one per task.
	coro := func(b *testing.B, noPool bool) {
		rt := engineRT(b, 1, Options{NoPooling: noPool})
		fns := make([]func(*Ctx), 256)
		for i := range fns {
			fns[i] = func(ctx *Ctx) {
				ctx.Compute(100)
				ctx.Yield()
			}
		}
		b.ResetTimer()
		for done := 0; done < b.N; done += len(fns) {
			n := len(fns)
			if rest := b.N - done; rest < n {
				n = rest
			}
			rt.submitWait(fns[:n], false, true)
		}
	}
	b.Run("coro/pool", func(b *testing.B) { coro(b, false) })
	b.Run("coro/nopool", func(b *testing.B) { coro(b, true) })
}
