package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// Failure injection: tasks that panic must not kill workers; the panic
// propagates to the submitter with the task's stack attached, and the
// runtime stays usable afterwards.

func recoverMessage(t *testing.T, f func()) string {
	t.Helper()
	e := recoverTaskError(t, f)
	return e.Error()
}

// recoverTaskError runs f and returns the *TaskError it panics with.
func recoverTaskError(t *testing.T, f func()) *TaskError {
	t.Helper()
	var e *TaskError
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if e, ok = r.(*TaskError); !ok {
					t.Fatalf("expected *TaskError panic, got %T: %v", r, r)
				}
			}
		}()
		f()
	}()
	if e == nil {
		t.Fatal("expected a propagated panic")
	}
	return e
}

func TestTaskPanicPropagatesToSubmitter(t *testing.T) {
	rt := newTestRT(t, 4)
	msg := recoverMessage(t, func() {
		rt.ParallelFor(0, 100, 10, func(ctx *Ctx, i0, i1 int) {
			if i0 == 50 {
				panic("injected fault")
			}
			ctx.Compute(10)
		})
	})
	if !strings.Contains(msg, "injected fault") || !strings.Contains(msg, "task stack") {
		t.Errorf("panic message lacks fault/stack: %q", msg)
	}
	// The runtime must remain usable.
	var n atomic.Int64
	rt.ParallelFor(0, 10, 1, func(ctx *Ctx, i0, i1 int) { n.Add(1) })
	if n.Load() != 10 {
		t.Errorf("post-panic submission ran %d of 10 tasks", n.Load())
	}
}

func TestCoroutinePanicPropagates(t *testing.T) {
	rt := newTestRT(t, 2)
	msg := recoverMessage(t, func() {
		rt.submitWait([]func(*Ctx){func(ctx *Ctx) {
			ctx.Yield()
			panic("coroutine fault")
		}}, false, true)
	})
	if !strings.Contains(msg, "coroutine fault") {
		t.Errorf("wrong panic: %q", msg)
	}
	rt.Run(func(ctx *Ctx) { ctx.Compute(1) })
}

func TestRemoteCallPanicPropagates(t *testing.T) {
	rt := newTestRT(t, 4)
	msg := recoverMessage(t, func() {
		rt.Run(func(ctx *Ctx) {
			ctx.Call(2, func(*Ctx) { panic("remote fault") })
		})
	})
	if !strings.Contains(msg, "remote fault") {
		t.Errorf("wrong panic: %q", msg)
	}
}

func TestTaskErrorAttribution(t *testing.T) {
	rt := newTestRT(t, 4)
	cause := errors.New("attributed fault")
	e := recoverTaskError(t, func() {
		rt.ParallelFor(0, 8, 1, func(ctx *Ctx, i0, i1 int) {
			if i0 == 3 {
				panic(cause)
			}
		})
	})
	if e.TaskID == 0 {
		t.Error("TaskError.TaskID not set")
	}
	if e.Worker < 0 || e.Worker >= rt.Workers() {
		t.Errorf("TaskError.Worker = %d out of range", e.Worker)
	}
	if got := rt.M.Topo.ChipletOf(e.Core); got != e.Chiplet {
		t.Errorf("TaskError.Chiplet = %d, want %d for core %d", e.Chiplet, got, e.Core)
	}
	if e.Attempts != 1 {
		t.Errorf("TaskError.Attempts = %d, want 1 (no retries configured)", e.Attempts)
	}
	if !errors.Is(e, cause) {
		t.Error("errors.Is does not reach the panic value through Unwrap")
	}
	if e.Val != any(cause) {
		t.Errorf("TaskError.Val = %v, want the panic value", e.Val)
	}
	if len(e.Stack) == 0 {
		t.Error("TaskError.Stack empty")
	}
}

func TestFirstPanicWins(t *testing.T) {
	rt := newTestRT(t, 4)
	msg := recoverMessage(t, func() {
		rt.ParallelFor(0, 40, 1, func(ctx *Ctx, i0, i1 int) {
			panic("fault")
		})
	})
	// Exactly one panic surfaces even though many tasks failed.
	if strings.Count(msg, "task stack") != 1 {
		t.Errorf("expected one propagated stack, got: %q", msg)
	}
}
