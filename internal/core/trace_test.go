package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	p.Record(ProfSpread, 0, 1000, 2)
	p.Record(ProfSpread, 1, 2000, 4)
	p.Record(ProfFillRate, 0, 1500, 77)
	p.Record(ProfMigration, 1, 2500, 9)
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string           `json:"name"`
			Phase string           `json:"ph"`
			TS    float64          `json:"ts"`
			TID   int              `json:"tid"`
			Args  map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	counters, instants := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "C":
			counters++
		case "i":
			instants++
			if e.Args["core"] != 9 {
				t.Errorf("migration core = %d", e.Args["core"])
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if counters != 3 || instants != 1 {
		t.Errorf("counters=%d instants=%d, want 3/1", counters, instants)
	}
	// Timestamps are microseconds.
	if doc.TraceEvents[0].TS != 1.0 {
		t.Errorf("first ts = %f, want 1.0 µs", doc.TraceEvents[0].TS)
	}
}

func TestProfilerDisabledRecordsNothing(t *testing.T) {
	p := NewProfiler()
	p.Record(ProfSpread, 0, 1, 1)
	if got := p.Samples(ProfSpread); len(got) != 0 {
		t.Errorf("disabled profiler recorded %d samples", len(got))
	}
	p.Enable(true)
	p.Record(ProfSpread, 0, 1, 1)
	p.Enable(false)
	p.Record(ProfSpread, 0, 2, 2)
	if got := p.Samples(ProfSpread); len(got) != 1 {
		t.Errorf("samples = %d, want 1", len(got))
	}
	p.Enable(true) // re-enabling clears
	if got := p.Samples(ProfSpread); len(got) != 0 {
		t.Errorf("re-enable must clear, got %d", len(got))
	}
}

func TestProfilerMeanValue(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	if p.MeanValue(ProfSpread) != 0 {
		t.Error("empty mean must be 0")
	}
	p.Record(ProfSpread, 0, 1, 2)
	p.Record(ProfSpread, 0, 2, 4)
	if got := p.MeanValue(ProfSpread); got != 3 {
		t.Errorf("mean = %f, want 3", got)
	}
}

func TestStealOrderVariants(t *testing.T) {
	rt := newTestRT(t, 8)
	w := rt.Worker(0)

	// The steal-order cache is worker-private: compute all three orders
	// on worker 0's own goroutine, then assert on the host.
	var seq, node, ch []int
	rt.AllDo(func(ctx *Ctx) {
		if ctx.Worker() != 0 {
			return
		}
		seq = append([]int(nil), SequentialStealOrder(w)...)
		node = append([]int(nil), NodeFirstStealOrder(w)...)
		ch = append([]int(nil), ChipletFirstStealOrder(w)...)
	})
	if len(seq) != 7 {
		t.Fatalf("sequential order has %d victims", len(seq))
	}
	for i, v := range seq {
		if v != (0+i+1)%8 {
			t.Errorf("sequential[%d] = %d", i, v)
		}
	}

	if len(node) != 7 {
		t.Fatalf("node-first order has %d victims", len(node))
	}
	topo := rt.M.Topo
	self := topo.NodeOfCore(w.Core())
	// All same-node victims must precede all remote-node victims.
	seenRemote := false
	for _, v := range node {
		remote := topo.NodeOfCore(rt.CoreOfWorker(v)) != self
		if seenRemote && !remote {
			t.Fatalf("node-first order interleaves nodes: %v", node)
		}
		seenRemote = seenRemote || remote
	}

	if len(ch) != 7 {
		t.Fatalf("chiplet-first order has %d victims", len(ch))
	}
	// Victims must be sorted by non-decreasing latency class.
	prev := topo.ClassOf(w.Core(), rt.CoreOfWorker(ch[0]))
	for _, v := range ch[1:] {
		c := topo.ClassOf(w.Core(), rt.CoreOfWorker(v))
		if c < prev {
			t.Fatalf("chiplet-first order not distance-sorted: %v", ch)
		}
		prev = c
	}
}
