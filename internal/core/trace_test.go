package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"charm/internal/obs"
)

func TestWriteChromeTrace(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	p.Record(ProfSpread, 0, 1000, 2)
	p.Record(ProfSpread, 1, 2000, 4)
	p.Record(ProfFillRate, 0, 1500, 77)
	p.Record(ProfMigration, 1, 2500, 9)
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string           `json:"name"`
			Phase string           `json:"ph"`
			TS    float64          `json:"ts"`
			TID   int              `json:"tid"`
			Args  map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	counters, instants := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "C":
			counters++
		case "i":
			instants++
			if e.Args["core"] != 9 {
				t.Errorf("migration core = %d", e.Args["core"])
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if counters != 3 || instants != 1 {
		t.Errorf("counters=%d instants=%d, want 3/1", counters, instants)
	}
	// Timestamps are microseconds.
	if doc.TraceEvents[0].TS != 1.0 {
		t.Errorf("first ts = %f, want 1.0 µs", doc.TraceEvents[0].TS)
	}
}

// chromeDoc mirrors the emitted trace document for round-trip decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string             `json:"name"`
		Phase string             `json:"ph"`
		TS    float64            `json:"ts"`
		PID   int                `json:"pid"`
		TID   int                `json:"tid"`
		Args  map[string]float64 `json:"args"`
	} `json:"traceEvents"`
	DisplayUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceRoundTrip(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	// Profiler series: 3 counter samples + 1 migration instant.
	p.Record(ProfSpread, 0, 1000, 2)
	p.Record(ProfSpread, 1, 2000, 4)
	p.Record(ProfFillRate, 0, 1500, 77)
	p.Record(ProfMigration, 1, 2500, 9)
	// Task spans: plain, stolen, delegated, and zero-duration.
	p.RecordSpan(TaskSpan{ID: 1, Home: 0, Worker: 0, Enqueue: 100, Start: 200, End: 900})
	p.RecordSpan(TaskSpan{ID: 2, Home: 0, Worker: 1, Enqueue: 100, Start: 300, End: 800, Steals: 1, Remote: true})
	p.RecordSpan(TaskSpan{ID: 3, Home: 1, Worker: 1, Enqueue: 500, Start: 1200, End: 1400, Delegated: true, Hops: 2})
	p.RecordSpan(TaskSpan{ID: 4, Home: 0, Worker: 2, Enqueue: 50, Start: 600, End: 600})
	// Registry history: one traced gauge sampled twice.
	reg := obs.NewRegistry(1)
	reg.SetEnabled(true)
	reg.EnableSampling(1000, 16)
	g := reg.Gauge("charm_test_util", "test", obs.Labels{"link": "ccd0"}, obs.Traced())
	g.Set(0, 3)
	if !reg.MaybeSample(1000) {
		t.Fatal("first MaybeSample must fire")
	}
	g.Set(0, 7)
	if !reg.MaybeSample(2500) {
		t.Fatal("second MaybeSample must fire")
	}
	p.AttachRegistry(reg)

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}

	// 3 profiler counters + 1 instant + 4 B/E pairs + 2 history counters.
	if want := 3 + 1 + 8 + 2; len(doc.TraceEvents) != want {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), want)
	}
	var b, e, c, inst int
	open := map[int]int{} // tid -> nesting depth
	lastTS := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.TS < lastTS {
			t.Fatalf("events not sorted by ts: %v after %v", ev.TS, lastTS)
		}
		lastTS = ev.TS
		switch ev.Phase {
		case "B":
			b++
			open[ev.TID]++
		case "E":
			e++
			open[ev.TID]--
			if open[ev.TID] < 0 {
				t.Fatalf("E without matching B on tid %d at ts %v", ev.TID, ev.TS)
			}
		case "C":
			c++
			if _, ok := ev.Args["value"]; !ok {
				t.Errorf("counter %q lacks args.value", ev.Name)
			}
		case "i":
			inst++
		}
	}
	if b != 4 || e != 4 || c != 5 || inst != 1 {
		t.Fatalf("phase counts B=%d E=%d C=%d i=%d, want 4/4/5/1", b, e, c, inst)
	}
	for tid, d := range open {
		if d != 0 {
			t.Errorf("tid %d has %d unclosed spans", tid, d)
		}
	}

	// Span names and args reflect provenance.
	byID := map[float64]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "B" {
			byID[ev.Args["id"]] = ev.Name
			switch ev.Args["id"] {
			case 2:
				if ev.Args["steals"] != 1 || ev.Args["remote_steal"] != 1 {
					t.Errorf("stolen span args = %v", ev.Args)
				}
			case 3:
				if ev.Args["hops"] != 2 {
					t.Errorf("delegated span args = %v", ev.Args)
				}
			}
		}
	}
	if byID[1] != "task" || byID[2] != "task-stolen" || byID[3] != "delegate" {
		t.Errorf("span names = %v", byID)
	}

	// The registry history shows up as pid-1 counter tracks with both
	// sampled values.
	var histVals []float64
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "C" && ev.PID == 1 {
			if ev.Name != `charm_test_util{link=ccd0}` {
				t.Errorf("history track name = %q", ev.Name)
			}
			histVals = append(histVals, ev.Args["value"])
		}
	}
	if len(histVals) != 2 || histVals[0] != 3 || histVals[1] != 7 {
		t.Errorf("history values = %v, want [3 7]", histVals)
	}

	// The zero-duration span is padded: its E strictly follows its B.
	var zb, ze float64
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "B" && ev.Args["id"] == 4 {
			zb = ev.TS
		}
		if ev.Phase == "E" && ev.TID == 2 {
			ze = ev.TS
		}
	}
	if ze <= zb {
		t.Errorf("zero-duration span not padded: B=%v E=%v", zb, ze)
	}
}

// TestRuntimeSpansAndMetrics drives a real workload and checks that the
// instrumentation layers light up end to end.
func TestRuntimeSpansAndMetrics(t *testing.T) {
	rt := newTestRT(t, 4)
	rt.Profiler().Enable(true)
	rt.EnableMetrics(true)
	const spawned = 32
	rt.Run(func(ctx *Ctx) {
		for i := 0; i < spawned; i++ {
			ctx.Spawn(func(c *Ctx) {
				c.Compute(5_000)
				c.Yield()
			})
		}
	})
	rt.Stop()

	spans := rt.Profiler().Spans()
	if len(spans) != spawned+1 {
		t.Fatalf("spans = %d, want %d", len(spans), spawned+1)
	}
	for _, s := range spans {
		if s.End < s.Start || s.Start < s.Enqueue {
			t.Fatalf("inconsistent span %+v", s)
		}
	}

	snap := rt.MetricsSnapshot()
	tasks := snap.Find("charm_tasks_total", nil)
	if tasks == nil || tasks.Value != spawned+1 {
		t.Fatalf("charm_tasks_total = %v, want %d", tasks, spawned+1)
	}
	lat := snap.Find("charm_task_latency_ns", nil)
	if lat == nil || lat.Hist == nil || lat.Hist.Count != spawned+1 {
		t.Fatalf("charm_task_latency_ns missing or short: %v", lat)
	}
	if sp := snap.Find("charm_task_spawns_total", nil); sp == nil || sp.Value != spawned {
		t.Fatalf("charm_task_spawns_total = %v, want %d", sp, spawned)
	}
	// The exec-time histogram must account at least the charged compute.
	exec := snap.Find("charm_task_exec_ns", nil)
	if exec == nil || exec.Hist == nil || exec.Hist.Sum < spawned*5_000 {
		t.Fatalf("charm_task_exec_ns too small: %v", exec)
	}
}

func TestProfilerDisabledRecordsNothing(t *testing.T) {
	p := NewProfiler()
	p.Record(ProfSpread, 0, 1, 1)
	if got := p.Samples(ProfSpread); len(got) != 0 {
		t.Errorf("disabled profiler recorded %d samples", len(got))
	}
	p.Enable(true)
	p.Record(ProfSpread, 0, 1, 1)
	p.Enable(false)
	p.Record(ProfSpread, 0, 2, 2)
	if got := p.Samples(ProfSpread); len(got) != 1 {
		t.Errorf("samples = %d, want 1", len(got))
	}
	p.Enable(true) // re-enabling clears
	if got := p.Samples(ProfSpread); len(got) != 0 {
		t.Errorf("re-enable must clear, got %d", len(got))
	}
}

func TestProfilerMeanValue(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	if p.MeanValue(ProfSpread) != 0 {
		t.Error("empty mean must be 0")
	}
	p.Record(ProfSpread, 0, 1, 2)
	p.Record(ProfSpread, 0, 2, 4)
	if got := p.MeanValue(ProfSpread); got != 3 {
		t.Errorf("mean = %f, want 3", got)
	}
}

func TestStealOrderVariants(t *testing.T) {
	rt := newTestRT(t, 8)
	w := rt.Worker(0)

	// The steal-order cache is worker-private: compute all three orders
	// on worker 0's own goroutine, then assert on the host.
	var seq, node, ch []int
	rt.AllDo(func(ctx *Ctx) {
		if ctx.Worker() != 0 {
			return
		}
		seq = append([]int(nil), SequentialStealOrder(w)...)
		node = append([]int(nil), NodeFirstStealOrder(w)...)
		ch = append([]int(nil), ChipletFirstStealOrder(w)...)
	})
	if len(seq) != 7 {
		t.Fatalf("sequential order has %d victims", len(seq))
	}
	for i, v := range seq {
		if v != (0+i+1)%8 {
			t.Errorf("sequential[%d] = %d", i, v)
		}
	}

	if len(node) != 7 {
		t.Fatalf("node-first order has %d victims", len(node))
	}
	topo := rt.M.Topo
	self := topo.NodeOfCore(w.Core())
	// All same-node victims must precede all remote-node victims.
	seenRemote := false
	for _, v := range node {
		remote := topo.NodeOfCore(rt.CoreOfWorker(v)) != self
		if seenRemote && !remote {
			t.Fatalf("node-first order interleaves nodes: %v", node)
		}
		seenRemote = seenRemote || remote
	}

	if len(ch) != 7 {
		t.Fatalf("chiplet-first order has %d victims", len(ch))
	}
	// Victims must be sorted by non-decreasing latency class.
	prev := topo.ClassOf(w.Core(), rt.CoreOfWorker(ch[0]))
	for _, v := range ch[1:] {
		c := topo.ClassOf(w.Core(), rt.CoreOfWorker(v))
		if c < prev {
			t.Fatalf("chiplet-first order not distance-sorted: %v", ch)
		}
		prev = c
	}
}
