package baselines

import (
	"charm/internal/core"
	"charm/internal/place"
	"charm/internal/topology"
)

// ringPolicy models RING (Meng & Tan): a NUMA-aware message-batching
// runtime. Workers are balanced across NUMA nodes and memory is allocated
// node-locally; within a node cores are picked without regard for chiplet
// boundaries, and stealing is node-first but chiplet-oblivious. RING never
// migrates threads after placement.
type ringPolicy struct{}

func (p *ringPolicy) Name() string { return "ring" }

func (p *ringPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return place.NodeBalancedCore(worker, t)
}

func (p *ringPolicy) OnTimer(w *core.Worker, elapsed int64) {}

func (p *ringPolicy) StealOrder(w *core.Worker) []int {
	return core.NodeFirstStealOrder(w)
}

// shoalPolicy models SHOAL (Kaestle et al.): smart array allocation and
// replication for NUMA machines with strictly sequential thread placement —
// thread 0 on core 0, thread 1 on core 1 (§5.4: with 16 cores it uses only
// 2 of 8 chiplets). Array replication is modeled by the workloads through
// ReplicatedAlloc; the policy itself never adapts.
type shoalPolicy struct{}

func (p *shoalPolicy) Name() string { return "shoal" }

func (p *shoalPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return place.CompactCore(worker, t)
}

func (p *shoalPolicy) OnTimer(w *core.Worker, elapsed int64) {}

func (p *shoalPolicy) StealOrder(w *core.Worker) []int {
	return core.SequentialStealOrder(w)
}

// asymSchedPolicy models AsymSched (Lepers et al.): a bandwidth-centric
// scheduler that keeps thread groups on NUMA nodes and migrates a thread
// toward the node serving most of its memory traffic. It is NUMA-granular:
// the destination core within a node is chiplet-oblivious.
type asymSchedPolicy struct{}

func (p *asymSchedPolicy) Name() string { return "asymsched" }

func (p *asymSchedPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return place.NodeBalancedCore(worker, t)
}

// OnTimer migrates the worker to the remote node when remote DRAM fills
// dominate local ones (2x hysteresis), AsymSched's bandwidth-locality move.
func (p *asymSchedPolicy) OnTimer(w *core.Worker, elapsed int64) {
	local, remote := dramFills(w)
	if remote <= 2*local || remote == 0 {
		return
	}
	t := w.Runtime().M.Topo
	if t.NumNodes() < 2 {
		return
	}
	// Move to the next node, keeping the node-local scatter position, and
	// take the worker's memory along (AsymSched migrates thread and
	// memory placement together).
	cur := t.NodeOfCore(w.Core())
	next := topology.NodeID((int(cur) + 1) % t.NumNodes())
	w.Migrate(place.WithinNodeCore(t, next, w.ID()/t.NumNodes()))
	w.RebindAllocs(next)
}

func (p *asymSchedPolicy) StealOrder(w *core.Worker) []int {
	return core.NodeFirstStealOrder(w)
}

// samPolicy models SAM (Srikanthan et al.): a contention-aware scheduler
// that co-locates threads with high coherence activity on one socket and
// spreads memory-bound threads across sockets. Decisions use IPC/coherence
// PMU heuristics at socket granularity; §5.3 notes these heuristics are
// poorly suited to chiplet designs, which emerges here because SAM's moves
// ignore chiplet boundaries entirely.
type samPolicy struct{}

func (p *samPolicy) Name() string { return "sam" }

func (p *samPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	return place.NodeBalancedCore(worker, t)
}

// OnTimer applies SAM's two rules: coherence-dominated workers consolidate
// onto socket 0; DRAM-dominated workers spread round-robin across sockets.
func (p *samPolicy) OnTimer(w *core.Worker, elapsed int64) {
	t := w.Runtime().M.Topo
	if t.Sockets < 2 {
		return
	}
	local, remote := dramFills(w)
	coh := coherenceFills(w)
	dram := local + remote
	switch {
	case coh > 2*dram:
		// Sharing-dominated: pull to socket 0 (chiplet-obliviously).
		if t.SocketOfCore(w.Core()) != 0 {
			w.Migrate(place.WithinNodeCore(t, 0, w.ID()))
		}
	case dram > 2*coh && dram > 0:
		// Bandwidth-dominated: spread across sockets by worker parity.
		want := topology.NodeID(w.ID() % t.NumNodes())
		if t.NodeOfCore(w.Core()) != want {
			w.Migrate(place.WithinNodeCore(t, want, w.ID()/t.NumNodes()))
		}
	}
}

func (p *samPolicy) StealOrder(w *core.Worker) []int {
	return core.NodeFirstStealOrder(w)
}

// osAsyncPolicy models std::async's OS scheduling: threads land on cores
// round-robin with no topology awareness at all, and the thread flood
// oversubscribes every core (occupancy-inflated costs).
type osAsyncPolicy struct{}

func (p *osAsyncPolicy) Name() string { return "os-async" }

func (p *osAsyncPolicy) InitialCore(worker, workers int, t *topology.Topology) topology.CoreID {
	// The OS spreads runnable threads over all cores; with a thread
	// flood, every core hosts several.
	return place.OversubscribedCore(worker, workers, osAsyncThreadFactor, t)
}

func (p *osAsyncPolicy) OnTimer(w *core.Worker, elapsed int64) {}

func (p *osAsyncPolicy) StealOrder(w *core.Worker) []int {
	return core.SequentialStealOrder(w)
}

// Task-assignment behavior: RING, AsymSched, SAM, and std::async hand tasks
// to whichever thread the balancer picks — no task-identity affinity, so
// the mapping churns across phases and cached working sets move between
// chiplets. SHOAL's array-static decomposition keeps task i on thread i.

// AssignWorker implements core.Policy.
func (p *ringPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return core.ChurnAssign(i, phase, workers)
}

// AssignWorker implements core.Policy.
func (p *shoalPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return core.StableAssign(i, phase, workers)
}

// AssignWorker implements core.Policy.
func (p *asymSchedPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return core.ChurnAssign(i, phase, workers)
}

// AssignWorker implements core.Policy.
func (p *samPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return core.ChurnAssign(i, phase, workers)
}

// AssignWorker implements core.Policy.
func (p *osAsyncPolicy) AssignWorker(i int, phase uint64, workers int) int {
	return core.ChurnAssign(i, phase, workers)
}
