package baselines

import (
	"testing"

	"charm/internal/core"
	"charm/internal/mem"
	"charm/internal/place"
	"charm/internal/sim"
	"charm/internal/topology"
)

func TestSystemPolicies(t *testing.T) {
	for _, s := range []System{CHARM, RING, SHOAL, AsymSched, SAM, OSAsync} {
		p := s.Policy()
		if p == nil || p.Name() == "" {
			t.Errorf("%s: bad policy", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown system must panic")
		}
	}()
	System("bogus").Policy()
}

func TestRingBalancesNodes(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	p := (&ringPolicy{})
	counts := map[topology.NodeID]int{}
	chiplets := map[topology.ChipletID]bool{}
	for w := 0; w < 16; w++ {
		c := p.InitialCore(w, 16, topo)
		counts[topo.NodeOfCore(c)]++
		chiplets[topo.ChipletOf(c)] = true
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Errorf("RING node balance = %v, want 8/8", counts)
	}
	// Chiplet-oblivious scatter: 16 workers land on many chiplets.
	if len(chiplets) < 8 {
		t.Errorf("RING used %d chiplets, expected scatter across >= 8", len(chiplets))
	}
}

func TestShoalSequential(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	p := &shoalPolicy{}
	for w := 0; w < 32; w++ {
		if c := p.InitialCore(w, 32, topo); c != topology.CoreID(w) {
			t.Errorf("SHOAL worker %d on core %d, want %d", w, c, w)
		}
	}
	// The paper's observation: 16 sequential workers occupy only 2 of 8
	// chiplets.
	chiplets := map[topology.ChipletID]bool{}
	for w := 0; w < 16; w++ {
		chiplets[topo.ChipletOf(p.InitialCore(w, 16, topo))] = true
	}
	if len(chiplets) != 2 {
		t.Errorf("SHOAL 16 workers on %d chiplets, want 2", len(chiplets))
	}
}

func TestPlacementsCollisionFree(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	for _, s := range []System{RING, SHOAL, AsymSched, SAM} {
		p := s.Policy()
		for _, workers := range []int{1, 8, 16, 64, 128} {
			seen := map[topology.CoreID]bool{}
			for w := 0; w < workers; w++ {
				c := p.InitialCore(w, workers, topo)
				if seen[c] {
					t.Errorf("%s workers=%d: core %d reused", s, workers, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestAsymSchedMigratesTowardTraffic(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, AsymSched, 2, 20_000)
	rt.Start()
	defer rt.Stop()
	// Workers are node-balanced: worker 1 starts on node 1. All data is
	// bound to node 0, so worker 1's remote fills dominate and AsymSched
	// should pull it to node 0.
	data := rt.AllocPolicy(1<<20, mem.Bind, 0)
	rt.AllDo(func(ctx *core.Ctx) {
		for i := 0; i < 30; i++ {
			ctx.Read(data, 1<<20)
			ctx.Yield()
		}
	})
	if got := topo.NodeOfCore(rt.CoreOfWorker(1)); got != 0 {
		t.Errorf("AsymSched left worker 1 on node %d, want 0 (traffic home)", got)
	}
}

func TestSAMSpreadsBandwidthBound(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, SAM, 4, 20_000)
	rt.Start()
	defer rt.Stop()
	// DRAM-bound private working sets: SAM keeps workers spread across
	// sockets by parity.
	rt.AllDo(func(ctx *core.Ctx) {
		priv := ctx.Alloc(1 << 20)
		for i := 0; i < 20; i++ {
			ctx.Read(priv, 1<<20)
			ctx.Yield()
		}
	})
	for w := 0; w < 4; w++ {
		want := topology.NodeID(w % 2)
		if got := topo.NodeOfCore(rt.CoreOfWorker(w)); got != want {
			t.Errorf("SAM worker %d on node %d, want %d", w, got, want)
		}
	}
}

func TestOSAsyncOversubscribes(t *testing.T) {
	topo := topology.Synthetic(2, 4) // 8 cores
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, OSAsync, 8, 1<<40)
	rt.Start()
	defer rt.Stop()
	if rt.Workers() != 8*osAsyncThreadFactor {
		t.Fatalf("workers = %d, want %d", rt.Workers(), 8*osAsyncThreadFactor)
	}
	// The thread flood timeshares cores: a fixed amount of parallel work
	// takes ~threadFactor times longer than on a clean runtime.
	st := rt.AllDo(func(ctx *core.Ctx) { ctx.Compute(10_000) })
	if st.Makespan < 10_000*osAsyncThreadFactor {
		t.Errorf("oversubscribed makespan = %d, want >= %d", st.Makespan, 10_000*osAsyncThreadFactor)
	}
}

func TestOSAsyncChargesThreadSpawn(t *testing.T) {
	topo := topology.Synthetic(2, 4)
	m := sim.New(sim.Config{Topo: topo})
	rt := NewRuntime(m, OSAsync, 8, 1<<40)
	rt.Start()
	defer rt.Stop()
	st := rt.ParallelFor(0, 64, 1, func(ctx *core.Ctx, i0, i1 int) {})
	// 64 empty tasks must still pay 64 thread spawns (possibly inflated
	// by occupancy).
	if st.Makespan < topo.Cost.ThreadSpawn {
		t.Errorf("makespan = %d, cheaper than one thread spawn %d", st.Makespan, topo.Cost.ThreadSpawn)
	}
}

func TestCharmVsRingOnSharedData(t *testing.T) {
	// Integration check of the paper's core claim at micro scale: on
	// read-write shared data, CHARM's socket-filling placement keeps
	// coherence ping-pong within one socket (near/far chiplet transfers),
	// while RING's NUMA-balanced scatter pays cross-socket transfers.
	topo := topology.SyntheticDual(4, 2) // L3 64 KiB/chiplet
	run := func(s System) int64 {
		m := sim.New(sim.Config{Topo: topo})
		rt := NewRuntime(m, s, 4, 50_000)
		rt.Start()
		defer rt.Stop()
		shared := rt.AllocPolicy(32<<10, mem.Bind, 0) // fits one L3
		var total int64
		for rep := 0; rep < 6; rep++ {
			st := rt.AllDo(func(ctx *core.Ctx) {
				for i := 0; i < 10; i++ {
					ctx.Read(shared, 32<<10)
					ctx.Write(shared, 32<<10)
					ctx.Yield()
				}
			})
			total = st.Makespan + total
		}
		return total
	}
	charm := run(CHARM)
	ring := run(RING)
	if charm >= ring {
		t.Errorf("CHARM (%d) must beat RING (%d) on read-write shared data", charm, ring)
	}
}

func TestNodeBalancedCoreScattersChiplets(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	// Consecutive same-node workers land on different chiplets.
	c0 := place.NodeBalancedCore(0, topo) // node 0, local 0
	c2 := place.NodeBalancedCore(2, topo) // node 0, local 1
	if topo.ChipletOf(c0) == topo.ChipletOf(c2) {
		t.Errorf("consecutive node-0 workers share chiplet %d", topo.ChipletOf(c0))
	}
	if topo.NodeOfCore(c0) != topo.NodeOfCore(c2) {
		t.Error("both should be on node 0")
	}
}

func TestOSAsyncInitialCoreFoldsOntoRequestedCores(t *testing.T) {
	topo := topology.AMDMilan7713x2()
	p := &osAsyncPolicy{}
	// 32 requested cores x factor threads: all threads land on cores 0-31.
	workers := 32 * osAsyncThreadFactor
	for w := 0; w < workers; w++ {
		c := p.InitialCore(w, workers, topo)
		if int(c) >= 32 {
			t.Fatalf("thread %d on core %d, want < 32", w, c)
		}
	}
	// Degenerate worker counts fall back to all cores.
	if c := p.InitialCore(1, 2, topo); int(c) >= topo.NumCores() {
		t.Errorf("fallback core %d out of range", c)
	}
}

func TestAssignWorkerBehaviors(t *testing.T) {
	// SHOAL keeps task->worker stable across phases; RING churns.
	shoal := &shoalPolicy{}
	ring := &ringPolicy{}
	if shoal.AssignWorker(5, 1, 8) != shoal.AssignWorker(5, 2, 8) {
		t.Error("SHOAL assignment must be phase-stable")
	}
	changed := false
	for phase := uint64(1); phase < 8; phase++ {
		if ring.AssignWorker(5, phase, 8) != ring.AssignWorker(5, phase+1, 8) {
			changed = true
		}
	}
	if !changed {
		t.Error("RING assignment never churned across phases")
	}
	for _, p := range []core.Policy{shoal, ring, &asymSchedPolicy{}, &samPolicy{}, &osAsyncPolicy{}} {
		for i := 0; i < 32; i++ {
			w := p.AssignWorker(i, 3, 8)
			if w < 0 || w >= 8 {
				t.Fatalf("%s: assignment %d out of range", p.Name(), w)
			}
		}
	}
}
