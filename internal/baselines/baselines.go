// Package baselines implements the four comparison systems of the paper's
// evaluation (§5.1) as placement/adaptation policies over the shared
// runtime engine, plus the std::async OS-thread baseline of §5.5:
//
//   - RING: NUMA-aware message-batching runtime — balances workers across
//     NUMA nodes and allocates node-locally, but is chiplet-oblivious.
//   - SHOAL: smart memory allocation/replication for NUMA — sequential
//     core assignment (task 0 -> core 0) plus array replication.
//   - AsymSched: bandwidth-centric NUMA scheduler — keeps thread groups
//     per node and migrates them to balance memory bandwidth.
//   - SAM: contention-aware scheduler — separates data-sharing threads
//     from memory-bound threads at socket granularity.
//
// All of them are NUMA-aware but chiplet-oblivious, the property the paper
// identifies as their shared limitation.
package baselines

import (
	"charm/internal/core"
	"charm/internal/pmu"
	"charm/internal/sim"
)

// System identifies a runtime system under evaluation.
type System string

// The systems compared throughout the evaluation.
const (
	CHARM     System = "charm"
	RING      System = "ring"
	SHOAL     System = "shoal"
	AsymSched System = "asymsched"
	SAM       System = "sam"
	OSAsync   System = "os-async"
)

// Policy returns the core.Policy implementing the system's placement and
// adaptation strategy.
func (s System) Policy() core.Policy {
	switch s {
	case CHARM:
		return core.NewCharmPolicy()
	case RING:
		return &ringPolicy{}
	case SHOAL:
		return &shoalPolicy{}
	case AsymSched:
		return &asymSchedPolicy{}
	case SAM:
		return &samPolicy{}
	case OSAsync:
		return &osAsyncPolicy{}
	default:
		panic("baselines: unknown system " + string(s))
	}
}

// NewRuntime builds a runtime configured the way the system would run on
// machine m with the given worker count. schedTimer parameterizes the
// adaptation interval shared by all adaptive systems. mods run on the
// assembled options before construction (fault plans, retry budgets,
// deterministic mode — knobs orthogonal to the system identity).
func NewRuntime(m *sim.Machine, s System, workers int, schedTimer int64, mods ...func(*core.Options)) *core.Runtime {
	opts := core.Options{
		Workers:        workers,
		Policy:         s.Policy(),
		SchedulerTimer: schedTimer,
	}
	if s == OSAsync {
		// std::async maps each task to an OS thread: thread spawn per
		// task, OS context switches, and a thread flood oversubscribing
		// the cores (§5.5: 641 threads on 32 cores).
		opts.Oversubscribe = true
		opts.Workers = workers * osAsyncThreadFactor
		opts.Overheads = core.TaskOverheads{
			Spawn:  m.Topo.Cost.ThreadSpawn,
			Switch: m.Topo.Cost.ThreadSwitch,
		}
	}
	for _, f := range mods {
		f(&opts)
	}
	return core.NewRuntime(m, opts)
}

// osAsyncThreadFactor models how many OS threads std::async keeps alive per
// core under a blocking fork/join workload.
const osAsyncThreadFactor = 4

// dramFillDelta reads the DRAM fill counters of a worker's current core.
func dramFills(w *core.Worker) (local, remote int64) {
	p := w.Runtime().M.PMU
	c := int(w.Core())
	return p.Read(c, pmu.FillDRAMLocal), p.Read(c, pmu.FillDRAMRemote)
}

// coherenceFills reads the cache-to-cache fill counters of a worker's core.
func coherenceFills(w *core.Worker) int64 {
	p := w.Runtime().M.PMU
	c := int(w.Core())
	return p.Read(c, pmu.FillL3RemoteNear) + p.Read(c, pmu.FillL3RemoteFar) +
		p.Read(c, pmu.FillL3RemoteSocket)
}
