// Package pmu simulates the performance-monitoring-unit counters CHARM
// reads on real hardware (ANY_DATA_CACHE_FILLS_FROM_SYSTEM on AMD,
// OFFCORE_RESPONSE on Intel). Every simulated core owns a set of counters;
// fills are classified by serving source, which lets the runtime
// distinguish on-chip (intra-CCX), on-die (inter-CCX) and remote
// (inter-NUMA) traffic exactly as §4.5 describes.
package pmu

import (
	"fmt"
	"sync/atomic"
)

// Event identifies one counter.
type Event uint8

const (
	// FillL2 counts accesses served by the core-private L2.
	FillL2 Event = iota
	// FillL3Local counts fills from the chiplet-local L3 (intra-CCX).
	FillL3Local
	// FillL3RemoteNear and FillL3RemoteFar count cache-to-cache fills from
	// another chiplet in the same NUMA node (on-die, inter-CCX).
	FillL3RemoteNear
	FillL3RemoteFar
	// FillL3RemoteSocket counts cache-to-cache fills across sockets.
	FillL3RemoteSocket
	// FillDRAMLocal / FillDRAMRemote count fills from main memory.
	FillDRAMLocal
	FillDRAMRemote
	// TaskRun counts tasks executed; TaskSteal counts successful steals;
	// StealRemoteChiplet counts steals that crossed a chiplet boundary.
	TaskRun
	TaskSteal
	StealRemoteChiplet
	// Migration counts worker core re-assignments (Alg. 2 enactments).
	Migration
	// CtxSwitch counts coroutine/thread context switches.
	CtxSwitch
	// BytesRead / BytesWritten account the application data volume moved
	// through the compute pipeline (the Fig. 11 "throughput" numerator).
	BytesRead
	BytesWritten
	// ComputeNS accumulates virtual ns of pure CPU work charged via
	// Ctx.Compute — the busy-time proxy the energy model (internal/power)
	// converts to dynamic compute power.
	ComputeNS

	numEvents
)

// NumEvents is the number of defined counters.
const NumEvents = int(numEvents)

var eventNames = [NumEvents]string{
	"fill.l2", "fill.l3_local", "fill.l3_remote_near", "fill.l3_remote_far",
	"fill.l3_remote_socket", "fill.dram_local", "fill.dram_remote",
	"task.run", "task.steal", "task.steal_remote_chiplet", "migration",
	"ctx_switch", "bytes.read", "bytes.written", "compute.ns",
}

// String returns the counter's name.
func (e Event) String() string {
	if int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// coreCounters is padded to a cache line multiple to avoid false sharing
// between adjacent cores' counters on the host machine.
type coreCounters struct {
	v [NumEvents]atomic.Int64
	_ [64 - (NumEvents*8)%64]byte
}

// PMU holds per-core counters. All methods are safe for concurrent use.
type PMU struct {
	cores []coreCounters
}

// New creates counters for n cores.
func New(n int) *PMU {
	return &PMU{cores: make([]coreCounters, n)}
}

// NumCores returns the number of cores the PMU tracks.
func (p *PMU) NumCores() int { return len(p.cores) }

// Add increments core's counter for e by n.
func (p *PMU) Add(core int, e Event, n int64) {
	p.cores[core].v[e].Add(n)
}

// Read returns core's counter for e.
func (p *PMU) Read(core int, e Event) int64 {
	return p.cores[core].v[e].Load()
}

// Total sums a counter over all cores.
func (p *PMU) Total(e Event) int64 {
	var s int64
	for i := range p.cores {
		s += p.cores[i].v[e].Load()
	}
	return s
}

// FillsFromSystem returns the value of the ANY_DATA_CACHE_FILLS_FROM_SYSTEM
// analog for a core: every fill served from beyond the local chiplet
// (remote chiplet caches and DRAM). This is the event counter consumed by
// Alg. 1's getEventCounter().
func (p *PMU) FillsFromSystem(core int) int64 {
	return p.Filtered(core, MaskFromSystem)
}

// Snapshot captures all counters of all cores.
type Snapshot struct {
	Counts [][NumEvents]int64
}

// Snapshot returns a copy of every counter.
func (p *PMU) Snapshot() Snapshot {
	s := Snapshot{Counts: make([][NumEvents]int64, len(p.cores))}
	for i := range p.cores {
		for e := 0; e < NumEvents; e++ {
			s.Counts[i][e] = p.cores[i].v[e].Load()
		}
	}
	return s
}

// Total sums a counter across the snapshot.
func (s Snapshot) Total(e Event) int64 {
	var t int64
	for i := range s.Counts {
		t += s.Counts[i][e]
	}
	return t
}

// Delta returns s - old, counter-wise. Panics if core counts differ.
func (s Snapshot) Delta(old Snapshot) Snapshot {
	if len(s.Counts) != len(old.Counts) {
		panic("pmu: snapshot size mismatch")
	}
	d := Snapshot{Counts: make([][NumEvents]int64, len(s.Counts))}
	for i := range s.Counts {
		for e := 0; e < NumEvents; e++ {
			d.Counts[i][e] = s.Counts[i][e] - old.Counts[i][e]
		}
	}
	return d
}

// Reset zeroes every counter.
func (p *PMU) Reset() {
	for i := range p.cores {
		for e := 0; e < NumEvents; e++ {
			p.cores[i].v[e].Store(0)
		}
	}
}
