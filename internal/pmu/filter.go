package pmu

// Event filter masks, modeling the OFFCORE_RESPONSE-style configuration
// §4.5 describes for Intel systems: a mask selects which fill sources a
// derived counter aggregates (LLC hits, DRAM responses from local or remote
// sources), letting the runtime distinguish on-chip, on-die and remote
// traffic from the same underlying counters.

// SourceMask selects a set of fill sources.
type SourceMask uint8

// Fill-source mask bits.
const (
	SrcL2 SourceMask = 1 << iota
	SrcL3Local
	SrcL3RemoteNear
	SrcL3RemoteFar
	SrcL3RemoteSocket
	SrcDRAMLocal
	SrcDRAMRemote
)

// Predefined masks matching the paper's counter configurations.
const (
	// MaskLLCHit selects fills served by any L3 (the LLC-hit filter).
	MaskLLCHit = SrcL3Local | SrcL3RemoteNear | SrcL3RemoteFar | SrcL3RemoteSocket
	// MaskLLCHitLocal selects fills served by the local chiplet's L3.
	MaskLLCHitLocal = SrcL3Local
	// MaskLLCHitRemote selects cache-to-cache fills from other chiplets.
	MaskLLCHitRemote = SrcL3RemoteNear | SrcL3RemoteFar | SrcL3RemoteSocket
	// MaskDRAM selects fills from main memory, local and remote.
	MaskDRAM = SrcDRAMLocal | SrcDRAMRemote
	// MaskDRAMLocal / MaskDRAMRemote split DRAM responses by home node.
	MaskDRAMLocal  = SrcDRAMLocal
	MaskDRAMRemote = SrcDRAMRemote
	// MaskFromSystem is ANY_DATA_CACHE_FILLS_FROM_SYSTEM: everything
	// served from beyond the local chiplet (Alg. 1's event counter).
	MaskFromSystem = MaskLLCHitRemote | MaskDRAM
	// MaskOnDie selects inter-CCX fills within the socket (the paper's
	// "on-die" class).
	MaskOnDie = SrcL3RemoteNear | SrcL3RemoteFar
)

// maskEvents maps mask bits to their counter events.
var maskEvents = [...]struct {
	bit SourceMask
	ev  Event
}{
	{SrcL2, FillL2},
	{SrcL3Local, FillL3Local},
	{SrcL3RemoteNear, FillL3RemoteNear},
	{SrcL3RemoteFar, FillL3RemoteFar},
	{SrcL3RemoteSocket, FillL3RemoteSocket},
	{SrcDRAMLocal, FillDRAMLocal},
	{SrcDRAMRemote, FillDRAMRemote},
}

// Filtered returns the sum of core's fill counters selected by mask.
func (p *PMU) Filtered(core int, mask SourceMask) int64 {
	var s int64
	c := &p.cores[core]
	for _, me := range maskEvents {
		if mask&me.bit != 0 {
			s += c.v[me.ev].Load()
		}
	}
	return s
}

// FilteredTotal sums a filtered counter over all cores.
func (p *PMU) FilteredTotal(mask SourceMask) int64 {
	var s int64
	for core := range p.cores {
		s += p.Filtered(core, mask)
	}
	return s
}
