package pmu

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAddRead(t *testing.T) {
	p := New(4)
	p.Add(2, FillL3Local, 5)
	p.Add(2, FillL3Local, 3)
	if got := p.Read(2, FillL3Local); got != 8 {
		t.Errorf("Read = %d, want 8", got)
	}
	if got := p.Read(1, FillL3Local); got != 0 {
		t.Errorf("other core = %d, want 0", got)
	}
	if p.NumCores() != 4 {
		t.Errorf("NumCores = %d, want 4", p.NumCores())
	}
}

func TestTotal(t *testing.T) {
	p := New(3)
	p.Add(0, TaskRun, 1)
	p.Add(1, TaskRun, 2)
	p.Add(2, TaskRun, 3)
	if got := p.Total(TaskRun); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
}

func TestFillsFromSystem(t *testing.T) {
	p := New(1)
	p.Add(0, FillL2, 100)     // not from system
	p.Add(0, FillL3Local, 50) // not from system
	p.Add(0, FillL3RemoteNear, 1)
	p.Add(0, FillL3RemoteFar, 2)
	p.Add(0, FillL3RemoteSocket, 4)
	p.Add(0, FillDRAMLocal, 8)
	p.Add(0, FillDRAMRemote, 16)
	if got := p.FillsFromSystem(0); got != 31 {
		t.Errorf("FillsFromSystem = %d, want 31", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	p := New(2)
	p.Add(0, Migration, 2)
	s1 := p.Snapshot()
	p.Add(0, Migration, 3)
	p.Add(1, CtxSwitch, 7)
	s2 := p.Snapshot()
	d := s2.Delta(s1)
	if got := d.Counts[0][Migration]; got != 3 {
		t.Errorf("delta migration = %d, want 3", got)
	}
	if got := d.Counts[1][CtxSwitch]; got != 7 {
		t.Errorf("delta ctxswitch = %d, want 7", got)
	}
	if got := d.Total(Migration); got != 3 {
		t.Errorf("delta total = %d, want 3", got)
	}
}

func TestDeltaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	a := New(1).Snapshot()
	b := New(2).Snapshot()
	b.Delta(a)
}

func TestReset(t *testing.T) {
	p := New(2)
	p.Add(0, TaskSteal, 9)
	p.Reset()
	if got := p.Total(TaskSteal); got != 0 {
		t.Errorf("after Reset, Total = %d", got)
	}
}

func TestEventString(t *testing.T) {
	if FillL2.String() != "fill.l2" {
		t.Errorf("FillL2 = %q", FillL2.String())
	}
	if Event(200).String() != "Event(200)" {
		t.Errorf("unknown = %q", Event(200).String())
	}
	seen := map[string]bool{}
	for e := Event(0); int(e) < NumEvents; e++ {
		n := e.String()
		if n == "" || seen[n] {
			t.Errorf("event %d: empty or duplicate name %q", e, n)
		}
		seen[n] = true
	}
}

func TestConcurrentAdds(t *testing.T) {
	p := New(8)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Add(c, BytesRead, 1)
			}
		}(c)
	}
	wg.Wait()
	if got := p.Total(BytesRead); got != 8000 {
		t.Errorf("Total = %d, want 8000", got)
	}
}

func TestSnapshotTotalProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		p := New(4)
		var want int64
		for i, a := range adds {
			p.Add(i%4, TaskRun, int64(a))
			want += int64(a)
		}
		return p.Snapshot().Total(TaskRun) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilteredMasks(t *testing.T) {
	p := New(2)
	p.Add(0, FillL2, 1)
	p.Add(0, FillL3Local, 2)
	p.Add(0, FillL3RemoteNear, 4)
	p.Add(0, FillL3RemoteFar, 8)
	p.Add(0, FillL3RemoteSocket, 16)
	p.Add(0, FillDRAMLocal, 32)
	p.Add(0, FillDRAMRemote, 64)
	cases := []struct {
		name string
		mask SourceMask
		want int64
	}{
		{"llc-hit", MaskLLCHit, 2 + 4 + 8 + 16},
		{"llc-local", MaskLLCHitLocal, 2},
		{"llc-remote", MaskLLCHitRemote, 4 + 8 + 16},
		{"dram", MaskDRAM, 32 + 64},
		{"dram-local", MaskDRAMLocal, 32},
		{"dram-remote", MaskDRAMRemote, 64},
		{"from-system", MaskFromSystem, 4 + 8 + 16 + 32 + 64},
		{"on-die", MaskOnDie, 4 + 8},
		{"empty", 0, 0},
	}
	for _, c := range cases {
		if got := p.Filtered(0, c.mask); got != c.want {
			t.Errorf("%s: Filtered = %d, want %d", c.name, got, c.want)
		}
	}
	// FilteredTotal sums cores.
	p.Add(1, FillDRAMLocal, 100)
	if got := p.FilteredTotal(MaskDRAM); got != 32+64+100 {
		t.Errorf("FilteredTotal = %d", got)
	}
	// FillsFromSystem must match the mask.
	if p.FillsFromSystem(0) != p.Filtered(0, MaskFromSystem) {
		t.Error("FillsFromSystem diverges from MaskFromSystem")
	}
}

func TestMaskBitsDisjoint(t *testing.T) {
	masks := []SourceMask{SrcL2, SrcL3Local, SrcL3RemoteNear, SrcL3RemoteFar,
		SrcL3RemoteSocket, SrcDRAMLocal, SrcDRAMRemote}
	var all SourceMask
	for _, m := range masks {
		if all&m != 0 {
			t.Fatalf("mask bit %b overlaps", m)
		}
		all |= m
	}
}
