package topology

import (
	"fmt"
	"sort"
	"strings"
)

// The topo-spec grammar describes a whole machine in one short string:
//
//	fabric:RxC[,fast=N][,eff=N][,accel=N][,cores=N][,sockets=N]
//
// fabric names the interconnect (star, mesh, ring, crossbar, flatfly) and
// RxC arranges each socket's chiplets in a rows x cols grid. The kind
// counts split the machine's chiplets into fast / efficient / accelerator
// dies (they must sum to the chiplet total; omitting all of them means
// homogeneous all-fast). cores is cores per chiplet (default 2), sockets
// the socket count (default 1). A spec may also be one of the preset
// names in SpecPresets, e.g. "het-mesh".

// specFabrics lists the fabric names the grammar accepts. The fabric
// package asserts this stays in sync with its Kind enum.
var specFabrics = []string{"star", "mesh", "ring", "crossbar", "flatfly"}

// SpecFabrics returns the fabric names the topo-spec grammar accepts.
func SpecFabrics() []string {
	out := make([]string, len(specFabrics))
	copy(out, specFabrics)
	return out
}

// SpecPresets maps preset names (accepted anywhere a spec string is) to
// their canonical spec expansion.
var SpecPresets = map[string]string{
	// het-mesh is the reference heterogeneous machine of the topology
	// experiments: a 4x2 mesh with 2 fast, 4 efficient, 2 accelerator dies.
	"het-mesh": "mesh:4x2,fast=2,eff=4,accel=2",
	// het-ring is the same chiplet mix on the most congestion-prone fabric.
	"het-ring": "ring:4x2,fast=2,eff=4,accel=2",
	// big-little is a phone-style split with no accelerators.
	"big-little": "mesh:4x4,fast=8,eff=8",
	// accel-pod is a small inference pod: direct links, half accelerators.
	"accel-pod": "crossbar:2x2,fast=2,accel=2",
	// hub is today's Infinity-Fabric-style default at experiment scale.
	"hub": "star:4x2",
}

// PresetNames returns the spec preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(SpecPresets))
	for n := range SpecPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec-grammar bounds: large enough for any experiment, small enough that
// a fuzzer cannot make ParseTopoSpec allocate a monster machine.
const (
	specMaxChiplets = 1024
	specMaxCores    = 256
	specMaxSockets  = 8
	specDefCores    = 2
)

// TopoSpec is a parsed topo-spec string. The zero counts Fast=Eff=Accel=0
// mean a homogeneous all-fast machine.
type TopoSpec struct {
	Fabric  string // star | mesh | ring | crossbar | flatfly
	Rows    int    // chiplet grid rows per socket
	Cols    int    // chiplet grid cols per socket
	Fast    int    // fast chiplets, machine-wide
	Eff     int    // efficient chiplets, machine-wide
	Accel   int    // accelerator chiplets, machine-wide
	Cores   int    // cores per chiplet
	Sockets int
}

// ParseTopoSpec parses a spec string (or a SpecPresets name) into its
// normalized form. String() of the result re-parses to an equal TopoSpec.
func ParseTopoSpec(s string) (TopoSpec, error) {
	if alias, ok := SpecPresets[s]; ok {
		s = alias
	}
	var sp TopoSpec
	head, rest, hasRest := strings.Cut(s, ",")
	fab, grid, ok := strings.Cut(head, ":")
	if !ok {
		return sp, fmt.Errorf("topo spec %q: want fabric:RxC[,key=val...]", s)
	}
	if !validFabric(fab) {
		return sp, fmt.Errorf("topo spec %q: unknown fabric %q (want %s)", s, fab, strings.Join(specFabrics, "|"))
	}
	sp.Fabric = fab
	r, c, ok := strings.Cut(grid, "x")
	if !ok {
		return sp, fmt.Errorf("topo spec %q: grid %q must be RxC", s, grid)
	}
	var err error
	if sp.Rows, err = specInt(r, 1, specMaxChiplets); err != nil {
		return sp, fmt.Errorf("topo spec %q: rows: %v", s, err)
	}
	if sp.Cols, err = specInt(c, 1, specMaxChiplets); err != nil {
		return sp, fmt.Errorf("topo spec %q: cols: %v", s, err)
	}
	sp.Cores, sp.Sockets = specDefCores, 1
	if hasRest {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return sp, fmt.Errorf("topo spec %q: %q must be key=val", s, kv)
			}
			var dst *int
			max := specMaxChiplets
			switch key {
			case "fast":
				dst = &sp.Fast
			case "eff":
				dst = &sp.Eff
			case "accel":
				dst = &sp.Accel
			case "cores":
				dst, max = &sp.Cores, specMaxCores
			case "sockets":
				dst, max = &sp.Sockets, specMaxSockets
			default:
				return sp, fmt.Errorf("topo spec %q: unknown key %q", s, key)
			}
			lo := 0
			if key == "cores" || key == "sockets" {
				lo = 1
			}
			if *dst, err = specInt(val, lo, max); err != nil {
				return sp, fmt.Errorf("topo spec %q: %s: %v", s, key, err)
			}
		}
	}
	return sp, sp.check()
}

func validFabric(name string) bool {
	for _, f := range specFabrics {
		if f == name {
			return true
		}
	}
	return false
}

func specInt(s string, lo, hi int) (int, error) {
	// Hand-rolled instead of strconv.Atoi so that only canonical decimal
	// forms parse ("+4" and "04" would break String() round-tripping).
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if len(s) > 1 && s[0] == '0' {
		return 0, fmt.Errorf("non-canonical number %q", s)
	}
	n := 0
	for _, d := range []byte(s) {
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
		n = n*10 + int(d-'0')
		if n > hi {
			return 0, fmt.Errorf("%q exceeds limit %d", s, hi)
		}
	}
	if n < lo {
		return 0, fmt.Errorf("%d below minimum %d", n, lo)
	}
	return n, nil
}

// check validates cross-field invariants after parsing.
func (sp TopoSpec) check() error {
	total := sp.Rows * sp.Cols * sp.Sockets
	if total > specMaxChiplets {
		return fmt.Errorf("topo spec %v: %d chiplets exceeds limit %d", sp, total, specMaxChiplets)
	}
	if n := sp.Fast + sp.Eff + sp.Accel; n != 0 && n != total {
		return fmt.Errorf("topo spec %v: kind counts sum to %d, want %d chiplets", sp, n, total)
	}
	return nil
}

// String renders the canonical spec form: defaults are omitted, kind
// counts appear (nonzero only) in fast,eff,accel order. ParseTopoSpec of
// the result yields an equal TopoSpec.
func (sp TopoSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%dx%d", sp.Fabric, sp.Rows, sp.Cols)
	for _, kv := range []struct {
		key string
		n   int
	}{{"fast", sp.Fast}, {"eff", sp.Eff}, {"accel", sp.Accel}} {
		if kv.n > 0 {
			fmt.Fprintf(&b, ",%s=%d", kv.key, kv.n)
		}
	}
	if sp.Cores != specDefCores {
		fmt.Fprintf(&b, ",cores=%d", sp.Cores)
	}
	if sp.Sockets != 1 {
		fmt.Fprintf(&b, ",sockets=%d", sp.Sockets)
	}
	return b.String()
}

// Build materializes the spec as a Topology: the Synthetic cost model
// with the spec's shape, per-socket chiplet grid, and kind assignment
// (fast, then efficient, then accelerator, in chiplet ID order).
func (sp TopoSpec) Build() (*Topology, error) {
	if err := sp.check(); err != nil {
		return nil, err
	}
	t := Synthetic(sp.Rows*sp.Cols, sp.Cores)
	t.Name = "spec/" + sp.String()
	t.Sockets = sp.Sockets
	t.GridRows, t.GridCols = sp.Rows, sp.Cols
	if sp.Fast+sp.Eff+sp.Accel > 0 {
		t.Kinds = make([]ChipletKind, 0, t.NumChiplets())
		for _, kc := range []struct {
			k ChipletKind
			n int
		}{{KindFast, sp.Fast}, {KindEfficient, sp.Eff}, {KindAccel, sp.Accel}} {
			for i := 0; i < kc.n; i++ {
				t.Kinds = append(t.Kinds, kc.k)
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
