package topology

import (
	"strings"
	"testing"
)

func TestParseTopoSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want TopoSpec
	}{
		{"star:4x2", TopoSpec{Fabric: "star", Rows: 4, Cols: 2, Cores: 2, Sockets: 1}},
		{"mesh:4x2,fast=2,eff=4,accel=2",
			TopoSpec{Fabric: "mesh", Rows: 4, Cols: 2, Fast: 2, Eff: 4, Accel: 2, Cores: 2, Sockets: 1}},
		{"ring:2x2,cores=4,sockets=2",
			TopoSpec{Fabric: "ring", Rows: 2, Cols: 2, Cores: 4, Sockets: 2}},
		{"crossbar:1x4,fast=2,accel=2,cores=1",
			TopoSpec{Fabric: "crossbar", Rows: 1, Cols: 4, Fast: 2, Accel: 2, Cores: 1, Sockets: 1}},
		{"flatfly:3x3,eff=9", TopoSpec{Fabric: "flatfly", Rows: 3, Cols: 3, Eff: 9, Cores: 2, Sockets: 1}},
	}
	for _, tc := range cases {
		sp, err := ParseTopoSpec(tc.in)
		if err != nil {
			t.Errorf("ParseTopoSpec(%q): %v", tc.in, err)
			continue
		}
		if sp != tc.want {
			t.Errorf("ParseTopoSpec(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
		if got := sp.String(); got != tc.in {
			t.Errorf("String() = %q, want the canonical input %q", got, tc.in)
		}
		again, err := ParseTopoSpec(sp.String())
		if err != nil || again != sp {
			t.Errorf("round-trip of %q: %+v, %v", tc.in, again, err)
		}
	}
}

func TestParseTopoSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"mesh",                  // no grid
		"mesh:4",                // grid not RxC
		"hypercube:2x2",         // unknown fabric
		"mesh:0x2",              // zero rows
		"mesh:4x2,fast=1",       // kind counts don't sum to 8
		"mesh:4x2,turbo=1",      // unknown key
		"mesh:4x2,fast",         // not key=val
		"mesh:04x2",             // non-canonical number
		"mesh:+4x2",             // signed number
		"mesh:4x2,cores=0",      // below minimum
		"mesh:4x2,sockets=9",    // above socket limit
		"mesh:1024x2,sockets=2", // chiplet total over limit
		"mesh:4x2,cores=999999", // cores over limit
	}
	for _, s := range bad {
		if _, err := ParseTopoSpec(s); err == nil {
			t.Errorf("ParseTopoSpec(%q) accepted", s)
		}
	}
}

func TestSpecPresetsParseAndBuild(t *testing.T) {
	for _, name := range PresetNames() {
		sp, err := ParseTopoSpec(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if sp.String() != SpecPresets[name] {
			t.Errorf("preset %q: canonical form %q, table says %q", name, sp.String(), SpecPresets[name])
		}
		topo, err := sp.Build()
		if err != nil {
			t.Errorf("preset %q: Build: %v", name, err)
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("preset %q: built topology invalid: %v", name, err)
		}
	}
}

func TestSpecBuildKindAssignment(t *testing.T) {
	sp, err := ParseTopoSpec("mesh:4x2,fast=2,eff=4,accel=2")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Heterogeneous() {
		t.Fatal("heterogeneous spec built a homogeneous topology")
	}
	wantKinds := []ChipletKind{
		KindFast, KindFast,
		KindEfficient, KindEfficient, KindEfficient, KindEfficient,
		KindAccel, KindAccel,
	}
	for ch, want := range wantKinds {
		if got := topo.KindOf(ChipletID(ch)); got != want {
			t.Errorf("chiplet %d: kind %v, want %v", ch, got, want)
		}
	}
	if topo.GridRows != 4 || topo.GridCols != 2 {
		t.Errorf("grid %dx%d, want 4x2", topo.GridRows, topo.GridCols)
	}
	if topo.KindCount(KindEfficient) != 4 {
		t.Errorf("KindCount(eff) = %d, want 4", topo.KindCount(KindEfficient))
	}
}

func TestKindTraitsSane(t *testing.T) {
	fast, eff, accel := KindFast.Traits(), KindEfficient.Traits(), KindAccel.Traits()
	if fast != (KindTraits{1000, 1000, 1000}) {
		t.Errorf("fast traits %+v must be the identity", fast)
	}
	if eff.ComputeMilli <= fast.ComputeMilli || eff.EnergyMilli >= fast.EnergyMilli {
		t.Errorf("efficient cores must be slower and cheaper: %+v", eff)
	}
	if accel.ComputeMilli >= fast.ComputeMilli || accel.EnergyMilli <= fast.EnergyMilli {
		t.Errorf("accelerators must be faster and hungrier: %+v", accel)
	}
	// A homogeneous topology reports identity multipliers everywhere.
	topo := Synthetic(4, 2)
	if topo.Heterogeneous() {
		t.Fatal("Synthetic must be homogeneous")
	}
	if topo.ComputeMilli(0) != 1000 || topo.AccessMilli(0) != 1000 || topo.EnergyMilli(0) != 1000 {
		t.Error("homogeneous multipliers must all be 1000")
	}
	if topo.KindOf(0) != KindFast {
		t.Errorf("homogeneous KindOf = %v, want fast", topo.KindOf(0))
	}
}

// FuzzParseTopoSpec: parsing must never panic, and any spec that parses
// must round-trip through its canonical String() form to an equal value.
func FuzzParseTopoSpec(f *testing.F) {
	f.Add("star:4x2")
	f.Add("mesh:4x2,fast=2,eff=4,accel=2")
	f.Add("ring:2x2,cores=4,sockets=2")
	f.Add("flatfly:3x3,eff=9")
	f.Add("het-mesh")
	f.Add("mesh:04x2")
	f.Add("crossbar:1x1,fast=0")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseTopoSpec(s)
		if err != nil {
			return
		}
		canon := sp.String()
		again, err := ParseTopoSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again != sp {
			t.Fatalf("round-trip mismatch: %q → %+v, %q → %+v", s, sp, canon, again)
		}
		if strings.Contains(canon, " ") {
			t.Fatalf("canonical form %q contains whitespace", canon)
		}
	})
}
