// Package topology models the physical layout of chiplet-based CPUs:
// sockets, NUMA nodes, chiplets (CCDs/CCXs), cores, the cache geometry
// attached to each level, and the latency classes between cores.
//
// The model follows the machines used in the CHARM paper (EuroSys'26):
// a dual-socket AMD EPYC Milan 7713 and a dual-socket Intel Xeon Platinum
// 8488C. Synthetic topologies are provided for tests.
package topology

import (
	"fmt"
	"strings"
)

// CoreID identifies a physical core, numbered densely from 0 across the
// whole machine: socket-major, then chiplet, then core-within-chiplet.
type CoreID int

// ChipletID identifies a chiplet (CCD), numbered densely across the machine.
type ChipletID int

// NodeID identifies a NUMA node, numbered densely across the machine.
type NodeID int

// SocketID identifies a CPU socket.
type SocketID int

// LatencyClass classifies the relative position of two cores; each class
// corresponds to one step in the core-to-core latency distribution of
// Fig. 3 in the paper.
type LatencyClass uint8

const (
	// SameCore is a degenerate class (a core communicating with itself).
	SameCore LatencyClass = iota
	// IntraChiplet covers cores sharing an L3 slice (~25 ns on Milan).
	IntraChiplet
	// InterChipletNear covers cores on different chiplets in the same
	// NUMA node whose CCDs share an I/O-die quadrant (~85 ns).
	InterChipletNear
	// InterChipletFar covers cores on different chiplets in the same NUMA
	// node across I/O-die quadrants (~155 ns).
	InterChipletFar
	// InterSocket covers cores on different sockets (>200 ns).
	InterSocket
)

// String returns the canonical name of the latency class.
func (c LatencyClass) String() string {
	switch c {
	case SameCore:
		return "same-core"
	case IntraChiplet:
		return "intra-chiplet"
	case InterChipletNear:
		return "inter-chiplet-near"
	case InterChipletFar:
		return "inter-chiplet-far"
	case InterSocket:
		return "inter-socket"
	default:
		return fmt.Sprintf("LatencyClass(%d)", uint8(c))
	}
}

// CostModel holds the latency (in nanoseconds) and bandwidth parameters of
// a machine. Latencies are per cache-line (64 B) service times observed by
// a load; bandwidths are bytes per nanosecond (= GB/s / 1.0).
type CostModel struct {
	// L1Hit is charged for accesses served by the (implicit) L1/L2 front
	// end when the line is resident in the core-private hierarchy.
	L1Hit int64
	// L2Hit is charged when the private L2 holds the line.
	L2Hit int64
	// L3LocalHit is charged when the chiplet-local L3 slice holds the line.
	L3LocalHit int64
	// L3RemoteNearHit / L3RemoteFarHit are cache-to-cache transfers from
	// another chiplet in the same NUMA node (near/far quadrant).
	L3RemoteNearHit int64
	L3RemoteFarHit  int64
	// L3RemoteSocketHit is a cache-to-cache transfer across sockets.
	L3RemoteSocketHit int64
	// DRAMLocal / DRAMRemote are row-buffer-miss DRAM latencies for the
	// local and the remote NUMA node.
	DRAMLocal  int64
	DRAMRemote int64

	// CAS ping-pong latencies per class, used for the Fig. 3 CDF.
	CASIntraChiplet int64
	CASInterNear    int64
	CASInterFar     int64
	CASInterSocket  int64

	// ChannelBandwidth is the sustainable bandwidth of one memory channel
	// in bytes/ns. FabricBandwidth is the per-chiplet link to the I/O die;
	// SocketBandwidth the inter-socket link (per direction).
	ChannelBandwidth float64
	FabricBandwidth  float64
	SocketBandwidth  float64

	// CoroutineSwitch and ThreadSwitch are the context-switch costs of a
	// user-level coroutine switch and an OS thread switch respectively.
	CoroutineSwitch int64
	ThreadSwitch    int64
	// ThreadSpawn is the cost of creating an OS thread (std::async model).
	ThreadSpawn int64
	// StealPenalty is charged to a worker for one (successful or not)
	// steal probe of a victim deque, before fabric distance costs.
	StealPenalty int64
}

// Topology describes one machine. All counts are per containing unit.
type Topology struct {
	Name string

	Sockets         int
	NodesPerSocket  int // NUMA nodes per socket (NPS1 => 1)
	ChipletsPerNode int // CCDs per NUMA node
	CoresPerChiplet int

	// QuadrantChiplets is the number of chiplets sharing an I/O-die
	// quadrant; chiplet pairs within a quadrant use the "near" latency.
	QuadrantChiplets int

	// SMTWays is the hardware threads per physical core (1 = no SMT).
	// The simulator's scheduling unit stays the physical core: co-locating
	// two workers on one core shares its private L2 and inflates their
	// costs (the contention §4.6 says CHARM avoids by treating the
	// physical core as the smallest scheduling unit).
	SMTWays int

	CacheLine    int64 // bytes, typically 64
	L2PerCore    int64 // bytes
	L3PerChiplet int64 // bytes
	L3Ways       int
	L2Ways       int

	ChannelsPerNode int // memory channels per NUMA node

	// Kinds assigns a ChipletKind to every chiplet, dense by ChipletID
	// across the machine. Empty means homogeneous: every chiplet is
	// KindFast and all kind multipliers are exactly 1000 (no arithmetic
	// change anywhere).
	Kinds []ChipletKind

	// GridRows x GridCols arranges each socket's chiplets in a grid for
	// grid-routed fabrics (mesh, flattened butterfly). Zero means the
	// fabric picks a near-square factorization itself.
	GridRows int
	GridCols int

	Cost CostModel
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (t *Topology) Validate() error {
	switch {
	case t.Sockets <= 0:
		return fmt.Errorf("topology %q: Sockets must be positive, got %d", t.Name, t.Sockets)
	case t.NodesPerSocket <= 0:
		return fmt.Errorf("topology %q: NodesPerSocket must be positive, got %d", t.Name, t.NodesPerSocket)
	case t.ChipletsPerNode <= 0:
		return fmt.Errorf("topology %q: ChipletsPerNode must be positive, got %d", t.Name, t.ChipletsPerNode)
	case t.CoresPerChiplet <= 0:
		return fmt.Errorf("topology %q: CoresPerChiplet must be positive, got %d", t.Name, t.CoresPerChiplet)
	case t.QuadrantChiplets <= 0:
		return fmt.Errorf("topology %q: QuadrantChiplets must be positive, got %d", t.Name, t.QuadrantChiplets)
	case t.CacheLine <= 0 || t.CacheLine&(t.CacheLine-1) != 0:
		return fmt.Errorf("topology %q: CacheLine must be a positive power of two, got %d", t.Name, t.CacheLine)
	case t.L2PerCore < 0 || t.L3PerChiplet <= 0:
		return fmt.Errorf("topology %q: cache sizes must be positive (L2=%d L3=%d)", t.Name, t.L2PerCore, t.L3PerChiplet)
	case t.L3Ways <= 0 || t.L2Ways <= 0:
		return fmt.Errorf("topology %q: associativities must be positive (L2Ways=%d L3Ways=%d)", t.Name, t.L2Ways, t.L3Ways)
	case t.ChannelsPerNode <= 0:
		return fmt.Errorf("topology %q: ChannelsPerNode must be positive, got %d", t.Name, t.ChannelsPerNode)
	case t.SMTWays < 0:
		return fmt.Errorf("topology %q: SMTWays must not be negative, got %d", t.Name, t.SMTWays)
	}
	if len(t.Kinds) != 0 && len(t.Kinds) != t.NumChiplets() {
		return fmt.Errorf("topology %q: Kinds must cover every chiplet (%d) or be empty, got %d",
			t.Name, t.NumChiplets(), len(t.Kinds))
	}
	for i, k := range t.Kinds {
		if k != KindFast && k != KindEfficient && k != KindAccel {
			return fmt.Errorf("topology %q: Kinds[%d] = %v is not a concrete chiplet kind", t.Name, i, k)
		}
	}
	if t.GridRows != 0 || t.GridCols != 0 {
		perSocket := t.NodesPerSocket * t.ChipletsPerNode
		if t.GridRows <= 0 || t.GridCols <= 0 || t.GridRows*t.GridCols != perSocket {
			return fmt.Errorf("topology %q: grid %dx%d must cover the %d chiplets per socket",
				t.Name, t.GridRows, t.GridCols, perSocket)
		}
	}
	return nil
}

// SMT returns the hardware threads per core, at least 1.
func (t *Topology) SMT() int {
	if t.SMTWays < 1 {
		return 1
	}
	return t.SMTWays
}

// NumThreads returns the total hardware thread count.
func (t *Topology) NumThreads() int { return t.NumCores() * t.SMT() }

// NumNodes returns the total number of NUMA nodes in the machine.
func (t *Topology) NumNodes() int { return t.Sockets * t.NodesPerSocket }

// NumChiplets returns the total number of chiplets in the machine.
func (t *Topology) NumChiplets() int { return t.NumNodes() * t.ChipletsPerNode }

// NumCores returns the total number of cores in the machine.
func (t *Topology) NumCores() int { return t.NumChiplets() * t.CoresPerChiplet }

// CoresPerNode returns the number of cores in one NUMA node.
func (t *Topology) CoresPerNode() int { return t.ChipletsPerNode * t.CoresPerChiplet }

// CoresPerSocket returns the number of cores in one socket.
func (t *Topology) CoresPerSocket() int { return t.NodesPerSocket * t.CoresPerNode() }

// ChipletOf returns the chiplet that hosts core c.
func (t *Topology) ChipletOf(c CoreID) ChipletID {
	return ChipletID(int(c) / t.CoresPerChiplet)
}

// NodeOfCore returns the NUMA node that hosts core c.
func (t *Topology) NodeOfCore(c CoreID) NodeID {
	return NodeID(int(c) / t.CoresPerNode())
}

// NodeOfChiplet returns the NUMA node that hosts chiplet ch.
func (t *Topology) NodeOfChiplet(ch ChipletID) NodeID {
	return NodeID(int(ch) / t.ChipletsPerNode)
}

// SocketOfCore returns the socket that hosts core c.
func (t *Topology) SocketOfCore(c CoreID) SocketID {
	return SocketID(int(c) / t.CoresPerSocket())
}

// SocketOfNode returns the socket that hosts NUMA node n.
func (t *Topology) SocketOfNode(n NodeID) SocketID {
	return SocketID(int(n) / t.NodesPerSocket)
}

// FirstCoreOf returns the lowest-numbered core on chiplet ch.
func (t *Topology) FirstCoreOf(ch ChipletID) CoreID {
	return CoreID(int(ch) * t.CoresPerChiplet)
}

// CoresOfChiplet returns all core IDs on chiplet ch in ascending order.
func (t *Topology) CoresOfChiplet(ch ChipletID) []CoreID {
	cores := make([]CoreID, t.CoresPerChiplet)
	base := int(ch) * t.CoresPerChiplet
	for i := range cores {
		cores[i] = CoreID(base + i)
	}
	return cores
}

// ChipletsOfNode returns all chiplet IDs in NUMA node n in ascending order.
func (t *Topology) ChipletsOfNode(n NodeID) []ChipletID {
	chs := make([]ChipletID, t.ChipletsPerNode)
	base := int(n) * t.ChipletsPerNode
	for i := range chs {
		chs[i] = ChipletID(base + i)
	}
	return chs
}

// quadrantOf returns the I/O-die quadrant index of a chiplet within its node.
func (t *Topology) quadrantOf(ch ChipletID) int {
	local := int(ch) % t.ChipletsPerNode
	return local / t.QuadrantChiplets
}

// ClassOf returns the latency class between two cores.
func (t *Topology) ClassOf(a, b CoreID) LatencyClass {
	if a == b {
		return SameCore
	}
	if t.SocketOfCore(a) != t.SocketOfCore(b) {
		return InterSocket
	}
	ca, cb := t.ChipletOf(a), t.ChipletOf(b)
	if ca == cb {
		return IntraChiplet
	}
	if t.NodeOfChiplet(ca) == t.NodeOfChiplet(cb) && t.quadrantOf(ca) == t.quadrantOf(cb) {
		return InterChipletNear
	}
	return InterChipletFar
}

// CASLatency returns the modeled compare-and-swap ping-pong latency in
// nanoseconds between two cores (the Fig. 3 measurement).
func (t *Topology) CASLatency(a, b CoreID) int64 {
	switch t.ClassOf(a, b) {
	case SameCore:
		return t.Cost.L1Hit
	case IntraChiplet:
		return t.Cost.CASIntraChiplet
	case InterChipletNear:
		return t.Cost.CASInterNear
	case InterChipletFar:
		return t.Cost.CASInterFar
	default:
		return t.Cost.CASInterSocket
	}
}

// L3HitLatency returns the latency for core c loading a line held by the L3
// of chiplet owner.
func (t *Topology) L3HitLatency(c CoreID, owner ChipletID) int64 {
	ch := t.ChipletOf(c)
	if ch == owner {
		return t.Cost.L3LocalHit
	}
	if t.SocketOfNode(t.NodeOfChiplet(ch)) != t.SocketOfNode(t.NodeOfChiplet(owner)) {
		return t.Cost.L3RemoteSocketHit
	}
	if t.NodeOfChiplet(ch) == t.NodeOfChiplet(owner) && t.quadrantOf(ch) == t.quadrantOf(owner) {
		return t.Cost.L3RemoteNearHit
	}
	return t.Cost.L3RemoteFarHit
}

// DRAMLatency returns the latency for core c loading a line homed on NUMA
// node n (excluding bandwidth queueing delays).
func (t *Topology) DRAMLatency(c CoreID, n NodeID) int64 {
	if t.NodeOfCore(c) == n {
		return t.Cost.DRAMLocal
	}
	return t.Cost.DRAMRemote
}

// Scaled returns a copy of the topology with all cache capacities divided by
// factor (minimum one line per way per set). Scaling caches together with
// workload sizes preserves working-set-to-cache ratios while keeping
// simulations fast; see DESIGN.md §4.5.
func (t *Topology) Scaled(factor int64) *Topology {
	if factor <= 1 {
		cp := *t
		return &cp
	}
	cp := *t
	cp.Name = fmt.Sprintf("%s/scale%d", t.Name, factor)
	minCache := cp.CacheLine * int64(cp.L3Ways)
	cp.L3PerChiplet = maxInt64(cp.L3PerChiplet/factor, minCache)
	if cp.L2PerCore > 0 {
		cp.L2PerCore = maxInt64(cp.L2PerCore/factor, cp.CacheLine*int64(cp.L2Ways))
	}
	return &cp
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// String returns a one-line summary of the topology.
func (t *Topology) String() string {
	l3 := fmt.Sprintf("%d KiB", t.L3PerChiplet>>10)
	if t.L3PerChiplet >= 1<<20 {
		l3 = fmt.Sprintf("%d MiB", t.L3PerChiplet>>20)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d socket(s) x %d node(s) x %d chiplet(s) x %d core(s) = %d cores, L3 %s/chiplet, %d ch/node",
		t.Name, t.Sockets, t.NodesPerSocket, t.ChipletsPerNode, t.CoresPerChiplet,
		t.NumCores(), l3, t.ChannelsPerNode)
	return b.String()
}
