package topology

// Preset machine models. Latency values follow the measurements reported in
// §2.1 of the paper (Fig. 3) and published Milan/Sapphire Rapids numbers;
// they are deliberately round — the simulator reproduces *shapes*, not
// absolute hardware timings.

// AMDMilan7713x2 models the paper's primary testbed: a dual-socket AMD EPYC
// Milan 7713 in NPS1 mode — per socket: 1 NUMA node, 8 CCDs (chiplets) with
// one 8-core CCX and a 32 MiB L3 slice each, 8 DDR4-3200 memory channels.
func AMDMilan7713x2() *Topology {
	return &Topology{
		Name:             "amd-epyc-milan-7713x2",
		Sockets:          2,
		NodesPerSocket:   1,
		ChipletsPerNode:  8,
		CoresPerChiplet:  8,
		QuadrantChiplets: 2,
		SMTWays:          2,
		CacheLine:        64,
		L2PerCore:        512 << 10,
		L3PerChiplet:     32 << 20,
		L2Ways:           8,
		L3Ways:           16,
		ChannelsPerNode:  8,
		Cost: CostModel{
			L1Hit:             1,
			L2Hit:             3,
			L3LocalHit:        13,
			L3RemoteNearHit:   85,
			L3RemoteFarHit:    155,
			L3RemoteSocketHit: 330,
			DRAMLocal:         105,
			DRAMRemote:        260,
			CASIntraChiplet:   25,
			CASInterNear:      85,
			CASInterFar:       155,
			CASInterSocket:    340,
			ChannelBandwidth:  25.6, // DDR4-3200, bytes/ns per channel
			FabricBandwidth:   42.0, // CCD<->I/O-die per direction
			SocketBandwidth:   76.0, // xGMI aggregate per direction
			CoroutineSwitch:   100,
			ThreadSwitch:      2000,
			ThreadSpawn:       12000,
			StealPenalty:      60,
		},
	}
}

// IntelSPR8488Cx2 models the secondary testbed: dual-socket Intel Xeon
// Platinum 8488C (Sapphire Rapids) — per socket: 48 cores over 4 compute
// tiles sharing a 105 MiB L3. Sapphire Rapids' mesh makes the L3 behave
// quasi-monolithically: inter-tile penalties are much flatter than on Milan,
// which is why CHARM's advantage narrows there (§5.3).
func IntelSPR8488Cx2() *Topology {
	return &Topology{
		Name:             "intel-xeon-8488cx2",
		Sockets:          2,
		NodesPerSocket:   1,
		ChipletsPerNode:  4,
		CoresPerChiplet:  12,
		QuadrantChiplets: 2,
		SMTWays:          2, // 48 cores / 96 threads per socket
		CacheLine:        64,
		L2PerCore:        2 << 20,
		L3PerChiplet:     105 << 20 / 4, // ~26 MiB slice per tile
		L2Ways:           16,
		L3Ways:           15,
		ChannelsPerNode:  8,
		Cost: CostModel{
			L1Hit:             1,
			L2Hit:             4,
			L3LocalHit:        22,
			L3RemoteNearHit:   33, // mesh: flat inter-tile latency
			L3RemoteFarHit:    40,
			L3RemoteSocketHit: 250,
			DRAMLocal:         112,
			DRAMRemote:        235,
			CASIntraChiplet:   30,
			CASInterNear:      40,
			CASInterFar:       48,
			CASInterSocket:    255,
			ChannelBandwidth:  38.4, // DDR5-4800
			FabricBandwidth:   60.0,
			SocketBandwidth:   64.0, // UPI aggregate
			CoroutineSwitch:   100,
			ThreadSwitch:      2000,
			ThreadSpawn:       12000,
			StealPenalty:      60,
		},
	}
}

// Synthetic returns a small single-socket machine for unit tests:
// 1 socket x 1 node x chiplets x coresPerChiplet, with tiny caches so cache
// dynamics are exercised by small inputs.
func Synthetic(chiplets, coresPerChiplet int) *Topology {
	return &Topology{
		Name:             "synthetic",
		Sockets:          1,
		NodesPerSocket:   1,
		ChipletsPerNode:  chiplets,
		CoresPerChiplet:  coresPerChiplet,
		QuadrantChiplets: 2,
		CacheLine:        64,
		L2PerCore:        8 << 10,
		L3PerChiplet:     64 << 10,
		L2Ways:           4,
		L3Ways:           8,
		ChannelsPerNode:  2,
		Cost: CostModel{
			L1Hit:             1,
			L2Hit:             3,
			L3LocalHit:        13,
			L3RemoteNearHit:   85,
			L3RemoteFarHit:    155,
			L3RemoteSocketHit: 220,
			DRAMLocal:         105,
			DRAMRemote:        195,
			CASIntraChiplet:   25,
			CASInterNear:      85,
			CASInterFar:       155,
			CASInterSocket:    210,
			ChannelBandwidth:  25.6,
			FabricBandwidth:   42.0,
			SocketBandwidth:   76.0,
			CoroutineSwitch:   100,
			ThreadSwitch:      2000,
			ThreadSpawn:       12000,
			StealPenalty:      60,
		},
	}
}

// SyntheticDual returns a small dual-socket machine for unit tests.
func SyntheticDual(chipletsPerNode, coresPerChiplet int) *Topology {
	t := Synthetic(chipletsPerNode, coresPerChiplet)
	t.Name = "synthetic-dual"
	t.Sockets = 2
	return t
}

// AMDMilanNPS4 is the Milan testbed configured in NPS4 mode: each socket is
// partitioned into 4 NUMA nodes of 2 chiplets and 2 memory channels. The
// paper notes (§1, insight 4) that overly strict NUMA-aware optimizations
// can hurt on chiplet CPUs; NPS4 is the configuration where that bites,
// since NUMA-aware policies confine workers to a quarter socket.
func AMDMilanNPS4() *Topology {
	t := AMDMilan7713x2()
	t.Name = "amd-epyc-milan-7713x2-nps4"
	t.NodesPerSocket = 4
	t.ChipletsPerNode = 2
	t.QuadrantChiplets = 2
	t.ChannelsPerNode = 2
	return t
}
