package topology

import "fmt"

// ChipletKind classifies the compute character of a chiplet in a
// heterogeneous package: big out-of-order cores, small efficiency cores,
// or a domain accelerator die (the analog of uPimulator's RRAM CIM
// chiplets). The zero value KindAny means "no preference" and is what
// jobs use to opt out of capability matching; chiplets themselves are
// always one of the three concrete kinds.
type ChipletKind uint8

const (
	// KindAny is a wildcard used by placement preferences, never by a
	// chiplet itself.
	KindAny ChipletKind = iota
	// KindFast is a full-width out-of-order core chiplet (the baseline:
	// every pre-existing topology is all-fast).
	KindFast
	// KindEfficient is a small-core chiplet: slower compute and a
	// slightly slower uncore, but roughly half the energy per event.
	KindEfficient
	// KindAccel is an accelerator chiplet: far faster at raw compute,
	// but with a weaker general-purpose memory path and a higher energy
	// price per event.
	KindAccel
)

// String returns the canonical spec-grammar name of the kind.
func (k ChipletKind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindFast:
		return "fast"
	case KindEfficient:
		return "eff"
	case KindAccel:
		return "accel"
	default:
		return fmt.Sprintf("ChipletKind(%d)", uint8(k))
	}
}

// ParseChipletKind parses a spec-grammar kind name.
func ParseChipletKind(s string) (ChipletKind, error) {
	switch s {
	case "any":
		return KindAny, nil
	case "fast":
		return KindFast, nil
	case "eff", "efficient":
		return KindEfficient, nil
	case "accel", "accelerator":
		return KindAccel, nil
	}
	return KindAny, fmt.Errorf("unknown chiplet kind %q (want fast, eff, or accel)", s)
}

// KindTraits are the cost multipliers of one chiplet kind, in milli-units
// against the topology's baseline CostModel (1000 = nominal). All charging
// stays integer: cost' = cost * Milli / 1000, so an all-fast machine is
// arithmetically untouched.
type KindTraits struct {
	// ComputeMilli scales Ctx.Compute busy-time (400 = 2.5x faster).
	ComputeMilli int64
	// AccessMilli scales the cache/DRAM access service times charged by
	// the simulator (it models the uncore/front-end clock ratio).
	AccessMilli int64
	// EnergyMilli scales the power plane's idle watts and per-event
	// energy prices.
	EnergyMilli int64
}

// Traits returns the cost multipliers of the kind. KindAny aliases
// KindFast so that "no declared kinds" and "all fast" are the same machine.
func (k ChipletKind) Traits() KindTraits {
	switch k {
	case KindEfficient:
		// Small cores: ~1.7x slower compute, modestly slower uncore,
		// half the energy per event.
		return KindTraits{ComputeMilli: 1700, AccessMilli: 1150, EnergyMilli: 500}
	case KindAccel:
		// Accelerator die: 2.5x faster at raw compute, but a weaker
		// general-purpose memory path and a higher energy price.
		return KindTraits{ComputeMilli: 400, AccessMilli: 1400, EnergyMilli: 1300}
	default:
		return KindTraits{ComputeMilli: 1000, AccessMilli: 1000, EnergyMilli: 1000}
	}
}

// KindOf returns the kind of chiplet ch. Topologies with no Kinds slice
// are homogeneous all-fast machines.
func (t *Topology) KindOf(ch ChipletID) ChipletKind {
	if len(t.Kinds) == 0 {
		return KindFast
	}
	return t.Kinds[ch]
}

// Heterogeneous reports whether any chiplet deviates from KindFast.
func (t *Topology) Heterogeneous() bool {
	for _, k := range t.Kinds {
		if k != KindFast && k != KindAny {
			return true
		}
	}
	return false
}

// ComputeMilli returns the compute-speed multiplier of chiplet ch.
func (t *Topology) ComputeMilli(ch ChipletID) int64 {
	return t.KindOf(ch).Traits().ComputeMilli
}

// AccessMilli returns the access-cost multiplier of chiplet ch.
func (t *Topology) AccessMilli(ch ChipletID) int64 {
	return t.KindOf(ch).Traits().AccessMilli
}

// EnergyMilli returns the energy-price multiplier of chiplet ch.
func (t *Topology) EnergyMilli(ch ChipletID) int64 {
	return t.KindOf(ch).Traits().EnergyMilli
}

// KindCount returns how many chiplets are of kind k.
func (t *Topology) KindCount(k ChipletKind) int {
	n := 0
	for ch := 0; ch < t.NumChiplets(); ch++ {
		if t.KindOf(ChipletID(ch)) == k {
			n++
		}
	}
	return n
}
