package topology

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, topo := range []*Topology{AMDMilan7713x2(), IntelSPR8488Cx2(), Synthetic(4, 4), SyntheticDual(2, 4)} {
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", topo.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Synthetic(2, 4)
	cases := []struct {
		name   string
		mutate func(*Topology)
	}{
		{"zero sockets", func(tp *Topology) { tp.Sockets = 0 }},
		{"zero nodes", func(tp *Topology) { tp.NodesPerSocket = 0 }},
		{"zero chiplets", func(tp *Topology) { tp.ChipletsPerNode = 0 }},
		{"zero cores", func(tp *Topology) { tp.CoresPerChiplet = 0 }},
		{"zero quadrant", func(tp *Topology) { tp.QuadrantChiplets = 0 }},
		{"non-pow2 line", func(tp *Topology) { tp.CacheLine = 48 }},
		{"zero L3", func(tp *Topology) { tp.L3PerChiplet = 0 }},
		{"zero ways", func(tp *Topology) { tp.L3Ways = 0 }},
		{"zero channels", func(tp *Topology) { tp.ChannelsPerNode = 0 }},
	}
	for _, c := range cases {
		cp := *base
		c.mutate(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", c.name)
		}
	}
}

func TestMilanCounts(t *testing.T) {
	m := AMDMilan7713x2()
	if got := m.NumCores(); got != 128 {
		t.Errorf("NumCores = %d, want 128", got)
	}
	if got := m.NumChiplets(); got != 16 {
		t.Errorf("NumChiplets = %d, want 16", got)
	}
	if got := m.NumNodes(); got != 2 {
		t.Errorf("NumNodes = %d, want 2", got)
	}
	if got := m.CoresPerNode(); got != 64 {
		t.Errorf("CoresPerNode = %d, want 64", got)
	}
	if got := m.CoresPerSocket(); got != 64 {
		t.Errorf("CoresPerSocket = %d, want 64", got)
	}
}

func TestIntelCounts(t *testing.T) {
	m := IntelSPR8488Cx2()
	if got := m.NumCores(); got != 96 {
		t.Errorf("NumCores = %d, want 96", got)
	}
	if got := m.CoresPerSocket(); got != 48 {
		t.Errorf("CoresPerSocket = %d, want 48", got)
	}
}

func TestCoreMapping(t *testing.T) {
	m := AMDMilan7713x2()
	cases := []struct {
		core    CoreID
		chiplet ChipletID
		node    NodeID
		socket  SocketID
	}{
		{0, 0, 0, 0},
		{7, 0, 0, 0},
		{8, 1, 0, 0},
		{63, 7, 0, 0},
		{64, 8, 1, 1},
		{127, 15, 1, 1},
	}
	for _, c := range cases {
		if got := m.ChipletOf(c.core); got != c.chiplet {
			t.Errorf("ChipletOf(%d) = %d, want %d", c.core, got, c.chiplet)
		}
		if got := m.NodeOfCore(c.core); got != c.node {
			t.Errorf("NodeOfCore(%d) = %d, want %d", c.core, got, c.node)
		}
		if got := m.SocketOfCore(c.core); got != c.socket {
			t.Errorf("SocketOfCore(%d) = %d, want %d", c.core, got, c.socket)
		}
	}
}

func TestLatencyClasses(t *testing.T) {
	m := AMDMilan7713x2()
	cases := []struct {
		a, b CoreID
		want LatencyClass
	}{
		{0, 0, SameCore},
		{0, 1, IntraChiplet},
		{0, 8, InterChipletNear}, // chiplets 0 and 1 share quadrant 0
		{0, 16, InterChipletFar}, // chiplet 2 is quadrant 1
		{0, 63, InterChipletFar}, // chiplet 7 is quadrant 3
		{0, 64, InterSocket},
		{63, 127, InterSocket},
	}
	for _, c := range cases {
		if got := m.ClassOf(c.a, c.b); got != c.want {
			t.Errorf("ClassOf(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassSymmetry(t *testing.T) {
	m := AMDMilan7713x2()
	f := func(a, b uint8) bool {
		ca := CoreID(int(a) % m.NumCores())
		cb := CoreID(int(b) % m.NumCores())
		return m.ClassOf(ca, cb) == m.ClassOf(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCASLatencyMonotonic(t *testing.T) {
	m := AMDMilan7713x2()
	// Latency must increase with topological distance (Fig. 3 ordering).
	intra := m.CASLatency(0, 1)
	near := m.CASLatency(0, 8)
	far := m.CASLatency(0, 16)
	socket := m.CASLatency(0, 64)
	if !(intra < near && near < far && far < socket) {
		t.Errorf("latency ordering violated: %d %d %d %d", intra, near, far, socket)
	}
}

func TestCASLatencyIsClasswise(t *testing.T) {
	m := AMDMilan7713x2()
	f := func(a, b uint8) bool {
		ca := CoreID(int(a) % m.NumCores())
		cb := CoreID(int(b) % m.NumCores())
		// Two pairs in the same class must report the same latency.
		return m.CASLatency(ca, cb) == m.CASLatency(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL3HitLatency(t *testing.T) {
	m := AMDMilan7713x2()
	if got := m.L3HitLatency(0, 0); got != m.Cost.L3LocalHit {
		t.Errorf("local L3 hit = %d, want %d", got, m.Cost.L3LocalHit)
	}
	if got := m.L3HitLatency(0, 1); got != m.Cost.L3RemoteNearHit {
		t.Errorf("near L3 hit = %d, want %d", got, m.Cost.L3RemoteNearHit)
	}
	if got := m.L3HitLatency(0, 7); got != m.Cost.L3RemoteFarHit {
		t.Errorf("far L3 hit = %d, want %d", got, m.Cost.L3RemoteFarHit)
	}
	if got := m.L3HitLatency(0, 8); got != m.Cost.L3RemoteSocketHit {
		t.Errorf("cross-socket L3 hit = %d, want %d", got, m.Cost.L3RemoteSocketHit)
	}
}

func TestDRAMLatency(t *testing.T) {
	m := AMDMilan7713x2()
	if got := m.DRAMLatency(0, 0); got != m.Cost.DRAMLocal {
		t.Errorf("local DRAM = %d, want %d", got, m.Cost.DRAMLocal)
	}
	if got := m.DRAMLatency(0, 1); got != m.Cost.DRAMRemote {
		t.Errorf("remote DRAM = %d, want %d", got, m.Cost.DRAMRemote)
	}
}

func TestScaled(t *testing.T) {
	m := AMDMilan7713x2()
	s := m.Scaled(64)
	if s.L3PerChiplet != m.L3PerChiplet/64 {
		t.Errorf("scaled L3 = %d, want %d", s.L3PerChiplet, m.L3PerChiplet/64)
	}
	if s.NumCores() != m.NumCores() {
		t.Errorf("scaling must not change core count")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled topology invalid: %v", err)
	}
	// Scaling by a huge factor clamps at one set of ways.
	h := m.Scaled(1 << 40)
	if h.L3PerChiplet < h.CacheLine*int64(h.L3Ways) {
		t.Errorf("scaled L3 below minimum: %d", h.L3PerChiplet)
	}
	// Scaling by <=1 is identity.
	id := m.Scaled(1)
	if id.L3PerChiplet != m.L3PerChiplet || id.Name != m.Name {
		t.Errorf("Scaled(1) must be identity")
	}
}

func TestCoresOfChipletAndNodes(t *testing.T) {
	m := Synthetic(2, 4)
	cores := m.CoresOfChiplet(1)
	want := []CoreID{4, 5, 6, 7}
	if len(cores) != len(want) {
		t.Fatalf("len = %d, want %d", len(cores), len(want))
	}
	for i := range want {
		if cores[i] != want[i] {
			t.Errorf("cores[%d] = %d, want %d", i, cores[i], want[i])
		}
	}
	chs := m.ChipletsOfNode(0)
	if len(chs) != 2 || chs[0] != 0 || chs[1] != 1 {
		t.Errorf("ChipletsOfNode(0) = %v", chs)
	}
}

func TestFirstCoreOf(t *testing.T) {
	m := AMDMilan7713x2()
	f := func(ch uint8) bool {
		c := ChipletID(int(ch) % m.NumChiplets())
		first := m.FirstCoreOf(c)
		return m.ChipletOf(first) == c && int(first)%m.CoresPerChiplet == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyClassString(t *testing.T) {
	for c, want := range map[LatencyClass]string{
		SameCore: "same-core", IntraChiplet: "intra-chiplet",
		InterChipletNear: "inter-chiplet-near", InterChipletFar: "inter-chiplet-far",
		InterSocket: "inter-socket", LatencyClass(99): "LatencyClass(99)",
	} {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestTopologyString(t *testing.T) {
	s := AMDMilan7713x2().String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestNPS4Preset(t *testing.T) {
	m := AMDMilanNPS4()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 128 || m.NumNodes() != 8 || m.NumChiplets() != 16 {
		t.Errorf("NPS4 counts: cores=%d nodes=%d chiplets=%d", m.NumCores(), m.NumNodes(), m.NumChiplets())
	}
	if m.CoresPerNode() != 16 {
		t.Errorf("CoresPerNode = %d, want 16", m.CoresPerNode())
	}
	// Same socket structure as NPS1.
	if m.SocketOfCore(63) != 0 || m.SocketOfCore(64) != 1 {
		t.Error("socket mapping changed under NPS4")
	}
}

func TestSMTAccessors(t *testing.T) {
	m := AMDMilan7713x2()
	if m.SMT() != 2 || m.NumThreads() != 256 {
		t.Errorf("SMT = %d, NumThreads = %d", m.SMT(), m.NumThreads())
	}
	s := Synthetic(2, 2)
	if s.SMT() != 1 || s.NumThreads() != s.NumCores() {
		t.Errorf("synthetic SMT = %d", s.SMT())
	}
	s.SMTWays = -1
	if err := s.Validate(); err == nil {
		t.Error("negative SMTWays must fail validation")
	}
}
