package power

import (
	"errors"
	"math"
	"strings"
	"testing"

	"charm/internal/fault"
	"charm/internal/pmu"
	"charm/internal/topology"
)

// testPlane builds a plane over an empty compiled plan with an
// instant-response thermal model (tau == tick), so each governor window
// lands the temperature exactly on the steady state P·R + T_amb — which
// makes every expectation below exact integer arithmetic.
func testPlane(t *testing.T, topo *topology.Topology, cfg Config) (*Plane, *pmu.PMU, *fault.Plan) {
	t.Helper()
	var s *fault.Schedule
	plan, err := s.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	pm := pmu.New(topo.NumCores())
	p, err := NewPlane(topo, pm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, pm, plan
}

// instantModel responds within one tick (tau = R·C = 1 µs = tick) and
// prices only Compute time: 1000 pJ/ns, i.e. 1 W per concurrently busy
// core. R = 10 °C/W.
func instantModel() Model {
	m := Model{Name: "instant", RThermal: 10, CThermal: 1e-7}
	m.EnergyPJ[pmu.ComputeNS] = 1000
	return m
}

func TestEnergyAccountingFromPMU(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	p, pm, _ := testPlane(t, topo, Config{
		TickNS: 1000, Models: []Model{instantModel()},
	})
	if st := p.Stats(); st.At != 0 || st.TempMilliC[0] != 45_000 {
		t.Fatalf("initial state: at=%d temp=%d", st.At, st.TempMilliC[0])
	}
	// Below the first boundary nothing happens (the lock-free gate).
	p.MaybeTick(999)
	if st := p.Stats(); st.At != 0 {
		t.Fatalf("ticked before the boundary: at=%d", st.At)
	}

	// 3000 ns of compute on chiplet 0 (cores 0,1), none on chiplet 1.
	pm.Add(0, pmu.ComputeNS, 2000)
	pm.Add(1, pmu.ComputeNS, 1000)
	p.MaybeTick(1000)
	st := p.Stats()
	if st.At != 1000 {
		t.Fatalf("At = %d, want 1000", st.At)
	}
	// 3000 ns × 1000 pJ/ns = 3e6 pJ over a 1000 ns window = 3000 mW.
	if st.WattsMilli[0] != 3000 || st.WattsMilli[1] != 0 {
		t.Fatalf("watts = %v, want [3000 0]", st.WattsMilli)
	}
	if st.EnergyPJ[0] != 3_000_000 || st.EnergyPJ[1] != 0 {
		t.Fatalf("energy = %v, want [3000000 0]", st.EnergyPJ)
	}
	// Tss = 45 °C + 3 W × 10 °C/W = 75 °C, reached instantly (tau = tick).
	if st.TempMilliC[0] != 75_000 || st.TempMilliC[1] != 45_000 {
		t.Fatalf("temps = %v, want [75000 45000]", st.TempMilliC)
	}

	// A quiet window relaxes chiplet 0 back to ambient and adds no energy.
	p.MaybeTick(2000)
	st = p.Stats()
	if st.TempMilliC[0] != 45_000 || st.EnergyPJ[0] != 3_000_000 {
		t.Fatalf("after quiet window: temp=%d energy=%d", st.TempMilliC[0], st.EnergyPJ[0])
	}
	if st.MaxTempMilliC != 75_000 {
		t.Fatalf("MaxTempMilliC = %d, want 75000", st.MaxTempMilliC)
	}
}

func TestIdlePowerAndTDPClamp(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	m := instantModel()
	m.IdleWatts = 2
	m.RThermal = 1
	m.CThermal = 1e-6 // tau = 1 µs = tick
	p, pm, _ := testPlane(t, topo, Config{
		TickNS: 1000, TDPWatts: 10, Models: []Model{m},
	})
	// 48 W dynamic + 2 W idle on chiplet 0; the RC input clamps at 10 W.
	pm.Add(0, pmu.ComputeNS, 48_000)
	p.MaybeTick(1000)
	st := p.Stats()
	if st.WattsMilli[0] != 50_000 {
		t.Fatalf("watts = %d, want 50000 (unclamped reading)", st.WattsMilli[0])
	}
	// Ledger is true dissipation: 48e6 dynamic + 2 mW × 1000 ns idle.
	if st.EnergyPJ[0] != 48_000_000+2_000_000 {
		t.Fatalf("energy = %d, want 50000000", st.EnergyPJ[0])
	}
	// Idle chiplet 1 still pays its leakage floor.
	if st.EnergyPJ[1] != 2_000_000 {
		t.Fatalf("idle chiplet energy = %d, want 2000000", st.EnergyPJ[1])
	}
	// Temperature is driven by the clamped 10 W: 45 + 10×1 = 55 °C, not
	// 45 + 50 = 95 °C.
	if st.TempMilliC[0] != 55_000 {
		t.Fatalf("temp = %d, want 55000 (TDP-clamped RC input)", st.TempMilliC[0])
	}
}

// TestRCConvergence: with tau = 10 ticks the temperature approaches
// steady state geometrically from both sides instead of jumping.
func TestRCConvergence(t *testing.T) {
	topo := topology.Synthetic(1, 2)
	m := instantModel()
	m.CThermal = 1e-6 // tau = 10 µs = 10 ticks
	p, pm, _ := testPlane(t, topo, Config{TickNS: 1000, Models: []Model{m}})
	prev := int64(45_000)
	for w := int64(1); w <= 40; w++ {
		pm.Add(0, pmu.ComputeNS, 3000) // 3 W sustained
		p.MaybeTick(w * 1000)
		temp := p.Stats().TempMilliC[0]
		if temp < prev {
			t.Fatalf("window %d: temperature fell while heating (%d -> %d)", w, prev, temp)
		}
		if temp > 75_000 {
			t.Fatalf("window %d: overshot steady state: %d", w, temp)
		}
		prev = temp
	}
	// After 4 time constants the gap to Tss = 75 °C is under 2%.
	if prev < 74_000 {
		t.Fatalf("after 40 windows temp = %d, want >= 74000", prev)
	}
	// Cooling is the mirror image.
	for w := int64(41); w <= 80; w++ {
		p.MaybeTick(w * 1000)
		temp := p.Stats().TempMilliC[0]
		if temp > prev {
			t.Fatalf("window %d: temperature rose while cooling (%d -> %d)", w, prev, temp)
		}
		prev = temp
	}
	if prev > 46_000 {
		t.Fatalf("after cooling temp = %d, want near ambient", prev)
	}
}

// TestGovernorTiersAndHysteresis: crossing soft/hard applies the tier
// factors through the plan's thermal queries; releases respect the
// hysteresis band.
func TestGovernorTiersAndHysteresis(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	p, pm, plan := testPlane(t, topo, Config{
		TickNS: 1000, Models: []Model{instantModel()},
		SoftC: 70, HardC: 90, ParkC: 110, HysteresisC: 6,
		SoftFactor: 1.5, HardFactor: 4,
	})
	// Window 1: 3 W -> 75 °C: soft throttle.
	pm.Add(0, pmu.ComputeNS, 3000)
	p.MaybeTick(1000)
	if m := plan.ThermalMilli(0, 1000); m != 1500 {
		t.Fatalf("soft tier factor = %d, want 1500", m)
	}
	if st := p.Stats(); st.SoftEvents[0] != 1 || st.HardEvents[0] != 0 {
		t.Fatalf("events = soft %v hard %v", st.SoftEvents, st.HardEvents)
	}
	// Window 2: 5 W -> 95 °C: hard throttle.
	pm.Add(0, pmu.ComputeNS, 5000)
	p.MaybeTick(2000)
	if m := plan.ThermalMilli(0, 2000); m != 4000 {
		t.Fatalf("hard tier factor = %d, want 4000", m)
	}
	// Window 3: back to 3 W -> 75 °C. 75 < 90 but hysteresis holds hard
	// until temp < 90-6 = 84... 75 < 84, so it releases to soft (75 >= 70).
	pm.Add(0, pmu.ComputeNS, 3000)
	p.MaybeTick(3000)
	if m := plan.ThermalMilli(0, 3000); m != 1500 {
		t.Fatalf("release-to-soft factor = %d, want 1500", m)
	}
	// Window 4: 2.1 W -> 66 °C. 66 < 70 but >= 70-6 = 64: hysteresis keeps
	// the soft tier latched.
	pm.Add(0, pmu.ComputeNS, 2100)
	p.MaybeTick(4000)
	if m := plan.ThermalMilli(0, 4000); m != 1500 {
		t.Fatalf("hysteresis hold factor = %d, want 1500", m)
	}
	// Window 5: idle -> 45 °C: full release.
	p.MaybeTick(5000)
	if m := plan.ThermalMilli(0, 5000); m != 1000 {
		t.Fatalf("release factor = %d, want 1000", m)
	}
	if st := p.Stats(); st.SoftEvents[0] != 1 || st.HardEvents[0] != 1 {
		t.Fatalf("tier entries = soft %v hard %v, want one each", st.SoftEvents, st.HardEvents)
	}
}

// TestEmergencyParkAndLastChipletGuard: the park tier takes a chiplet's
// cores offline for ParkNS, but never the last live chiplet — that one
// degrades to a hard throttle instead.
func TestEmergencyParkAndLastChipletGuard(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	p, pm, plan := testPlane(t, topo, Config{
		TickNS: 1000, ParkNS: 5000, Models: []Model{instantModel()},
		SoftC: 60, HardC: 70, ParkC: 80, HardFactor: 3,
	})
	// Both chiplets blow past ParkC = 80 °C (Tss = 45 + 8×10 = 125 °C,
	// clamped by default TDP 10 W... still 145; instant).
	pm.Add(0, pmu.ComputeNS, 8000)
	pm.Add(2, pmu.ComputeNS, 8000)
	p.MaybeTick(1000)
	st := p.Stats()
	// Chiplet 0 parks; chiplet 1 would be the last live chiplet, so it
	// hard-throttles instead.
	if st.ParkEvents[0] != 1 || st.ParkEvents[1] != 0 {
		t.Fatalf("park events = %v, want [1 0]", st.ParkEvents)
	}
	if !plan.CoreDown(0, 1000) || !plan.CoreDown(1, 1000) {
		t.Fatal("parked chiplet 0 cores not offline")
	}
	if plan.CoreDown(2, 1000) {
		t.Fatal("last live chiplet was parked")
	}
	if m := plan.ThermalMilli(1, 1000); m != 3000 {
		t.Fatalf("guarded chiplet factor = %d, want hard 3000", m)
	}
	// The park expires on its own: cores return at t = 1000 + ParkNS.
	if up := plan.CoreUpAt(0, 1500); up != 6000 {
		t.Fatalf("CoreUpAt(parked) = %d, want 6000", up)
	}
	// While parked and cooling, no re-park is issued.
	p.MaybeTick(2000)
	if st := p.Stats(); st.ParkEvents[0] != 1 {
		t.Fatalf("re-parked while parked: %v", st.ParkEvents)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := func(c Config, wantSub string) {
		t.Helper()
		err := c.Validate()
		if err == nil {
			t.Fatalf("Validate(%+v) = nil, want error about %q", c, wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("Validate error %q does not mention %q", err, wantSub)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad(Config{TDPWatts: -1}, "TDPWatts")
	bad(Config{TDPWatts: math.NaN()}, "TDPWatts")
	bad(Config{TDPWatts: math.Inf(1)}, "TDPWatts")
	bad(Config{SoftC: math.NaN()}, "SoftC")
	bad(Config{SoftC: 90, HardC: 80}, "ordered")
	bad(Config{AmbientC: 90}, "AmbientC")
	bad(Config{SoftFactor: 0.5}, "SoftFactor")
	bad(Config{SoftFactor: 2, HardFactor: 1.5}, "HardFactor")
	bad(Config{HysteresisC: -1}, "HysteresisC")
	bad(Config{TickNS: -5}, "TickNS")
	bad(Config{ParkNS: -5}, "ParkNS")
	bad(Config{Models: []Model{{RThermal: -1, CThermal: 1}}}, "RThermal")
	bad(Config{Models: []Model{{RThermal: 1, CThermal: math.NaN()}}}, "CThermal")
	m := Model{RThermal: 1, CThermal: 1}
	m.EnergyPJ[pmu.FillL2] = math.Inf(1)
	bad(Config{Models: []Model{m}}, "EnergyPJ")
}

func TestConfigFromKnobs(t *testing.T) {
	c := ConfigFromKnobs(fault.PowerKnobs{TDPWatts: 12, TauNS: 2_000_000, SetpointC: 70})
	if c.TDPWatts != 12 || c.SoftC != 70 || c.HardC != 80 || c.ParkC != 90 {
		t.Fatalf("knob mapping: %+v", c)
	}
	if len(c.Models) != 1 {
		t.Fatalf("expected one derived model, got %d", len(c.Models))
	}
	// tau = R·C: 2 ms over the default R = 5 °C/W.
	if got := c.Models[0].RThermal * c.Models[0].CThermal * 1e9; math.Abs(got-2_000_000) > 1 {
		t.Fatalf("derived tau = %v ns, want 2000000", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c2 := ConfigFromKnobs(fault.PowerKnobs{}); c2.TDPWatts != 0 || c2.Models != nil {
		t.Fatalf("zero knobs should defer to defaults: %+v", c2)
	}
}

func TestNewPlaneRejectsStaticThermal(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	plan, err := fault.New("static", 1).ThermalThrottle(0, 100, 200, 2.0).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewPlane(topo, pmu.New(topo.NumCores()), plan, Config{})
	if !errors.Is(err, fault.ErrThermalConflict) {
		t.Fatalf("NewPlane = %v, want ErrThermalConflict", err)
	}
	if _, err := NewPlane(nil, nil, nil, Config{}); err == nil {
		t.Fatal("NewPlane accepted nil dependencies")
	}
	if _, err := NewPlane(topo, pmu.New(4), plan, Config{TDPWatts: math.NaN()}); err == nil {
		t.Fatal("NewPlane accepted an invalid config")
	}
}

// TestModelCycling: a shorter Models slice wraps round-robin — the
// heterogeneous-package case.
func TestModelCycling(t *testing.T) {
	topo := topology.Synthetic(4, 2)
	hot := instantModel()
	hot.EnergyPJ[pmu.ComputeNS] = 2000
	cool := instantModel()
	p, pm, _ := testPlane(t, topo, Config{TickNS: 1000, Models: []Model{hot, cool}})
	// Same work everywhere; hot chiplets (0, 2) burn double.
	for c := 0; c < topo.NumCores(); c++ {
		pm.Add(c, pmu.ComputeNS, 1000)
	}
	p.MaybeTick(1000)
	st := p.Stats()
	if st.WattsMilli[0] != 4000 || st.WattsMilli[1] != 2000 ||
		st.WattsMilli[2] != 4000 || st.WattsMilli[3] != 2000 {
		t.Fatalf("cycled model watts = %v, want [4000 2000 4000 2000]", st.WattsMilli)
	}
}

// TestCatchUpWindows: one claim far past the gate integrates every
// missed window (spreading the energy evenly) rather than one giant step.
func TestCatchUpWindows(t *testing.T) {
	topo := topology.Synthetic(1, 2)
	m := instantModel()
	m.CThermal = 1e-6 // tau = 10 ticks
	p, pm, _ := testPlane(t, topo, Config{TickNS: 1000, Models: []Model{m}})
	pm.Add(0, pmu.ComputeNS, 30_000) // 3 W sustained over 10 windows
	p.MaybeTick(10_000)
	st := p.Stats()
	if st.At != 10_000 {
		t.Fatalf("At = %d, want 10000", st.At)
	}
	if st.WattsMilli[0] != 3000 {
		t.Fatalf("catch-up watts = %d, want 3000 (spread over 10 windows)", st.WattsMilli[0])
	}
	// Ten Euler steps toward 75 °C with tau = 10 ticks: the same result a
	// step-by-step claimant would have computed.
	q, qm, _ := testPlane(t, topo, Config{TickNS: 1000, Models: []Model{m}})
	for w := int64(1); w <= 10; w++ {
		qm.Add(0, pmu.ComputeNS, 3000)
		q.MaybeTick(w * 1000)
	}
	if a, b := st.TempMilliC[0], q.Stats().TempMilliC[0]; a != b {
		t.Fatalf("catch-up temp %d != stepped temp %d", a, b)
	}
}
