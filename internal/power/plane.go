package power

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"charm/internal/fault"
	"charm/internal/obs"
	"charm/internal/pmu"
	"charm/internal/topology"
)

// Plane is the closed-loop thermal/energy governor. One instance is owned
// by the runtime; workers call MaybeTick as their virtual clocks cross the
// governor grid, and the plane feeds throttle decisions back through the
// fault plan's dynamic overlay.
//
// Concurrency contract: MaybeTick is safe from any worker — a lock-free
// nextAt gate keeps the common case (no boundary crossed) to one atomic
// load, and claims serialize under a mutex. Published state (temperatures,
// watts, energy, stats) is read through an atomic snapshot pointer so obs
// gauges and the placement snapshot never take the governor lock.
type Plane struct {
	topo *topology.Topology
	pm   *pmu.PMU
	plan *fault.Plan
	ov   *fault.Overlay
	cfg  Config

	// Per-chiplet coefficients resolved to integers: idle power in mW,
	// dynamic energy in pJ per PMU event unit, thermal resistance in
	// milli-°C per W, and the RC time constant in virtual ns.
	idleMilliW []int64
	pjTable    [][pmu.NumEvents]int64
	rMilli     []int64
	tauNS      []int64

	tdpMilliW  int64
	ambMilli   int64
	softMilli  int64
	hardMilli  int64
	parkMilli  int64
	hystMilli  int64
	tierFactor [4]int64 // milli cost factor per governor tier
	tick       int64
	parkNS     int64

	// nextAt is the lock-free gate: the first grid boundary no claim has
	// processed yet. MaybeTick(now) returns immediately while now < nextAt.
	nextAt atomic.Int64

	mu        sync.Mutex
	done      int64   // virtual time integrated up to (grid-aligned)
	lastCumPJ []int64 // per chiplet, cumulative dynamic pJ at `done`
	tempMilli []int64 // per chiplet junction temperature, milli-°C
	wattsMill []int64 // per chiplet power over the last window, mW
	energyPJ  []int64 // per chiplet lifetime energy ledger (unclamped)
	tier      []int   // per chiplet current governor tier (0..3)
	parkUntil []int64 // per chiplet end of the last issued park span

	soft, hard, park []int64 // per chiplet tier-entry event counts
	maxTempMilli     int64

	pub atomic.Pointer[Snapshot]
}

// Snapshot is an immutable copy of the plane's published state. Slices are
// indexed by chiplet and must not be mutated by callers.
type Snapshot struct {
	// At is the virtual time the governor last integrated up to.
	At int64
	// TempMilliC is the junction temperature per chiplet in milli-°C.
	TempMilliC []int64
	// WattsMilli is each chiplet's power over the last governor window, mW.
	WattsMilli []int64
	// EnergyPJ is each chiplet's lifetime energy ledger in picojoules
	// (true dissipation: dynamic + idle, not TDP-clamped).
	EnergyPJ []int64
	// SoftEvents / HardEvents / ParkEvents count tier entries per chiplet.
	SoftEvents, HardEvents, ParkEvents []int64
	// MaxTempMilliC is the hottest junction temperature any chiplet
	// reached, in milli-°C.
	MaxTempMilliC int64
}

// NewPlane builds the closed-loop plane over plan, arming plan's dynamic
// overlay. plan must be the compiled plan the runtime and machine will
// consume (an empty compiled plan is fine) and must not carry static
// thermal-throttle events — the governor owns the thermal timeline.
func NewPlane(topo *topology.Topology, pm *pmu.PMU, plan *fault.Plan, cfg Config) (*Plane, error) {
	var err error
	if cfg, err = cfg.withDefaults(); err != nil {
		return nil, err
	}
	if topo == nil || pm == nil {
		return nil, errors.New("power: NewPlane needs a topology and a PMU")
	}
	if plan == nil {
		return nil, errors.New("power: NewPlane needs a compiled fault plan to host the overlay (an empty one is fine)")
	}
	for _, e := range plan.Events() {
		if e.Kind == fault.ThermalThrottle {
			return nil, fmt.Errorf("power: plan %q: %w", plan.Name(), fault.ErrThermalConflict)
		}
	}
	ov, err := fault.NewOverlay(topo, cfg.TickNS)
	if err != nil {
		return nil, err
	}
	plan.AttachOverlay(ov)

	nch := topo.NumChiplets()
	p := &Plane{
		topo:       topo,
		pm:         pm,
		plan:       plan,
		ov:         ov,
		cfg:        cfg,
		idleMilliW: make([]int64, nch),
		pjTable:    make([][pmu.NumEvents]int64, nch),
		rMilli:     make([]int64, nch),
		tauNS:      make([]int64, nch),
		tdpMilliW:  int64(cfg.TDPWatts * 1000),
		ambMilli:   int64(cfg.AmbientC * 1000),
		softMilli:  int64(cfg.SoftC * 1000),
		hardMilli:  int64(cfg.HardC * 1000),
		parkMilli:  int64(cfg.ParkC * 1000),
		hystMilli:  int64(cfg.HysteresisC * 1000),
		tick:       cfg.TickNS,
		parkNS:     cfg.ParkNS,
		lastCumPJ:  make([]int64, nch),
		tempMilli:  make([]int64, nch),
		wattsMill:  make([]int64, nch),
		energyPJ:   make([]int64, nch),
		tier:       make([]int, nch),
		parkUntil:  make([]int64, nch),
		soft:       make([]int64, nch),
		hard:       make([]int64, nch),
		park:       make([]int64, nch),
	}
	p.tierFactor = [4]int64{
		1000,
		int64(cfg.SoftFactor*1000 + 0.5),
		int64(cfg.HardFactor*1000 + 0.5),
		int64(cfg.HardFactor*1000 + 0.5), // parked cores are offline; survivors pay hard cost
	}
	models := cfg.Models
	if len(models) == 0 {
		models = []Model{DefaultModel()}
	}
	for ch := 0; ch < nch; ch++ {
		m := models[ch%len(models)]
		// Heterogeneous chiplet kinds scale the energy price of every
		// event: efficiency dies burn half, accelerator dies a premium.
		// em is exactly 1000 on homogeneous machines, so the float
		// products below are multiplications by 1.0 — bit-identical to
		// the unscaled integerization.
		em := float64(topo.EnergyMilli(topology.ChipletID(ch))) / 1000
		p.idleMilliW[ch] = int64(m.IdleWatts * em * 1000)
		for e := 0; e < pmu.NumEvents; e++ {
			p.pjTable[ch][e] = int64(m.EnergyPJ[e]*em + 0.5)
		}
		p.rMilli[ch] = int64(m.RThermal * 1000)
		tau := int64(m.RThermal * m.CThermal * 1e9)
		if tau < 1 {
			tau = 1
		}
		p.tauNS[ch] = tau
		p.tempMilli[ch] = p.ambMilli
	}
	p.maxTempMilli = p.ambMilli
	p.nextAt.Store(p.tick)
	p.publishLocked()
	return p, nil
}

// Tick returns the governor's virtual-time evaluation period.
func (p *Plane) Tick() int64 { return p.tick }

// SoftMilliC returns the soft-throttle setpoint in milli-°C (the
// temperature budget the thermal-aware placement scorer works against).
func (p *Plane) SoftMilliC() int64 { return p.softMilli }

// Overlay returns the dynamic overlay the plane feeds.
func (p *Plane) Overlay() *fault.Overlay { return p.ov }

// MaybeTick advances the governor if the virtual clock has crossed the
// next grid boundary. The common case — it has not — is one atomic load.
// Callers invoke it before querying thermal state so throttle decisions
// for windows ending at or before now are already in the overlay.
func (p *Plane) MaybeTick(now int64) {
	if now < p.nextAt.Load() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if now < p.nextAt.Load() { // another claim advanced the gate first
		return
	}
	k := (now - p.done) / p.tick
	windowNS := k * p.tick
	tEff := p.done + windowNS // grid-aligned: overlay appends stay monotone

	for ch := 0; ch < len(p.tempMilli); ch++ {
		cum := p.cumDynamicPJ(ch)
		dynPJ := cum - p.lastCumPJ[ch]
		if dynPJ < 0 { // PMU was Reset underneath us; restart the ledger
			dynPJ = 0
		}
		p.lastCumPJ[ch] = cum
		// 1 mW == 1 pJ/ns: the ledger and the power figure share units.
		idlePJ := p.idleMilliW[ch] * windowNS
		p.energyPJ[ch] += dynPJ + idlePJ
		powerMW := dynPJ/windowNS + p.idleMilliW[ch]
		p.wattsMill[ch] = powerMW
		rcMW := powerMW
		if rcMW > p.tdpMilliW {
			rcMW = p.tdpMilliW
		}
		p.integrate(ch, rcMW, k)
		p.govern(ch, tEff)
	}
	p.done = tEff
	p.publishLocked()
	p.nextAt.Store(tEff + p.tick)
}

// cumDynamicPJ prices chiplet ch's cumulative PMU counters through its
// energy table.
func (p *Plane) cumDynamicPJ(ch int) int64 {
	var s int64
	tbl := &p.pjTable[ch]
	for _, c := range p.topo.CoresOfChiplet(topology.ChipletID(ch)) {
		for e := 0; e < pmu.NumEvents; e++ {
			if pj := tbl[e]; pj != 0 {
				s += p.pm.Read(int(c), pmu.Event(e)) * pj
			}
		}
	}
	return s
}

// integrate advances chiplet ch's RC model k quanta with constant power
// input: explicit Euler, dT = (Tss − T) · min(tick, tau) / tau per
// quantum. Integer floor makes the iteration stall (dT == 0) once within
// tau/tick milli-degrees of steady state, which bounds the loop even when
// an idle fleet catches up over a huge k.
func (p *Plane) integrate(ch int, powerMW int64, k int64) {
	tss := p.ambMilli + powerMW*p.rMilli[ch]/1000
	tau := p.tauNS[ch]
	dt := p.tick
	if dt > tau {
		dt = tau
	}
	t := p.tempMilli[ch]
	for i := int64(0); i < k; i++ {
		d := (tss - t) * dt / tau
		if d == 0 {
			t = tss // close enough that Euler stalls: snap to steady state
			break
		}
		t += d
	}
	p.tempMilli[ch] = t
	if t > p.maxTempMilli {
		p.maxTempMilli = t
	}
}

// govern applies the tier state machine for chiplet ch at virtual time t:
// rising temperature enters tiers at their setpoints, falling temperature
// releases them only HysteresisC below, and the park tier appends an
// offline span unless ch is the last live chiplet (then it degrades to a
// hard throttle — the machine must keep making progress).
func (p *Plane) govern(ch int, t int64) {
	enter := [4]int64{0, p.softMilli, p.hardMilli, p.parkMilli}
	temp := p.tempMilli[ch]
	want := 0
	switch {
	case temp >= p.parkMilli:
		want = 3
	case temp >= p.hardMilli:
		want = 2
	case temp >= p.softMilli:
		want = 1
	}
	cur := p.tier[ch]
	if want > cur {
		for lv := cur + 1; lv <= want; lv++ {
			switch lv {
			case 1:
				p.soft[ch]++
			case 2:
				p.hard[ch]++
			}
		}
	} else {
		for cur > want && temp < enter[cur]-p.hystMilli {
			cur--
		}
		want = cur
	}
	if want == 3 {
		if p.parkUntil[ch] <= t && !p.parkAllowed(ch, t) {
			want = 2 // last live chiplet: hard-throttle instead of park
		} else if p.parkUntil[ch] <= t {
			p.ov.AppendPark(topology.ChipletID(ch), t, t+p.parkNS)
			p.parkUntil[ch] = t + p.parkNS
			p.park[ch]++
		}
	}
	p.tier[ch] = want
	p.ov.AppendThermal(topology.ChipletID(ch), t, p.tierFactor[want])
}

// parkAllowed reports whether at least one core outside chiplet ch is live
// at t, counting both static down-windows and parks already issued this
// claim. Parking the last live chiplet would deadlock virtual time.
func (p *Plane) parkAllowed(ch int, t int64) bool {
	for c := 0; c < p.topo.NumCores(); c++ {
		id := topology.CoreID(c)
		if int(p.topo.ChipletOf(id)) == ch {
			continue
		}
		if !p.plan.CoreDown(id, t) {
			return true
		}
	}
	return false
}

// publishLocked snapshots the governor state for lock-free readers.
// Callers hold p.mu (or are inside NewPlane).
func (p *Plane) publishLocked() {
	s := &Snapshot{
		At:            p.done,
		TempMilliC:    append([]int64(nil), p.tempMilli...),
		WattsMilli:    append([]int64(nil), p.wattsMill...),
		EnergyPJ:      append([]int64(nil), p.energyPJ...),
		SoftEvents:    append([]int64(nil), p.soft...),
		HardEvents:    append([]int64(nil), p.hard...),
		ParkEvents:    append([]int64(nil), p.park...),
		MaxTempMilliC: p.maxTempMilli,
	}
	p.pub.Store(s)
}

// Stats returns the latest published snapshot. The result is immutable.
func (p *Plane) Stats() *Snapshot { return p.pub.Load() }

// TempsMilliC returns the latest per-chiplet junction temperatures in
// milli-°C. Read-only.
func (p *Plane) TempsMilliC() []int64 { return p.pub.Load().TempMilliC }

// WattsMilli returns the latest per-chiplet power figures in mW. Read-only.
func (p *Plane) WattsMilli() []int64 { return p.pub.Load().WattsMilli }

// EnergyPJ returns the per-chiplet lifetime energy ledgers in pJ. Read-only.
func (p *Plane) EnergyPJ() []int64 { return p.pub.Load().EnergyPJ }

// ForecastMilliC projects each chiplet's junction temperature horizonNS of
// virtual time into the future, assuming the last window's power holds:
// the RC trajectory T + (Tss − T)·(1 − e^(−h/τ)) toward the steady state
// that power implies. A pure function of the published snapshot and the
// model constants, so deterministic replays forecast identically. This is
// the admission plane's pre-cliff signal: a chiplet whose forecast crosses
// the soft setpoint will be throttled soon even though its current
// temperature still looks healthy.
func (p *Plane) ForecastMilliC(horizonNS int64) []int64 {
	s := p.pub.Load()
	out := make([]int64, len(s.TempMilliC))
	for ch := range out {
		powerMW := s.WattsMilli[ch]
		if powerMW > p.tdpMilliW {
			powerMW = p.tdpMilliW
		}
		tss := p.ambMilli + powerMW*p.rMilli[ch]/1000
		t := s.TempMilliC[ch]
		f := 1 - math.Exp(-float64(horizonNS)/float64(p.tauNS[ch]))
		out[ch] = t + int64(float64(tss-t)*f)
	}
	return out
}

// SoftFactorMilli returns the governor's soft-tier slowdown factor in
// milli-units (1000 = nominal) — what service times inflate to once the
// soft throttle engages, and therefore the inflation the admission plane
// applies to estimates when the forecast predicts that engagement.
func (p *Plane) SoftFactorMilli() int64 { return p.tierFactor[1] }

// Instrument registers per-chiplet temperature and power gauges and the
// energy counter with reg. The gauges are trace-enabled so charm-obs can
// render them as Chrome-trace counter tracks.
func (p *Plane) Instrument(reg *obs.Registry) {
	for ch := 0; ch < p.topo.NumChiplets(); ch++ {
		ch := ch
		l := obs.Labels{"chiplet": strconv.Itoa(ch)}
		reg.Func("charm_power_temp_millic",
			"Chiplet junction temperature from the RC thermal model, milli-degC.",
			obs.KindGauge, l, func(int64) float64 {
				return float64(p.pub.Load().TempMilliC[ch])
			}, obs.Traced())
		reg.Func("charm_power_watts_milli",
			"Chiplet power over the last governor window, milliwatts.",
			obs.KindGauge, l, func(int64) float64 {
				return float64(p.pub.Load().WattsMilli[ch])
			}, obs.Traced())
		reg.Func("charm_power_energy_pj_total",
			"Chiplet lifetime energy ledger (dynamic + idle), picojoules.",
			obs.KindCounter, l, func(int64) float64 {
				return float64(p.pub.Load().EnergyPJ[ch])
			})
	}
}
