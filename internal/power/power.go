// Package power closes the loop between simulated activity and thermal
// state: it converts the PMU events the machine already counts into
// per-chiplet joules through a per-chiplet-type energy table, advances a
// discrete thermal RC model per chiplet in virtual time (power drives the
// temperature toward P·R + T_amb with time constant R·C), and runs a
// tiered governor that feeds throttle state back into the fault plan's
// dynamic overlay — soft throttle, hard throttle, and an emergency
// chiplet park. The breakers, place.FuseHealth and the Ctx cost path then
// consume the governor's output through the exact same integer
// milli-factor queries they already use for static faults.
//
// Everything runs in virtual time on integer arithmetic, so Deterministic
// replays stay byte-identical with the plane enabled. The unit identity
// that keeps the ledger integral: 1 mW == 1 pJ/ns, so E_pJ = P_mW · Δt_ns
// with no scaling constants.
package power

import (
	"fmt"
	"math"

	"charm/internal/fault"
	"charm/internal/pmu"
)

// Model is one chiplet type's energy/thermal coefficients — the
// "per-chiplet-type energy table" of a heterogeneous package. Config.Models
// assigns models to chiplets round-robin, so a two-entry slice alternates
// types across the die.
type Model struct {
	// Name labels the chiplet type in stats output ("" is fine).
	Name string
	// IdleWatts is the leakage/uncore floor charged whether or not the
	// chiplet does work.
	IdleWatts float64
	// EnergyPJ[e] is the dynamic energy in picojoules charged per unit of
	// PMU event e (per fill, per byte, per virtual ns of Ctx.Compute, ...).
	EnergyPJ [pmu.NumEvents]float64
	// RThermal is the thermal resistance junction→ambient in °C/W: at
	// steady state the chiplet sits RThermal degrees above ambient per
	// watt dissipated.
	RThermal float64
	// CThermal is the thermal capacitance in J/°C; the RC time constant
	// RThermal·CThermal sets how fast temperature chases power.
	CThermal float64
}

// DefaultModel returns a generic compute-chiplet model: ~2 W per busy
// core, cache fills costing tens to thousands of pJ by distance, and a
// 10 ms thermal time constant (5 °C/W × 2 mJ/°C).
func DefaultModel() Model {
	m := Model{
		Name:      "generic",
		IdleWatts: 0.5,
		RThermal:  5.0,
		CThermal:  0.002,
	}
	m.EnergyPJ[pmu.FillL2] = 20
	m.EnergyPJ[pmu.FillL3Local] = 100
	m.EnergyPJ[pmu.FillL3RemoteNear] = 250
	m.EnergyPJ[pmu.FillL3RemoteFar] = 400
	m.EnergyPJ[pmu.FillL3RemoteSocket] = 700
	m.EnergyPJ[pmu.FillDRAMLocal] = 2500
	m.EnergyPJ[pmu.FillDRAMRemote] = 4000
	m.EnergyPJ[pmu.TaskRun] = 1500
	m.EnergyPJ[pmu.TaskSteal] = 3000
	m.EnergyPJ[pmu.StealRemoteChiplet] = 5000
	m.EnergyPJ[pmu.Migration] = 20000
	m.EnergyPJ[pmu.CtxSwitch] = 8000
	m.EnergyPJ[pmu.BytesRead] = 6
	m.EnergyPJ[pmu.BytesWritten] = 9
	m.EnergyPJ[pmu.ComputeNS] = 2000
	return m
}

// Config parameterizes the closed-loop plane. The zero value of any field
// means "use the default"; Validate (or plane construction) fills defaults
// and rejects non-finite or out-of-order knobs.
type Config struct {
	// TDPWatts clamps the power fed into the RC model per chiplet: the
	// ledger accumulates true joules, but temperature cannot be driven by
	// more than the package's delivery limit. Default 10.
	TDPWatts float64
	// AmbientC is the heatsink/ambient temperature chiplets relax toward
	// when idle. Default 45.
	AmbientC float64
	// SoftC, HardC and ParkC are the governor's tiered setpoints in °C:
	// crossing SoftC applies SoftFactor, HardC applies HardFactor, and
	// ParkC parks the chiplet's cores for ParkNS. Must be strictly
	// increasing. Defaults 85 / 95 / 105.
	SoftC, HardC, ParkC float64
	// SoftFactor and HardFactor are the compute-cost multipliers injected
	// at the first two tiers (>= 1). Defaults 1.5 / 3.0.
	SoftFactor, HardFactor float64
	// HysteresisC is how far below a setpoint temperature must fall before
	// the governor releases that tier, preventing limit cycling at the
	// threshold. Default 2.
	HysteresisC float64
	// TickNS is the governor's virtual-time evaluation period and the
	// grid the fault overlay caps cached thermal segments at. Default
	// 50_000 (50 µs).
	TickNS int64
	// ParkNS is how long an emergency park keeps a chiplet's cores
	// offline. Default 1_000_000 (1 ms).
	ParkNS int64
	// Models maps chiplet index → energy model, cycled when shorter than
	// the chiplet count (Models[ch % len]). Empty means every chiplet uses
	// DefaultModel().
	Models []Model
}

// Defaults for Config's zero-valued fields.
const (
	DefaultTDPWatts    = 10.0
	DefaultAmbientC    = 45.0
	DefaultSoftC       = 85.0
	DefaultHardC       = 95.0
	DefaultParkC       = 105.0
	DefaultSoftFactor  = 1.5
	DefaultHardFactor  = 3.0
	DefaultHysteresisC = 2.0
	DefaultTickNS      = 50_000
	DefaultParkNS      = 1_000_000
)

func bad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// withDefaults returns a copy of c with zero fields defaulted and every
// knob validated.
func (c Config) withDefaults() (Config, error) {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.TDPWatts, DefaultTDPWatts)
	def(&c.AmbientC, DefaultAmbientC)
	def(&c.SoftC, DefaultSoftC)
	def(&c.HardC, DefaultHardC)
	def(&c.ParkC, DefaultParkC)
	def(&c.SoftFactor, DefaultSoftFactor)
	def(&c.HardFactor, DefaultHardFactor)
	def(&c.HysteresisC, DefaultHysteresisC)
	if c.TickNS == 0 {
		c.TickNS = DefaultTickNS
	}
	if c.ParkNS == 0 {
		c.ParkNS = DefaultParkNS
	}

	switch {
	case bad(c.TDPWatts) || c.TDPWatts <= 0:
		return c, fmt.Errorf("power: TDPWatts must be a finite value > 0, got %v", c.TDPWatts)
	case bad(c.AmbientC) || c.AmbientC < 0:
		return c, fmt.Errorf("power: AmbientC must be finite and >= 0, got %v", c.AmbientC)
	case bad(c.SoftC) || c.SoftC <= 0:
		return c, fmt.Errorf("power: SoftC setpoint must be a finite value > 0, got %v", c.SoftC)
	case bad(c.HardC) || c.HardC <= 0:
		return c, fmt.Errorf("power: HardC setpoint must be a finite value > 0, got %v", c.HardC)
	case bad(c.ParkC) || c.ParkC <= 0:
		return c, fmt.Errorf("power: ParkC setpoint must be a finite value > 0, got %v", c.ParkC)
	case !(c.SoftC < c.HardC && c.HardC < c.ParkC):
		return c, fmt.Errorf("power: setpoints must be ordered SoftC < HardC < ParkC, got %v / %v / %v",
			c.SoftC, c.HardC, c.ParkC)
	case c.AmbientC >= c.SoftC:
		return c, fmt.Errorf("power: AmbientC %v must be below SoftC %v", c.AmbientC, c.SoftC)
	case bad(c.SoftFactor) || c.SoftFactor < 1:
		return c, fmt.Errorf("power: SoftFactor must be a finite value >= 1, got %v", c.SoftFactor)
	case bad(c.HardFactor) || c.HardFactor < c.SoftFactor:
		return c, fmt.Errorf("power: HardFactor must be finite and >= SoftFactor, got %v", c.HardFactor)
	case bad(c.HysteresisC) || c.HysteresisC < 0:
		return c, fmt.Errorf("power: HysteresisC must be finite and >= 0, got %v", c.HysteresisC)
	case c.TickNS < 0:
		return c, fmt.Errorf("power: TickNS must be positive, got %d", c.TickNS)
	case c.ParkNS < 0:
		return c, fmt.Errorf("power: ParkNS must be positive, got %d", c.ParkNS)
	}
	for i, m := range c.Models {
		switch {
		case bad(m.IdleWatts) || m.IdleWatts < 0:
			return c, fmt.Errorf("power: model %d (%s): IdleWatts must be finite and >= 0, got %v", i, m.Name, m.IdleWatts)
		case bad(m.RThermal) || m.RThermal <= 0:
			return c, fmt.Errorf("power: model %d (%s): RThermal (RC thermal resistance) must be a finite value > 0, got %v", i, m.Name, m.RThermal)
		case bad(m.CThermal) || m.CThermal <= 0:
			return c, fmt.Errorf("power: model %d (%s): CThermal (RC thermal capacitance) must be a finite value > 0, got %v", i, m.Name, m.CThermal)
		}
		for e, pj := range m.EnergyPJ {
			if bad(pj) || pj < 0 {
				return c, fmt.Errorf("power: model %d (%s): EnergyPJ[%s] must be finite and >= 0, got %v",
					i, m.Name, pmu.Event(e), pj)
			}
		}
	}
	return c, nil
}

// Validate checks the configuration the way plane construction will,
// without building anything. It is what charm.Config validation delegates
// to for the power knobs.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// ConfigFromKnobs translates a fault-spec power scenario
// ("power:tdp=...,rc=...,setpoint=...") into a Config. tdp maps to
// TDPWatts, rc to the RC time constant in virtual ns (keeping the default
// thermal resistance and deriving the capacitance), and setpoint to SoftC
// with the hard and park tiers 10 and 20 °C above it.
func ConfigFromKnobs(k fault.PowerKnobs) Config {
	var c Config
	if k.TDPWatts > 0 {
		c.TDPWatts = k.TDPWatts
	}
	if k.SetpointC > 0 {
		c.SoftC = k.SetpointC
		c.HardC = k.SetpointC + 10
		c.ParkC = k.SetpointC + 20
	}
	if k.TauNS > 0 {
		m := DefaultModel()
		// tau = R·C, with C in J/°C and tau in seconds; keep R, derive C.
		m.CThermal = float64(k.TauNS) / 1e9 / m.RThermal
		c.Models = []Model{m}
	}
	return c
}
