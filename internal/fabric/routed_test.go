package fabric

import (
	"reflect"
	"sync"
	"testing"

	"charm/internal/fault"
	"charm/internal/obs"
	"charm/internal/topology"
)

// testTopo is a dual-socket, 4-chiplets-per-socket machine — big enough
// that every routed kind has multi-hop paths and a cross-socket gateway.
func testTopo() *topology.Topology {
	return topology.SyntheticDual(4, 2)
}

// bytesOn reads a link's cumulative byte counter out of the fabric's
// telemetry (the same counters charm-obs fabric renders).
func bytesOn(t *testing.T, f Fabric, i int) int64 {
	t.Helper()
	switch v := f.(type) {
	case *Star:
		if i < len(v.chipletMet) {
			return v.chipletMet[i].bytes.Value()
		}
		return v.socketMet[i-len(v.chipletMet)].bytes.Value()
	case *routed:
		return v.met[i].bytes.Value()
	}
	t.Fatalf("unknown fabric type %T", f)
	return 0
}

// TestLinkConservation: every link on a transfer's route must account
// exactly the transferred bytes — no link skipped, no link double-charged,
// and links off the route untouched. Checked per kind for a same-socket
// and a cross-socket transfer.
func TestLinkConservation(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			f := Build(k, testTopo(), 1000)
			reg := obs.NewRegistry(1)
			reg.SetEnabled(true)
			f.Instrument(reg)
			const b1, b2 = 4096, 1 << 20
			f.ChargeTransfer(1, 3, 0, b1) // same socket
			f.ChargeTransfer(1, 6, 0, b2) // cross socket
			want := make(map[int]int64)
			for _, li := range f.TransferRoute(1, 3) {
				want[li] += b1
			}
			for _, li := range f.TransferRoute(1, 6) {
				want[li] += b2
			}
			var total int64
			for i := range f.Links() {
				got := bytesOn(t, f, i)
				if got != want[i] {
					t.Errorf("link %d (%s): %d bytes accounted, want %d",
						i, f.Links()[i].Name, got, want[i])
				}
				total += got
			}
			wantTotal := int64(len(f.TransferRoute(1, 3)))*b1 +
				int64(len(f.TransferRoute(1, 6)))*b2
			if total != wantTotal {
				t.Errorf("total bytes %d, want %d (route-length × payload)", total, wantTotal)
			}
		})
	}
}

// TestTransferRouteEndpoints: a routed path must actually connect src to
// dst — consecutive NoC links share a chiplet, the walk starts at src and
// ends at dst, and socket links appear exactly on cross-socket routes.
func TestTransferRouteEndpoints(t *testing.T) {
	topo := testTopo()
	for _, k := range Kinds() {
		if k == KindStar {
			continue // hub links have no endpoint pairs to walk
		}
		t.Run(k.String(), func(t *testing.T) {
			f := Build(k, topo, 1000).(*routed)
			nch := topo.NumChiplets()
			for src := 0; src < nch; src++ {
				for dst := 0; dst < nch; dst++ {
					if src == dst {
						if r := f.TransferRoute(topology.ChipletID(src), topology.ChipletID(dst)); r != nil {
							t.Fatalf("diagonal route %d→%d not nil", src, dst)
						}
						continue
					}
					walkRoute(t, f, topology.ChipletID(src), topology.ChipletID(dst))
				}
			}
		})
	}
}

// walkRoute follows the route's NoC links hop by hop. A cross-socket
// route reaches the source socket's gateway, crosses the two external
// links (which teleport the walk to the destination socket's gateway),
// and resumes locally; the walk must end exactly at dst.
func walkRoute(t *testing.T, f *routed, src, dst topology.ChipletID) {
	t.Helper()
	cps := f.topo.NodesPerSocket * f.topo.ChipletsPerNode
	at := src
	crossed := false
	for _, li := range f.TransferRoute(src, dst) {
		l := f.links[li]
		if l.socket >= 0 {
			if !crossed && int(at)%cps != 0 {
				t.Fatalf("route %d→%d: socket link crossed away from gateway (at %d)", src, dst, at)
			}
			crossed = true
			at = topology.ChipletID((int(dst) / cps) * cps) // dst socket's gateway
			continue
		}
		switch at {
		case l.a:
			at = l.b
		case l.b:
			at = l.a
		default:
			t.Fatalf("route %d→%d: link %s does not touch current chiplet %d", src, dst, l.name, at)
		}
	}
	if at != dst {
		t.Fatalf("route %d→%d: walk ended at %d", src, dst, at)
	}
	wantCross := f.topo.SocketOfNode(f.topo.NodeOfChiplet(src)) != f.topo.SocketOfNode(f.topo.NodeOfChiplet(dst))
	if crossed != wantCross {
		t.Fatalf("route %d→%d: crossed=%v, want %v", src, dst, crossed, wantCross)
	}
}

// TestFabricReplayDeterministic: the exact same charge sequence against a
// fresh fabric must produce bit-identical delays, for every kind, healthy
// and under a fault plan. This is the fabric-local half of the replay
// guarantee (the engine-level half is TestFabricReplayBitIdentical in
// internal/core).
func TestFabricReplayDeterministic(t *testing.T) {
	topo := testTopo()
	sched := fault.New("fabric-replay", 7).
		LinkBrownout(2, 10_000, 60_000, 3).
		SocketBrownout(1, 20_000, 80_000, 2)
	plan, err := sched.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		for _, withFaults := range []bool{false, true} {
			name := k.String()
			if withFaults {
				name += "-faulted"
			}
			t.Run(name, func(t *testing.T) {
				run := func() []int64 {
					f := Build(k, testTopo(), 10_000)
					if withFaults {
						f.SetFaultPlan(plan)
					}
					var out []int64
					seed := uint64(1)
					nch := int64(topo.NumChiplets())
					for i := 0; i < 4096; i++ {
						seed = seed*6364136223846793005 + 1442695040888963407
						src := topology.ChipletID(int64(seed>>33) % nch)
						dst := topology.ChipletID(int64(seed>>13) % nch)
						tm := int64(i) * 37
						out = append(out, f.ChargeTransfer(src, dst, tm, 1<<14))
						out = append(out, f.ChargeMemory(src, topo.NodeOfChiplet(dst), tm, 1<<12))
					}
					return out
				}
				if a, b := run(), run(); !reflect.DeepEqual(a, b) {
					t.Fatal("identical charge sequences produced different delays")
				}
			})
		}
	}
}

// TestStarMessageDelaySocketMilli: a browned-out *socket* link must
// stretch cross-socket message latency even when both chiplet links are
// healthy. Regression for the bug where MessageDelay only consulted
// ChipletLinkMilli and socket brownouts were invisible to the RPC path.
func TestStarMessageDelaySocketMilli(t *testing.T) {
	topo := testTopo()
	plan, err := fault.New("sock-brownout", 1).
		SocketBrownout(0, 0, 1<<62, 4).
		Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	cross := topology.CoreID(topo.CoresPerSocket()) // first core of socket 1
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			healthy := Build(k, testTopo(), 1000).MessageDelay(0, cross, 0, 64)
			f := Build(k, testTopo(), 1000)
			f.SetFaultPlan(plan)
			degraded := f.MessageDelay(0, cross, 0, 64)
			if degraded <= healthy {
				t.Fatalf("socket brownout invisible to MessageDelay: healthy %d, degraded %d", healthy, degraded)
			}
		})
	}
}

// TestConcurrentChargeStress hammers every fabric from many goroutines;
// make verify runs it under -race, which is the actual assertion — the
// per-link token buckets must stay safe under concurrent charging.
func TestConcurrentChargeStress(t *testing.T) {
	topo := testTopo()
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			f := Build(k, testTopo(), 1000)
			f.Instrument(obs.NewRegistry(4))
			var wg sync.WaitGroup
			nch := int64(topo.NumChiplets())
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					seed := uint64(g + 1)
					for i := 0; i < 2000; i++ {
						seed = seed*6364136223846793005 + 1442695040888963407
						src := topology.ChipletID(int64(seed>>33) % nch)
						dst := topology.ChipletID(int64(seed>>13) % nch)
						f.ChargeTransfer(src, dst, int64(i)*11, 1<<12)
						f.ChipletUtilMilli(src, int64(i)*11)
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestKindNamesMatchSpecGrammar: the fabric enum, its parser, and the
// topo-spec grammar must agree on the fabric vocabulary.
func TestKindNamesMatchSpecGrammar(t *testing.T) {
	names := topology.SpecFabrics()
	kinds := Kinds()
	if len(names) != len(kinds) {
		t.Fatalf("spec grammar has %d fabrics, enum has %d", len(names), len(kinds))
	}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d: enum %q, grammar %q", i, k.String(), names[i])
		}
		got, err := ParseKind(names[i])
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", names[i], got, err, k)
		}
	}
	if _, err := ParseKind("hypercube"); err == nil {
		t.Error("ParseKind accepted an unknown fabric")
	}
}

// TestRoutedFlatFlyDiameter: a flattened butterfly reaches any same-socket
// chiplet in at most two hops (one row move + one column move).
func TestRoutedFlatFlyDiameter(t *testing.T) {
	f := Build(KindFlatFly, testTopo(), 1000).(*routed)
	cps := f.topo.NodesPerSocket * f.topo.ChipletsPerNode
	for src := 0; src < cps; src++ {
		for dst := 0; dst < cps; dst++ {
			if src == dst {
				continue
			}
			r := f.TransferRoute(topology.ChipletID(src), topology.ChipletID(dst))
			if len(r) > 2 {
				t.Errorf("flatfly %d→%d takes %d hops, want ≤ 2", src, dst, len(r))
			}
		}
	}
}

// BenchmarkFabric measures the per-transfer charging cost of each fabric —
// the hot path every simulated memory access crosses. make bench tracks
// it in BENCH_fabric.json and bench-gate flags >15% regressions.
func BenchmarkFabric(b *testing.B) {
	topo := testTopo()
	nch := int64(topo.NumChiplets())
	for _, k := range Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			f := Build(k, testTopo(), 10_000)
			seed := uint64(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				src := topology.ChipletID(int64(seed>>33) % nch)
				dst := topology.ChipletID(int64(seed>>13) % nch)
				f.ChargeTransfer(src, dst, int64(i), 4096)
			}
		})
	}
}
