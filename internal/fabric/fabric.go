// Package fabric models the on-package interconnect of a chiplet CPU
// (AMD's Infinity Fabric, Intel's mesh/UPI): per-chiplet links to the I/O
// die and inter-socket links, each with finite bandwidth. Latencies are
// topological (see topology.CostModel); fabric adds the *queueing* delays
// that appear when many chiplets move data concurrently.
package fabric

import (
	"strconv"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/topology"
)

// linkMetrics are one link's observability handles (zero-valued when the
// fabric is not instrumented).
type linkMetrics struct {
	bytes *obs.Counter
	delay *obs.Counter
}

// Fabric tracks bandwidth usage of every interconnect link.
type Fabric struct {
	topo *topology.Topology
	// chipletLinks[ch] is the CCD<->I/O-die link of chiplet ch.
	chipletLinks []*mem.TokenBucket
	// socketLinks[s] is socket s's external (xGMI/UPI) link.
	socketLinks []*mem.TokenBucket

	// Per-link telemetry, nil until Instrument.
	chipletMet []linkMetrics
	socketMet  []linkMetrics

	faults *fault.Plan
}

// SetFaultPlan arms a compiled fault plan: charges against a browned-out
// link see its bandwidth divided by the plan's factor, and MessageDelay
// scales its latency by the worse of the two endpoints' link factors. A
// nil plan restores healthy behaviour. Must be called before the machine
// starts executing (the field is read without synchronization).
func (f *Fabric) SetFaultPlan(p *fault.Plan) { f.faults = p }

// New builds the link buckets for a machine.
func New(t *topology.Topology, windowNS int64) *Fabric {
	f := &Fabric{topo: t}
	f.chipletLinks = make([]*mem.TokenBucket, t.NumChiplets())
	for i := range f.chipletLinks {
		f.chipletLinks[i] = mem.NewTokenBucket(t.Cost.FabricBandwidth, windowNS)
	}
	f.socketLinks = make([]*mem.TokenBucket, t.Sockets)
	for i := range f.socketLinks {
		f.socketLinks[i] = mem.NewTokenBucket(t.Cost.SocketBandwidth, windowNS)
	}
	return f
}

// Instrument registers per-link telemetry with reg: cumulative bytes and
// queueing delay counters plus a snapshot-time occupancy gauge for every
// chiplet link (ccdN) and socket link (socketN).
func (f *Fabric) Instrument(reg *obs.Registry) {
	instrument := func(buckets []*mem.TokenBucket, prefix string) []linkMetrics {
		met := make([]linkMetrics, len(buckets))
		for i, bucket := range buckets {
			l := obs.Labels{"link": prefix + strconv.Itoa(i)}
			met[i] = linkMetrics{
				bytes: reg.Counter("charm_fabric_bytes_total",
					"Bytes charged against the fabric link.", l),
				delay: reg.Counter("charm_fabric_queue_delay_ns_total",
					"Virtual ns of fabric queueing delay absorbed by accessors.", l),
			}
			reg.Func("charm_fabric_occupancy",
				"Current-window link occupancy (>1 = oversubscribed).",
				obs.KindGauge, l, bucket.Utilization, obs.Traced())
		}
		return met
	}
	f.chipletMet = instrument(f.chipletLinks, "ccd")
	f.socketMet = instrument(f.socketLinks, "socket")
}

// chargeChiplet charges one chiplet link and records its telemetry.
func (f *Fabric) chargeChiplet(ch topology.ChipletID, t, bytes int64) int64 {
	d := f.chipletLinks[ch].ChargeScaled(t, bytes, f.faults.ChipletLinkMilli(ch, t))
	if f.chipletMet != nil {
		f.chipletMet[ch].bytes.Add(0, bytes)
		if d > 0 {
			f.chipletMet[ch].delay.Add(0, d)
		}
	}
	return d
}

// chargeSocket charges one socket link and records its telemetry.
func (f *Fabric) chargeSocket(s topology.SocketID, t, bytes int64) int64 {
	d := f.socketLinks[s].ChargeScaled(t, bytes, f.faults.SocketLinkMilli(s, t))
	if f.socketMet != nil {
		f.socketMet[s].bytes.Add(0, bytes)
		if d > 0 {
			f.socketMet[s].delay.Add(0, d)
		}
	}
	return d
}

// ChargeTransfer accounts a cache-to-cache transfer of bytes from chiplet
// src to chiplet dst at time t and returns the queueing delay. Transfers
// within one chiplet are free (they stay inside the CCX).
func (f *Fabric) ChargeTransfer(src, dst topology.ChipletID, t, bytes int64) int64 {
	if src == dst {
		return 0
	}
	d := f.chargeChiplet(src, t, bytes)
	if d2 := f.chargeChiplet(dst, t, bytes); d2 > d {
		d = d2
	}
	ss := f.topo.SocketOfNode(f.topo.NodeOfChiplet(src))
	ds := f.topo.SocketOfNode(f.topo.NodeOfChiplet(dst))
	if ss != ds {
		if d2 := f.chargeSocket(ss, t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.chargeSocket(ds, t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// ChargeMemory accounts a DRAM transfer between chiplet ch and NUMA node n
// (the path crosses ch's fabric link, and the socket link when n is remote).
func (f *Fabric) ChargeMemory(ch topology.ChipletID, n topology.NodeID, t, bytes int64) int64 {
	d := f.chargeChiplet(ch, t, bytes)
	cs := f.topo.SocketOfNode(f.topo.NodeOfChiplet(ch))
	ns := f.topo.SocketOfNode(n)
	if cs != ns {
		if d2 := f.chargeSocket(cs, t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.chargeSocket(ns, t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// MessageDelay returns the latency + queueing cost of an explicit message of
// bytes from core src to core dst at time t (used by the RPC layer).
func (f *Fabric) MessageDelay(src, dst topology.CoreID, t, bytes int64) int64 {
	lat := f.topo.CASLatency(src, dst)
	sc, dc := f.topo.ChipletOf(src), f.topo.ChipletOf(dst)
	if f.faults != nil && sc != dc {
		// A browned-out link stretches message latency by the worse of the
		// two endpoints' degradation factors.
		milli := f.faults.ChipletLinkMilli(sc, t)
		if m := f.faults.ChipletLinkMilli(dc, t); m > milli {
			milli = m
		}
		lat = lat * milli / 1000
	}
	q := f.ChargeTransfer(sc, dc, t, bytes)
	return lat + q
}
