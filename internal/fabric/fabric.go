// Package fabric models the on-package interconnect of a chiplet CPU.
// Latencies are topological (see topology.CostModel); fabric adds the
// *queueing* delays that appear when many chiplets move data concurrently.
//
// The interconnect is pluggable behind the Fabric interface. Star is the
// original hub-and-spoke Infinity-Fabric analog (per-chiplet links into an
// I/O die plus per-socket external links); Mesh, Ring, Crossbar, and
// FlattenedButterfly route each transfer src→dst over explicit per-hop
// links, every link carrying its own bandwidth-window queue and fault
// milli-factor. All charging is integer virtual-time math, so every
// fabric replays bit-identically in Deterministic mode.
package fabric

import (
	"fmt"

	"charm/internal/fault"
	"charm/internal/obs"
	"charm/internal/topology"
)

// Kind selects an interconnect topology.
type Kind uint8

const (
	// KindStar is the hub-and-spoke default: each chiplet has one link to
	// its socket's I/O die, sockets are joined by external links.
	KindStar Kind = iota
	// KindMesh arranges each socket's chiplets in a 2D grid with
	// nearest-neighbor links (XY shortest-path routing).
	KindMesh
	// KindRing joins each socket's chiplets in a single bidirectional
	// ring — the cheapest fabric and the most congestion-prone.
	KindRing
	// KindCrossbar gives every chiplet pair its own direct link.
	KindCrossbar
	// KindFlatFly is a flattened butterfly: the grid of KindMesh, but
	// with full connectivity along each row and column (max two hops).
	KindFlatFly

	numKinds
)

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	switch k {
	case KindStar:
		return "star"
	case KindMesh:
		return "mesh"
	case KindRing:
		return "ring"
	case KindCrossbar:
		return "crossbar"
	case KindFlatFly:
		return "flatfly"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses a spec-grammar fabric name. The empty string selects
// KindStar so that zero-valued configs keep today's machine model.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "star":
		return KindStar, nil
	case "mesh":
		return KindMesh, nil
	case "ring":
		return KindRing, nil
	case "crossbar":
		return KindCrossbar, nil
	case "flatfly":
		return KindFlatFly, nil
	}
	return KindStar, fmt.Errorf("unknown fabric %q (want star, mesh, ring, crossbar, or flatfly)", s)
}

// Kinds returns every fabric kind, in enum order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// LinkInfo describes one fabric link for telemetry and link-map rendering.
type LinkInfo struct {
	// Name is the stable telemetry label of the link (the "link" label of
	// charm_fabric_bytes_total et al.).
	Name string
	// A and B are the endpoint chiplets. A hub link has A == B (the other
	// end is the I/O die); an external socket link has A == B == -1.
	A, B topology.ChipletID
	// Socket is the owning socket of an external link, -1 for on-package
	// links.
	Socket topology.SocketID
}

// Fabric tracks bandwidth usage of every interconnect link and converts
// oversubscription into virtual-time queueing delays.
type Fabric interface {
	// Kind identifies the interconnect topology.
	Kind() Kind
	// SetFaultPlan arms a compiled fault plan: charges against a
	// browned-out link see its bandwidth divided by the plan's factor,
	// and MessageDelay stretches latency by the worst factor along the
	// path. A nil plan restores healthy behaviour. Must be called before
	// the machine starts executing.
	SetFaultPlan(*fault.Plan)
	// Instrument registers per-link telemetry with reg: cumulative bytes
	// and queueing-delay counters plus an occupancy gauge per link.
	Instrument(*obs.Registry)
	// ChargeTransfer accounts a cache-to-cache transfer of bytes from
	// chiplet src to chiplet dst at time t and returns the queueing
	// delay (the worst per-hop delay along the route). Transfers within
	// one chiplet are free.
	ChargeTransfer(src, dst topology.ChipletID, t, bytes int64) int64
	// ChargeMemory accounts a DRAM transfer between chiplet ch and NUMA
	// node n's memory controller.
	ChargeMemory(ch topology.ChipletID, n topology.NodeID, t, bytes int64) int64
	// MessageDelay returns the latency + queueing cost of an explicit
	// message of bytes from core src to core dst at time t (the RPC path).
	MessageDelay(src, dst topology.CoreID, t, bytes int64) int64
	// Links enumerates the fabric's links in telemetry order.
	Links() []LinkInfo
	// TransferRoute returns the link indices (into Links) a
	// src→dst transfer charges, nil when src == dst.
	TransferRoute(src, dst topology.ChipletID) []int
	// LinkUtilMilli returns link i's current-window occupancy in
	// milli-units (1000 = saturated) at virtual time t.
	LinkUtilMilli(i int, t int64) int64
	// ChipletUtilMilli returns the occupancy of chiplet ch's hottest
	// incident link in milli-units — the congestion signal placement
	// scorers consume.
	ChipletUtilMilli(ch topology.ChipletID, t int64) int64
}

// Build constructs a fabric of the given kind over t. KindStar reproduces
// the original hub model bit-identically.
func Build(k Kind, t *topology.Topology, windowNS int64) Fabric {
	if k == KindStar {
		return New(t, windowNS)
	}
	return newRouted(k, t, windowNS)
}

// linkMetrics are one link's observability handles (zero-valued when the
// fabric is not instrumented).
type linkMetrics struct {
	bytes *obs.Counter
	delay *obs.Counter
}

// record adds one charge's telemetry to the link counters.
func (m *linkMetrics) record(bytes, delay int64) {
	m.bytes.Add(0, bytes)
	if delay > 0 {
		m.delay.Add(0, delay)
	}
}
