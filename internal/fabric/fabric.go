// Package fabric models the on-package interconnect of a chiplet CPU
// (AMD's Infinity Fabric, Intel's mesh/UPI): per-chiplet links to the I/O
// die and inter-socket links, each with finite bandwidth. Latencies are
// topological (see topology.CostModel); fabric adds the *queueing* delays
// that appear when many chiplets move data concurrently.
package fabric

import (
	"charm/internal/mem"
	"charm/internal/topology"
)

// Fabric tracks bandwidth usage of every interconnect link.
type Fabric struct {
	topo *topology.Topology
	// chipletLinks[ch] is the CCD<->I/O-die link of chiplet ch.
	chipletLinks []*mem.TokenBucket
	// socketLinks[s] is socket s's external (xGMI/UPI) link.
	socketLinks []*mem.TokenBucket
}

// New builds the link buckets for a machine.
func New(t *topology.Topology, windowNS int64) *Fabric {
	f := &Fabric{topo: t}
	f.chipletLinks = make([]*mem.TokenBucket, t.NumChiplets())
	for i := range f.chipletLinks {
		f.chipletLinks[i] = mem.NewTokenBucket(t.Cost.FabricBandwidth, windowNS)
	}
	f.socketLinks = make([]*mem.TokenBucket, t.Sockets)
	for i := range f.socketLinks {
		f.socketLinks[i] = mem.NewTokenBucket(t.Cost.SocketBandwidth, windowNS)
	}
	return f
}

// ChargeTransfer accounts a cache-to-cache transfer of bytes from chiplet
// src to chiplet dst at time t and returns the queueing delay. Transfers
// within one chiplet are free (they stay inside the CCX).
func (f *Fabric) ChargeTransfer(src, dst topology.ChipletID, t, bytes int64) int64 {
	if src == dst {
		return 0
	}
	d := f.chipletLinks[src].Charge(t, bytes)
	if d2 := f.chipletLinks[dst].Charge(t, bytes); d2 > d {
		d = d2
	}
	ss := f.topo.SocketOfNode(f.topo.NodeOfChiplet(src))
	ds := f.topo.SocketOfNode(f.topo.NodeOfChiplet(dst))
	if ss != ds {
		if d2 := f.socketLinks[ss].Charge(t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.socketLinks[ds].Charge(t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// ChargeMemory accounts a DRAM transfer between chiplet ch and NUMA node n
// (the path crosses ch's fabric link, and the socket link when n is remote).
func (f *Fabric) ChargeMemory(ch topology.ChipletID, n topology.NodeID, t, bytes int64) int64 {
	d := f.chipletLinks[ch].Charge(t, bytes)
	cs := f.topo.SocketOfNode(f.topo.NodeOfChiplet(ch))
	ns := f.topo.SocketOfNode(n)
	if cs != ns {
		if d2 := f.socketLinks[cs].Charge(t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.socketLinks[ns].Charge(t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// MessageDelay returns the latency + queueing cost of an explicit message of
// bytes from core src to core dst at time t (used by the RPC layer).
func (f *Fabric) MessageDelay(src, dst topology.CoreID, t, bytes int64) int64 {
	lat := f.topo.CASLatency(src, dst)
	q := f.ChargeTransfer(f.topo.ChipletOf(src), f.topo.ChipletOf(dst), t, bytes)
	return lat + q
}
