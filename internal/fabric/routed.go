package fabric

import (
	"fmt"
	"strconv"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/topology"
)

// routerHopNS is the per-router latency added for every hop beyond the
// two a hub fabric implicitly pays (source and destination links). Only
// routed fabrics pay it, so Star's numbers are untouched.
const routerHopNS = 10

// routed is a link-routed interconnect: each socket's chiplets form a NoC
// (mesh, ring, crossbar, or flattened butterfly) of point-to-point links,
// and sockets are joined by external links through a gateway chiplet.
// Every transfer walks a precomputed deterministic shortest-path route and
// charges each hop's bandwidth-window bucket; the transfer pays the worst
// per-hop queueing delay (hops overlap — the path is pipelined, not
// store-and-forward).
type routed struct {
	kind Kind
	topo *topology.Topology

	links []rlink
	// route[src][dst] lists the link indices a src→dst transfer charges
	// (nil on the diagonal).
	route [][][]int32
	// memRoute[ch][n] lists the links between chiplet ch and node n's
	// memory controller (empty when ch hosts the controller).
	memRoute [][][]int32
	// incident[ch] lists the links touching chiplet ch.
	incident [][]int32

	met    []linkMetrics // nil until Instrument
	faults *fault.Plan
}

// rlink is one point-to-point link.
type rlink struct {
	bucket *mem.TokenBucket
	name   string
	a, b   topology.ChipletID // endpoints; -1 for socket links
	socket topology.SocketID  // owning socket for external links, else -1
}

// newRouted builds a routed fabric of the given kind over t.
func newRouted(k Kind, t *topology.Topology, windowNS int64) *routed {
	f := &routed{kind: k, topo: t}
	cps := t.NodesPerSocket * t.ChipletsPerNode // chiplets per socket
	rows, cols := gridDims(t, cps)
	edges := nocEdges(k, cps, rows, cols)

	// Socket s's copy of local edge e is link s*len(edges)+e; the
	// external link of socket s follows at sockets*len(edges)+s.
	for s := 0; s < t.Sockets; s++ {
		base := topology.ChipletID(s * cps)
		for _, e := range edges {
			f.links = append(f.links, rlink{
				bucket: mem.NewTokenBucket(t.Cost.FabricBandwidth, windowNS),
				name:   fmt.Sprintf("s%dl%d-%d", s, e[0], e[1]),
				a:      base + topology.ChipletID(e[0]),
				b:      base + topology.ChipletID(e[1]),
				socket: -1,
			})
		}
	}
	for s := 0; s < t.Sockets; s++ {
		f.links = append(f.links, rlink{
			bucket: mem.NewTokenBucket(t.Cost.SocketBandwidth, windowNS),
			name:   "socket" + strconv.Itoa(s),
			a:      -1, b: -1,
			socket: topology.SocketID(s),
		})
	}

	local := localPaths(cps, edges)
	f.route = f.buildRoutes(cps, len(edges), local)
	f.memRoute = f.buildMemRoutes(cps, len(edges), local)
	f.incident = make([][]int32, t.NumChiplets())
	for i, l := range f.links {
		if l.socket >= 0 {
			continue
		}
		f.incident[l.a] = append(f.incident[l.a], int32(i))
		f.incident[l.b] = append(f.incident[l.b], int32(i))
	}
	return f
}

// gridDims returns the per-socket chiplet grid, honouring the topology's
// declared arrangement and defaulting to the near-square factorization.
func gridDims(t *topology.Topology, cps int) (rows, cols int) {
	if t.GridRows > 0 && t.GridCols > 0 {
		return t.GridRows, t.GridCols
	}
	r := 1
	for i := 1; i*i <= cps; i++ {
		if cps%i == 0 {
			r = i
		}
	}
	return r, cps / r
}

// nocEdges returns the undirected local edge list (a < b) of one socket's
// NoC for the kind.
func nocEdges(k Kind, cps, rows, cols int) [][2]int {
	var edges [][2]int
	switch k {
	case KindMesh:
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				i := r*cols + c
				if c+1 < cols {
					edges = append(edges, [2]int{i, i + 1})
				}
				if r+1 < rows {
					edges = append(edges, [2]int{i, i + cols})
				}
			}
		}
	case KindRing:
		for i := 0; i+1 < cps; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		if cps >= 3 {
			edges = append(edges, [2]int{0, cps - 1})
		}
	case KindCrossbar:
		for i := 0; i < cps; i++ {
			for j := i + 1; j < cps; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
	case KindFlatFly:
		// Full connectivity along each grid dimension: every pair in a
		// row and every pair in a column (the two sets are disjoint).
		for r := 0; r < rows; r++ {
			for c1 := 0; c1 < cols; c1++ {
				for c2 := c1 + 1; c2 < cols; c2++ {
					edges = append(edges, [2]int{r*cols + c1, r*cols + c2})
				}
			}
		}
		for c := 0; c < cols; c++ {
			for r1 := 0; r1 < rows; r1++ {
				for r2 := r1 + 1; r2 < rows; r2++ {
					edges = append(edges, [2]int{r1*cols + c, r2*cols + c})
				}
			}
		}
	default:
		panic("fabric: newRouted called with non-routed kind " + k.String())
	}
	return edges
}

// localPaths runs a BFS per source over the local NoC and returns, for
// every (src, dst) pair, the local edge indices of the shortest path.
// Neighbors are expanded in ascending order, so tie-breaks — and therefore
// routes, charges, and replays — are deterministic.
func localPaths(cps int, edges [][2]int) [][][]int32 {
	neigh := make([][]int, cps) // ascending by construction order below
	edgeAt := make([][]int32, cps)
	for i := range edgeAt {
		edgeAt[i] = make([]int32, cps)
		for j := range edgeAt[i] {
			edgeAt[i][j] = -1
		}
	}
	for ei, e := range edges {
		edgeAt[e[0]][e[1]], edgeAt[e[1]][e[0]] = int32(ei), int32(ei)
	}
	for i := 0; i < cps; i++ {
		for j := 0; j < cps; j++ {
			if edgeAt[i][j] >= 0 {
				neigh[i] = append(neigh[i], j)
			}
		}
	}

	paths := make([][][]int32, cps)
	parent := make([]int, cps)
	queue := make([]int, 0, cps)
	for src := 0; src < cps; src++ {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range neigh[cur] {
				if parent[nb] < 0 {
					parent[nb] = cur
					queue = append(queue, nb)
				}
			}
		}
		paths[src] = make([][]int32, cps)
		for dst := 0; dst < cps; dst++ {
			if dst == src {
				continue
			}
			if parent[dst] < 0 {
				panic("fabric: NoC is disconnected")
			}
			var rev []int32
			for cur := dst; cur != src; cur = parent[cur] {
				rev = append(rev, edgeAt[parent[cur]][cur])
			}
			path := make([]int32, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			paths[src][dst] = path
		}
	}
	return paths
}

// buildRoutes composes the chiplet-to-chiplet routes: the local path
// within a socket, or local paths to each socket's gateway (local chiplet
// 0) joined by both external links for cross-socket transfers.
func (f *routed) buildRoutes(cps, lps int, local [][][]int32) [][][]int32 {
	t := f.topo
	nch := t.NumChiplets()
	sockBase := t.Sockets * lps
	route := make([][][]int32, nch)
	for src := 0; src < nch; src++ {
		route[src] = make([][]int32, nch)
		ss, sl := src/cps, src%cps
		for dst := 0; dst < nch; dst++ {
			if dst == src {
				continue
			}
			ds, dl := dst/cps, dst%cps
			var path []int32
			if ss == ds {
				path = offsetPath(local[sl][dl], ss*lps)
			} else {
				path = offsetPath(local[sl][0], ss*lps)
				path = append(path, int32(sockBase+ss), int32(sockBase+ds))
				path = append(path, offsetPath(local[0][dl], ds*lps)...)
			}
			route[src][dst] = path
		}
	}
	return route
}

// buildMemRoutes composes chiplet-to-memory-controller routes. Node n's
// controller sits at the node's first chiplet's router.
func (f *routed) buildMemRoutes(cps, lps int, local [][][]int32) [][][]int32 {
	t := f.topo
	nch, nn := t.NumChiplets(), t.NumNodes()
	sockBase := t.Sockets * lps
	mr := make([][][]int32, nch)
	for ch := 0; ch < nch; ch++ {
		mr[ch] = make([][]int32, nn)
		cs, cl := ch/cps, ch%cps
		for n := 0; n < nn; n++ {
			home := int(t.ChipletsOfNode(topology.NodeID(n))[0])
			hs, hl := home/cps, home%cps
			var path []int32
			if cs == hs {
				path = offsetPath(local[cl][hl], cs*lps)
			} else {
				path = offsetPath(local[cl][0], cs*lps)
				path = append(path, int32(sockBase+cs), int32(sockBase+hs))
				path = append(path, offsetPath(local[0][hl], hs*lps)...)
			}
			mr[ch][n] = path
		}
	}
	return mr
}

// offsetPath maps a local edge path onto one socket's link indices. It
// always copies, so append on the result never aliases the local table.
func offsetPath(local []int32, off int) []int32 {
	out := make([]int32, len(local))
	for i, e := range local {
		out[i] = e + int32(off)
	}
	return out
}

// Kind identifies the interconnect topology.
func (f *routed) Kind() Kind { return f.kind }

// SetFaultPlan arms a compiled fault plan (nil restores healthy behaviour).
func (f *routed) SetFaultPlan(p *fault.Plan) { f.faults = p }

// Instrument registers per-link telemetry with reg, labelled by link name.
func (f *routed) Instrument(reg *obs.Registry) {
	f.met = make([]linkMetrics, len(f.links))
	for i := range f.links {
		l := obs.Labels{"link": f.links[i].name}
		f.met[i] = linkMetrics{
			bytes: reg.Counter("charm_fabric_bytes_total",
				"Bytes charged against the fabric link.", l),
			delay: reg.Counter("charm_fabric_queue_delay_ns_total",
				"Virtual ns of fabric queueing delay absorbed by accessors.", l),
		}
		reg.Func("charm_fabric_occupancy",
			"Current-window link occupancy (>1 = oversubscribed).",
			obs.KindGauge, l, f.links[i].bucket.Utilization, obs.Traced())
	}
}

// milliOf returns the fault degradation factor of one link at time t: a
// NoC link inherits the worse of its endpoint chiplets' factors, an
// external link its socket's.
func (f *routed) milliOf(li int32, t int64) int64 {
	l := &f.links[li]
	if l.socket >= 0 {
		return f.faults.SocketLinkMilli(l.socket, t)
	}
	m := f.faults.ChipletLinkMilli(l.a, t)
	if m2 := f.faults.ChipletLinkMilli(l.b, t); m2 > m {
		m = m2
	}
	return m
}

// chargePath charges every link on the path and returns the worst per-hop
// queueing delay.
func (f *routed) chargePath(path []int32, t, bytes int64) int64 {
	var d int64
	for _, li := range path {
		dd := f.links[li].bucket.ChargeScaled(t, bytes, f.milliOf(li, t))
		if f.met != nil {
			f.met[li].record(bytes, dd)
		}
		if dd > d {
			d = dd
		}
	}
	return d
}

// ChargeTransfer accounts a cache-to-cache transfer along the src→dst
// route and returns the worst per-hop queueing delay.
func (f *routed) ChargeTransfer(src, dst topology.ChipletID, t, bytes int64) int64 {
	if src == dst {
		return 0
	}
	return f.chargePath(f.route[src][dst], t, bytes)
}

// ChargeMemory accounts a DRAM transfer between chiplet ch and node n's
// memory controller. A chiplet co-located with the controller pays no
// fabric charge (DRAM channel bandwidth is charged separately).
func (f *routed) ChargeMemory(ch topology.ChipletID, n topology.NodeID, t, bytes int64) int64 {
	return f.chargePath(f.memRoute[ch][n], t, bytes)
}

// MessageDelay returns the latency + queueing cost of an explicit message:
// the topological latency stretched by the worst fault factor along the
// route, plus router latency for every hop beyond the hub model's two,
// plus the route's queueing delay.
func (f *routed) MessageDelay(src, dst topology.CoreID, t, bytes int64) int64 {
	lat := f.topo.CASLatency(src, dst)
	sc, dc := f.topo.ChipletOf(src), f.topo.ChipletOf(dst)
	if sc != dc {
		path := f.route[sc][dc]
		milli := int64(1000)
		for _, li := range path {
			if m := f.milliOf(li, t); m > milli {
				milli = m
			}
		}
		lat = lat * milli / 1000
		if h := len(path); h > 2 {
			lat += int64(h-2) * routerHopNS
		}
	}
	return lat + f.ChargeTransfer(sc, dc, t, bytes)
}

// Links enumerates the fabric's links in telemetry order.
func (f *routed) Links() []LinkInfo {
	out := make([]LinkInfo, len(f.links))
	for i, l := range f.links {
		out[i] = LinkInfo{Name: l.name, A: l.a, B: l.b, Socket: l.socket}
	}
	return out
}

// TransferRoute returns the link indices a src→dst transfer charges.
func (f *routed) TransferRoute(src, dst topology.ChipletID) []int {
	if src == dst {
		return nil
	}
	path := f.route[src][dst]
	out := make([]int, len(path))
	for i, li := range path {
		out[i] = int(li)
	}
	return out
}

// LinkUtilMilli returns link i's current-window occupancy in milli-units.
func (f *routed) LinkUtilMilli(i int, t int64) int64 {
	return f.links[i].bucket.UtilMilli(t)
}

// ChipletUtilMilli returns the occupancy of ch's hottest incident link.
func (f *routed) ChipletUtilMilli(ch topology.ChipletID, t int64) int64 {
	var m int64
	for _, li := range f.incident[ch] {
		if u := f.links[li].bucket.UtilMilli(t); u > m {
			m = u
		}
	}
	return m
}
