package fabric

import (
	"testing"

	"charm/internal/topology"
)

func TestIntraChipletTransferFree(t *testing.T) {
	f := New(topology.SyntheticDual(2, 4), 1000)
	if d := f.ChargeTransfer(0, 0, 0, 1<<30); d != 0 {
		t.Errorf("intra-chiplet transfer delayed by %d", d)
	}
}

func TestInterChipletCongestion(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	f := New(topo, 1000)
	cap := int64(topo.Cost.FabricBandwidth * 1000)
	if d := f.ChargeTransfer(0, 1, 0, cap); d != 0 {
		t.Errorf("at capacity: delay %d, want 0", d)
	}
	if d := f.ChargeTransfer(0, 1, 0, cap); d == 0 {
		t.Error("over capacity: must delay")
	}
	// Fresh window clears congestion.
	if d := f.ChargeTransfer(0, 1, 5000, 64); d != 0 {
		t.Errorf("fresh window: delay %d, want 0", d)
	}
}

func TestCrossSocketUsesSocketLink(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	f := New(topo, 1000)
	// Chiplets 0 and 2 are on different sockets (2 chiplets per node,
	// 1 node per socket).
	sockCap := int64(topo.Cost.SocketBandwidth * 1000)
	f.ChargeTransfer(0, 2, 0, sockCap)
	if d := f.ChargeTransfer(0, 2, 0, sockCap); d == 0 {
		t.Error("saturated socket link must delay")
	}
}

func TestChargeMemoryLocalVsRemote(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	f := New(topo, 1000)
	// Local-node memory traffic never touches the socket link: saturate
	// socket links via remote traffic, then confirm local path is bound
	// only by the chiplet link.
	sockCap := int64(topo.Cost.SocketBandwidth * 1000)
	f.ChargeMemory(0, 1, 0, 2*sockCap) // chiplet 0 (socket 0) -> node 1
	if d := f.ChargeMemory(3, 1, 0, 64); d != 0 {
		t.Errorf("chiplet 3 local to node 1: delay %d, want 0", d)
	}
}

func TestMessageDelayIncludesLatency(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	f := New(topo, 1000)
	intra := f.MessageDelay(0, 1, 0, 64)
	if intra != topo.Cost.CASIntraChiplet {
		t.Errorf("intra-chiplet message = %d, want %d", intra, topo.Cost.CASIntraChiplet)
	}
	cross := f.MessageDelay(0, topology.CoreID(topo.CoresPerSocket()), 0, 64)
	if cross < topo.Cost.CASInterSocket {
		t.Errorf("cross-socket message = %d, want >= %d", cross, topo.Cost.CASInterSocket)
	}
}
