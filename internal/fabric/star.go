package fabric

import (
	"strconv"

	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/topology"
)

// Star is the hub-and-spoke interconnect (AMD's Infinity Fabric, Intel's
// UPI): every chiplet has one link to its socket's I/O die, and sockets
// are joined by external (xGMI/UPI) links. A transfer charges the source
// and destination chiplet links (plus both socket links when it crosses
// sockets) and pays the worst of the per-link queueing delays.
type Star struct {
	topo *topology.Topology
	// chipletLinks[ch] is the CCD<->I/O-die link of chiplet ch.
	chipletLinks []*mem.TokenBucket
	// socketLinks[s] is socket s's external (xGMI/UPI) link.
	socketLinks []*mem.TokenBucket

	// Per-link telemetry, nil until Instrument.
	chipletMet []linkMetrics
	socketMet  []linkMetrics

	faults *fault.Plan
}

// New builds the hub-and-spoke link buckets for a machine.
func New(t *topology.Topology, windowNS int64) *Star {
	f := &Star{topo: t}
	f.chipletLinks = make([]*mem.TokenBucket, t.NumChiplets())
	for i := range f.chipletLinks {
		f.chipletLinks[i] = mem.NewTokenBucket(t.Cost.FabricBandwidth, windowNS)
	}
	f.socketLinks = make([]*mem.TokenBucket, t.Sockets)
	for i := range f.socketLinks {
		f.socketLinks[i] = mem.NewTokenBucket(t.Cost.SocketBandwidth, windowNS)
	}
	return f
}

// Kind identifies the interconnect topology.
func (f *Star) Kind() Kind { return KindStar }

// SetFaultPlan arms a compiled fault plan (nil restores healthy behaviour).
func (f *Star) SetFaultPlan(p *fault.Plan) { f.faults = p }

// Instrument registers per-link telemetry with reg: cumulative bytes and
// queueing delay counters plus a snapshot-time occupancy gauge for every
// chiplet link (ccdN) and socket link (socketN).
func (f *Star) Instrument(reg *obs.Registry) {
	instrument := func(buckets []*mem.TokenBucket, prefix string) []linkMetrics {
		met := make([]linkMetrics, len(buckets))
		for i, bucket := range buckets {
			l := obs.Labels{"link": prefix + strconv.Itoa(i)}
			met[i] = linkMetrics{
				bytes: reg.Counter("charm_fabric_bytes_total",
					"Bytes charged against the fabric link.", l),
				delay: reg.Counter("charm_fabric_queue_delay_ns_total",
					"Virtual ns of fabric queueing delay absorbed by accessors.", l),
			}
			reg.Func("charm_fabric_occupancy",
				"Current-window link occupancy (>1 = oversubscribed).",
				obs.KindGauge, l, bucket.Utilization, obs.Traced())
		}
		return met
	}
	f.chipletMet = instrument(f.chipletLinks, "ccd")
	f.socketMet = instrument(f.socketLinks, "socket")
}

// chargeChiplet charges one chiplet link and records its telemetry.
func (f *Star) chargeChiplet(ch topology.ChipletID, t, bytes int64) int64 {
	d := f.chipletLinks[ch].ChargeScaled(t, bytes, f.faults.ChipletLinkMilli(ch, t))
	if f.chipletMet != nil {
		f.chipletMet[ch].record(bytes, d)
	}
	return d
}

// chargeSocket charges one socket link and records its telemetry.
func (f *Star) chargeSocket(s topology.SocketID, t, bytes int64) int64 {
	d := f.socketLinks[s].ChargeScaled(t, bytes, f.faults.SocketLinkMilli(s, t))
	if f.socketMet != nil {
		f.socketMet[s].record(bytes, d)
	}
	return d
}

// ChargeTransfer accounts a cache-to-cache transfer of bytes from chiplet
// src to chiplet dst at time t and returns the queueing delay. Transfers
// within one chiplet are free (they stay inside the CCX).
func (f *Star) ChargeTransfer(src, dst topology.ChipletID, t, bytes int64) int64 {
	if src == dst {
		return 0
	}
	d := f.chargeChiplet(src, t, bytes)
	if d2 := f.chargeChiplet(dst, t, bytes); d2 > d {
		d = d2
	}
	ss := f.topo.SocketOfNode(f.topo.NodeOfChiplet(src))
	ds := f.topo.SocketOfNode(f.topo.NodeOfChiplet(dst))
	if ss != ds {
		if d2 := f.chargeSocket(ss, t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.chargeSocket(ds, t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// ChargeMemory accounts a DRAM transfer between chiplet ch and NUMA node n
// (the path crosses ch's fabric link, and the socket link when n is remote).
func (f *Star) ChargeMemory(ch topology.ChipletID, n topology.NodeID, t, bytes int64) int64 {
	d := f.chargeChiplet(ch, t, bytes)
	cs := f.topo.SocketOfNode(f.topo.NodeOfChiplet(ch))
	ns := f.topo.SocketOfNode(n)
	if cs != ns {
		if d2 := f.chargeSocket(cs, t, bytes); d2 > d {
			d = d2
		}
		if d2 := f.chargeSocket(ns, t, bytes); d2 > d {
			d = d2
		}
	}
	return d
}

// MessageDelay returns the latency + queueing cost of an explicit message of
// bytes from core src to core dst at time t (used by the RPC layer).
func (f *Star) MessageDelay(src, dst topology.CoreID, t, bytes int64) int64 {
	lat := f.topo.CASLatency(src, dst)
	sc, dc := f.topo.ChipletOf(src), f.topo.ChipletOf(dst)
	if sc != dc {
		// A browned-out link stretches message latency by the worst
		// degradation factor along the path: the two endpoint chiplet
		// links, and on cross-socket messages both socket links too.
		milli := f.faults.ChipletLinkMilli(sc, t)
		if m := f.faults.ChipletLinkMilli(dc, t); m > milli {
			milli = m
		}
		ss := f.topo.SocketOfNode(f.topo.NodeOfChiplet(sc))
		ds := f.topo.SocketOfNode(f.topo.NodeOfChiplet(dc))
		if ss != ds {
			if m := f.faults.SocketLinkMilli(ss, t); m > milli {
				milli = m
			}
			if m := f.faults.SocketLinkMilli(ds, t); m > milli {
				milli = m
			}
		}
		lat = lat * milli / 1000
	}
	q := f.ChargeTransfer(sc, dc, t, bytes)
	return lat + q
}

// Links enumerates the chiplet hub links (ccdN) then the socket links
// (socketN), matching telemetry label order.
func (f *Star) Links() []LinkInfo {
	out := make([]LinkInfo, 0, len(f.chipletLinks)+len(f.socketLinks))
	for i := range f.chipletLinks {
		ch := topology.ChipletID(i)
		out = append(out, LinkInfo{Name: "ccd" + strconv.Itoa(i), A: ch, B: ch, Socket: -1})
	}
	for i := range f.socketLinks {
		out = append(out, LinkInfo{Name: "socket" + strconv.Itoa(i), A: -1, B: -1, Socket: topology.SocketID(i)})
	}
	return out
}

// TransferRoute returns the link indices a src→dst transfer charges.
func (f *Star) TransferRoute(src, dst topology.ChipletID) []int {
	if src == dst {
		return nil
	}
	route := []int{int(src), int(dst)}
	ss := f.topo.SocketOfNode(f.topo.NodeOfChiplet(src))
	ds := f.topo.SocketOfNode(f.topo.NodeOfChiplet(dst))
	if ss != ds {
		base := len(f.chipletLinks)
		route = append(route, base+int(ss), base+int(ds))
	}
	return route
}

// LinkUtilMilli returns link i's current-window occupancy in milli-units.
func (f *Star) LinkUtilMilli(i int, t int64) int64 {
	if i < len(f.chipletLinks) {
		return f.chipletLinks[i].UtilMilli(t)
	}
	return f.socketLinks[i-len(f.chipletLinks)].UtilMilli(t)
}

// ChipletUtilMilli returns the occupancy of ch's hub link: in a star every
// transfer in or out of the chiplet crosses exactly that link.
func (f *Star) ChipletUtilMilli(ch topology.ChipletID, t int64) int64 {
	return f.chipletLinks[ch].UtilMilli(t)
}
