// Package vtime provides the virtual-time substrate of the simulator.
//
// Every simulated core owns a Clock measured in virtual nanoseconds. The
// cost model advances a core's clock by the latency of each memory access,
// context switch, or synchronization event. Synchronization points
// (barriers, task handoffs, steals) merge clocks by taking the maximum, the
// standard conservative rule for virtual-time simulation: an event cannot be
// observed before it happened.
//
// Clocks are atomics so that monitoring code (the profiler, the harness) can
// read them concurrently, but only the owning worker advances them.
package vtime

import "sync/atomic"

// Clock is a virtual-nanosecond clock owned by one simulated core.
// The zero value is a clock at time 0, ready to use.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now.Load() }

// Advance moves the clock forward by d nanoseconds and returns the new time.
// Negative d is ignored: virtual time never runs backwards.
func (c *Clock) Advance(d int64) int64 {
	if d <= 0 {
		return c.now.Load()
	}
	return c.now.Add(d)
}

// SyncTo raises the clock to at least t (max-merge). It returns the
// resulting time. Used when a worker observes an event stamped t, e.g.
// receiving a task or passing a barrier.
func (c *Clock) SyncTo(t int64) int64 {
	for {
		cur := c.now.Load()
		if t <= cur {
			return cur
		}
		if c.now.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Set forces the clock to t. Only for initialization and tests.
func (c *Clock) Set(t int64) { c.now.Store(t) }

// Barrier implements virtual-time barrier semantics for a fixed party count:
// all parties enter with their local time; everyone leaves at the maximum
// entry time plus a per-party synchronization cost. The caller provides real
// (host) synchronization; Barrier only computes the virtual release time.
type Barrier struct {
	max atomic.Int64
}

// Enter records a party's entry time and returns nothing; call Release after
// host-side synchronization to obtain the common release time.
func (b *Barrier) Enter(t int64) {
	for {
		cur := b.max.Load()
		if t <= cur {
			return
		}
		if b.max.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Release returns the virtual release time: the maximum entry time plus
// cost, which models the notification latency of the barrier.
func (b *Barrier) Release(cost int64) int64 { return b.max.Load() + cost }

// Reset prepares the barrier for reuse. The caller must ensure no party is
// between Enter and Release.
func (b *Barrier) Reset() { b.max.Store(0) }

// MaxOf returns the maximum of the given clock readings; 0 for no clocks.
// The makespan of a parallel phase is MaxOf over its workers' clocks.
func MaxOf(clocks ...*Clock) int64 {
	var m int64
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}
