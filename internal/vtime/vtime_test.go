package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %d", c.Now())
	}
	if got := c.Advance(10); got != 10 {
		t.Errorf("Advance(10) = %d, want 10", got)
	}
	if got := c.Advance(5); got != 15 {
		t.Errorf("Advance(5) = %d, want 15", got)
	}
}

func TestClockAdvanceIgnoresNonPositive(t *testing.T) {
	var c Clock
	c.Advance(7)
	if got := c.Advance(0); got != 7 {
		t.Errorf("Advance(0) = %d, want 7", got)
	}
	if got := c.Advance(-3); got != 7 {
		t.Errorf("Advance(-3) = %d, want 7", got)
	}
}

func TestClockSyncTo(t *testing.T) {
	var c Clock
	c.Advance(100)
	if got := c.SyncTo(50); got != 100 {
		t.Errorf("SyncTo(50) = %d, want 100 (never backwards)", got)
	}
	if got := c.SyncTo(200); got != 200 {
		t.Errorf("SyncTo(200) = %d, want 200", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []int16) bool {
		var c Clock
		prev := int64(0)
		for _, s := range steps {
			var now int64
			if s%2 == 0 {
				now = c.Advance(int64(s))
			} else {
				now = c.SyncTo(int64(s))
			}
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockConcurrentSyncTo(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.SyncTo(int64(i * 100))
		}(i)
	}
	wg.Wait()
	if got := c.Now(); got != 3100 {
		t.Errorf("concurrent SyncTo: Now = %d, want 3100", got)
	}
}

func TestBarrier(t *testing.T) {
	var b Barrier
	b.Enter(10)
	b.Enter(300)
	b.Enter(42)
	if got := b.Release(5); got != 305 {
		t.Errorf("Release = %d, want 305", got)
	}
	b.Reset()
	if got := b.Release(0); got != 0 {
		t.Errorf("after Reset, Release = %d, want 0", got)
	}
}

func TestBarrierConcurrent(t *testing.T) {
	var b Barrier
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Enter(int64(i))
		}(i)
	}
	wg.Wait()
	if got := b.Release(1); got != 65 {
		t.Errorf("Release = %d, want 65", got)
	}
}

func TestMaxOf(t *testing.T) {
	if got := MaxOf(); got != 0 {
		t.Errorf("MaxOf() = %d, want 0", got)
	}
	var a, b, c Clock
	a.Advance(5)
	b.Advance(50)
	c.Advance(20)
	if got := MaxOf(&a, &b, &c); got != 50 {
		t.Errorf("MaxOf = %d, want 50", got)
	}
}
