package task

import "sync/atomic"

// node is an MPSC queue link.
type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  *T
}

// Inbox is a lock-free multi-producer single-consumer queue (Vyukov's
// intrusive MPSC design). Producers Put from any goroutine; only the owner
// may Take. Used as the per-worker message inbox for the call() RPC path.
type Inbox[T any] struct {
	head atomic.Pointer[node[T]] // producers swap here
	tail *node[T]                // consumer-owned
	n    atomic.Int64            // approximate length for observability
	stub node[T]
}

// NewInbox creates an empty inbox.
func NewInbox[T any]() *Inbox[T] {
	q := &Inbox[T]{}
	q.head.Store(&q.stub)
	q.tail = &q.stub
	return q
}

// pushNode links n at the head. Safe for concurrent producers.
func (q *Inbox[T]) pushNode(n *node[T]) {
	n.next.Store(nil)
	prev := q.head.Swap(n)
	prev.next.Store(n)
}

// Put enqueues v. Safe for concurrent producers.
func (q *Inbox[T]) Put(v *T) {
	q.pushNode(&node[T]{val: v})
	q.n.Add(1)
}

// Take dequeues the oldest element, or returns nil when the queue is empty.
// A nil return during a concurrent Put means "retry later": the element
// becomes visible once the producer finishes linking. Only the owner may
// call Take.
func (q *Inbox[T]) Take() *T {
	tail := q.tail
	next := tail.next.Load()
	if tail == &q.stub {
		if next == nil {
			return nil // empty
		}
		// Skip the stub.
		q.tail = next
		tail = next
		next = tail.next.Load()
	}
	if next != nil {
		q.tail = next
		v := tail.val
		tail.val = nil
		q.n.Add(-1)
		return v
	}
	if tail != q.head.Load() {
		// A producer is between Swap and next.Store; not yet visible.
		return nil
	}
	// Exactly one element: re-insert the stub behind it so the element
	// gains a successor, then dequeue it.
	q.pushNode(&q.stub)
	next = tail.next.Load()
	if next != nil {
		q.tail = next
		v := tail.val
		tail.val = nil
		q.n.Add(-1)
		return v
	}
	return nil
}

// Len returns the approximate queue length (exact when producers are
// quiescent). Safe for concurrent use; used for queue-depth telemetry.
func (q *Inbox[T]) Len() int64 {
	if n := q.n.Load(); n > 0 {
		return n
	}
	return 0
}

// Empty reports whether the inbox appears empty to the consumer.
func (q *Inbox[T]) Empty() bool {
	return q.tail == &q.stub && q.tail.next.Load() == nil
}
