package task

import "testing"

// FuzzDequeSequential drives a deque with an arbitrary op sequence on the
// owner side (push/pop) and checks it against a slice-backed reference.
// Steals are exercised interleaved with the owner ops from the same
// goroutine, where their LIFO/FIFO semantics are deterministic.
func FuzzDequeSequential(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 1, 1, 2})
	f.Add([]byte{2, 2, 1, 0, 0, 0, 2, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := NewDeque[int](8)
		var ref []int // reference: ref[0] is the top (steal side)
		next := 0
		vals := make([]int, 0, len(ops))
		for _, op := range ops {
			switch op % 3 {
			case 0: // push bottom
				vals = append(vals, next)
				d.Push(&vals[len(vals)-1])
				ref = append(ref, next)
				next++
			case 1: // pop bottom
				got := d.Pop()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("Pop on empty returned %d", *got)
					}
					continue
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if got == nil || *got != want {
					t.Fatalf("Pop = %v, want %d", got, want)
				}
			case 2: // steal top
				got := d.Steal()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("Steal on empty returned %d", *got)
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got == nil || *got != want {
					t.Fatalf("Steal = %v, want %d", got, want)
				}
			}
			if d.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", d.Len(), len(ref))
			}
		}
	})
}

// FuzzInboxSequential checks FIFO behavior under arbitrary put/take
// interleavings from one goroutine.
func FuzzInboxSequential(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		q := NewInbox[int]()
		var ref []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				v := next
				next++
				q.Put(&v)
				ref = append(ref, v)
			} else {
				got := q.Take()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("Take on empty returned %d", *got)
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got == nil || *got != want {
					t.Fatalf("Take = %v, want %d", got, want)
				}
			}
		}
	})
}
