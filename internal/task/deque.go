// Package task provides the concurrent data structures of the runtime's
// task layer: a lock-free Chase-Lev work-stealing deque (per-core local
// queue, §4.4) and a Vyukov MPSC intrusive queue (per-worker RPC inbox).
package task

import (
	"sync/atomic"
)

// Deque is a lock-free work-stealing deque (Chase & Lev, with the memory
// ordering fixes of Lê et al.). The owner pushes and pops at the bottom;
// thieves steal from the top. Go's atomic operations are sequentially
// consistent, which satisfies the algorithm's strongest ordering needs.
//
// The zero value is not usable; call NewDeque.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[ring[T]]
}

type ring[T any] struct {
	mask  int64
	items []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, items: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) get(i int64) *T    { return r.items[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.items[i&r.mask].Store(v) }
func (r *ring[T]) cap() int64        { return r.mask + 1 }

// NewDeque creates a deque with the given initial capacity (rounded up to a
// power of two, minimum 8). The deque grows automatically.
func NewDeque[T any](capacity int) *Deque[T] {
	c := int64(8)
	for c < int64(capacity) {
		c <<= 1
	}
	d := &Deque[T]{}
	d.buf.Store(newRing[T](c))
	return d
}

// Push adds v at the bottom. Only the owner may call Push.
func (d *Deque[T]) Push(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.buf.Load()
	if b-t >= r.cap()-1 {
		// Grow: copy live range into a ring of twice the size.
		nr := newRing[T](r.cap() * 2)
		for i := t; i < b; i++ {
			nr.put(i, r.get(i))
		}
		d.buf.Store(nr)
		r = nr
	}
	r.put(b, v)
	d.bottom.Store(b + 1)
}

// Pop removes and returns the bottom element, or nil when the deque is
// empty. Only the owner may call Pop.
func (d *Deque[T]) Pop() *T {
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil
	}
	v := r.get(b)
	if t == b {
		// Last element: race with thieves via CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	return v
}

// Steal removes and returns the top element, or nil when the deque is empty
// or the steal lost a race. Any goroutine may call Steal.
func (d *Deque[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.buf.Load()
	v := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return v
}

// Len returns an instantaneous (racy) size estimate.
func (d *Deque[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appears empty.
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }
