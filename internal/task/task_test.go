package task

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque[int](4)
	vals := []int{1, 2, 3}
	for i := range vals {
		d.Push(&vals[i])
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	for i := 2; i >= 0; i-- {
		got := d.Pop()
		if got == nil || *got != vals[i] {
			t.Fatalf("Pop = %v, want %d", got, vals[i])
		}
	}
	if d.Pop() != nil {
		t.Error("empty Pop must return nil")
	}
	if !d.Empty() {
		t.Error("deque must be empty")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque[int](4)
	vals := []int{10, 20, 30}
	for i := range vals {
		d.Push(&vals[i])
	}
	for i := 0; i < 3; i++ {
		got := d.Steal()
		if got == nil || *got != vals[i] {
			t.Fatalf("Steal = %v, want %d", got, vals[i])
		}
	}
	if d.Steal() != nil {
		t.Error("empty Steal must return nil")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := NewDeque[int](8)
	n := 10000
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.Push(&vals[i])
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := n - 1; i >= 0; i-- {
		got := d.Pop()
		if got == nil || *got != i {
			t.Fatalf("Pop = %v, want %d", got, i)
		}
	}
}

func TestDequeOwnerStealInterleave(t *testing.T) {
	f := func(ops []bool) bool {
		d := NewDeque[int](8)
		pushed, popped := 0, 0
		vals := make([]int, len(ops))
		for i, push := range ops {
			if push {
				vals[i] = i
				d.Push(&vals[i])
				pushed++
			} else {
				if d.Pop() != nil {
					popped++
				}
				if d.Steal() != nil {
					popped++
				}
			}
		}
		for d.Pop() != nil {
			popped++
		}
		return pushed == popped && d.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDequeStress checks the core work-stealing invariant under real
// concurrency: every pushed element is consumed exactly once.
func TestDequeStress(t *testing.T) {
	d := NewDeque[int64](64)
	const n = 50000
	const thieves = 4
	consumed := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	var done atomic.Bool

	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if v := d.Steal(); v != nil {
					consumed[*v].Add(1)
				}
			}
			// Final drain.
			for {
				v := d.Steal()
				if v == nil {
					return
				}
				consumed[*v].Add(1)
			}
		}()
	}

	vals := make([]int64, n)
	for i := int64(0); i < n; i++ {
		vals[i] = i
		d.Push(&vals[i])
		if i%3 == 0 {
			if v := d.Pop(); v != nil {
				consumed[*v].Add(1)
			}
		}
	}
	for {
		v := d.Pop()
		if v == nil {
			break
		}
		consumed[*v].Add(1)
	}
	done.Store(true)
	wg.Wait()
	// Drain anything a thief aborted on.
	for {
		v := d.Steal()
		if v == nil {
			break
		}
		consumed[*v].Add(1)
	}
	for i := range consumed {
		if c := consumed[i].Load(); c != 1 {
			t.Fatalf("element %d consumed %d times", i, c)
		}
	}
}

func TestInboxFIFO(t *testing.T) {
	q := NewInbox[int]()
	if !q.Empty() {
		t.Error("new inbox must be empty")
	}
	vals := []int{1, 2, 3}
	for i := range vals {
		q.Put(&vals[i])
	}
	for i := 0; i < 3; i++ {
		got := q.Take()
		if got == nil || *got != vals[i] {
			t.Fatalf("Take = %v, want %d", got, vals[i])
		}
	}
	if q.Take() != nil {
		t.Error("empty Take must return nil")
	}
	if !q.Empty() {
		t.Error("drained inbox must report empty")
	}
}

func TestInboxSingleElementCycle(t *testing.T) {
	q := NewInbox[int]()
	for i := 0; i < 100; i++ {
		v := i
		q.Put(&v)
		got := q.Take()
		if got == nil || *got != i {
			t.Fatalf("cycle %d: Take = %v", i, got)
		}
		if q.Take() != nil {
			t.Fatalf("cycle %d: queue must be empty", i)
		}
	}
}

func TestInboxMPSCStress(t *testing.T) {
	q := NewInbox[int64]()
	const producers = 8
	const perProducer = 20000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				q.Put(&v)
			}
		}(p)
	}
	seen := make(map[int64]bool, producers*perProducer)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	for {
		v := q.Take()
		if v != nil {
			if seen[*v] {
				t.Fatalf("duplicate %d", *v)
			}
			seen[*v] = true
			if len(seen) == producers*perProducer {
				break
			}
			continue
		}
		select {
		case <-doneCh:
			if v := q.Take(); v != nil {
				seen[*v] = true
				continue
			}
			if len(seen) != producers*perProducer {
				t.Fatalf("lost elements: got %d, want %d", len(seen), producers*perProducer)
			}
			return
		default:
		}
	}
}

func TestInboxPerProducerOrder(t *testing.T) {
	// MPSC guarantees per-producer FIFO order.
	q := NewInbox[[2]int]()
	const producers = 4
	const per = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := [2]int{p, i}
				q.Put(&v)
			}
		}(p)
	}
	wg.Wait()
	last := [producers]int{-1, -1, -1, -1}
	count := 0
	for count < producers*per {
		v := q.Take()
		if v == nil {
			continue
		}
		p, i := v[0], v[1]
		if i <= last[p] {
			t.Fatalf("producer %d out of order: %d after %d", p, i, last[p])
		}
		last[p] = i
		count++
	}
}
