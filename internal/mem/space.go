// Package mem simulates the memory subsystem of a chiplet machine: a
// simulated address space with NUMA allocation policies (the set_mempolicy
// analog of Alg. 2) and per-node DRAM bandwidth accounting that produces
// queueing delays under contention — the mechanism behind the paper's
// "more cores, limited memory channels" bottleneck (§2.2).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"charm/internal/topology"
)

// Addr is a simulated virtual address. The high bits carry the region index
// so that the home NUMA node of any address resolves in O(1).
type Addr uint64

const (
	regionShift = 40
	offsetMask  = (1 << regionShift) - 1
	maxRegions  = 1 << 16
	// PageSize is the granularity of NUMA placement decisions.
	PageSize = 4096
)

// Region returns the region index encoded in the address.
func (a Addr) Region() int { return int(a >> regionShift) }

// Offset returns the byte offset within the region.
func (a Addr) Offset() uint64 { return uint64(a) & offsetMask }

// Policy selects how pages of an allocation are assigned to NUMA nodes,
// mirroring Linux mempolicies.
type Policy uint8

const (
	// Bind places every page on the node given at allocation time
	// (MPOL_BIND, what Alg. 2 sets after a migration).
	Bind Policy = iota
	// Interleave round-robins pages across all nodes (MPOL_INTERLEAVE).
	Interleave
	// FirstTouch places each page on the node of the first core that
	// touches it (the Linux default).
	FirstTouch
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Bind:
		return "bind"
	case Interleave:
		return "interleave"
	case FirstTouch:
		return "first-touch"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// region is one allocation.
type region struct {
	size   int64
	policy Policy
	node   topology.NodeID // Bind target
	nodes  int             // node count for Interleave
	// pages holds node+1 per page for FirstTouch (0 = untouched).
	pages []atomic.Int32
}

// Space is a simulated address space. It is safe for concurrent use.
type Space struct {
	topo *topology.Topology

	mu      sync.Mutex
	regions [maxRegions]atomic.Pointer[region]
	next    atomic.Int64 // next region index
	// free holds region indexes released by Free, reused by Alloc so
	// long-running workloads never exhaust the region table. Reuse means
	// a dangling Addr into a freed region can alias a new allocation,
	// exactly like recycled virtual memory.
	free []int64

	allocated atomic.Int64 // bytes currently allocated
}

// NewSpace creates an empty address space for the given machine.
func NewSpace(t *topology.Topology) *Space {
	return &Space{topo: t}
}

// Alloc reserves size bytes under the given policy. For Bind, node is the
// home node; for Interleave and FirstTouch it is ignored. It panics if the
// space of 2^16 regions is exhausted or size is not positive, which
// indicates a programming error in the workload.
func (s *Space) Alloc(size int64, p Policy, node topology.NodeID) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc size must be positive, got %d", size))
	}
	if p == Bind && (int(node) < 0 || int(node) >= s.topo.NumNodes()) {
		panic(fmt.Sprintf("mem: Bind to invalid node %d", node))
	}
	r := &region{size: size, policy: p, node: node, nodes: s.topo.NumNodes()}
	if p == FirstTouch {
		r.pages = make([]atomic.Int32, (size+PageSize-1)/PageSize)
	}
	s.mu.Lock()
	var idx int64
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		idx = s.next.Add(1) - 1
	}
	s.mu.Unlock()
	if idx >= maxRegions {
		panic("mem: region space exhausted")
	}
	s.regions[idx].Store(r)
	s.allocated.Add(size)
	return Addr(uint64(idx) << regionShift)
}

// AllocLocal reserves size bytes bound to the given node. It is the common
// case used by NUMA-aware runtimes ("allocate where I run").
func (s *Space) AllocLocal(size int64, node topology.NodeID) Addr {
	return s.Alloc(size, Bind, node)
}

// Free releases the region containing addr. Accessing freed memory panics.
func (s *Space) Free(addr Addr) {
	idx := addr.Region()
	if idx < 0 || idx >= maxRegions || s.regions[idx].Load() == nil {
		panic(fmt.Sprintf("mem: Free of invalid address %#x", uint64(addr)))
	}
	r := s.regions[idx].Swap(nil)
	if r != nil {
		s.allocated.Add(-r.size)
		s.mu.Lock()
		s.free = append(s.free, int64(idx))
		s.mu.Unlock()
	}
}

// TryRebind is Rebind for callers holding possibly-stale addresses: it
// returns (0, false) when the region was freed or is not Bind-policied
// instead of panicking.
func (s *Space) TryRebind(addr Addr, node topology.NodeID) (int64, bool) {
	idx := addr.Region()
	if idx < 0 || idx >= maxRegions {
		return 0, false
	}
	r := s.regions[idx].Load()
	if r == nil || r.policy != Bind || int(node) < 0 || int(node) >= s.topo.NumNodes() {
		return 0, false
	}
	return s.Rebind(addr, node), true
}

// Rebind changes the home node of a Bind region (the migrate_pages analog:
// AsymSched moves memory together with threads). It returns the number of
// bytes whose home changed, or panics for non-Bind regions or invalid
// addresses.
func (s *Space) Rebind(addr Addr, node topology.NodeID) int64 {
	r := s.regions[addr.Region()].Load()
	if r == nil {
		panic(fmt.Sprintf("mem: Rebind of invalid address %#x", uint64(addr)))
	}
	if r.policy != Bind {
		panic(fmt.Sprintf("mem: Rebind requires a Bind region, have %v", r.policy))
	}
	if int(node) < 0 || int(node) >= s.topo.NumNodes() {
		panic(fmt.Sprintf("mem: Rebind to invalid node %d", node))
	}
	if r.node == node {
		return 0
	}
	// Swap in a copy so concurrent HomeOf readers see either node
	// consistently.
	nr := *r
	nr.node = node
	s.regions[addr.Region()].Store(&nr)
	return r.size
}

// Allocated returns the number of currently allocated bytes.
func (s *Space) Allocated() int64 { return s.allocated.Load() }

// HomeOf resolves the NUMA node that owns the page containing addr.
// accessor is the node of the touching core, consumed by FirstTouch on the
// first access to a page.
func (s *Space) HomeOf(addr Addr, accessor topology.NodeID) topology.NodeID {
	r := s.regions[addr.Region()].Load()
	if r == nil {
		panic(fmt.Sprintf("mem: access to unallocated address %#x", uint64(addr)))
	}
	off := addr.Offset()
	if off >= uint64(r.size) {
		panic(fmt.Sprintf("mem: access beyond region: offset %d, size %d", off, r.size))
	}
	switch r.policy {
	case Bind:
		return r.node
	case Interleave:
		return topology.NodeID((off / PageSize) % uint64(r.nodes))
	case FirstTouch:
		pg := off / PageSize
		if v := r.pages[pg].Load(); v != 0 {
			return topology.NodeID(v - 1)
		}
		// First touch: claim for the accessor. A racing claim wins
		// arbitrarily, as on real hardware.
		if r.pages[pg].CompareAndSwap(0, int32(accessor)+1) {
			return accessor
		}
		return topology.NodeID(r.pages[pg].Load() - 1)
	default:
		panic(fmt.Sprintf("mem: unknown policy %d", r.policy))
	}
}

// SizeOf returns the size of the region containing addr.
func (s *Space) SizeOf(addr Addr) int64 {
	r := s.regions[addr.Region()].Load()
	if r == nil {
		panic(fmt.Sprintf("mem: SizeOf of invalid address %#x", uint64(addr)))
	}
	return r.size
}
