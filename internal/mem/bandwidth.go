package mem

import (
	"strconv"
	"sync/atomic"

	"charm/internal/fault"
	"charm/internal/obs"
	"charm/internal/topology"
)

// DefaultWindowNS is the default accounting window for bandwidth buckets.
// 10 µs is fine enough to capture phase changes and coarse enough to keep
// atomic contention negligible.
const DefaultWindowNS = 10_000

const numWindows = 64

// Slot state packs the window identity and its byte count into one word so
// recycling a slot for a new window and charging bytes into it are a single
// atomic transition. The earlier two-word scheme (separate id and used
// atomics with a CAS-then-Store recycle) had a window where a concurrent
// charge could land on the stale byte count — double-counting the previous
// window's traffic into the new one — or be wiped by the winner's reset.
//
//	state = tag(window) << usedBits | used
//
// usedBits bounds a window's accountable bytes at ~256 GiB (far beyond any
// modeled per-window capacity; charges saturate there). The tag keeps the
// low 26 bits of the absolute window index: two windows can only alias if
// they map to the same slot AND are 2^26 windows (~11 virtual minutes at
// the default 10 µs window) apart at the same instant, which the 64-slot
// ring makes unreachable in practice.
const (
	usedBits = 38
	usedMask = (uint64(1) << usedBits) - 1
	tagMask  = (uint64(1) << (64 - usedBits)) - 1
)

// bucketSlot is one accounting window: a packed (window tag, bytes used)
// word updated by CAS.
type bucketSlot struct {
	state atomic.Uint64
}

// charge accounts bytes into the window containing t and returns the
// window's resulting byte total. It retries until the packed CAS lands, so
// every charged byte is counted in exactly one window.
func (s *bucketSlot) charge(w, bytes int64) int64 {
	tag := uint64(w) & tagMask
	for {
		cur := s.state.Load()
		var used uint64
		if cur>>usedBits == tag {
			used = cur & usedMask // same window: accumulate
		}
		used += uint64(bytes)
		if used > usedMask {
			used = usedMask // saturate; the delay is already enormous
		}
		if s.state.CompareAndSwap(cur, tag<<usedBits|used) {
			return int64(used)
		}
	}
}

// TokenBucket models the sustainable throughput of a shared resource
// (a NUMA node's memory channels, a fabric link) over virtual time.
// Charges within a window up to capacity are free; beyond it, callers
// receive a queueing delay proportional to the oversubscription. Because
// each caller's virtual clock then advances past the congested window, the
// effective per-window throughput converges to the capacity — bandwidth
// saturation emerges without a central arbiter.
type TokenBucket struct {
	windowNS int64
	capacity int64 // bytes per window
	slots    [numWindows]bucketSlot
}

// NewTokenBucket creates a bucket sustaining bytesPerNS over windows of
// windowNS virtual nanoseconds. windowNS <= 0 selects DefaultWindowNS.
func NewTokenBucket(bytesPerNS float64, windowNS int64) *TokenBucket {
	if windowNS <= 0 {
		windowNS = DefaultWindowNS
	}
	cap := int64(bytesPerNS * float64(windowNS))
	if cap < 1 {
		cap = 1
	}
	if cap > int64(usedMask)/2 {
		// Keep capacity well below the packed byte-count ceiling so the
		// oversubscription comparison can still exceed it.
		cap = int64(usedMask) / 2
	}
	return &TokenBucket{windowNS: windowNS, capacity: cap}
}

// Charge accounts bytes at virtual time t and returns the queueing delay in
// nanoseconds the caller must add to its clock (0 when uncongested).
func (b *TokenBucket) Charge(t int64, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	w := t / b.windowNS
	used := b.slots[w%numWindows].charge(w, bytes)
	if used <= b.capacity {
		return 0
	}
	excess := used - b.capacity
	// Delay = time to drain the excess at the sustainable rate.
	return excess * b.windowNS / b.capacity
}

// ChargeScaled is Charge with the bucket's capacity scaled to
// capacity*1000/milli for this one charge — the fault-injection hook for
// bandwidth brownouts. milli is the degradation factor in milli-units
// (1000 = healthy); ChargeScaled(t, bytes, 1000) is exactly Charge. The
// byte accounting still goes into the shared slots, so degraded and
// healthy accessors in the same window see each other's traffic.
func (b *TokenBucket) ChargeScaled(t, bytes, milli int64) int64 {
	if milli <= 1000 {
		return b.Charge(t, bytes)
	}
	if bytes <= 0 {
		return 0
	}
	capEff := b.capacity * 1000 / milli
	if capEff < 1 {
		capEff = 1
	}
	w := t / b.windowNS
	used := b.slots[w%numWindows].charge(w, bytes)
	if used <= capEff {
		return 0
	}
	return (used - capEff) * b.windowNS / capEff
}

// Capacity returns bytes per window.
func (b *TokenBucket) Capacity() int64 { return b.capacity }

// WindowNS returns the accounting window length.
func (b *TokenBucket) WindowNS() int64 { return b.windowNS }

// Utilization returns the fraction of the bucket's capacity charged into
// the accounting window containing virtual time t. Values above 1 mean
// the window is oversubscribed and callers are absorbing queueing delay.
func (b *TokenBucket) Utilization(t int64) float64 {
	w := t / b.windowNS
	cur := b.slots[w%numWindows].state.Load()
	if cur>>usedBits != uint64(w)&tagMask {
		return 0
	}
	return float64(cur&usedMask) / float64(b.capacity)
}

// UtilMilli returns the utilization of the window containing t in integer
// milli-units (1000 = full capacity, >1000 = oversubscribed). Placement
// code uses this instead of Utilization so decisions stay in the integer
// domain and replay bit-identically.
func (b *TokenBucket) UtilMilli(t int64) int64 {
	w := t / b.windowNS
	cur := b.slots[w%numWindows].state.Load()
	if cur>>usedBits != uint64(w)&tagMask {
		return 0
	}
	return int64(cur&usedMask) * 1000 / b.capacity
}

// channelMetrics are one node's observability handles (nil when the DRAM
// is not instrumented).
type channelMetrics struct {
	bytes *obs.Counter
	delay *obs.Counter
}

// DRAM aggregates the per-NUMA-node memory bandwidth of a machine. Each
// node's memory channels share one token bucket (channel interleaving).
type DRAM struct {
	nodes  []*TokenBucket
	met    []channelMetrics
	faults *fault.Plan
}

// SetFaultPlan arms a compiled fault plan: subsequent charges against a
// browned-out node see its bandwidth divided by the plan's factor at the
// charge's virtual time. A nil plan restores healthy behaviour. Must be
// called before the machine starts executing (the field is read without
// synchronization on the hot path).
func (d *DRAM) SetFaultPlan(p *fault.Plan) { d.faults = p }

// NewDRAM builds the per-node buckets from the topology's channel count and
// per-channel bandwidth.
func NewDRAM(t *topology.Topology, windowNS int64) *DRAM {
	d := &DRAM{nodes: make([]*TokenBucket, t.NumNodes())}
	perNode := float64(t.ChannelsPerNode) * t.Cost.ChannelBandwidth
	for i := range d.nodes {
		d.nodes[i] = NewTokenBucket(perNode, windowNS)
	}
	return d
}

// Instrument registers per-channel-group telemetry with reg: cumulative
// bytes, accumulated queueing delay, and a snapshot-time utilization
// gauge per NUMA node. Idempotent per registry.
func (d *DRAM) Instrument(reg *obs.Registry) {
	d.met = make([]channelMetrics, len(d.nodes))
	for i := range d.nodes {
		l := obs.Labels{"channel": "node" + strconv.Itoa(i)}
		d.met[i] = channelMetrics{
			bytes: reg.Counter("charm_mem_bytes_total",
				"Bytes charged against the node's memory channels.", l),
			delay: reg.Counter("charm_mem_queue_delay_ns_total",
				"Virtual ns of DRAM bandwidth queueing delay absorbed by accessors.", l),
		}
		bucket := d.nodes[i]
		reg.Func("charm_mem_bandwidth_util",
			"Current-window memory bandwidth utilization (>1 = oversubscribed).",
			obs.KindGauge, l, bucket.Utilization, obs.Traced())
	}
}

// Charge accounts a DRAM transfer of bytes against node at time t and
// returns the queueing delay.
func (d *DRAM) Charge(node topology.NodeID, t, bytes int64) int64 {
	delay := d.nodes[node].ChargeScaled(t, bytes, d.faults.MemMilli(node, t))
	if d.met != nil {
		d.met[node].bytes.Add(0, bytes)
		if delay > 0 {
			d.met[node].delay.Add(0, delay)
		}
	}
	return delay
}
