package mem

import (
	"sync/atomic"

	"charm/internal/topology"
)

// DefaultWindowNS is the default accounting window for bandwidth buckets.
// 10 µs is fine enough to capture phase changes and coarse enough to keep
// atomic contention negligible.
const DefaultWindowNS = 10_000

const numWindows = 64

// bucketSlot is one accounting window. id identifies which absolute window
// the slot currently represents; used is the byte count charged into it.
type bucketSlot struct {
	id   atomic.Int64
	used atomic.Int64
}

// TokenBucket models the sustainable throughput of a shared resource
// (a NUMA node's memory channels, a fabric link) over virtual time.
// Charges within a window up to capacity are free; beyond it, callers
// receive a queueing delay proportional to the oversubscription. Because
// each caller's virtual clock then advances past the congested window, the
// effective per-window throughput converges to the capacity — bandwidth
// saturation emerges without a central arbiter.
type TokenBucket struct {
	windowNS int64
	capacity int64 // bytes per window
	slots    [numWindows]bucketSlot
}

// NewTokenBucket creates a bucket sustaining bytesPerNS over windows of
// windowNS virtual nanoseconds. windowNS <= 0 selects DefaultWindowNS.
func NewTokenBucket(bytesPerNS float64, windowNS int64) *TokenBucket {
	if windowNS <= 0 {
		windowNS = DefaultWindowNS
	}
	cap := int64(bytesPerNS * float64(windowNS))
	if cap < 1 {
		cap = 1
	}
	return &TokenBucket{windowNS: windowNS, capacity: cap}
}

// Charge accounts bytes at virtual time t and returns the queueing delay in
// nanoseconds the caller must add to its clock (0 when uncongested).
func (b *TokenBucket) Charge(t int64, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	w := t / b.windowNS
	slot := &b.slots[w%numWindows]
	// Lazily recycle the slot for the current window. A lost race means a
	// charge lands in a neighbouring window — harmless for the statistics
	// this model produces.
	if id := slot.id.Load(); id != w {
		if slot.id.CompareAndSwap(id, w) {
			slot.used.Store(0)
		}
	}
	used := slot.used.Add(bytes)
	if used <= b.capacity {
		return 0
	}
	excess := used - b.capacity
	// Delay = time to drain the excess at the sustainable rate.
	return excess * b.windowNS / b.capacity
}

// Capacity returns bytes per window.
func (b *TokenBucket) Capacity() int64 { return b.capacity }

// WindowNS returns the accounting window length.
func (b *TokenBucket) WindowNS() int64 { return b.windowNS }

// DRAM aggregates the per-NUMA-node memory bandwidth of a machine.
type DRAM struct {
	nodes []*TokenBucket
}

// NewDRAM builds the per-node buckets from the topology's channel count and
// per-channel bandwidth.
func NewDRAM(t *topology.Topology, windowNS int64) *DRAM {
	d := &DRAM{nodes: make([]*TokenBucket, t.NumNodes())}
	perNode := float64(t.ChannelsPerNode) * t.Cost.ChannelBandwidth
	for i := range d.nodes {
		d.nodes[i] = NewTokenBucket(perNode, windowNS)
	}
	return d
}

// Charge accounts a DRAM transfer of bytes against node at time t and
// returns the queueing delay.
func (d *DRAM) Charge(node topology.NodeID, t, bytes int64) int64 {
	return d.nodes[node].Charge(t, bytes)
}
